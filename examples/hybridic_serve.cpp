// hybridic_serve: a supervised JSON-lines front end over the pipeline.
//
// Reads one flat JSON object per stdin line, runs the full flow for it —
// synthetic config -> QUAD profiling -> Algorithm 1 -> the requested
// evaluation tier — and writes one JSON object per stdout line. The
// process is long-lived: the profile cache and the tiered evaluator stay
// warm across requests, so repeated shapes are served from memory.
//
// Request fields (all optional; unknown keys are usage errors):
//   id               echoed verbatim in the response
//   op               "design" (default) | "search" | "stats"
//   seed, kernels, hosts, boards          integers
//   edge_p, dup_p, stream_p               probabilities in [0, 1]
//   min_edge_bytes, max_edge_bytes        integers
//   min_work, max_work                    integers
//   board_topology   chain | ring | mesh
//   tier             analytic (default) | cycle
//   restarts, iterations   annealer knobs ("search" requests only)
//   timeout_s        per-request wall-clock watchdog (0 = none)
//
// op "search" runs the seeded annealer (src/search) on the configured
// app and answers with the searched-vs-Algorithm-1 record; with
// tier=cycle the final incumbent is also simulated cycle-accurately and
// checked against its analytic band.
//
// Responses: {"id":...,"ok":true,...} on success, or
// {"id":...,"ok":false,"error":E,"exit_code":N,"message":M} where the
// error taxonomy E/N mirrors the CLI exit-code scheme ("internal"/1,
// "usage"/2, "config"/3, "timeout"/4, "store"/5). A request whose
// watchdog expires is answered with the timeout taxonomy, counted as
// quarantined, and the wedged attempt is abandoned — the server keeps
// serving.
//
// Shutdown: EOF on stdin, SIGINT or SIGTERM. The server finishes the
// in-flight request, prints its counters to stderr and exits 0.
#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "apps/profile_cache.hpp"
#include "apps/synthetic.hpp"
#include "dse/case_runner.hpp"
#include "search/anneal.hpp"
#include "store/store.hpp"
#include "sys/batch_runner.hpp"
#include "sys/experiment.hpp"
#include "tiers/tiered_evaluator.hpp"
#include "util/error.hpp"

namespace {

using namespace hybridic;

std::atomic<bool> g_stop{false};

void handle_stop_signal(int) {
  g_stop.store(true, std::memory_order_relaxed);
}

void install_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a signal must interrupt the blocking stdin read so the
  // serve loop can notice the stop and shut down in order.
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

// ---------------------------------------------------------------------------
// Minimal strict JSON: one flat object of string / number / bool values.
// Anything else (arrays, nesting, null, trailing junk) is a usage error —
// the protocol is deliberately narrow so damage is rejected, not guessed
// at.

struct JsonValue {
  enum class Kind { kString, kNumber, kBool } kind = Kind::kString;
  std::string text;  ///< Raw text: decoded string, number spelling, 0/1.
};

class FlatJsonParser {
public:
  explicit FlatJsonParser(const std::string& line) : text_(line) {}

  /// Parse into `out`; on failure returns false and sets `error`.
  bool parse(std::map<std::string, JsonValue>& out, std::string& error) {
    skip_ws();
    if (!take('{')) {
      error = "expected '{'";
      return false;
    }
    skip_ws();
    if (take('}')) {
      return finish(error);
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) {
        error = "expected a string key";
        return false;
      }
      skip_ws();
      if (!take(':')) {
        error = "expected ':' after key \"" + key + "\"";
        return false;
      }
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) {
        error = "bad value for key \"" + key + "\"";
        return false;
      }
      if (!out.emplace(key, std::move(value)).second) {
        error = "duplicate key \"" + key + "\"";
        return false;
      }
      skip_ws();
      if (take(',')) {
        skip_ws();
        continue;
      }
      if (take('}')) {
        return finish(error);
      }
      error = "expected ',' or '}'";
      return false;
    }
  }

private:
  bool finish(std::string& error) {
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing characters after '}'";
      return false;
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool take(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!take('"')) {
      return false;
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: return false;  // \uXXXX et al: out of protocol.
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      out.push_back(c);
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ < text_.size() && text_[pos_] == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.text);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out = {JsonValue::Kind::kBool, "1"};
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out = {JsonValue::Kind::kBool, "0"};
      return true;
    }
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      digits = digits ||
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0;
      ++pos_;
    }
    if (!digits) {
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.text = text_.substr(start, pos_ - start);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);
  out << value;
  return out.str();
}

// ---------------------------------------------------------------------------
// Error taxonomy: the structured mirror of the CLI exit-code scheme, so a
// scripted caller can switch on one field either way.

struct Taxonomy {
  const char* error;
  int exit_code;
};

constexpr Taxonomy kInternal{"internal", 1};
constexpr Taxonomy kUsage{"usage", 2};
constexpr Taxonomy kConfig{"config", 3};
constexpr Taxonomy kTimeout{"timeout", 4};
constexpr Taxonomy kStore{"store", 5};

/// One finished request: the response line plus how to count it.
struct ServeReply {
  std::string json;       ///< Body after the echoed id ("ok":...}).
  bool ok = false;
};

std::string error_body(const Taxonomy& taxonomy, const std::string& message) {
  std::ostringstream out;
  out << "\"ok\":false,\"error\":\"" << taxonomy.error
      << "\",\"exit_code\":" << taxonomy.exit_code << ",\"message\":\""
      << json_escape(message) << "\"}";
  return out.str();
}

struct Counters {
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t failed = 0;
  std::uint64_t quarantined = 0;
};

// ---------------------------------------------------------------------------
// Request decoding.

struct Request {
  apps::SyntheticConfig config;
  tiers::TierMode tier = tiers::TierMode::kAnalytic;
  double timeout_seconds = 0.0;
  std::string id;
  bool stats = false;
  bool search = false;
  std::uint32_t search_restarts = 2;
  std::uint32_t search_iterations = 60;
};

bool parse_u64_field(const JsonValue& v, std::uint64_t& out) {
  if (v.kind != JsonValue::Kind::kNumber) {
    return false;
  }
  try {
    std::size_t used = 0;
    out = std::stoull(v.text, &used);
    return used == v.text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_u32_field(const JsonValue& v, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!parse_u64_field(v, wide) || wide > UINT32_MAX) {
    return false;
  }
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool parse_double_field(const JsonValue& v, double& out) {
  if (v.kind != JsonValue::Kind::kNumber) {
    return false;
  }
  try {
    std::size_t used = 0;
    out = std::stod(v.text, &used);
    return used == v.text.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// Decode one parsed object into a Request; returns false with a usage
/// message on any unknown key or ill-typed value.
bool decode_request(const std::map<std::string, JsonValue>& fields,
                    Request& request, std::string& error) {
  for (const auto& [key, value] : fields) {
    bool ok = true;
    if (key == "id") {
      ok = value.kind == JsonValue::Kind::kString;
      request.id = value.text;
    } else if (key == "op") {
      if (value.text == "stats") {
        request.stats = true;
      } else if (value.text == "search") {
        request.search = true;
      } else {
        ok = value.text == "design";
      }
    } else if (key == "restarts") {
      ok = parse_u32_field(value, request.search_restarts) &&
           request.search_restarts > 0;
    } else if (key == "iterations") {
      ok = parse_u32_field(value, request.search_iterations) &&
           request.search_iterations > 0;
    } else if (key == "seed") {
      ok = parse_u64_field(value, request.config.seed);
    } else if (key == "kernels") {
      ok = parse_u32_field(value, request.config.kernel_count);
    } else if (key == "hosts") {
      ok = parse_u32_field(value, request.config.host_function_count);
    } else if (key == "boards") {
      ok = parse_u32_field(value, request.config.board_count);
    } else if (key == "edge_p") {
      ok = parse_double_field(value, request.config.kernel_edge_probability);
    } else if (key == "dup_p") {
      ok = parse_double_field(value, request.config.duplicable_probability);
    } else if (key == "stream_p") {
      ok = parse_double_field(value, request.config.streaming_probability);
    } else if (key == "min_edge_bytes") {
      ok = parse_u64_field(value, request.config.min_edge_bytes);
    } else if (key == "max_edge_bytes") {
      ok = parse_u64_field(value, request.config.max_edge_bytes);
    } else if (key == "min_work") {
      ok = parse_u64_field(value, request.config.min_work_units);
    } else if (key == "max_work") {
      ok = parse_u64_field(value, request.config.max_work_units);
    } else if (key == "board_topology") {
      ok = value.text == "chain" || value.text == "ring" ||
           value.text == "mesh";
      request.config.board_topology = value.text;
    } else if (key == "tier") {
      const auto mode = tiers::parse_tier_mode(value.text);
      // Auto is a campaign concept (batch-ranked escalation); a single
      // request picks its tier explicitly.
      ok = mode.has_value() && *mode != tiers::TierMode::kAuto;
      if (ok) {
        request.tier = *mode;
      }
    } else if (key == "timeout_s") {
      ok = parse_double_field(value, request.timeout_seconds) &&
           request.timeout_seconds >= 0.0;
    } else {
      error = "unknown key \"" + key + "\"";
      return false;
    }
    if (!ok) {
      error = "bad value for key \"" + key + "\"";
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// The design job itself. Runs on a watchdog thread when the request set
// timeout_s, so it only touches state that outlives the request: the
// evaluator and cache live in main() until process exit.

ServeReply run_design(const Request& request,
                      tiers::TieredEvaluator& evaluator,
                      apps::ProfileCache& cache) {
  ServeReply reply;
  try {
    std::ostringstream out;
    out << "\"ok\":true,\"tier\":\"" << tiers::to_string(request.tier)
        << "\"";
    if (request.tier == tiers::TierMode::kCycle) {
      const dse::DesignCase c = dse::run_design_case(request.config, &cache);
      const tiers::TierEstimate estimate =
          evaluator.estimate(c.schedule, c.exp.proposed_design);
      out << ",\"solution\":\""
          << json_escape(c.exp.proposed_design.solution_tag())
          << "\",\"baseline_s\":" << json_number(c.exp.baseline.total_seconds)
          << ",\"designed_s\":" << json_number(c.exp.proposed.total_seconds)
          << ",\"crossbar_s\":" << json_number(c.crossbar.total_seconds)
          << ",\"pipelined_makespan_s\":"
          << json_number(c.pipelined.makespan_seconds)
          << ",\"analytic_designed_s\":"
          << json_number(estimate.designed_kernel_seconds);
    } else {
      tiers::AnalyticCase analytic =
          evaluator.analyze(request.config, &cache);
      out << ",\"solution\":\""
          << json_escape(analytic.proposed.solution_tag())
          << "\",\"analytic_baseline_s\":"
          << json_number(analytic.estimate.baseline_kernel_seconds)
          << ",\"analytic_designed_s\":"
          << json_number(analytic.estimate.designed_kernel_seconds)
          << ",\"analytic_lo_s\":"
          << json_number(analytic.estimate.designed_lower_seconds)
          << ",\"analytic_hi_s\":"
          << json_number(analytic.estimate.designed_upper_seconds);
    }
    out << "}";
    reply.json = out.str();
    reply.ok = true;
  } catch (const store::StoreError& e) {
    reply.json = error_body(kStore, e.what());
  } catch (const SimTimeoutError& e) {
    reply.json = error_body(kTimeout, e.what());
  } catch (const ConfigError& e) {
    reply.json = error_body(kConfig, e.what());
  } catch (const std::exception& e) {
    reply.json = error_body(kInternal, e.what());
  }
  return reply;
}

// The search job: seeded annealing over the configured app, always
// seeded by (and compared against) Algorithm 1. tier=cycle adds the
// end-of-run cycle-accurate check of the incumbent.
ServeReply run_search(const Request& request,
                      tiers::TieredEvaluator& evaluator,
                      apps::ProfileCache& cache) {
  ServeReply reply;
  try {
    const tiers::AnalyticCase analytic =
        evaluator.analyze(request.config, &cache);
    const core::DesignInput input =
        sys::make_design_input(analytic.schedule, evaluator.platform());
    search::AnnealOptions sopt;
    sopt.seed = request.config.seed;
    sopt.restarts = request.search_restarts;
    sopt.iterations = request.search_iterations;
    sopt.calibration = evaluator.calibration();
    sopt.cycle_validate = request.tier == tiers::TierMode::kCycle;
    const search::SearchResult result = search::anneal_interconnect(
        analytic.schedule, input, evaluator.platform(), sopt);
    const search::SearchRecord record = result.record();
    std::ostringstream out;
    out << "\"ok\":true,\"tier\":\"" << tiers::to_string(request.tier)
        << "\",\"solution\":\"" << json_escape(record.solution_tag)
        << "\",\"searched_analytic_s\":"
        << json_number(record.analytic_seconds) << ",\"alg1_analytic_s\":"
        << json_number(record.algorithm1_analytic_seconds)
        << ",\"searched_luts\":" << record.luts
        << ",\"alg1_luts\":" << record.algorithm1_luts
        << ",\"gain\":" << json_number(record.gain)
        << ",\"best_restart\":" << record.best_restart
        << ",\"proposed\":" << record.proposed
        << ",\"accepted\":" << record.accepted
        << ",\"rejected_illegal\":" << record.rejected_illegal
        << ",\"cache_hits\":" << record.cache_hits;
    if (result.cycle.has_value()) {
      out << ",\"cycle_s\":"
          << json_number(result.cycle->measured_kernel_seconds)
          << ",\"within_band\":"
          << (result.cycle->within_band ? "true" : "false");
    }
    out << "}";
    reply.json = out.str();
    reply.ok = true;
  } catch (const store::StoreError& e) {
    reply.json = error_body(kStore, e.what());
  } catch (const SimTimeoutError& e) {
    reply.json = error_body(kTimeout, e.what());
  } catch (const ConfigError& e) {
    reply.json = error_body(kConfig, e.what());
  } catch (const std::exception& e) {
    reply.json = error_body(kInternal, e.what());
  }
  return reply;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::cout << "hybridic_serve engine revision "
                << store::kEngineRevision << "\n";
      return 0;
    }
    if (arg == "--help") {
      std::cout
          << "usage: " << argv[0] << "\n"
          << "\n"
          << "JSON-lines server: one flat JSON request per stdin line,\n"
          << "one JSON response per stdout line. See the header comment\n"
          << "of examples/hybridic_serve.cpp (and docs/MODEL.md section\n"
          << "17) for\n"
          << "the request schema and the error taxonomy. Exits 0 on EOF\n"
          << "or SIGINT/SIGTERM after finishing the in-flight request.\n";
      return 0;
    }
    std::cerr << "unknown flag '" << arg << "'\n";
    return 2;
  }
  install_signal_handlers();

  tiers::TieredEvaluator evaluator;
  apps::ProfileCache cache;
  Counters counters;

  std::string line;
  while (!g_stop.load(std::memory_order_relaxed) &&
         std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;  // Blank lines are keep-alives, not requests.
    }
    ++counters.requests;

    std::map<std::string, JsonValue> fields;
    Request request;
    std::string parse_error;
    FlatJsonParser parser{line};
    if (!parser.parse(fields, parse_error) ||
        !decode_request(fields, request, parse_error)) {
      ++counters.failed;
      std::cout << "{\"id\":\"" << json_escape(request.id) << "\","
                << error_body(kUsage, parse_error) << "\n"
                << std::flush;
      continue;
    }

    if (request.stats) {
      ++counters.served;
      std::cout << "{\"id\":\"" << json_escape(request.id)
                << "\",\"ok\":true,\"requests\":" << counters.requests
                << ",\"served\":" << counters.served
                << ",\"failed\":" << counters.failed
                << ",\"quarantined\":" << counters.quarantined << "}\n"
                << std::flush;
      continue;
    }

    // The request body under its watchdog. The attempt thread owns copies
    // of the closure; an expired request is abandoned (and counted as
    // quarantined), never joined.
    const auto body = [&evaluator, &cache,
                       request](sys::JobContext&) -> ServeReply {
      return request.search ? run_search(request, evaluator, cache)
                            : run_design(request, evaluator, cache);
    };
    sys::detail::AttemptOutcome<ServeReply> outcome;
    if (request.timeout_seconds > 0.0) {
      sys::JobContext context{request.id, sys::job_seed(request.id),
                              Rng{sys::job_seed(request.id)}, 0};
      outcome = sys::detail::attempt_with_watchdog<ServeReply>(
          body, std::move(context), nullptr, request.timeout_seconds);
    } else {
      sys::JobContext context{request.id, sys::job_seed(request.id),
                              Rng{sys::job_seed(request.id)}, 0};
      outcome = sys::detail::run_attempt<ServeReply>(body, context, nullptr);
    }

    std::string tail;
    switch (outcome.status) {
      case sys::JobStatus::kOk:
        tail = outcome.value->json;
        if (outcome.value->ok) {
          ++counters.served;
        } else {
          ++counters.failed;
        }
        break;
      case sys::JobStatus::kTimeout:
        ++counters.quarantined;
        tail = error_body(kTimeout, outcome.error);
        break;
      default:
        ++counters.failed;
        tail = error_body(kInternal, outcome.error);
        break;
    }
    std::cout << "{\"id\":\"" << json_escape(request.id) << "\"," << tail
              << "\n"
              << std::flush;
  }

  std::cerr << "hybridic_serve: "
            << (g_stop.load(std::memory_order_relaxed) ? "signal" : "eof")
            << " shutdown; requests=" << counters.requests
            << " served=" << counters.served << " failed=" << counters.failed
            << " quarantined=" << counters.quarantined << "\n";
  return 0;
}
