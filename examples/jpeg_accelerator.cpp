// The paper's §V-B case study end to end: decode a JPEG-style bitstream
// with the four-kernel decoder, profile it, design the hybrid interconnect
// (duplicated huff_ac_dec, dquantz/j_rev_dct shared memory, adaptive NoC
// mapping), and compare all four system variants.
//
// Build and run:  ./build/examples/jpeg_accelerator [width] [height]
#include <cstdlib>
#include <iostream>

#include "util/table.hpp"
#include "apps/jpeg.hpp"
#include "sys/experiment.hpp"

using namespace hybridic;

int main(int argc, char** argv) {
  apps::JpegConfig config;
  if (argc > 1) {
    config.width = static_cast<std::uint32_t>(std::atoi(argv[1]));
  }
  if (argc > 2) {
    config.height = static_cast<std::uint32_t>(std::atoi(argv[2]));
  }

  std::cout << "decoding a " << config.width << "x" << config.height
            << " synthetic JPEG-style image under the profiler...\n";
  const apps::ProfiledApp app = apps::run_jpeg(config);
  std::cout << "functional check: " << (app.verified ? "PASS" : "FAIL")
            << " — " << app.verification_note << "\n\n";
  std::cout << app.graph().summary() << "\n";

  const sys::AppSchedule schedule = app.schedule();
  const sys::AppExperiment exp = sys::run_experiment(
      schedule, sys::PlatformConfig{}, app.environment);

  std::cout << exp.proposed_design.describe(app.graph()) << "\n";

  Table table{"System comparison"};
  table.set_header({"system", "total", "kernel compute", "kernel comm",
                    "LUTs", "registers"});
  const auto row = [&table](const std::string& name,
                            const sys::RunResult& run,
                            const core::Resources& res) {
    table.add_row({name, format_fixed(run.total_seconds * 1e3, 3) + " ms",
                   format_fixed(run.kernel_compute_seconds * 1e3, 3) + " ms",
                   format_fixed(run.kernel_comm_seconds * 1e3, 3) + " ms",
                   std::to_string(res.luts), std::to_string(res.regs)});
  };
  row("software", exp.sw, core::Resources{0, 0});
  row("baseline (bus)", exp.baseline, exp.baseline_resources);
  row("proposed (hybrid)", exp.proposed, exp.proposed_resources);
  row("NoC-only", exp.noc_only, exp.noc_only_resources);
  table.render(std::cout);

  std::cout << "\nspeed-up vs baseline: "
            << format_ratio(exp.proposed_app_speedup_vs_baseline())
            << "  energy: "
            << format_percent(1.0 - exp.energy_ratio_vs_baseline())
            << " saved\n";
  return 0;
}
