// Design-space exploration on a user-defined application: toggle each of
// Algorithm 1's mechanisms (shared memory, adaptive mapping, duplication,
// parallel cases) and report what each contributes — an ablation you can
// run on your own workload.
//
// Build and run:  ./build/examples/design_explorer [seed]
#include <cstdlib>
#include <iostream>

#include "util/table.hpp"
#include "apps/synthetic.hpp"
#include "core/interconnect_design.hpp"
#include "core/resource_model.hpp"
#include "sys/experiment.hpp"

using namespace hybridic;

int main(int argc, char** argv) {
  apps::SyntheticConfig app_config;
  app_config.seed = argc > 1
                        ? static_cast<std::uint64_t>(std::atoll(argv[1]))
                        : 7;
  app_config.kernel_count = 8;
  app_config.duplicable_probability = 0.4;

  const apps::ProfiledApp app = apps::make_synthetic_app(app_config);
  const sys::AppSchedule schedule = app.schedule();
  const sys::PlatformConfig platform;
  std::cout << "generated application '" << app.name << "' with "
            << schedule.specs.size() << " kernels\n\n";
  std::cout << app.graph().summary() << "\n";

  const sys::RunResult baseline = sys::run_baseline(schedule, platform);
  std::cout << "baseline (bus only): "
            << format_fixed(baseline.total_seconds * 1e3, 3) << " ms\n\n";

  struct Variant {
    std::string name;
    bool shared_memory;
    bool adaptive;
    bool duplication;
    bool parallel;
  };
  const Variant variants[] = {
      {"full Algorithm 1", true, true, true, true},
      {"no shared memory", false, true, true, true},
      {"no adaptive mapping", true, false, true, true},
      {"no duplication", true, true, false, true},
      {"no parallel cases", true, true, true, false},
      {"NoC-only (naive)", false, false, true, true},
  };

  Table table{"Design-space exploration"};
  table.set_header({"variant", "solution", "routers", "interconnect LUTs",
                    "time ms", "speed-up vs baseline"});
  for (const Variant& variant : variants) {
    core::DesignInput input = sys::make_design_input(schedule, platform);
    input.enable_shared_memory = variant.shared_memory;
    input.enable_adaptive_mapping = variant.adaptive;
    input.enable_duplication = variant.duplication;
    input.enable_parallel = variant.parallel;
    const core::DesignResult design = core::design_interconnect(input);
    const sys::RunResult run =
        sys::run_designed(schedule, design, platform, variant.name);
    const core::Resources area = core::interconnect_resources(design);
    table.add_row(
        {variant.name, design.solution_tag(),
         std::to_string(design.uses_noc() ? design.noc->router_count()
                                          : 0),
         std::to_string(area.luts),
         format_fixed(run.total_seconds * 1e3, 3),
         format_ratio(baseline.total_seconds / run.total_seconds)});
  }
  table.render(std::cout);
  std::cout << "\ntry other seeds to explore different application "
               "shapes: ./design_explorer 42\n";
  return 0;
}
