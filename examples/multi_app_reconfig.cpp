// Domain example: a camera pipeline that alternates between two modes —
// edge detection (canny) and feature tracking (klt) — on one FPGA.
// Compares provisioning strategies for the kernels' custom interconnect,
// including the paper's future-work idea of reconfiguring it at runtime.
//
// Build and run:  ./build/examples/multi_app_reconfig [frames-per-mode]
#include <cstdlib>
#include <iostream>

#include "apps/canny.hpp"
#include "apps/klt.hpp"
#include "reconfig/multi_app.hpp"
#include "util/table.hpp"

using namespace hybridic;

int main(int argc, char** argv) {
  const std::uint32_t frames_per_mode =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 25;

  std::cout << "profiling both camera modes...\n";
  const apps::ProfiledApp canny = apps::run_canny(apps::CannyConfig{});
  const apps::ProfiledApp klt = apps::run_klt(apps::KltConfig{});
  const sys::AppSchedule canny_schedule = canny.schedule();
  const sys::AppSchedule klt_schedule = klt.schedule();

  // The camera toggles modes: detect edges for a burst, then track.
  std::vector<reconfig::WorkloadPhase> day;
  for (int burst = 0; burst < 4; ++burst) {
    day.push_back(
        reconfig::WorkloadPhase{"canny", &canny_schedule, frames_per_mode});
    day.push_back(
        reconfig::WorkloadPhase{"klt", &klt_schedule, frames_per_mode});
  }

  Table table{"Camera pipeline: " + std::to_string(frames_per_mode) +
              " frames per mode, 4 mode toggles"};
  table.set_header({"strategy", "compute", "reconfig", "total",
                    "interconnect LUTs"});
  const sys::PlatformConfig platform;
  for (const reconfig::Strategy strategy :
       {reconfig::Strategy::kBusOnly, reconfig::Strategy::kStaticUnion,
        reconfig::Strategy::kPerAppReconfig}) {
    const reconfig::ScenarioResult result =
        reconfig::evaluate_scenario(day, strategy, platform);
    table.add_row(
        {reconfig::to_string(strategy),
         format_fixed(result.compute_total_seconds * 1e3, 1) + " ms",
         format_fixed(result.reconfig_total_seconds * 1e3, 2) + " ms",
         format_fixed(result.total_seconds() * 1e3, 1) + " ms",
         std::to_string(result.provisioned_interconnect.luts)});
  }
  table.render(std::cout);
  std::cout << "\ncanny needs 'NoC, SM, P'; klt needs only 'SM'. "
               "Reconfiguring between them keeps the fabric at the size "
               "of the larger single design; the union must host both at "
               "once. Try 1 frame per mode to see reconfiguration lose.\n";
  return 0;
}
