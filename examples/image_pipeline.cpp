// Domain example: a Canny edge-detection accelerator across image sizes.
// Shows how the design decisions (shared pairs + small NoC) stay stable
// while absolute gains grow with the data volume.
//
// Build and run:  ./build/examples/image_pipeline
#include <iostream>

#include "util/table.hpp"
#include "apps/canny.hpp"
#include "sys/experiment.hpp"

using namespace hybridic;

int main() {
  Table table{"Canny accelerator across image sizes"};
  table.set_header({"image", "edges found", "solution", "baseline ms",
                    "proposed ms", "speed-up"});

  struct Size {
    std::uint32_t w, h;
  };
  for (const Size size : {Size{80, 60}, Size{160, 120}, Size{320, 240}}) {
    apps::CannyConfig config;
    config.width = size.w;
    config.height = size.h;
    const apps::ProfiledApp app = apps::run_canny(config);
    if (!app.verified) {
      std::cerr << "verification failed at " << size.w << "x" << size.h
                << ": " << app.verification_note << "\n";
      return 1;
    }
    const sys::AppSchedule schedule = app.schedule();
    const sys::PlatformConfig platform;
    const core::DesignInput input =
        sys::make_design_input(schedule, platform);
    const core::DesignResult design = core::design_interconnect(input);
    const sys::RunResult baseline = sys::run_baseline(schedule, platform);
    const sys::RunResult proposed =
        sys::run_designed(schedule, design, platform);

    table.add_row(
        {std::to_string(size.w) + "x" + std::to_string(size.h),
         app.verification_note.substr(0, app.verification_note.find(' ',
                                                                    14)),
         design.solution_tag(),
         format_fixed(baseline.total_seconds * 1e3, 3),
         format_fixed(proposed.total_seconds * 1e3, 3),
         format_ratio(baseline.total_seconds / proposed.total_seconds)});
  }
  table.render(std::cout);
  std::cout << "\nthe design algorithm picks the same hybrid interconnect "
               "(two shared-memory pairs + a 2-router NoC) at every size; "
               "the speed-up grows with the frame size because the hidden "
               "kernel-to-kernel traffic grows\n";
  return 0;
}
