// hybridic_cli — command-line driver for the whole pipeline.
//
//   hybridic_cli <app> [options]
//
//   <app>        canny | jpeg | klt | fluid | synthetic:<seed>
//   --design     print the custom interconnect design (Fig. 6 style)
//   --profile    print the communication profile (Fig. 5 style)
//   --dot        print the profile as Graphviz DOT
//   --memory     print the profiler's flat memory report
//   --timeline   print an ASCII timeline of the proposed-system run
//   --trace      print per-fabric trace lanes + Chrome-trace JSON
//   --json       print the design as JSON (toolchain hand-off)
//   --validate   run the design validator and print its findings
//   --search     run the seeded annealer (src/search/) next to Algorithm 1
//                and print the comparison; cycle tiers also validate the
//                incumbent against its own analytic band
//   --frames=N   report pipelined multi-frame throughput over N frames
//   --fault-rate=R   inject faults at per-event rate R (CRC+retry on)
//   --fault-seed=S   RNG seed for fault injection (default 1)
//   --tier=MODE  evaluation tier: cycle (default) runs the cycle-accurate
//                engine as before; analytic prices the design with the
//                fast tier only (no simulation — sim-only outputs are
//                skipped with a note); auto runs both and reports whether
//                the measured time landed inside the analytic band
//   --boards=N   two-level design over N boards: min-cut board partition,
//                then per-board Algorithm 1; N=1 (default) is the exact
//                single-board pipeline
//   --board-topology=T   inter-board network: chain | ring | mesh
//   --store=DIR  persistent content-addressed profile store (docs/MODEL.md
//                §15): profiles load from DIR when present (skipping the
//                QUAD pass) and fresh profiles are written back
//   --all        everything above plus the system comparison (default)
//   --version    print the engine revision and exit 0
//   --help       print usage and exit 0
//
// Exit codes (scripted callers rely on these staying distinct):
//   0  run completed and the application verified
//   1  run completed but verification failed (or unexpected error)
//   2  usage error: unknown flag / malformed value / unknown app
//   3  semantic configuration error (rejected before or during setup)
//   4  simulation timeout or deadlock (stuck operations reported)
//   5  store error: --store directory cannot be created or written
//
// Examples:
//   ./build/examples/hybridic_cli jpeg --design --timeline
//   ./build/examples/hybridic_cli synthetic:42 --all
//   ./build/examples/hybridic_cli canny --fault-rate=0.001 --trace
#include <cstdlib>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/profile_cache.hpp"
#include "apps/synthetic.hpp"
#include "core/design_validate.hpp"
#include "core/interconnect_design.hpp"
#include "core/json_export.hpp"
#include "core/multi_board_design.hpp"
#include "sys/multi_board.hpp"
#include "tiers/analytic.hpp"
#include "prof/dot_export.hpp"
#include "sys/engine/chrome_trace.hpp"
#include "sys/experiment.hpp"
#include "search/anneal.hpp"
#include "sys/pipeline_executor.hpp"
#include "store/adapters.hpp"
#include "store/store.hpp"
#include "sys/timeline.hpp"
#include "tiers/tiered_evaluator.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace hybridic;

namespace {

constexpr int kExitVerified = 0;
constexpr int kExitUnverified = 1;
constexpr int kExitUsage = 2;
constexpr int kExitConfig = 3;
constexpr int kExitTimeout = 4;
constexpr int kExitStore = 5;

/// Thrown for malformed command lines; mapped to exit code 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Strict unsigned parse: the whole string must be digits (no atoi
/// silently-zero behaviour for "abc" or trailing junk for "12abc").
std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  if (text.empty()) {
    throw UsageError{what + " is empty"};
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw UsageError{what + " '" + text + "' is not a non-negative integer"};
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

double parse_rate(const std::string& text) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw UsageError{"--fault-rate '" + text + "' is not a number"};
  }
  if (consumed != text.size()) {
    throw UsageError{"--fault-rate '" + text + "' has trailing characters"};
  }
  return value;
}

const std::set<std::string> kKnownFlags = {
    "--design", "--profile", "--dot",      "--memory", "--timeline",
    "--trace",  "--json",    "--validate", "--search", "--all"};

const std::set<std::string> kKnownApps = {"canny", "jpeg", "klt", "fluid"};

struct CliOptions {
  std::string app_spec;
  std::set<std::string> flags;
  std::uint32_t frames = 0;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 1;
  tiers::TierMode tier = tiers::TierMode::kCycle;
  std::string store_dir;  ///< Empty = no persistent store.
  std::uint32_t boards = 1;
  std::string board_topology = "chain";
};

/// Validate the whole command line up front, before any expensive work, so
/// a typo in the last flag fails in milliseconds and not after a profile run.
CliOptions parse_cli(int argc, char** argv) {
  if (argc < 2) {
    throw UsageError{"missing <app> argument"};
  }
  CliOptions options;
  options.app_spec = argv[1];
  if (kKnownApps.count(options.app_spec) == 0) {
    if (options.app_spec.rfind("synthetic:", 0) == 0) {
      // Validate the seed now; the value is re-read in load_app.
      (void)parse_u64(options.app_spec.substr(std::string{"synthetic:"}.size()),
                      "synthetic seed");
    } else {
      throw UsageError{"unknown app '" + options.app_spec +
                       "' (expected canny|jpeg|klt|fluid|synthetic:SEED)"};
    }
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--frames=", 0) == 0) {
      options.frames = static_cast<std::uint32_t>(parse_u64(
          arg.substr(std::string{"--frames="}.size()), "--frames"));
    } else if (arg.rfind("--fault-rate=", 0) == 0) {
      options.fault_rate =
          parse_rate(arg.substr(std::string{"--fault-rate="}.size()));
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      options.fault_seed = parse_u64(
          arg.substr(std::string{"--fault-seed="}.size()), "--fault-seed");
    } else if (arg.rfind("--tier=", 0) == 0) {
      const std::string value = arg.substr(std::string{"--tier="}.size());
      const auto mode = tiers::parse_tier_mode(value);
      if (!mode) {
        throw UsageError{"unknown --tier value '" + value +
                         "' (expected auto, analytic, or cycle)"};
      }
      options.tier = *mode;
    } else if (arg.rfind("--store=", 0) == 0) {
      options.store_dir = arg.substr(std::string{"--store="}.size());
      if (options.store_dir.empty()) {
        throw UsageError{"--store needs a directory path"};
      }
    } else if (arg.rfind("--boards=", 0) == 0) {
      options.boards = static_cast<std::uint32_t>(parse_u64(
          arg.substr(std::string{"--boards="}.size()), "--boards"));
      if (options.boards == 0) {
        throw UsageError{"--boards must be >= 1"};
      }
    } else if (arg.rfind("--board-topology=", 0) == 0) {
      options.board_topology =
          arg.substr(std::string{"--board-topology="}.size());
      if (options.board_topology != "chain" &&
          options.board_topology != "ring" &&
          options.board_topology != "mesh") {
        throw UsageError{"unknown --board-topology value '" +
                         options.board_topology +
                         "' (expected chain, ring, or mesh)"};
      }
    } else if (kKnownFlags.count(arg) > 0) {
      options.flags.insert(arg);
    } else {
      throw UsageError{"unknown flag '" + arg + "'"};
    }
  }
  return options;
}

/// Load (or restore from the store) the requested application. With a
/// store the profile round-trips through the content-addressed L2: a warm
/// directory skips the QUAD pass entirely, a cold one gets populated.
std::shared_ptr<const apps::ProfiledApp> load_app(
    const std::string& spec, const std::string& store_dir) {
  apps::ProfileCache cache;
  if (!store_dir.empty()) {
    cache.set_l2(std::make_shared<store::ProfileStoreL2>(
        std::make_shared<store::Store>(store_dir)));
  }
  if (spec.rfind("synthetic:", 0) == 0) {
    apps::SyntheticConfig config;
    config.seed =
        parse_u64(spec.substr(std::string{"synthetic:"}.size()), "seed");
    return cache.synthetic_app(config);
  }
  return cache.paper_app(spec);
}

void print_usage() {
  std::cout << "usage: hybridic_cli <canny|jpeg|klt|fluid|synthetic:SEED>"
               " [--design] [--profile] [--dot] [--memory] [--timeline]"
               " [--trace] [--json] [--validate] [--search] [--frames=N]"
               " [--fault-rate=R] [--fault-seed=S]"
               " [--tier=auto|analytic|cycle] [--store=DIR]"
               " [--boards=N] [--board-topology=chain|ring|mesh] [--all]\n"
               "  --store=DIR  reuse profiles from (and publish them to) a"
               " persistent\n"
               "               content-addressed store; exit code 5 when DIR"
               " is unusable\n";
}

/// The analytic tier's one-screen summary (docs/MODEL.md §14).
void print_estimate(const tiers::TierEstimate& est) {
  std::cout << "analytic tier estimate (" << est.solution_tag << "):\n"
            << "  baseline kernel time  "
            << format_fixed(est.baseline_kernel_seconds * 1e3, 3)
            << " ms  (band "
            << format_fixed(est.baseline_lower_seconds * 1e3, 3) << " .. "
            << format_fixed(est.baseline_upper_seconds * 1e3, 3)
            << " ms)\n"
            << "  designed kernel time  "
            << format_fixed(est.designed_kernel_seconds * 1e3, 3)
            << " ms  (band "
            << format_fixed(est.designed_lower_seconds * 1e3, 3) << " .. "
            << format_fixed(est.designed_upper_seconds * 1e3, 3)
            << " ms)\n"
            << "  NoC routing           " << est.noc_edges << " edges, "
            << est.noc_volume_bytes << " bytes, " << est.noc_hop_bytes
            << " hop-bytes (busiest link " << est.noc_max_link_bytes
            << " bytes)\n"
            << "  congruence key        " << std::hex << est.congruence_key
            << std::dec << "\n\n";
}

/// One-screen "Algorithm 1 vs searched" summary. Fixed seed: the CLI's
/// output is a determinism contract like everything else it prints.
void print_search(const search::SearchResult& sr) {
  const search::SearchRecord r = sr.record();
  std::cout << "annealed search (" << r.solution_tag << "):\n"
            << "  algorithm 1  "
            << format_fixed(r.algorithm1_analytic_seconds * 1e3, 3)
            << " ms analytic, " << r.algorithm1_luts << " LUTs\n"
            << "  searched     " << format_fixed(r.analytic_seconds * 1e3, 3)
            << " ms analytic, " << r.luts << " LUTs  (gain "
            << format_ratio(r.gain) << ", restart " << r.best_restart
            << ")\n"
            << "  moves        " << r.proposed << " proposed, " << r.accepted
            << " accepted, " << r.rejected_illegal << " rejected illegal, "
            << r.cache_hits << " congruence-cache hits\n";
  if (sr.cycle.has_value()) {
    std::cout << "  cycle check  "
              << format_fixed(sr.cycle->measured_kernel_seconds * 1e3, 3)
              << " ms — "
              << (sr.cycle->within_band ? "inside" : "OUTSIDE")
              << " the analytic band\n";
  }
  std::cout << "\n";
}

/// Two-level design summary: the board partition and (when simulated) the
/// multi-board run.
void print_multi_board(const core::MultiBoardDesign& multi,
                       const std::string& topology,
                       const sys::MultiBoardRunResult* run) {
  const core::BoardPartition& part = multi.partition;
  std::cout << "two-level design: " << part.board_count << " boards ("
            << topology << " links)\n";
  for (std::uint32_t b = 0; b < part.board_count; ++b) {
    std::cout << "  board " << b << ": "
              << multi.board_kernels[b].size() << " kernels, intra-board "
              << part.intra_board_bytes[b].count() << " bytes\n";
  }
  std::cout << "  cut: " << multi.cut_edges.size() << " edges, "
            << part.cut_bytes.count() << " of " << part.total_bytes.count()
            << " bytes cross boards (" << part.refinement_moves
            << " refinement moves)\n";
  if (run != nullptr) {
    std::cout << "  multi-board run: total "
              << format_fixed(run->run.total_seconds * 1e3, 3) << " ms, "
              << run->inter_board_transfers << " link transfers, "
              << run->inter_board_bytes << " bytes, link busy "
              << format_fixed(run->inter_board_busy_seconds * 1e3, 3)
              << " ms, reroutes " << run->board_link_reroutes << "\n";
  }
  std::cout << "\n";
}

int run_cli(const CliOptions& cli) {
  std::set<std::string> flags = cli.flags;
  // Remembered across the --all remap below.
  const bool do_search = cli.flags.count("--search") > 0;
  std::uint32_t frames = cli.frames;
  if (flags.count("--all") > 0) {
    flags = {"--design", "--profile", "--memory", "--timeline",
             "--validate", "--compare"};
    if (frames == 0) {
      frames = 32;
    }
  } else if (flags.empty() && frames == 0) {
    flags = {"--design", "--profile", "--memory", "--timeline",
             "--compare"};
  } else {
    flags.insert("--compare");
  }

  sys::PlatformConfig platform_config;
  if (cli.fault_rate != 0.0) {
    require(cli.fault_rate > 0.0 && cli.fault_rate <= 1.0,
            "--fault-rate must be a probability in (0, 1], got " +
                std::to_string(cli.fault_rate));
    platform_config.faults.seed = cli.fault_seed;
    platform_config.faults.flit_corruption_rate = cli.fault_rate;
    platform_config.faults.bus_error_rate = cli.fault_rate;
    platform_config.faults.bus_stall_rate = cli.fault_rate;
    platform_config.faults.sdram_bitflip_rate = cli.fault_rate;
    platform_config.faults.bram_bitflip_rate = cli.fault_rate;
    platform_config.faults.resilience.noc_crc = true;
  }

  const std::shared_ptr<const apps::ProfiledApp> app_ptr =
      load_app(cli.app_spec, cli.store_dir);
  const apps::ProfiledApp& app = *app_ptr;
  std::cout << "application: " << app.name << "  verification: "
            << (app.verified ? "PASS" : "FAIL") << " ("
            << app.verification_note << ")\n\n";

  if (flags.count("--profile") > 0) {
    std::cout << app.graph().summary() << "\n";
  }
  if (flags.count("--dot") > 0) {
    std::set<prof::FunctionId> hw;
    for (const auto& entry : app.calibration) {
      if (entry.is_kernel) {
        hw.insert(app.graph().id_of(entry.function));
      }
    }
    std::cout << prof::to_dot(app.graph(), hw) << "\n";
  }
  if (flags.count("--memory") > 0) {
    std::cout << app.profiler->memory_report() << "\n";
  }

  const sys::AppSchedule schedule = app.schedule();

  if (cli.tier == tiers::TierMode::kAnalytic) {
    // Fast tier only: Algorithm 1 plus the hop-count x volume pricing —
    // the cycle-accurate engine is never touched, so simulation-derived
    // outputs are unavailable.
    const core::DesignInput input =
        sys::make_design_input(schedule, platform_config);
    const core::DesignResult design = core::design_interconnect(input);
    tiers::TierEstimate est = tiers::analytic_estimate(
        schedule, design, platform_config, input.theta.seconds_per_byte);
    est.congruence_key = tiers::congruence_key_of(tiers::congruence_signature(
        schedule, design, input.theta.seconds_per_byte));
    if (flags.count("--design") > 0) {
      std::cout << design.describe(app.graph()) << "\n";
    }
    if (flags.count("--json") > 0) {
      std::cout << core::to_json(design, schedule.specs) << "\n";
    }
    if (flags.count("--validate") > 0) {
      const auto issues = core::validate_design(design, schedule.specs);
      if (issues.empty()) {
        std::cout << "design validation: clean\n\n";
      } else {
        std::cout << "design validation:\n"
                  << core::format_issues(issues) << "\n";
      }
    }
    print_estimate(est);
    if (do_search) {
      print_search(
          search::anneal_interconnect(schedule, input, platform_config, {}));
    }
    if (cli.boards > 1) {
      core::MultiBoardDesignInput minput;
      minput.base = input;
      minput.board_count = cli.boards;
      const core::MultiBoardDesign multi = core::design_multi_board(minput);
      const sys::MultiBoardConfig mbc = sys::MultiBoardConfig::uniform(
          cli.boards, platform_config,
          core::parse_board_topology(cli.board_topology));
      const tiers::TierEstimate mest = tiers::analytic_estimate_multi(
          schedule, multi, mbc, input.theta.seconds_per_byte);
      print_multi_board(multi, cli.board_topology, nullptr);
      std::cout << "inter-board analytic term: " << mest.inter_board_edges
                << " cut edges, " << mest.inter_board_bytes << " bytes, "
                << mest.inter_board_hop_bytes
                << " hop-bytes, serialized "
                << format_fixed(mest.inter_board_seconds * 1e3, 3)
                << " ms\n"
                << "designed band (multi-board) "
                << format_fixed(mest.designed_lower_seconds * 1e3, 3)
                << " .. "
                << format_fixed(mest.designed_upper_seconds * 1e3, 3)
                << " ms\n\n";
    }
    for (const char* skipped : {"--timeline", "--trace", "--compare"}) {
      if (flags.count(skipped) > 0) {
        std::cout << skipped
                  << " needs the cycle-accurate engine; rerun with"
                     " --tier=cycle or --tier=auto\n";
      }
    }
    if (frames > 0 || cli.fault_rate != 0.0) {
      std::cout << "pipelining and fault injection need the cycle-accurate"
                   " engine; rerun with --tier=cycle or --tier=auto\n";
    }
    return app.verified ? kExitVerified : kExitUnverified;
  }

  const sys::AppExperiment exp =
      sys::run_experiment(schedule, platform_config, app.environment);

  if (cli.tier == tiers::TierMode::kAuto) {
    // Both tiers: price analytically, then report whether the simulated
    // designed kernel time landed inside the calibrated band.
    tiers::TieredEvaluator evaluator{platform_config};
    const tiers::TierEstimate est =
        evaluator.estimate(schedule, exp.proposed_design);
    print_estimate(est);
    const double measured = exp.proposed.kernel_seconds();
    std::cout << "cycle-accurate designed kernel time "
              << format_fixed(measured * 1e3, 3) << " ms — "
              << (est.contains_designed(measured) ? "inside" : "OUTSIDE")
              << " the analytic band\n\n";
  }

  if (do_search) {
    // Cycle tiers close the loop: the incumbent is simulated and checked
    // against its own analytic band.
    search::AnnealOptions sopt;
    sopt.cycle_validate = true;
    const core::DesignInput input =
        sys::make_design_input(schedule, platform_config);
    print_search(
        search::anneal_interconnect(schedule, input, platform_config, sopt));
  }

  if (flags.count("--design") > 0) {
    std::cout << exp.proposed_design.describe(app.graph()) << "\n";
  }
  if (flags.count("--json") > 0) {
    std::cout << core::to_json(exp.proposed_design, schedule.specs)
              << "\n";
  }
  if (flags.count("--validate") > 0) {
    const auto issues =
        core::validate_design(exp.proposed_design, schedule.specs);
    if (issues.empty()) {
      std::cout << "design validation: clean\n\n";
    } else {
      std::cout << "design validation:\n"
                << core::format_issues(issues) << "\n";
    }
  }
  if (flags.count("--timeline") > 0) {
    std::cout << sys::render_timeline(exp.proposed) << "\n";
  }
  if (flags.count("--trace") > 0) {
    std::cout << sys::render_trace_lanes(exp.proposed) << "\n";
    std::cout << sys::engine::chrome_trace_json(
                     exp.proposed.trace, exp.proposed.system_name)
              << "\n\n";
  }
  if (cli.fault_rate != 0.0) {
    const faults::FaultStats& fs = exp.proposed.fault_stats;
    std::cout << "fault injection (rate " << cli.fault_rate << ", seed "
              << cli.fault_seed << "): " << fs.flits_corrupted
              << " flits corrupted, " << fs.packets_retransmitted
              << " retransmits, " << fs.bus_errors << " bus errors, "
              << fs.mem_bitflips << " memory bit flips, "
              << fs.corrupted_bytes << " corrupted bytes delivered\n\n";
  }
  if (frames > 0) {
    const sys::PipelineResult pipelined = sys::run_designed_pipelined(
        schedule, exp.proposed_design, platform_config, frames);
    std::cout << "pipelined over " << frames << " frames: makespan "
              << format_fixed(pipelined.makespan_seconds * 1e3, 2)
              << " ms, throughput "
              << format_fixed(pipelined.throughput_fps(), 1)
              << " fps, bottleneck: " << pipelined.bottleneck_stage
              << "\n\n";
  }
  if (cli.boards > 1) {
    core::MultiBoardDesignInput minput;
    minput.base = sys::make_design_input(schedule, platform_config);
    minput.board_count = cli.boards;
    const core::MultiBoardDesign multi = core::design_multi_board(minput);
    const sys::MultiBoardConfig mbc = sys::MultiBoardConfig::uniform(
        cli.boards, platform_config,
        core::parse_board_topology(cli.board_topology));
    const sys::MultiBoardRunResult mrun =
        sys::run_designed_multi(schedule, multi, mbc);
    print_multi_board(multi, cli.board_topology, &mrun);
  }
  if (flags.count("--compare") > 0) {
    Table table{"System comparison"};
    table.set_header(
        {"system", "total", "vs SW", "vs baseline", "LUTs", "regs"});
    const auto row = [&](const std::string& name,
                         const sys::RunResult& run,
                         const core::Resources& res) {
      table.add_row(
          {name, format_fixed(run.total_seconds * 1e3, 3) + " ms",
           format_ratio(exp.sw.total_seconds / run.total_seconds),
           format_ratio(exp.baseline.total_seconds / run.total_seconds),
           std::to_string(res.luts), std::to_string(res.regs)});
    };
    row("software", exp.sw, core::Resources{0, 0});
    row("baseline", exp.baseline, exp.baseline_resources);
    row("proposed", exp.proposed, exp.proposed_resources);
    row("noc-only", exp.noc_only, exp.noc_only_resources);
    table.render(std::cout);
    std::cout << "design solution: "
              << exp.proposed_design.solution_tag() << "   energy saved: "
              << format_percent(1.0 - exp.energy_ratio_vs_baseline())
              << "\n";
  }
  return app.verified ? kExitVerified : kExitUnverified;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--help") {
      print_usage();
      return kExitVerified;
    }
    if (std::string{argv[i]} == "--version") {
      std::cout << "hybridic_cli engine revision "
                << hybridic::store::kEngineRevision << "\n";
      return kExitVerified;
    }
  }
  CliOptions cli;
  try {
    cli = parse_cli(argc, argv);
  } catch (const UsageError& error) {
    std::cerr << "usage error: " << error.what() << "\n";
    print_usage();
    return kExitUsage;
  }
  try {
    return run_cli(cli);
  } catch (const SimTimeoutError& error) {
    std::cerr << "timeout: " << error.what() << "\n";
    for (const std::string& op : error.stuck_ops()) {
      std::cerr << "  stuck: " << op << "\n";
    }
    return kExitTimeout;
  } catch (const store::StoreError& error) {
    std::cerr << "store error: " << error.what() << "\n";
    return kExitStore;
  } catch (const ConfigError& error) {
    std::cerr << "config error: " << error.what() << "\n";
    return kExitConfig;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return kExitUnverified;
  }
}
