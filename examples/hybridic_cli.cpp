// hybridic_cli — command-line driver for the whole pipeline.
//
//   hybridic_cli <app> [options]
//
//   <app>        canny | jpeg | klt | fluid | synthetic:<seed>
//   --design     print the custom interconnect design (Fig. 6 style)
//   --profile    print the communication profile (Fig. 5 style)
//   --dot        print the profile as Graphviz DOT
//   --memory     print the profiler's flat memory report
//   --timeline   print an ASCII timeline of the proposed-system run
//   --trace      print per-fabric trace lanes + Chrome-trace JSON
//   --json       print the design as JSON (toolchain hand-off)
//   --validate   run the design validator and print its findings
//   --frames=N   report pipelined multi-frame throughput over N frames
//   --all        everything above plus the system comparison (default)
//
// Examples:
//   ./build/examples/hybridic_cli jpeg --design --timeline
//   ./build/examples/hybridic_cli synthetic:42 --all
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/synthetic.hpp"
#include "core/design_validate.hpp"
#include "core/json_export.hpp"
#include "prof/dot_export.hpp"
#include "sys/engine/chrome_trace.hpp"
#include "sys/experiment.hpp"
#include "sys/pipeline_executor.hpp"
#include "sys/timeline.hpp"
#include "util/table.hpp"

using namespace hybridic;

namespace {

apps::ProfiledApp load_app(const std::string& spec) {
  if (spec.rfind("synthetic:", 0) == 0) {
    apps::SyntheticConfig config;
    config.seed = static_cast<std::uint64_t>(
        std::atoll(spec.substr(std::string{"synthetic:"}.size()).c_str()));
    return apps::make_synthetic_app(config);
  }
  return apps::run_paper_app(spec);
}

void print_usage() {
  std::cout << "usage: hybridic_cli <canny|jpeg|klt|fluid|synthetic:SEED>"
               " [--design] [--profile] [--dot] [--memory] [--timeline]"
               " [--trace] [--all]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string app_spec = argv[1];
  std::set<std::string> flags;
  std::uint32_t frames = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--frames=", 0) == 0) {
      frames = static_cast<std::uint32_t>(
          std::atoi(arg.substr(std::string{"--frames="}.size()).c_str()));
      continue;
    }
    flags.insert(arg);
  }
  if (flags.count("--all") > 0) {
    flags = {"--design", "--profile", "--memory", "--timeline",
             "--validate", "--compare"};
    if (frames == 0) {
      frames = 32;
    }
  } else if (flags.empty() && frames == 0) {
    flags = {"--design", "--profile", "--memory", "--timeline",
             "--compare"};
  } else {
    flags.insert("--compare");
  }

  apps::ProfiledApp app;
  try {
    app = load_app(app_spec);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    print_usage();
    return 2;
  }
  std::cout << "application: " << app.name << "  verification: "
            << (app.verified ? "PASS" : "FAIL") << " ("
            << app.verification_note << ")\n\n";

  if (flags.count("--profile") > 0) {
    std::cout << app.graph().summary() << "\n";
  }
  if (flags.count("--dot") > 0) {
    std::set<prof::FunctionId> hw;
    for (const auto& entry : app.calibration) {
      if (entry.is_kernel) {
        hw.insert(app.graph().id_of(entry.function));
      }
    }
    std::cout << prof::to_dot(app.graph(), hw) << "\n";
  }
  if (flags.count("--memory") > 0) {
    std::cout << app.profiler->memory_report() << "\n";
  }

  const sys::AppSchedule schedule = app.schedule();
  const sys::AppExperiment exp = sys::run_experiment(
      schedule, sys::PlatformConfig{}, app.environment);

  if (flags.count("--design") > 0) {
    std::cout << exp.proposed_design.describe(app.graph()) << "\n";
  }
  if (flags.count("--json") > 0) {
    std::cout << core::to_json(exp.proposed_design, schedule.specs)
              << "\n";
  }
  if (flags.count("--validate") > 0) {
    const auto issues =
        core::validate_design(exp.proposed_design, schedule.specs);
    if (issues.empty()) {
      std::cout << "design validation: clean\n\n";
    } else {
      std::cout << "design validation:\n"
                << core::format_issues(issues) << "\n";
    }
  }
  if (flags.count("--timeline") > 0) {
    std::cout << sys::render_timeline(exp.proposed) << "\n";
  }
  if (flags.count("--trace") > 0) {
    std::cout << sys::render_trace_lanes(exp.proposed) << "\n";
    std::cout << sys::engine::chrome_trace_json(
                     exp.proposed.trace, exp.proposed.system_name)
              << "\n\n";
  }
  if (frames > 0) {
    const sys::PipelineResult pipelined = sys::run_designed_pipelined(
        schedule, exp.proposed_design, sys::PlatformConfig{}, frames);
    std::cout << "pipelined over " << frames << " frames: makespan "
              << format_fixed(pipelined.makespan_seconds * 1e3, 2)
              << " ms, throughput "
              << format_fixed(pipelined.throughput_fps(), 1)
              << " fps, bottleneck: " << pipelined.bottleneck_stage
              << "\n\n";
  }
  if (flags.count("--compare") > 0) {
    Table table{"System comparison"};
    table.set_header(
        {"system", "total", "vs SW", "vs baseline", "LUTs", "regs"});
    const auto row = [&](const std::string& name,
                         const sys::RunResult& run,
                         const core::Resources& res) {
      table.add_row(
          {name, format_fixed(run.total_seconds * 1e3, 3) + " ms",
           format_ratio(exp.sw.total_seconds / run.total_seconds),
           format_ratio(exp.baseline.total_seconds / run.total_seconds),
           std::to_string(res.luts), std::to_string(res.regs)});
    };
    row("software", exp.sw, core::Resources{0, 0});
    row("baseline", exp.baseline, exp.baseline_resources);
    row("proposed", exp.proposed, exp.proposed_resources);
    row("noc-only", exp.noc_only, exp.noc_only_resources);
    table.render(std::cout);
    std::cout << "design solution: "
              << exp.proposed_design.solution_tag() << "   energy saved: "
              << format_percent(1.0 - exp.energy_ratio_vs_baseline())
              << "\n";
  }
  return app.verified ? 0 : 1;
}
