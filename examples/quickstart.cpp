// Quickstart: the whole HybridIC flow on a tiny hand-written application.
//
//   1. Run your application against tracked buffers under the QuadProfiler
//      (this is the QUAD-style communication profiling).
//   2. Describe the kernel candidates (L_hw) with calibration data.
//   3. Let Algorithm 1 design the custom interconnect.
//   4. Simulate the baseline and the proposed system and compare.
//
// Build and run:  ./build/examples/quickstart
#include <iostream>

#include "util/table.hpp"
#include "core/interconnect_design.hpp"
#include "prof/tracked.hpp"
#include "sys/experiment.hpp"

using namespace hybridic;

int main() {
  // ---- 1. Profile a three-stage pipeline: produce -> sharpen -> reduce.
  prof::QuadProfiler profiler;
  const auto fn_produce = profiler.declare("produce");   // host
  const auto fn_sharpen = profiler.declare("sharpen");   // kernel
  const auto fn_reduce = profiler.declare("reduce");     // kernel
  const auto fn_consume = profiler.declare("consume");   // host

  constexpr std::size_t kN = 16 * 1024;
  prof::TrackedBuffer<float> input{profiler, "input", kN};
  prof::TrackedBuffer<float> sharpened{profiler, "sharpened", kN};
  prof::TrackedBuffer<float> result{profiler, "result", kN / 16};

  {
    prof::ScopedFunction scope{profiler, fn_produce};
    for (std::size_t i = 0; i < kN; ++i) {
      input.set(i, static_cast<float>(i % 251));
      profiler.add_work(1);
    }
  }
  {
    prof::ScopedFunction scope{profiler, fn_sharpen};
    for (std::size_t i = 1; i + 1 < kN; ++i) {
      sharpened.set(i, 2.0F * input.get(i) -
                           0.5F * (input.get(i - 1) + input.get(i + 1)));
      profiler.add_work(4);
    }
  }
  {
    prof::ScopedFunction scope{profiler, fn_reduce};
    for (std::size_t block = 0; block < kN / 16; ++block) {
      float acc = 0.0F;
      for (std::size_t j = 0; j < 16; ++j) {
        acc += sharpened.get(block * 16 + j);
      }
      result.set(block, acc / 16.0F);
      profiler.add_work(17);
    }
  }
  float checksum = 0.0F;
  {
    prof::ScopedFunction scope{profiler, fn_consume};
    for (std::size_t i = 0; i < kN / 16; ++i) {
      checksum += result.get(i);
      profiler.add_work(1);
    }
  }
  std::cout << "application ran, checksum " << checksum << "\n\n";
  std::cout << profiler.graph().summary() << "\n";

  // ---- 2. Kernel candidates + calibration (cycles per work unit, area).
  const sys::AppSchedule schedule = sys::build_schedule(
      "quickstart", profiler.graph(),
      {
          {"sharpen", 6.0, 0.8, 1800, 2100, /*kernel=*/true,
           /*duplicable=*/false, /*streaming=*/true},
          {"reduce", 5.0, 0.6, 1200, 1500, true, false, true},
      });

  // ---- 3. Design the custom interconnect (Algorithm 1).
  const sys::PlatformConfig platform;
  const core::DesignInput input_spec =
      sys::make_design_input(schedule, platform);
  const core::DesignResult design = core::design_interconnect(input_spec);
  std::cout << design.describe(profiler.graph()) << "\n";

  // ---- 4. Simulate and compare the three systems.
  const sys::RunResult sw = sys::run_software(schedule, platform);
  const sys::RunResult baseline = sys::run_baseline(schedule, platform);
  const sys::RunResult proposed =
      sys::run_designed(schedule, design, platform);

  std::cout << "software:  " << format_fixed(sw.total_seconds * 1e6, 1)
            << " us\n";
  std::cout << "baseline:  "
            << format_fixed(baseline.total_seconds * 1e6, 1) << " us ("
            << format_ratio(sw.total_seconds / baseline.total_seconds)
            << " vs software)\n";
  std::cout << "proposed:  "
            << format_fixed(proposed.total_seconds * 1e6, 1) << " us ("
            << format_ratio(baseline.total_seconds / proposed.total_seconds)
            << " vs baseline)\n";
  return 0;
}
