// Batch runner + profile cache: the PR-2 determinism and memoization
// contract.
//  (a) N-thread results are bit-identical to 1-thread results for all four
//      paper applications (every timing, resource, and energy field, plus
//      the serialized design).
//  (b) A profile-cache hit returns the same CommGraph as the cold run and
//      performs zero shadow-memory scans.
//  (c) An exception in one job doesn't poison the pool: every other job
//      completes and the runner stays usable.
// Plus thread-pool and seeding basics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.hpp"
#include "apps/profile_cache.hpp"
#include "core/json_export.hpp"
#include "sys/batch_runner.hpp"
#include "sys/experiment.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hybridic {
namespace {

/// Run all four paper experiments through a BatchRunner with `threads`
/// workers and a cold cache, keyed by app name.
std::map<std::string, sys::AppExperiment> run_batch(std::size_t threads,
                                                    apps::ProfileCache& cache) {
  sys::BatchRunner runner{threads};
  const std::vector<std::string> names = apps::paper_app_names();
  std::vector<sys::BatchRunner::Job<sys::AppExperiment>> jobs;
  for (const std::string& name : names) {
    jobs.push_back({"experiment/" + name, [&cache, name](sys::JobContext&) {
                      const auto app = cache.paper_app(name);
                      return sys::run_experiment(app->schedule(),
                                                 sys::PlatformConfig{},
                                                 app->environment);
                    }});
  }
  std::vector<sys::AppExperiment> results = runner.run(std::move(jobs));
  std::map<std::string, sys::AppExperiment> out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    out.emplace(names[i], std::move(results[i]));
  }
  return out;
}

void expect_identical_runs(const sys::RunResult& a, const sys::RunResult& b) {
  EXPECT_EQ(a.system_name, b.system_name);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.host_seconds, b.host_seconds);
  EXPECT_EQ(a.kernel_compute_seconds, b.kernel_compute_seconds);
  EXPECT_EQ(a.kernel_comm_seconds, b.kernel_comm_seconds);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].name, b.steps[i].name);
    EXPECT_EQ(a.steps[i].start_seconds, b.steps[i].start_seconds);
    EXPECT_EQ(a.steps[i].done_seconds, b.steps[i].done_seconds);
    EXPECT_EQ(a.steps[i].compute_seconds, b.steps[i].compute_seconds);
    EXPECT_EQ(a.steps[i].comm_seconds, b.steps[i].comm_seconds);
  }
}

TEST(BatchRunner, FourThreadResultsBitIdenticalToOneThread) {
  apps::ProfileCache cache_1t;
  apps::ProfileCache cache_4t;
  const auto serial = run_batch(1, cache_1t);
  const auto parallel = run_batch(4, cache_4t);

  ASSERT_EQ(serial.size(), 4U);
  ASSERT_EQ(parallel.size(), 4U);
  for (const std::string& name : apps::paper_app_names()) {
    SCOPED_TRACE(name);
    const sys::AppExperiment& a = serial.at(name);
    const sys::AppExperiment& b = parallel.at(name);
    expect_identical_runs(a.sw, b.sw);
    expect_identical_runs(a.baseline, b.baseline);
    expect_identical_runs(a.proposed, b.proposed);
    expect_identical_runs(a.noc_only, b.noc_only);
    EXPECT_EQ(a.baseline_resources.luts, b.baseline_resources.luts);
    EXPECT_EQ(a.baseline_resources.regs, b.baseline_resources.regs);
    EXPECT_EQ(a.proposed_resources.luts, b.proposed_resources.luts);
    EXPECT_EQ(a.proposed_resources.regs, b.proposed_resources.regs);
    EXPECT_EQ(a.noc_only_resources.luts, b.noc_only_resources.luts);
    EXPECT_EQ(a.noc_only_resources.regs, b.noc_only_resources.regs);
    EXPECT_EQ(a.baseline_power_watts, b.baseline_power_watts);
    EXPECT_EQ(a.proposed_power_watts, b.proposed_power_watts);
    EXPECT_EQ(a.baseline_energy_joules, b.baseline_energy_joules);
    EXPECT_EQ(a.proposed_energy_joules, b.proposed_energy_joules);
    // The full serialized design must match byte for byte.
    const auto specs = cache_1t.paper_app(name)->schedule().specs;
    EXPECT_EQ(core::to_json(a.proposed_design, specs),
              core::to_json(b.proposed_design, specs));
    EXPECT_EQ(a.proposed_design.solution_tag(),
              b.proposed_design.solution_tag());
  }
}

TEST(ProfileCache, HitReturnsSameGraphWithZeroShadowScans) {
  apps::ProfileCache cache;
  const auto cold = cache.paper_app("jpeg");
  EXPECT_EQ(cache.misses(), 1U);
  EXPECT_EQ(cache.hits(), 0U);

  const std::uint64_t scans_after_cold = cold->profiler->shadow().scan_count();
  EXPECT_GT(scans_after_cold, 0U);  // Profiling itself scanned.

  const auto hit = cache.paper_app("jpeg");
  EXPECT_EQ(cache.misses(), 1U);
  EXPECT_EQ(cache.hits(), 1U);

  // Hit path: the very same entry, and not one additional shadow pass.
  EXPECT_EQ(hit.get(), cold.get());
  EXPECT_EQ(hit->profiler->shadow().scan_count(), scans_after_cold);

  // Same CommGraph as an independent cold run.
  apps::ProfileCache other;
  const auto fresh = other.paper_app("jpeg");
  const auto edges_hit = hit->graph().edges();
  const auto edges_fresh = fresh->graph().edges();
  ASSERT_EQ(edges_hit.size(), edges_fresh.size());
  for (std::size_t i = 0; i < edges_hit.size(); ++i) {
    EXPECT_EQ(edges_hit[i].producer, edges_fresh[i].producer);
    EXPECT_EQ(edges_hit[i].consumer, edges_fresh[i].consumer);
    EXPECT_EQ(edges_hit[i].bytes.count(), edges_fresh[i].bytes.count());
    EXPECT_EQ(edges_hit[i].unique_addresses, edges_fresh[i].unique_addresses);
  }
  EXPECT_EQ(hit->graph().function_count(), fresh->graph().function_count());
}

TEST(ProfileCache, ConcurrentRequestsProfileOnce) {
  apps::ProfileCache cache;
  sys::BatchRunner runner{4};
  std::vector<sys::BatchRunner::Job<std::uint64_t>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back({"probe/" + std::to_string(i),
                    [&cache](sys::JobContext&) {
                      return cache.paper_app("canny")->graph().total_out(0)
                          .count();
                    }});
  }
  const auto totals = runner.run(std::move(jobs));
  EXPECT_EQ(cache.misses(), 1U);
  EXPECT_EQ(cache.hits(), 7U);
  for (const std::uint64_t total : totals) {
    EXPECT_EQ(total, totals.front());
  }
}

TEST(BatchRunner, ExceptionInOneJobDoesNotPoisonPool) {
  sys::BatchRunner runner{4};
  std::atomic<int> completed{0};
  std::vector<sys::BatchRunner::Job<int>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back({"job/" + std::to_string(i),
                    [i, &completed](sys::JobContext&) {
                      if (i == 3) {
                        throw ConfigError{"job three exploded"};
                      }
                      completed.fetch_add(1);
                      return i * 10;
                    }});
  }
  const auto outcomes = runner.run_collect(std::move(jobs));

  // Every other job ran to completion.
  EXPECT_EQ(completed.load(), 7);
  ASSERT_EQ(outcomes.size(), 8U);
  for (int i = 0; i < 8; ++i) {
    if (i == 3) {
      EXPECT_FALSE(outcomes[static_cast<std::size_t>(i)].has_value());
    } else {
      ASSERT_TRUE(outcomes[static_cast<std::size_t>(i)].has_value());
      EXPECT_EQ(*outcomes[static_cast<std::size_t>(i)], i * 10);
    }
  }
  const sys::BatchReport& report = runner.last_report();
  EXPECT_EQ(report.failed_count(), 1U);
  EXPECT_FALSE(report.jobs[3].ok);
  EXPECT_NE(report.jobs[3].error.find("job three exploded"),
            std::string::npos);

  // run() surfaces the failure as an exception — after the batch drained.
  std::vector<sys::BatchRunner::Job<int>> throwing;
  throwing.push_back({"boom", [](sys::JobContext&) -> int {
                        throw ConfigError{"boom"};
                      }});
  EXPECT_THROW((void)runner.run(std::move(throwing)), ConfigError);

  // The pool is still fully usable afterwards.
  std::vector<sys::BatchRunner::Job<int>> follow_up;
  for (int i = 0; i < 4; ++i) {
    follow_up.push_back({"ok/" + std::to_string(i),
                         [i](sys::JobContext&) { return i + 1; }});
  }
  const auto values = runner.run(std::move(follow_up));
  EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(runner.last_report().failed_count(), 0U);
}

TEST(BatchRunner, JobSeedsAreStableAndPerKey) {
  // Seeds depend only on the key: stable across runs, distinct across keys,
  // and the context Rng starts from exactly that seed.
  EXPECT_EQ(sys::job_seed("experiment/jpeg"), sys::job_seed("experiment/jpeg"));
  EXPECT_NE(sys::job_seed("experiment/jpeg"), sys::job_seed("experiment/klt"));

  sys::BatchRunner runner{4};
  std::vector<sys::BatchRunner::Job<std::uint64_t>> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({"seeded/" + std::to_string(i),
                    [](sys::JobContext& context) {
                      Rng reference{context.seed};
                      EXPECT_EQ(context.rng.next(), reference.next());
                      return context.seed;
                    }});
  }
  const auto seeds = runner.run(std::move(jobs));
  const std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], sys::job_seed("seeded/" + std::to_string(i)));
  }
}

TEST(ThreadPool, ExecutesEverythingAndCountsSteals) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.thread_count(), 4U);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  while (pool.executed_count() < 64) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.executed_count(), 64U);
  // Workers report their identity inside tasks, not outside.
  EXPECT_EQ(ThreadPool::current_worker(), ThreadPool::kNotAWorker);
}

TEST(BatchRunner, ReportCarriesPerJobMetrics) {
  sys::BatchRunner runner{2};
  std::vector<sys::BatchRunner::Job<int>> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back({"metrics/" + std::to_string(i),
                    [i](sys::JobContext& context) {
                      EXPECT_EQ(context.index, static_cast<std::size_t>(i));
                      return i;
                    }});
  }
  (void)runner.run(std::move(jobs));
  const sys::BatchReport& report = runner.last_report();
  EXPECT_EQ(report.thread_count, 2U);
  ASSERT_EQ(report.jobs.size(), 5U);
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    EXPECT_EQ(report.jobs[i].index, i);
    EXPECT_EQ(report.jobs[i].key, "metrics/" + std::to_string(i));
    EXPECT_TRUE(report.jobs[i].ok);
    EXPECT_GE(report.jobs[i].wall_seconds, 0.0);
    EXPECT_LT(report.jobs[i].worker, 2U);
  }
  EXPECT_GE(report.wall_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Supervised batches (docs/MODEL.md §17): watchdog, retry, quarantine,
// admission gate.

TEST(Supervised, OkJobsSettleWithValueAndOneAttempt) {
  sys::BatchRunner runner{2};
  std::vector<sys::BatchRunner::Job<int>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({"ok/" + std::to_string(i),
                    [i](sys::JobContext&) { return i * 10; }});
  }
  const auto slots =
      runner.run_supervised(std::move(jobs), sys::SuperviseOptions{});
  ASSERT_EQ(slots.size(), 4U);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(slots[i].status, sys::JobStatus::kOk);
    ASSERT_TRUE(slots[i].value.has_value());
    EXPECT_EQ(*slots[i].value, i * 10);
    EXPECT_EQ(slots[i].attempts, 1U);
    EXPECT_EQ(runner.last_report().jobs[i].status, sys::JobStatus::kOk);
  }
}

TEST(Supervised, TransientFailureRetriesUntilSuccess) {
  sys::BatchRunner runner{1};
  auto failures_left = std::make_shared<std::atomic<int>>(2);
  std::vector<sys::BatchRunner::Job<int>> jobs;
  jobs.push_back({"flaky", [failures_left](sys::JobContext&) {
                    if (failures_left->fetch_sub(1) > 0) {
                      throw std::runtime_error("transient blip");
                    }
                    return 7;
                  }});
  sys::SuperviseOptions options;
  options.transient_retries = 3;
  options.backoff_initial_seconds = 0.001;
  options.is_transient = [](const std::exception&) { return true; };
  const auto slots = runner.run_supervised(std::move(jobs), options);
  ASSERT_EQ(slots.size(), 1U);
  EXPECT_EQ(slots[0].status, sys::JobStatus::kOk);
  EXPECT_EQ(*slots[0].value, 7);
  EXPECT_EQ(slots[0].attempts, 3U);  // Two blips + the success.
}

TEST(Supervised, NonTransientFailureIsNeverRetried) {
  sys::BatchRunner runner{1};
  auto calls = std::make_shared<std::atomic<int>>(0);
  std::vector<sys::BatchRunner::Job<int>> jobs;
  jobs.push_back({"bug", [calls](sys::JobContext&) -> int {
                    calls->fetch_add(1);
                    throw std::logic_error("deterministic bug");
                  }});
  sys::SuperviseOptions options;
  options.transient_retries = 5;
  options.is_transient = [](const std::exception&) { return false; };
  const auto slots = runner.run_supervised(std::move(jobs), options);
  EXPECT_EQ(slots[0].status, sys::JobStatus::kCrashed);
  EXPECT_EQ(slots[0].error, "deterministic bug");
  EXPECT_EQ(slots[0].attempts, 1U);
  EXPECT_EQ(calls->load(), 1);
}

TEST(Supervised, RetryBudgetExhaustionEndsInCrashed) {
  sys::BatchRunner runner{1};
  std::vector<sys::BatchRunner::Job<int>> jobs;
  jobs.push_back({"always-flaky", [](sys::JobContext&) -> int {
                    throw std::runtime_error("still flaky");
                  }});
  sys::SuperviseOptions options;
  options.transient_retries = 2;
  options.backoff_initial_seconds = 0.001;
  options.is_transient = [](const std::exception&) { return true; };
  const auto slots = runner.run_supervised(std::move(jobs), options);
  EXPECT_EQ(slots[0].status, sys::JobStatus::kCrashed);
  EXPECT_EQ(slots[0].attempts, 3U);
}

TEST(Supervised, WatchdogExpiryQuarantinesWithoutRetry) {
  sys::BatchRunner runner{2};
  // The wedge job polls a cancel flag so the abandoned thread drains
  // promptly once the test is done (a real wedge would sleep until
  // process exit).
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  auto attempts = std::make_shared<std::atomic<int>>(0);
  std::vector<sys::BatchRunner::Job<int>> jobs;
  jobs.push_back({"wedged", [cancel, attempts](sys::JobContext&) {
                    attempts->fetch_add(1);
                    while (!cancel->load()) {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(1));
                    }
                    return 0;
                  }});
  jobs.push_back({"fine", [](sys::JobContext&) { return 42; }});
  sys::SuperviseOptions options;
  options.job_timeout_seconds = 0.05;
  options.transient_retries = 3;  // Must NOT apply to timeouts.
  options.is_transient = [](const std::exception&) { return true; };
  const auto slots = runner.run_supervised(std::move(jobs), options);
  EXPECT_EQ(slots[0].status, sys::JobStatus::kTimeout);
  EXPECT_EQ(slots[0].error, sys::watchdog_expired_message(0.05));
  EXPECT_EQ(slots[0].attempts, 1U);
  EXPECT_EQ(attempts->load(), 1);
  EXPECT_EQ(slots[1].status, sys::JobStatus::kOk);
  EXPECT_EQ(*slots[1].value, 42);
  cancel->store(true);
  // Give the abandoned thread a beat to observe the flag and exit before
  // the test's shared state unwinds.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

TEST(Supervised, StopFlagSkipsNotYetStartedJobs) {
  sys::BatchRunner runner{1};
  std::atomic<bool> stop{false};
  std::vector<sys::BatchRunner::Job<int>> jobs;
  jobs.push_back({"first", [&stop](sys::JobContext&) {
                    stop.store(true);  // Raised while the batch runs.
                    return 1;
                  }});
  jobs.push_back({"second", [](sys::JobContext&) { return 2; }});
  sys::SuperviseOptions options;
  options.stop_requested = &stop;
  const auto slots = runner.run_supervised(std::move(jobs), options);
  EXPECT_EQ(slots[0].status, sys::JobStatus::kOk);
  EXPECT_EQ(slots[1].status, sys::JobStatus::kSkipped);
  EXPECT_EQ(slots[1].attempts, 0U);
  EXPECT_FALSE(slots[1].value.has_value());
}

TEST(Supervised, OnSettledFiresOncePerJobBeforeBatchEnd) {
  sys::BatchRunner runner{2};
  std::vector<sys::BatchRunner::Job<int>> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({"settle/" + std::to_string(i),
                    [i](sys::JobContext&) -> int {
                      if (i == 3) {
                        throw std::runtime_error("boom");
                      }
                      return i;
                    }});
  }
  std::mutex mutex;
  std::map<std::size_t, sys::JobStatus> settled;
  const auto slots = runner.run_supervised(
      std::move(jobs), sys::SuperviseOptions{},
      [&mutex, &settled](std::size_t i,
                         const sys::SupervisedResult<int>& r) {
        const std::lock_guard<std::mutex> lock{mutex};
        EXPECT_EQ(settled.count(i), 0U);
        settled[i] = r.status;
      });
  ASSERT_EQ(settled.size(), 6U);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(settled[i], i == 3 ? sys::JobStatus::kCrashed
                                 : sys::JobStatus::kOk);
  }
  EXPECT_EQ(slots[3].status, sys::JobStatus::kCrashed);
}

TEST(Supervised, ProbeSupervisedClassifiesOkCrashAndTimeout) {
  EXPECT_EQ(sys::probe_supervised([] {}, 0.0), sys::JobStatus::kOk);
  EXPECT_EQ(sys::probe_supervised(
                [] { throw std::runtime_error("nope"); }, 0.0),
            sys::JobStatus::kCrashed);
  EXPECT_EQ(sys::probe_supervised([] {}, 5.0), sys::JobStatus::kOk);
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  EXPECT_EQ(sys::probe_supervised(
                [cancel] {
                  while (!cancel->load()) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                  }
                },
                0.05),
            sys::JobStatus::kTimeout);
  cancel->store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

}  // namespace
}  // namespace hybridic
