#include "sim/event.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace hybridic::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0U);
}

TEST(EventQueue, PopOrderedByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(Picoseconds{300}, [&order] { order.push_back(3); });
  queue.schedule(Picoseconds{100}, [&order] { order.push_back(1); });
  queue.schedule(Picoseconds{200}, [&order] { order.push_back(2); });
  while (!queue.empty()) {
    queue.pop().action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(Picoseconds{42}, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) {
    queue.pop().action();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue queue;
  queue.schedule(Picoseconds{500}, [] {});
  queue.schedule(Picoseconds{50}, [] {});
  EXPECT_EQ(queue.next_time(), Picoseconds{50});
}

TEST(EventQueue, NextTimeOnEmptyThrows) {
  EventQueue queue;
  EXPECT_THROW((void)queue.next_time(), SimulationError);
  EXPECT_THROW((void)queue.pop(), SimulationError);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue queue;
  queue.schedule(Picoseconds{1}, [] {});
  queue.schedule(Picoseconds{2}, [] {});
  queue.clear();
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TotalScheduledCounts) {
  EventQueue queue;
  queue.schedule(Picoseconds{1}, [] {});
  queue.schedule(Picoseconds{2}, [] {});
  (void)queue.pop();
  EXPECT_EQ(queue.total_scheduled(), 2U);
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(Picoseconds{10}, [&] { order.push_back(1); });
  queue.pop().action();
  queue.schedule(Picoseconds{5}, [&] { order.push_back(2); });
  queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace hybridic::sim
