// End-to-end pipeline tests: profile -> design -> simulate, asserting the
// qualitative properties the paper's evaluation reports.
#include "sys/experiment.hpp"

#include <gtest/gtest.h>

#include <map>

#include "apps/app.hpp"

namespace hybridic::sys {
namespace {

/// Shared fixture: run every paper app once (the runs are deterministic).
class PaperExperiments : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    experiments_ = new std::map<std::string, AppExperiment>();
    for (const auto& name : apps::paper_app_names()) {
      const apps::ProfiledApp app = apps::run_paper_app(name);
      ASSERT_TRUE(app.verified) << name << ": " << app.verification_note;
      const AppSchedule schedule = app.schedule();
      experiments_->emplace(
          name, run_experiment(schedule, PlatformConfig{},
                               app.environment));
    }
  }

  static void TearDownTestSuite() {
    delete experiments_;
    experiments_ = nullptr;
  }

  [[nodiscard]] static const AppExperiment& get(const std::string& name) {
    return experiments_->at(name);
  }

  static std::map<std::string, AppExperiment>* experiments_;
};

std::map<std::string, AppExperiment>* PaperExperiments::experiments_ =
    nullptr;

TEST_F(PaperExperiments, BaselineAcceleratesMostApps) {
  // Fig. 4: the baseline beats software for canny, klt and fluid...
  EXPECT_GT(get("canny").baseline_app_speedup_vs_sw(), 1.0);
  EXPECT_GT(get("klt").baseline_app_speedup_vs_sw(), 1.0);
  EXPECT_GT(get("fluid").baseline_app_speedup_vs_sw(), 1.0);
}

TEST_F(PaperExperiments, JpegBaselineSlowerThanSoftware) {
  // ...but loses on jpeg because communication dominates (paper §V-A).
  EXPECT_LT(get("jpeg").baseline_app_speedup_vs_sw(), 1.0);
  EXPECT_GT(get("jpeg").baseline_comm_comp_ratio(), 3.0);
}

TEST_F(PaperExperiments, CommunicationDominatesBaselines) {
  // Fig. 4's core observation: kernel communication time exceeds
  // computation time on average (paper: ~2.09x).
  double ratio_sum = 0.0;
  for (const auto& name : apps::paper_app_names()) {
    ratio_sum += get(name).baseline_comm_comp_ratio();
  }
  EXPECT_GT(ratio_sum / 4.0, 1.5);
  EXPECT_LT(ratio_sum / 4.0, 3.0);
}

TEST_F(PaperExperiments, ProposedBeatsBaselineEverywhere) {
  for (const auto& name : apps::paper_app_names()) {
    EXPECT_GT(get(name).proposed_app_speedup_vs_baseline(), 1.0) << name;
    EXPECT_GT(get(name).proposed_kernel_speedup_vs_baseline(), 1.0)
        << name;
  }
}

TEST_F(PaperExperiments, JpegGainsTheMostFromTheCustomInterconnect) {
  // Table III: jpeg has the largest proposed-vs-baseline speed-up.
  const double jpeg = get("jpeg").proposed_app_speedup_vs_baseline();
  for (const auto& name : apps::paper_app_names()) {
    if (name != "jpeg") {
      EXPECT_GT(jpeg, get(name).proposed_app_speedup_vs_baseline())
          << name;
    }
  }
  EXPECT_GT(jpeg, 2.0);
}

TEST_F(PaperExperiments, SolutionsMatchTableFour) {
  EXPECT_EQ(get("canny").proposed_design.solution_tag(), "NoC, SM, P");
  EXPECT_EQ(get("jpeg").proposed_design.solution_tag(), "NoC, SM, P");
  EXPECT_EQ(get("klt").proposed_design.solution_tag(), "SM");
  EXPECT_EQ(get("fluid").proposed_design.solution_tag(), "NoC");
}

TEST_F(PaperExperiments, JpegDesignMatchesFigureSix) {
  const core::DesignResult& design = get("jpeg").proposed_design;
  // huff_ac_dec is duplicated: five kernel instances in total.
  EXPECT_EQ(design.instances.size(), 5U);
  EXPECT_EQ(design.parallel.duplicated_specs.size(), 1U);
  // Exactly one shared-memory pair: dquantz_lum -> j_rev_dct, with a
  // crossbar because j_rev_dct also talks to the host.
  ASSERT_EQ(design.shared_pairs.size(), 1U);
  EXPECT_EQ(design.instances[design.shared_pairs[0].producer_instance].name,
            "dquantz_lum");
  EXPECT_EQ(design.instances[design.shared_pairs[0].consumer_instance].name,
            "j_rev_dct");
  EXPECT_EQ(design.shared_pairs[0].style, mem::SharingStyle::kCrossbar);
  // Six NoC routers: huff_dc kernel, 2x huff_ac kernel + memory, dquantz
  // memory.
  ASSERT_TRUE(design.uses_noc());
  EXPECT_EQ(design.noc->router_count(), 6U);
}

TEST_F(PaperExperiments, ResourceOrderingMatchesTableFour) {
  for (const auto& name : apps::paper_app_names()) {
    const AppExperiment& exp = get(name);
    // baseline < ours <= NoC-only in LUTs and registers.
    EXPECT_LT(exp.baseline_resources.luts, exp.proposed_resources.luts)
        << name;
    EXPECT_LE(exp.proposed_resources.luts, exp.noc_only_resources.luts)
        << name;
    EXPECT_LE(exp.proposed_resources.regs, exp.noc_only_resources.regs)
        << name;
  }
}

TEST_F(PaperExperiments, BaselineResourcesNearPaperTotals) {
  // Calibrated to Table IV (exact for registers, close for LUTs).
  const std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
      expected{{"canny", {9926, 12707}},
               {"jpeg", {11755, 11910}},
               {"klt", {4721, 5430}},
               {"fluid", {19125, 28793}}};
  for (const auto& [name, totals] : expected) {
    EXPECT_EQ(get(name).baseline_resources.luts, totals.first) << name;
    EXPECT_EQ(get(name).baseline_resources.regs, totals.second) << name;
  }
}

TEST_F(PaperExperiments, HybridSavesResourcesVsNocOnly) {
  // Table IV headline: up to ~33% LUT savings vs the NoC-only system.
  bool some_app_saves_a_lot = false;
  for (const auto& name : apps::paper_app_names()) {
    const AppExperiment& exp = get(name);
    const double saving =
        1.0 - static_cast<double>(exp.proposed_resources.luts) /
                  static_cast<double>(exp.noc_only_resources.luts);
    if (saving > 0.15) {
      some_app_saves_a_lot = true;
    }
  }
  EXPECT_TRUE(some_app_saves_a_lot);
}

TEST_F(PaperExperiments, NocOnlyPerformanceComparableToHybrid) {
  // The paper: the hybrid achieves "the same performance" as NoC-only
  // while using fewer resources.
  for (const auto& name : apps::paper_app_names()) {
    const AppExperiment& exp = get(name);
    EXPECT_NEAR(exp.noc_only.total_seconds / exp.proposed.total_seconds,
                1.0, 0.15)
        << name;
  }
}

TEST_F(PaperExperiments, EnergySavedInEveryApp) {
  // Fig. 9: the proposed system consumes less energy everywhere, with the
  // maximum saving on jpeg (paper: 66.5%).
  for (const auto& name : apps::paper_app_names()) {
    EXPECT_LT(get(name).energy_ratio_vs_baseline(), 1.0) << name;
  }
  EXPECT_LT(get("jpeg").energy_ratio_vs_baseline(), 0.45);
  // Power itself is nearly identical (slightly higher for ours).
  for (const auto& name : apps::paper_app_names()) {
    const AppExperiment& exp = get(name);
    EXPECT_GT(exp.proposed_power_watts, exp.baseline_power_watts);
    EXPECT_LT(exp.proposed_power_watts / exp.baseline_power_watts, 1.25);
  }
}

TEST_F(PaperExperiments, KernelSpeedupsExceedAppSpeedups) {
  // Amdahl: the host part dilutes kernel gains at app level.
  for (const auto& name : apps::paper_app_names()) {
    const AppExperiment& exp = get(name);
    EXPECT_GE(exp.proposed_kernel_speedup_vs_baseline() + 0.05,
              exp.proposed_app_speedup_vs_baseline())
        << name;
  }
}

TEST_F(PaperExperiments, AnalyticalEstimateTracksMeasurement) {
  // The Eq-2/Δ estimate should land within a factor ~2 of the simulated
  // kernel-level times (it ignores contention and burst effects).
  for (const auto& name : apps::paper_app_names()) {
    const AppExperiment& exp = get(name);
    const double estimated = exp.proposed_design.estimate.baseline_seconds;
    const double measured = exp.baseline.kernel_seconds();
    EXPECT_GT(estimated, measured * 0.5) << name;
    EXPECT_LT(estimated, measured * 2.0) << name;
  }
}

}  // namespace
}  // namespace hybridic::sys
