#include "sys/pipeline_executor.hpp"

#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "core/interconnect_design.hpp"
#include "sys/experiment.hpp"

namespace hybridic::sys {
namespace {

/// Shared fixture: the Canny pipeline (a clean 4-stage kernel chain).
class PipelineTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    app_ = new apps::ProfiledApp(apps::run_paper_app("canny"));
    schedule_ = new AppSchedule(app_->schedule());
    const core::DesignInput input =
        make_design_input(*schedule_, PlatformConfig{});
    design_ = new core::DesignResult(core::design_interconnect(input));
  }
  static void TearDownTestSuite() {
    delete design_;
    delete schedule_;
    delete app_;
  }

  static apps::ProfiledApp* app_;
  static AppSchedule* schedule_;
  static core::DesignResult* design_;
  PlatformConfig config_;
};

apps::ProfiledApp* PipelineTest::app_ = nullptr;
AppSchedule* PipelineTest::schedule_ = nullptr;
core::DesignResult* PipelineTest::design_ = nullptr;

TEST_F(PipelineTest, SingleFrameMatchesLatency) {
  const PipelineResult one =
      run_designed_pipelined(*schedule_, *design_, config_, 1);
  EXPECT_EQ(one.frames, 1U);
  EXPECT_DOUBLE_EQ(one.first_frame_seconds, one.makespan_seconds);
  EXPECT_GT(one.first_frame_seconds, 0.0);
}

TEST_F(PipelineTest, PipeliningBeatsSerialRepetition) {
  const std::uint32_t frames = 16;
  const PipelineResult pipelined =
      run_designed_pipelined(*schedule_, *design_, config_, frames);
  // Serial repetition of the designed system's single-frame latency.
  const double serial = pipelined.first_frame_seconds * frames;
  EXPECT_LT(pipelined.makespan_seconds, serial * 0.95);
}

TEST_F(PipelineTest, ThroughputApproachesBottleneckBound) {
  const PipelineResult result =
      run_designed_pipelined(*schedule_, *design_, config_, 64);
  const double bound = 1.0 / result.bottleneck_stage_seconds;
  // Steady-state throughput sits at the bottleneck bound (small slack for
  // the finite-horizon measurement).
  EXPECT_LE(result.throughput_fps(), bound * 1.05);
  EXPECT_GE(result.throughput_fps(), bound * 0.80);
}

TEST_F(PipelineTest, MakespanGrowsLinearlyInSteadyState) {
  const PipelineResult a =
      run_designed_pipelined(*schedule_, *design_, config_, 32);
  const PipelineResult b =
      run_designed_pipelined(*schedule_, *design_, config_, 64);
  const double slope_a =
      (a.makespan_seconds - a.first_frame_seconds) / (a.frames - 1);
  const double slope_b =
      (b.makespan_seconds - b.first_frame_seconds) / (b.frames - 1);
  EXPECT_NEAR(slope_a, slope_b, slope_a * 0.05);
}

TEST_F(PipelineTest, BottleneckIsARealStage) {
  const PipelineResult result =
      run_designed_pipelined(*schedule_, *design_, config_, 8);
  bool known = result.bottleneck_stage == "host" ||
               result.bottleneck_stage == "bus";
  for (const auto& spec : schedule_->specs) {
    known = known || result.bottleneck_stage == spec.name;
  }
  EXPECT_TRUE(known) << result.bottleneck_stage;
  EXPECT_GT(result.bottleneck_stage_seconds, 0.0);
}

TEST_F(PipelineTest, BaselineFramesAreFullySerial) {
  const PipelineResult base =
      run_baseline_frames(*schedule_, config_, 10);
  EXPECT_DOUBLE_EQ(base.makespan_seconds,
                   base.first_frame_seconds * 10);
  const PipelineResult pipelined =
      run_designed_pipelined(*schedule_, *design_, config_, 10);
  EXPECT_LT(pipelined.makespan_seconds, base.makespan_seconds);
}

TEST_F(PipelineTest, ZeroFramesRejected) {
  EXPECT_THROW((void)run_designed_pipelined(*schedule_, *design_, config_, 0),
               ConfigError);
  EXPECT_THROW((void)run_baseline_frames(*schedule_, config_, 0), ConfigError);
}

TEST(PipelineFluid, HandlesCyclicGraphs) {
  // Fluid's backward (next-iteration) edges cross frames in the pipeline
  // model; the run must complete and stay monotone.
  const apps::ProfiledApp app = apps::run_paper_app("fluid");
  const AppSchedule schedule = app.schedule();
  const PlatformConfig config;
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, config));
  const PipelineResult result =
      run_designed_pipelined(schedule, design, config, 8);
  EXPECT_GT(result.makespan_seconds, result.first_frame_seconds);
  EXPECT_GT(result.throughput_fps(), 0.0);
}

}  // namespace
}  // namespace hybridic::sys
