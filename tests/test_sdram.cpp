#include "mem/sdram.hpp"

#include <gtest/gtest.h>

namespace hybridic::mem {
namespace {

const sim::ClockDomain kClock{"bus", Frequency::megahertz(100)};  // 10 ns

TEST(Sdram, BurstTimeIncludesAccessLatency) {
  Sdram sdram{"m", kClock, SdramConfig{8, Cycles{20}}};
  // 64 bytes = 8 beats = 80 ns, + 20 cycles latency = 200 ns.
  EXPECT_EQ(sdram.burst_time(Bytes{64}).count(), 280'000U);
}

TEST(Sdram, AccessPaysLatencyBeforeData) {
  Sdram sdram{"m", kClock, SdramConfig{8, Cycles{20}}};
  const Picoseconds done = sdram.access(Picoseconds{0}, Bytes{8});
  // latency 200 ns then 1 beat of 10 ns.
  EXPECT_EQ(done.count(), 210'000U);
}

TEST(Sdram, BackToBackBurstsSerialize) {
  Sdram sdram{"m", kClock, SdramConfig{8, Cycles{20}}};
  const Picoseconds first = sdram.access(Picoseconds{0}, Bytes{8});
  const Picoseconds second = sdram.access(Picoseconds{0}, Bytes{8});
  EXPECT_GE(second.count(), first.count() + 210'000U);
}

TEST(Sdram, TracksBytes) {
  Sdram sdram{"m", kClock, SdramConfig{}};
  (void)sdram.access(Picoseconds{0}, Bytes{100});
  (void)sdram.access(Picoseconds{0}, Bytes{28});
  EXPECT_EQ(sdram.bytes_transferred().count(), 128U);
  sdram.reset();
  EXPECT_EQ(sdram.bytes_transferred().count(), 0U);
}

TEST(Sdram, LargerBurstsAmortizeLatency) {
  Sdram sdram{"m", kClock, SdramConfig{8, Cycles{20}}};
  const double small_rate =
      64.0 / sdram.burst_time(Bytes{64}).seconds();
  const double big_rate =
      4096.0 / sdram.burst_time(Bytes{4096}).seconds();
  EXPECT_GT(big_rate, 2.0 * small_rate);
}

}  // namespace
}  // namespace hybridic::mem
