#include "bus/arbiter.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/error.hpp"

namespace hybridic::bus {
namespace {

TEST(PriorityArbiter, LowestIndexWins) {
  PriorityArbiter arb;
  EXPECT_EQ(arb.select({0, 1, 2}), 0U);
  EXPECT_EQ(arb.select({2, 3}), 2U);
  EXPECT_EQ(arb.select({7}), 7U);
}

TEST(PriorityArbiter, StarvesLowPriorityByDesign) {
  PriorityArbiter arb;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(arb.select({0, 5}), 0U);
  }
}

TEST(RoundRobinArbiter, RotatesThroughAllMasters) {
  RoundRobinArbiter arb{4};
  EXPECT_EQ(arb.select({0, 1, 2, 3}), 0U);
  EXPECT_EQ(arb.select({0, 1, 2, 3}), 1U);
  EXPECT_EQ(arb.select({0, 1, 2, 3}), 2U);
  EXPECT_EQ(arb.select({0, 1, 2, 3}), 3U);
  EXPECT_EQ(arb.select({0, 1, 2, 3}), 0U);
}

TEST(RoundRobinArbiter, SkipsIdleMasters) {
  RoundRobinArbiter arb{4};
  EXPECT_EQ(arb.select({1, 3}), 1U);
  EXPECT_EQ(arb.select({1, 3}), 3U);
  EXPECT_EQ(arb.select({1, 3}), 1U);
}

TEST(RoundRobinArbiter, SingleMasterAlwaysWins) {
  RoundRobinArbiter arb{4};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(arb.select({2}), 2U);
  }
}

TEST(RoundRobinArbiter, FairnessOverManyGrants) {
  RoundRobinArbiter arb{3};
  std::map<std::uint32_t, int> grants;
  for (int i = 0; i < 300; ++i) {
    ++grants[arb.select({0, 1, 2})];
  }
  EXPECT_EQ(grants[0], 100);
  EXPECT_EQ(grants[1], 100);
  EXPECT_EQ(grants[2], 100);
}

TEST(RoundRobinArbiter, ZeroMastersRejected) {
  EXPECT_THROW(RoundRobinArbiter{0}, ConfigError);
}

TEST(WeightedRoundRobinArbiter, WeightsControlShare) {
  WeightedRoundRobinArbiter arb{{3, 1}};
  std::map<std::uint32_t, int> grants;
  for (int i = 0; i < 400; ++i) {
    ++grants[arb.select({0, 1})];
  }
  EXPECT_EQ(grants[0], 300);
  EXPECT_EQ(grants[1], 100);
}

TEST(WeightedRoundRobinArbiter, EqualWeightsBehaveLikeRoundRobin) {
  WeightedRoundRobinArbiter arb{{1, 1, 1}};
  EXPECT_EQ(arb.select({0, 1, 2}), 0U);
  EXPECT_EQ(arb.select({0, 1, 2}), 1U);
  EXPECT_EQ(arb.select({0, 1, 2}), 2U);
}

TEST(WeightedRoundRobinArbiter, IdleMasterDoesNotBankCredit) {
  WeightedRoundRobinArbiter arb{{4, 1}};
  // Master 0 absent: master 1 wins every time.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(arb.select({1}), 1U);
  }
  // Master 0 returns and gets its weighted share again.
  std::map<std::uint32_t, int> grants;
  for (int i = 0; i < 100; ++i) {
    ++grants[arb.select({0, 1})];
  }
  EXPECT_EQ(grants[0], 80);
  EXPECT_EQ(grants[1], 20);
}

TEST(WeightedRoundRobinArbiter, InvalidWeightsRejected) {
  EXPECT_THROW(WeightedRoundRobinArbiter{std::vector<std::uint32_t>{}},
               ConfigError);
  EXPECT_THROW(WeightedRoundRobinArbiter(std::vector<std::uint32_t>{1, 0}),
               ConfigError);
}

/// Property: any arbiter must return one of the pending masters.
class ArbiterContract
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ArbiterContract, AlwaysSelectsPendingMaster) {
  const std::uint32_t masters = GetParam();
  RoundRobinArbiter rr{masters};
  WeightedRoundRobinArbiter wrr{
      std::vector<std::uint32_t>(masters, 2)};
  PriorityArbiter prio;
  for (std::uint32_t trial = 0; trial < 50; ++trial) {
    std::vector<std::uint32_t> pending;
    for (std::uint32_t m = 0; m < masters; ++m) {
      if ((trial >> (m % 8)) & 1U) {
        pending.push_back(m);
      }
    }
    if (pending.empty()) {
      continue;
    }
    for (Arbiter* arb :
         std::initializer_list<Arbiter*>{&rr, &wrr, &prio}) {
      const std::uint32_t winner = arb->select(pending);
      EXPECT_TRUE(std::binary_search(pending.begin(), pending.end(),
                                     winner));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MasterCounts, ArbiterContract,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace hybridic::bus
