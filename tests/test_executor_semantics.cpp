// Precise semantic tests of run_designed: case-1 half-pipelining, NoC
// delivery gating, shared-memory zero-copy, fallback bus round trips and
// backward-edge handling, each on a purpose-built design.
#include <gtest/gtest.h>

#include "core/interconnect_design.hpp"
#include "sys/executor.hpp"
#include "sys/experiment.hpp"

namespace hybridic::sys {
namespace {

/// Builder producing a schedule + design for hand-set scenarios.
struct Bench {
  prof::CommGraph graph;
  std::vector<CalibrationEntry> calibration;
  PlatformConfig config;

  prof::FunctionId host_fn() {
    return graph.add_function("host" + std::to_string(host_count_++));
  }

  prof::FunctionId kernel_fn(const std::string& name,
                             std::uint64_t work_units, double kernel_cpw,
                             bool duplicable = false,
                             bool streaming = false) {
    const prof::FunctionId id = graph.add_function(name);
    graph.function_mutable(id).work_units = work_units;
    calibration.push_back(CalibrationEntry{name, 8.0, kernel_cpw, 1000,
                                           1000, true, duplicable,
                                           streaming});
    return id;
  }

  void edge(prof::FunctionId a, prof::FunctionId b, std::uint64_t bytes) {
    graph.add_transfer(a, b, Bytes{bytes}, bytes);
  }

  [[nodiscard]] AppSchedule schedule() {
    return build_schedule("bench", graph, calibration);
  }

  int host_count_ = 0;
};

TEST(ExecutorSemantics, SharedMemoryPairIsZeroCopy) {
  Bench b;
  const auto h = b.host_fn();
  const auto p = b.kernel_fn("p", 100'000, 1.0);
  const auto c = b.kernel_fn("c", 100'000, 1.0);
  b.edge(h, p, 1'000);
  b.edge(p, c, 200'000);  // Big pair transfer.
  b.edge(c, h, 1'000);
  const AppSchedule schedule = b.schedule();
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, b.config));
  ASSERT_EQ(design.shared_pairs.size(), 1U);

  const RunResult run = run_designed(schedule, design, b.config);
  // Total ~= small host edges + 2 x 1 ms compute; the 200 KB never moves.
  const double compute = 2.0 * 100'000 / 100e6;
  EXPECT_LT(run.total_seconds, compute + 0.3e-3);
  // Baseline pays the 400 KB round trip (~2 ms at ~5 ns/B).
  const RunResult baseline = run_baseline(schedule, b.config);
  EXPECT_GT(baseline.total_seconds, run.total_seconds + 1.5e-3);
}

TEST(ExecutorSemantics, NocTransferHidesBehindProducerCompute) {
  Bench b;
  const auto h = b.host_fn();
  // A producer fanning out to two consumers (no exclusivity -> NoC),
  // with long compute so the NoC transfer hides completely.
  const auto p = b.kernel_fn("p", 400'000, 1.0);
  const auto c1 = b.kernel_fn("c1", 50'000, 1.0);
  const auto c2 = b.kernel_fn("c2", 50'000, 1.0);
  b.edge(h, p, 1'000);
  b.edge(p, c1, 60'000);
  b.edge(p, c2, 60'000);
  b.edge(c1, h, 1'000);
  b.edge(c2, h, 1'000);
  const AppSchedule schedule = b.schedule();
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, b.config));
  ASSERT_TRUE(design.uses_noc());

  const RunResult run = run_designed(schedule, design, b.config);
  // Compute: 4 + 0.5 + 0.5 ms; the 120 KB of kernel traffic (~0.8 ms on
  // the NoC) overlaps the producer's 4 ms compute.
  const double compute = (400'000 + 2 * 50'000) / 100e6;
  EXPECT_LT(run.total_seconds, compute * 1.15);
  EXPECT_LT(run.kernel_comm_seconds, 0.6e-3);
}

TEST(ExecutorSemantics, NocTransferExposedWhenProducerIsFast) {
  Bench b;
  const auto h = b.host_fn();
  // Tiny compute, huge kernel->kernel transfers: the NoC time cannot
  // hide and must show up as exposed communication.
  const auto p = b.kernel_fn("p", 1'000, 1.0);
  const auto c1 = b.kernel_fn("c1", 1'000, 1.0);
  const auto c2 = b.kernel_fn("c2", 1'000, 1.0);
  b.edge(h, p, 100);
  b.edge(p, c1, 400'000);
  b.edge(p, c2, 400'000);
  b.edge(c1, h, 100);
  b.edge(c2, h, 100);
  const AppSchedule schedule = b.schedule();
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, b.config));
  ASSERT_TRUE(design.uses_noc());
  const RunResult run = run_designed(schedule, design, b.config);
  // 800 KB at 4 B/cycle @150 MHz is ~1.3 ms minimum.
  EXPECT_GT(run.total_seconds, 1.0e-3);
  EXPECT_GT(run.kernel_comm_seconds, 0.5e-3);
}

TEST(ExecutorSemantics, Case1HalvesExposedHostTransfer) {
  Bench b;
  const auto h = b.host_fn();
  // Large host input, compute roughly equal to the transfer: case 1
  // should hide about half of it.
  const auto k = b.kernel_fn("k", 200'000, 1.0, false, /*streaming=*/true);
  b.edge(h, k, 400'000);
  b.edge(k, h, 1'000);
  const AppSchedule schedule = b.schedule();

  core::DesignInput with = make_design_input(schedule, b.config);
  const core::DesignResult streamed = core::design_interconnect(with);
  ASSERT_FALSE(streamed.parallel.host_pipelined.empty());

  core::DesignInput without = with;
  without.enable_parallel = false;
  const core::DesignResult plain = core::design_interconnect(without);

  const RunResult fast = run_designed(schedule, streamed, b.config);
  const RunResult slow = run_designed(schedule, plain, b.config);
  // The 400 KB fetch is ~2.1 ms; compute 2 ms. Case 1 overlaps the
  // second half of the fetch with the first half of compute: ~1 ms less.
  EXPECT_LT(fast.total_seconds, slow.total_seconds - 0.6e-3);
}

TEST(ExecutorSemantics, Case2LetsConsumerStartEarly) {
  Bench b;
  const auto h = b.host_fn();
  const auto p = b.kernel_fn("p", 300'000, 1.0, false, true);
  const auto c = b.kernel_fn("c", 300'000, 1.0, false, true);
  const auto sink = b.kernel_fn("sink", 1'000, 1.0);
  // p fans out so no shared pair forms; p->c dominates.
  b.edge(h, p, 1'000);
  b.edge(p, c, 50'000);
  b.edge(p, sink, 1'000);
  b.edge(c, h, 1'000);
  b.edge(sink, h, 100);
  const AppSchedule schedule = b.schedule();

  core::DesignInput with = make_design_input(schedule, b.config);
  const core::DesignResult streamed = core::design_interconnect(with);
  ASSERT_FALSE(streamed.parallel.streamed.empty());
  core::DesignInput without = with;
  without.enable_parallel = false;
  const core::DesignResult plain = core::design_interconnect(without);

  const RunResult fast = run_designed(schedule, streamed, b.config);
  const RunResult slow = run_designed(schedule, plain, b.config);
  // Δp2 = min(τp, τc)/2 - O = 1.5 ms - 15 us.
  EXPECT_LT(fast.total_seconds, slow.total_seconds - 1.0e-3);
}

TEST(ExecutorSemantics, FallbackBusRoundTripWhenNoFabricExists) {
  Bench b;
  const auto h = b.host_fn();
  const auto p = b.kernel_fn("p", 10'000, 1.0);
  const auto c = b.kernel_fn("c", 10'000, 1.0);
  b.edge(h, p, 1'000);
  b.edge(p, c, 100'000);
  b.edge(c, h, 1'000);
  const AppSchedule schedule = b.schedule();

  // Force a design with neither shared memory nor NoC: disable sharing
  // and strip the NoC plan from the naive design.
  core::DesignInput input = make_design_input(schedule, b.config);
  input.enable_shared_memory = false;
  core::DesignResult design = core::design_interconnect(input);
  design.noc.reset();

  const RunResult run = run_designed(schedule, design, b.config);
  const RunResult baseline = run_baseline(schedule, b.config);
  // Without any custom fabric the proposed executor degenerates to the
  // baseline's bus round trip (within DMA-scheduling noise).
  EXPECT_NEAR(run.total_seconds, baseline.total_seconds,
              baseline.total_seconds * 0.10);
}

TEST(ExecutorSemantics, BackwardEdgesDoNotDeadlockOrGate) {
  Bench b;
  const auto h = b.host_fn();
  const auto a = b.kernel_fn("a", 10'000, 1.0);
  const auto c = b.kernel_fn("c", 10'000, 1.0);
  b.edge(h, a, 1'000);
  b.edge(a, c, 5'000);
  b.edge(c, a, 5'000);  // Feedback edge (c runs after a in program order).
  b.edge(c, h, 1'000);
  const AppSchedule schedule = b.schedule();
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, b.config));
  const RunResult run = run_designed(schedule, design, b.config);
  EXPECT_GT(run.total_seconds, 0.0);
  // The feedback data is previous-iteration state: 'a' must not wait for
  // 'c', so the total stays near the forward-only time.
  const double compute = 2.0 * 10'000 / 100e6;
  EXPECT_LT(run.total_seconds, compute + 1.0e-3);
}

TEST(ExecutorSemantics, DuplicatedFetchesSerializeOnTheBus) {
  Bench b;
  const auto h = b.host_fn();
  const auto big =
      b.kernel_fn("big", 1'000'000, 1.0, /*duplicable=*/true);
  b.edge(h, big, 200'000);
  b.edge(big, h, 1'000);
  const AppSchedule schedule = b.schedule();
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, b.config));
  ASSERT_EQ(design.instances.size(), 2U);
  const RunResult run = run_designed(schedule, design, b.config);
  // Both copies fetch 100 KB each over the single bus (~1 ms together);
  // compute halves to ~5 ms. Total ≈ fetch + compute, not less than the
  // serialized fetch alone.
  EXPECT_GT(run.total_seconds, 1.0e-3);
  EXPECT_LT(run.total_seconds, 7.5e-3);
}

}  // namespace
}  // namespace hybridic::sys
