// Remaining coverage: the logging facility and the Platform assembly.
#include <gtest/gtest.h>

#include <sstream>

#include "core/interconnect_design.hpp"
#include "sys/experiment.hpp"
#include "sys/platform.hpp"
#include "util/log.hpp"

namespace hybridic {
namespace {

class CapturedClog {
public:
  CapturedClog() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~CapturedClog() { std::clog.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

TEST(Log, SilentByDefault) {
  log_level() = LogLevel::kSilent;
  CapturedClog capture;
  log_info("should not appear");
  log_debug("nor this");
  EXPECT_TRUE(capture.text().empty());
}

TEST(Log, LevelsFilter) {
  log_level() = LogLevel::kInfo;
  {
    CapturedClog capture;
    log_info("visible ", 42);
    log_debug("hidden");
    EXPECT_NE(capture.text().find("[info ] visible 42"),
              std::string::npos);
    EXPECT_EQ(capture.text().find("hidden"), std::string::npos);
  }
  log_level() = LogLevel::kTrace;
  {
    CapturedClog capture;
    log_trace("deep");
    EXPECT_NE(capture.text().find("[trace] deep"), std::string::npos);
  }
  log_level() = LogLevel::kSilent;
}

TEST(Platform, MeasuredThetaMatchesSingleBeatModel) {
  sys::PlatformConfig config;  // 32-bit single-beat PLB.
  sys::Platform platform(config, 1, nullptr);
  // arb 2 + per word (1 addr + 1 beat): (2 + 2*1024) cycles over 4096 B.
  const double expected = (2.0 + 2.0 * 1024.0) * 10e-9 / 4096.0;
  EXPECT_NEAR(platform.measured_theta(), expected, 1e-12);
}

TEST(Platform, NoNetworkWithoutDesign) {
  sys::Platform platform(sys::PlatformConfig{}, 3, nullptr);
  EXPECT_EQ(platform.network(), nullptr);
  EXPECT_FALSE(
      platform.noc_node(0, core::NocNodeKind::kKernel).has_value());
  EXPECT_THROW((void)platform.bram(3), ConfigError);
  (void)platform.bram(2);
}

TEST(Platform, BuildsNetworkFromDesignPlan) {
  // A small design with a 2x1 NoC.
  core::DesignResult design;
  core::KernelInstance producer;
  producer.name = "p";
  core::KernelInstance consumer;
  consumer.name = "c";
  design.instances = {producer, consumer};
  core::NocPlan plan;
  plan.mesh_width = 2;
  plan.mesh_height = 1;
  plan.attachments = {
      core::NocAttachment{0, core::NocNodeKind::kKernel, 0},
      core::NocAttachment{1, core::NocNodeKind::kLocalMemory, 1},
  };
  design.noc = plan;

  sys::Platform platform(sys::PlatformConfig{}, 2, &design);
  ASSERT_NE(platform.network(), nullptr);
  EXPECT_EQ(*platform.noc_node(0, core::NocNodeKind::kKernel), 0U);
  EXPECT_EQ(*platform.noc_node(1, core::NocNodeKind::kLocalMemory), 1U);
  EXPECT_FALSE(
      platform.noc_node(0, core::NocNodeKind::kLocalMemory).has_value());

  // The network is live: a send completes.
  bool delivered = false;
  platform.network()->send(0, 1, Bytes{64},
                           [&delivered](std::uint64_t, Bytes,
                                        Picoseconds) { delivered = true; });
  platform.engine().run();
  EXPECT_TRUE(delivered);
}

TEST(Platform, ClockDomainsMatchConfig) {
  sys::PlatformConfig config;
  config.host_clock = Frequency::megahertz(200);
  sys::Platform platform(config, 1, nullptr);
  EXPECT_EQ(platform.host_clock().frequency().hertz(), 200'000'000U);
  EXPECT_EQ(platform.kernel_clock().frequency().hertz(), 100'000'000U);
}

}  // namespace
}  // namespace hybridic
