// NoC stress and fairness tests: hotspot traffic, sustained contention,
// per-flow fairness under the weighted-round-robin link arbitration, and
// routing-algorithm equivalence under load.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "noc/network.hpp"
#include "util/rng.hpp"

namespace hybridic::noc {
namespace {

const sim::ClockDomain kNocClock{"noc", Frequency::megahertz(150)};

struct Net {
  explicit Net(std::uint32_t dim, NetworkConfig config = {})
      : network("noc", engine, kNocClock, Mesh2D{dim, dim}, config) {
    for (std::uint32_t n = 0; n < dim * dim; ++n) {
      network.attach_adapter(n, "n" + std::to_string(n),
                             AdapterKind::kAccelerator);
    }
  }
  sim::Engine engine;
  Network network;
};

TEST(NocStress, HotspotSinkReceivesEverything) {
  // All nodes hammer node 0 simultaneously.
  Net net{4};
  const std::uint32_t sink = 0;
  int delivered = 0;
  for (std::uint32_t src = 1; src < 16; ++src) {
    net.network.send(src, sink, Bytes{2048},
                     [&delivered](std::uint64_t, Bytes, Picoseconds) {
                       ++delivered;
                     });
  }
  net.engine.run();
  EXPECT_EQ(delivered, 15);
  // 15 * 2048 B = 15 * 512 payload flits + 15 * 8 heads all ejected at
  // one node.
  EXPECT_GE(net.network.stats().flits_ejected, 15U * 512U);
}

TEST(NocStress, HotspotThroughputBoundedByEjectionLink) {
  // The sink's local port ejects at most one flit per cycle, so total
  // delivery time is at least total_flits cycles.
  Net net{3};
  Picoseconds last{0};
  const std::uint64_t per_message = 4096;
  for (std::uint32_t src = 1; src < 9; ++src) {
    net.network.send(src, 0, Bytes{per_message},
                     [&last](std::uint64_t, Bytes, Picoseconds at) {
                       last = std::max(last, at);
                     });
  }
  net.engine.run();
  const std::uint64_t payload_total = 8 * payload_flits(per_message);
  EXPECT_GE(last.count(), payload_total * kNocClock.period().count());
}

TEST(NocStress, CompetingFlowsShareFairly) {
  // Two long flows cross the same column link; with equal WRR weights
  // their completion times should be within ~30% of each other.
  Net net{3};
  // Flows: 1 -> 7 and 2 -> 8 share no link under XY... choose flows that
  // do: 0 -> 8 and 3 -> 8's column? Simplest: both target node 8 and
  // both come from column 2 after X-correction: 0->8 and 1->8.
  std::map<std::uint32_t, Picoseconds> done;
  net.network.send(0, 8, Bytes{8192},
                   [&done](std::uint64_t, Bytes, Picoseconds at) {
                     done[0] = at;
                   });
  net.network.send(1, 8, Bytes{8192},
                   [&done](std::uint64_t, Bytes, Picoseconds at) {
                     done[1] = at;
                   });
  net.engine.run();
  ASSERT_EQ(done.size(), 2U);
  const double a = done[0].seconds();
  const double b = done[1].seconds();
  EXPECT_LT(std::max(a, b) / std::min(a, b), 1.35);
}

TEST(NocStress, WrrWeightsSkewBandwidth) {
  // Give the local-injection port a big weight and the west input weight
  // 1; a locally injected flow should finish comparatively sooner when
  // competing with a through-flow... exercised indirectly: just verify
  // the configuration is accepted and traffic still drains.
  NetworkConfig config;
  config.router.wrr_weights = {1, 1, 1, 1, 8};  // Local heavily weighted.
  Net net{3, config};
  int delivered = 0;
  for (std::uint32_t src = 0; src < 9; ++src) {
    for (std::uint32_t dst = 0; dst < 9; ++dst) {
      if (src != dst) {
        net.network.send(src, dst, Bytes{512},
                         [&delivered](std::uint64_t, Bytes, Picoseconds) {
                           ++delivered;
                         });
      }
    }
  }
  net.engine.run();
  EXPECT_EQ(delivered, 72);
}

TEST(NocStress, DeepPipelineStillDrains) {
  NetworkConfig config;
  config.router.pipeline_cycles = 5;
  Net net{3, config};
  int delivered = 0;
  net.network.send(0, 8, Bytes{1024},
                   [&delivered](std::uint64_t, Bytes, Picoseconds) {
                     ++delivered;
                   });
  net.engine.run();
  EXPECT_EQ(delivered, 1);
}

TEST(NocStress, PipelineDepthIncreasesLatency) {
  const auto latency_with = [](std::uint32_t depth) {
    NetworkConfig config;
    config.router.pipeline_cycles = depth;
    Net net{4, config};
    Picoseconds done{0};
    net.network.send(0, 15, Bytes{64},
                     [&done](std::uint64_t, Bytes, Picoseconds at) {
                       done = at;
                     });
    net.engine.run();
    return done;
  };
  EXPECT_LT(latency_with(1), latency_with(4));
}

/// Routing sweep under uniform random load: all algorithms deliver all
/// traffic; minimal algorithms agree on total hop counts.
class RoutingUnderLoad : public ::testing::TestWithParam<std::string> {};

TEST_P(RoutingUnderLoad, DrainsUniformRandomTraffic) {
  NetworkConfig config;
  config.routing = GetParam();
  Net net{4, config};
  Rng rng{77};
  int expected = 0;
  int delivered = 0;
  for (int m = 0; m < 60; ++m) {
    const auto src = static_cast<std::uint32_t>(rng.below(16));
    auto dst = static_cast<std::uint32_t>(rng.below(16));
    if (src == dst) {
      continue;
    }
    ++expected;
    net.network.send(src, dst, Bytes{rng.between(16, 1024)},
                     [&delivered](std::uint64_t, Bytes, Picoseconds) {
                       ++delivered;
                     });
  }
  net.engine.run();
  EXPECT_EQ(delivered, expected);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, RoutingUnderLoad,
                         ::testing::Values("XY", "YX", "WestFirst"));

}  // namespace
}  // namespace hybridic::noc
