#include <gtest/gtest.h>

#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "util/error.hpp"

namespace hybridic::noc {
namespace {

TEST(Mesh2D, CoordinateRoundTrip) {
  const Mesh2D mesh{4, 3};
  EXPECT_EQ(mesh.node_count(), 12U);
  for (std::uint32_t id = 0; id < mesh.node_count(); ++id) {
    EXPECT_EQ(mesh.id_of(mesh.coord_of(id)), id);
  }
}

TEST(Mesh2D, NeighborsInterior) {
  const Mesh2D mesh{3, 3};
  const std::uint32_t center = mesh.id_of({1, 1});
  EXPECT_EQ(*mesh.neighbor(center, PortDir::kNorth), mesh.id_of({1, 2}));
  EXPECT_EQ(*mesh.neighbor(center, PortDir::kEast), mesh.id_of({2, 1}));
  EXPECT_EQ(*mesh.neighbor(center, PortDir::kSouth), mesh.id_of({1, 0}));
  EXPECT_EQ(*mesh.neighbor(center, PortDir::kWest), mesh.id_of({0, 1}));
}

TEST(Mesh2D, NeighborsAtBoundary) {
  const Mesh2D mesh{3, 3};
  const std::uint32_t corner = mesh.id_of({0, 0});
  EXPECT_FALSE(mesh.neighbor(corner, PortDir::kSouth).has_value());
  EXPECT_FALSE(mesh.neighbor(corner, PortDir::kWest).has_value());
  EXPECT_TRUE(mesh.neighbor(corner, PortDir::kNorth).has_value());
  EXPECT_TRUE(mesh.neighbor(corner, PortDir::kEast).has_value());
  EXPECT_FALSE(mesh.neighbor(corner, PortDir::kLocal).has_value());
}

TEST(Mesh2D, ManhattanDistance) {
  const Mesh2D mesh{4, 4};
  EXPECT_EQ(mesh.distance(mesh.id_of({0, 0}), mesh.id_of({3, 3})), 6U);
  EXPECT_EQ(mesh.distance(mesh.id_of({2, 1}), mesh.id_of({2, 1})), 0U);
  EXPECT_EQ(mesh.distance(mesh.id_of({1, 0}), mesh.id_of({0, 2})), 3U);
}

TEST(Mesh2D, FittingProducesMinimalSquarishMesh) {
  EXPECT_EQ(Mesh2D::fitting(1).node_count(), 1U);
  const Mesh2D four = Mesh2D::fitting(4);
  EXPECT_EQ(four.width(), 2U);
  EXPECT_EQ(four.height(), 2U);
  const Mesh2D five = Mesh2D::fitting(5);
  EXPECT_GE(five.node_count(), 5U);
  EXPECT_LE(five.width(), 3U);
  const Mesh2D nine = Mesh2D::fitting(9);
  EXPECT_EQ(nine.width(), 3U);
  EXPECT_EQ(nine.height(), 3U);
}

TEST(Mesh2D, InvalidDimensionsRejected) {
  EXPECT_THROW(Mesh2D(0, 1), ConfigError);
  EXPECT_THROW((void)Mesh2D::fitting(0), ConfigError);
}

TEST(PortDirTest, OppositeIsInvolution) {
  for (const PortDir d : {PortDir::kNorth, PortDir::kEast, PortDir::kSouth,
                          PortDir::kWest, PortDir::kLocal}) {
    EXPECT_EQ(opposite(opposite(d)), d);
  }
  EXPECT_EQ(opposite(PortDir::kNorth), PortDir::kSouth);
  EXPECT_EQ(opposite(PortDir::kEast), PortDir::kWest);
}

TEST(RoutingFactory, KnownAndUnknownNames) {
  EXPECT_EQ(make_routing("XY")->name(), "XY");
  EXPECT_EQ(make_routing("yx")->name(), "YX");
  EXPECT_THROW((void)make_routing("adaptive"), ConfigError);
}

TEST(XyRoutingTest, CorrectsXFirst) {
  const Mesh2D mesh{4, 4};
  XyRouting xy;
  // From (0,0) to (2,2): go east first.
  EXPECT_EQ(xy.route(mesh, mesh.id_of({0, 0}), mesh.id_of({2, 2})),
            PortDir::kEast);
  // Same column: go north.
  EXPECT_EQ(xy.route(mesh, mesh.id_of({2, 0}), mesh.id_of({2, 2})),
            PortDir::kNorth);
  // Arrived: eject.
  EXPECT_EQ(xy.route(mesh, mesh.id_of({2, 2}), mesh.id_of({2, 2})),
            PortDir::kLocal);
  // Westward and southward.
  EXPECT_EQ(xy.route(mesh, mesh.id_of({3, 3}), mesh.id_of({1, 3})),
            PortDir::kWest);
  EXPECT_EQ(xy.route(mesh, mesh.id_of({1, 3}), mesh.id_of({1, 0})),
            PortDir::kSouth);
}

TEST(YxRoutingTest, CorrectsYFirst) {
  const Mesh2D mesh{4, 4};
  YxRouting yx;
  EXPECT_EQ(yx.route(mesh, mesh.id_of({0, 0}), mesh.id_of({2, 2})),
            PortDir::kNorth);
  EXPECT_EQ(yx.route(mesh, mesh.id_of({0, 2}), mesh.id_of({2, 2})),
            PortDir::kEast);
}

/// Property: following the routing function from any source reaches any
/// destination in exactly the Manhattan distance number of hops.
class RoutingWalk
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(RoutingWalk, ReachesDestinationInMinimalHops) {
  const auto& [name, w, h] = GetParam();
  const Mesh2D mesh{w, h};
  const auto routing = make_routing(name);
  for (std::uint32_t src = 0; src < mesh.node_count(); ++src) {
    for (std::uint32_t dst = 0; dst < mesh.node_count(); ++dst) {
      std::uint32_t current = src;
      std::uint32_t hops = 0;
      while (true) {
        const PortDir dir = routing->route(mesh, current, dst);
        if (dir == PortDir::kLocal) {
          break;
        }
        const auto next = mesh.neighbor(current, dir);
        ASSERT_TRUE(next.has_value()) << "routed off the mesh";
        current = *next;
        ++hops;
        ASSERT_LE(hops, mesh.node_count()) << "routing loop";
      }
      EXPECT_EQ(current, dst);
      EXPECT_EQ(hops, mesh.distance(src, dst));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeshSweep, RoutingWalk,
    ::testing::Combine(::testing::Values(std::string{"XY"},
                                         std::string{"YX"},
                                         std::string{"WestFirst"}),
                       ::testing::Values(1U, 2U, 3U, 5U),
                       ::testing::Values(1U, 2U, 4U)));

}  // namespace
}  // namespace hybridic::noc
