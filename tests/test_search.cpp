// Property tests for the search-based interconnect synthesizer
// (src/search): the annealer must only ever *improve on* Algorithm 1,
// and must never hand back an illegal design.
//
//  - the greedy seed round-trips through the move encoding bit-exactly,
//  - every move composed with its inverse restores the vars AND the
//    canonical congruence signature (closure of the move library),
//  - accepted incumbents pass the full invariant-oracle library when
//    substituted into a cycle-accurate design case,
//  - the incumbent trace is monotone non-increasing and the final record
//    dominates-or-matches Algorithm 1 on (analytic time, LUTs),
//  - restarts are independent: --threads 1 and N are bit-identical,
//  - a deliberately broken move generator (emitting the infeasible
//    {K1,M2} mapping) is caught by the oracle gate on every proposal,
//    shrunk with shrink_config, and pinned as a checked-in reproducer
//    under tests/fixtures/search/ (regenerate with
//    HYBRIDIC_UPDATE_SEARCH_FIXTURES=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/synthetic.hpp"
#include "core/design_validate.hpp"
#include "core/resource_model.hpp"
#include "dse/case_runner.hpp"
#include "dse/oracles.hpp"
#include "dse/shrinker.hpp"
#include "search/anneal.hpp"
#include "sys/executor.hpp"
#include "sys/experiment.hpp"
#include "sys/pipeline_executor.hpp"
#include "tiers/congruence.hpp"

namespace hybridic {
namespace {

apps::SyntheticConfig synthetic_config(std::uint64_t seed,
                                       std::uint32_t kernels = 6) {
  apps::SyntheticConfig config;
  config.seed = seed;
  config.kernel_count = kernels;
  return config;
}

struct Prepared {
  std::shared_ptr<const apps::ProfiledApp> app;
  sys::AppSchedule schedule;
  core::DesignInput input;
};

Prepared prepare(const apps::SyntheticConfig& config) {
  Prepared p;
  p.app = std::make_shared<apps::ProfiledApp>(
      apps::make_synthetic_app(config));
  p.schedule = p.app->schedule();
  p.input = sys::make_design_input(p.schedule, sys::PlatformConfig{});
  return p;
}

search::AnnealOptions small_anneal() {
  search::AnnealOptions options;
  options.restarts = 3;
  options.iterations = 40;
  return options;
}

// ---------------------------------------------------------------------------
// Seed identity and move-library closure.

TEST(Search, GreedySeedRoundTripsThroughTheMoveEncoding) {
  for (const std::uint64_t seed : {1ULL, 5ULL, 9ULL, 23ULL}) {
    const Prepared p = prepare(synthetic_config(seed));
    const search::SearchProblem problem = search::make_search_problem(p.input);
    const search::SearchVars vars = search::vars_of_greedy(problem);
    const core::DesignResult rebuilt =
        core::build_design(p.input, search::to_decisions(problem, vars));
    const core::DesignResult greedy = core::design_interconnect(p.input);
    EXPECT_EQ(rebuilt.solution_tag(), greedy.solution_tag()) << seed;
    EXPECT_EQ(rebuilt.instances.size(), greedy.instances.size()) << seed;
    EXPECT_EQ(rebuilt.shared_pairs.size(), greedy.shared_pairs.size())
        << seed;
    EXPECT_EQ(rebuilt.estimate.proposed_seconds(),
              greedy.estimate.proposed_seconds())
        << seed;
    EXPECT_EQ(tiers::congruence_signature(p.schedule, rebuilt,
                                          p.input.theta.seconds_per_byte),
              tiers::congruence_signature(p.schedule, greedy,
                                          p.input.theta.seconds_per_byte))
        << seed;
  }
}

TEST(Search, EveryMovePlusInverseRestoresTheCongruenceSignature) {
  for (const std::uint64_t seed : {2ULL, 7ULL, 13ULL}) {
    const Prepared p = prepare(synthetic_config(seed));
    const search::SearchProblem problem = search::make_search_problem(p.input);
    const search::SearchVars start = search::vars_of_greedy(problem);
    const std::string start_signature = tiers::congruence_signature(
        p.schedule, core::build_design(p.input,
                                       search::to_decisions(problem, start)),
        p.input.theta.seconds_per_byte);
    const std::vector<search::Move> moves =
        search::legal_moves(problem, start);
    ASSERT_FALSE(moves.empty()) << seed;
    for (const search::Move& move : moves) {
      search::SearchVars walked = start;
      search::apply_move(walked, move);
      EXPECT_FALSE(walked == start) << search::to_string(move);
      search::apply_move(walked, search::inverse(move));
      EXPECT_TRUE(walked == start) << search::to_string(move);
      EXPECT_EQ(tiers::congruence_signature(
                    p.schedule,
                    core::build_design(p.input,
                                       search::to_decisions(problem, walked)),
                    p.input.theta.seconds_per_byte),
                start_signature)
          << search::to_string(move);
    }
  }
}

// ---------------------------------------------------------------------------
// The search contract: monotone incumbent, dominance, determinism.

TEST(Search, IncumbentTraceIsMonotoneNonIncreasing) {
  for (const std::uint64_t seed : {3ULL, 17ULL}) {
    const Prepared p = prepare(synthetic_config(seed));
    const search::SearchResult result = search::anneal_interconnect(
        p.schedule, p.input, sys::PlatformConfig{}, small_anneal());
    ASSERT_FALSE(result.incumbent_trace.empty());
    for (std::size_t i = 1; i < result.incumbent_trace.size(); ++i) {
      EXPECT_LE(result.incumbent_trace[i], result.incumbent_trace[i - 1])
          << "iteration " << i;
    }
  }
}

TEST(Search, SearchedDominatesOrMatchesAlgorithm1ByConstruction) {
  for (const std::uint64_t seed : {3ULL, 8ULL, 17ULL, 29ULL}) {
    const Prepared p = prepare(synthetic_config(seed));
    const search::SearchResult result = search::anneal_interconnect(
        p.schedule, p.input, sys::PlatformConfig{}, small_anneal());
    const search::SearchRecord record = result.record();
    EXPECT_LE(record.analytic_seconds, record.algorithm1_analytic_seconds)
        << seed;
    EXPECT_LE(record.luts, record.algorithm1_luts) << seed;
    EXPECT_GE(record.gain, 1.0) << seed;
    // The incumbent must be validator-clean — the gate is a hard
    // constraint, not a penalty term.
    EXPECT_TRUE(core::is_valid(
        core::validate_design(result.best, p.input.kernels)))
        << seed;
  }
}

TEST(Search, ThreadCountNeverChangesTheResult) {
  const Prepared p = prepare(synthetic_config(21, 7));
  search::AnnealOptions options = small_anneal();
  options.restarts = 4;
  options.threads = 1;
  const search::SearchResult serial = search::anneal_interconnect(
      p.schedule, p.input, sys::PlatformConfig{}, options);
  options.threads = 4;
  const search::SearchResult parallel = search::anneal_interconnect(
      p.schedule, p.input, sys::PlatformConfig{}, options);
  EXPECT_TRUE(serial.best_vars == parallel.best_vars);
  EXPECT_EQ(serial.best_restart, parallel.best_restart);
  EXPECT_EQ(serial.incumbent_trace, parallel.incumbent_trace);
  const search::SearchRecord a = serial.record();
  const search::SearchRecord b = parallel.record();
  EXPECT_EQ(a.solution_tag, b.solution_tag);
  EXPECT_EQ(a.analytic_seconds, b.analytic_seconds);
  EXPECT_EQ(a.luts, b.luts);
  EXPECT_EQ(a.proposed, b.proposed);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected_illegal, b.rejected_illegal);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
}

TEST(Search, RestartsAreIndependentStreams) {
  // Raising the restart count must not change what earlier restarts did:
  // the winning (restart, fitness) of a 2-restart run reappears among a
  // 4-restart run's candidates, because each restart derives its RNG from
  // (seed, restart) alone.
  const Prepared p = prepare(synthetic_config(4));
  search::AnnealOptions options = small_anneal();
  options.restarts = 2;
  const search::SearchResult narrow = search::anneal_interconnect(
      p.schedule, p.input, sys::PlatformConfig{}, options);
  options.restarts = 4;
  const search::SearchResult wide = search::anneal_interconnect(
      p.schedule, p.input, sys::PlatformConfig{}, options);
  EXPECT_LE(wide.record().analytic_seconds, narrow.record().analytic_seconds);
  if (wide.best_restart == narrow.best_restart) {
    EXPECT_TRUE(wide.best_vars == narrow.best_vars);
  }
}

// ---------------------------------------------------------------------------
// Oracle gate: the searched incumbent, substituted into a full
// cycle-accurate design case, passes the entire invariant-oracle library.

dse::DesignCase substitute_searched(const dse::DesignCase& base,
                                    const core::DesignResult& searched) {
  const sys::PlatformConfig platform;
  dse::DesignCase c = base;
  c.exp.proposed_design = searched;
  c.exp.proposed =
      sys::run_designed(c.schedule, searched, platform, "proposed");
  c.exp.kernel_area = core::kernel_resources(searched, c.schedule.specs);
  c.exp.interconnect_area = core::interconnect_resources(searched);
  const core::ComponentCost bus = core::component_cost(core::Component::kBus);
  c.exp.proposed_resources = c.app->environment.base_infrastructure +
                             core::Resources{bus.luts, bus.regs} +
                             c.exp.kernel_area + c.exp.interconnect_area;
  c.pipelined = sys::run_designed_pipelined(c.schedule, searched, platform,
                                            c.frame_count);
  return c;
}

TEST(Search, AcceptedIncumbentPassesTheFullOracleLibrary) {
  // board_count = 2 brings the board-byte-conservation oracle in, so the
  // substituted case faces the complete nine-oracle library.
  for (const std::uint32_t boards : {1U, 2U}) {
    apps::SyntheticConfig config = synthetic_config(6);
    config.board_count = boards;
    const dse::DesignCase base = dse::run_design_case(config);
    const core::DesignInput input =
        sys::make_design_input(base.schedule, sys::PlatformConfig{});
    const search::SearchResult result = search::anneal_interconnect(
        base.schedule, input, sys::PlatformConfig{}, small_anneal());
    const dse::DesignCase searched =
        substitute_searched(base, result.best);
    for (const dse::OracleResult& verdict :
         dse::run_all_oracles(searched, dse::OracleBounds{})) {
      EXPECT_TRUE(verdict.pass)
          << verdict.oracle << " (boards=" << boards
          << "): " << verdict.message;
    }
  }
}

TEST(Search, EndOfRunCycleValidationLandsInsideTheAnalyticBand) {
  const Prepared p = prepare(synthetic_config(5));
  search::AnnealOptions options = small_anneal();
  options.cycle_validate = true;
  const search::SearchResult result = search::anneal_interconnect(
      p.schedule, p.input, sys::PlatformConfig{}, options);
  ASSERT_TRUE(result.cycle.has_value());
  EXPECT_TRUE(result.cycle->within_band)
      << "measured " << result.cycle->measured_kernel_seconds << " s";
}

// ---------------------------------------------------------------------------
// The broken move generator: the gate must catch it, the shrinker must
// minimize it, and the minimized reproducer is pinned on disk.

std::string search_fixtures_dir() {
  return std::string{HYBRIDIC_TESTS_SOURCE_DIR} + "/fixtures/search";
}

bool update_mode() {
  const char* flag = std::getenv("HYBRIDIC_UPDATE_SEARCH_FIXTURES");
  return flag != nullptr && std::string{flag} == "1";
}

/// The broken generator: always proposes remapping kernel 0 onto the
/// infeasible {K1, M2} palette entry — a move legal_moves() never emits.
search::Move broken_move(const search::SearchProblem& problem,
                         const search::SearchVars& vars, Rng&) {
  (void)problem;
  return search::Move{search::MoveKind::kSetMapping, 0, vars.mapping[0],
                      search::kMappingInfeasible};
}

/// Run the annealer under the broken generator; true when the oracle
/// gate rejected broken proposals AND the incumbent stayed legal (the
/// failure the fixture pins is "broken moves reach the gate", not
/// "broken moves escape it").
bool gate_catches_broken_generator(const apps::SyntheticConfig& config) {
  const Prepared p = prepare(config);
  search::AnnealOptions options;
  options.restarts = 1;
  options.iterations = 8;
  options.move_hook = broken_move;
  const search::SearchResult result = search::anneal_interconnect(
      p.schedule, p.input, sys::PlatformConfig{}, options);
  return result.stats.rejected_illegal > 0 &&
         result.record().analytic_seconds ==
             result.record().algorithm1_analytic_seconds &&
         core::is_valid(core::validate_design(result.best, p.input.kernels));
}

/// Stable serialization of the shrunk config (the fixture format).
std::string fixture_text(const apps::SyntheticConfig& config) {
  std::ostringstream out;
  out << "{\n"
      << "  \"check\": \"broken-move-generator-gated\",\n"
      << "  \"expect\": \"fail\",\n"
      << "  \"kernel_count\": " << config.kernel_count << ",\n"
      << "  \"host_function_count\": " << config.host_function_count << ",\n"
      << "  \"kernel_edge_probability\": " << config.kernel_edge_probability
      << ",\n"
      << "  \"min_edge_bytes\": " << config.min_edge_bytes << ",\n"
      << "  \"max_edge_bytes\": " << config.max_edge_bytes << ",\n"
      << "  \"min_work_units\": " << config.min_work_units << ",\n"
      << "  \"max_work_units\": " << config.max_work_units << ",\n"
      << "  \"duplicable_probability\": " << config.duplicable_probability
      << ",\n"
      << "  \"streaming_probability\": " << config.streaming_probability
      << ",\n"
      << "  \"seed\": " << config.seed << "\n"
      << "}\n";
  return out.str();
}

TEST(Search, BrokenMoveGeneratorIsGatedShrunkAndPinned) {
  // The gate must reject every broken proposal on the starting config...
  const apps::SyntheticConfig start = synthetic_config(7);
  ASSERT_TRUE(gate_catches_broken_generator(start));

  // ...and the predicate-driven shrinker minimizes the witness. The
  // shrink is deterministic, so the checked-in fixture must match byte
  // for byte — like the dse mutation reproducer.
  const dse::ConfigShrink shrunk =
      dse::shrink_config(start, gate_catches_broken_generator);
  ASSERT_TRUE(shrunk.reproduced);
  EXPECT_GT(shrunk.attempts, 0U);
  ASSERT_TRUE(gate_catches_broken_generator(shrunk.config));

  const std::string path =
      search_fixtures_dir() + "/broken-move-generator.json";
  if (update_mode()) {
    std::filesystem::create_directories(search_fixtures_dir());
    std::ofstream out{path};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << fixture_text(shrunk.config);
    return;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good()) << path
                         << " missing; regenerate with "
                            "HYBRIDIC_UPDATE_SEARCH_FIXTURES=1";
  const std::string on_disk{std::istreambuf_iterator<char>{in},
                            std::istreambuf_iterator<char>{}};
  EXPECT_EQ(on_disk, fixture_text(shrunk.config))
      << "shrunk broken-move witness drifted from the checked-in fixture";
}

TEST(Search, StaleMovesAreRejectedLoudly) {
  const Prepared p = prepare(synthetic_config(1));
  const search::SearchProblem problem = search::make_search_problem(p.input);
  search::SearchVars vars = search::vars_of_greedy(problem);
  // A move whose `from` does not match the current state is a stale move
  // (the congruence cache must never replay one).
  const search::Move stale{search::MoveKind::kSetMapping, 0,
                           static_cast<std::uint8_t>(vars.mapping[0] + 1),
                           search::kMappingAdaptive};
  EXPECT_THROW(search::apply_move(vars, stale), ConfigError);
}

}  // namespace
}  // namespace hybridic
