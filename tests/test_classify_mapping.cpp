// Exhaustive tests of the communication classification (Eq. 4) and the
// adaptive mapping function (Table I / Eq. 5).
#include <gtest/gtest.h>

#include "core/adaptive_mapping.hpp"
#include "core/comm_classify.hpp"

namespace hybridic::core {
namespace {

KernelQuantities quantities(std::uint64_t host_in, std::uint64_t kernel_in,
                            std::uint64_t host_out,
                            std::uint64_t kernel_out) {
  KernelQuantities q;
  q.host_in = Bytes{host_in};
  q.kernel_in = Bytes{kernel_in};
  q.host_out = Bytes{host_out};
  q.kernel_out = Bytes{kernel_out};
  return q;
}

TEST(Classify, ReceiveClasses) {
  EXPECT_EQ(classify(quantities(0, 10, 1, 0)).recv, RecvClass::kR1);
  EXPECT_EQ(classify(quantities(10, 0, 1, 0)).recv, RecvClass::kR2);
  EXPECT_EQ(classify(quantities(10, 10, 1, 0)).recv, RecvClass::kR3);
}

TEST(Classify, SendClasses) {
  EXPECT_EQ(classify(quantities(1, 0, 0, 10)).send, SendClass::kS1);
  EXPECT_EQ(classify(quantities(1, 0, 10, 0)).send, SendClass::kS2);
  EXPECT_EQ(classify(quantities(1, 0, 10, 10)).send, SendClass::kS3);
}

TEST(Classify, NoTrafficDegradesToHostOnly) {
  const CommClass c = classify(quantities(0, 0, 0, 0));
  EXPECT_EQ(c.recv, RecvClass::kR2);
  EXPECT_EQ(c.send, SendClass::kS2);
}

TEST(Classify, ToStringReadable) {
  EXPECT_EQ(to_string(CommClass{RecvClass::kR3, SendClass::kS1}),
            "{R3,S1}");
}

/// Table I, row by row — the exact published mapping.
struct TableRow {
  RecvClass recv;
  SendClass send;
  KernelConn kernel;
  MemConn memory;
};

class TableOne : public ::testing::TestWithParam<TableRow> {};

TEST_P(TableOne, MatchesPaper) {
  const TableRow row = GetParam();
  const InterconnectClass ic =
      adaptive_map(CommClass{row.recv, row.send});
  EXPECT_EQ(ic.kernel, row.kernel)
      << to_string(CommClass{row.recv, row.send});
  EXPECT_EQ(ic.memory, row.memory)
      << to_string(CommClass{row.recv, row.send});
}

INSTANTIATE_TEST_SUITE_P(
    AllNineCases, TableOne,
    ::testing::Values(
        // {R1,S1} -> {K2,M2}
        TableRow{RecvClass::kR1, SendClass::kS1, KernelConn::kK2,
                 MemConn::kM2},
        // {R1,S2}, {R3,S2} -> {K1,M3}
        TableRow{RecvClass::kR1, SendClass::kS2, KernelConn::kK1,
                 MemConn::kM3},
        TableRow{RecvClass::kR3, SendClass::kS2, KernelConn::kK1,
                 MemConn::kM3},
        // {R1,S3}, {R3,S1}, {R3,S3} -> {K2,M3}
        TableRow{RecvClass::kR1, SendClass::kS3, KernelConn::kK2,
                 MemConn::kM3},
        TableRow{RecvClass::kR3, SendClass::kS1, KernelConn::kK2,
                 MemConn::kM3},
        TableRow{RecvClass::kR3, SendClass::kS3, KernelConn::kK2,
                 MemConn::kM3},
        // {R2,S1}, {R2,S3} -> {K2,M1}
        TableRow{RecvClass::kR2, SendClass::kS1, KernelConn::kK2,
                 MemConn::kM1},
        TableRow{RecvClass::kR2, SendClass::kS3, KernelConn::kK2,
                 MemConn::kM1},
        // {R2,S2} -> {K1,M1}
        TableRow{RecvClass::kR2, SendClass::kS2, KernelConn::kK1,
                 MemConn::kM1}));

TEST(AdaptiveMapping, NeverProducesInfeasibleCase) {
  for (const RecvClass r :
       {RecvClass::kR1, RecvClass::kR2, RecvClass::kR3}) {
    for (const SendClass s :
         {SendClass::kS1, SendClass::kS2, SendClass::kS3}) {
      EXPECT_TRUE(is_feasible(adaptive_map(CommClass{r, s})))
          << to_string(CommClass{r, s});
    }
  }
}

TEST(AdaptiveMapping, KernelOnNocIffSendsToKernels) {
  // Structural property of Table I: K2 exactly when S1 or S3.
  for (const RecvClass r :
       {RecvClass::kR1, RecvClass::kR2, RecvClass::kR3}) {
    for (const SendClass s :
         {SendClass::kS1, SendClass::kS2, SendClass::kS3}) {
      const InterconnectClass ic = adaptive_map(CommClass{r, s});
      const bool sends_to_kernels = s != SendClass::kS2;
      EXPECT_EQ(ic.kernel == KernelConn::kK2, sends_to_kernels);
    }
  }
}

TEST(AdaptiveMapping, MemoryOnNocIffReceivesFromKernels) {
  // Structural property of Table I: M2/M3 exactly when R1 or R3.
  for (const RecvClass r :
       {RecvClass::kR1, RecvClass::kR2, RecvClass::kR3}) {
    for (const SendClass s :
         {SendClass::kS1, SendClass::kS2, SendClass::kS3}) {
      const InterconnectClass ic = adaptive_map(CommClass{r, s});
      const bool receives_from_kernels = r != RecvClass::kR2;
      const bool memory_on_noc =
          ic.memory == MemConn::kM2 || ic.memory == MemConn::kM3;
      EXPECT_EQ(memory_on_noc, receives_from_kernels);
    }
  }
}

TEST(AdaptiveMapping, MemoryOffBusOnlyForPureKernelKernel) {
  // M2 (NoC only) is reserved for {R1,S1}: no host traffic at all.
  for (const RecvClass r :
       {RecvClass::kR1, RecvClass::kR2, RecvClass::kR3}) {
    for (const SendClass s :
         {SendClass::kS1, SendClass::kS2, SendClass::kS3}) {
      const InterconnectClass ic = adaptive_map(CommClass{r, s});
      if (ic.memory == MemConn::kM2) {
        EXPECT_EQ(r, RecvClass::kR1);
        EXPECT_EQ(s, SendClass::kS1);
      }
    }
  }
}

TEST(InterconnectFeasibility, OnlyK1M2Infeasible) {
  EXPECT_FALSE(is_feasible({KernelConn::kK1, MemConn::kM2}));
  EXPECT_TRUE(is_feasible({KernelConn::kK1, MemConn::kM1}));
  EXPECT_TRUE(is_feasible({KernelConn::kK2, MemConn::kM2}));
  EXPECT_TRUE(is_feasible({KernelConn::kK1, MemConn::kM3}));
}

TEST(InterconnectToString, Readable) {
  EXPECT_EQ(to_string(InterconnectClass{KernelConn::kK2, MemConn::kM3}),
            "{K2,M3}");
}

}  // namespace
}  // namespace hybridic::core
