// Tests of the profiler's memory-footprint analysis (QUAD's flat memory
// profile) and of the WestFirst routing extension.
#include <gtest/gtest.h>

#include "noc/routing.hpp"
#include "prof/quad.hpp"
#include "util/error.hpp"

namespace hybridic {
namespace {

TEST(Footprint, UniqueWrittenBytesDedupe) {
  prof::QuadProfiler q;
  const auto f = q.declare("f");
  const std::uint64_t addr = q.allocate(64);
  q.enter(f);
  q.record_write(addr, 32);
  q.record_write(addr, 32);       // Same range again.
  q.record_write(addr + 16, 32);  // Half-overlapping.
  q.leave();
  EXPECT_EQ(q.unique_bytes_written(f), 48U);
  EXPECT_EQ(q.graph().function(f).writes, 96U);  // Raw count still 96.
}

TEST(Footprint, UniqueReadBytesDedupe) {
  prof::QuadProfiler q;
  const auto w = q.declare("w");
  const auto r = q.declare("r");
  const std::uint64_t addr = q.allocate(128);
  q.enter(w);
  q.record_write(addr, 128);
  q.leave();
  q.enter(r);
  for (int i = 0; i < 5; ++i) {
    q.record_read(addr, 100);
  }
  q.leave();
  EXPECT_EQ(q.unique_bytes_read(r), 100U);
  EXPECT_EQ(q.unique_bytes_read(w), 0U);
  EXPECT_EQ(q.unique_bytes_written(r), 0U);
}

TEST(Footprint, QueryUndeclaredThrows) {
  prof::QuadProfiler q;
  EXPECT_THROW((void)q.unique_bytes_written(0), ConfigError);
  EXPECT_THROW((void)q.unique_bytes_read(3), ConfigError);
}

TEST(Footprint, MemoryReportListsAllFunctions) {
  prof::QuadProfiler q;
  const auto a = q.declare("alpha");
  const auto b = q.declare("beta");
  const std::uint64_t addr = q.allocate(16);
  q.enter(a);
  q.record_write(addr, 16);
  q.add_work(7);
  q.leave();
  q.enter(b);
  q.record_read(addr, 16);
  q.leave();
  const std::string report = q.memory_report();
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("16"), std::string::npos);
  EXPECT_NE(report.find("7"), std::string::npos);
}

TEST(WestFirst, AllWestHopsComeFirst) {
  const noc::Mesh2D mesh{5, 5};
  const noc::WestFirstRouting wf;
  // From (4,0) to (0,4): must move west four times before any north hop.
  std::uint32_t current = mesh.id_of({4, 0});
  const std::uint32_t dest = mesh.id_of({0, 4});
  int west_hops = 0;
  while (wf.route(mesh, current, dest) == noc::PortDir::kWest) {
    current = *mesh.neighbor(current, noc::PortDir::kWest);
    ++west_hops;
  }
  EXPECT_EQ(west_hops, 4);
  EXPECT_EQ(wf.route(mesh, current, dest), noc::PortDir::kNorth);
}

TEST(WestFirst, EastboundCorrectsYFirst) {
  const noc::Mesh2D mesh{5, 5};
  const noc::WestFirstRouting wf;
  // From (0,0) to (3,2): north first, then east.
  EXPECT_EQ(wf.route(mesh, mesh.id_of({0, 0}), mesh.id_of({3, 2})),
            noc::PortDir::kNorth);
  EXPECT_EQ(wf.route(mesh, mesh.id_of({0, 2}), mesh.id_of({3, 2})),
            noc::PortDir::kEast);
}

TEST(WestFirst, NeverTurnsIntoWestAfterLeavingIt) {
  // Turn-model property: once a packet has made a non-west move, the
  // route function never returns west again along the remaining path.
  const noc::Mesh2D mesh{6, 6};
  const noc::WestFirstRouting wf;
  for (std::uint32_t src = 0; src < mesh.node_count(); ++src) {
    for (std::uint32_t dst = 0; dst < mesh.node_count(); ++dst) {
      std::uint32_t current = src;
      bool left_west_phase = false;
      while (current != dst) {
        const noc::PortDir dir = wf.route(mesh, current, dst);
        if (dir == noc::PortDir::kWest) {
          ASSERT_FALSE(left_west_phase)
              << "west turn after non-west move, " << src << "->" << dst;
        } else {
          left_west_phase = true;
        }
        current = *mesh.neighbor(current, dir);
      }
    }
  }
}

TEST(WestFirst, RegisteredInFactory) {
  EXPECT_EQ(noc::make_routing("WestFirst")->name(), "WestFirst");
  EXPECT_EQ(noc::make_routing("WF")->name(), "WestFirst");
}

}  // namespace
}  // namespace hybridic
