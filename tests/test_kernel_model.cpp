#include "core/kernel_model.hpp"

#include <gtest/gtest.h>

namespace hybridic::core {
namespace {

/// A small fixed scenario: host h, kernels k1, k2, k3.
/// h -> k1 (100), k1 -> k2 (200), k2 -> k3 (300), k3 -> h (50),
/// k1 -> k1 (999, self), h -> k3 (25).
class KernelModelTest : public ::testing::Test {
protected:
  KernelModelTest() {
    h_ = graph_.add_function("h");
    k1_ = graph_.add_function("k1");
    k2_ = graph_.add_function("k2");
    k3_ = graph_.add_function("k3");
    graph_.add_transfer(h_, k1_, Bytes{100}, 100);
    graph_.add_transfer(k1_, k2_, Bytes{200}, 200);
    graph_.add_transfer(k2_, k3_, Bytes{300}, 300);
    graph_.add_transfer(k3_, h_, Bytes{50}, 50);
    graph_.add_transfer(k1_, k1_, Bytes{999}, 999);
    graph_.add_transfer(h_, k3_, Bytes{25}, 25);
    hw_ = {k1_, k2_, k3_};
  }

  prof::CommGraph graph_;
  prof::FunctionId h_, k1_, k2_, k3_;
  std::set<prof::FunctionId> hw_;
};

TEST_F(KernelModelTest, SplitsByEndpointKind) {
  const KernelQuantities q1 = derive_quantities(graph_, k1_, hw_);
  EXPECT_EQ(q1.host_in.count(), 100U);
  EXPECT_EQ(q1.kernel_in.count(), 0U);
  EXPECT_EQ(q1.host_out.count(), 0U);
  EXPECT_EQ(q1.kernel_out.count(), 200U);

  const KernelQuantities q2 = derive_quantities(graph_, k2_, hw_);
  EXPECT_EQ(q2.kernel_in.count(), 200U);
  EXPECT_EQ(q2.kernel_out.count(), 300U);
  EXPECT_EQ(q2.host_in.count(), 0U);
  EXPECT_EQ(q2.host_out.count(), 0U);

  const KernelQuantities q3 = derive_quantities(graph_, k3_, hw_);
  EXPECT_EQ(q3.host_in.count(), 25U);
  EXPECT_EQ(q3.kernel_in.count(), 300U);
  EXPECT_EQ(q3.host_out.count(), 50U);
}

TEST_F(KernelModelTest, SelfEdgesExcluded) {
  const KernelQuantities q1 = derive_quantities(graph_, k1_, hw_);
  // The 999-byte self edge must not appear anywhere.
  EXPECT_EQ(q1.total().count(), 300U);
}

TEST_F(KernelModelTest, TotalsAreSums) {
  const KernelQuantities q3 = derive_quantities(graph_, k3_, hw_);
  EXPECT_EQ(q3.total_in().count(), 325U);
  EXPECT_EQ(q3.total_out().count(), 50U);
  EXPECT_EQ(q3.total().count(), 375U);
}

TEST_F(KernelModelTest, ExclusionsRemoveEdges) {
  const KernelQuantities q2 = derive_quantities(
      graph_, k2_, hw_, {{k1_, k2_}});
  EXPECT_EQ(q2.kernel_in.count(), 0U);
  EXPECT_EQ(q2.kernel_out.count(), 300U);
  // The exclusion applies symmetrically to the producer's view.
  const KernelQuantities q1 = derive_quantities(
      graph_, k1_, hw_, {{k1_, k2_}});
  EXPECT_EQ(q1.kernel_out.count(), 0U);
}

TEST_F(KernelModelTest, ShrinkingHwSetMovesTrafficToHost) {
  // With k2 demoted to software, k1's output becomes host-bound.
  const std::set<prof::FunctionId> hw{k1_, k3_};
  const KernelQuantities q1 = derive_quantities(graph_, k1_, hw);
  EXPECT_EQ(q1.host_out.count(), 200U);
  EXPECT_EQ(q1.kernel_out.count(), 0U);
}

TEST(EdgeVolume, UsesUniqueBytes) {
  prof::CommEdge edge;
  edge.bytes = Bytes{1000};
  edge.unique_addresses = 250;
  EXPECT_EQ(edge_volume(edge).count(), 250U);
}

}  // namespace
}  // namespace hybridic::core
