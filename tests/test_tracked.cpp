#include "prof/tracked.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/error.hpp"

namespace hybridic::prof {
namespace {

class TrackedTest : public ::testing::Test {
protected:
  QuadProfiler q_;
  FunctionId writer_ = q_.declare("writer");
  FunctionId reader_ = q_.declare("reader");
};

TEST_F(TrackedTest, SetGetRoundTrip) {
  TrackedBuffer<int> buffer{q_, "buf", 8};
  ScopedFunction scope{q_, writer_};
  buffer.set(3, 42);
  EXPECT_EQ(buffer.get(3), 42);
}

TEST_F(TrackedTest, AccessesCreateEdges) {
  TrackedBuffer<float> buffer{q_, "buf", 4};
  {
    ScopedFunction scope{q_, writer_};
    buffer.set(0, 1.0F);
    buffer.set(1, 2.0F);
  }
  {
    ScopedFunction scope{q_, reader_};
    (void)buffer.get(0);
    (void)buffer.get(1);
  }
  EXPECT_EQ(q_.graph().bytes_between(writer_, reader_).count(),
            2 * sizeof(float));
}

TEST_F(TrackedTest, ProxyOperatorTracksBothDirections) {
  TrackedBuffer<int> buffer{q_, "buf", 4};
  {
    ScopedFunction scope{q_, writer_};
    buffer[0] = 7;
    buffer[1] = buffer[0] + 1;  // read then write
    buffer[1] += 2;
  }
  {
    ScopedFunction scope{q_, reader_};
    const int v = buffer[1];
    EXPECT_EQ(v, 10);
  }
  EXPECT_EQ(q_.graph().bytes_between(writer_, reader_).count(),
            sizeof(int));
  EXPECT_GT(q_.graph().bytes_between(writer_, writer_).count(), 0U);
}

TEST_F(TrackedTest, BulkRangesTrackOnce) {
  TrackedBuffer<std::uint8_t> buffer{q_, "buf", 64};
  std::array<std::uint8_t, 64> data{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  {
    ScopedFunction scope{q_, writer_};
    buffer.write_range(0, 64, data.data());
  }
  std::array<std::uint8_t, 32> out{};
  {
    ScopedFunction scope{q_, reader_};
    buffer.read_range(16, 32, out.data());
  }
  EXPECT_EQ(out[0], 16);
  EXPECT_EQ(q_.graph().bytes_between(writer_, reader_).count(), 32U);
}

TEST_F(TrackedTest, PeekAndPokeAreUntracked) {
  TrackedBuffer<int> buffer{q_, "buf", 2};
  buffer.poke(0, 5);
  EXPECT_EQ(buffer.peek(0), 5);
  EXPECT_TRUE(q_.graph().edges().empty());
  EXPECT_EQ(q_.graph().function(writer_).writes, 0U);
}

TEST_F(TrackedTest, OutOfBoundsThrows) {
  TrackedBuffer<int> buffer{q_, "buf", 4};
  ScopedFunction scope{q_, writer_};
  EXPECT_THROW(buffer.set(4, 0), ConfigError);
  EXPECT_THROW((void)buffer.get(100), ConfigError);
  EXPECT_THROW((void)buffer.peek(4), ConfigError);
  std::array<int, 4> tmp{};
  EXPECT_THROW(buffer.read_range(2, 3, tmp.data()), ConfigError);
  EXPECT_THROW(buffer.write_range(3, 2, tmp.data()), ConfigError);
}

TEST_F(TrackedTest, DistinctBuffersDoNotAlias) {
  TrackedBuffer<int> a{q_, "a", 4};
  TrackedBuffer<int> b{q_, "b", 4};
  EXPECT_GE(b.base_address(), a.base_address() + 4 * sizeof(int));
  {
    ScopedFunction scope{q_, writer_};
    a.set(0, 1);
  }
  {
    ScopedFunction scope{q_, reader_};
    // Reading the untouched buffer b creates no edge from writer.
    b.poke(0, 0);
    (void)b.get(0);
  }
  EXPECT_EQ(q_.graph().bytes_between(writer_, reader_).count(), 0U);
}

TEST_F(TrackedTest, AccessOutsideFunctionThrows) {
  TrackedBuffer<int> buffer{q_, "buf", 1};
  EXPECT_THROW(buffer.set(0, 1), ConfigError);
}

TEST_F(TrackedTest, SizeAndName) {
  TrackedBuffer<double> buffer{q_, "named", 17};
  EXPECT_EQ(buffer.size(), 17U);
  EXPECT_EQ(buffer.name(), "named");
}

}  // namespace
}  // namespace hybridic::prof
