#include "bus/bus.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/error.hpp"

namespace hybridic::bus {
namespace {

const sim::ClockDomain kBusClock{"bus", Frequency::megahertz(100)};  // 10 ns

BusConfig plb_like() {
  // 64-bit, 16-beat bursts, 2 arb + 1 addr cycles.
  return BusConfig{8, 16, Cycles{2}, Cycles{1}, 2};
}

class BusTest : public ::testing::Test {
protected:
  sim::Engine engine_;
  Bus bus_{"plb", engine_, kBusClock, plb_like(),
           std::make_unique<PriorityArbiter>()};
};

TEST_F(BusTest, UncontendedTimeSmallTransfer) {
  // 8 bytes = 1 beat, 1 burst: 2 + 1 + 1 = 4 cycles = 40 ns.
  EXPECT_EQ(bus_.uncontended_time(Bytes{8}).count(), 40'000U);
}

TEST_F(BusTest, UncontendedTimeMultiBurst) {
  // 256 bytes = 32 beats = 2 bursts: 2 + 2*1 + 32 = 36 cycles.
  EXPECT_EQ(bus_.uncontended_time(Bytes{256}).count(), 360'000U);
}

TEST_F(BusTest, ZeroByteTransactionStillRunsAddressPhase) {
  // 2 arb + 1 addr + 0 beats = 3 cycles.
  EXPECT_EQ(bus_.uncontended_time(Bytes{0}).count(), 30'000U);
}

TEST_F(BusTest, ThetaMatchesUncontendedTime) {
  const Bytes reference{4096};
  const double theta = bus_.theta_seconds_per_byte(reference);
  EXPECT_DOUBLE_EQ(theta, bus_.uncontended_time(reference).seconds() /
                              4096.0);
}

TEST_F(BusTest, CompletionCallbackFiresAtDeliveryTime) {
  Picoseconds done{0};
  bus_.submit(BusRequest{0, Bytes{8}, Picoseconds{0},
                         [&done](Picoseconds at) { done = at; }});
  engine_.run();
  EXPECT_EQ(done.count(), 40'000U);
}

TEST_F(BusTest, SlaveLatencyDelaysRequesterNotBus) {
  Picoseconds first{0};
  Picoseconds second{0};
  bus_.submit(BusRequest{0, Bytes{8}, Picoseconds{100'000},
                         [&](Picoseconds at) { first = at; }});
  bus_.submit(BusRequest{0, Bytes{8}, Picoseconds{0},
                         [&](Picoseconds at) { second = at; }});
  engine_.run();
  EXPECT_EQ(first.count(), 140'000U);  // 40 ns bus + 100 ns slave.
  // The bus itself freed after 40 ns, so the second transaction finishes
  // at 80 ns — before the first requester's slave completes.
  EXPECT_EQ(second.count(), 80'000U);
}

TEST_F(BusTest, SequentialRequestsSerialize) {
  std::vector<Picoseconds> done;
  for (int i = 0; i < 3; ++i) {
    bus_.submit(BusRequest{0, Bytes{8}, Picoseconds{0},
                           [&done](Picoseconds at) { done.push_back(at); }});
  }
  engine_.run();
  ASSERT_EQ(done.size(), 3U);
  EXPECT_EQ(done[0].count(), 40'000U);
  EXPECT_EQ(done[1].count(), 80'000U);
  EXPECT_EQ(done[2].count(), 120'000U);
}

TEST_F(BusTest, PriorityArbitrationPrefersLowMaster) {
  std::vector<int> order;
  // Occupy the bus first so both contenders queue.
  bus_.submit(BusRequest{0, Bytes{128}, Picoseconds{0}, {}});
  bus_.submit(BusRequest{1, Bytes{8}, Picoseconds{0},
                         [&order](Picoseconds) { order.push_back(1); }});
  bus_.submit(BusRequest{0, Bytes{8}, Picoseconds{0},
                         [&order](Picoseconds) { order.push_back(0); }});
  engine_.run();
  ASSERT_EQ(order.size(), 2U);
  EXPECT_EQ(order[0], 0);  // master 0 wins despite arriving later
  EXPECT_EQ(order[1], 1);
}

TEST_F(BusTest, StatisticsTrackTraffic) {
  bus_.submit(BusRequest{0, Bytes{100}, Picoseconds{0}, {}});
  bus_.submit(BusRequest{1, Bytes{28}, Picoseconds{0}, {}});
  engine_.run();
  EXPECT_EQ(bus_.bytes_transferred().count(), 128U);
  EXPECT_EQ(bus_.transactions(), 2U);
  EXPECT_GT(bus_.busy_time().count(), 0U);
  EXPECT_EQ(bus_.wait_summary().count(), 2U);
}

TEST_F(BusTest, InvalidMasterRejected) {
  EXPECT_THROW(bus_.submit(BusRequest{9, Bytes{8}, Picoseconds{0}, {}}),
               ConfigError);
}

TEST(BusRoundRobin, AlternatesBetweenMasters) {
  sim::Engine engine;
  Bus bus{"b", engine, kBusClock, plb_like(),
          std::make_unique<RoundRobinArbiter>(2)};
  std::vector<int> order;
  bus.submit(BusRequest{0, Bytes{64}, Picoseconds{0}, {}});  // occupies
  for (int i = 0; i < 2; ++i) {
    bus.submit(BusRequest{0, Bytes{8}, Picoseconds{0},
                          [&order](Picoseconds) { order.push_back(0); }});
    bus.submit(BusRequest{1, Bytes{8}, Picoseconds{0},
                          [&order](Picoseconds) { order.push_back(1); }});
  }
  engine.run();
  ASSERT_EQ(order.size(), 4U);
  // Round robin interleaves 1,0,1,0 after the initial master-0 grant.
  EXPECT_EQ(order, (std::vector<int>{1, 0, 1, 0}));
}

TEST(BusConfigValidation, RejectsBadConfigs) {
  sim::Engine engine;
  BusConfig bad = plb_like();
  bad.width_bytes = 0;
  EXPECT_THROW(Bus("b", engine, kBusClock, bad,
                   std::make_unique<PriorityArbiter>()),
               ConfigError);
  bad = plb_like();
  bad.max_burst_beats = 0;
  EXPECT_THROW(Bus("b", engine, kBusClock, bad,
                   std::make_unique<PriorityArbiter>()),
               ConfigError);
  EXPECT_THROW(Bus("b", engine, kBusClock, plb_like(), nullptr),
               ConfigError);
}

/// Property: single-beat configuration (the ML510 default) has
/// theta ~ (arb+addr+1) cycles / width for any width.
class SingleBeatTheta : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SingleBeatTheta, MatchesClosedForm) {
  sim::Engine engine;
  const std::uint32_t width = GetParam();
  Bus bus{"b", engine, kBusClock,
          BusConfig{width, 1, Cycles{2}, Cycles{1}, 1},
          std::make_unique<PriorityArbiter>()};
  const Bytes n{width * 100};
  // 2 arb + per-word (1 addr + 1 beat) * 100.
  const double expected =
      (2.0 + 200.0) * kBusClock.period().seconds() /
      static_cast<double>(n.count());
  EXPECT_NEAR(bus.theta_seconds_per_byte(n), expected, 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Widths, SingleBeatTheta,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace hybridic::bus
