#include "prof/shadow_memory.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hybridic::prof {
namespace {

TEST(ShadowMemory, UntouchedIsNoWriter) {
  ShadowMemory shadow;
  EXPECT_EQ(shadow.last_writer(0x1234), kNoWriter);
  EXPECT_EQ(shadow.page_count(), 0U);
}

TEST(ShadowMemory, WriteThenRead) {
  ShadowMemory shadow;
  shadow.write(100, 10, 7);
  EXPECT_EQ(shadow.last_writer(100), 7U);
  EXPECT_EQ(shadow.last_writer(109), 7U);
  EXPECT_EQ(shadow.last_writer(110), kNoWriter);
  EXPECT_EQ(shadow.last_writer(99), kNoWriter);
}

TEST(ShadowMemory, OverwriteChangesProducer) {
  ShadowMemory shadow;
  shadow.write(0, 16, 1);
  shadow.write(4, 4, 2);
  EXPECT_EQ(shadow.last_writer(3), 1U);
  EXPECT_EQ(shadow.last_writer(4), 2U);
  EXPECT_EQ(shadow.last_writer(7), 2U);
  EXPECT_EQ(shadow.last_writer(8), 1U);
}

TEST(ShadowMemory, WritesSpanPages) {
  ShadowMemory shadow;
  const std::uint64_t start = ShadowMemory::kPageBytes - 8;
  shadow.write(start, 16, 3);
  EXPECT_EQ(shadow.last_writer(start), 3U);
  EXPECT_EQ(shadow.last_writer(ShadowMemory::kPageBytes), 3U);
  EXPECT_EQ(shadow.last_writer(start + 15), 3U);
  EXPECT_EQ(shadow.page_count(), 2U);
}

TEST(ShadowMemory, ScanReportsRuns) {
  ShadowMemory shadow;
  shadow.write(0, 4, 1);
  shadow.write(4, 4, 2);
  // Bytes 8..11 untouched.
  struct Run {
    std::uint64_t start, length;
    FunctionId producer;
  };
  std::vector<Run> runs;
  shadow.scan(0, 12, [&runs](std::uint64_t s, std::uint64_t l,
                             FunctionId p) {
    runs.push_back(Run{s, l, p});
  });
  ASSERT_EQ(runs.size(), 3U);
  EXPECT_EQ(runs[0].producer, 1U);
  EXPECT_EQ(runs[0].length, 4U);
  EXPECT_EQ(runs[1].producer, 2U);
  EXPECT_EQ(runs[1].length, 4U);
  EXPECT_EQ(runs[2].producer, kNoWriter);
  EXPECT_EQ(runs[2].length, 4U);
}

TEST(ShadowMemory, ScanCoversExactRange) {
  ShadowMemory shadow;
  shadow.write(10, 100, 5);
  std::uint64_t covered = 0;
  shadow.scan(0, 200, [&covered](std::uint64_t, std::uint64_t l,
                                 FunctionId) { covered += l; });
  EXPECT_EQ(covered, 200U);
}

TEST(ShadowMemory, LargeSparseAddressesStayCheap) {
  ShadowMemory shadow;
  shadow.write(0, 8, 1);
  shadow.write(1ULL << 40, 8, 2);
  EXPECT_EQ(shadow.page_count(), 2U);
  EXPECT_EQ(shadow.last_writer(1ULL << 40), 2U);
}

}  // namespace
}  // namespace hybridic::prof
