// Replays every shrunk reproducer checked in under tests/fixtures/dse/.
//
// Each fixture is a standalone JSON file emitted by the campaign shrinker
// (src/dse/reproducer.hpp). `expect: "pass"` pins a fixed bug green;
// `expect: "fail"` pins a known-live failure (today: the deliberately
// broken mutation oracle, which proves the shrink -> serialize -> replay
// loop end to end). Regenerate fixtures with
//   HYBRIDIC_UPDATE_DSE_FIXTURES=1 ctest -R DseRegressions
// and review the diff like any other golden update.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dse/oracles.hpp"
#include "dse/reproducer.hpp"
#include "dse/shrinker.hpp"

namespace hybridic::dse {
namespace {

std::string fixtures_dir() {
  return std::string{HYBRIDIC_TESTS_SOURCE_DIR} + "/fixtures/dse";
}

std::vector<std::string> fixture_paths() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(fixtures_dir())) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

bool update_mode() {
  const char* flag = std::getenv("HYBRIDIC_UPDATE_DSE_FIXTURES");
  return flag != nullptr && std::string{flag} == "1";
}

/// The canonical live-failure fixture: shrink the default synthetic config
/// against the mutation oracle. Deterministic, so the checked-in file must
/// match byte for byte.
Reproducer make_mutation_fixture() {
  apps::SyntheticConfig start;
  start.seed = 7;
  const ShrinkResult shrunk = shrink(start, mutation_oracle());
  Reproducer r;
  r.oracle = mutation_oracle().name;
  r.expect = Expectation::kFail;
  r.message = shrunk.failure.message;
  r.config = shrunk.config;
  return r;
}

TEST(DseRegressions, MutationFixtureIsCurrent) {
  const Reproducer expected = make_mutation_fixture();
  const std::string path =
      fixtures_dir() + "/" + reproducer_file_name(expected);
  if (update_mode()) {
    std::filesystem::create_directories(fixtures_dir());
    std::ofstream out{path};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << to_json(expected);
    return;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good())
      << path << " missing; regenerate with HYBRIDIC_UPDATE_DSE_FIXTURES=1";
  const std::string on_disk{std::istreambuf_iterator<char>{in},
                            std::istreambuf_iterator<char>{}};
  EXPECT_EQ(on_disk, to_json(expected))
      << "shrinker output drifted from the checked-in fixture";
}

TEST(DseRegressions, EveryFixtureReplaysToItsExpectedOutcome) {
  const std::vector<std::string> paths = fixture_paths();
  ASSERT_FALSE(paths.empty()) << "no fixtures under " << fixtures_dir();
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    const Reproducer fixture = load_reproducer(path);
    const OracleResult result = replay(fixture);
    if (fixture.expect == Expectation::kFail) {
      EXPECT_FALSE(result.pass)
          << "pinned failure no longer reproduces; if the underlying "
             "oracle was fixed, flip expect to \"pass\"";
      // The exact violated bound must match what the shrinker recorded.
      EXPECT_EQ(result.message, fixture.message);
    } else {
      EXPECT_TRUE(result.pass)
          << fixture.oracle << " regressed: " << result.message;
    }
  }
}

}  // namespace
}  // namespace hybridic::dse
