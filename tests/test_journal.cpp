// Run journal + outcome codec: the PR 9 crash-safety ledger.
//  (a) append/read round-trips entries, including payloads with newlines
//      and backslashes;
//  (b) per-line damage (tampered checksum, truncation, torn final line)
//      is skipped and counted, never returned as a wrong entry;
//  (c) a missing journal reads as empty (first run of a campaign);
//  (d) encode_outcome/decode_outcome round-trips every CaseOutcome field
//      bit-exactly, with and without the analytic estimate;
//  (e) campaign_fingerprint moves under any spec change that would make
//      journaled rows unsound to restore.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dse/campaign.hpp"
#include "dse/outcome_codec.hpp"
#include "store/journal.hpp"
#include "tiers/analytic.hpp"
#include "util/error.hpp"

namespace hybridic {
namespace {

std::string temp_journal_path(const char* tag) {
  return testing::TempDir() + "journal_test_" + tag + ".log";
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return std::string{std::istreambuf_iterator<char>{in},
                     std::istreambuf_iterator<char>{}};
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << text;
}

TEST(Journal, AppendReadRoundTripsEntries) {
  const std::string path = temp_journal_path("roundtrip");
  std::remove(path.c_str());
  {
    store::Journal journal{path};
    journal.append("00000000deadbeef", "dse/7/0", "payload zero");
    journal.append("00000000deadbeef", "dse/7/1",
                   "multi\nline\\payload\rwith every escape");
    journal.append("00000000deadbeef", "dse/7/2", "");
    EXPECT_EQ(journal.appended(), 3U);
  }
  const store::Journal::ReadResult read = store::Journal::read(path);
  EXPECT_EQ(read.skipped_lines, 0U);
  ASSERT_EQ(read.entries.size(), 3U);
  EXPECT_EQ(read.entries[0].key, "dse/7/0");
  EXPECT_EQ(read.entries[0].payload, "payload zero");
  EXPECT_EQ(read.entries[1].payload,
            "multi\nline\\payload\rwith every escape");
  EXPECT_EQ(read.entries[2].payload, "");
  for (const store::Journal::Entry& entry : read.entries) {
    EXPECT_EQ(entry.fingerprint, "00000000deadbeef");
  }
}

TEST(Journal, MissingFileReadsAsEmpty) {
  const store::Journal::ReadResult read =
      store::Journal::read(testing::TempDir() + "does_not_exist.log");
  EXPECT_TRUE(read.entries.empty());
  EXPECT_EQ(read.skipped_lines, 0U);
}

TEST(Journal, TamperedChecksumIsSkippedAndCounted) {
  const std::string path = temp_journal_path("tamper");
  std::remove(path.c_str());
  {
    store::Journal journal{path};
    journal.append("0123456789abcdef", "dse/1/0", "good zero");
    journal.append("0123456789abcdef", "dse/1/1", "to be damaged");
    journal.append("0123456789abcdef", "dse/1/2", "good two");
  }
  std::string text = slurp(path);
  const std::size_t at = text.find("damaged");
  ASSERT_NE(at, std::string::npos);
  text[at] = 'X';
  spit(path, text);
  const store::Journal::ReadResult read = store::Journal::read(path);
  EXPECT_EQ(read.skipped_lines, 1U);
  ASSERT_EQ(read.entries.size(), 2U);
  EXPECT_EQ(read.entries[0].key, "dse/1/0");
  EXPECT_EQ(read.entries[1].key, "dse/1/2");
}

TEST(Journal, TornFinalLineDegradesToSkip) {
  const std::string path = temp_journal_path("torn");
  std::remove(path.c_str());
  {
    store::Journal journal{path};
    journal.append("0123456789abcdef", "dse/2/0", "survives");
    journal.append("0123456789abcdef", "dse/2/1", "will be torn");
  }
  std::string text = slurp(path);
  // A crash mid-write tears the final line at an arbitrary byte. Every
  // possible tear must parse to "one good entry + skip", never to a
  // wrong payload.
  const std::size_t second_start = text.find('\n') + 1;
  for (std::size_t keep = second_start; keep + 1 < text.size(); ++keep) {
    spit(path, text.substr(0, keep));
    const store::Journal::ReadResult read = store::Journal::read(path);
    if (keep == second_start) {
      // Tear before any byte of line 2: just a clean one-entry journal.
      EXPECT_EQ(read.skipped_lines, 0U);
    } else {
      EXPECT_EQ(read.skipped_lines, 1U) << "tear at byte " << keep;
    }
    ASSERT_EQ(read.entries.size(), 1U) << "tear at byte " << keep;
    EXPECT_EQ(read.entries[0].payload, "survives");
  }
  // Losing only the trailing newline leaves a complete record: accepted.
  spit(path, text.substr(0, text.size() - 1));
  const store::Journal::ReadResult read = store::Journal::read(path);
  EXPECT_EQ(read.skipped_lines, 0U);
  ASSERT_EQ(read.entries.size(), 2U);
  EXPECT_EQ(read.entries[1].payload, "will be torn");
}

TEST(Journal, GarbageLinesNeverThrow) {
  const std::string path = temp_journal_path("garbage");
  spit(path,
       "not a journal line\n"
       "J1 tooshort 0123456789abcdef key payload\n"
       "J1 0123456789abcdef 0123456789abcdef\n"
       "\n");
  const store::Journal::ReadResult read = store::Journal::read(path);
  EXPECT_TRUE(read.entries.empty());
  EXPECT_EQ(read.skipped_lines, 4U);
}

TEST(Journal, RejectsUnsafeKeys) {
  const std::string path = temp_journal_path("unsafe");
  std::remove(path.c_str());
  store::Journal journal{path};
  EXPECT_THROW(journal.append("0123456789abcdef", "key with space", "p"),
               store::StoreError);
  EXPECT_THROW(journal.append("0123456789abcdef", "", "p"),
               store::StoreError);
}

// ---------------------------------------------------------------------------
// Outcome codec.

dse::CaseOutcome sample_outcome() {
  dse::CaseOutcome o;
  o.index = 23;
  o.config.kernel_count = 5;
  o.config.host_function_count = 3;
  o.config.kernel_edge_probability = 0.37251;
  o.config.min_edge_bytes = 2048;
  o.config.max_edge_bytes = 65536;
  o.config.min_work_units = 7001;
  o.config.max_work_units = 190001;
  o.config.duplicable_probability = 0.125;
  o.config.streaming_probability = 0.625;
  o.config.seed = 0xfeedface12345678ULL;
  o.config.board_count = 3;
  o.config.board_topology = "ring";
  o.solution_tag = "NoC; SM; P";
  o.simulated = true;
  o.baseline_seconds = 0.037;
  o.designed_seconds = 0.021;
  o.crossbar_seconds = 0.019;
  o.pipelined_makespan_seconds = 0.0555;
  o.measured_designed_kernel_seconds = 0.0171;
  o.escalation = tiers::EscalationReason::kOracle;
  o.band_violation = true;
  o.multi_total_seconds = 0.062;
  o.cut_bytes = 4096;
  o.inter_board_bytes = 8192;
  o.board_link_reroutes = 2;
  o.oracles.push_back({"speedup-sanity", false, "0.9x < 1.0x"});
  o.oracles.push_back({"baseline-band", true, ""});
  o.error = "an error\nwith a newline";
  return o;
}

void expect_outcomes_equal(const dse::CaseOutcome& a,
                           const dse::CaseOutcome& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.config.kernel_count, b.config.kernel_count);
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(a.config.board_topology, b.config.board_topology);
  // Doubles travel as hex floats: equality must be exact, not approx.
  EXPECT_EQ(a.config.kernel_edge_probability,
            b.config.kernel_edge_probability);
  EXPECT_EQ(a.baseline_seconds, b.baseline_seconds);
  EXPECT_EQ(a.designed_seconds, b.designed_seconds);
  EXPECT_EQ(a.crossbar_seconds, b.crossbar_seconds);
  EXPECT_EQ(a.pipelined_makespan_seconds, b.pipelined_makespan_seconds);
  EXPECT_EQ(a.measured_designed_kernel_seconds,
            b.measured_designed_kernel_seconds);
  EXPECT_EQ(a.solution_tag, b.solution_tag);
  EXPECT_EQ(a.simulated, b.simulated);
  EXPECT_EQ(a.escalation, b.escalation);
  EXPECT_EQ(a.band_violation, b.band_violation);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.multi_total_seconds, b.multi_total_seconds);
  EXPECT_EQ(a.cut_bytes, b.cut_bytes);
  EXPECT_EQ(a.inter_board_bytes, b.inter_board_bytes);
  EXPECT_EQ(a.board_link_reroutes, b.board_link_reroutes);
  EXPECT_EQ(a.error, b.error);
  ASSERT_EQ(a.oracles.size(), b.oracles.size());
  for (std::size_t i = 0; i < a.oracles.size(); ++i) {
    EXPECT_EQ(a.oracles[i].oracle, b.oracles[i].oracle);
    EXPECT_EQ(a.oracles[i].pass, b.oracles[i].pass);
    EXPECT_EQ(a.oracles[i].message, b.oracles[i].message);
  }
  EXPECT_EQ(a.analytic.has_value(), b.analytic.has_value());
  if (a.analytic.has_value() && b.analytic.has_value()) {
    EXPECT_EQ(a.analytic->designed_kernel_seconds,
              b.analytic->designed_kernel_seconds);
    EXPECT_EQ(a.analytic->congruence_key, b.analytic->congruence_key);
    EXPECT_EQ(a.analytic->noc_hop_bytes, b.analytic->noc_hop_bytes);
  }
}

TEST(OutcomeCodec, RoundTripsWithoutAnalytic) {
  const dse::CaseOutcome original = sample_outcome();
  const std::optional<dse::CaseOutcome> decoded =
      dse::decode_outcome(dse::encode_outcome(original));
  ASSERT_TRUE(decoded.has_value());
  expect_outcomes_equal(original, *decoded);
  // Re-encoding the decoded outcome is byte-identical (the resume path
  // re-journals restored rows only implicitly, but byte-stability is
  // what makes double appends benign).
  EXPECT_EQ(dse::encode_outcome(original), dse::encode_outcome(*decoded));
}

TEST(OutcomeCodec, RoundTripsWithAnalyticEstimate) {
  dse::CaseOutcome original = sample_outcome();
  tiers::TierEstimate estimate;
  estimate.solution_tag = "NoC, P";
  estimate.baseline_kernel_seconds = 0.031;
  estimate.designed_kernel_seconds = 0.0185;
  estimate.designed_lower_seconds = 0.009;
  estimate.designed_upper_seconds = 0.044;
  estimate.noc_hop_bytes = 123456;
  estimate.congruence_key = 0xabcdef0011223344ULL;
  original.analytic = estimate;
  const std::optional<dse::CaseOutcome> decoded =
      dse::decode_outcome(dse::encode_outcome(original));
  ASSERT_TRUE(decoded.has_value());
  expect_outcomes_equal(original, *decoded);
}

TEST(OutcomeCodec, QuarantinedAndSkippedFlagsSurvive) {
  dse::CaseOutcome original = sample_outcome();
  original.quarantined = true;
  original.skipped = false;
  original.simulated = false;
  const std::optional<dse::CaseOutcome> decoded =
      dse::decode_outcome(dse::encode_outcome(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->quarantined);
  EXPECT_FALSE(decoded->skipped);
}

TEST(OutcomeCodec, DamagedPayloadsDecodeToNullopt) {
  const std::string good = dse::encode_outcome(sample_outcome());
  EXPECT_TRUE(dse::decode_outcome(good).has_value());
  EXPECT_FALSE(dse::decode_outcome("").has_value());
  EXPECT_FALSE(dse::decode_outcome("outcome 2\n").has_value());
  // Every prefix truncation fails cleanly (no partial outcome).
  for (std::size_t keep = 0; keep < good.size(); keep += 7) {
    EXPECT_FALSE(dse::decode_outcome(good.substr(0, keep)).has_value())
        << "truncation at " << keep;
  }
  // Trailing junk is rejected too.
  EXPECT_FALSE(dse::decode_outcome(good + "extra\n").has_value());
}

// ---------------------------------------------------------------------------
// Campaign fingerprint.

TEST(CampaignFingerprint, MovesUnderAnySpecChange) {
  dse::CampaignOptions base;
  base.count = 48;
  base.campaign_seed = 7;
  base.tier = tiers::TierMode::kCycle;
  const std::string fp = dse::campaign_fingerprint(base);
  EXPECT_EQ(fp.size(), 16U);
  EXPECT_EQ(fp, dse::campaign_fingerprint(base));  // Deterministic.

  const auto differs = [&fp](dse::CampaignOptions changed,
                             const char* what) {
    EXPECT_NE(dse::campaign_fingerprint(changed), fp) << what;
  };
  {
    dse::CampaignOptions c = base;
    c.count = 49;
    differs(c, "count");
  }
  {
    dse::CampaignOptions c = base;
    c.campaign_seed = 8;
    differs(c, "seed");
  }
  {
    dse::CampaignOptions c = base;
    c.tier = tiers::TierMode::kAnalytic;
    differs(c, "tier");
  }
  {
    dse::CampaignOptions c = base;
    c.shard_count = 2;
    differs(c, "shard spec");
  }
  {
    dse::CampaignOptions c = base;
    c.space.max_kernels += 1;
    differs(c, "sweep space");
  }
  {
    dse::CampaignOptions c = base;
    c.space.board_topologies = {"mesh"};
    differs(c, "board topology");
  }
  {
    dse::CampaignOptions c = base;
    c.bounds.speedup_slack += 0.001;
    differs(c, "oracle bounds");
  }
  {
    dse::CampaignOptions c = base;
    c.job_timeout_seconds = 2.0;
    differs(c, "watchdog budget");
  }
  // Fields that do NOT change what a row contains keep the fingerprint:
  // thread count and resume flags must not invalidate a journal.
  {
    dse::CampaignOptions c = base;
    c.threads = 7;
    c.resume = true;
    c.journal_path = "elsewhere.log";
    c.transient_retries = 9;
    EXPECT_EQ(dse::campaign_fingerprint(c), fp);
  }
}

}  // namespace
}  // namespace hybridic
