// Golden-schema tests for the two machine-readable trace exporters added
// with the structured-trace engine: the per-event CSV (sys::trace_csv) and
// the Chrome-trace/Perfetto JSON (engine::chrome_trace_json).
//
// Downstream tooling (the campaign CSV joins, Perfetto) parses these
// formats, so their column layout and JSON framing are a contract. The
// goldens pin the full byte-exact output of one small deterministic run;
// regenerate after an intentional format change with
//   HYBRIDIC_UPDATE_TRACE_GOLDENS=1 ctest -R TraceSchema
// and review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "apps/synthetic.hpp"
#include "sys/engine/chrome_trace.hpp"
#include "sys/executor.hpp"
#include "sys/timeline.hpp"

namespace hybridic::sys {
namespace {

std::string goldens_dir() {
  return std::string{HYBRIDIC_TESTS_SOURCE_DIR} + "/fixtures/trace";
}

bool update_mode() {
  const char* flag = std::getenv("HYBRIDIC_UPDATE_TRACE_GOLDENS");
  return flag != nullptr && std::string{flag} == "1";
}

/// One small, fully deterministic run shared by every schema test.
RunResult golden_run() {
  apps::SyntheticConfig config;
  config.kernel_count = 3;
  config.kernel_edge_probability = 0.8;
  config.min_edge_bytes = 256;
  config.max_edge_bytes = 1024;
  config.min_work_units = 500;
  config.max_work_units = 2000;
  config.seed = 11;
  apps::ProfiledApp app = apps::make_synthetic_app(config);
  return run_baseline(app.schedule(), PlatformConfig{});
}

void check_against_golden(const std::string& file_name,
                          const std::string& produced) {
  const std::string path = goldens_dir() + "/" + file_name;
  if (update_mode()) {
    std::filesystem::create_directories(goldens_dir());
    std::ofstream out{path, std::ios::binary};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << produced;
    return;
  }
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good())
      << path << " missing; regenerate with HYBRIDIC_UPDATE_TRACE_GOLDENS=1";
  const std::string golden{std::istreambuf_iterator<char>{in},
                           std::istreambuf_iterator<char>{}};
  EXPECT_EQ(produced, golden)
      << file_name
      << " drifted; if the format change is intentional, regenerate the "
         "golden and update any consumers";
}

TEST(TraceSchema, EventCsvMatchesGolden) {
  check_against_golden("baseline_trace.csv", trace_csv(golden_run().trace));
}

TEST(TraceSchema, EventCsvHeaderIsTheDocumentedContract) {
  const std::string csv = trace_csv(golden_run().trace);
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header, "event,kind,fabric,step,start_s,end_s,bytes,label");
  // Every data row carries exactly the header's column count.
  std::size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    const std::size_t end = csv.find('\n', pos);
    const std::string row = csv.substr(pos, end - pos);
    EXPECT_EQ(std::count(row.begin(), row.end(), ','), 7) << row;
    pos = end + 1;
  }
}

TEST(TraceSchema, ChromeTraceJsonMatchesGolden) {
  const RunResult run = golden_run();
  check_against_golden("baseline_chrome_trace.json",
                       engine::chrome_trace_json(run.trace, run.system_name));
}

TEST(TraceSchema, ChromeTraceJsonCarriesPerfettoFraming) {
  const RunResult run = golden_run();
  const std::string json =
      engine::chrome_trace_json(run.trace, run.system_name);
  // The pieces Perfetto / chrome://tracing require to load the file.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find(run.system_name), std::string::npos);
  // One complete event per trace event.
  std::size_t complete_events = 0;
  for (std::size_t pos = json.find("\"ph\": \"X\"");
       pos != std::string::npos; pos = json.find("\"ph\": \"X\"", pos + 1)) {
    ++complete_events;
  }
  EXPECT_EQ(complete_events, run.trace.events().size());
}

}  // namespace
}  // namespace hybridic::sys
