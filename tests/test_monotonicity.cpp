// System-level monotonicity properties: making any resource slower (or
// any workload bigger) must never make a simulated run faster. These
// catch sign errors and double-counting in the timing models.
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/interconnect_design.hpp"
#include "sys/experiment.hpp"
#include "sys/pipeline_executor.hpp"

namespace hybridic::sys {
namespace {

class Monotonicity : public ::testing::TestWithParam<std::uint64_t> {
protected:
  [[nodiscard]] static apps::ProfiledApp app(std::uint64_t seed) {
    apps::SyntheticConfig config;
    config.seed = seed;
    config.kernel_count = 5;
    return apps::make_synthetic_app(config);
  }
};

TEST_P(Monotonicity, SlowerBusNeverSpeedsUpBaseline) {
  const apps::ProfiledApp a = app(GetParam());
  const AppSchedule schedule = a.schedule();
  PlatformConfig fast;
  fast.bus.max_burst_beats = 16;
  PlatformConfig slow;
  slow.bus.max_burst_beats = 1;
  slow.bus.arbitration_cycles = Cycles{4};
  const double t_fast = run_baseline(schedule, fast).total_seconds;
  const double t_slow = run_baseline(schedule, slow).total_seconds;
  EXPECT_LE(t_fast, t_slow * 1.0001);
}

TEST_P(Monotonicity, SlowerBusNeverSpeedsUpProposed) {
  const apps::ProfiledApp a = app(GetParam());
  const AppSchedule schedule = a.schedule();
  PlatformConfig fast;
  fast.bus.max_burst_beats = 16;
  PlatformConfig slow;
  slow.bus.max_burst_beats = 1;
  // Use one design (from the slow platform) for both runs so only the
  // fabric speed changes.
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, slow));
  const double t_fast =
      run_designed(schedule, design, fast).total_seconds;
  const double t_slow =
      run_designed(schedule, design, slow).total_seconds;
  EXPECT_LE(t_fast, t_slow * 1.0001);
}

TEST_P(Monotonicity, SlowerNocNeverSpeedsUpProposed) {
  const apps::ProfiledApp a = app(GetParam());
  const AppSchedule schedule = a.schedule();
  PlatformConfig fast;
  PlatformConfig slow;
  slow.noc.router.pipeline_cycles = 6;
  slow.noc.max_packet_payload_bytes = 16;
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, fast));
  const double t_fast =
      run_designed(schedule, design, fast).total_seconds;
  const double t_slow =
      run_designed(schedule, design, slow).total_seconds;
  EXPECT_LE(t_fast, t_slow * 1.0001);
}

TEST_P(Monotonicity, SlowerKernelClockScalesSoftwareAndHardware) {
  const apps::ProfiledApp a = app(GetParam());
  const AppSchedule schedule = a.schedule();
  PlatformConfig fast;
  PlatformConfig slow;
  slow.kernel_clock = Frequency::megahertz(50);
  const double t_fast = run_baseline(schedule, fast).total_seconds;
  const double t_slow = run_baseline(schedule, slow).total_seconds;
  EXPECT_LT(t_fast, t_slow);
  // Software runs on the host: unaffected by the kernel clock.
  EXPECT_DOUBLE_EQ(run_software(schedule, fast).total_seconds,
                   run_software(schedule, slow).total_seconds);
}

TEST_P(Monotonicity, MoreFramesNeverReduceMakespan) {
  const apps::ProfiledApp a = app(GetParam());
  const AppSchedule schedule = a.schedule();
  const PlatformConfig config;
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, config));
  double previous = 0.0;
  for (const std::uint32_t frames : {1U, 2U, 4U, 8U}) {
    const PipelineResult r =
        run_designed_pipelined(schedule, design, config, frames);
    EXPECT_GE(r.makespan_seconds, previous);
    previous = r.makespan_seconds;
  }
}

TEST_P(Monotonicity, LargerOverheadNeverHelpsProposed) {
  const apps::ProfiledApp a = app(GetParam());
  const AppSchedule schedule = a.schedule();
  PlatformConfig small;
  small.stream_overhead_seconds = 1e-6;
  small.duplication_overhead_seconds = 1e-6;
  PlatformConfig large;
  large.stream_overhead_seconds = 100e-6;
  large.duplication_overhead_seconds = 400e-6;
  // Shared design: decisions fixed by the small-overhead input, so the
  // comparison isolates the executor's overhead application.
  const core::DesignResult design = core::design_interconnect(
      make_design_input(schedule, small));
  const double t_small =
      run_designed(schedule, design, small).total_seconds;
  const double t_large =
      run_designed(schedule, design, large).total_seconds;
  EXPECT_LE(t_small, t_large * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Monotonicity,
                         ::testing::Values(5, 14, 33, 52));

}  // namespace
}  // namespace hybridic::sys
