#include "core/perf_model.hpp"

#include <gtest/gtest.h>

#include "core/design_result.hpp"

namespace hybridic::core {
namespace {

constexpr Theta kTheta{10e-9};  // 10 ns per byte.

KernelQuantities make_quantities(std::uint64_t host_in,
                                 std::uint64_t kernel_in,
                                 std::uint64_t host_out,
                                 std::uint64_t kernel_out) {
  KernelQuantities q;
  q.host_in = Bytes{host_in};
  q.kernel_in = Bytes{kernel_in};
  q.host_out = Bytes{host_out};
  q.kernel_out = Bytes{kernel_out};
  return q;
}

TEST(Theta, TransferSecondsLinear) {
  EXPECT_DOUBLE_EQ(kTheta.transfer_seconds(Bytes{1000}), 10e-6);
  EXPECT_DOUBLE_EQ(kTheta.transfer_seconds(Bytes{0}), 0.0);
}

TEST(BaselineModel, Equation2SingleKernel) {
  // τ = 1 ms, D_in + D_out = 100 KB -> comm = 1 ms.
  const KernelQuantities q = make_quantities(50'000, 10'000, 30'000, 10'000);
  const KernelTimes times = baseline_kernel_times(q, 1e-3, kTheta);
  EXPECT_DOUBLE_EQ(times.compute_seconds, 1e-3);
  EXPECT_DOUBLE_EQ(times.communication_seconds, 1e-3);
  EXPECT_DOUBLE_EQ(times.total(), 2e-3);
}

TEST(BaselineModel, Equation2Sums) {
  std::vector<KernelTimes> kernels{
      {1e-3, 2e-3}, {0.5e-3, 0.25e-3}, {2e-3, 0.0}};
  EXPECT_DOUBLE_EQ(baseline_total_seconds(kernels), 5.75e-3);
}

TEST(DeltaSharedMemory, TwoBusTripsSaved) {
  // Δc = 2 * D_ij * θ.
  EXPECT_DOUBLE_EQ(delta_shared_memory(Bytes{1000}, kTheta), 20e-6);
}

TEST(DeltaNoc, SumsKernelTrafficBothDirections) {
  std::vector<KernelQuantities> kernels{
      make_quantities(100, 1000, 0, 2000),
      make_quantities(0, 2000, 100, 0),
  };
  // Δn = Σ (D^K_in + D^K_out) θ = (3000 + 2000) * 10 ns = 50 us.
  EXPECT_DOUBLE_EQ(delta_noc(kernels, kTheta), 50e-6);
}

TEST(DeltaPipelineHost, BoundedByHalfCompute) {
  // Large transfers, small τ: each min() saturates at τ/2.
  const KernelQuantities q = make_quantities(1'000'000, 0, 1'000'000, 0);
  const double tau = 1e-3;
  const double overhead = 10e-6;
  EXPECT_DOUBLE_EQ(delta_pipeline_host(q, tau, kTheta, overhead),
                   tau / 2 + tau / 2 - overhead);
}

TEST(DeltaPipelineHost, BoundedByHalfTransfer) {
  // Small transfers, large τ: each min() saturates at D/2 * θ.
  const KernelQuantities q = make_quantities(1000, 0, 500, 0);
  const double delta = delta_pipeline_host(q, 1.0, kTheta, 0.0);
  EXPECT_DOUBLE_EQ(delta, 5e-6 + 2.5e-6);
}

TEST(DeltaPipelineHost, CanBeNegativeWhenOverheadDominates) {
  const KernelQuantities q = make_quantities(10, 0, 10, 0);
  EXPECT_LT(delta_pipeline_host(q, 1e-6, kTheta, 1e-3), 0.0);
}

TEST(DeltaPipelineKernels, MinOfHalves) {
  EXPECT_DOUBLE_EQ(delta_pipeline_kernels(2e-3, 6e-3, 1e-4),
                   1e-3 - 1e-4);
  EXPECT_DOUBLE_EQ(delta_pipeline_kernels(6e-3, 2e-3, 0.0), 1e-3);
}

TEST(DeltaDuplication, HalfTauMinusOverhead) {
  EXPECT_DOUBLE_EQ(delta_duplication(4e-3, 1e-4), 2e-3 - 1e-4);
  EXPECT_LT(delta_duplication(1e-6, 1e-3), 0.0);
}

TEST(DesignEstimateConsistency, ProposedNeverNegative) {
  // Even if the deltas (incorrectly) exceed the baseline, the estimate
  // clamps at zero rather than going negative.
  DesignEstimate est;
  est.baseline_seconds = 1e-3;
  est.delta_noc_seconds = 2e-3;
  EXPECT_DOUBLE_EQ(est.proposed_seconds(), 0.0);
  est.delta_noc_seconds = 0.4e-3;
  est.delta_shared_memory_seconds = 0.1e-3;
  EXPECT_DOUBLE_EQ(est.proposed_seconds(), 0.5e-3);
}

}  // namespace
}  // namespace hybridic::core
