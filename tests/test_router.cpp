#include "noc/router.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hybridic::noc {
namespace {

Flit make_flit(FlitKind kind, std::uint64_t packet = 1) {
  Flit flit;
  flit.packet_id = packet;
  flit.message_id = packet;
  flit.kind = kind;
  return flit;
}

TEST(Router, AcceptsUpToBufferDepth) {
  Router router{0, RouterConfig{2, 1, {1, 1, 1, 1, 1}}};
  EXPECT_TRUE(router.can_accept(PortDir::kNorth));
  router.accept(PortDir::kNorth, make_flit(FlitKind::kHead), Picoseconds{0});
  router.accept(PortDir::kNorth, make_flit(FlitKind::kTail), Picoseconds{0});
  EXPECT_FALSE(router.can_accept(PortDir::kNorth));
  EXPECT_EQ(router.occupancy(), 2U);
}

TEST(Router, OverflowingBufferAsserts) {
  Router router{0, RouterConfig{1, 1, {1, 1, 1, 1, 1}}};
  router.accept(PortDir::kEast, make_flit(FlitKind::kHeadTail),
                Picoseconds{0});
  EXPECT_THROW(router.accept(PortDir::kEast, make_flit(FlitKind::kHead),
                             Picoseconds{0}),
               SimulationError);
}

TEST(Router, ReadyFrontHonorsPipelineDelay) {
  Router router{0, RouterConfig{4, 2, {1, 1, 1, 1, 1}}};
  router.accept(PortDir::kWest, make_flit(FlitKind::kHead),
                Picoseconds{100});
  EXPECT_EQ(router.ready_front(PortDir::kWest, Picoseconds{99}), nullptr);
  EXPECT_NE(router.ready_front(PortDir::kWest, Picoseconds{100}), nullptr);
}

TEST(Router, PopReturnsFifoOrder) {
  Router router{0, RouterConfig{4, 1, {1, 1, 1, 1, 1}}};
  Flit a = make_flit(FlitKind::kHead);
  a.sequence = 0;
  Flit b = make_flit(FlitKind::kTail);
  b.sequence = 1;
  router.accept(PortDir::kLocal, a, Picoseconds{0});
  router.accept(PortDir::kLocal, b, Picoseconds{0});
  EXPECT_EQ(router.pop(PortDir::kLocal).sequence, 0U);
  EXPECT_EQ(router.pop(PortDir::kLocal).sequence, 1U);
  EXPECT_THROW(router.pop(PortDir::kLocal), SimulationError);
}

TEST(Router, OutputLockLifecycle) {
  Router router{0, RouterConfig{}};
  EXPECT_FALSE(router.output_locked(PortDir::kEast));
  router.lock_output(PortDir::kEast, PortDir::kWest);
  EXPECT_TRUE(router.output_locked(PortDir::kEast));
  EXPECT_EQ(router.lock_owner(PortDir::kEast), PortDir::kWest);
  EXPECT_THROW(router.lock_output(PortDir::kEast, PortDir::kNorth),
               SimulationError);
  router.unlock_output(PortDir::kEast);
  EXPECT_FALSE(router.output_locked(PortDir::kEast));
}

TEST(Router, ArbitrationRotates) {
  Router router{0, RouterConfig{4, 1, {1, 1, 1, 1, 1}}};
  std::array<bool, kPortCount> candidates{};
  candidates[static_cast<std::size_t>(PortDir::kNorth)] = true;
  candidates[static_cast<std::size_t>(PortDir::kEast)] = true;
  const auto first = router.arbitrate(PortDir::kLocal, candidates);
  const auto second = router.arbitrate(PortDir::kLocal, candidates);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*first, *second);  // Equal weights alternate.
}

TEST(Router, ArbitrationWeightsGrantConsecutively) {
  RouterConfig config;
  config.wrr_weights = {3, 1, 1, 1, 1};  // North weighted 3x.
  Router router{0, config};
  std::array<bool, kPortCount> candidates{};
  candidates[static_cast<std::size_t>(PortDir::kNorth)] = true;
  candidates[static_cast<std::size_t>(PortDir::kEast)] = true;
  int north = 0;
  for (int i = 0; i < 40; ++i) {
    const auto winner = router.arbitrate(PortDir::kSouth, candidates);
    ASSERT_TRUE(winner.has_value());
    north += *winner == PortDir::kNorth ? 1 : 0;
  }
  EXPECT_EQ(north, 30);  // 3:1 share.
}

TEST(Router, ArbitrationWithNoCandidates) {
  Router router{0, RouterConfig{}};
  std::array<bool, kPortCount> none{};
  EXPECT_FALSE(router.arbitrate(PortDir::kNorth, none).has_value());
}

TEST(Router, InvalidConfigRejected) {
  EXPECT_THROW(Router(0, RouterConfig{0, 1, {1, 1, 1, 1, 1}}), ConfigError);
  EXPECT_THROW(Router(0, RouterConfig{4, 0, {1, 1, 1, 1, 1}}), ConfigError);
  EXPECT_THROW(Router(0, RouterConfig{4, 1, {1, 0, 1, 1, 1}}), ConfigError);
}

TEST(FlitTest, KindPredicates) {
  EXPECT_TRUE(make_flit(FlitKind::kHead).is_head());
  EXPECT_TRUE(make_flit(FlitKind::kHeadTail).is_head());
  EXPECT_TRUE(make_flit(FlitKind::kHeadTail).is_tail());
  EXPECT_TRUE(make_flit(FlitKind::kTail).is_tail());
  EXPECT_FALSE(make_flit(FlitKind::kBody).is_head());
  EXPECT_FALSE(make_flit(FlitKind::kBody).is_tail());
}

TEST(FlitTest, PayloadFlitCount) {
  EXPECT_EQ(payload_flits(0), 0U);
  EXPECT_EQ(payload_flits(1), 1U);
  EXPECT_EQ(payload_flits(4), 1U);
  EXPECT_EQ(payload_flits(5), 2U);
  EXPECT_EQ(payload_flits(1024), 256U);
}

}  // namespace
}  // namespace hybridic::noc
