#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "reconfig/bitstream_model.hpp"
#include "reconfig/multi_app.hpp"
#include "util/error.hpp"

namespace hybridic::reconfig {
namespace {

TEST(BitstreamModel, SizeScalesWithArea) {
  const ReconfigParams params;
  const Bytes small = bitstream_bytes(core::Resources{1000, 800}, params);
  const Bytes large = bitstream_bytes(core::Resources{4000, 3200}, params);
  EXPECT_GT(large, small);
  // Fixed overhead present even for an empty region.
  EXPECT_EQ(bitstream_bytes(core::Resources{0, 0}, params).count(),
            params.bitstream_overhead_bytes);
}

TEST(BitstreamModel, TimeIsDriverPlusIcapStreaming) {
  ReconfigParams params;
  params.driver_overhead_seconds = 1e-3;
  params.icap_bytes_per_second = 1e6;
  params.bitstream_overhead_bytes = 0;
  params.bitstream_bytes_per_lut = 10.0;
  // 100 LUTs -> 1000 bytes -> 1 ms streaming + 1 ms driver.
  EXPECT_NEAR(
      reconfiguration_seconds(core::Resources{100, 0}, params), 2e-3,
      1e-9);
}

TEST(StrategyNames, Readable) {
  EXPECT_EQ(to_string(Strategy::kBusOnly), "bus-only");
  EXPECT_EQ(to_string(Strategy::kStaticUnion), "static union");
  EXPECT_EQ(to_string(Strategy::kPerAppReconfig), "per-app reconfig");
}

/// Shared fixture: a two-application scenario (canny + jpeg).
class ScenarioTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    canny_ = new apps::ProfiledApp(apps::run_paper_app("canny"));
    jpeg_ = new apps::ProfiledApp(apps::run_paper_app("jpeg"));
    canny_schedule_ = new sys::AppSchedule(canny_->schedule());
    jpeg_schedule_ = new sys::AppSchedule(jpeg_->schedule());
  }
  static void TearDownTestSuite() {
    delete canny_schedule_;
    delete jpeg_schedule_;
    delete canny_;
    delete jpeg_;
  }

  [[nodiscard]] static std::vector<WorkloadPhase> alternating(
      std::uint32_t repeats) {
    std::vector<WorkloadPhase> phases;
    for (std::uint32_t i = 0; i < repeats; ++i) {
      phases.push_back(WorkloadPhase{"canny", canny_schedule_, 1});
      phases.push_back(WorkloadPhase{"jpeg", jpeg_schedule_, 1});
    }
    return phases;
  }

  static apps::ProfiledApp* canny_;
  static apps::ProfiledApp* jpeg_;
  static sys::AppSchedule* canny_schedule_;
  static sys::AppSchedule* jpeg_schedule_;
  sys::PlatformConfig platform_;
};

apps::ProfiledApp* ScenarioTest::canny_ = nullptr;
apps::ProfiledApp* ScenarioTest::jpeg_ = nullptr;
sys::AppSchedule* ScenarioTest::canny_schedule_ = nullptr;
sys::AppSchedule* ScenarioTest::jpeg_schedule_ = nullptr;

TEST_F(ScenarioTest, EmptyScenarioRejected) {
  EXPECT_THROW((void)evaluate_scenario({}, Strategy::kBusOnly, platform_),
               ConfigError);
}

TEST_F(ScenarioTest, BusOnlyHasNoInterconnectAndNoReconfig) {
  const ScenarioResult result =
      evaluate_scenario(alternating(2), Strategy::kBusOnly, platform_);
  EXPECT_EQ(result.provisioned_interconnect.luts, 0U);
  EXPECT_DOUBLE_EQ(result.reconfig_total_seconds, 0.0);
  EXPECT_GT(result.compute_total_seconds, 0.0);
}

TEST_F(ScenarioTest, CustomInterconnectsBeatBusOnly) {
  const auto phases = alternating(2);
  const double bus =
      evaluate_scenario(phases, Strategy::kBusOnly, platform_)
          .total_seconds();
  const double static_union =
      evaluate_scenario(phases, Strategy::kStaticUnion, platform_)
          .total_seconds();
  EXPECT_LT(static_union, bus);
}

TEST_F(ScenarioTest, StaticUnionCostsMoreAreaThanReconfig) {
  const auto phases = alternating(1);
  const ScenarioResult s =
      evaluate_scenario(phases, Strategy::kStaticUnion, platform_);
  const ScenarioResult r =
      evaluate_scenario(phases, Strategy::kPerAppReconfig, platform_);
  // The union provisions both interconnects; reconfiguration only the
  // larger of the two.
  EXPECT_GT(s.provisioned_interconnect.luts,
            r.provisioned_interconnect.luts);
  // But reconfiguration pays swap time.
  EXPECT_GT(r.reconfig_total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.reconfig_total_seconds, 0.0);
}

TEST_F(ScenarioTest, ReconfigPaysPerDesignSwitchOnly) {
  // Grouped: canny x3 then jpeg x3 -> 2 swaps. Alternating x3 -> 6 swaps.
  std::vector<WorkloadPhase> grouped{
      WorkloadPhase{"canny", canny_schedule_, 3},
      WorkloadPhase{"jpeg", jpeg_schedule_, 3}};
  const ScenarioResult g =
      evaluate_scenario(grouped, Strategy::kPerAppReconfig, platform_);
  const ScenarioResult a = evaluate_scenario(
      alternating(3), Strategy::kPerAppReconfig, platform_);
  EXPECT_GT(a.reconfig_total_seconds, g.reconfig_total_seconds * 2.5);
  // Same compute time either way.
  EXPECT_NEAR(a.compute_total_seconds, g.compute_total_seconds, 1e-9);
}

TEST_F(ScenarioTest, RepeatedSamePhaseNeedsOneConfiguration) {
  std::vector<WorkloadPhase> phases{
      WorkloadPhase{"canny", canny_schedule_, 1},
      WorkloadPhase{"canny", canny_schedule_, 1},
      WorkloadPhase{"canny", canny_schedule_, 1}};
  const ScenarioResult result =
      evaluate_scenario(phases, Strategy::kPerAppReconfig, platform_);
  std::uint32_t swaps = 0;
  for (const PhaseOutcome& phase : result.phases) {
    if (phase.reconfiguration_seconds > 0.0) {
      ++swaps;
    }
  }
  EXPECT_EQ(swaps, 1U);
}

TEST_F(ScenarioTest, ReconfigAmortizesWithIterations) {
  // With enough iterations per phase, per-app reconfig approaches the
  // static union's total time.
  std::vector<WorkloadPhase> heavy{
      WorkloadPhase{"canny", canny_schedule_, 50},
      WorkloadPhase{"jpeg", jpeg_schedule_, 50}};
  const ScenarioResult s =
      evaluate_scenario(heavy, Strategy::kStaticUnion, platform_);
  const ScenarioResult r =
      evaluate_scenario(heavy, Strategy::kPerAppReconfig, platform_);
  EXPECT_LT(r.total_seconds() / s.total_seconds(), 1.02);
}

TEST_F(ScenarioTest, PhaseValidation) {
  std::vector<WorkloadPhase> bad{WorkloadPhase{"x", nullptr, 1}};
  EXPECT_THROW((void)evaluate_scenario(bad, Strategy::kBusOnly, platform_),
               ConfigError);
  std::vector<WorkloadPhase> zero{
      WorkloadPhase{"canny", canny_schedule_, 0}};
  EXPECT_THROW((void)evaluate_scenario(zero, Strategy::kBusOnly, platform_),
               ConfigError);
}

}  // namespace
}  // namespace hybridic::reconfig
