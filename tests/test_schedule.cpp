#include "sys/schedule.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hybridic::sys {
namespace {

class ScheduleTest : public ::testing::Test {
protected:
  ScheduleTest() {
    host_ = graph_.add_function("host");
    k1_ = graph_.add_function("k1");
    k2_ = graph_.add_function("k2");
    graph_.function_mutable(host_).work_units = 1000;
    graph_.function_mutable(k1_).work_units = 2000;
    graph_.function_mutable(k2_).work_units = 4000;
    graph_.add_transfer(host_, k1_, Bytes{100}, 100);
    graph_.add_transfer(k1_, k2_, Bytes{100}, 100);
  }

  prof::CommGraph graph_;
  prof::FunctionId host_, k1_, k2_;
};

TEST_F(ScheduleTest, OneStepPerFunctionInDeclarationOrder) {
  const AppSchedule schedule = build_schedule(
      "app", graph_,
      {{"k1", 8.0, 1.0, 100, 100, true, false, false},
       {"k2", 8.0, 0.5, 100, 100, true, false, false}});
  ASSERT_EQ(schedule.steps.size(), 3U);
  EXPECT_EQ(schedule.steps[0].name, "host");
  EXPECT_EQ(schedule.steps[1].name, "k1");
  EXPECT_EQ(schedule.steps[2].name, "k2");
  EXPECT_EQ(schedule.app_name, "app");
}

TEST_F(ScheduleTest, CyclesScaleWithWorkAndCalibration) {
  const AppSchedule schedule = build_schedule(
      "app", graph_,
      {{"k1", 8.0, 1.5, 100, 100, true, false, false}});
  const ScheduleStep& k1 = schedule.steps[1];
  EXPECT_EQ(k1.sw_cycles.count(), 16'000U);   // 2000 * 8
  EXPECT_EQ(k1.hw_cycles.count(), 3'000U);    // 2000 * 1.5
  // Uncalibrated host function falls back to the default CPW of 4.
  EXPECT_EQ(schedule.steps[0].sw_cycles.count(), 4'000U);
}

TEST_F(ScheduleTest, KernelEntriesProduceSpecs) {
  const AppSchedule schedule = build_schedule(
      "app", graph_,
      {{"k1", 8.0, 1.0, 123, 456, true, true, true},
       {"k2", 8.0, 1.0, 7, 8, true, false, false}});
  ASSERT_EQ(schedule.specs.size(), 2U);
  EXPECT_EQ(schedule.specs[0].name, "k1");
  EXPECT_EQ(schedule.specs[0].area_luts, 123U);
  EXPECT_EQ(schedule.specs[0].area_regs, 456U);
  EXPECT_TRUE(schedule.specs[0].duplicable);
  EXPECT_TRUE(schedule.specs[0].streaming);
  EXPECT_FALSE(schedule.specs[1].duplicable);
  EXPECT_TRUE(schedule.steps[1].is_kernel);
  EXPECT_FALSE(schedule.steps[0].is_kernel);
  EXPECT_EQ(schedule.steps[1].spec_index, 0U);
  EXPECT_EQ(schedule.steps[2].spec_index, 1U);
}

TEST_F(ScheduleTest, HostOnlyCalibrationDoesNotCreateSpec) {
  const AppSchedule schedule = build_schedule(
      "app", graph_, {{"host", 2.0, 0.0, 0, 0, false, false, false}});
  EXPECT_TRUE(schedule.specs.empty());
  EXPECT_EQ(schedule.steps[0].sw_cycles.count(), 2'000U);
}

TEST_F(ScheduleTest, UnknownFunctionInCalibrationRejected) {
  EXPECT_THROW(build_schedule("app", graph_,
                              {{"ghost", 1.0, 1.0, 0, 0, true, false,
                                false}}),
               ConfigError);
}

TEST_F(ScheduleTest, StepLookupByFunction) {
  const AppSchedule schedule = build_schedule("app", graph_, {});
  EXPECT_EQ(schedule.step_of(k2_), 2U);
  EXPECT_THROW((void)schedule.step_of(99), ConfigError);
}

}  // namespace
}  // namespace hybridic::sys
