#include "bus/dma.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/error.hpp"

namespace hybridic::bus {
namespace {

const sim::ClockDomain kBusClock{"bus", Frequency::megahertz(100)};
const sim::ClockDomain kHostClock{"host", Frequency::megahertz(400)};
const sim::ClockDomain kKernelClock{"kernel", Frequency::megahertz(100)};

class DmaTest : public ::testing::Test {
protected:
  DmaTest()
      : sdram_("sdram", kBusClock, mem::SdramConfig{8, Cycles{20}}),
        bus_("plb", engine_, kBusClock, BusConfig{8, 16, Cycles{2},
                                                  Cycles{1}, 2},
             std::make_unique<PriorityArbiter>()),
        dma_("dma", engine_, bus_, sdram_, kHostClock,
             DmaConfig{Cycles{40}, 1024}, 1),
        bram_("bram", kKernelClock, Bytes{64 * 1024}, 4) {}

  Picoseconds run_transfer(DmaDirection dir, Bytes bytes) {
    Picoseconds done{0};
    bool finished = false;
    dma_.transfer(dir, bytes, bram_, [&](Picoseconds at) {
      done = at;
      finished = true;
    });
    engine_.run();
    EXPECT_TRUE(finished);
    return done;
  }

  sim::Engine engine_;
  mem::Sdram sdram_;
  Bus bus_;
  Dma dma_;
  mem::Bram bram_;
};

TEST_F(DmaTest, SetupTimePrecedesFirstChunk) {
  // 40 host cycles at 400 MHz = 100 ns before anything hits the bus.
  const Picoseconds done = run_transfer(DmaDirection::kMemToLocal, Bytes{8});
  EXPECT_GE(done.count(), 100'000U);
}

TEST_F(DmaTest, SingleChunkCompletes) {
  const Picoseconds done =
      run_transfer(DmaDirection::kMemToLocal, Bytes{512});
  EXPECT_GT(done.count(), 0U);
  EXPECT_EQ(bus_.transactions(), 1U);
  EXPECT_EQ(bus_.bytes_transferred().count(), 512U);
}

TEST_F(DmaTest, LargeTransferSplitsIntoChunks) {
  (void)run_transfer(DmaDirection::kMemToLocal, Bytes{4096});
  EXPECT_EQ(bus_.transactions(), 4U);  // 4096 / 1024-byte chunks
}

TEST_F(DmaTest, NonMultipleChunkTail) {
  (void)run_transfer(DmaDirection::kLocalToMem, Bytes{2500});
  EXPECT_EQ(bus_.transactions(), 3U);  // 1024 + 1024 + 452
  EXPECT_EQ(bus_.bytes_transferred().count(), 2500U);
}

TEST_F(DmaTest, TransfersTouchSdramAndBram) {
  (void)run_transfer(DmaDirection::kMemToLocal, Bytes{1000});
  EXPECT_EQ(sdram_.bytes_transferred().count(), 1000U);
  EXPECT_EQ(bram_.bytes_through(mem::BramPort::kA).count(), 1000U);
}

TEST_F(DmaTest, LargerTransfersTakeLonger) {
  const Picoseconds small =
      run_transfer(DmaDirection::kMemToLocal, Bytes{256});
  sim::Engine fresh;  // A clean timeline for the larger transfer.
  mem::Sdram sdram{"s", kBusClock, mem::SdramConfig{8, Cycles{20}}};
  Bus bus{"b", fresh, kBusClock, BusConfig{8, 16, Cycles{2}, Cycles{1}, 2},
          std::make_unique<PriorityArbiter>()};
  Dma dma{"d", fresh, bus, sdram, kHostClock, DmaConfig{Cycles{40}, 1024},
          1};
  mem::Bram bram{"m", kKernelClock, Bytes{64 * 1024}, 4};
  Picoseconds big{0};
  dma.transfer(DmaDirection::kMemToLocal, Bytes{8192}, bram,
               [&](Picoseconds at) { big = at; });
  fresh.run();
  EXPECT_GT(big.count(), small.count());
}

TEST_F(DmaTest, TransferViaCustomLocalAccess) {
  int hits = 0;
  Picoseconds done{0};
  bool finished = false;
  dma_.transfer_via(
      DmaDirection::kMemToLocal, Bytes{2048},
      [&hits](Picoseconds earliest, Bytes) {
        ++hits;
        return earliest + Picoseconds{5'000};
      },
      [&](Picoseconds at) {
        done = at;
        finished = true;
      });
  engine_.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(hits, 2);  // one per 1024-byte chunk
}

TEST_F(DmaTest, CountsStartedTransfers) {
  (void)run_transfer(DmaDirection::kMemToLocal, Bytes{8});
  (void)run_transfer(DmaDirection::kLocalToMem, Bytes{8});
  EXPECT_EQ(dma_.transfers_started(), 2U);
}

TEST(DmaConfigValidation, ZeroChunkRejected) {
  sim::Engine engine;
  mem::Sdram sdram{"s", kBusClock, mem::SdramConfig{}};
  Bus bus{"b", engine, kBusClock, BusConfig{},
          std::make_unique<PriorityArbiter>()};
  EXPECT_THROW(Dma("d", engine, bus, sdram, kHostClock,
                   DmaConfig{Cycles{1}, 0}, 0),
               ConfigError);
}

}  // namespace
}  // namespace hybridic::bus
