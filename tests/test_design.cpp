// Tests of Algorithm 1 (the interconnect designer) on hand-crafted
// communication graphs plus property checks on generated applications.
#include "core/interconnect_design.hpp"

#include <gtest/gtest.h>

#include <set>

#include "apps/synthetic.hpp"
#include "util/error.hpp"

namespace hybridic::core {
namespace {

/// Builder for small design scenarios.
class Scenario {
public:
  prof::FunctionId host(const std::string& name) {
    return graph_.add_function(name);
  }

  prof::FunctionId kernel(const std::string& name, std::uint64_t hw_cycles,
                          bool duplicable = false, bool streaming = false) {
    const prof::FunctionId id = graph_.add_function(name);
    KernelSpec spec;
    spec.name = name;
    spec.function = id;
    spec.hw_compute_cycles = Cycles{hw_cycles};
    spec.sw_compute_cycles = Cycles{hw_cycles * 8};
    spec.area_luts = 1000;
    spec.area_regs = 1000;
    spec.duplicable = duplicable;
    spec.streaming = streaming;
    kernels_.push_back(spec);
    return id;
  }

  void edge(prof::FunctionId a, prof::FunctionId b, std::uint64_t bytes) {
    graph_.add_transfer(a, b, Bytes{bytes}, bytes);
  }

  [[nodiscard]] DesignInput input() const {
    DesignInput in;
    in.graph = &graph_;
    in.kernels = kernels_;
    in.theta.seconds_per_byte = 10e-9;
    return in;
  }

private:
  prof::CommGraph graph_;
  std::vector<KernelSpec> kernels_;
};

TEST(Design, ExclusivePairGetsSharedMemory) {
  Scenario s;
  const auto h = s.host("host");
  const auto k1 = s.kernel("k1", 10'000);
  const auto k2 = s.kernel("k2", 10'000);
  s.edge(h, k1, 1000);
  s.edge(k1, k2, 5000);
  s.edge(k2, h, 500);

  const DesignResult result = design_interconnect(s.input());
  ASSERT_EQ(result.shared_pairs.size(), 1U);
  EXPECT_EQ(result.instances[result.shared_pairs[0].producer_instance]
                .function,
            k1);
  EXPECT_EQ(result.instances[result.shared_pairs[0].consumer_instance]
                .function,
            k2);
  EXPECT_EQ(result.shared_pairs[0].bytes.count(), 5000U);
  // Consumer k2 talks to the host -> crossbar style.
  EXPECT_EQ(result.shared_pairs[0].style, mem::SharingStyle::kCrossbar);
  // All kernel-kernel traffic handled -> no NoC.
  EXPECT_FALSE(result.uses_noc());
  EXPECT_EQ(result.solution_tag(), "SM");
}

TEST(Design, HostFreeConsumerSharesDirectly) {
  Scenario s;
  const auto h = s.host("host");
  const auto k1 = s.kernel("k1", 10'000);
  const auto k2 = s.kernel("k2", 10'000);
  const auto k3 = s.kernel("k3", 10'000);
  s.edge(h, k1, 100);
  s.edge(k1, k2, 5000);
  s.edge(k2, k3, 4000);  // k2's only output goes to k3...
  s.edge(k3, h, 100);
  // k1 -> k2 is exclusive and k2 never touches the host: direct sharing.
  const DesignResult result = design_interconnect(s.input());
  ASSERT_FALSE(result.shared_pairs.empty());
  const SharedMemoryPairing& pair = result.shared_pairs.front();
  EXPECT_EQ(result.instances[pair.producer_instance].function, k1);
  EXPECT_EQ(pair.style, mem::SharingStyle::kDirect);
}

TEST(Design, NonExclusiveProducerCannotShare) {
  Scenario s;
  const auto h = s.host("host");
  const auto k1 = s.kernel("k1", 10'000);
  const auto k2 = s.kernel("k2", 10'000);
  const auto k3 = s.kernel("k3", 10'000);
  s.edge(h, k1, 100);
  s.edge(k1, k2, 5000);
  s.edge(k1, k3, 3000);  // k1 fans out: no exclusivity with k2.
  s.edge(k2, h, 100);
  s.edge(k3, h, 100);
  const DesignResult result = design_interconnect(s.input());
  EXPECT_TRUE(result.shared_pairs.empty());
  ASSERT_TRUE(result.uses_noc());
  // k1 must be on the NoC; k2 and k3 memories must be reachable.
  const NocPlan& plan = *result.noc;
  EXPECT_TRUE(plan.has_node(0, NocNodeKind::kKernel));
  EXPECT_TRUE(plan.has_node(1, NocNodeKind::kLocalMemory));
  EXPECT_TRUE(plan.has_node(2, NocNodeKind::kLocalMemory));
}

TEST(Design, MappingFollowsTableOne) {
  Scenario s;
  const auto h = s.host("host");
  const auto k1 = s.kernel("k1", 10'000);
  const auto k2 = s.kernel("k2", 10'000);
  const auto k3 = s.kernel("k3", 10'000);
  s.edge(h, k1, 100);
  s.edge(k1, k2, 5000);
  s.edge(k1, k3, 3000);
  s.edge(k2, h, 100);
  s.edge(k3, h, 100);
  const DesignResult result = design_interconnect(s.input());
  // k1: {R2,S1} -> {K2,M1}; k2/k3: {R1,S2} -> {K1,M3}.
  EXPECT_EQ(result.instances[0].comm_class,
            (CommClass{RecvClass::kR2, SendClass::kS1}));
  EXPECT_EQ(result.instances[0].mapping,
            (InterconnectClass{KernelConn::kK2, MemConn::kM1}));
  EXPECT_EQ(result.instances[1].mapping,
            (InterconnectClass{KernelConn::kK1, MemConn::kM3}));
  EXPECT_EQ(result.instances[2].mapping,
            (InterconnectClass{KernelConn::kK1, MemConn::kM3}));
}

TEST(Design, DuplicationRequiresFlagBudgetAndPositiveDelta) {
  Scenario s;
  const auto h = s.host("host");
  // 10 ms kernel: Δdp clearly positive.
  const auto big = s.kernel("big", 1'000'000, /*duplicable=*/true);
  (void)s.kernel("small", 100, /*duplicable=*/true);
  const auto other = s.kernel("other", 500'000, /*duplicable=*/false);
  s.edge(h, big, 1000);
  s.edge(big, other, 1000);
  s.edge(other, h, 1000);

  DesignInput in = s.input();
  in.duplication_overhead_seconds = 10e-6;
  const DesignResult result = design_interconnect(in);
  // big duplicated (two instances); small not (Δdp = 0.5us - 10us < 0);
  // other not (flag off).
  EXPECT_EQ(result.parallel.duplicated_specs,
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(result.instances.size(), 4U);
  EXPECT_DOUBLE_EQ(result.instances[0].work_share, 0.5);
  EXPECT_DOUBLE_EQ(result.instances[1].work_share, 0.5);

  // With no area budget, nothing duplicates.
  in.duplication_area_budget_luts = 0;
  const DesignResult no_budget = design_interconnect(in);
  EXPECT_TRUE(no_budget.parallel.duplicated_specs.empty());

  // With the switch off, nothing duplicates either.
  in.duplication_area_budget_luts = 100'000;
  in.enable_duplication = false;
  EXPECT_TRUE(design_interconnect(in).parallel.duplicated_specs.empty());
}

TEST(Design, DuplicatedKernelsCannotSharePairs) {
  Scenario s;
  const auto h = s.host("host");
  const auto k1 = s.kernel("k1", 1'000'000, /*duplicable=*/true);
  const auto k2 = s.kernel("k2", 10'000);
  s.edge(h, k1, 1000);
  s.edge(k1, k2, 5000);  // Exclusive, but k1 is duplicated.
  s.edge(k2, h, 100);
  const DesignResult result = design_interconnect(s.input());
  EXPECT_FALSE(result.parallel.duplicated_specs.empty());
  EXPECT_TRUE(result.shared_pairs.empty());
  EXPECT_TRUE(result.uses_noc());
}

TEST(Design, StreamingEnablesCase1And2) {
  Scenario s;
  const auto h = s.host("host");
  const auto k1 = s.kernel("k1", 1'000'000, false, /*streaming=*/true);
  const auto k2 = s.kernel("k2", 1'000'000, false, /*streaming=*/true);
  s.edge(h, k1, 500'000);  // Big host input: case 1 worthwhile.
  s.edge(k1, k2, 5000);
  s.edge(k2, h, 500'000);
  const DesignResult result = design_interconnect(s.input());
  EXPECT_FALSE(result.parallel.host_pipelined.empty());
  EXPECT_FALSE(result.parallel.streamed.empty());
  EXPECT_TRUE(result.uses_parallel());

  DesignInput off = s.input();
  off.enable_parallel = false;
  const DesignResult plain = design_interconnect(off);
  EXPECT_TRUE(plain.parallel.host_pipelined.empty());
  EXPECT_TRUE(plain.parallel.streamed.empty());
}

TEST(Design, NocOnlyModeAttachesEverything) {
  Scenario s;
  const auto h = s.host("host");
  const auto k1 = s.kernel("k1", 10'000);
  const auto k2 = s.kernel("k2", 10'000);
  s.edge(h, k1, 1000);
  s.edge(k1, k2, 5000);
  s.edge(k2, h, 500);

  DesignInput in = s.input();
  in.enable_shared_memory = false;
  in.enable_adaptive_mapping = false;
  const DesignResult result = design_interconnect(in);
  EXPECT_TRUE(result.shared_pairs.empty());
  ASSERT_TRUE(result.uses_noc());
  // Naive mapping: every kernel and every memory joins the NoC.
  EXPECT_EQ(result.noc->router_count(), 4U);
  for (const KernelInstance& inst : result.instances) {
    EXPECT_EQ(inst.mapping,
              (InterconnectClass{KernelConn::kK2, MemConn::kM3}));
  }
}

TEST(Design, NoKernelCommunicationMeansNoNoc) {
  Scenario s;
  const auto h = s.host("host");
  const auto k1 = s.kernel("k1", 10'000);
  const auto k2 = s.kernel("k2", 10'000);
  s.edge(h, k1, 1000);
  s.edge(h, k2, 1000);
  s.edge(k1, h, 1000);
  s.edge(k2, h, 1000);
  const DesignResult result = design_interconnect(s.input());
  EXPECT_FALSE(result.uses_noc());
  EXPECT_TRUE(result.shared_pairs.empty());
  EXPECT_EQ(result.instances[0].mapping,
            (InterconnectClass{KernelConn::kK1, MemConn::kM1}));
}

TEST(Design, EstimateReflectsDeltas) {
  Scenario s;
  const auto h = s.host("host");
  const auto k1 = s.kernel("k1", 10'000);
  const auto k2 = s.kernel("k2", 10'000);
  s.edge(h, k1, 1000);
  s.edge(k1, k2, 5000);
  s.edge(k2, h, 500);
  const DesignResult result = design_interconnect(s.input());
  EXPECT_GT(result.estimate.baseline_seconds, 0.0);
  EXPECT_GT(result.estimate.delta_shared_memory_seconds, 0.0);
  EXPECT_LT(result.estimate.proposed_seconds(),
            result.estimate.baseline_seconds);
}

TEST(Design, InvalidInputRejected) {
  DesignInput empty;
  EXPECT_THROW((void)design_interconnect(empty), ConfigError);
  prof::CommGraph graph;
  empty.graph = &graph;
  EXPECT_THROW((void)design_interconnect(empty), ConfigError);
}

TEST(Design, AnnealedPlacementIsValidAndDeterministic) {
  apps::SyntheticConfig config;
  config.seed = 91;
  config.kernel_count = 10;
  const apps::ProfiledApp app = apps::make_synthetic_app(config);
  const sys::AppSchedule schedule = app.schedule();
  DesignInput in;
  in.graph = schedule.graph;
  in.kernels = schedule.specs;
  in.theta.seconds_per_byte = 10e-9;
  in.anneal_placement = true;
  in.placement_seed = 7;
  const DesignResult a = design_interconnect(in);
  const DesignResult b = design_interconnect(in);
  ASSERT_TRUE(a.uses_noc());
  ASSERT_EQ(a.noc->attachments.size(), b.noc->attachments.size());
  std::set<std::uint32_t> nodes;
  for (std::size_t i = 0; i < a.noc->attachments.size(); ++i) {
    EXPECT_EQ(a.noc->attachments[i].node, b.noc->attachments[i].node);
    EXPECT_TRUE(nodes.insert(a.noc->attachments[i].node).second);
  }
}

/// Property checks over synthetic applications.
class DesignProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesignProperties, InvariantsHold) {
  apps::SyntheticConfig config;
  config.seed = GetParam();
  config.kernel_count = 7;
  const apps::ProfiledApp app = apps::make_synthetic_app(config);
  const sys::AppSchedule schedule = app.schedule();

  DesignInput in;
  in.graph = schedule.graph;
  in.kernels = schedule.specs;
  in.theta.seconds_per_byte = 10e-9;
  const DesignResult result = design_interconnect(in);

  // 1. Every mapping is feasible.
  for (const KernelInstance& inst : result.instances) {
    EXPECT_TRUE(is_feasible(inst.mapping));
  }
  // 2. No kernel participates in two shared pairs.
  std::set<std::size_t> paired;
  for (const SharedMemoryPairing& pair : result.shared_pairs) {
    EXPECT_TRUE(paired.insert(pair.producer_instance).second);
    EXPECT_TRUE(paired.insert(pair.consumer_instance).second);
  }
  // 3. NoC attachments reference valid instances and distinct nodes.
  if (result.uses_noc()) {
    std::set<std::uint32_t> nodes;
    for (const NocAttachment& a : result.noc->attachments) {
      EXPECT_LT(a.instance, result.instances.size());
      EXPECT_TRUE(nodes.insert(a.node).second);
      EXPECT_LT(a.node, result.noc->mesh_width * result.noc->mesh_height);
    }
    // 4. Router count is bounded by kernels + memories.
    EXPECT_LE(result.noc->router_count(), 2 * result.instances.size());
  }
  // 5. The estimate never goes negative.
  EXPECT_GE(result.estimate.proposed_seconds(), 0.0);
  EXPECT_LE(result.estimate.proposed_seconds(),
            result.estimate.baseline_seconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesignProperties,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace hybridic::core
