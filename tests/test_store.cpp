// Robustness tests for the persistent content-addressed store
// (docs/MODEL.md §15): damaged entries must degrade to misses, never to
// wrong data or a crash; concurrent multi-process writers must leave the
// index readable; and a fresh process must reproduce byte-identical
// profiles from the store.
#include "store/store.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "apps/profile_cache.hpp"
#include "apps/synthetic.hpp"
#include "store/adapters.hpp"
#include "store/codec.hpp"
#include "tiers/analytic.hpp"

namespace hybridic::store {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty store root unique to `name` under the gtest temp dir.
std::string store_root(const std::string& name) {
  const fs::path root = fs::path{::testing::TempDir()} / ("store_" + name);
  fs::remove_all(root);
  return root.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << path;
  return std::string{std::istreambuf_iterator<char>{in},
                     std::istreambuf_iterator<char>{}};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Key/payload for the multi-process writer test. Built with += (GCC 12's
/// -Wrestrict false-positives on const char* + std::string&& chains).
std::string writer_key(int w, int i) {
  std::string key = "w";
  key += std::to_string(w);
  key += "-k";
  key += std::to_string(i);
  return key;
}

std::string writer_payload(int w, int i) {
  std::string payload = "payload-";
  payload += std::to_string(w * 1000 + i);
  return payload;
}

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

TEST(StoreBasics, PutGetRoundTripAndStats) {
  Store store{store_root("roundtrip")};
  EXPECT_FALSE(store.get("absent").has_value());
  store.put("key-a", "payload bytes\nwith a newline and \0 inside");
  const auto got = store.get("key-a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, std::string{"payload bytes\nwith a newline and \0 inside"});
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.puts, 1U);
  EXPECT_EQ(stats.hits, 1U);
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.corrupt_entries, 0U);
}

TEST(StoreBasics, ObjectNamesAreStableAndDistinct) {
  EXPECT_EQ(Store::object_name("k"), Store::object_name("k"));
  EXPECT_NE(Store::object_name("k"), Store::object_name("l"));
  EXPECT_EQ(Store::object_name("k").size(), 32U);
  Store store{store_root("paths")};
  EXPECT_EQ(store.object_path("k").rfind(store.root(), 0), 0U);
}

TEST(StoreBasics, TruncatedEntryReadsAsMiss) {
  Store store{store_root("truncated")};
  store.put("key", std::string(4096, 'x'));
  const std::string path = store.object_path("key");
  const std::string blob = read_file(path);
  write_file(path, blob.substr(0, blob.size() / 2));
  EXPECT_FALSE(store.get("key").has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1U);
}

TEST(StoreBasics, TamperedPayloadFailsChecksum) {
  Store store{store_root("tampered")};
  store.put("key", "sensitive-payload-0123456789");
  const std::string path = store.object_path("key");
  std::string blob = read_file(path);
  const std::size_t at = blob.find("payload-0123");
  ASSERT_NE(at, std::string::npos);
  blob[at] = 'P';
  write_file(path, blob);
  EXPECT_FALSE(store.get("key").has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1U);
}

TEST(StoreBasics, WrongMagicReadsAsMiss) {
  Store store{store_root("magic")};
  store.put("key", "payload");
  write_file(store.object_path("key"), "not-a-store-entry\njunk\n");
  EXPECT_FALSE(store.get("key").has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1U);
}

TEST(StoreBasics, WrongRevisionIsStaleNotCorrupt) {
  Store store{store_root("revision")};
  store.put("key", "payload");
  const std::string path = store.object_path("key");
  std::string blob = read_file(path);
  const std::string rev_line =
      "\nrev " + std::to_string(kEngineRevision) + "\n";
  const std::size_t at = blob.find(rev_line);
  ASSERT_NE(at, std::string::npos);
  blob.replace(at, rev_line.size(), "\nrev 999999\n");
  write_file(path, blob);
  EXPECT_FALSE(store.get("key").has_value());
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.corrupt_entries, 0U);  // Stale, not damaged.
}

TEST(StoreBasics, HashCollisionDegradesToMiss) {
  // Simulate a collision by planting key-a's (valid!) entry at key-b's
  // object path: the embedded-key check must reject it.
  Store store{store_root("collision")};
  store.put("key-a", "payload-a");
  const std::string entry_a = read_file(store.object_path("key-a"));
  const fs::path path_b{store.object_path("key-b")};
  fs::create_directories(path_b.parent_path());
  write_file(path_b.string(), entry_a);
  EXPECT_FALSE(store.get("key-b").has_value());
  EXPECT_EQ(store.stats().corrupt_entries, 1U);
  EXPECT_EQ(store.get("key-a").value_or(""), "payload-a");
}

TEST(StoreBasics, IndexSkipsTornLines) {
  Store store{store_root("index")};
  store.put("alpha", "1");
  store.put("beta", "2");
  {
    // A torn final line, as left by a writer killed mid-append.
    std::ofstream out{fs::path{store.root()} / "index.log",
                      std::ios::binary | std::ios::app};
    out << "deadbeef torn garbage\n";
    out << Store::object_name("gamma") << " 5 gam";  // No newline, short.
  }
  const auto index = store.read_index();
  ASSERT_EQ(index.size(), 2U);
  EXPECT_EQ(index[0].first, Store::object_name("alpha"));
  EXPECT_EQ(index[0].second, "alpha");
  EXPECT_EQ(index[1].second, "beta");
}

TEST(StoreBasics, UnusableRootThrowsStoreError) {
  EXPECT_THROW(Store{"/proc/hybridic-no-such-root/store"}, StoreError);
}

TEST(StoreProcesses, TwoConcurrentWritersLeaveIndexReadable) {
  const std::string root = store_root("two_writers");
  Store{root};  // Create the layout before forking.
  constexpr int kWriters = 2;
  constexpr int kKeysPerWriter = 24;
  pid_t children[kWriters];
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: its own Store handle on the shared root, racing appends.
      Store mine{root};
      for (int i = 0; i < kKeysPerWriter; ++i) {
        mine.put(writer_key(w, i), writer_payload(w, i));
      }
      ::_exit(0);
    }
    children[w] = pid;
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  Store reader{root};
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      EXPECT_EQ(reader.get(writer_key(w, i)).value_or("MISS"),
                writer_payload(w, i));
    }
  }
  // Every index line must be whole: name matches the hashed key.
  const auto index = reader.read_index();
  EXPECT_EQ(index.size(),
            static_cast<std::size_t>(kWriters * kKeysPerWriter));
  for (const auto& [name, key] : index) {
    EXPECT_EQ(name, Store::object_name(key));
  }
}

TEST(StoreCodec, ProfileEncodeDecodeEncodeIsByteIdentical) {
  apps::SyntheticConfig config;
  config.kernel_count = 5;
  config.seed = 42;
  const apps::ProfiledApp original = apps::make_synthetic_app(config);
  const std::string encoded = encode_profile(original);
  const std::shared_ptr<const apps::ProfiledApp> decoded =
      decode_profile(encoded);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(encode_profile(*decoded), encoded);
}

TEST(StoreCodec, EstimateRoundTripIsBitExact) {
  tiers::TierEstimate e;
  e.solution_tag = "sol tag with spaces";
  e.theta_seconds_per_byte = 0.1;  // Not representable exactly in binary.
  e.baseline_kernel_seconds = 1.0 / 3.0;
  e.designed_kernel_seconds = 4.9406564584124654e-324;  // Min subnormal.
  e.designed_lower_seconds = -0.0;
  e.designed_upper_seconds = 1.7976931348623157e308;
  e.baseline_lower_seconds = 3.14159265358979312e-7;
  e.baseline_upper_seconds = 6.02214076e23;
  e.noc_edges = 7;
  e.noc_volume_bytes = UINT64_MAX;
  e.noc_hop_bytes = 123456789;
  e.noc_max_link_bytes = 1;
  e.noc_transfer_seconds = 2.5e-9;
  e.congruence_key = 0xdeadbeefcafef00dULL;

  const std::string encoded = encode_estimate(e);
  const std::optional<tiers::TierEstimate> back = decode_estimate(encoded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->solution_tag, e.solution_tag);
  EXPECT_EQ(bits(back->theta_seconds_per_byte),
            bits(e.theta_seconds_per_byte));
  EXPECT_EQ(bits(back->designed_kernel_seconds),
            bits(e.designed_kernel_seconds));
  EXPECT_EQ(bits(back->designed_lower_seconds),
            bits(e.designed_lower_seconds));  // -0.0 preserved.
  EXPECT_EQ(bits(back->designed_upper_seconds),
            bits(e.designed_upper_seconds));
  EXPECT_EQ(back->noc_volume_bytes, e.noc_volume_bytes);
  EXPECT_EQ(back->congruence_key, e.congruence_key);
  EXPECT_EQ(encode_estimate(*back), encoded);
}

TEST(StoreCodec, DecodersAreTotal) {
  EXPECT_EQ(decode_profile(""), nullptr);
  EXPECT_EQ(decode_profile("garbage\nbytes\n"), nullptr);
  EXPECT_FALSE(decode_estimate("").has_value());
  EXPECT_FALSE(decode_estimate("garbage\nbytes\n").has_value());

  apps::SyntheticConfig config;
  config.kernel_count = 3;
  const std::string good = encode_profile(apps::make_synthetic_app(config));
  // Any truncation must decode to nullptr, never crash.
  for (const std::size_t cut :
       {good.size() / 7, good.size() / 2, good.size() - 1}) {
    EXPECT_EQ(decode_profile(good.substr(0, cut)), nullptr) << cut;
  }
}

TEST(StoreTiering, RestartReproducesByteIdenticalProfiles) {
  const std::string root = store_root("restart");
  apps::SyntheticConfig config;
  config.kernel_count = 4;
  config.seed = 7;

  std::string first_encoding;
  {
    apps::ProfileCache writer;
    writer.set_l2(
        std::make_shared<ProfileStoreL2>(std::make_shared<Store>(root)));
    first_encoding = encode_profile(*writer.synthetic_app(config));
    EXPECT_EQ(writer.l2_stores(), 1U);
  }

  // "Restart": a fresh cache and a fresh Store handle on the same root
  // must serve the profile from disk, byte-identical, without profiling.
  apps::ProfileCache reader;
  reader.set_l2(
      std::make_shared<ProfileStoreL2>(std::make_shared<Store>(root)));
  const std::shared_ptr<const apps::ProfiledApp> restored =
      reader.synthetic_app(config);
  EXPECT_EQ(reader.l2_hits(), 1U);
  EXPECT_EQ(reader.l2_stores(), 0U);
  EXPECT_EQ(encode_profile(*restored), first_encoding);
}

TEST(StoreTiering, LruEvictionFallsBackToL2) {
  const std::string root = store_root("lru");
  apps::ProfileCache cache;
  cache.set_l2(
      std::make_shared<ProfileStoreL2>(std::make_shared<Store>(root)));
  cache.set_capacity(1, 0);  // One resident profile: B must evict A.

  apps::SyntheticConfig a;
  a.kernel_count = 3;
  a.seed = 1;
  apps::SyntheticConfig b = a;
  b.seed = 2;

  const std::string encoded_a = encode_profile(*cache.synthetic_app(a));
  (void)cache.synthetic_app(b);
  EXPECT_GE(cache.evictions(), 1U);
  EXPECT_EQ(cache.size(), 1U);

  // A is gone from L1 but lives in the store: the re-get is an L2 hit
  // that reproduces the identical profile.
  const std::shared_ptr<const apps::ProfiledApp> again =
      cache.synthetic_app(a);
  EXPECT_EQ(cache.l2_hits(), 1U);
  EXPECT_EQ(encode_profile(*again), encoded_a);
}

TEST(StoreTiering, EstimateAdapterScopesAndRoundTrips) {
  const auto backing = std::make_shared<Store>(store_root("estimates"));
  EstimateStoreL2 scoped{backing, "scope-a"};
  tiers::TierEstimate e;
  e.solution_tag = "crossbar";
  e.designed_kernel_seconds = 0.125;
  e.congruence_key = 99;
  scoped.store(42, e);

  const std::optional<tiers::TierEstimate> back = scoped.load(42);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->solution_tag, "crossbar");
  EXPECT_EQ(bits(back->designed_kernel_seconds),
            bits(e.designed_kernel_seconds));

  // A differently configured platform (different scope) never aliases.
  EstimateStoreL2 other{backing, "scope-b"};
  EXPECT_FALSE(other.load(42).has_value());
  EXPECT_FALSE(scoped.load(43).has_value());
}

}  // namespace
}  // namespace hybridic::store
