#include <gtest/gtest.h>

#include "mem/bram.hpp"
#include "mem/port.hpp"
#include "sim/clock.hpp"
#include "util/error.hpp"

namespace hybridic::mem {
namespace {

const sim::ClockDomain kClock{"kernel", Frequency::megahertz(100)};  // 10 ns

TEST(Port, TransferTimeRoundsUpToBeats) {
  Port port{"p", kClock, 4};
  EXPECT_EQ(port.transfer_time(Bytes{4}).count(), 10'000U);
  EXPECT_EQ(port.transfer_time(Bytes{5}).count(), 20'000U);
  EXPECT_EQ(port.transfer_time(Bytes{8}).count(), 20'000U);
  EXPECT_EQ(port.transfer_time(Bytes{0}).count(), 0U);
}

TEST(Port, ReserveSerializesTransfers) {
  Port port{"p", kClock, 4};
  const Picoseconds first = port.reserve(Picoseconds{0}, Bytes{40});
  EXPECT_EQ(first.count(), 100'000U);  // 10 beats
  // Second transfer asked to start earlier, but the port is busy.
  const Picoseconds second = port.reserve(Picoseconds{0}, Bytes{4});
  EXPECT_EQ(second.count(), 110'000U);
}

TEST(Port, ReserveAlignsToClockEdge) {
  Port port{"p", kClock, 4};
  const Picoseconds done = port.reserve(Picoseconds{10'001}, Bytes{4});
  EXPECT_EQ(done.count(), 30'000U);  // Starts at edge 20 ns, one beat.
}

TEST(Port, StatisticsAccumulate) {
  Port port{"p", kClock, 4};
  (void)port.reserve(Picoseconds{0}, Bytes{16});
  (void)port.reserve(Picoseconds{0}, Bytes{8});
  EXPECT_EQ(port.bytes_transferred().count(), 24U);
  EXPECT_EQ(port.transfers(), 2U);
  port.reset();
  EXPECT_EQ(port.transfers(), 0U);
  EXPECT_EQ(port.free_at().count(), 0U);
}

TEST(Port, ZeroWidthRejected) {
  EXPECT_THROW(Port("p", kClock, 0), ConfigError);
}

TEST(Bram, PortsAreIndependent) {
  Bram bram{"b", kClock, Bytes{1024}, 4};
  const Picoseconds a = bram.access(BramPort::kA, Picoseconds{0}, Bytes{400});
  const Picoseconds b = bram.access(BramPort::kB, Picoseconds{0}, Bytes{4});
  EXPECT_EQ(a.count(), 1'000'000U);
  EXPECT_EQ(b.count(), 10'000U);  // Not blocked by port A.
}

TEST(Bram, SamePortSerializes) {
  Bram bram{"b", kClock, Bytes{1024}, 4};
  (void)bram.access(BramPort::kA, Picoseconds{0}, Bytes{40});
  const Picoseconds second =
      bram.access(BramPort::kA, Picoseconds{0}, Bytes{4});
  EXPECT_EQ(second.count(), 110'000U);
}

TEST(Bram, PerPortByteAccounting) {
  Bram bram{"b", kClock, Bytes{1024}, 4};
  (void)bram.access(BramPort::kA, Picoseconds{0}, Bytes{100});
  (void)bram.access(BramPort::kB, Picoseconds{0}, Bytes{12});
  EXPECT_EQ(bram.bytes_through(BramPort::kA).count(), 100U);
  EXPECT_EQ(bram.bytes_through(BramPort::kB).count(), 12U);
}

TEST(Bram, ZeroCapacityRejected) {
  EXPECT_THROW(Bram("b", kClock, Bytes{0}, 4), ConfigError);
}

TEST(Bram, ResetFreesPorts) {
  Bram bram{"b", kClock, Bytes{64}, 4};
  (void)bram.access(BramPort::kA, Picoseconds{0}, Bytes{64});
  bram.reset();
  EXPECT_EQ(bram.port_free_at(BramPort::kA).count(), 0U);
}

/// Property: total occupancy of one port is the sum of individual beat
/// counts, regardless of interleave order.
class PortOccupancy : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PortOccupancy, ConservesBeats) {
  const std::uint32_t width = GetParam();
  Port port{"p", kClock, width};
  std::uint64_t expected_beats = 0;
  for (std::uint64_t bytes : {3ULL, 17ULL, 64ULL, 1ULL, 129ULL}) {
    expected_beats += (bytes + width - 1) / width;
    (void)port.reserve(Picoseconds{0}, Bytes{bytes});
  }
  EXPECT_EQ(port.free_at().count(),
            expected_beats * kClock.period().count());
}

INSTANTIATE_TEST_SUITE_P(Widths, PortOccupancy,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace hybridic::mem
