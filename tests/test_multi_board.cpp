// Multi-board stack tests: BoardNetwork routing (chain/ring/mesh, dead
// links, reroutes), the boards=1 degenerate identity against the
// single-board engine, a real 2-board chain run, the multi-board analytic
// tier, store-scope non-aliasing, sampler RNG-stream preservation, the
// reproducer board-field round trip, and campaign determinism across
// thread counts with the board dimension swept.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/multi_board_design.hpp"
#include "dse/campaign.hpp"
#include "dse/reproducer.hpp"
#include "store/adapters.hpp"
#include "sys/board_net.hpp"
#include "sys/experiment.hpp"
#include "sys/multi_board.hpp"
#include "tiers/analytic.hpp"
#include "util/error.hpp"

namespace hybridic {
namespace {

apps::SyntheticConfig synthetic_config(std::uint64_t seed) {
  apps::SyntheticConfig config;
  config.kernel_count = 6;
  config.kernel_edge_probability = 0.5;
  config.seed = seed;
  return config;
}

// ---------------------------------------------------------------------------
// BoardNetwork routing.
// ---------------------------------------------------------------------------

TEST(BoardNetwork, ChainRoutesWalkEveryIntermediateBoard) {
  const sys::BoardNetwork net{4, core::BoardTopology::kChain, {}};
  EXPECT_EQ(net.route(0, 3), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(net.hop_count(0, 3), 3U);
  EXPECT_EQ(net.hop_count(2, 2), 0U);
}

TEST(BoardNetwork, RingTakesTheWrapAroundShortcut) {
  const sys::BoardNetwork net{4, core::BoardTopology::kRing, {}};
  EXPECT_EQ(net.hop_count(0, 3), 1U);
  EXPECT_EQ(net.hop_count(0, 2), 2U);
}

TEST(BoardNetwork, MeshIsNearSquare) {
  EXPECT_EQ(sys::BoardNetwork::mesh_dims(4),
            (std::pair<std::uint32_t, std::uint32_t>{2, 2}));
  const sys::BoardNetwork net{4, core::BoardTopology::kMesh, {}};
  // 2x2 row-major: 0-1, 0-2, 1-3, 2-3; opposite corners are two hops.
  EXPECT_EQ(net.hop_count(0, 3), 2U);
  EXPECT_EQ(net.hop_count(1, 2), 2U);
}

TEST(BoardNetwork, TransferTimeIsStoreAndForwardPerHop) {
  sys::InterBoardLinkConfig link;
  link.latency_seconds = 1e-6;
  link.bandwidth_bytes_per_second = 1e9;
  const sys::BoardNetwork net{3, core::BoardTopology::kChain, link};
  const double one_hop = net.transfer_seconds(Bytes{1000}, 1);
  EXPECT_DOUBLE_EQ(one_hop, 1e-6 + 1000.0 / 1e9);
  EXPECT_DOUBLE_EQ(net.transfer_seconds(Bytes{1000}, 2), 2.0 * one_hop);
}

TEST(BoardNetwork, DeadLinkOnAChainDisconnectsAndIsRejected) {
  EXPECT_THROW(
      (sys::BoardNetwork{3, core::BoardTopology::kChain, {}, {{0, 1}}}),
      ConfigError);
}

TEST(BoardNetwork, RingReroutesAroundADeadLink) {
  const sys::BoardNetwork net{4, core::BoardTopology::kRing, {}, {{0, 1}}};
  bool rerouted = false;
  const std::vector<std::uint32_t> path = net.route(0, 1, &rerouted);
  EXPECT_TRUE(rerouted);
  EXPECT_EQ(path, (std::vector<std::uint32_t>{0, 3, 2, 1}));
  // The untouched direction keeps its canonical path, no reroute flagged.
  rerouted = false;
  EXPECT_EQ(net.route(0, 3, &rerouted),
            (std::vector<std::uint32_t>{0, 3}));
  EXPECT_FALSE(rerouted);
}

// ---------------------------------------------------------------------------
// boards == 1 degenerates to the single-board engine, bit for bit.
// ---------------------------------------------------------------------------

TEST(MultiBoardRun, SingleBoardIsBitIdenticalToRunDesigned) {
  const apps::ProfiledApp app =
      apps::make_synthetic_app(synthetic_config(31));
  const sys::AppSchedule schedule = app.schedule();

  core::MultiBoardDesignInput input;
  input.base = sys::make_design_input(schedule, sys::PlatformConfig{});
  input.board_count = 1;
  const core::MultiBoardDesign multi = core::design_multi_board(input);
  ASSERT_EQ(multi.boards.size(), 1U);
  EXPECT_TRUE(multi.cut_edges.empty());

  const core::DesignResult single = core::design_interconnect(input.base);
  const sys::RunResult expect =
      sys::run_designed(schedule, single, sys::PlatformConfig{});
  const sys::MultiBoardRunResult got = sys::run_designed_multi(
      schedule, multi, sys::MultiBoardConfig::uniform(1));

  EXPECT_EQ(got.run.total_seconds, expect.total_seconds);
  EXPECT_EQ(got.run.kernel_seconds(), expect.kernel_seconds());
  EXPECT_EQ(got.inter_board_transfers, 0U);
  EXPECT_EQ(got.inter_board_bytes, 0U);
  EXPECT_EQ(got.board_link_reroutes, 0U);
}

// ---------------------------------------------------------------------------
// A real 2-board chain run.
// ---------------------------------------------------------------------------

TEST(MultiBoardRun, TwoBoardChainMovesCutBytesOverTheLinks) {
  const apps::ProfiledApp app =
      apps::make_synthetic_app(synthetic_config(13));
  const sys::AppSchedule schedule = app.schedule();

  core::MultiBoardDesignInput input;
  input.base = sys::make_design_input(schedule, sys::PlatformConfig{});
  input.board_count = 2;
  const core::MultiBoardDesign multi = core::design_multi_board(input);
  ASSERT_EQ(multi.board_count(), 2U);

  const sys::MultiBoardRunResult run = sys::run_designed_multi(
      schedule, multi, sys::MultiBoardConfig::uniform(2));
  EXPECT_GT(run.run.total_seconds, 0.0);
  EXPECT_EQ(run.board_end_seconds.size(), 2U);
  if (!multi.cut_edges.empty()) {
    EXPECT_GT(run.inter_board_transfers, 0U);
    EXPECT_GT(run.inter_board_bytes, 0U);
    EXPECT_GT(run.inter_board_busy_seconds, 0.0);
  }
  // Healthy network: nothing to reroute around.
  EXPECT_EQ(run.board_link_reroutes, 0U);

  // Re-running is deterministic to the bit.
  const sys::MultiBoardRunResult again = sys::run_designed_multi(
      schedule, multi, sys::MultiBoardConfig::uniform(2));
  EXPECT_EQ(again.run.total_seconds, run.run.total_seconds);
  EXPECT_EQ(again.inter_board_bytes, run.inter_board_bytes);
}

// ---------------------------------------------------------------------------
// Analytic tier.
// ---------------------------------------------------------------------------

TEST(MultiBoardAnalytic, SingleBoardEstimateMatchesTheSingleBoardTier) {
  const apps::ProfiledApp app =
      apps::make_synthetic_app(synthetic_config(47));
  const sys::AppSchedule schedule = app.schedule();
  core::MultiBoardDesignInput input;
  input.base = sys::make_design_input(schedule, sys::PlatformConfig{});
  input.board_count = 1;
  const core::MultiBoardDesign multi = core::design_multi_board(input);

  const tiers::TierEstimate single = tiers::analytic_estimate(
      schedule, multi.boards.at(0), sys::PlatformConfig{},
      input.base.theta.seconds_per_byte);
  const tiers::TierEstimate got = tiers::analytic_estimate_multi(
      schedule, multi, sys::MultiBoardConfig::uniform(1),
      input.base.theta.seconds_per_byte);

  EXPECT_EQ(got.solution_tag, single.solution_tag);
  EXPECT_EQ(got.designed_kernel_seconds, single.designed_kernel_seconds);
  EXPECT_EQ(got.designed_lower_seconds, single.designed_lower_seconds);
  EXPECT_EQ(got.designed_upper_seconds, single.designed_upper_seconds);
  EXPECT_EQ(got.inter_board_edges, 0U);
  EXPECT_EQ(got.inter_board_seconds, 0.0);
}

TEST(MultiBoardAnalytic, CutEdgesProduceASerializedInterBoardTerm) {
  const apps::ProfiledApp app =
      apps::make_synthetic_app(synthetic_config(13));
  const sys::AppSchedule schedule = app.schedule();
  core::MultiBoardDesignInput input;
  input.base = sys::make_design_input(schedule, sys::PlatformConfig{});
  input.board_count = 2;
  const core::MultiBoardDesign multi = core::design_multi_board(input);
  ASSERT_FALSE(multi.cut_edges.empty());

  const tiers::TierEstimate est = tiers::analytic_estimate_multi(
      schedule, multi, sys::MultiBoardConfig::uniform(2),
      input.base.theta.seconds_per_byte);
  EXPECT_EQ(est.inter_board_edges, multi.cut_edges.size());
  EXPECT_EQ(est.inter_board_bytes, multi.partition.cut_bytes.count());
  EXPECT_GT(est.inter_board_seconds, 0.0);
  EXPECT_LE(est.designed_lower_seconds, est.designed_kernel_seconds);
  EXPECT_LE(est.designed_kernel_seconds, est.designed_upper_seconds);
}

// ---------------------------------------------------------------------------
// Store scope: multi-board estimates never alias single-board ones.
// ---------------------------------------------------------------------------

TEST(MultiBoardStore, EstimateScopesNeverAlias) {
  const tiers::TierCalibration calibration;
  const std::string single =
      store::estimate_scope(sys::PlatformConfig{}, calibration);
  const std::string one_board =
      store::estimate_scope(sys::MultiBoardConfig::uniform(1), calibration);
  const std::string chain2 =
      store::estimate_scope(sys::MultiBoardConfig::uniform(2), calibration);
  const std::string ring2 = store::estimate_scope(
      sys::MultiBoardConfig::uniform(2, sys::PlatformConfig{},
                                     core::BoardTopology::kRing),
      calibration);
  EXPECT_NE(one_board, single);
  EXPECT_NE(chain2, single);
  EXPECT_NE(chain2, one_board);
  EXPECT_NE(chain2, ring2);
}

// ---------------------------------------------------------------------------
// Sampler: the single-board RNG stream is untouched by the board
// dimension, so every pre-multi-board campaign replays byte-identically.
// ---------------------------------------------------------------------------

TEST(MultiBoardSampling, SingleBoardStreamIsPreserved) {
  dse::SweepSpace single;
  dse::SweepSpace multi;
  multi.max_boards = 4;
  multi.board_topologies = {"chain", "ring", "mesh"};
  ASSERT_FALSE(single.multi_board());
  ASSERT_TRUE(multi.multi_board());

  for (std::uint64_t index = 0; index < 32; ++index) {
    const apps::SyntheticConfig a = dse::sample_config(single, 3, index);
    const apps::SyntheticConfig b = dse::sample_config(multi, 3, index);
    EXPECT_EQ(a.board_count, 1U);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.kernel_count, b.kernel_count);
    EXPECT_EQ(a.kernel_edge_probability, b.kernel_edge_probability);
    EXPECT_EQ(a.min_edge_bytes, b.min_edge_bytes);
    EXPECT_EQ(a.max_edge_bytes, b.max_edge_bytes);
    EXPECT_EQ(a.min_work_units, b.min_work_units);
    EXPECT_EQ(a.max_work_units, b.max_work_units);
    EXPECT_GE(b.board_count, 1U);
    EXPECT_LE(b.board_count, 4U);
    EXPECT_TRUE(b.board_topology == "chain" || b.board_topology == "ring" ||
                b.board_topology == "mesh")
        << b.board_topology;
  }
}

// ---------------------------------------------------------------------------
// Reproducer round trip.
// ---------------------------------------------------------------------------

TEST(MultiBoardReproducer, BoardFieldsRoundTripAndStayOptional) {
  dse::Reproducer r;
  r.schema = 1;
  r.oracle = "board-byte-conservation";
  r.expect = dse::Expectation::kFail;
  r.message = "ledger broken";
  r.config = synthetic_config(99);
  r.config.board_count = 3;
  r.config.board_topology = "ring";

  const std::string json = dse::to_json(r);
  EXPECT_NE(json.find("\"board_count\": 3"), std::string::npos);
  const dse::Reproducer back = dse::parse_reproducer(json);
  EXPECT_EQ(back.config.board_count, 3U);
  EXPECT_EQ(back.config.board_topology, "ring");
  EXPECT_EQ(back.config.seed, r.config.seed);

  // Single-board reproducers keep the historical schema: no board fields.
  r.config.board_count = 1;
  const std::string single_json = dse::to_json(r);
  EXPECT_EQ(single_json.find("board_count"), std::string::npos);
  EXPECT_EQ(single_json.find("board_topology"), std::string::npos);
  const dse::Reproducer single = dse::parse_reproducer(single_json);
  EXPECT_EQ(single.config.board_count, 1U);
  EXPECT_EQ(single.config.board_topology, "chain");
}

// ---------------------------------------------------------------------------
// Campaign determinism with the board dimension swept.
// ---------------------------------------------------------------------------

TEST(MultiBoardCampaign, CsvIsByteIdenticalAcrossThreadCounts) {
  dse::CampaignOptions options;
  options.count = 8;
  options.campaign_seed = 5;
  options.space.max_kernels = 6;
  options.space.max_boards = 3;
  options.space.board_topologies = {"ring"};

  options.threads = 1;
  const dse::CampaignResult serial = dse::run_campaign(options);
  options.threads = 4;
  const dse::CampaignResult parallel = dse::run_campaign(options);

  EXPECT_TRUE(serial.multi_board);
  const std::string csv = dse::campaign_csv(serial);
  EXPECT_EQ(csv, dse::campaign_csv(parallel));
  // The multi-board schema is present: board columns + the ninth oracle.
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_NE(header.find(",boards,board_topology,cut_bytes"),
            std::string::npos);
  EXPECT_NE(header.find("board-byte-conservation"), std::string::npos);
}

}  // namespace
}  // namespace hybridic
