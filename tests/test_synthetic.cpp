#include "apps/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/interconnect_design.hpp"
#include "sys/experiment.hpp"
#include "util/error.hpp"

namespace hybridic::apps {
namespace {

TEST(Synthetic, ProducesExpectedFunctionCount) {
  SyntheticConfig config;
  config.kernel_count = 5;
  const ProfiledApp app = make_synthetic_app(config);
  // source + 5 kernels + sink.
  EXPECT_EQ(app.graph().function_count(), 7U);
  EXPECT_EQ(app.schedule().specs.size(), 5U);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticConfig config;
  config.seed = 42;
  const ProfiledApp a = make_synthetic_app(config);
  const ProfiledApp b = make_synthetic_app(config);
  const auto ea = a.graph().edges();
  const auto eb = b.graph().edges();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].bytes, eb[i].bytes);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticConfig a;
  a.seed = 1;
  SyntheticConfig b;
  b.seed = 2;
  const auto ea = make_synthetic_app(a).graph().edges();
  const auto eb = make_synthetic_app(b).graph().edges();
  bool differ = ea.size() != eb.size();
  for (std::size_t i = 0; !differ && i < ea.size(); ++i) {
    differ = ea[i].bytes != eb[i].bytes;
  }
  EXPECT_TRUE(differ);
}

TEST(Synthetic, GraphIsAcyclicByConstruction) {
  SyntheticConfig config;
  config.kernel_count = 8;
  config.seed = 5;
  const ProfiledApp app = make_synthetic_app(config);
  // Kernel i only feeds kernels j > i (and the sink).
  for (const prof::CommEdge& edge : app.graph().edges()) {
    if (edge.producer != edge.consumer) {
      EXPECT_LT(edge.producer, edge.consumer);
    }
  }
}

TEST(Synthetic, EveryKernelHasInput) {
  for (std::uint64_t seed : {1ULL, 9ULL, 77ULL}) {
    SyntheticConfig config;
    config.seed = seed;
    config.kernel_count = 6;
    const ProfiledApp app = make_synthetic_app(config);
    const prof::CommGraph& g = app.graph();
    for (std::uint32_t k = 0; k < 6; ++k) {
      const auto id = g.id_of("kernel" + std::to_string(k));
      EXPECT_GT(g.total_in(id).count(), 0U) << "seed " << seed;
      EXPECT_GT(g.total_out(id).count(), 0U) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Config validation: every rejection names the offending field.
// ---------------------------------------------------------------------------

/// Runs both entry points (the standalone validator and the generator)
/// and checks the ConfigError message names the field.
void expect_rejected(const SyntheticConfig& config, const char* field) {
  try {
    validate_synthetic_config(config);
    FAIL() << "expected rejection of " << field;
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)make_synthetic_app(config), ConfigError);
}

TEST(SyntheticConfigValidation, AcceptsTheDefaultConfig) {
  EXPECT_NO_THROW(validate_synthetic_config(SyntheticConfig{}));
}

TEST(SyntheticConfigValidation, RejectsZeroKernels) {
  SyntheticConfig config;
  config.kernel_count = 0;
  expect_rejected(config, "kernel_count");
}

TEST(SyntheticConfigValidation, RejectsZeroMinEdgeBytes) {
  SyntheticConfig config;
  config.min_edge_bytes = 0;
  expect_rejected(config, "min_edge_bytes");
}

TEST(SyntheticConfigValidation, RejectsInvertedEdgeByteRange) {
  SyntheticConfig config;
  config.min_edge_bytes = 4096;
  config.max_edge_bytes = 1024;
  expect_rejected(config, "min_edge_bytes");
}

TEST(SyntheticConfigValidation, RejectsInvertedWorkUnitRange) {
  SyntheticConfig config;
  config.min_work_units = 100;
  config.max_work_units = 10;
  expect_rejected(config, "min_work_units");
}

TEST(SyntheticConfigValidation, RejectsOutOfRangeProbabilities) {
  SyntheticConfig config;
  config.kernel_edge_probability = 1.5;
  expect_rejected(config, "kernel_edge_probability");

  config = SyntheticConfig{};
  config.duplicable_probability = -0.1;
  expect_rejected(config, "duplicable_probability");

  config = SyntheticConfig{};
  config.streaming_probability = 2.0;
  expect_rejected(config, "streaming_probability");
}

/// Full-pipeline property sweep over synthetic shapes.
class SyntheticPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyntheticPipeline, ExperimentCompletesAndOrdersHold) {
  SyntheticConfig config;
  config.seed = GetParam();
  config.kernel_count = 4 + GetParam() % 4;
  const ProfiledApp app = make_synthetic_app(config);
  const sys::AppSchedule schedule = app.schedule();
  const sys::AppExperiment exp = sys::run_experiment(
      schedule, sys::PlatformConfig{}, app.environment);

  EXPECT_GT(exp.sw.total_seconds, 0.0);
  EXPECT_GT(exp.baseline.total_seconds, 0.0);
  EXPECT_LE(exp.proposed.total_seconds,
            exp.baseline.total_seconds * 1.02);
  EXPECT_LE(exp.proposed_resources.luts, exp.noc_only_resources.luts);
  EXPECT_LT(exp.baseline_resources.luts, exp.proposed_resources.luts + 1);
  EXPECT_GT(exp.proposed_energy_joules, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticPipeline,
                         ::testing::Values(2, 4, 6, 11, 19, 29, 41));

}  // namespace
}  // namespace hybridic::apps
