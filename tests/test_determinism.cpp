// Determinism regression tests for the split event core: one-shot events
// live in the EventQueue heap while periodic ticks live in per-clock-domain
// tick wheels, but both draw sequence numbers from one shared counter, so
// the merged execution order must remain exactly the documented
// (time, scheduling-order) FIFO of the original single-queue engine.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace hybridic::sim {
namespace {

/// Ticking component that appends a label to a shared journal on each edge.
class Journaled : public Ticking {
public:
  Journaled(std::string label, std::vector<std::string>& journal, int limit)
      : label_(std::move(label)), journal_(&journal), limit_(limit) {}

  bool tick(Picoseconds) override {
    journal_->push_back(label_);
    return --limit_ > 0;
  }

private:
  std::string label_;
  std::vector<std::string>* journal_;
  int limit_;
};

TEST(Determinism, SameTimestampEventsPopInSchedulingOrder) {
  // Five one-shots at the same instant must run in the order scheduled,
  // regardless of heap internals.
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(Picoseconds{100}, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Determinism, TicksAndOneShotsInterleaveBySchedulingOrder) {
  // A tick scheduled before a one-shot at the same edge time must fire
  // first, and vice versa: the wheel/heap split shares one sequence
  // counter, so scheduling order decides ties exactly as before.
  Engine engine;
  ClockDomain clock{"k", Frequency::megahertz(100)};  // edges at 10 ns
  std::vector<std::string> journal;

  Journaled early{"tick-first", journal, 1};
  engine.activate(engine.add_ticking(early, clock));  // seq N at 10'000 ps
  engine.schedule_at(Picoseconds{10'000},
                     [&journal] { journal.push_back("shot-after-tick"); });

  engine.schedule_at(Picoseconds{20'000},
                     [&journal] { journal.push_back("shot-before-tick"); });
  Journaled late{"tick-second", journal, 1};
  const std::size_t late_handle = engine.add_ticking(late, clock);
  // activate() from inside an event at 10'001 ps lands the tick on the
  // 20'000 ps edge with a later sequence than the one-shot above.
  engine.schedule_at(Picoseconds{10'001}, [&engine, late_handle] {
    engine.activate(late_handle);
  });
  engine.run();
  ASSERT_EQ(journal.size(), 4U);
  EXPECT_EQ(journal[0], "tick-first");
  EXPECT_EQ(journal[1], "shot-after-tick");
  EXPECT_EQ(journal[2], "shot-before-tick");
  EXPECT_EQ(journal[3], "tick-second");
}

TEST(Determinism, CoincidingEdgesAcrossDomainsFollowActivationOrder) {
  // 400 MHz and 100 MHz edges coincide every 10 ns. Components activated
  // earlier must tick earlier at the shared instant.
  Engine engine;
  ClockDomain fast{"fast", Frequency::megahertz(400)};  // 2.5 ns
  ClockDomain slow{"slow", Frequency::megahertz(100)};  // 10 ns
  std::vector<std::string> journal;
  Journaled a{"slow", journal, 1};
  Journaled b{"fast", journal, 4};
  engine.activate(engine.add_ticking(a, slow));
  engine.activate(engine.add_ticking(b, fast));
  engine.run();
  // fast ticks at 2.5/5/7.5/10 ns; slow ticks at 10 ns. At the 10 ns
  // coincidence the slow tick was scheduled first (activation order).
  ASSERT_EQ(journal.size(), 5U);
  EXPECT_EQ(journal[0], "fast");
  EXPECT_EQ(journal[1], "fast");
  EXPECT_EQ(journal[2], "fast");
  EXPECT_EQ(journal[3], "slow");
  EXPECT_EQ(journal[4], "fast");
}

TEST(Determinism, EqualPeriodDomainsShareOneWheel) {
  Engine engine;
  ClockDomain k1{"k1", Frequency::megahertz(100)};
  ClockDomain k2{"k2", Frequency::megahertz(100)};
  ClockDomain k3{"k3", Frequency::megahertz(150)};
  std::vector<std::string> journal;
  Journaled a{"a", journal, 1};
  Journaled b{"b", journal, 1};
  Journaled c{"c", journal, 1};
  engine.activate(engine.add_ticking(a, k1));
  engine.activate(engine.add_ticking(b, k2));
  engine.activate(engine.add_ticking(c, k3));
  EXPECT_EQ(engine.tick_wheel_count(), 2U);  // 100 MHz shared, 150 MHz own.
  EXPECT_EQ(engine.pending_ticks(), 3U);
  engine.run();
  EXPECT_EQ(engine.pending_ticks(), 0U);
}

TEST(Determinism, ResetClearsWheelState) {
  Engine engine;
  ClockDomain clock{"k", Frequency::megahertz(100)};
  std::vector<std::string> journal;
  auto component = std::make_unique<Journaled>("x", journal, 100);
  engine.activate(engine.add_ticking(*component, clock));
  engine.schedule_at(Picoseconds{5}, [] {});
  EXPECT_GT(engine.pending_ticks(), 0U);

  engine.reset();
  EXPECT_EQ(engine.pending_ticks(), 0U);
  EXPECT_EQ(engine.tick_wheel_count(), 0U);
  EXPECT_EQ(engine.now().count(), 0U);
  EXPECT_EQ(engine.events_executed(), 0U);
  component.reset();  // Engine must hold no dangling reference to it.
  engine.run();       // Nothing pending: returns immediately at t=0.
  EXPECT_EQ(engine.now().count(), 0U);
  EXPECT_EQ(engine.events_executed(), 0U);

  // A handle from before reset() is stale and must be rejected.
  EXPECT_THROW(engine.activate(0), SimulationError);
}

TEST(Determinism, ScheduleAfterOverflowThrows) {
  Engine engine;
  engine.schedule_at(Picoseconds{100}, [] {});
  engine.run();
  EXPECT_THROW(
      engine.schedule_after(Picoseconds{UINT64_MAX - 50}, [] {}),
      SimulationError);
  // A delay that still fits the timeline is fine.
  engine.schedule_after(Picoseconds{UINT64_MAX - engine.now().count()},
                        [] {});
}

TEST(Determinism, InlineActionSupportsMoveOnlyCaptures) {
  Engine engine;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  engine.schedule_at(Picoseconds{10},
                     [p = std::move(payload), &seen] { seen = *p; });
  engine.run();
  EXPECT_EQ(seen, 42);
}

}  // namespace
}  // namespace hybridic::sim
