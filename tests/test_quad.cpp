#include "prof/quad.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hybridic::prof {
namespace {

TEST(QuadProfiler, DeclareAssignsSequentialIds) {
  QuadProfiler q;
  EXPECT_EQ(q.declare("a"), 0U);
  EXPECT_EQ(q.declare("b"), 1U);
  EXPECT_EQ(q.graph().function_count(), 2U);
}

TEST(QuadProfiler, ProducerConsumerAttribution) {
  QuadProfiler q;
  const FunctionId producer = q.declare("producer");
  const FunctionId consumer = q.declare("consumer");
  const std::uint64_t addr = q.allocate(64);

  q.enter(producer);
  q.record_write(addr, 64);
  q.leave();

  q.enter(consumer);
  q.record_read(addr, 64);
  q.leave();

  const CommGraph& graph = q.graph();
  EXPECT_EQ(graph.bytes_between(producer, consumer).count(), 64U);
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 1U);
  EXPECT_EQ(edges[0].unique_addresses, 64U);
}

TEST(QuadProfiler, RepeatedReadsCountBytesOnceForUma) {
  QuadProfiler q;
  const FunctionId p = q.declare("p");
  const FunctionId c = q.declare("c");
  const std::uint64_t addr = q.allocate(16);
  q.enter(p);
  q.record_write(addr, 16);
  q.leave();
  q.enter(c);
  q.record_read(addr, 16);
  q.record_read(addr, 16);
  q.record_read(addr, 8);
  q.leave();
  const auto edges = q.graph().edges();
  ASSERT_EQ(edges.size(), 1U);
  EXPECT_EQ(edges[0].bytes.count(), 40U);          // every access counted
  EXPECT_EQ(edges[0].unique_addresses, 16U);       // but 16 unique bytes
}

TEST(QuadProfiler, ReadOfUnwrittenMemoryCreatesNoEdge) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  const std::uint64_t addr = q.allocate(32);
  q.enter(f);
  q.record_read(addr, 32);
  q.leave();
  EXPECT_TRUE(q.graph().edges().empty());
  EXPECT_EQ(q.graph().function(f).reads, 32U);
}

TEST(QuadProfiler, SelfCommunicationRecorded) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  const std::uint64_t addr = q.allocate(8);
  q.enter(f);
  q.record_write(addr, 8);
  q.record_read(addr, 8);
  q.leave();
  EXPECT_EQ(q.graph().bytes_between(f, f).count(), 8U);
}

TEST(QuadProfiler, PartialOverwriteSplitsAttribution) {
  QuadProfiler q;
  const FunctionId a = q.declare("a");
  const FunctionId b = q.declare("b");
  const FunctionId c = q.declare("c");
  const std::uint64_t addr = q.allocate(16);
  q.enter(a);
  q.record_write(addr, 16);
  q.leave();
  q.enter(b);
  q.record_write(addr + 8, 8);
  q.leave();
  q.enter(c);
  q.record_read(addr, 16);
  q.leave();
  EXPECT_EQ(q.graph().bytes_between(a, c).count(), 8U);
  EXPECT_EQ(q.graph().bytes_between(b, c).count(), 8U);
}

TEST(QuadProfiler, NestedScopesAttributeToInnermost) {
  QuadProfiler q;
  const FunctionId outer = q.declare("outer");
  const FunctionId inner = q.declare("inner");
  const FunctionId reader = q.declare("reader");
  const std::uint64_t addr = q.allocate(4);
  q.enter(outer);
  q.enter(inner);
  q.record_write(addr, 4);
  q.leave();
  EXPECT_EQ(q.current(), outer);
  q.leave();
  q.enter(reader);
  q.record_read(addr, 4);
  q.leave();
  EXPECT_EQ(q.graph().bytes_between(inner, reader).count(), 4U);
  EXPECT_EQ(q.graph().bytes_between(outer, reader).count(), 0U);
}

TEST(QuadProfiler, CallCountsTracked) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  for (int i = 0; i < 3; ++i) {
    q.enter(f);
    q.leave();
  }
  EXPECT_EQ(q.graph().function(f).calls, 3U);
}

TEST(QuadProfiler, WorkUnitsAccumulate) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  q.enter(f);
  q.add_work(10);
  q.add_work(5);
  q.leave();
  EXPECT_EQ(q.graph().function(f).work_units, 15U);
}

TEST(QuadProfiler, AccessOutsideScopeThrows) {
  QuadProfiler q;
  (void)q.declare("f");
  EXPECT_THROW(q.record_write(0x1000, 4), ConfigError);
  EXPECT_THROW(q.record_read(0x1000, 4), ConfigError);
  EXPECT_THROW(q.add_work(1), ConfigError);
  EXPECT_THROW(q.leave(), ConfigError);
  EXPECT_THROW((void)q.current(), ConfigError);
}

TEST(QuadProfiler, EnterUndeclaredThrows) {
  QuadProfiler q;
  EXPECT_THROW(q.enter(4), ConfigError);
}

TEST(QuadProfiler, AllocationsDoNotOverlap) {
  QuadProfiler q;
  const std::uint64_t a = q.allocate(100);
  const std::uint64_t b = q.allocate(100);
  EXPECT_GE(b, a + 100);
  const std::uint64_t c = q.allocate(0);
  const std::uint64_t d = q.allocate(8);
  EXPECT_GT(d, c);
}

TEST(QuadProfiler, AllocationAlignment) {
  QuadProfiler q;
  (void)q.allocate(3, 1);
  const std::uint64_t aligned = q.allocate(16, 64);
  EXPECT_EQ(aligned % 64, 0U);
}

// ---------------------------------------------------------------------------
// Deferred mode: trace replay must reproduce eager attribution exactly.
// ---------------------------------------------------------------------------

/// A deterministic workload with page-crossing accesses, overwrites,
/// repeated reads, nested scopes, and enough events (> the serial-replay
/// threshold) to exercise the sharded replay path.
void run_workload(QuadProfiler& q) {
  const FunctionId a = q.declare("a");
  const FunctionId b = q.declare("b");
  const FunctionId c = q.declare("c");
  const std::uint64_t buf = q.allocate(256 * 1024);
  q.enter(a);
  q.add_work(1000);
  for (std::uint64_t i = 0; i < 3000; ++i) {
    q.record_write(buf + i * 37 % (256 * 1024 - 64), 48 + i % 16);
  }
  q.leave();
  q.enter(b);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    q.record_write(buf + (i * 97 + 13) % (256 * 1024 - 64), 32);
  }
  q.enter(c);  // Nested: reads attribute to c, not b.
  for (std::uint64_t i = 0; i < 4000; ++i) {
    q.record_read(buf + i * 61 % (256 * 1024 - 64), 40 + i % 24);
  }
  q.leave();
  q.leave();
  q.enter(c);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    q.record_read(buf + i * 4093 % (256 * 1024 - 64), 64);
  }
  q.leave();
}

void expect_same_profile(const QuadProfiler& x, const QuadProfiler& y) {
  const auto ex = x.graph().edges();
  const auto ey = y.graph().edges();
  ASSERT_EQ(ex.size(), ey.size());
  for (std::size_t i = 0; i < ex.size(); ++i) {
    EXPECT_EQ(ex[i].producer, ey[i].producer);
    EXPECT_EQ(ex[i].consumer, ey[i].consumer);
    EXPECT_EQ(ex[i].bytes.count(), ey[i].bytes.count());
    EXPECT_EQ(ex[i].unique_addresses, ey[i].unique_addresses);
  }
  ASSERT_EQ(x.graph().function_count(), y.graph().function_count());
  for (FunctionId f = 0; f < x.graph().function_count(); ++f) {
    EXPECT_EQ(x.graph().function(f).reads, y.graph().function(f).reads);
    EXPECT_EQ(x.graph().function(f).writes, y.graph().function(f).writes);
    EXPECT_EQ(x.graph().function(f).calls, y.graph().function(f).calls);
    EXPECT_EQ(x.graph().function(f).work_units,
              y.graph().function(f).work_units);
    EXPECT_EQ(x.unique_bytes_read(f), y.unique_bytes_read(f));
    EXPECT_EQ(x.unique_bytes_written(f), y.unique_bytes_written(f));
  }
  EXPECT_EQ(x.call_order(), y.call_order());
}

TEST(QuadDeferred, SerialReplayMatchesEager) {
  QuadProfiler eager{ProfileMode::kEager};
  run_workload(eager);
  QuadProfiler deferred{ProfileMode::kDeferred};
  run_workload(deferred);
  EXPECT_GT(deferred.pending_events(), 0U);
  EXPECT_TRUE(deferred.graph().edges().empty());  // Not yet attributed.
  deferred.finalize();
  EXPECT_EQ(deferred.pending_events(), 0U);
  expect_same_profile(eager, deferred);
}

TEST(QuadDeferred, ShardedReplayIsThreadCountInvariant) {
  QuadProfiler eager{ProfileMode::kEager};
  run_workload(eager);
  for (const std::size_t threads : {2U, 4U, 7U}) {
    ThreadPool pool{threads};
    QuadProfiler deferred{ProfileMode::kDeferred};
    run_workload(deferred);
    deferred.finalize(&pool);
    expect_same_profile(eager, deferred);
  }
}

TEST(QuadDeferred, FinalizeIsIdempotentAndAllowsFurtherEagerUse) {
  QuadProfiler q{ProfileMode::kDeferred};
  const FunctionId p = q.declare("p");
  const FunctionId c = q.declare("c");
  const std::uint64_t addr = q.allocate(64);
  q.enter(p);
  q.record_write(addr, 64);
  q.leave();
  q.finalize();
  q.finalize();  // Idempotent.
  q.enter(c);
  q.record_read(addr, 64);  // Post-finalize accesses attribute eagerly.
  q.leave();
  EXPECT_EQ(q.graph().bytes_between(p, c).count(), 64U);
  const auto edges = q.graph().edges();
  ASSERT_EQ(edges.size(), 1U);
  EXPECT_EQ(edges[0].unique_addresses, 64U);
}

TEST(QuadSnapshot, RoundTripPreservesDownstreamView) {
  QuadProfiler q{ProfileMode::kDeferred};
  run_workload(q);
  q.finalize();
  const ProfileSnapshot snap = q.snapshot();
  const std::unique_ptr<QuadProfiler> restored =
      QuadProfiler::from_snapshot(snap);
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(restored->restored());
  expect_same_profile(q, *restored);
  EXPECT_EQ(q.memory_report(), restored->memory_report());
}

TEST(QuadSnapshot, RestoredProfilerRejectsNewAccesses) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  q.enter(f);
  q.record_write(q.allocate(16), 16);
  q.leave();
  const std::unique_ptr<QuadProfiler> restored =
      QuadProfiler::from_snapshot(q.snapshot());
  restored->enter(f);
  EXPECT_THROW(restored->record_write(0x1000, 4), ConfigError);
  EXPECT_THROW(restored->record_read(0x1000, 4), ConfigError);
  restored->leave();
}

TEST(ScopedFunctionTest, RaiiEnterLeave) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  {
    ScopedFunction scope{q, f};
    EXPECT_EQ(q.call_depth(), 1U);
  }
  EXPECT_EQ(q.call_depth(), 0U);
}

}  // namespace
}  // namespace hybridic::prof
