#include "prof/quad.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hybridic::prof {
namespace {

TEST(QuadProfiler, DeclareAssignsSequentialIds) {
  QuadProfiler q;
  EXPECT_EQ(q.declare("a"), 0U);
  EXPECT_EQ(q.declare("b"), 1U);
  EXPECT_EQ(q.graph().function_count(), 2U);
}

TEST(QuadProfiler, ProducerConsumerAttribution) {
  QuadProfiler q;
  const FunctionId producer = q.declare("producer");
  const FunctionId consumer = q.declare("consumer");
  const std::uint64_t addr = q.allocate(64);

  q.enter(producer);
  q.record_write(addr, 64);
  q.leave();

  q.enter(consumer);
  q.record_read(addr, 64);
  q.leave();

  const CommGraph& graph = q.graph();
  EXPECT_EQ(graph.bytes_between(producer, consumer).count(), 64U);
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 1U);
  EXPECT_EQ(edges[0].unique_addresses, 64U);
}

TEST(QuadProfiler, RepeatedReadsCountBytesOnceForUma) {
  QuadProfiler q;
  const FunctionId p = q.declare("p");
  const FunctionId c = q.declare("c");
  const std::uint64_t addr = q.allocate(16);
  q.enter(p);
  q.record_write(addr, 16);
  q.leave();
  q.enter(c);
  q.record_read(addr, 16);
  q.record_read(addr, 16);
  q.record_read(addr, 8);
  q.leave();
  const auto edges = q.graph().edges();
  ASSERT_EQ(edges.size(), 1U);
  EXPECT_EQ(edges[0].bytes.count(), 40U);          // every access counted
  EXPECT_EQ(edges[0].unique_addresses, 16U);       // but 16 unique bytes
}

TEST(QuadProfiler, ReadOfUnwrittenMemoryCreatesNoEdge) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  const std::uint64_t addr = q.allocate(32);
  q.enter(f);
  q.record_read(addr, 32);
  q.leave();
  EXPECT_TRUE(q.graph().edges().empty());
  EXPECT_EQ(q.graph().function(f).reads, 32U);
}

TEST(QuadProfiler, SelfCommunicationRecorded) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  const std::uint64_t addr = q.allocate(8);
  q.enter(f);
  q.record_write(addr, 8);
  q.record_read(addr, 8);
  q.leave();
  EXPECT_EQ(q.graph().bytes_between(f, f).count(), 8U);
}

TEST(QuadProfiler, PartialOverwriteSplitsAttribution) {
  QuadProfiler q;
  const FunctionId a = q.declare("a");
  const FunctionId b = q.declare("b");
  const FunctionId c = q.declare("c");
  const std::uint64_t addr = q.allocate(16);
  q.enter(a);
  q.record_write(addr, 16);
  q.leave();
  q.enter(b);
  q.record_write(addr + 8, 8);
  q.leave();
  q.enter(c);
  q.record_read(addr, 16);
  q.leave();
  EXPECT_EQ(q.graph().bytes_between(a, c).count(), 8U);
  EXPECT_EQ(q.graph().bytes_between(b, c).count(), 8U);
}

TEST(QuadProfiler, NestedScopesAttributeToInnermost) {
  QuadProfiler q;
  const FunctionId outer = q.declare("outer");
  const FunctionId inner = q.declare("inner");
  const FunctionId reader = q.declare("reader");
  const std::uint64_t addr = q.allocate(4);
  q.enter(outer);
  q.enter(inner);
  q.record_write(addr, 4);
  q.leave();
  EXPECT_EQ(q.current(), outer);
  q.leave();
  q.enter(reader);
  q.record_read(addr, 4);
  q.leave();
  EXPECT_EQ(q.graph().bytes_between(inner, reader).count(), 4U);
  EXPECT_EQ(q.graph().bytes_between(outer, reader).count(), 0U);
}

TEST(QuadProfiler, CallCountsTracked) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  for (int i = 0; i < 3; ++i) {
    q.enter(f);
    q.leave();
  }
  EXPECT_EQ(q.graph().function(f).calls, 3U);
}

TEST(QuadProfiler, WorkUnitsAccumulate) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  q.enter(f);
  q.add_work(10);
  q.add_work(5);
  q.leave();
  EXPECT_EQ(q.graph().function(f).work_units, 15U);
}

TEST(QuadProfiler, AccessOutsideScopeThrows) {
  QuadProfiler q;
  (void)q.declare("f");
  EXPECT_THROW(q.record_write(0x1000, 4), ConfigError);
  EXPECT_THROW(q.record_read(0x1000, 4), ConfigError);
  EXPECT_THROW(q.add_work(1), ConfigError);
  EXPECT_THROW(q.leave(), ConfigError);
  EXPECT_THROW((void)q.current(), ConfigError);
}

TEST(QuadProfiler, EnterUndeclaredThrows) {
  QuadProfiler q;
  EXPECT_THROW(q.enter(4), ConfigError);
}

TEST(QuadProfiler, AllocationsDoNotOverlap) {
  QuadProfiler q;
  const std::uint64_t a = q.allocate(100);
  const std::uint64_t b = q.allocate(100);
  EXPECT_GE(b, a + 100);
  const std::uint64_t c = q.allocate(0);
  const std::uint64_t d = q.allocate(8);
  EXPECT_GT(d, c);
}

TEST(QuadProfiler, AllocationAlignment) {
  QuadProfiler q;
  (void)q.allocate(3, 1);
  const std::uint64_t aligned = q.allocate(16, 64);
  EXPECT_EQ(aligned % 64, 0U);
}

TEST(ScopedFunctionTest, RaiiEnterLeave) {
  QuadProfiler q;
  const FunctionId f = q.declare("f");
  {
    ScopedFunction scope{q, f};
    EXPECT_EQ(q.call_depth(), 1U);
  }
  EXPECT_EQ(q.call_depth(), 0U);
}

}  // namespace
}  // namespace hybridic::prof
