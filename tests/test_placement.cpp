#include "core/noc_placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hybridic::core {
namespace {

TEST(Placement, SingleAttachment) {
  PlacementProblem problem;
  problem.attachment_count = 1;
  const PlacementResult result = place_attachments(problem);
  EXPECT_EQ(result.node_of.size(), 1U);
  EXPECT_EQ(result.cost, 0U);
}

TEST(Placement, AssignmentIsAPermutation) {
  PlacementProblem problem;
  problem.attachment_count = 6;
  problem.traffic = {{0, 1, 100}, {2, 3, 50}, {4, 5, 10}};
  const PlacementResult result = place_attachments(problem);
  std::set<std::uint32_t> nodes(result.node_of.begin(),
                                result.node_of.end());
  EXPECT_EQ(nodes.size(), 6U);  // No two attachments share a router.
  for (const std::uint32_t node : nodes) {
    EXPECT_LT(node, result.mesh.node_count());
  }
}

TEST(Placement, CommunicatingPairEndsUpAdjacent) {
  // The paper's §IV-B requirement: a kernel and the local memory it feeds
  // should land on adjacent routers.
  PlacementProblem problem;
  problem.attachment_count = 4;
  problem.traffic = {{0, 1, 1'000'000}, {2, 3, 1'000'000}};
  const PlacementResult result = place_attachments(problem);
  EXPECT_EQ(result.mesh.distance(result.node_of[0], result.node_of[1]), 1U);
  EXPECT_EQ(result.mesh.distance(result.node_of[2], result.node_of[3]), 1U);
}

TEST(Placement, CostMatchesDefinition) {
  PlacementProblem problem;
  problem.attachment_count = 3;
  problem.traffic = {{0, 1, 10}, {1, 2, 5}};
  const PlacementResult result = place_attachments(problem);
  EXPECT_EQ(result.cost,
            placement_cost(problem, result.mesh, result.node_of));
}

TEST(Placement, BeatsWorstCaseAssignment) {
  PlacementProblem problem;
  problem.attachment_count = 9;
  // A chain 0-1-2-...-8 with heavy traffic.
  for (std::uint32_t i = 0; i + 1 < 9; ++i) {
    problem.traffic.emplace_back(i, i + 1, 1000);
  }
  const PlacementResult result = place_attachments(problem);
  // Identity assignment on a 3x3 mesh: chain cost has distance-3 jumps at
  // row boundaries.
  std::vector<std::uint32_t> identity(9);
  std::iota(identity.begin(), identity.end(), 0);
  const std::uint64_t identity_cost =
      placement_cost(problem, result.mesh, identity);
  EXPECT_LE(result.cost, identity_cost);
  // A perfect snake placement achieves all-adjacent: cost 8000; allow the
  // heuristic one extra hop.
  EXPECT_LE(result.cost, 9000U);
}

TEST(Placement, ZeroAttachmentsRejected) {
  EXPECT_THROW((void)place_attachments(PlacementProblem{}), ConfigError);
}

TEST(Placement, TrafficIndexOutOfRangeRejected) {
  PlacementProblem problem;
  problem.attachment_count = 2;
  problem.traffic = {{0, 5, 10}};
  EXPECT_THROW((void)place_attachments(problem), ConfigError);
}

TEST(Placement, DeterministicAcrossCalls) {
  PlacementProblem problem;
  problem.attachment_count = 7;
  problem.traffic = {{0, 1, 30}, {0, 2, 20}, {3, 4, 50}, {5, 6, 40},
                     {1, 3, 10}};
  const PlacementResult a = place_attachments(problem);
  const PlacementResult b = place_attachments(problem);
  EXPECT_EQ(a.node_of, b.node_of);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(PlacementAnnealed, NeverWorseThanGreedy) {
  Rng rng{99};
  for (int trial = 0; trial < 5; ++trial) {
    PlacementProblem problem;
    problem.attachment_count = 10;
    for (std::uint32_t a = 0; a < 10; ++a) {
      for (std::uint32_t b = a + 1; b < 10; ++b) {
        if (rng.chance(0.4)) {
          problem.traffic.emplace_back(a, b, rng.between(1, 1000));
        }
      }
    }
    const PlacementResult greedy = place_attachments(problem);
    const PlacementResult annealed =
        place_attachments_annealed(problem, 1234, 5000);
    EXPECT_LE(annealed.cost, greedy.cost);
  }
}

TEST(PlacementAnnealed, DeterministicForSeed) {
  PlacementProblem problem;
  problem.attachment_count = 8;
  problem.traffic = {{0, 7, 100}, {1, 6, 90}, {2, 5, 80}, {3, 4, 70}};
  const PlacementResult a = place_attachments_annealed(problem, 5, 2000);
  const PlacementResult b = place_attachments_annealed(problem, 5, 2000);
  EXPECT_EQ(a.node_of, b.node_of);
}

/// Property sweep: placement cost is bounded below by total traffic (every
/// communicating pair is at distance >= 1) and the bound is achieved when
/// a pairing-only pattern fits the mesh.
class PlacementBound : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PlacementBound, PairTrafficHitsLowerBound) {
  const std::uint32_t pairs = GetParam();
  PlacementProblem problem;
  problem.attachment_count = 2 * pairs;
  std::uint64_t total = 0;
  for (std::uint32_t p = 0; p < pairs; ++p) {
    problem.traffic.emplace_back(2 * p, 2 * p + 1, 100 + p);
    total += 100 + p;
  }
  const PlacementResult result = place_attachments(problem);
  EXPECT_GE(result.cost, total);
  // The heuristic should keep (almost) every pair adjacent.
  EXPECT_LE(result.cost, total + total / 2);
}

INSTANTIATE_TEST_SUITE_P(PairCounts, PlacementBound,
                         ::testing::Values(1, 2, 3, 4));

/// Exhaustive cross-check: for small instances the heuristic must match
/// the optimum found by trying every assignment of attachments to nodes.
class PlacementVsBruteForce
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementVsBruteForce, HeuristicIsNearOptimal) {
  Rng rng{GetParam()};
  PlacementProblem problem;
  problem.attachment_count = 5;  // Mesh2D::fitting(5) = 3x2 -> 6 nodes.
  for (std::uint32_t a = 0; a < 5; ++a) {
    for (std::uint32_t b = a + 1; b < 5; ++b) {
      if (rng.chance(0.6)) {
        problem.traffic.emplace_back(a, b, rng.between(1, 500));
      }
    }
  }
  const PlacementResult heuristic = place_attachments(problem);

  // Brute force over all injective assignments of 5 items to 6 nodes.
  const noc::Mesh2D mesh = heuristic.mesh;
  std::vector<std::uint32_t> nodes(mesh.node_count());
  std::iota(nodes.begin(), nodes.end(), 0);
  std::uint64_t best = UINT64_MAX;
  std::vector<std::uint32_t> perm(nodes);
  std::sort(perm.begin(), perm.end());
  do {
    const std::vector<std::uint32_t> assignment(perm.begin(),
                                                perm.begin() + 5);
    best = std::min(best, placement_cost(problem, mesh, assignment));
  } while (std::next_permutation(perm.begin(), perm.end()));

  EXPECT_GE(heuristic.cost, best);
  // Hill climbing from the greedy seed lands within 15% of optimal on
  // these instance sizes.
  EXPECT_LE(heuristic.cost, best + best * 15 / 100 + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementVsBruteForce,
                         ::testing::Values(3, 7, 12, 25));

}  // namespace
}  // namespace hybridic::core
