// Property tests for the level-one board partitioner: coverage (every
// kernel on exactly one in-range board), the byte-conservation ledger
// (intra + cut == profiled unique bytes), the balance cap, determinism
// (pure function of graph/kernels/boards/seed), and the trivial
// single-board degenerate case.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/board_partition.hpp"
#include "core/kernel_model.hpp"
#include "util/error.hpp"

namespace hybridic::core {
namespace {

apps::SyntheticConfig config_for(std::uint64_t seed,
                                 std::uint32_t kernels = 8) {
  apps::SyntheticConfig config;
  config.kernel_count = kernels;
  config.kernel_edge_probability = 0.45;
  config.seed = seed;
  return config;
}

std::uint64_t profiled_unique_bytes(const prof::CommGraph& graph) {
  std::uint64_t total = 0;
  for (const prof::CommEdge& edge : graph.edges()) {
    if (edge.producer != edge.consumer) {
      total += edge_volume(edge).count();
    }
  }
  return total;
}

TEST(BoardPartition, EveryKernelOnExactlyOneInRangeBoard) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    const apps::ProfiledApp app = apps::make_synthetic_app(config_for(seed));
    const sys::AppSchedule schedule = app.schedule();
    for (std::uint32_t boards = 2; boards <= 4; ++boards) {
      BoardPartitionInput input;
      input.graph = schedule.graph;
      input.kernels = schedule.specs;
      input.board_count = boards;
      const BoardPartition part = partition_boards(input);

      ASSERT_EQ(part.board_of_kernel.size(), schedule.specs.size());
      for (std::size_t k = 0; k < schedule.specs.size(); ++k) {
        EXPECT_LT(part.board_of_kernel[k], boards);
        const auto it =
            part.board_of_function.find(schedule.specs[k].function);
        ASSERT_NE(it, part.board_of_function.end())
            << "kernel " << schedule.specs[k].name << " unmapped";
        EXPECT_EQ(it->second, part.board_of_kernel[k]);
      }
      // board_of_function lists kernels only — one entry per kernel.
      EXPECT_EQ(part.board_of_function.size(), schedule.specs.size());
    }
  }
}

TEST(BoardPartition, ByteLedgerConservesProfiledTraffic) {
  for (const std::uint64_t seed : {2ULL, 11ULL, 40ULL}) {
    const apps::ProfiledApp app = apps::make_synthetic_app(config_for(seed));
    const sys::AppSchedule schedule = app.schedule();
    const std::uint64_t profiled = profiled_unique_bytes(*schedule.graph);
    for (std::uint32_t boards = 1; boards <= 4; ++boards) {
      BoardPartitionInput input;
      input.graph = schedule.graph;
      input.kernels = schedule.specs;
      input.board_count = boards;
      const BoardPartition part = partition_boards(input);

      std::uint64_t intra = 0;
      for (const Bytes bytes : part.intra_board_bytes) {
        intra += bytes.count();
      }
      EXPECT_EQ(intra + part.cut_bytes.count(), profiled)
          << "boards=" << boards << " seed=" << seed;
      EXPECT_EQ(part.total_bytes.count(), profiled);
    }
  }
}

TEST(BoardPartition, RespectsTheBalanceCap) {
  for (const std::uint64_t seed : {3ULL, 17ULL}) {
    const apps::ProfiledApp app =
        apps::make_synthetic_app(config_for(seed, 9));
    const sys::AppSchedule schedule = app.schedule();
    for (std::uint32_t boards = 2; boards <= 4; ++boards) {
      BoardPartitionInput input;
      input.graph = schedule.graph;
      input.kernels = schedule.specs;
      input.board_count = boards;
      const BoardPartition part = partition_boards(input);

      const std::uint64_t cap =
          (schedule.specs.size() + boards - 1) / boards;
      std::vector<std::uint64_t> load(boards, 0);
      for (const std::uint32_t board : part.board_of_kernel) {
        ++load[board];
      }
      for (std::uint32_t b = 0; b < boards; ++b) {
        EXPECT_LE(load[b], cap) << "board " << b << " over the cap";
      }
    }
  }
}

TEST(BoardPartition, DeterministicPureFunctionOfItsInput) {
  const apps::ProfiledApp app = apps::make_synthetic_app(config_for(5));
  const sys::AppSchedule schedule = app.schedule();
  BoardPartitionInput input;
  input.graph = schedule.graph;
  input.kernels = schedule.specs;
  input.board_count = 3;
  input.seed = 9;

  const BoardPartition a = partition_boards(input);
  const BoardPartition b = partition_boards(input);
  EXPECT_EQ(a.board_of_kernel, b.board_of_kernel);
  EXPECT_EQ(a.cut_bytes.count(), b.cut_bytes.count());
  EXPECT_EQ(a.refinement_moves, b.refinement_moves);
}

TEST(BoardPartition, SingleBoardIsTheTrivialPartition) {
  const apps::ProfiledApp app = apps::make_synthetic_app(config_for(6));
  const sys::AppSchedule schedule = app.schedule();
  BoardPartitionInput input;
  input.graph = schedule.graph;
  input.kernels = schedule.specs;
  input.board_count = 1;
  const BoardPartition part = partition_boards(input);

  for (const std::uint32_t board : part.board_of_kernel) {
    EXPECT_EQ(board, 0U);
  }
  EXPECT_EQ(part.cut_bytes.count(), 0U);
  EXPECT_EQ(part.intra_board_bytes.size(), 1U);
  EXPECT_EQ(part.intra_board_bytes[0].count(), part.total_bytes.count());
}

TEST(BoardPartition, RejectsZeroBoards) {
  const apps::ProfiledApp app = apps::make_synthetic_app(config_for(8));
  const sys::AppSchedule schedule = app.schedule();
  BoardPartitionInput input;
  input.graph = schedule.graph;
  input.kernels = schedule.specs;
  input.board_count = 0;
  EXPECT_THROW((void)partition_boards(input), ConfigError);
}

TEST(BoardPartition, TopologyNamesRoundTrip) {
  EXPECT_EQ(parse_board_topology("chain"), BoardTopology::kChain);
  EXPECT_EQ(parse_board_topology("ring"), BoardTopology::kRing);
  EXPECT_EQ(parse_board_topology("mesh"), BoardTopology::kMesh);
  EXPECT_STREQ(to_string(BoardTopology::kRing), "ring");
  EXPECT_THROW((void)parse_board_topology("torus"), ConfigError);
}

}  // namespace
}  // namespace hybridic::core
