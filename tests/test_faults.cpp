// Fault-injection subsystem tests: per-site RNG stream independence, the
// LinkState survivor-graph router, CRC retransmission under flit corruption,
// blackholed sends across fault-disconnected pairs, DMA bus-retry budgets,
// and the watchdog-expired wait_all path.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "apps/synthetic.hpp"
#include "bus/bus.hpp"
#include "bus/dma.hpp"
#include "faults/injector.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "sys/engine/ops.hpp"
#include "sys/executor.hpp"
#include "sys/platform.hpp"
#include "util/error.hpp"

namespace hybridic {
namespace {

using faults::FaultInjector;
using faults::FaultSpec;
using faults::SiteKind;

// ---------------------------------------------------------------------------
// Injector: deterministic, creation-order-free per-site streams.
// ---------------------------------------------------------------------------

TEST(FaultInjectorRng, StreamsIndependentOfCreationOrder) {
  FaultSpec spec;
  spec.seed = 42;
  FaultInjector forward{spec};
  FaultInjector backward{spec};
  // Touch sites in opposite orders; each site's stream must produce the
  // same sequence regardless.
  std::vector<std::uint64_t> a;
  for (std::uint64_t site = 0; site < 4; ++site) {
    a.push_back(forward.stream(SiteKind::kNocFlit, site).next());
  }
  std::vector<std::uint64_t> b(4);
  for (std::uint64_t site = 4; site-- > 0;) {
    b[site] = backward.stream(SiteKind::kNocFlit, site).next();
  }
  EXPECT_EQ(a, b);
}

TEST(FaultInjectorRng, KindAndSiteSeparateStreams) {
  FaultSpec spec;
  spec.seed = 7;
  FaultInjector injector{spec};
  const std::uint64_t flit0 = injector.stream(SiteKind::kNocFlit, 0).next();
  const std::uint64_t flit1 = injector.stream(SiteKind::kNocFlit, 1).next();
  const std::uint64_t bus0 = injector.stream(SiteKind::kBus, 0).next();
  EXPECT_NE(flit0, flit1);
  EXPECT_NE(flit0, bus0);
}

TEST(FaultInjectorRng, ZeroRateBurnsNoDraws) {
  FaultSpec spec;
  spec.seed = 3;
  FaultInjector with_draws{spec};
  FaultInjector without{spec};
  EXPECT_FALSE(without.draw(SiteKind::kSdram, 0, 0.0));  // No stream touched.
  // The first real draw after a zero-rate draw matches a fresh injector's.
  const bool first = with_draws.draw(SiteKind::kSdram, 0, 0.5);
  const bool second = without.draw(SiteKind::kSdram, 0, 0.5);
  EXPECT_EQ(first, second);
}

TEST(FaultInjectorRng, EventLogCapsPerKindButCountsDrops) {
  FaultInjector injector{FaultSpec{}};
  for (int i = 0; i < 300; ++i) {
    injector.record(faults::FaultKind::kFlitCorruption, 0.0, 4, "x");
  }
  EXPECT_EQ(injector.events().size(), 256U);
  EXPECT_EQ(injector.events_dropped(), 44U);
}

// ---------------------------------------------------------------------------
// LinkState: BFS routing over the surviving graph.
// ---------------------------------------------------------------------------

TEST(LinkState, RejectsBadLinkSpecs) {
  const noc::Mesh2D mesh{3, 3};
  EXPECT_THROW(noc::LinkState(mesh, {{0, 99}}), ConfigError);
  EXPECT_THROW(noc::LinkState(mesh, {{0, 4}}), ConfigError);  // Diagonal.
  EXPECT_THROW(noc::LinkState(mesh, {{2, 2}}), ConfigError);  // Self.
}

TEST(LinkState, RoutesAroundOneDeadLink) {
  // 3x3 mesh, kill 0-1 ((0,0)-(1,0)). Node 0 must still reach every node
  // via its surviving north link.
  const noc::Mesh2D mesh{3, 3};
  noc::LinkState state{mesh, {{0, 1}}};
  EXPECT_EQ(state.dead_link_count(), 1U);
  EXPECT_FALSE(state.link_up(0, noc::PortDir::kEast));
  EXPECT_TRUE(state.link_up(0, noc::PortDir::kNorth));
  for (std::uint32_t dst = 0; dst < 9; ++dst) {
    EXPECT_TRUE(state.reachable(0, dst)) << dst;
  }
  // First hop toward node 2 cannot be the dead east link.
  const auto hop = state.next_hop(0, 2);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, noc::PortDir::kNorth);
  // Walking next_hop from 0 to 2 terminates (loop-free) within the mesh.
  std::uint32_t current = 0;
  for (int steps = 0; steps < 9; ++steps) {
    const auto dir = state.next_hop(current, 2);
    ASSERT_TRUE(dir.has_value());
    if (*dir == noc::PortDir::kLocal) {
      break;
    }
    current = *mesh.neighbor(current, *dir);
  }
  EXPECT_EQ(current, 2U);
}

TEST(LinkState, DetectsDisconnection) {
  // Kill both links of corner node 0 on a 2x2 mesh: unreachable.
  const noc::Mesh2D mesh{2, 2};
  noc::LinkState state{mesh, {{0, 1}, {0, 2}}};
  EXPECT_FALSE(state.reachable(0, 3));
  EXPECT_FALSE(state.next_hop(0, 3).has_value());
  EXPECT_TRUE(state.reachable(1, 3));
  EXPECT_TRUE(state.reachable(0, 0));  // Self is always reachable.
}

// ---------------------------------------------------------------------------
// Network-level: corruption, CRC retransmission, blackholes.
// ---------------------------------------------------------------------------

struct FaultyNet {
  explicit FaultyNet(FaultSpec spec)
      : injector(spec),
        clock{"noc", Frequency::megahertz(150)},
        network{"noc", engine, clock, noc::Mesh2D{3, 3},
                noc::NetworkConfig{}} {
    network.attach_adapter(0, "src", noc::AdapterKind::kAccelerator);
    network.attach_adapter(8, "dst", noc::AdapterKind::kLocalMemory);
    network.set_faults(&injector);
  }

  Picoseconds send_and_run(Bytes bytes) {
    Picoseconds delivered{0};
    network.send(0, 8, bytes, [&](std::uint64_t, Bytes, Picoseconds at) {
      delivered = at;
    });
    engine.run();
    return delivered;
  }

  FaultInjector injector;
  sim::Engine engine;
  sim::ClockDomain clock;
  noc::Network network;
};

TEST(NocFaults, CrcRetransmissionDeliversCleanUnderCorruption) {
  FaultSpec spec;
  spec.seed = 11;
  spec.flit_corruption_rate = 0.02;
  spec.resilience.noc_crc = true;
  spec.resilience.noc_max_retransmits = 64;
  FaultyNet net{spec};
  const Picoseconds delivered = net.send_and_run(Bytes{16'384});
  EXPECT_GT(delivered.count(), 0U);
  const faults::FaultStats& stats = net.injector.stats();
  EXPECT_GT(stats.flits_corrupted, 0U);
  EXPECT_GT(stats.packets_retransmitted, 0U);
  // Every corrupted packet recovered within budget: nothing delivered bad.
  EXPECT_EQ(stats.retransmit_give_ups, 0U);
  EXPECT_EQ(stats.corrupted_bytes, 0U);
}

TEST(NocFaults, RetransmissionSlowsDelivery) {
  FaultSpec clean_spec;
  clean_spec.dead_links = {{3, 4}};  // Irrelevant link: injector exists,
                                     // corruption off, path untouched.
  FaultyNet clean{clean_spec};
  const Picoseconds base = clean.send_and_run(Bytes{16'384});

  FaultSpec spec;
  spec.seed = 11;
  spec.flit_corruption_rate = 0.02;
  spec.resilience.noc_crc = true;
  spec.resilience.noc_max_retransmits = 64;
  FaultyNet faulty{spec};
  const Picoseconds recovered = faulty.send_and_run(Bytes{16'384});
  EXPECT_GT(recovered.count(), base.count());
}

TEST(NocFaults, WithoutCrcCorruptedBytesAreDelivered) {
  FaultSpec spec;
  spec.seed = 11;
  spec.flit_corruption_rate = 0.02;
  spec.resilience.noc_crc = false;
  FaultyNet net{spec};
  const Picoseconds delivered = net.send_and_run(Bytes{16'384});
  EXPECT_GT(delivered.count(), 0U);
  const faults::FaultStats& stats = net.injector.stats();
  EXPECT_GT(stats.flits_corrupted, 0U);
  EXPECT_EQ(stats.packets_retransmitted, 0U);
  EXPECT_GT(stats.corrupted_bytes, 0U);
}

TEST(NocFaults, GiveUpAfterBudgetDeliversCorrupt) {
  FaultSpec spec;
  spec.seed = 5;
  spec.flit_corruption_rate = 1.0;  // Every flit corrupted: CRC can't win.
  spec.resilience.noc_crc = true;
  spec.resilience.noc_max_retransmits = 2;
  FaultyNet net{spec};
  const Picoseconds delivered = net.send_and_run(Bytes{256});
  EXPECT_GT(delivered.count(), 0U);  // Still delivered, just corrupt.
  const faults::FaultStats& stats = net.injector.stats();
  EXPECT_GT(stats.retransmit_give_ups, 0U);
  EXPECT_GT(stats.corrupted_bytes, 0U);
}

TEST(NocFaults, SameSeedSameStats) {
  FaultSpec spec;
  spec.seed = 99;
  spec.flit_corruption_rate = 0.05;
  spec.resilience.noc_crc = true;
  FaultyNet one{spec};
  FaultyNet two{spec};
  const Picoseconds a = one.send_and_run(Bytes{8'192});
  const Picoseconds b = two.send_and_run(Bytes{8'192});
  EXPECT_EQ(a, b);
  EXPECT_EQ(one.injector.stats().flits_corrupted,
            two.injector.stats().flits_corrupted);
  EXPECT_EQ(one.injector.stats().packets_retransmitted,
            two.injector.stats().packets_retransmitted);
}

TEST(NocFaults, DisconnectedSendIsBlackholedNotDelivered) {
  FaultSpec spec;
  spec.dead_links = {{0, 1}, {0, 3}};  // Isolate corner node 0 on 3x3.
  FaultyNet net{spec};
  const Picoseconds delivered = net.send_and_run(Bytes{1'024});
  EXPECT_EQ(delivered.count(), 0U);  // Callback never ran.
  EXPECT_EQ(net.injector.stats().messages_lost, 1U);
}

TEST(NocFaults, ReroutedMeshStillDeliversEverything) {
  FaultSpec spec;
  spec.dead_links = {{0, 1}};  // Dimension-order route 0->8 starts east.
  FaultyNet net{spec};
  EXPECT_TRUE(net.network.route_exists(0, 8));
  EXPECT_TRUE(net.network.route_detoured(0, 8));
  const Picoseconds delivered = net.send_and_run(Bytes{4'096});
  EXPECT_GT(delivered.count(), 0U);
  EXPECT_EQ(net.injector.stats().messages_lost, 0U);
}

// ---------------------------------------------------------------------------
// Bus/DMA: transfer errors against the retry budget.
// ---------------------------------------------------------------------------

TEST(BusFaults, RetryBudgetSpentThenChunksAcceptedCorrupt) {
  FaultSpec spec;
  spec.seed = 1;
  spec.bus_error_rate = 1.0;  // Every chunk errors.
  spec.resilience.bus_retry_budget = 2;
  FaultInjector injector{spec};

  const sim::ClockDomain bus_clock{"bus", Frequency::megahertz(100)};
  const sim::ClockDomain host_clock{"host", Frequency::megahertz(400)};
  const sim::ClockDomain kernel_clock{"kernel", Frequency::megahertz(100)};
  sim::Engine engine;
  mem::Sdram sdram{"sdram", bus_clock, mem::SdramConfig{8, Cycles{20}}};
  bus::Bus bus{"plb", engine, bus_clock,
               bus::BusConfig{8, 16, Cycles{2}, Cycles{1}, 2},
               std::make_unique<bus::PriorityArbiter>()};
  bus::Dma dma{"dma", engine, bus, sdram, host_clock,
               bus::DmaConfig{Cycles{40}, 1024}, 1};
  mem::Bram bram{"bram", kernel_clock, Bytes{64 * 1024}, 4};
  bus.set_faults(&injector);
  dma.set_faults(&injector);

  bool finished = false;
  dma.transfer(bus::DmaDirection::kMemToLocal, Bytes{2'048}, bram,
               [&](Picoseconds) { finished = true; });
  engine.run();
  EXPECT_TRUE(finished);
  const faults::FaultStats& stats = injector.stats();
  EXPECT_EQ(stats.bus_retries, 2U);  // Budget fully spent.
  // 2 original chunks + 2 retried chunks all errored; the ones past the
  // budget were accepted corrupted.
  EXPECT_EQ(stats.bus_errors, 4U);
  EXPECT_EQ(stats.corrupted_bytes, 2'048U);
}

TEST(BusFaults, StallsDelayGrantsDeterministically) {
  FaultSpec spec;
  spec.seed = 21;
  spec.bus_stall_rate = 1.0;
  spec.bus_stall_cycles = 16;

  const auto run_once = [&](FaultInjector* injector) {
    const sim::ClockDomain bus_clock{"bus", Frequency::megahertz(100)};
    const sim::ClockDomain host_clock{"host", Frequency::megahertz(400)};
    const sim::ClockDomain kernel_clock{"kernel",
                                        Frequency::megahertz(100)};
    sim::Engine engine;
    mem::Sdram sdram{"sdram", bus_clock, mem::SdramConfig{8, Cycles{20}}};
    bus::Bus bus{"plb", engine, bus_clock,
                 bus::BusConfig{8, 16, Cycles{2}, Cycles{1}, 2},
                 std::make_unique<bus::PriorityArbiter>()};
    bus::Dma dma{"dma", engine, bus, sdram, host_clock,
                 bus::DmaConfig{Cycles{40}, 1024}, 1};
    mem::Bram bram{"bram", kernel_clock, Bytes{64 * 1024}, 4};
    if (injector != nullptr) {
      bus.set_faults(injector);
      dma.set_faults(injector);
    }
    Picoseconds done{0};
    dma.transfer(bus::DmaDirection::kMemToLocal, Bytes{1'024}, bram,
                 [&](Picoseconds at) { done = at; });
    engine.run();
    return done;
  };

  const Picoseconds clean = run_once(nullptr);
  FaultInjector stalling{spec};
  const Picoseconds stalled = run_once(&stalling);
  EXPECT_GT(stalled.count(), clean.count());
  EXPECT_GT(stalling.stats().bus_stalls, 0U);
  FaultInjector again{spec};
  EXPECT_EQ(run_once(&again), stalled);  // Same seed, same timing.
}

// ---------------------------------------------------------------------------
// Memory bit flips.
// ---------------------------------------------------------------------------

TEST(MemFaults, SdramAndBramBitFlipsAreCounted) {
  sys::PlatformConfig config;
  config.faults.seed = 2;
  config.faults.sdram_bitflip_rate = 1.0;
  config.faults.bram_bitflip_rate = 1.0;
  sys::Platform platform{config, 1, nullptr};
  ASSERT_NE(platform.fault_injector(), nullptr);
  bool finished = false;
  platform.dma().transfer(bus::DmaDirection::kMemToLocal, Bytes{512},
                          platform.bram(0),
                          [&](Picoseconds) { finished = true; });
  platform.engine().run();
  EXPECT_TRUE(finished);
  EXPECT_GE(platform.fault_injector()->stats().mem_bitflips, 2U);
}

// ---------------------------------------------------------------------------
// Watchdog: livelock (events never stop) vs deadlock (queue drained).
// ---------------------------------------------------------------------------

TEST(Watchdog, ExpiryNamesStuckOpsAndSimulatedTime) {
  sys::PlatformConfig config;
  config.watchdog_seconds = 0.001;
  sys::Platform platform{config, 0, nullptr};
  // An event far beyond the watchdog keeps the queue non-empty, so this is
  // a watchdog expiry, not a drain.
  platform.engine().schedule_at(Picoseconds{2'000'000'000'000ULL}, [] {});
  sys::engine::Pending stuck;
  stuck.label = "k9/noc#0->1";
  try {
    sys::engine::wait_all(platform, {&stuck});
    FAIL() << "wait_all should have thrown";
  } catch (const SimTimeoutError& e) {
    EXPECT_TRUE(e.watchdog_expired());
    ASSERT_EQ(e.stuck_ops().size(), 1U);
    EXPECT_EQ(e.stuck_ops()[0], "k9/noc#0->1");
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Property: a faulted synthetic run terminates cleanly or times out loudly.
// ---------------------------------------------------------------------------

/// Seeded synthetic apps under nonzero fault rates across every fabric.
/// The only acceptable outcomes are (a) the run completes with a
/// well-formed trace or (b) SimTimeoutError; hanging is caught by the
/// ctest-level timeout, silent trace corruption by the checks below.
class FaultedSynthetic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultedSynthetic, TerminatesOrTimesOutWithoutCorruptingTheTrace) {
  apps::SyntheticConfig config;
  config.seed = GetParam();
  config.kernel_count = 4;
  config.max_edge_bytes = 8192;
  config.max_work_units = 20000;
  apps::ProfiledApp app = apps::make_synthetic_app(config);
  const sys::AppSchedule schedule = app.schedule();

  sys::PlatformConfig platform;
  platform.faults.seed = GetParam() + 1;
  platform.faults.flit_corruption_rate = 0.05;
  platform.faults.bus_error_rate = 0.02;
  platform.faults.bus_stall_rate = 0.02;
  platform.faults.sdram_bitflip_rate = 0.001;
  // A short watchdog keeps the failure mode loud even if a fault wedges
  // the event queue.
  platform.watchdog_seconds = 5.0;

  try {
    const sys::RunResult run = run_baseline(schedule, platform);
    EXPECT_GT(run.total_seconds, 0.0);
    EXPECT_TRUE(std::isfinite(run.total_seconds));
    for (const sys::engine::TraceEvent& event : run.trace.events()) {
      EXPECT_LE(event.start_seconds, event.end_seconds + 1e-15);
      EXPECT_GE(event.start_seconds, 0.0);
      EXPECT_LE(event.end_seconds, run.total_seconds * (1.0 + 1e-9));
    }
    // Determinism holds under faults too: the injector streams are seeded.
    const sys::RunResult again = run_baseline(schedule, platform);
    EXPECT_EQ(run.total_seconds, again.total_seconds);
    EXPECT_EQ(run.trace.events().size(), again.trace.events().size());
    EXPECT_EQ(run.fault_stats.flits_corrupted,
              again.fault_stats.flits_corrupted);
  } catch (const SimTimeoutError& e) {
    // A loud, diagnosable timeout is an acceptable outcome.
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultedSynthetic,
                         ::testing::Values(3, 8, 21, 34, 55));

}  // namespace
}  // namespace hybridic
