#include <gtest/gtest.h>

#include "core/energy_model.hpp"
#include "core/interconnect_design.hpp"
#include "core/resource_model.hpp"

namespace hybridic::core {
namespace {

TEST(ComponentCosts, MatchPaperTableTwo) {
  EXPECT_EQ(component_cost(Component::kBus).luts, 1048U);
  EXPECT_EQ(component_cost(Component::kBus).regs, 188U);
  EXPECT_DOUBLE_EQ(component_cost(Component::kBus).fmax_mhz, 345.8);

  EXPECT_EQ(component_cost(Component::kCrossbar).luts, 201U);
  EXPECT_EQ(component_cost(Component::kCrossbar).regs, 200U);

  EXPECT_EQ(component_cost(Component::kRouter).luts, 309U);
  EXPECT_EQ(component_cost(Component::kRouter).regs, 353U);
  EXPECT_DOUBLE_EQ(component_cost(Component::kRouter).fmax_mhz, 150.0);

  EXPECT_EQ(component_cost(Component::kNaAccelerator).luts, 396U);
  EXPECT_EQ(component_cost(Component::kNaAccelerator).regs, 426U);

  EXPECT_EQ(component_cost(Component::kNaLocalMemory).luts, 60U);
  EXPECT_EQ(component_cost(Component::kNaLocalMemory).regs, 114U);
}

TEST(ComponentCosts, PaperClaimFourRoutersVsSharedMemory) {
  // §IV-B: "HW resources usage for four routers is ~5x larger than the
  // shared local memory solution" — our Table II numbers reproduce that.
  const std::uint64_t four_routers = 4 * component_cost(Component::kRouter).luts;
  const std::uint64_t shared = component_cost(Component::kCrossbar).luts;
  EXPECT_GE(four_routers, 5 * shared);
}

TEST(ComponentCosts, Names) {
  EXPECT_EQ(to_string(Component::kRouter), "NoC Router");
  EXPECT_EQ(to_string(Component::kNaLocalMemory), "NA local memory");
}

TEST(Resources, Addition) {
  Resources a{100, 200};
  a += Resources{10, 20};
  EXPECT_EQ(a.luts, 110U);
  EXPECT_EQ(a.regs, 220U);
  const Resources b = a + Resources{1, 1};
  EXPECT_EQ(b.luts, 111U);
}

/// A design with one crossbar pair, one direct pair, and a 3-router NoC.
DesignResult make_design() {
  DesignResult design;
  for (int i = 0; i < 6; ++i) {
    KernelInstance inst;
    inst.name = "k" + std::to_string(i);
    inst.spec_index = static_cast<std::size_t>(i);
    inst.mapping = InterconnectClass{KernelConn::kK1, MemConn::kM1};
    design.instances.push_back(inst);
  }
  design.shared_pairs.push_back(
      SharedMemoryPairing{0, 1, Bytes{100}, mem::SharingStyle::kCrossbar});
  design.shared_pairs.push_back(
      SharedMemoryPairing{2, 3, Bytes{100}, mem::SharingStyle::kDirect});
  NocPlan plan;
  plan.mesh_width = 2;
  plan.mesh_height = 2;
  plan.attachments = {
      NocAttachment{4, NocNodeKind::kKernel, 0},
      NocAttachment{5, NocNodeKind::kKernel, 1},
      NocAttachment{5, NocNodeKind::kLocalMemory, 2},
  };
  design.noc = plan;
  design.instances[5].mapping =
      InterconnectClass{KernelConn::kK2, MemConn::kM3};  // needs a mux
  return design;
}

TEST(InterconnectResources, CountsComponents) {
  const DesignResult design = make_design();
  const Resources r = interconnect_resources(design);
  // 1 crossbar + 3 routers + 2 accel NAs + 1 mem NA + 1 mux.
  const std::uint64_t expected_luts = 201 + 3 * 309 + 2 * 396 + 60 + 48;
  EXPECT_EQ(r.luts, expected_luts);
  EXPECT_EQ(mux_count(design), 1U);
}

TEST(InterconnectResources, DirectSharingIsFree) {
  DesignResult design;
  KernelInstance a;
  KernelInstance b;
  design.instances = {a, b};
  design.shared_pairs.push_back(
      SharedMemoryPairing{0, 1, Bytes{10}, mem::SharingStyle::kDirect});
  EXPECT_EQ(interconnect_resources(design).luts, 0U);
}

TEST(KernelResources, DuplicationCountsTwice) {
  std::vector<KernelSpec> specs(1);
  specs[0].area_luts = 500;
  specs[0].area_regs = 700;
  DesignResult design;
  KernelInstance first;
  first.spec_index = 0;
  KernelInstance second = first;
  design.instances = {first, second};
  const Resources r = kernel_resources(design, specs);
  EXPECT_EQ(r.luts, 1000U);
  EXPECT_EQ(r.regs, 1400U);
}

TEST(KernelResources, MissingSpecRejected) {
  DesignResult design;
  KernelInstance inst;
  inst.spec_index = 3;
  design.instances = {inst};
  EXPECT_THROW((void)kernel_resources(design, {}), ConfigError);
}

TEST(EnergyModel, PowerScalesWithResources) {
  const PowerModel model;
  const double small = system_power_watts(Resources{10'000, 12'000}, model);
  const double large = system_power_watts(Resources{20'000, 24'000}, model);
  EXPECT_GT(large, small);
  EXPECT_GT(small, model.static_watts);  // static floor
}

TEST(EnergyModel, StaticPowerDominates) {
  // The paper: "power consumption is almost identical" between systems —
  // i.e. doubling the interconnect logic changes power by only a few %.
  const PowerModel model;
  const double base = system_power_watts(Resources{12'000, 12'000}, model);
  const double plus = system_power_watts(Resources{15'000, 15'000}, model);
  EXPECT_LT((plus - base) / base, 0.10);
}

TEST(EnergyModel, EnergyIsPowerTimesTime) {
  EXPECT_DOUBLE_EQ(energy_joules(2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(energy_joules(1.5, 0.0), 0.0);
}

TEST(EnergyModel, FasterExecutionSavesEnergyDespiteMorePower) {
  // The paper's core energy argument (Fig. 9).
  const PowerModel model;
  const double p_base = system_power_watts(Resources{11'755, 11'910}, model);
  const double p_ours = system_power_watts(Resources{20'837, 20'900}, model);
  const double e_base = energy_joules(p_base, 1.0);
  const double e_ours = energy_joules(p_ours, 1.0 / 2.87);
  EXPECT_LT(e_ours, e_base);
  EXPECT_LT(e_ours / e_base, 0.45);
}

}  // namespace
}  // namespace hybridic::core
