#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace hybridic::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now().count(), 0U);
}

TEST(Engine, RunExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(Picoseconds{20}, [&] { order.push_back(2); });
  engine.schedule_at(Picoseconds{10}, [&] { order.push_back(1); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.now().count(), 20U);
  EXPECT_EQ(engine.events_executed(), 2U);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine engine;
  Picoseconds fired{0};
  engine.schedule_at(Picoseconds{100}, [&] {
    engine.schedule_after(Picoseconds{50},
                          [&] { fired = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired.count(), 150U);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(Picoseconds{100}, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(Picoseconds{50}, [] {}),
               SimulationError);
}

TEST(Engine, RunRespectsLimit) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Picoseconds{10}, [&] { ++fired; });
  engine.schedule_at(Picoseconds{1000}, [&] { ++fired; });
  engine.run(Picoseconds{100});
  EXPECT_EQ(fired, 1);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilPredicate) {
  Engine engine;
  int counter = 0;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    engine.schedule_at(Picoseconds{i * 10}, [&] { ++counter; });
  }
  const bool hit = engine.run_until([&] { return counter == 4; });
  EXPECT_TRUE(hit);
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(engine.now().count(), 40U);
}

TEST(Engine, RunUntilReturnsFalseWhenQueueDrains) {
  Engine engine;
  engine.schedule_at(Picoseconds{1}, [] {});
  EXPECT_FALSE(engine.run_until([] { return false; }));
}

/// A ticking component that counts a fixed number of edges then suspends.
class Counter : public Ticking {
public:
  explicit Counter(int limit) : limit_(limit) {}
  bool tick(Picoseconds now) override {
    ticks.push_back(now);
    return static_cast<int>(ticks.size()) < limit_;
  }
  std::vector<Picoseconds> ticks;

private:
  int limit_;
};

TEST(Engine, TickingRunsOnClockEdges) {
  Engine engine;
  ClockDomain clock{"k", Frequency::megahertz(100)};  // 10 ns
  Counter counter{3};
  const std::size_t handle = engine.add_ticking(counter, clock);
  engine.activate(handle);
  engine.run();
  ASSERT_EQ(counter.ticks.size(), 3U);
  EXPECT_EQ(counter.ticks[0].count(), 10'000U);
  EXPECT_EQ(counter.ticks[1].count(), 20'000U);
  EXPECT_EQ(counter.ticks[2].count(), 30'000U);
}

TEST(Engine, SuspendedTickingCanBeReactivated) {
  Engine engine;
  ClockDomain clock{"k", Frequency::megahertz(100)};
  Counter counter{1};  // Suspends after one tick.
  const std::size_t handle = engine.add_ticking(counter, clock);
  engine.activate(handle);
  engine.run();
  EXPECT_EQ(counter.ticks.size(), 1U);
  counter = Counter{1};
  engine.activate(handle);
  engine.run();
  EXPECT_EQ(counter.ticks.size(), 1U);
  EXPECT_GT(counter.ticks[0].count(), 10'000U);
}

TEST(Engine, RedundantActivationIsSafe) {
  Engine engine;
  ClockDomain clock{"k", Frequency::megahertz(100)};
  Counter counter{2};
  const std::size_t handle = engine.add_ticking(counter, clock);
  engine.activate(handle);
  engine.activate(handle);
  engine.activate(handle);
  engine.run();
  EXPECT_EQ(counter.ticks.size(), 2U);  // No duplicate ticks.
}

TEST(Engine, InvalidTickingHandleThrows) {
  Engine engine;
  EXPECT_THROW(engine.activate(3), SimulationError);
}

TEST(Engine, ResetClearsState) {
  Engine engine;
  engine.schedule_at(Picoseconds{10}, [] {});
  engine.run();
  engine.reset();
  EXPECT_EQ(engine.now().count(), 0U);
  EXPECT_EQ(engine.events_executed(), 0U);
}

TEST(ClockDomain, EdgeArithmetic) {
  ClockDomain clock{"c", Frequency::megahertz(100)};
  EXPECT_EQ(clock.edge(0).count(), 0U);
  EXPECT_EQ(clock.edge(5).count(), 50'000U);
  EXPECT_EQ(clock.next_edge_index(Picoseconds{0}), 0U);
  EXPECT_EQ(clock.next_edge_index(Picoseconds{1}), 1U);
  EXPECT_EQ(clock.next_edge_index(Picoseconds{10'000}), 1U);
  EXPECT_EQ(clock.align_up(Picoseconds{10'001}).count(), 20'000U);
  EXPECT_EQ(clock.span(Cycles{3}).count(), 30'000U);
}

TEST(Engine, MultiClockDomainsInterleaveDeterministically) {
  Engine engine;
  ClockDomain fast{"fast", Frequency::megahertz(400)};  // 2.5 ns
  ClockDomain slow{"slow", Frequency::megahertz(100)};  // 10 ns
  Counter a{8};
  Counter b{2};
  engine.activate(engine.add_ticking(a, fast));
  engine.activate(engine.add_ticking(b, slow));
  engine.run();
  EXPECT_EQ(a.ticks.back().count(), 20'000U);
  EXPECT_EQ(b.ticks.back().count(), 20'000U);
}

}  // namespace
}  // namespace hybridic::sim
