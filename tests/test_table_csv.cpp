#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace hybridic {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table table{"demo"};
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table{"t"};
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ConfigError);
}

TEST(Table, SeparatorRendered) {
  Table table{"t"};
  table.set_header({"a"});
  table.add_row({"x"});
  table.add_separator();
  table.add_row({"y"});
  EXPECT_EQ(table.row_count(), 3U);  // two rows + separator marker
  const std::string out = table.to_string();
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_NE(out.find('y'), std::string::npos);
}

TEST(Table, AlignmentPadsCorrectly) {
  Table table{""};
  table.set_header({"l", "r"});
  table.set_alignment({Align::kLeft, Align::kRight});
  table.add_row({"ab", "1"});
  table.add_row({"c", "22"});
  const std::string out = table.to_string();
  // Right-aligned column: "1" should be preceded by a space pad.
  EXPECT_NE(out.find("|  1 |"), std::string::npos);
  EXPECT_NE(out.find("| 22 |"), std::string::npos);
}

TEST(Table, NoTitleSkipsTitleLine) {
  Table table{""};
  table.set_header({"a"});
  table.add_row({"v"});
  // A titled table starts with "== <title> =="; an untitled one starts
  // with the top rule directly.
  EXPECT_EQ(table.to_string().rfind("+", 0), 0U);
  EXPECT_EQ(table.to_string().find("== "), std::string::npos);
}

TEST(Formatters, Ratio) {
  EXPECT_EQ(format_ratio(3.72), "3.72x");
  EXPECT_EQ(format_ratio(1.0), "1.00x");
}

TEST(Formatters, Percent) {
  EXPECT_EQ(format_percent(0.665), "66.5%");
  EXPECT_EQ(format_percent(0.0), "0.0%");
}

TEST(Formatters, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

class CsvFile : public ::testing::Test {
protected:
  std::string path_ = ::testing::TempDir() + "hybridic_csv_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  [[nodiscard]] std::string contents() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvFile, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"app", "speedup"});
    ASSERT_TRUE(csv.ok());
    csv.add_row({"jpeg", "2.87"});
  }
  EXPECT_EQ(contents(), "app,speedup\njpeg,2.87\n");
}

TEST_F(CsvFile, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"field"});
    csv.add_row({"with,comma"});
    csv.add_row({"with\"quote"});
  }
  const std::string out = contents();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

}  // namespace
}  // namespace hybridic
