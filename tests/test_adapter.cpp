// Unit tests of the network adapter: packetization, injection order,
// reassembly and bookkeeping.
#include "noc/adapter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace hybridic::noc {
namespace {

TEST(Adapter, PacketizesMessageIntoHeadBodyTail) {
  Adapter adapter{"a", 0, AdapterKind::kAccelerator, 256};
  adapter.enqueue_message(3, 1, Bytes{16});  // 4 payload flits
  std::vector<Flit> flits;
  while (adapter.pending_flit() != nullptr) {
    flits.push_back(adapter.consume_pending(Picoseconds{0}));
  }
  ASSERT_EQ(flits.size(), 5U);  // head + 4 payload
  EXPECT_EQ(flits[0].kind, FlitKind::kHead);
  EXPECT_EQ(flits[1].kind, FlitKind::kBody);
  EXPECT_EQ(flits[4].kind, FlitKind::kTail);
  for (const Flit& flit : flits) {
    EXPECT_EQ(flit.destination, 3U);
    EXPECT_EQ(flit.source, 0U);
    EXPECT_EQ(flit.message_id, 1U);
  }
}

TEST(Adapter, SplitsLargeMessagesIntoPackets) {
  Adapter adapter{"a", 0, AdapterKind::kAccelerator, 64};  // 16 flits max
  adapter.enqueue_message(1, 7, Bytes{200});  // 50 payload flits
  std::size_t heads = 0;
  std::size_t tails = 0;
  std::size_t total = 0;
  while (adapter.pending_flit() != nullptr) {
    const Flit flit = adapter.consume_pending(Picoseconds{0});
    heads += flit.is_head() ? 1U : 0U;
    tails += flit.is_tail() ? 1U : 0U;
    ++total;
  }
  EXPECT_EQ(heads, 4U);  // ceil(200/64) packets
  EXPECT_EQ(tails, 4U);
  EXPECT_EQ(total, 50U + 4U);
  EXPECT_EQ(adapter.flits_injected(), total);
  EXPECT_EQ(adapter.messages_sent(), 1U);
}

TEST(Adapter, ZeroByteMessageIsHeadTailOnly) {
  Adapter adapter{"a", 0, AdapterKind::kLocalMemory, 256};
  adapter.enqueue_message(1, 2, Bytes{0});
  const Flit flit = adapter.consume_pending(Picoseconds{0});
  EXPECT_EQ(flit.kind, FlitKind::kHeadTail);
  EXPECT_EQ(adapter.pending_flit(), nullptr);
}

TEST(Adapter, ReassemblyFiresOnLastPayloadFlit) {
  Adapter sink{"sink", 1, AdapterKind::kLocalMemory, 256};
  int fired = 0;
  Picoseconds at{0};
  sink.expect_message(9, Bytes{8},
                      [&](std::uint64_t id, Bytes bytes, Picoseconds t) {
                        EXPECT_EQ(id, 9U);
                        EXPECT_EQ(bytes.count(), 8U);
                        at = t;
                        ++fired;
                      });
  Flit head;
  head.message_id = 9;
  head.kind = FlitKind::kHead;
  sink.deliver(head, Picoseconds{10});
  EXPECT_EQ(fired, 0);
  Flit body = head;
  body.kind = FlitKind::kBody;
  sink.deliver(body, Picoseconds{20});
  EXPECT_EQ(fired, 0);
  Flit tail = head;
  tail.kind = FlitKind::kTail;
  sink.deliver(tail, Picoseconds{30});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(at.count(), 30U);
  EXPECT_EQ(sink.messages_received(), 1U);
  EXPECT_FALSE(sink.busy());
}

TEST(Adapter, UnknownMessageDeliveryAsserts) {
  Adapter sink{"sink", 1, AdapterKind::kLocalMemory, 256};
  Flit stray;
  stray.message_id = 42;
  EXPECT_THROW(sink.deliver(stray, Picoseconds{0}), SimulationError);
}

TEST(Adapter, DuplicateExpectationRejected) {
  Adapter sink{"sink", 1, AdapterKind::kLocalMemory, 256};
  sink.expect_message(1, Bytes{4}, {});
  EXPECT_THROW(sink.expect_message(1, Bytes{4}, {}), SimulationError);
}

TEST(Adapter, InjectionStampsTime) {
  Adapter adapter{"a", 0, AdapterKind::kAccelerator, 256};
  adapter.enqueue_message(1, 1, Bytes{4});
  const Flit flit = adapter.consume_pending(Picoseconds{12345});
  EXPECT_EQ(flit.injected_at_ps, 12345U);
}

TEST(Adapter, BusyWhileTxOrRxPending) {
  Adapter adapter{"a", 0, AdapterKind::kAccelerator, 256};
  EXPECT_FALSE(adapter.busy());
  adapter.enqueue_message(1, 1, Bytes{4});
  EXPECT_TRUE(adapter.busy());
  (void)adapter.consume_pending(Picoseconds{0});
  (void)adapter.consume_pending(Picoseconds{0});
  EXPECT_FALSE(adapter.busy());
  adapter.expect_message(5, Bytes{4}, {});
  EXPECT_TRUE(adapter.busy());
}

TEST(Adapter, TinyPacketPayloadRejected) {
  EXPECT_THROW(Adapter("a", 0, AdapterKind::kAccelerator, 2), ConfigError);
}

}  // namespace
}  // namespace hybridic::noc
