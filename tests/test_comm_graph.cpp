#include "prof/comm_graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "prof/dot_export.hpp"
#include "util/error.hpp"

namespace hybridic::prof {
namespace {

TEST(CommGraph, DuplicateFunctionNameRejected) {
  CommGraph graph;
  (void)graph.add_function("f");
  EXPECT_THROW(graph.add_function("f"), ConfigError);
}

TEST(CommGraph, LookupByName) {
  CommGraph graph;
  const FunctionId a = graph.add_function("a");
  const FunctionId b = graph.add_function("b");
  EXPECT_EQ(graph.id_of("a"), a);
  EXPECT_EQ(graph.id_of("b"), b);
  EXPECT_TRUE(graph.has_function("a"));
  EXPECT_FALSE(graph.has_function("zzz"));
  EXPECT_THROW((void)graph.id_of("zzz"), ConfigError);
}

TEST(CommGraph, TransfersAccumulate) {
  CommGraph graph;
  const FunctionId a = graph.add_function("a");
  const FunctionId b = graph.add_function("b");
  graph.add_transfer(a, b, Bytes{100}, 100);
  graph.add_transfer(a, b, Bytes{28}, 10);
  EXPECT_EQ(graph.bytes_between(a, b).count(), 128U);
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 1U);
  EXPECT_EQ(edges[0].unique_addresses, 110U);
}

TEST(CommGraph, EdgesOrderedAndNonZero) {
  CommGraph graph;
  const FunctionId a = graph.add_function("a");
  const FunctionId b = graph.add_function("b");
  const FunctionId c = graph.add_function("c");
  graph.add_transfer(b, c, Bytes{5}, 5);
  graph.add_transfer(a, b, Bytes{3}, 3);
  graph.add_transfer(a, c, Bytes{0}, 0);  // Zero edge suppressed.
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 2U);
  EXPECT_EQ(edges[0].producer, a);
  EXPECT_EQ(edges[1].producer, b);
}

TEST(CommGraph, TotalsSumOverPeers) {
  CommGraph graph;
  const FunctionId a = graph.add_function("a");
  const FunctionId b = graph.add_function("b");
  const FunctionId c = graph.add_function("c");
  graph.add_transfer(a, b, Bytes{10}, 10);
  graph.add_transfer(a, c, Bytes{20}, 20);
  graph.add_transfer(b, a, Bytes{5}, 5);
  EXPECT_EQ(graph.total_out(a).count(), 30U);
  EXPECT_EQ(graph.total_in(a).count(), 5U);
  EXPECT_EQ(graph.total_in(c).count(), 20U);
}

TEST(CommGraph, OutOfRangeIdsRejected) {
  CommGraph graph;
  const FunctionId a = graph.add_function("a");
  EXPECT_THROW(graph.add_transfer(a, 5, Bytes{1}, 1), ConfigError);
  EXPECT_THROW((void)graph.function(9), ConfigError);
}

TEST(CommGraph, SummaryContainsEdges) {
  CommGraph graph;
  const FunctionId a = graph.add_function("prod");
  const FunctionId b = graph.add_function("cons");
  graph.add_transfer(a, b, Bytes{42}, 42);
  const std::string summary = graph.summary();
  EXPECT_NE(summary.find("prod"), std::string::npos);
  EXPECT_NE(summary.find("cons"), std::string::npos);
  EXPECT_NE(summary.find("42"), std::string::npos);
}

TEST(DotExport, MarksHwFunctionsAndEdges) {
  CommGraph graph;
  const FunctionId host = graph.add_function("main");
  const FunctionId kernel = graph.add_function("huff_ac_dec");
  graph.add_transfer(host, kernel, Bytes{1024}, 1024);
  graph.add_transfer(kernel, kernel, Bytes{64}, 64);  // self: skipped
  const std::string dot = to_dot(graph, {kernel});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("huff_ac_dec"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("f0 -> f1"), std::string::npos);
  EXPECT_EQ(dot.find("f1 -> f1"), std::string::npos);
  EXPECT_NE(dot.find("1024 UMA"), std::string::npos);
}

}  // namespace
}  // namespace hybridic::prof
