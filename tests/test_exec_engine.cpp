// Tests of the shared execution engine (sys/engine/): the NoC idle-latency
// oracle vs the flit-level simulation, wait_all deadlock diagnostics, the
// ExecTrace invariants every variant must uphold, crossbar-system edge
// cases, and the Chrome-trace exporter.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/interconnect_design.hpp"
#include "noc/flit.hpp"
#include "noc/network.hpp"
#include "sys/crossbar_system.hpp"
#include "sys/engine/chrome_trace.hpp"
#include "sys/engine/context.hpp"
#include "sys/engine/ops.hpp"
#include "sys/executor.hpp"
#include "sys/experiment.hpp"
#include "sys/timeline.hpp"
#include "util/error.hpp"

namespace hybridic::sys {
namespace {

using engine::EventKind;
using engine::ExecTrace;
using engine::Fabric;
using engine::TraceEvent;

/// host -> k1 -> k2 -> k3 -> sink chain (same shape as test_executor's).
struct Chain {
  Chain() {
    host = graph.add_function("host");
    k1 = graph.add_function("k1");
    k2 = graph.add_function("k2");
    k3 = graph.add_function("k3");
    sink = graph.add_function("sink");
    graph.function_mutable(host).work_units = 10'000;
    graph.function_mutable(k1).work_units = 50'000;
    graph.function_mutable(k2).work_units = 50'000;
    graph.function_mutable(k3).work_units = 50'000;
    graph.function_mutable(sink).work_units = 5'000;
    graph.add_transfer(host, k1, Bytes{40'000}, 40'000);
    graph.add_transfer(k1, k2, Bytes{40'000}, 40'000);
    graph.add_transfer(k2, k3, Bytes{40'000}, 40'000);
    graph.add_transfer(k3, sink, Bytes{40'000}, 40'000);
    schedule = build_schedule(
        "chain", graph,
        {{"k1", 8.0, 1.0, 1000, 1000, true, false, false},
         {"k2", 8.0, 1.0, 1000, 1000, true, false, false},
         {"k3", 8.0, 1.0, 1000, 1000, true, false, false}});
  }

  prof::CommGraph graph;
  prof::FunctionId host, k1, k2, k3, sink;
  AppSchedule schedule;
};

// ---------------------------------------------------------------------------
// Satellite 1: the analytic NoC latency oracle vs the flit-level simulator.
// ---------------------------------------------------------------------------

TEST(NocOracle, IdealLatencyDelegatesToTheOracle) {
  sim::Engine eng;
  const sim::ClockDomain clock{"noc", Frequency::megahertz(150)};
  noc::NetworkConfig config;
  noc::Network network{"noc", eng, clock, noc::Mesh2D{3, 3}, config};
  for (const std::uint64_t bytes : {0ULL, 64ULL, 1024ULL, 100'000ULL}) {
    for (const std::uint32_t hops : {0U, 1U, 4U}) {
      const std::uint64_t cycles = noc::idle_latency_cycles(
          bytes, hops, config.max_packet_payload_bytes,
          config.router.pipeline_cycles);
      EXPECT_EQ(network.ideal_latency(Bytes{bytes}, hops),
                clock.span(Cycles{cycles}));
    }
  }
}

TEST(NocOracle, TracksFlitLevelLatencyOnIdleMesh) {
  // On an idle mesh the analytic oracle must be a sound and reasonably
  // tight model of the simulated wormhole latency: never above the
  // simulation (it ignores per-hop serialization of the body) and within
  // a small constant factor of it.
  const sim::ClockDomain clock{"noc", Frequency::megahertz(150)};
  for (const std::uint64_t bytes : {64ULL, 1024ULL, 16'384ULL}) {
    sim::Engine eng;
    noc::NetworkConfig config;
    noc::Network network{"noc", eng, clock, noc::Mesh2D{3, 3}, config};
    network.attach_adapter(0, "src", noc::AdapterKind::kAccelerator);
    network.attach_adapter(8, "dst", noc::AdapterKind::kLocalMemory);
    Picoseconds delivered{0};
    network.send(0, 8, Bytes{bytes},
                 [&](std::uint64_t, Bytes, Picoseconds at) {
                   delivered = at;
                 });
    eng.run();
    ASSERT_GT(delivered.count(), 0U);
    const std::uint32_t hops = network.mesh().distance(0, 8);
    const Picoseconds oracle = network.ideal_latency(Bytes{bytes}, hops);
    EXPECT_LE(oracle.count(), delivered.count())
        << bytes << " B over " << hops << " hops";
    EXPECT_GE(oracle.count(), delivered.count() / 3)
        << bytes << " B over " << hops << " hops";
  }
}

// ---------------------------------------------------------------------------
// Satellite 2: wait_all names the stuck operation.
// ---------------------------------------------------------------------------

TEST(WaitAll, DeadlockReportsLabelAndSimulatedTime) {
  Chain chain;
  engine::ExecContext ctx(chain.schedule, PlatformConfig{}, nullptr);
  engine::Pending stuck;
  stuck.label = "k2/fetch#1";
  engine::Pending fine;
  fine.done = true;
  try {
    engine::wait_all(ctx.platform(), {&fine, &stuck});
    FAIL() << "wait_all should have thrown";
  } catch (const SimTimeoutError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("k2/fetch#1"), std::string::npos) << message;
    EXPECT_NE(message.find("simulation drained at"), std::string::npos)
        << message;
    ASSERT_EQ(e.stuck_ops().size(), 1U);
    EXPECT_EQ(e.stuck_ops()[0], "k2/fetch#1");
    EXPECT_FALSE(e.watchdog_expired());  // Queue drained, no watchdog.
  }
}

TEST(WaitAll, UnlabeledOpsStillDiagnosed) {
  Chain chain;
  engine::ExecContext ctx(chain.schedule, PlatformConfig{}, nullptr);
  engine::Pending stuck;
  try {
    engine::wait_all(ctx.platform(), {&stuck});
    FAIL() << "wait_all should have thrown";
  } catch (const SimTimeoutError& e) {
    EXPECT_NE(std::string(e.what()).find("<unlabeled>"),
              std::string::npos);
    ASSERT_EQ(e.stuck_ops().size(), 1U);
    EXPECT_EQ(e.stuck_ops()[0], "<unlabeled>");
  }
}

// ---------------------------------------------------------------------------
// Satellite 3a: ExecTrace invariants across all variants.
// ---------------------------------------------------------------------------

void expect_trace_invariants(const RunResult& result) {
  const ExecTrace& trace = result.trace;
  constexpr double kEps = 1e-9;

  // Every event is attributed to a real step and, except NoC transfers
  // (which may land after the producing step closed — the run's app-end
  // tracks them) and stalls (which explain the gap before a step), nests
  // inside its step's [start, done] window.
  for (const TraceEvent& event : trace.events()) {
    ASSERT_LT(event.step_index, result.steps.size());
    const StepTiming& step = result.steps[event.step_index];
    EXPECT_LE(event.start_seconds, event.end_seconds + kEps);
    if (event.kind == EventKind::kStall) {
      EXPECT_LE(event.end_seconds, step.start_seconds + kEps);
      continue;
    }
    if (engine::is_annotation(event.kind)) {
      continue;  // Fault/retry/reroute markers may land anywhere.
    }
    EXPECT_GE(event.start_seconds, step.start_seconds - kEps)
        << event.label;
    if (event.kind == EventKind::kNocTransfer) {
      EXPECT_LE(event.end_seconds, result.total_seconds + kEps)
          << event.label;
    } else {
      EXPECT_LE(event.end_seconds, step.done_seconds + kEps)
          << event.label;
    }
  }

  // Per-fabric usage equals the recomputed event sums (annotations — stalls,
  // faults, retries, reroutes — excluded).
  double busy[engine::kFabricCount] = {};
  std::uint64_t bytes[engine::kFabricCount] = {};
  std::uint64_t ops[engine::kFabricCount] = {};
  for (const TraceEvent& event : trace.events()) {
    if (engine::is_annotation(event.kind)) {
      continue;
    }
    const auto f = static_cast<std::size_t>(event.fabric);
    busy[f] += event.end_seconds - event.start_seconds;
    bytes[f] += event.bytes;
    ++ops[f];
  }
  for (std::size_t f = 0; f < engine::kFabricCount; ++f) {
    const engine::FabricUsage& usage =
        trace.usage(static_cast<Fabric>(f));
    EXPECT_NEAR(usage.busy_seconds, busy[f], kEps);
    EXPECT_EQ(usage.bytes, bytes[f]);
    EXPECT_EQ(usage.ops, ops[f]);
  }

  // Fabric attribution is consistent with the flat RunResult totals.
  EXPECT_NEAR(trace.usage(Fabric::kHost).busy_seconds, result.host_seconds,
              1e-9);
  EXPECT_NEAR(trace.usage(Fabric::kKernel).busy_seconds,
              result.kernel_compute_seconds, 1e-9);
}

TEST(ExecTrace, InvariantsHoldForAllVariants) {
  Chain chain;
  PlatformConfig config;
  core::DesignInput input = make_design_input(chain.schedule, config);
  const core::DesignResult design = core::design_interconnect(input);
  core::DesignInput noc_input = input;
  noc_input.enable_shared_memory = false;
  noc_input.enable_adaptive_mapping = false;
  const core::DesignResult noc_only = core::design_interconnect(noc_input);

  const RunResult variants[] = {
      run_software(chain.schedule, config),
      run_baseline(chain.schedule, config),
      run_designed(chain.schedule, design, config),
      run_designed(chain.schedule, noc_only, config, "noc-only"),
      run_crossbar_system(chain.schedule, config),
  };
  for (const RunResult& result : variants) {
    SCOPED_TRACE(result.system_name);
    EXPECT_FALSE(result.trace.empty());
    expect_trace_invariants(result);
  }
}

TEST(ExecTrace, InvariantsHoldOnPaperApps) {
  for (const auto& name : {"canny", "jpeg", "fluid"}) {
    const apps::ProfiledApp app = apps::run_paper_app(name);
    const AppSchedule schedule = app.schedule();
    PlatformConfig config;
    const core::DesignResult design = core::design_interconnect(
        make_design_input(schedule, config));
    const RunResult proposed = run_designed(schedule, design, config);
    SCOPED_TRACE(name);
    expect_trace_invariants(proposed);
  }
}

TEST(ExecTrace, DesignedRunSeparatesFabrics) {
  Chain chain;
  PlatformConfig config;
  const core::DesignResult design = core::design_interconnect(
      make_design_input(chain.schedule, config));
  const RunResult proposed = run_designed(chain.schedule, design, config);
  // The chain's design pairs (k1,k2) in shared memory and puts k2->k3 on
  // the NoC; host I/O goes over the bus — every fabric class shows up.
  EXPECT_GT(proposed.fabric_usage(Fabric::kBus).ops, 0U);
  EXPECT_GT(proposed.fabric_usage(Fabric::kBus).bytes, 0U);
  EXPECT_GT(proposed.fabric_usage(Fabric::kSharedMemory).ops, 0U);
  EXPECT_GT(proposed.fabric_usage(Fabric::kNoc).ops, 0U);
  EXPECT_EQ(proposed.fabric_usage(Fabric::kCrossbar).ops, 0U);
}

TEST(ExecTrace, SoftwareRunUsesOnlyHostAndKernelLanes) {
  Chain chain;
  const RunResult sw = run_software(chain.schedule, PlatformConfig{});
  EXPECT_GT(sw.fabric_usage(Fabric::kHost).ops, 0U);
  EXPECT_GT(sw.fabric_usage(Fabric::kKernel).ops, 0U);
  EXPECT_EQ(sw.fabric_usage(Fabric::kBus).ops, 0U);
  EXPECT_EQ(sw.fabric_usage(Fabric::kNoc).ops, 0U);
}

// ---------------------------------------------------------------------------
// Satellite 3b: crossbar-system edge cases.
// ---------------------------------------------------------------------------

TEST(CrossbarSystem, ZeroByteKernelEdgeStillCompletes) {
  prof::CommGraph graph;
  const auto h = graph.add_function("host");
  const auto a = graph.add_function("a");
  const auto b = graph.add_function("b");
  graph.function_mutable(a).work_units = 10'000;
  graph.function_mutable(b).work_units = 10'000;
  graph.add_transfer(h, a, Bytes{1'000}, 1'000);
  graph.add_transfer(a, b, Bytes{0}, 1);  // Control-only dependency.
  graph.add_transfer(b, h, Bytes{1'000}, 1'000);
  const AppSchedule schedule = build_schedule(
      "zero-edge", graph,
      {{"a", 8.0, 1.0, 100, 100, true, false, false},
       {"b", 8.0, 1.0, 100, 100, true, false, false}});
  const RunResult result =
      run_crossbar_system(schedule, PlatformConfig{});
  EXPECT_GT(result.total_seconds, 0.0);
  // b still gates on a's compute even though no bytes move.
  ASSERT_EQ(result.steps.size(), 3U);
  EXPECT_GE(result.steps[2].start_seconds, result.steps[1].start_seconds);
  expect_trace_invariants(result);
}

TEST(CrossbarSystem, SingleKernelScheduleUsesNoCrossbarPort) {
  prof::CommGraph graph;
  const auto h = graph.add_function("host");
  const auto k = graph.add_function("k");
  graph.function_mutable(k).work_units = 50'000;
  graph.add_transfer(h, k, Bytes{10'000}, 10'000);
  graph.add_transfer(k, h, Bytes{10'000}, 10'000);
  const AppSchedule schedule = build_schedule(
      "single", graph, {{"k", 8.0, 1.0, 100, 100, true, false, false}});
  const RunResult result =
      run_crossbar_system(schedule, PlatformConfig{});
  EXPECT_GT(result.total_seconds, 0.0);
  // No kernel->kernel edge: the crossbar carries nothing; all volume goes
  // over the bus.
  EXPECT_EQ(result.fabric_usage(Fabric::kCrossbar).ops, 0U);
  EXPECT_EQ(result.fabric_usage(Fabric::kBus).bytes, 20'000U);
  expect_trace_invariants(result);
}

// ---------------------------------------------------------------------------
// Chrome-trace exporter and trace-lane renderer.
// ---------------------------------------------------------------------------

TEST(ChromeTrace, ExportsOneCompleteEventPerTraceEvent) {
  Chain chain;
  const RunResult baseline =
      run_baseline(chain.schedule, PlatformConfig{});
  const std::string json =
      engine::chrome_trace_json(baseline.trace, baseline.system_name);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"baseline\""), std::string::npos);
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"ph\": \"X\"");
       pos != std::string::npos; pos = json.find("\"ph\": \"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, baseline.trace.events().size());
  // Structural sanity: balanced braces/brackets, quotes in pairs.
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  std::size_t quotes = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
    quotes += c == '"' ? 1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0U);
}

TEST(ChromeTrace, EscapesLabels) {
  ExecTrace trace;
  trace.record({EventKind::kCompute, Fabric::kHost, 0, 0, 0.0, 1.0,
                "a\"b\\c\nd"});
  const std::string json = engine::chrome_trace_json(trace, "t");
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(TraceLanes, RendersOneLanePerUsedFabric) {
  Chain chain;
  PlatformConfig config;
  const core::DesignResult design = core::design_interconnect(
      make_design_input(chain.schedule, config));
  const RunResult proposed = run_designed(chain.schedule, design, config);
  const std::string lanes = render_trace_lanes(proposed);
  EXPECT_NE(lanes.find("host"), std::string::npos);
  EXPECT_NE(lanes.find("kernel"), std::string::npos);
  EXPECT_NE(lanes.find("bus"), std::string::npos);
  EXPECT_NE(lanes.find("noc"), std::string::npos);
  EXPECT_NE(lanes.find("shared-mem"), std::string::npos);
  // No crossbar lane (the legend mentions the glyph, lanes start lines).
  EXPECT_EQ(lanes.find("\ncrossbar"), std::string::npos);

  const std::string csv = trace_csv(proposed.trace);
  EXPECT_NE(csv.find("event,kind,fabric,step,start_s,end_s,bytes,label"),
            std::string::npos);
  // Header plus one row per event.
  const std::size_t rows =
      static_cast<std::size_t>(
          std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, proposed.trace.events().size() + 1);
}

// ---------------------------------------------------------------------------
// Fault paths: dead links, NoC->bus degradation, and the deadlock watchdog.
// ---------------------------------------------------------------------------

/// host -> k1 -> k2 -> sink with a hand-built design that puts the k1->k2
/// edge on a 2x2 mesh: k1's kernel at node 0, k2's local memory at node 3.
struct NocPair {
  NocPair() {
    host = graph.add_function("host");
    k1 = graph.add_function("k1");
    k2 = graph.add_function("k2");
    sink = graph.add_function("sink");
    graph.function_mutable(host).work_units = 10'000;
    graph.function_mutable(k1).work_units = 50'000;
    graph.function_mutable(k2).work_units = 50'000;
    graph.function_mutable(sink).work_units = 5'000;
    graph.add_transfer(host, k1, Bytes{40'000}, 40'000);
    graph.add_transfer(k1, k2, Bytes{40'000}, 40'000);
    graph.add_transfer(k2, sink, Bytes{40'000}, 40'000);
    schedule = build_schedule(
        "noc-pair", graph,
        {{"k1", 8.0, 1.0, 1000, 1000, true, false, false},
         {"k2", 8.0, 1.0, 1000, 1000, true, false, false}});

    core::KernelInstance i1;
    i1.name = "k1";
    i1.spec_index = 0;
    i1.function = k1;
    core::KernelInstance i2;
    i2.name = "k2";
    i2.spec_index = 1;
    i2.function = k2;
    design.instances = {i1, i2};
    core::NocPlan plan;
    plan.mesh_width = 2;
    plan.mesh_height = 2;
    plan.attachments = {{0, core::NocNodeKind::kKernel, 0},
                        {1, core::NocNodeKind::kLocalMemory, 3}};
    design.noc = plan;
  }

  prof::CommGraph graph;
  prof::FunctionId host, k1, k2, sink;
  AppSchedule schedule;
  core::DesignResult design;
};

TEST(FaultPaths, DisconnectedPairWithoutDegradationTimesOut) {
  // Dead links isolate node 0 (k1's kernel) entirely; with degradation
  // disabled the send is attempted, black-holed, and the deliberately
  // deadlocked schedule must surface as a SimTimeoutError naming the
  // stuck NoC op and the simulated time.
  NocPair pair;
  PlatformConfig config;
  config.faults.dead_links = {{0, 1}, {0, 2}};
  config.faults.resilience.noc_degrade_to_bus = false;
  try {
    (void)run_designed(pair.schedule, pair.design, config);
    FAIL() << "disconnected NoC pair should have timed out";
  } catch (const SimTimeoutError& e) {
    ASSERT_FALSE(e.stuck_ops().empty());
    EXPECT_NE(e.stuck_ops()[0].find("/noc#0->1"), std::string::npos)
        << e.stuck_ops()[0];
    EXPECT_NE(std::string(e.what()).find("never completed"),
              std::string::npos);
    EXPECT_FALSE(e.watchdog_expired());  // Queue drained: a true deadlock.
  }
}

TEST(FaultPaths, DisconnectedPairDegradesToBusAndCompletes) {
  NocPair pair;
  PlatformConfig clean_config;
  const RunResult clean =
      run_designed(pair.schedule, pair.design, clean_config);
  EXPECT_EQ(clean.fabric_usage(Fabric::kNoc).bytes, 40'000U);

  PlatformConfig config;
  config.faults.dead_links = {{0, 1}, {0, 2}};  // Degradation on (default).
  const RunResult degraded =
      run_designed(pair.schedule, pair.design, config);

  // The run completes with the edge moved to a bus round trip: the NoC
  // carries nothing, the bus carries the edge twice (write-back + fetch).
  EXPECT_GT(degraded.total_seconds, 0.0);
  EXPECT_EQ(degraded.fabric_usage(Fabric::kNoc).bytes, 0U);
  EXPECT_EQ(degraded.fabric_usage(Fabric::kBus).bytes,
            clean.fabric_usage(Fabric::kBus).bytes + 2U * 40'000U);
  EXPECT_EQ(degraded.fault_stats.degraded_edges, 1U);
  EXPECT_EQ(degraded.fault_stats.messages_lost, 0U);

  // The degradation is visible in the trace and the Chrome export.
  bool saw_reroute = false;
  for (const TraceEvent& event : degraded.trace.events()) {
    saw_reroute = saw_reroute || event.kind == EventKind::kReroute;
  }
  EXPECT_TRUE(saw_reroute);
  const std::string json =
      engine::chrome_trace_json(degraded.trace, degraded.system_name);
  EXPECT_NE(json.find("\"reroute\""), std::string::npos);
}

TEST(FaultPaths, DeadLinkWithSurvivingPathReroutesInPlace) {
  // Killing only link 0-1 leaves 0 -> 2 -> 3 alive: the run completes on
  // the NoC with the detour annotated, no degradation.
  NocPair pair;
  PlatformConfig config;
  config.faults.dead_links = {{0, 1}};
  const RunResult result = run_designed(pair.schedule, pair.design, config);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_EQ(result.fabric_usage(Fabric::kNoc).bytes, 40'000U);
  EXPECT_EQ(result.fault_stats.degraded_edges, 0U);
  EXPECT_EQ(result.fault_stats.noc_reroutes, 1U);
  bool saw_reroute = false;
  for (const TraceEvent& event : result.trace.events()) {
    if (event.kind == EventKind::kReroute) {
      saw_reroute = true;
      EXPECT_EQ(event.fabric, Fabric::kNoc);
      EXPECT_NE(event.label.find("around dead link"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_reroute);
}

}  // namespace
}  // namespace hybridic::sys
