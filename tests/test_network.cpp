#include "noc/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hybridic::noc {
namespace {

const sim::ClockDomain kNocClock{"noc", Frequency::megahertz(150)};

struct Fixture {
  explicit Fixture(std::uint32_t w = 3, std::uint32_t h = 3,
                   NetworkConfig config = {})
      : network("noc", engine, kNocClock, Mesh2D{w, h}, config) {}

  sim::Engine engine;
  Network network;
};

TEST(Network, SingleMessageDelivered) {
  Fixture f;
  f.network.attach_adapter(0, "src", AdapterKind::kAccelerator);
  f.network.attach_adapter(8, "dst", AdapterKind::kLocalMemory);
  Picoseconds delivered{0};
  Bytes delivered_bytes{0};
  f.network.send(0, 8, Bytes{1024},
                 [&](std::uint64_t, Bytes b, Picoseconds at) {
                   delivered = at;
                   delivered_bytes = b;
                 });
  f.engine.run();
  EXPECT_GT(delivered.count(), 0U);
  EXPECT_EQ(delivered_bytes.count(), 1024U);
  EXPECT_EQ(f.network.stats().messages_delivered, 1U);
  EXPECT_EQ(f.network.inflight_messages(), 0U);
}

TEST(Network, LatencyAboveIdealLowerBound) {
  Fixture f;
  f.network.attach_adapter(0, "src", AdapterKind::kAccelerator);
  f.network.attach_adapter(8, "dst", AdapterKind::kLocalMemory);
  Picoseconds delivered{0};
  f.network.send(0, 8, Bytes{512},
                 [&](std::uint64_t, Bytes, Picoseconds at) {
                   delivered = at;
                 });
  f.engine.run();
  const Picoseconds ideal =
      f.network.ideal_latency(Bytes{512}, f.network.mesh().distance(0, 8));
  EXPECT_GE(delivered.count(), ideal.count() / 2);  // sanity lower bound
}

TEST(Network, ZeroByteMessageStillDelivers) {
  Fixture f;
  f.network.attach_adapter(0, "a", AdapterKind::kAccelerator);
  f.network.attach_adapter(1, "b", AdapterKind::kLocalMemory);
  bool delivered = false;
  f.network.send(0, 1, Bytes{0},
                 [&](std::uint64_t, Bytes, Picoseconds) {
                   delivered = true;
                 });
  f.engine.run();
  EXPECT_TRUE(delivered);
}

TEST(Network, LoopbackDeliversNextEdge) {
  Fixture f;
  f.network.attach_adapter(4, "self", AdapterKind::kAccelerator);
  bool delivered = false;
  f.network.send(4, 4, Bytes{64},
                 [&](std::uint64_t, Bytes, Picoseconds) {
                   delivered = true;
                 });
  f.engine.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.network.stats().flits_ejected, 0U);  // never hit the fabric
}

TEST(Network, SendWithoutAdaptersRejected) {
  Fixture f;
  f.network.attach_adapter(0, "a", AdapterKind::kAccelerator);
  EXPECT_THROW(f.network.send(0, 5, Bytes{8}, {}), ConfigError);
  EXPECT_THROW(f.network.send(7, 0, Bytes{8}, {}), ConfigError);
  EXPECT_THROW(f.network.send(0, 99, Bytes{8}, {}), ConfigError);
}

TEST(Network, DuplicateAdapterRejected) {
  Fixture f;
  f.network.attach_adapter(0, "a", AdapterKind::kAccelerator);
  EXPECT_THROW(f.network.attach_adapter(0, "b", AdapterKind::kLocalMemory),
               ConfigError);
}

TEST(Network, MessagesBetweenSamePairStayOrdered) {
  Fixture f;
  f.network.attach_adapter(0, "src", AdapterKind::kAccelerator);
  f.network.attach_adapter(8, "dst", AdapterKind::kLocalMemory);
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 5; ++i) {
    f.network.send(0, 8, Bytes{256},
                   [&order](std::uint64_t id, Bytes, Picoseconds) {
                     order.push_back(id);
                   });
  }
  f.engine.run();
  ASSERT_EQ(order.size(), 5U);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

TEST(Network, ConcurrentFlowsAllDeliver) {
  Fixture f;
  for (std::uint32_t n = 0; n < 9; ++n) {
    f.network.attach_adapter(n, "n" + std::to_string(n),
                             AdapterKind::kAccelerator);
  }
  int delivered = 0;
  int expected = 0;
  for (std::uint32_t src = 0; src < 9; ++src) {
    for (std::uint32_t dst = 0; dst < 9; ++dst) {
      if (src == dst) {
        continue;
      }
      ++expected;
      f.network.send(src, dst, Bytes{128},
                     [&delivered](std::uint64_t, Bytes, Picoseconds) {
                       ++delivered;
                     });
    }
  }
  f.engine.run();
  EXPECT_EQ(delivered, expected);
  EXPECT_EQ(f.network.inflight_messages(), 0U);
}

TEST(Network, TinyBuffersStillDrainEverything) {
  NetworkConfig config;
  config.router.buffer_flits = 1;  // Maximum backpressure.
  config.max_packet_payload_bytes = 16;
  Fixture f{3, 3, config};
  f.network.attach_adapter(0, "a", AdapterKind::kAccelerator);
  f.network.attach_adapter(8, "b", AdapterKind::kLocalMemory);
  f.network.attach_adapter(2, "c", AdapterKind::kAccelerator);
  f.network.attach_adapter(6, "d", AdapterKind::kLocalMemory);
  int delivered = 0;
  f.network.send(0, 8, Bytes{512},
                 [&](std::uint64_t, Bytes, Picoseconds) { ++delivered; });
  f.network.send(2, 6, Bytes{512},
                 [&](std::uint64_t, Bytes, Picoseconds) { ++delivered; });
  f.engine.run();
  EXPECT_EQ(delivered, 2);
}

TEST(Network, StatsCountEjectedFlits) {
  Fixture f;
  f.network.attach_adapter(0, "a", AdapterKind::kAccelerator);
  f.network.attach_adapter(1, "b", AdapterKind::kLocalMemory);
  f.network.send(0, 1, Bytes{400}, {});
  f.engine.run();
  // 400 bytes = 100 payload flits + 2 head flits (256-byte packets).
  EXPECT_EQ(f.network.stats().flits_ejected, 102U);
  EXPECT_GT(f.network.stats().flit_latency_seconds.mean(), 0.0);
}

TEST(Network, IdealLatencyMonotoneInSizeAndHops) {
  Fixture f;
  EXPECT_LT(f.network.ideal_latency(Bytes{64}, 2).count(),
            f.network.ideal_latency(Bytes{1024}, 2).count());
  EXPECT_LT(f.network.ideal_latency(Bytes{64}, 1).count(),
            f.network.ideal_latency(Bytes{64}, 4).count());
}

TEST(Network, ThroughputBoundedByLinkRate) {
  // One flow across one hop cannot beat 1 flit/cycle.
  Fixture f{2, 1};
  f.network.attach_adapter(0, "a", AdapterKind::kAccelerator);
  f.network.attach_adapter(1, "b", AdapterKind::kLocalMemory);
  Picoseconds delivered{0};
  const Bytes size{64 * 1024};
  f.network.send(0, 1, size,
                 [&](std::uint64_t, Bytes, Picoseconds at) {
                   delivered = at;
                 });
  f.engine.run();
  const std::uint64_t min_cycles = payload_flits(size.count());
  EXPECT_GE(delivered.count(),
            min_cycles * kNocClock.period().count());
}

/// Property sweep: random traffic on random mesh sizes — every message is
/// delivered exactly once, with positive latency, regardless of seed.
class RandomTraffic
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(RandomTraffic, Conservation) {
  const auto& [dim, seed] = GetParam();
  Rng rng{seed};
  Fixture f{dim, dim};
  for (std::uint32_t n = 0; n < dim * dim; ++n) {
    f.network.attach_adapter(n, "n" + std::to_string(n),
                             n % 2 == 0 ? AdapterKind::kAccelerator
                                        : AdapterKind::kLocalMemory);
  }
  std::map<std::uint64_t, int> delivery_count;
  const int messages = 40;
  for (int m = 0; m < messages; ++m) {
    const auto src = static_cast<std::uint32_t>(rng.below(dim * dim));
    auto dst = static_cast<std::uint32_t>(rng.below(dim * dim));
    if (dst == src) {
      dst = (dst + 1) % (dim * dim);
    }
    const Bytes bytes{rng.between(1, 2048)};
    f.network.send(src, dst, bytes,
                   [&delivery_count](std::uint64_t id, Bytes, Picoseconds) {
                     ++delivery_count[id];
                   });
  }
  f.engine.run();
  EXPECT_EQ(delivery_count.size(), static_cast<std::size_t>(messages));
  for (const auto& [id, count] : delivery_count) {
    EXPECT_EQ(count, 1) << "message " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraffic,
    ::testing::Combine(::testing::Values(2U, 3U, 4U),
                       ::testing::Values(1ULL, 7ULL, 42ULL)));

}  // namespace
}  // namespace hybridic::noc
