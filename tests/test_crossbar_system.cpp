// Tests of the full-crossbar component and the crossbar comparison
// system (§II-A group 4).
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "mem/full_crossbar.hpp"
#include "sys/crossbar_system.hpp"
#include "util/error.hpp"

namespace hybridic {
namespace {

const sim::ClockDomain kKernelClock{"kernel", Frequency::megahertz(100)};

TEST(FullCrossbar, DistinctTargetsTransferConcurrently) {
  mem::Bram m0{"m0", kKernelClock, Bytes{64 * 1024}, 4};
  mem::Bram m1{"m1", kKernelClock, Bytes{64 * 1024}, 4};
  mem::FullCrossbar xbar{"x", {&m0, &m1}};
  const Picoseconds a = xbar.access(0, 0, Picoseconds{0}, Bytes{4000});
  const Picoseconds b = xbar.access(1, 1, Picoseconds{0}, Bytes{4000});
  EXPECT_EQ(a, b);  // No shared bottleneck.
}

TEST(FullCrossbar, SameTargetSerializes) {
  mem::Bram m0{"m0", kKernelClock, Bytes{64 * 1024}, 4};
  mem::FullCrossbar xbar{"x", {&m0}};
  const Picoseconds a = xbar.access(0, 0, Picoseconds{0}, Bytes{4000});
  const Picoseconds b = xbar.access(1, 0, Picoseconds{0}, Bytes{4});
  EXPECT_GT(b, a);
  EXPECT_EQ(xbar.routed_accesses(), 2U);
}

TEST(FullCrossbar, Validation) {
  EXPECT_THROW(mem::FullCrossbar("x", {}), ConfigError);
  mem::Bram m0{"m0", kKernelClock, Bytes{64}, 4};
  mem::FullCrossbar xbar{"x", {&m0}};
  EXPECT_THROW(xbar.access(0, 3, Picoseconds{0}, Bytes{4}), ConfigError);
}

TEST(FullCrossbar, AreaGrowsQuadratically) {
  const std::uint64_t two = mem::FullCrossbar::estimate_luts(2, 2);
  const std::uint64_t four = mem::FullCrossbar::estimate_luts(4, 4);
  const std::uint64_t eight = mem::FullCrossbar::estimate_luts(8, 8);
  EXPECT_EQ(two, 201U);  // Matches the paper's 2x2 cost.
  EXPECT_EQ(four, 4 * two);
  EXPECT_EQ(eight, 16 * two);
}

TEST(CrossbarSystem, BeatsBaselineOnKernelHeavyApps) {
  for (const auto& name : {"canny", "jpeg", "fluid"}) {
    const apps::ProfiledApp app = apps::run_paper_app(name);
    const sys::AppSchedule schedule = app.schedule();
    const sys::PlatformConfig config;
    const sys::RunResult baseline = sys::run_baseline(schedule, config);
    const sys::RunResult xbar =
        sys::run_crossbar_system(schedule, config);
    EXPECT_LT(xbar.total_seconds, baseline.total_seconds) << name;
    EXPECT_EQ(xbar.system_name, "crossbar");
  }
}

TEST(CrossbarSystem, PerformsLikeTheNocWithinTolerance) {
  // Both fabrics hide kernel traffic behind producer compute.
  const apps::ProfiledApp app = apps::run_paper_app("fluid");
  const sys::AppSchedule schedule = app.schedule();
  const sys::PlatformConfig config;
  core::DesignInput input = sys::make_design_input(schedule, config);
  input.enable_shared_memory = false;
  input.enable_adaptive_mapping = false;
  const core::DesignResult noc_only = core::design_interconnect(input);
  const sys::RunResult noc =
      sys::run_designed(schedule, noc_only, config, "noc-only");
  const sys::RunResult xbar = sys::run_crossbar_system(schedule, config);
  EXPECT_NEAR(xbar.total_seconds / noc.total_seconds, 1.0, 0.35);
}

TEST(CrossbarSystem, AreaExceedsHybridForLargerSystems) {
  const apps::ProfiledApp app = apps::run_paper_app("jpeg");
  const sys::AppSchedule schedule = app.schedule();
  const core::DesignResult hybrid = core::design_interconnect(
      sys::make_design_input(schedule, sys::PlatformConfig{}));
  const core::Resources hybrid_area =
      core::interconnect_resources(hybrid);
  // An 8-kernel full crossbar already dwarfs jpeg's hybrid interconnect.
  const core::Resources xbar8 = sys::crossbar_system_resources(8);
  EXPECT_GT(xbar8.luts, hybrid_area.luts / 2);
  // And it grows without bound while the hybrid tracks the application.
  EXPECT_GT(sys::crossbar_system_resources(16).luts, hybrid_area.luts);
}

TEST(CrossbarSystem, RequiresKernels) {
  prof::CommGraph graph;
  (void)graph.add_function("host_only");
  const sys::AppSchedule schedule =
      sys::build_schedule("empty", graph, {});
  EXPECT_THROW(
      sys::run_crossbar_system(schedule, sys::PlatformConfig{}),
      ConfigError);
}

}  // namespace
}  // namespace hybridic
