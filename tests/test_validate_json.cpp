// Tests of design validation and JSON export.
#include <gtest/gtest.h>

#include "apps/app.hpp"
#include "core/design_validate.hpp"
#include "core/interconnect_design.hpp"
#include "core/json_export.hpp"
#include "sys/experiment.hpp"

namespace hybridic::core {
namespace {

/// A minimal valid design with one instance.
struct Minimal {
  Minimal() {
    KernelSpec spec;
    spec.name = "k";
    spec.function = 0;
    spec.hw_compute_cycles = Cycles{1000};
    specs.push_back(spec);
    KernelInstance inst;
    inst.name = "k";
    inst.spec_index = 0;
    inst.work_share = 1.0;
    inst.mapping = InterconnectClass{KernelConn::kK1, MemConn::kM1};
    design.instances.push_back(inst);
  }
  std::vector<KernelSpec> specs;
  DesignResult design;
};

TEST(Validate, CleanDesignHasNoIssues) {
  Minimal m;
  const auto issues = validate_design(m.design, m.specs);
  EXPECT_TRUE(issues.empty()) << format_issues(issues);
  EXPECT_TRUE(is_valid(issues));
}

TEST(Validate, MissingSpecIsError) {
  Minimal m;
  m.design.instances[0].spec_index = 7;
  const auto issues = validate_design(m.design, m.specs);
  EXPECT_FALSE(is_valid(issues));
  EXPECT_NE(format_issues(issues).find("references spec"),
            std::string::npos);
}

TEST(Validate, InfeasibleMappingIsError) {
  Minimal m;
  m.design.instances[0].mapping =
      InterconnectClass{KernelConn::kK1, MemConn::kM2};
  EXPECT_FALSE(is_valid(validate_design(m.design, m.specs)));
}

TEST(Validate, BadWorkSharesAreError) {
  Minimal m;
  KernelInstance copy = m.design.instances[0];
  copy.name = "k#1";
  copy.work_share = 0.25;  // 1.0 + 0.25 != 1
  m.design.instances.push_back(copy);
  EXPECT_FALSE(is_valid(validate_design(m.design, m.specs)));
}

TEST(Validate, OversizedInputIsWarningNotError) {
  Minimal m;
  m.design.instances[0].quantities.host_in = Bytes{1 << 20};
  const auto issues = validate_design(m.design, m.specs);
  ASSERT_EQ(issues.size(), 1U);
  EXPECT_EQ(issues[0].severity, Severity::kWarning);
  EXPECT_TRUE(is_valid(issues));
  EXPECT_NE(issues[0].message.find("chunking"), std::string::npos);
}

TEST(Validate, DirectSharingWithHostTrafficIsError) {
  Minimal m;
  KernelInstance consumer = m.design.instances[0];
  consumer.name = "c";
  consumer.quantities.host_out = Bytes{100};
  m.design.instances.push_back(consumer);
  m.design.shared_pairs.push_back(
      SharedMemoryPairing{0, 1, Bytes{10}, mem::SharingStyle::kDirect});
  const auto issues = validate_design(m.design, m.specs);
  EXPECT_FALSE(is_valid(issues));
  EXPECT_NE(format_issues(issues).find("crossbar is required"),
            std::string::npos);
}

TEST(Validate, NocAttachmentChecks) {
  Minimal m;
  NocPlan plan;
  plan.mesh_width = 2;
  plan.mesh_height = 1;
  plan.attachments = {
      NocAttachment{0, NocNodeKind::kKernel, 5},  // off mesh
      NocAttachment{0, NocNodeKind::kLocalMemory, 0},
      NocAttachment{0, NocNodeKind::kKernel, 0},  // duplicate router
  };
  m.design.noc = plan;
  const auto issues = validate_design(m.design, m.specs);
  EXPECT_FALSE(is_valid(issues));
  const std::string text = format_issues(issues);
  EXPECT_NE(text.find("off the mesh"), std::string::npos);
  EXPECT_NE(text.find("share router"), std::string::npos);
}

TEST(Validate, AlgorithmOutputsAreAlwaysClean) {
  // Every design Algorithm 1 produces for the paper apps must validate.
  for (const auto& name : apps::paper_app_names()) {
    const apps::ProfiledApp app = apps::run_paper_app(name);
    const sys::AppSchedule schedule = app.schedule();
    const DesignResult design = design_interconnect(
        sys::make_design_input(schedule, sys::PlatformConfig{}));
    const auto issues = validate_design(design, schedule.specs);
    EXPECT_TRUE(is_valid(issues)) << name << "\n"
                                  << format_issues(issues);
  }
}

TEST(JsonExport, ContainsAllSections) {
  const apps::ProfiledApp app = apps::run_paper_app("jpeg");
  const sys::AppSchedule schedule = app.schedule();
  const DesignResult design = design_interconnect(
      sys::make_design_input(schedule, sys::PlatformConfig{}));
  const std::string json = to_json(design, schedule.specs);
  EXPECT_NE(json.find("\"solution\": \"NoC, SM, P\""), std::string::npos);
  EXPECT_NE(json.find("\"huff_ac_dec#0\""), std::string::npos);
  EXPECT_NE(json.find("\"crossbar\""), std::string::npos);
  EXPECT_NE(json.find("\"mesh\": {\"width\": 3, \"height\": 2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"duplicated_specs\""), std::string::npos);
  EXPECT_NE(json.find("\"estimate\""), std::string::npos);
}

TEST(JsonExport, NoNocSerializesNull) {
  const apps::ProfiledApp app = apps::run_paper_app("klt");
  const sys::AppSchedule schedule = app.schedule();
  const DesignResult design = design_interconnect(
      sys::make_design_input(schedule, sys::PlatformConfig{}));
  const std::string json = to_json(design, schedule.specs);
  EXPECT_NE(json.find("\"noc\": null"), std::string::npos);
  // KLT's pair consumer (corner_response) talks to the host: crossbar.
  EXPECT_NE(json.find("\"crossbar\""), std::string::npos);
}

TEST(JsonExport, DirectStyleAppearsForCanny) {
  const apps::ProfiledApp app = apps::run_paper_app("canny");
  const sys::AppSchedule schedule = app.schedule();
  const DesignResult design = design_interconnect(
      sys::make_design_input(schedule, sys::PlatformConfig{}));
  const std::string json = to_json(design, schedule.specs);
  EXPECT_NE(json.find("\"direct\""), std::string::npos);
  EXPECT_NE(json.find("\"crossbar\""), std::string::npos);
}

TEST(JsonExport, BalancedBracesAndQuotes) {
  Minimal m;
  const std::string json = to_json(m.design, m.specs);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

}  // namespace
}  // namespace hybridic::core
