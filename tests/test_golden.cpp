// Golden regression tests: the default-config applications are fully
// deterministic, so their profiles and designs are pinned to exact values.
// If an intentional change shifts these, update them consciously — they
// are the repository's reproduction anchors (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "apps/app.hpp"
#include "apps/jpeg.hpp"
#include "dse/campaign.hpp"
#include "sys/experiment.hpp"

namespace hybridic {
namespace {

TEST(Golden, JpegDefaultProfileEdges) {
  const apps::ProfiledApp app = apps::run_jpeg(apps::JpegConfig{});
  const prof::CommGraph& g = app.graph();
  const auto bytes = [&g](const char* p, const char* c) {
    return g.bytes_between(g.id_of(p), g.id_of(c)).count();
  };
  EXPECT_EQ(bytes("read_bitstream", "huff_dc_dec"), 109U);
  EXPECT_EQ(bytes("read_bitstream", "huff_ac_dec"), 994U);
  EXPECT_EQ(bytes("read_bitstream", "j_rev_dct"), 576U);
  EXPECT_EQ(bytes("huff_dc_dec", "huff_ac_dec"), 576U);
  EXPECT_EQ(bytes("huff_ac_dec", "dquantz_lum"), 36864U);
  EXPECT_EQ(bytes("dquantz_lum", "j_rev_dct"), 36864U);
  EXPECT_EQ(bytes("j_rev_dct", "write_output"), 9216U);
}

TEST(Golden, PaperDesignShapes) {
  struct Expectation {
    const char* app;
    const char* solution;
    std::size_t instances;
    std::size_t shared_pairs;
    std::uint32_t routers;  // 0 = no NoC
  };
  const Expectation expectations[] = {
      {"canny", "NoC, SM, P", 4, 2, 2},
      {"jpeg", "NoC, SM, P", 5, 1, 6},
      {"klt", "SM", 3, 1, 0},
      {"fluid", "NoC", 3, 0, 6},
  };
  const sys::PlatformConfig platform;
  for (const Expectation& e : expectations) {
    const apps::ProfiledApp app = apps::run_paper_app(e.app);
    const sys::AppSchedule schedule = app.schedule();
    const core::DesignResult design = core::design_interconnect(
        sys::make_design_input(schedule, platform));
    EXPECT_EQ(design.solution_tag(), e.solution) << e.app;
    EXPECT_EQ(design.instances.size(), e.instances) << e.app;
    EXPECT_EQ(design.shared_pairs.size(), e.shared_pairs) << e.app;
    EXPECT_EQ(design.uses_noc() ? design.noc->router_count() : 0,
              e.routers)
        << e.app;
  }
}

TEST(Golden, PaperSpeedupAnchors) {
  // Wide tolerance: these pin the *shape* (see EXPERIMENTS.md), and must
  // not silently drift.
  const apps::ProfiledApp jpeg = apps::run_paper_app("jpeg");
  const sys::AppExperiment exp = sys::run_experiment(
      jpeg.schedule(), sys::PlatformConfig{}, jpeg.environment);
  EXPECT_NEAR(exp.baseline_app_speedup_vs_sw(), 0.82, 0.05);
  EXPECT_NEAR(exp.baseline_comm_comp_ratio(), 3.63, 0.2);
  EXPECT_NEAR(exp.proposed_app_speedup_vs_baseline(), 3.8, 0.5);
  EXPECT_NEAR(exp.energy_ratio_vs_baseline(), 0.30, 0.06);
}

TEST(Golden, CannySharedPairStyles) {
  const apps::ProfiledApp app = apps::run_paper_app("canny");
  const sys::AppSchedule schedule = app.schedule();
  const core::DesignResult design = core::design_interconnect(
      sys::make_design_input(schedule, sys::PlatformConfig{}));
  ASSERT_EQ(design.shared_pairs.size(), 2U);
  // (gaussian_blur -> sobel_gradient) shares directly (sobel never talks
  // to the host); (non_max_suppression -> hysteresis) needs the crossbar.
  bool direct_seen = false;
  bool crossbar_seen = false;
  for (const core::SharedMemoryPairing& pair : design.shared_pairs) {
    const std::string producer =
        design.instances[pair.producer_instance].name;
    if (producer == "gaussian_blur") {
      EXPECT_EQ(pair.style, mem::SharingStyle::kDirect);
      direct_seen = true;
    }
    if (producer == "non_max_suppression") {
      EXPECT_EQ(pair.style, mem::SharingStyle::kCrossbar);
      crossbar_seen = true;
    }
  }
  EXPECT_TRUE(direct_seen);
  EXPECT_TRUE(crossbar_seen);
}

TEST(Golden, ScheduleFollowsCallOrderNotDeclarationOrder) {
  // A function declared first but called second must come second in the
  // derived schedule.
  prof::QuadProfiler q;
  const auto late = q.declare("called_second");
  const auto early = q.declare("called_first");
  q.enter(early);
  q.add_work(10);
  q.leave();
  q.enter(late);
  q.add_work(10);
  q.leave();
  const sys::AppSchedule schedule =
      sys::build_schedule("order", q.graph(), {}, q.call_order());
  ASSERT_EQ(schedule.steps.size(), 2U);
  EXPECT_EQ(schedule.steps[0].name, "called_first");
  EXPECT_EQ(schedule.steps[1].name, "called_second");
  // Never-called functions append at the end.
  prof::QuadProfiler q2;
  (void)q2.declare("never_called");
  const auto only = q2.declare("only");
  q2.enter(only);
  q2.leave();
  const sys::AppSchedule s2 =
      sys::build_schedule("order2", q2.graph(), {}, q2.call_order());
  ASSERT_EQ(s2.steps.size(), 2U);
  EXPECT_EQ(s2.steps[0].name, "only");
  EXPECT_EQ(s2.steps[1].name, "never_called");
}

TEST(Golden, CannyDefaultProfileVolumes) {
  const apps::ProfiledApp app = apps::run_paper_app("canny");
  const prof::CommGraph& g = app.graph();
  const auto uma = [&g](const char* p, const char* c) {
    for (const prof::CommEdge& edge : g.edges()) {
      if (edge.producer == g.id_of(p) && edge.consumer == g.id_of(c)) {
        return edge.unique_addresses;
      }
    }
    return std::uint64_t{0};
  };
  // 160x120 frame: float image 76,800 unique bytes into the blur; the
  // sobel stage emits magnitude (float) + direction (byte) = 93,220
  // unique bytes consumed by non-max suppression (border excluded).
  EXPECT_EQ(uma("load_image", "gaussian_blur"), 76800U);
  EXPECT_EQ(uma("gaussian_blur", "sobel_gradient"), 76800U);
  EXPECT_EQ(uma("sobel_gradient", "non_max_suppression"), 93220U);
  EXPECT_EQ(uma("hysteresis", "store_edges"), 19200U);
}

TEST(Golden, FluidProfileIsSymmetricallyCoupled) {
  const apps::ProfiledApp app = apps::run_paper_app("fluid");
  const prof::CommGraph& g = app.graph();
  // 66x66 padded float grids: all three kernels exchange full fields.
  const auto volume = [&g](const char* p, const char* c) {
    return core::edge_volume(prof::CommEdge{
        g.id_of(p), g.id_of(c), g.bytes_between(g.id_of(p), g.id_of(c)),
        0});
  };
  (void)volume;
  const std::uint64_t field = 66 * 66 * 4;
  for (const prof::CommEdge& edge : g.edges()) {
    if (edge.producer == edge.consumer) {
      continue;
    }
    // Every kernel-to-kernel edge moves at least one half-field and at
    // most three full fields of unique data.
    const bool kernel_edge =
        g.function(edge.producer).name != "init_fields" &&
        g.function(edge.consumer).name != "read_state";
    if (kernel_edge) {
      EXPECT_GE(edge.unique_addresses, field / 2)
          << g.function(edge.producer).name << "->"
          << g.function(edge.consumer).name;
      // At most the velocity pair + density + pressure/divergence
      // scratch: four full fields of unique data.
      EXPECT_LE(edge.unique_addresses, 4 * field)
          << g.function(edge.producer).name << "->"
          << g.function(edge.consumer).name;
    }
  }
}

TEST(Golden, DuplicateCallOrderRejected) {
  prof::QuadProfiler q;
  const auto f = q.declare("f");
  EXPECT_THROW((void)sys::build_schedule("bad", q.graph(), {}, {f, f}),
               ConfigError);
  EXPECT_THROW((void)sys::build_schedule("bad", q.graph(), {}, {7}),
               ConfigError);
}

// ---------------------------------------------------------------------------
// Search-campaign output: the searched_* CSV columns and the
// "Algorithm 1 vs searched" REPORT section are a scripting contract, so
// a tiny deterministic campaign is pinned byte-for-byte. Regenerate with
//   HYBRIDIC_UPDATE_SEARCH_FIXTURES=1 ctest -R Golden
// and review the diff like any other golden update.

std::string search_fixture_path(const char* name) {
  return std::string{HYBRIDIC_TESTS_SOURCE_DIR} + "/fixtures/search/" + name;
}

bool search_update_mode() {
  const char* flag = std::getenv("HYBRIDIC_UPDATE_SEARCH_FIXTURES");
  return flag != nullptr && std::string{flag} == "1";
}

void expect_matches_fixture(const std::string& text, const char* name) {
  const std::string path = search_fixture_path(name);
  if (search_update_mode()) {
    std::ofstream out{path};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << text;
    return;
  }
  std::ifstream in{path};
  ASSERT_TRUE(in.good()) << path
                         << " missing; regenerate with "
                            "HYBRIDIC_UPDATE_SEARCH_FIXTURES=1";
  const std::string on_disk{std::istreambuf_iterator<char>{in},
                            std::istreambuf_iterator<char>{}};
  EXPECT_EQ(on_disk, text) << name << " drifted from the checked-in fixture";
}

TEST(Golden, SearchCampaignCsvColumnsAndReportSection) {
  dse::CampaignOptions options;
  options.count = 4;
  options.campaign_seed = 11;
  options.threads = 1;
  options.tier = tiers::TierMode::kAnalytic;
  options.space.max_kernels = 4;
  options.max_shrinks = 0;
  options.search = true;
  options.search_restarts = 2;
  options.search_iterations = 16;
  const dse::CampaignResult result = dse::run_campaign(options);

  const std::string csv = dse::campaign_csv(result);
  EXPECT_NE(csv.find("searched_solution,searched_analytic_s"),
            std::string::npos);
  expect_matches_fixture(csv, "campaign_search.csv");

  const std::string markdown = dse::campaign_markdown(result, options);
  const std::size_t at =
      markdown.find("### Algorithm 1 vs searched (`--search=anneal`)");
  ASSERT_NE(at, std::string::npos);
  std::size_t end = markdown.find("\n### ", at + 1);
  if (end == std::string::npos) {
    end = markdown.size();
  }
  expect_matches_fixture(markdown.substr(at, end - at),
                         "campaign_search_section.md");

  // The same sweep without --search must keep the original schema: no
  // searched columns, no Pareto section.
  options.search = false;
  const dse::CampaignResult plain = dse::run_campaign(options);
  EXPECT_EQ(dse::campaign_csv(plain).find("searched_"), std::string::npos);
  EXPECT_EQ(dse::campaign_markdown(plain, options)
                .find("Algorithm 1 vs searched"),
            std::string::npos);
}

}  // namespace
}  // namespace hybridic
