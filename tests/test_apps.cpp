// Functional and profile-shape tests of the four paper applications.
#include "apps/app.hpp"

#include <gtest/gtest.h>

#include "apps/canny.hpp"
#include "apps/fluid.hpp"
#include "apps/jpeg.hpp"
#include "apps/klt.hpp"
#include "util/error.hpp"

namespace hybridic::apps {
namespace {

TEST(Registry, ListsFourPaperApps) {
  const auto names = paper_app_names();
  ASSERT_EQ(names.size(), 4U);
  EXPECT_EQ(names[0], "canny");
  EXPECT_EQ(names[3], "fluid");
}

TEST(Registry, UnknownNameRejected) {
  EXPECT_THROW(run_paper_app("doom"), ConfigError);
}

TEST(Canny, VerifiesAndProfiles) {
  CannyConfig config;
  config.width = 64;
  config.height = 48;
  const ProfiledApp app = run_canny(config);
  EXPECT_TRUE(app.verified) << app.verification_note;
  const prof::CommGraph& g = app.graph();
  // The pipeline chain must appear in the profile.
  const auto blur = g.id_of("gaussian_blur");
  const auto sobel = g.id_of("sobel_gradient");
  const auto nms = g.id_of("non_max_suppression");
  const auto hyst = g.id_of("hysteresis");
  EXPECT_GT(g.bytes_between(g.id_of("load_image"), blur).count(), 0U);
  EXPECT_GT(g.bytes_between(blur, sobel).count(), 0U);
  EXPECT_GT(g.bytes_between(sobel, nms).count(), 0U);
  EXPECT_GT(g.bytes_between(nms, hyst).count(), 0U);
  EXPECT_GT(g.bytes_between(hyst, g.id_of("store_edges")).count(), 0U);
  // No backwards edges in this feed-forward pipeline.
  EXPECT_EQ(g.bytes_between(sobel, blur).count(), 0U);
}

TEST(Canny, EdgeCountScalesWithThreshold) {
  CannyConfig lenient;
  lenient.width = 64;
  lenient.height = 48;
  lenient.low_threshold = 10.0F;
  lenient.high_threshold = 30.0F;
  CannyConfig strict = lenient;
  strict.low_threshold = 60.0F;
  strict.high_threshold = 120.0F;
  const ProfiledApp a = run_canny(lenient);
  const ProfiledApp b = run_canny(strict);
  // More permissive thresholds keep at least as many edge pixels; compare
  // through the work done in store_edges' producer edge (edge map size is
  // equal, so compare verification notes indirectly via work units).
  const auto& ga = a.graph();
  const auto& gb = b.graph();
  EXPECT_EQ(ga.function(ga.id_of("hysteresis")).work_units >=
                gb.function(gb.id_of("hysteresis")).work_units,
            true);
}

TEST(Jpeg, TrackedPipelineMatchesReferenceDecoder) {
  JpegConfig config;
  config.width = 48;
  config.height = 48;
  const ProfiledApp app = run_jpeg(config);
  EXPECT_TRUE(app.verified) << app.verification_note;
}

TEST(Jpeg, ProfileMatchesPaperFigureFive) {
  JpegConfig config;
  config.width = 48;
  config.height = 48;
  const ProfiledApp app = run_jpeg(config);
  const prof::CommGraph& g = app.graph();
  const auto host = g.id_of("read_bitstream");
  const auto dc = g.id_of("huff_dc_dec");
  const auto ac = g.id_of("huff_ac_dec");
  const auto dq = g.id_of("dquantz_lum");
  const auto idct = g.id_of("j_rev_dct");
  const auto out = g.id_of("write_output");

  // Paper §V-B: huff_dc consumes from the host only and sends to kernels
  // only; dquantz sends to j_rev_dct only; j_rev_dct consumes from the
  // host and dquantz.
  EXPECT_GT(g.bytes_between(host, dc).count(), 0U);
  EXPECT_GT(g.bytes_between(dc, ac).count(), 0U);
  EXPECT_GT(g.bytes_between(ac, dq).count(), 0U);
  EXPECT_GT(g.bytes_between(dq, idct).count(), 0U);
  EXPECT_GT(g.bytes_between(host, idct).count(), 0U);
  EXPECT_GT(g.bytes_between(idct, out).count(), 0U);
  // dquantz receives from kernels only (its quant table is core ROM).
  EXPECT_EQ(g.bytes_between(host, dq).count(), 0U);
  // huff_dc never writes back to the host.
  EXPECT_EQ(g.bytes_between(dc, out).count(), 0U);
}

TEST(Jpeg, LargerImagesMoveMoreData) {
  JpegConfig small;
  small.width = 32;
  small.height = 32;
  JpegConfig large;
  large.width = 64;
  large.height = 64;
  const ProfiledApp a = run_jpeg(small);
  const ProfiledApp b = run_jpeg(large);
  const auto& ga = a.graph();
  const auto& gb = b.graph();
  EXPECT_GT(gb.bytes_between(gb.id_of("huff_ac_dec"),
                             gb.id_of("dquantz_lum"))
                .count(),
            ga.bytes_between(ga.id_of("huff_ac_dec"),
                             ga.id_of("dquantz_lum"))
                .count());
}

TEST(Klt, TracksTheGroundTruthShift) {
  KltConfig config;
  config.width = 96;
  config.height = 72;
  config.feature_count = 24;
  const ProfiledApp app = run_klt(config);
  EXPECT_TRUE(app.verified) << app.verification_note;
}

TEST(Klt, GradientCornerPairIsExclusive) {
  KltConfig config;
  config.width = 96;
  config.height = 72;
  const ProfiledApp app = run_klt(config);
  const prof::CommGraph& g = app.graph();
  const auto grad = g.id_of("compute_gradients");
  const auto corner = g.id_of("corner_response");
  const auto track = g.id_of("track_features");
  // compute_gradients' only consumer is corner_response (the SM pair).
  for (const prof::CommEdge& edge : g.edges()) {
    if (edge.producer == grad && edge.consumer != grad) {
      EXPECT_EQ(edge.consumer, corner);
    }
    if (edge.consumer == corner && edge.producer != corner) {
      EXPECT_EQ(edge.producer, grad);
    }
  }
  // track_features reads only host-produced data.
  for (const prof::CommEdge& edge : g.edges()) {
    if (edge.consumer == track && edge.producer != track) {
      EXPECT_TRUE(edge.producer == g.id_of("load_frames") ||
                  edge.producer == g.id_of("select_features"));
    }
  }
}

TEST(Fluid, ConservesAndProjects) {
  FluidConfig config;
  config.grid = 32;
  config.steps = 2;
  const ProfiledApp app = run_fluid(config);
  EXPECT_TRUE(app.verified) << app.verification_note;
}

TEST(Fluid, KernelsInterleaveNonExclusively) {
  FluidConfig config;
  config.grid = 32;
  config.steps = 2;
  const ProfiledApp app = run_fluid(config);
  const prof::CommGraph& g = app.graph();
  const auto diffuse = g.id_of("diffuse");
  const auto advect = g.id_of("advect");
  const auto project = g.id_of("project");
  // Each kernel talks to both other kernels — no exclusive pair exists,
  // which is what forces the NoC-only solution for this app.
  EXPECT_GT(g.bytes_between(diffuse, advect).count(), 0U);
  EXPECT_GT(g.bytes_between(diffuse, project).count(), 0U);
  EXPECT_GT(g.bytes_between(project, advect).count(), 0U);
  EXPECT_GT(g.bytes_between(advect, project).count(), 0U);
}

TEST(AllApps, ProfilesAreDeterministic) {
  for (const auto& name : paper_app_names()) {
    const ProfiledApp a = run_paper_app(name);
    const ProfiledApp b = run_paper_app(name);
    const auto ea = a.graph().edges();
    const auto eb = b.graph().edges();
    ASSERT_EQ(ea.size(), eb.size()) << name;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].bytes, eb[i].bytes) << name;
      EXPECT_EQ(ea[i].unique_addresses, eb[i].unique_addresses) << name;
    }
  }
}

TEST(AllApps, CalibrationCoversEveryKernel) {
  for (const auto& name : paper_app_names()) {
    const ProfiledApp app = run_paper_app(name);
    const sys::AppSchedule schedule = app.schedule();
    EXPECT_GE(schedule.specs.size(), 3U) << name;
    for (const auto& spec : schedule.specs) {
      EXPECT_GT(spec.hw_compute_cycles.count(), 0U)
          << name << "/" << spec.name;
      EXPECT_GT(spec.sw_compute_cycles.count(), 0U);
      EXPECT_GT(spec.area_luts, 0U);
    }
  }
}

}  // namespace
}  // namespace hybridic::apps
