#include <gtest/gtest.h>

#include "mem/crossbar.hpp"
#include "mem/mux.hpp"
#include "util/error.hpp"

namespace hybridic::mem {
namespace {

const sim::ClockDomain kClock{"kernel", Frequency::megahertz(100)};

class CrossbarTest : public ::testing::Test {
protected:
  Bram mem0_{"m0", kClock, Bytes{4096}, 4};
  Bram mem1_{"m1", kClock, Bytes{4096}, 4};
  Crossbar2x2 xbar_{"x", mem0_, mem1_};
};

TEST_F(CrossbarTest, ZeroLatencyRouting) {
  // Access through the crossbar costs exactly the BRAM port time — the
  // paper's "no communication overhead" property.
  const Picoseconds direct = mem0_.transfer_time(Bytes{64});
  const Picoseconds routed =
      xbar_.access(0, 0, Picoseconds{0}, Bytes{64});
  EXPECT_EQ(routed, direct);
}

TEST_F(CrossbarTest, BothSidesReachBothMemories) {
  (void)xbar_.access(0, 1, Picoseconds{0}, Bytes{8});
  (void)xbar_.access(1, 0, Picoseconds{0}, Bytes{8});
  EXPECT_EQ(mem1_.bytes_through(BramPort::kB).count(), 8U);
  EXPECT_EQ(mem0_.bytes_through(BramPort::kB).count(), 8U);
  EXPECT_EQ(xbar_.routed_accesses(), 2U);
}

TEST_F(CrossbarTest, ContentionOnSameMemorySerializes) {
  const Picoseconds a = xbar_.access(0, 0, Picoseconds{0}, Bytes{400});
  const Picoseconds b = xbar_.access(1, 0, Picoseconds{0}, Bytes{4});
  EXPECT_GT(b, a);
}

TEST_F(CrossbarTest, HostPortUnaffected) {
  (void)xbar_.access(0, 0, Picoseconds{0}, Bytes{4000});
  // Host uses port A; crossbar clients use port B.
  const Picoseconds host = mem0_.access(BramPort::kA, Picoseconds{0},
                                        Bytes{4});
  EXPECT_EQ(host.count(), 10'000U);
}

TEST_F(CrossbarTest, OutOfRangeRejected) {
  EXPECT_THROW((void)xbar_.access(2, 0, Picoseconds{0}, Bytes{4}), ConfigError);
  EXPECT_THROW((void)xbar_.access(0, 2, Picoseconds{0}, Bytes{4}), ConfigError);
  EXPECT_THROW((void)xbar_.memory(5), ConfigError);
}

class MuxTest : public ::testing::Test {
protected:
  Bram mem_{"m", kClock, Bytes{4096}, 4};
  PortMux mux_{"mux", kClock, mem_, BramPort::kB, 3};
};

TEST_F(MuxTest, FirstAccessPaysNoSwitch) {
  const Picoseconds done = mux_.access(0, Picoseconds{0}, Bytes{4});
  EXPECT_EQ(done.count(), 10'000U);
  EXPECT_EQ(mux_.switches(), 0U);
}

TEST_F(MuxTest, SwitchingClientsCostsOneCycle) {
  (void)mux_.access(0, Picoseconds{0}, Bytes{4});
  const Picoseconds done = mux_.access(1, Picoseconds{10'000}, Bytes{4});
  // One switch cycle + port serialization.
  EXPECT_EQ(done.count(), 30'000U);
  EXPECT_EQ(mux_.switches(), 1U);
}

TEST_F(MuxTest, SameClientBackToBackNoSwitch) {
  (void)mux_.access(2, Picoseconds{0}, Bytes{4});
  (void)mux_.access(2, Picoseconds{0}, Bytes{4});
  EXPECT_EQ(mux_.switches(), 0U);
}

TEST_F(MuxTest, InvalidClientRejected) {
  EXPECT_THROW((void)mux_.access(3, Picoseconds{0}, Bytes{4}), ConfigError);
}

TEST(Mux, NeedsAtLeastTwoClients) {
  Bram mem{"m", kClock, Bytes{64}, 4};
  EXPECT_THROW(PortMux("mux", kClock, mem, BramPort::kA, 1), ConfigError);
}

}  // namespace
}  // namespace hybridic::mem
