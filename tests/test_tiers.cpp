// Tiered evaluation engine tests (docs/MODEL.md §14): HopAccount
// composition, tier-mode parsing, the interval-pruning escalation policy,
// congruence signatures and the cache, and the two campaign-level
// properties the engine stands on — the analytic band contains the
// cycle-accurate result for every sampled design, and the tier record
// (CSV, markdown, stats) is byte-identical at any thread count, with
// auto-mode escalated rows matching their cycle-mode counterparts.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dse/campaign.hpp"
#include "dse/case_runner.hpp"
#include "noc/topology.hpp"
#include "tiers/analytic.hpp"
#include "tiers/congruence.hpp"
#include "tiers/tiered_evaluator.hpp"

namespace hybridic::tiers {
namespace {

// ---------------------------------------------------------------------------
// HopAccount: per-link accumulation, composition, scaling.
// ---------------------------------------------------------------------------

TEST(HopAccount, XyRouteAccountsHopTimesBytes) {
  const noc::Mesh2D mesh{3, 3};
  HopAccount account;
  // (0,0) -> (2,1): 2 X hops + 1 Y hop = 3 links crossed.
  account.add_route(mesh, mesh.id_of({0, 0}), mesh.id_of({2, 1}), 100);
  EXPECT_EQ(account.total_hop_bytes(), 300u);
  EXPECT_EQ(account.links_used(), 3u);
  EXPECT_EQ(account.max_link_bytes(), 100u);
}

TEST(HopAccount, SelfRouteCrossesNoLinks) {
  const noc::Mesh2D mesh{2, 2};
  HopAccount account;
  account.add_route(mesh, 3, 3, 4096);
  EXPECT_EQ(account.total_hop_bytes(), 0u);
  EXPECT_EQ(account.links_used(), 0u);
}

TEST(HopAccount, ComposesWithPlusAndScalesWithTimes) {
  const noc::Mesh2D mesh{4, 1};
  HopAccount a;
  HopAccount b;
  a.add_route(mesh, 0, 2, 10);  // links 0->1, 1->2.
  b.add_route(mesh, 1, 3, 5);   // links 1->2, 2->3.
  a += b;
  EXPECT_EQ(a.total_hop_bytes(), 30u);
  EXPECT_EQ(a.links_used(), 3u);
  EXPECT_EQ(a.max_link_bytes(), 15u);  // Shared link 1->2.
  a *= 4;  // Four identical frames.
  EXPECT_EQ(a.total_hop_bytes(), 120u);
  EXPECT_EQ(a.max_link_bytes(), 60u);
  EXPECT_EQ(a.links_used(), 3u);
}

TEST(HopAccount, ScratchIsClearedOnEveryAcquire) {
  {
    HopAccount& scratch = HopAccount::scratch();
    scratch.add_route(noc::Mesh2D{2, 2}, 0, 3, 999);
    EXPECT_GT(scratch.total_hop_bytes(), 0u);
  }
  EXPECT_EQ(HopAccount::scratch().total_hop_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Tier-mode parsing.
// ---------------------------------------------------------------------------

TEST(TierMode, ParsesTheThreeModesAndRejectsEverythingElse) {
  EXPECT_EQ(parse_tier_mode("auto"), TierMode::kAuto);
  EXPECT_EQ(parse_tier_mode("analytic"), TierMode::kAnalytic);
  EXPECT_EQ(parse_tier_mode("cycle"), TierMode::kCycle);
  EXPECT_FALSE(parse_tier_mode("").has_value());
  EXPECT_FALSE(parse_tier_mode("Auto").has_value());
  EXPECT_FALSE(parse_tier_mode("hybrid").has_value());
  for (const TierMode mode :
       {TierMode::kAuto, TierMode::kAnalytic, TierMode::kCycle}) {
    EXPECT_EQ(parse_tier_mode(to_string(mode)), mode);
  }
}

// ---------------------------------------------------------------------------
// Escalation policy (interval pruning + oracle demand + cap).
// ---------------------------------------------------------------------------

TierEstimate band(double lower, double upper) {
  TierEstimate estimate;
  estimate.designed_lower_seconds = lower;
  estimate.designed_upper_seconds = upper;
  return estimate;
}

TEST(SelectEscalations, PrunesBandsAboveTheBestUpperBound) {
  const TierEstimate winner = band(1.0, 2.0);
  const TierEstimate contender = band(1.5, 5.0);  // Reaches below 2.0.
  const TierEstimate pruned = band(3.0, 9.0);     // Provably worse.
  const std::vector<const TierEstimate*> estimates{&winner, &contender,
                                                   &pruned};
  const std::vector<bool> demands(3, false);
  const auto reasons = select_escalations(estimates, demands);
  EXPECT_EQ(reasons[0], EscalationReason::kRankOverlap);
  EXPECT_EQ(reasons[1], EscalationReason::kRankOverlap);
  EXPECT_EQ(reasons[2], EscalationReason::kNone);
}

TEST(SelectEscalations, OracleDemandTrumpsRanking) {
  const TierEstimate winner = band(1.0, 2.0);
  const TierEstimate pruned = band(3.0, 9.0);
  const std::vector<const TierEstimate*> estimates{&winner, &pruned};
  const std::vector<bool> demands{false, true};
  const auto reasons = select_escalations(estimates, demands);
  EXPECT_EQ(reasons[0], EscalationReason::kRankOverlap);
  EXPECT_EQ(reasons[1], EscalationReason::kOracle);
}

TEST(SelectEscalations, CapKeepsTheLowestLowerBounds) {
  const TierEstimate a = band(0.5, 10.0);
  const TierEstimate b = band(0.2, 10.0);
  const TierEstimate c = band(0.9, 10.0);
  const std::vector<const TierEstimate*> estimates{&a, &b, &c};
  const std::vector<bool> demands(3, false);
  const auto reasons = select_escalations(estimates, demands, 2);
  EXPECT_EQ(reasons[0], EscalationReason::kRankOverlap);
  EXPECT_EQ(reasons[1], EscalationReason::kRankOverlap);
  EXPECT_EQ(reasons[2], EscalationReason::kNone);  // Capped out.
}

TEST(SelectEscalations, NullEstimatesNeverEscalateByRank) {
  const TierEstimate winner = band(1.0, 2.0);
  const std::vector<const TierEstimate*> estimates{&winner, nullptr};
  const auto reasons =
      select_escalations(estimates, std::vector<bool>(2, false));
  EXPECT_EQ(reasons[0], EscalationReason::kRankOverlap);
  EXPECT_EQ(reasons[1], EscalationReason::kNone);
}

// ---------------------------------------------------------------------------
// Congruence signatures and the cache.
// ---------------------------------------------------------------------------

TEST(Congruence, KeyIsStableAndThetaSensitive) {
  const apps::SyntheticConfig config =
      dse::sample_config(dse::SweepSpace{}, 11, 0);
  TieredEvaluator evaluator;
  const AnalyticCase a = evaluator.analyze(config);
  const AnalyticCase b = evaluator.analyze(config);
  ASSERT_NE(a.estimate.congruence_key, 0u);
  EXPECT_EQ(a.estimate.congruence_key, b.estimate.congruence_key);
  // Re-analyzing the identical config is exactly what the cache is for.
  EXPECT_GE(evaluator.cache().hits(), 1u);

  const std::string signature = congruence_signature(
      a.schedule, a.proposed, evaluator.theta_seconds_per_byte());
  EXPECT_EQ(congruence_key_of(signature), a.estimate.congruence_key);
  const std::string other_theta = congruence_signature(
      a.schedule, a.proposed, evaluator.theta_seconds_per_byte() * 2.0);
  EXPECT_NE(congruence_key_of(other_theta),
            a.estimate.congruence_key);
}

TEST(Congruence, DistinctDesignsGetDistinctKeys) {
  TieredEvaluator evaluator;
  const AnalyticCase a =
      evaluator.analyze(dse::sample_config(dse::SweepSpace{}, 11, 1));
  const AnalyticCase b =
      evaluator.analyze(dse::sample_config(dse::SweepSpace{}, 11, 2));
  EXPECT_NE(a.estimate.congruence_key, b.estimate.congruence_key);
}

TEST(Congruence, CacheComputesOncePerKey) {
  CongruenceCache cache;
  int calls = 0;
  const auto make = [&calls] {
    ++calls;
    TierEstimate estimate;
    estimate.designed_kernel_seconds = 1.0;
    return estimate;
  };
  (void)cache.get(42, make);
  const TierEstimate cached = cache.get(42, make);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cached.congruence_key, 42u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------------
// Property: the analytic band contains the cycle-accurate result.
// ---------------------------------------------------------------------------

TEST(TierBand, ContainsCycleResultForSampledDesigns) {
  TieredEvaluator evaluator;
  for (std::uint64_t index = 0; index < 12; ++index) {
    const apps::SyntheticConfig config =
        dse::sample_config(dse::SweepSpace{}, 29, index);
    const dse::DesignCase c = dse::run_design_case(config);
    const TierEstimate estimate =
        evaluator.estimate(c.schedule, c.exp.proposed_design);
    const double designed = c.exp.proposed.kernel_seconds();
    const double baseline = c.exp.baseline.kernel_seconds();
    EXPECT_TRUE(estimate.contains_designed(designed))
        << "design " << index << ": measured " << designed
        << " outside [" << estimate.designed_lower_seconds << ", "
        << estimate.designed_upper_seconds << "]";
    EXPECT_TRUE(estimate.contains_baseline(baseline))
        << "design " << index << ": baseline " << baseline
        << " outside [" << estimate.baseline_lower_seconds << ", "
        << estimate.baseline_upper_seconds << "]";
  }
}

TEST(TierBand, AnalyzeAgreesWithTheCyclePipelineDesign) {
  // The analytic tier must run the same Algorithm 1 the cycle pipeline
  // runs: same solution tag, same estimate inputs.
  TieredEvaluator evaluator;
  const apps::SyntheticConfig config =
      dse::sample_config(dse::SweepSpace{}, 29, 3);
  const AnalyticCase analytic = evaluator.analyze(config);
  const dse::DesignCase cycle = dse::run_design_case(config);
  EXPECT_EQ(analytic.proposed.solution_tag(),
            cycle.exp.proposed_design.solution_tag());
  EXPECT_EQ(analytic.estimate.congruence_key,
            evaluator
                .estimate(cycle.schedule, cycle.exp.proposed_design)
                .congruence_key);
}

// ---------------------------------------------------------------------------
// Property: the tier record is byte-identical at any thread count, and
// auto-mode escalated rows match their cycle-mode counterparts.
// ---------------------------------------------------------------------------

dse::CampaignOptions small_campaign(TierMode tier, std::size_t threads) {
  dse::CampaignOptions options;
  options.count = 8;
  options.campaign_seed = 3;
  options.threads = threads;
  options.space.max_kernels = 5;
  options.max_shrinks = 0;
  options.tier = tier;
  return options;
}

TEST(TierCampaign, TierRecordIsThreadCountInvariant) {
  const dse::CampaignResult one =
      dse::run_campaign(small_campaign(TierMode::kAuto, 1));
  const dse::CampaignResult four =
      dse::run_campaign(small_campaign(TierMode::kAuto, 4));
  EXPECT_EQ(dse::campaign_csv(one), dse::campaign_csv(four));
  EXPECT_EQ(dse::campaign_markdown(one, small_campaign(TierMode::kAuto, 1)),
            dse::campaign_markdown(four, small_campaign(TierMode::kAuto, 4)));
  EXPECT_EQ(one.tier_stats.cycle_evals, four.tier_stats.cycle_evals);
  EXPECT_EQ(one.tier_stats.escalated_rank, four.tier_stats.escalated_rank);
  EXPECT_EQ(one.tier_stats.distinct_signatures,
            four.tier_stats.distinct_signatures);
}

/// Split a campaign CSV into lines for row-level comparison.
std::vector<std::string> csv_lines(const std::string& csv) {
  std::vector<std::string> lines;
  std::istringstream in{csv};
  for (std::string line; std::getline(in, line);) {
    lines.push_back(line);
  }
  return lines;
}

TEST(TierCampaign, EscalatedAutoRowsMatchCycleRowsExactly) {
  const dse::CampaignResult auto_run =
      dse::run_campaign(small_campaign(TierMode::kAuto, 2));
  const dse::CampaignResult cycle_run =
      dse::run_campaign(small_campaign(TierMode::kCycle, 2));
  ASSERT_EQ(auto_run.cases.size(), cycle_run.cases.size());
  const std::vector<std::string> auto_lines =
      csv_lines(dse::campaign_csv(auto_run));
  const std::vector<std::string> cycle_lines =
      csv_lines(dse::campaign_csv(cycle_run));
  ASSERT_EQ(auto_lines.size(), cycle_lines.size());

  std::uint64_t escalated = 0;
  for (std::size_t i = 0; i < auto_run.cases.size(); ++i) {
    if (!auto_run.cases[i].simulated) {
      continue;
    }
    ++escalated;
    // Same jobs, same seeds: the whole CSV row must match except the
    // escalation-reason column ("rank-overlap"/"oracle" vs "requested").
    std::string auto_row = auto_lines[i + 1];
    std::string cycle_row = cycle_lines[i + 1];
    const auto scrub = [](std::string& row, const std::string& reason) {
      const auto at = row.find("," + reason + ",");
      ASSERT_NE(at, std::string::npos) << row;
      row.replace(at + 1, reason.size(), "escalated");
    };
    scrub(auto_row, to_string(auto_run.cases[i].escalation));
    scrub(cycle_row, to_string(cycle_run.cases[i].escalation));
    EXPECT_EQ(auto_row, cycle_row) << "index " << i;
    // Oracle verdicts are unchanged by how the row got to the cycle tier.
    ASSERT_EQ(auto_run.cases[i].oracles.size(),
              cycle_run.cases[i].oracles.size());
    for (std::size_t o = 0; o < auto_run.cases[i].oracles.size(); ++o) {
      EXPECT_EQ(auto_run.cases[i].oracles[o].pass,
                cycle_run.cases[i].oracles[o].pass);
    }
  }
  EXPECT_GT(escalated, 0u) << "auto mode escalated nothing";
  EXPECT_EQ(escalated, auto_run.tier_stats.cycle_evals);
}

TEST(TierCampaign, AnalyticModeNeverTouchesTheCycleEngine) {
  const dse::CampaignResult result =
      dse::run_campaign(small_campaign(TierMode::kAnalytic, 2));
  EXPECT_EQ(result.tier_stats.cycle_evals, 0u);
  EXPECT_EQ(result.tier_stats.analytic_evals, result.cases.size());
  for (const dse::CaseOutcome& outcome : result.cases) {
    EXPECT_FALSE(outcome.simulated);
    if (outcome.ran()) {
      ASSERT_TRUE(outcome.analytic.has_value());
      EXPECT_NE(outcome.analytic->congruence_key, 0u);
    }
  }
}

}  // namespace
}  // namespace hybridic::tiers
