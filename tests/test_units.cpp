#include "util/units.hpp"

#include <gtest/gtest.h>

namespace hybridic {
namespace {

TEST(Picoseconds, DefaultIsZero) { EXPECT_EQ(Picoseconds{}.count(), 0U); }

TEST(Picoseconds, Arithmetic) {
  const Picoseconds a{1500};
  const Picoseconds b{500};
  EXPECT_EQ((a + b).count(), 2000U);
  EXPECT_EQ((a - b).count(), 1000U);
  EXPECT_EQ((a * 3).count(), 4500U);
  EXPECT_EQ((3 * a).count(), 4500U);
}

TEST(Picoseconds, CompoundAssignment) {
  Picoseconds t{100};
  t += Picoseconds{50};
  EXPECT_EQ(t.count(), 150U);
  t -= Picoseconds{150};
  EXPECT_EQ(t.count(), 0U);
}

TEST(Picoseconds, Ordering) {
  EXPECT_LT(Picoseconds{1}, Picoseconds{2});
  EXPECT_EQ(Picoseconds{7}, Picoseconds{7});
  EXPECT_GT(Picoseconds{9}, Picoseconds{2});
}

TEST(Picoseconds, UnitConversions) {
  const Picoseconds one_ms{1'000'000'000ULL};
  EXPECT_DOUBLE_EQ(one_ms.milliseconds(), 1.0);
  EXPECT_DOUBLE_EQ(one_ms.microseconds(), 1000.0);
  EXPECT_DOUBLE_EQ(one_ms.seconds(), 1e-3);
}

TEST(Frequency, PeriodOfCommonClocks) {
  EXPECT_EQ(Frequency::megahertz(400).period().count(), 2500U);
  EXPECT_EQ(Frequency::megahertz(100).period().count(), 10000U);
  EXPECT_EQ(Frequency::megahertz(150).period().count(), 6667U);  // rounded
}

TEST(Frequency, ZeroThrows) {
  EXPECT_THROW(Frequency{0}, std::invalid_argument);
}

TEST(Frequency, MegahertzValue) {
  EXPECT_DOUBLE_EQ(Frequency::megahertz(150).megahertz_value(), 150.0);
}

TEST(Bytes, Arithmetic) {
  Bytes b{100};
  b += Bytes{28};
  EXPECT_EQ(b.count(), 128U);
  EXPECT_EQ((Bytes{1} + Bytes{2}).count(), 3U);
  EXPECT_EQ((Bytes{5} - Bytes{2}).count(), 3U);
  EXPECT_DOUBLE_EQ(Bytes{2048}.kib(), 2.0);
}

TEST(Cycles, Arithmetic) {
  EXPECT_EQ((Cycles{3} + Cycles{4}).count(), 7U);
  EXPECT_EQ((Cycles{3} * 4).count(), 12U);
  Cycles c{1};
  c += Cycles{9};
  EXPECT_EQ(c.count(), 10U);
}

TEST(Conversions, CyclesToTime) {
  // 100 cycles at 100 MHz = 1 us.
  const Picoseconds t =
      cycles_to_time(Cycles{100}, Frequency::megahertz(100));
  EXPECT_EQ(t.count(), 1'000'000U);
}

TEST(Conversions, TimeToCyclesRoundsUp) {
  const Frequency clk = Frequency::megahertz(100);  // 10 ns period
  EXPECT_EQ(time_to_cycles(Picoseconds{10'000}, clk).count(), 1U);
  EXPECT_EQ(time_to_cycles(Picoseconds{10'001}, clk).count(), 2U);
  EXPECT_EQ(time_to_cycles(Picoseconds{19'999}, clk).count(), 2U);
}

TEST(Formatting, Time) {
  EXPECT_EQ(format_time(Picoseconds{500}), "500 ps");
  EXPECT_EQ(format_time(Picoseconds{2'500}), "2.50 ns");
  EXPECT_EQ(format_time(Picoseconds{1'500'000}), "1.50 us");
  EXPECT_EQ(format_time(Picoseconds{2'000'000'000ULL}), "2.000 ms");
  EXPECT_EQ(format_time(Picoseconds{1'500'000'000'000ULL}), "1.5000 s");
}

TEST(Formatting, Bytes) {
  EXPECT_EQ(format_bytes(Bytes{512}), "512 B");
  EXPECT_EQ(format_bytes(Bytes{2048}), "2.0 KiB");
  EXPECT_EQ(format_bytes(Bytes{3 * 1024 * 1024}), "3.00 MiB");
}

/// Property sweep: cycles->time->cycles round trip is exact for clock
/// frequencies whose period divides 1 second in picoseconds.
class ClockRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClockRoundTrip, Exact) {
  const Frequency clk = Frequency::megahertz(GetParam());
  for (std::uint64_t n : {1ULL, 7ULL, 100ULL, 12345ULL}) {
    const Picoseconds t = cycles_to_time(Cycles{n}, clk);
    EXPECT_EQ(time_to_cycles(t, clk).count(), n) << "at " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(CommonClocks, ClockRoundTrip,
                         ::testing::Values(100, 200, 400, 500, 125, 250));

}  // namespace
}  // namespace hybridic
