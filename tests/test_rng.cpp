#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hybridic {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next() != b.next()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 45);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17U);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.between(3, 7);
    EXPECT_GE(v, 3U);
    EXPECT_LE(v, 7U);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5U);  // All values hit over 2000 draws.
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{11};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng{13};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.25, 0.02);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == UINT64_MAX);
  Rng rng{5};
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace hybridic
