// Tests of the NoC observability features: the VCD tracer and the
// statistics report.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/vcd_trace.hpp"

namespace hybridic::noc {
namespace {

const sim::ClockDomain kNocClock{"noc", Frequency::megahertz(150)};

struct Net {
  Net() : network("noc", engine, kNocClock, Mesh2D{3, 3}, {}) {
    network.attach_adapter(0, "src", AdapterKind::kAccelerator);
    network.attach_adapter(8, "dst", AdapterKind::kLocalMemory);
  }
  sim::Engine engine;
  Network network;
};

TEST(VcdTracer, ProducesWellFormedHeader) {
  Net net;
  VcdTracer tracer{net.network};
  net.network.send(0, 8, Bytes{256}, {});
  net.engine.run();
  const std::string vcd = tracer.finish();
  EXPECT_EQ(vcd.find("$timescale 1ps $end"), 0U);
  EXPECT_NE(vcd.find("$scope module noc $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  // One occupancy + one forwarded wire per router.
  std::size_t vars = 0;
  for (std::size_t pos = vcd.find("$var");
       pos != std::string::npos; pos = vcd.find("$var", pos + 1)) {
    ++vars;
  }
  EXPECT_EQ(vars, 18U);
}

TEST(VcdTracer, RecordsValueChangesOverTime) {
  Net net;
  VcdTracer tracer{net.network};
  net.network.send(0, 8, Bytes{1024}, {});
  net.engine.run();
  EXPECT_GT(tracer.samples(), 10U);
  const std::string vcd = tracer.finish();
  // Timestamps and binary vectors present.
  EXPECT_NE(vcd.find("\n#"), std::string::npos);
  EXPECT_NE(vcd.find("\nb"), std::string::npos);
  // Occupancy must have gone above zero at some point: some vector with a
  // 1 bit in the low byte.
  EXPECT_NE(vcd.find("b00000001 "), std::string::npos);
}

TEST(VcdTracer, NoTrafficMeansNoSamples) {
  Net net;
  VcdTracer tracer{net.network};
  net.engine.run();  // Nothing scheduled: the NoC never ticks.
  EXPECT_EQ(tracer.samples(), 0U);
  const std::string vcd = tracer.finish();
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
}

TEST(VcdTracer, DetachesOnFinish) {
  Net net;
  VcdTracer tracer{net.network};
  net.network.send(0, 8, Bytes{64}, {});
  net.engine.run();
  (void)tracer.finish();
  // Further traffic must not crash (observer removed).
  net.network.send(0, 8, Bytes{64}, {});
  net.engine.run();
  SUCCEED();
}

TEST(StatsReport, SummarizesTraffic) {
  Net net;
  net.network.send(0, 8, Bytes{512}, {});
  net.engine.run();
  const std::string report = net.network.stats_report();
  EXPECT_NE(report.find("NoC 3x3 (XY)"), std::string::npos);
  EXPECT_NE(report.find("1 messages"), std::string::npos);
  EXPECT_NE(report.find("flit latency"), std::string::npos);
  EXPECT_NE(report.find("router (0,0)"), std::string::npos);
}

TEST(StatsReport, QuietBeforeTraffic) {
  Net net;
  const std::string report = net.network.stats_report();
  EXPECT_NE(report.find("0 messages"), std::string::npos);
  EXPECT_EQ(report.find("router ("), std::string::npos);
}

}  // namespace
}  // namespace hybridic::noc
