#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hybridic::sim {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, ResetClears) {
  Summary s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0U);
}

TEST(Histogram, InvalidConfigThrows) {
  EXPECT_THROW(Histogram(0.0, 4), ConfigError);
  EXPECT_THROW(Histogram(1.0, 0), ConfigError);
}

TEST(Histogram, BucketsSamplesCorrectly) {
  Histogram h{1.0, 4};
  h.add(0.5);
  h.add(1.5);
  h.add(1.9);
  h.add(3.99);
  h.add(100.0);  // overflow
  EXPECT_EQ(h.bucket(0), 1U);
  EXPECT_EQ(h.bucket(1), 2U);
  EXPECT_EQ(h.bucket(2), 0U);
  EXPECT_EQ(h.bucket(3), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_EQ(h.total(), 5U);
}

TEST(Histogram, NegativeSamplesLandInFirstBucket) {
  Histogram h{1.0, 2};
  h.add(-3.0);
  EXPECT_EQ(h.bucket(0), 1U);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h{1.0, 10};
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i % 10) + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 4.5, 1.0);
  EXPECT_NEAR(h.quantile(0.95), 9.5, 1.0);
  EXPECT_DOUBLE_EQ(Histogram(1.0, 2).quantile(0.5), 0.0);  // empty
}

TEST(Histogram, OutOfRangeBucketThrows) {
  Histogram h{1.0, 2};
  EXPECT_THROW((void)h.bucket(2), SimulationError);
}

}  // namespace
}  // namespace hybridic::sim
