// In-process journal/resume semantics of run_campaign (docs/MODEL.md
// §17): checkpointed rows restore byte-identically, quarantine pins
// poison designs without losing the rest of the sweep, journal damage
// degrades to re-execution (never to wrong rows), and a stale
// fingerprint ignores the whole ledger.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dse/campaign.hpp"
#include "util/error.hpp"

namespace hybridic {
namespace {

/// A fast sweep: analytic tier, tiny graphs, no oracle shrinking.
dse::CampaignOptions small_campaign(const std::string& journal_path) {
  dse::CampaignOptions options;
  options.count = 6;
  options.campaign_seed = 11;
  options.threads = 2;
  options.tier = tiers::TierMode::kAnalytic;
  options.space.max_kernels = 4;
  options.max_shrinks = 0;
  options.journal_path = journal_path;
  return options;
}

std::string journal_path(const char* tag) {
  const std::string path =
      testing::TempDir() + "resume_test_" + tag + ".journal";
  std::remove(path.c_str());
  return path;
}

TEST(CampaignResume, RestoredRowsReproduceTheCsvByteForByte) {
  const std::string path = journal_path("roundtrip");
  const dse::CampaignOptions first = small_campaign(path);
  const dse::CampaignResult cold = dse::run_campaign(first);
  EXPECT_EQ(cold.resumed_count, 0U);
  const std::string cold_csv = dse::campaign_csv(cold);

  dse::CampaignOptions second = small_campaign(path);
  second.resume = true;
  second.threads = 1;  // Byte-identity must not depend on thread count.
  const dse::CampaignResult warm = dse::run_campaign(second);
  EXPECT_EQ(warm.resumed_count, first.count);
  EXPECT_EQ(warm.journal_skipped_lines, 0U);
  EXPECT_EQ(dse::campaign_csv(warm), cold_csv);
}

TEST(CampaignResume, SearchCampaignRowsRestoreByteForByte) {
  // The searched_* columns ride the same journal: a resumed search
  // campaign must reproduce the uninterrupted CSV byte-for-byte without
  // re-running the annealer, at a different thread count.
  const std::string path = journal_path("search");
  dse::CampaignOptions first = small_campaign(path);
  first.search = true;
  first.search_restarts = 2;
  first.search_iterations = 12;
  const dse::CampaignResult cold = dse::run_campaign(first);
  const std::string cold_csv = dse::campaign_csv(cold);
  EXPECT_NE(cold_csv.find("searched_solution"), std::string::npos);

  dse::CampaignOptions second = first;
  second.resume = true;
  second.threads = 1;
  const dse::CampaignResult warm = dse::run_campaign(second);
  EXPECT_EQ(warm.resumed_count, first.count);
  EXPECT_EQ(dse::campaign_csv(warm), cold_csv);

  // A search journal is a different campaign from a plain one: the
  // fingerprint embeds the search knobs, so a non-search resume must
  // ignore every entry instead of restoring rows with a foreign schema.
  dse::CampaignOptions plain = small_campaign(path);
  plain.resume = true;
  const dse::CampaignResult mismatched = dse::run_campaign(plain);
  EXPECT_EQ(mismatched.resumed_count, 0U);
  EXPECT_EQ(dse::campaign_csv(mismatched).find("searched_"),
            std::string::npos);
}

TEST(CampaignResume, WithoutResumeFlagJournalIsWriteOnly) {
  const std::string path = journal_path("writeonly");
  (void)dse::run_campaign(small_campaign(path));
  // Second run without --resume recomputes everything (and double-appends
  // identical records, which first-wins dedup makes benign).
  const dse::CampaignResult again = dse::run_campaign(small_campaign(path));
  EXPECT_EQ(again.resumed_count, 0U);
}

TEST(CampaignResume, CorruptedJournalDegradesToReExecution) {
  const std::string path = journal_path("corrupt");
  const dse::CampaignResult cold = dse::run_campaign(small_campaign(path));
  const std::string cold_csv = dse::campaign_csv(cold);

  // Flip one payload byte on every line: every record fails its checksum,
  // so the resume recomputes the full sweep — same CSV, zero restored.
  std::string text;
  {
    std::ifstream in{path, std::ios::binary};
    text.assign(std::istreambuf_iterator<char>{in},
                std::istreambuf_iterator<char>{});
  }
  for (std::size_t pos = text.find("index");
       pos != std::string::npos; pos = text.find("index", pos + 1)) {
    text[pos] = 'X';
  }
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << text;
  }

  dse::CampaignOptions resume = small_campaign(path);
  resume.resume = true;
  const dse::CampaignResult warm = dse::run_campaign(resume);
  EXPECT_EQ(warm.resumed_count, 0U);
  EXPECT_GT(warm.journal_skipped_lines, 0U);
  EXPECT_EQ(dse::campaign_csv(warm), cold_csv);
}

TEST(CampaignResume, StaleFingerprintIgnoresTheWholeLedger) {
  const std::string path = journal_path("stale");
  (void)dse::run_campaign(small_campaign(path));

  dse::CampaignOptions changed = small_campaign(path);
  changed.campaign_seed = 12;  // Different campaign: entries unsound.
  changed.resume = true;
  const dse::CampaignResult warm = dse::run_campaign(changed);
  EXPECT_EQ(warm.resumed_count, 0U);
  // The mismatched lines are not damage — they belong to another
  // campaign — so they are not counted as skipped either.
  EXPECT_EQ(warm.journal_skipped_lines, 0U);
}

TEST(CampaignResume, WedgedJobIsQuarantinedAndRestoredOnResume) {
  const std::string path = journal_path("wedge");
  auto cancel = std::make_shared<std::atomic<bool>>(false);

  dse::CampaignOptions wedged = small_campaign(path);
  wedged.job_timeout_seconds = 0.2;
  wedged.quarantine_shrink_attempts = 2;
  wedged.job_started_hook = [cancel](std::uint64_t index) {
    while (index == 3 && !cancel->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };
  const dse::CampaignResult first = dse::run_campaign(wedged);
  EXPECT_EQ(first.quarantined_count, 1U);
  ASSERT_EQ(first.cases.size(), 6U);
  EXPECT_TRUE(first.cases[3].quarantined);
  EXPECT_NE(first.cases[3].error.find("watchdog"), std::string::npos);
  for (std::size_t i = 0; i < first.cases.size(); ++i) {
    if (i != 3) {
      EXPECT_FALSE(first.cases[i].quarantined) << i;
      EXPECT_TRUE(first.cases[i].analytic.has_value()) << i;
    }
  }
  // The poison design is pinned as a reproducer even with max_shrinks 0.
  ASSERT_EQ(first.reproducers.size(), 1U);
  EXPECT_EQ(first.reproducers[0].oracle, "quarantine-timeout");
  EXPECT_EQ(first.reproducers[0].config.seed, first.cases[3].config.seed);
  const std::string first_csv = dse::campaign_csv(first);
  EXPECT_NE(first_csv.find("quarantined: wall-clock watchdog"),
            std::string::npos);

  // Resume (wedge still armed): the quarantined row restores from the
  // journal without re-running, so the resume is fast and byte-identical.
  dse::CampaignOptions resume = wedged;
  resume.resume = true;
  const dse::CampaignResult second = dse::run_campaign(resume);
  EXPECT_EQ(second.resumed_count, 6U);
  EXPECT_EQ(second.quarantined_count, 1U);
  EXPECT_EQ(dse::campaign_csv(second), first_csv);

  cancel->store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

TEST(CampaignResume, StopFlagDrainsAndResumeCompletes) {
  const std::string path = journal_path("drain");
  std::atomic<bool> stop{false};

  // Reference: the same campaign uninterrupted, no journal.
  dse::CampaignOptions reference = small_campaign("");
  const std::string want = dse::campaign_csv(dse::run_campaign(reference));

  dse::CampaignOptions drained = small_campaign(path);
  drained.threads = 1;  // Serial: everything after the flag is skipped.
  drained.stop_requested = &stop;
  drained.job_started_hook = [&stop](std::uint64_t index) {
    if (index >= 2) {
      stop.store(true);
    }
  };
  const dse::CampaignResult partial = dse::run_campaign(drained);
  EXPECT_TRUE(partial.interrupted);
  EXPECT_GT(partial.skipped_count, 0U);
  EXPECT_LT(partial.skipped_count, partial.cases.size());
  // Skipped rows carry the skip note and are NOT journaled.
  bool saw_skip = false;
  for (const dse::CaseOutcome& c : partial.cases) {
    saw_skip = saw_skip || c.skipped;
  }
  EXPECT_TRUE(saw_skip);

  dse::CampaignOptions resume = small_campaign(path);
  resume.resume = true;
  const dse::CampaignResult full = dse::run_campaign(resume);
  EXPECT_FALSE(full.interrupted);
  EXPECT_GT(full.resumed_count, 0U);
  EXPECT_EQ(full.skipped_count, 0U);
  EXPECT_EQ(dse::campaign_csv(full), want);
}

TEST(CampaignResume, ResumeRequiresJournalAndRejectsAutoTier) {
  dse::CampaignOptions no_journal = small_campaign("");
  no_journal.resume = true;
  EXPECT_THROW((void)dse::run_campaign(no_journal), ConfigError);

  dse::CampaignOptions auto_tier = small_campaign(journal_path("auto"));
  auto_tier.tier = tiers::TierMode::kAuto;
  EXPECT_THROW((void)dse::run_campaign(auto_tier), ConfigError);
}

}  // namespace
}  // namespace hybridic
