#include "sys/executor.hpp"

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/interconnect_design.hpp"
#include "sys/experiment.hpp"

namespace hybridic::sys {
namespace {

/// A simple three-kernel chain application used by most tests here:
/// host -> k1 -> k2 -> k3 -> host with known volumes and cycle counts.
struct Chain {
  Chain() {
    host = graph.add_function("host");
    k1 = graph.add_function("k1");
    k2 = graph.add_function("k2");
    k3 = graph.add_function("k3");
    sink = graph.add_function("sink");
    graph.function_mutable(host).work_units = 10'000;
    graph.function_mutable(k1).work_units = 50'000;
    graph.function_mutable(k2).work_units = 50'000;
    graph.function_mutable(k3).work_units = 50'000;
    graph.function_mutable(sink).work_units = 5'000;
    graph.add_transfer(host, k1, Bytes{40'000}, 40'000);
    graph.add_transfer(k1, k2, Bytes{40'000}, 40'000);
    graph.add_transfer(k2, k3, Bytes{40'000}, 40'000);
    graph.add_transfer(k3, sink, Bytes{40'000}, 40'000);

    schedule = build_schedule(
        "chain", graph,
        {{"k1", 8.0, 1.0, 1000, 1000, true, false, false},
         {"k2", 8.0, 1.0, 1000, 1000, true, false, false},
         {"k3", 8.0, 1.0, 1000, 1000, true, false, false}});
  }

  prof::CommGraph graph;
  prof::FunctionId host, k1, k2, k3, sink;
  AppSchedule schedule;
};

TEST(RunSoftware, SumsAllCyclesOnHost) {
  Chain chain;
  PlatformConfig config;
  const RunResult result = run_software(chain.schedule, config);
  // (10000 + 5000) * 4 CPW host fns + 3 * 50000 * 8 kernels, at 400 MHz.
  const double expected =
      (15'000 * 4.0 + 3 * 50'000 * 8.0) / 400e6;
  EXPECT_NEAR(result.total_seconds, expected, 1e-12);
  EXPECT_GT(result.kernel_compute_seconds, 0.0);
  EXPECT_GT(result.host_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.kernel_comm_seconds, 0.0);
  EXPECT_EQ(result.steps.size(), 5U);
}

TEST(RunBaseline, SequentialAndSlowerThanComputeAlone) {
  Chain chain;
  PlatformConfig config;
  const RunResult result = run_baseline(chain.schedule, config);
  // Kernel compute: 3 * 50000 cycles at 100 MHz = 1.5 ms.
  EXPECT_NEAR(result.kernel_compute_seconds, 1.5e-3, 1e-6);
  // Communication is strictly positive: every kernel round-trips its data.
  EXPECT_GT(result.kernel_comm_seconds, 0.0);
  // Steps are strictly ordered in time.
  for (std::size_t i = 1; i < result.steps.size(); ++i) {
    EXPECT_GE(result.steps[i].start_seconds,
              result.steps[i - 1].done_seconds - 1e-12);
  }
  EXPECT_GT(result.total_seconds, result.kernel_compute_seconds);
}

TEST(RunBaseline, CommTimeTracksDataVolume) {
  // Two single-kernel apps, identical compute, 4x different data volume.
  prof::CommGraph graph4;
  const auto h = graph4.add_function("host");
  const auto k = graph4.add_function("k1");
  graph4.function_mutable(k).work_units = 50'000;
  graph4.add_transfer(h, k, Bytes{160'000}, 160'000);
  const AppSchedule sched4 = build_schedule(
      "big", graph4, {{"k1", 8.0, 1.0, 100, 100, true, false, false}});

  prof::CommGraph graph1;
  const auto h1 = graph1.add_function("host");
  const auto ka = graph1.add_function("k1");
  graph1.function_mutable(ka).work_units = 50'000;
  graph1.add_transfer(h1, ka, Bytes{40'000}, 40'000);
  const AppSchedule sched1 = build_schedule(
      "small", graph1, {{"k1", 8.0, 1.0, 100, 100, true, false, false}});

  PlatformConfig config;
  const RunResult r4 = run_baseline(sched4, config);
  const RunResult r1 = run_baseline(sched1, config);
  EXPECT_NEAR(r4.kernel_comm_seconds / r1.kernel_comm_seconds, 4.0, 0.3);
}

TEST(RunDesigned, ProposedNoSlowerThanBaseline) {
  Chain chain;
  PlatformConfig config;
  core::DesignInput input = make_design_input(chain.schedule, config);
  const core::DesignResult design = core::design_interconnect(input);
  const RunResult baseline = run_baseline(chain.schedule, config);
  const RunResult proposed =
      run_designed(chain.schedule, design, config);
  EXPECT_LE(proposed.total_seconds, baseline.total_seconds * 1.001);
  EXPECT_EQ(proposed.system_name, "proposed");
}

TEST(RunDesigned, SharedMemoryRemovesChainTraffic) {
  Chain chain;
  PlatformConfig config;
  core::DesignInput input = make_design_input(chain.schedule, config);
  const core::DesignResult design = core::design_interconnect(input);
  // The chain pairs (k1,k2) and leaves k2->k3 on the NoC.
  EXPECT_FALSE(design.shared_pairs.empty());
  const RunResult baseline = run_baseline(chain.schedule, config);
  const RunResult proposed =
      run_designed(chain.schedule, design, config);
  EXPECT_LT(proposed.kernel_comm_seconds,
            baseline.kernel_comm_seconds * 0.7);
}

TEST(RunDesigned, NocOnlyVariantRuns) {
  Chain chain;
  PlatformConfig config;
  core::DesignInput input = make_design_input(chain.schedule, config);
  input.enable_shared_memory = false;
  input.enable_adaptive_mapping = false;
  const core::DesignResult design = core::design_interconnect(input);
  const RunResult result =
      run_designed(chain.schedule, design, config, "noc-only");
  EXPECT_EQ(result.system_name, "noc-only");
  EXPECT_GT(result.total_seconds, 0.0);
  const RunResult baseline = run_baseline(chain.schedule, config);
  EXPECT_LE(result.total_seconds, baseline.total_seconds * 1.001);
}

TEST(RunDesigned, DesignWithoutNocStillExecutes) {
  // Only one kernel-pair: everything resolves to shared memory.
  prof::CommGraph graph;
  const auto h = graph.add_function("host");
  const auto a = graph.add_function("a");
  const auto b = graph.add_function("b");
  graph.function_mutable(a).work_units = 10'000;
  graph.function_mutable(b).work_units = 10'000;
  graph.add_transfer(h, a, Bytes{1000}, 1000);
  graph.add_transfer(a, b, Bytes{50'000}, 50'000);
  graph.add_transfer(b, h, Bytes{1000}, 1000);
  const AppSchedule schedule = build_schedule(
      "pair", graph,
      {{"a", 8.0, 1.0, 100, 100, true, false, false},
       {"b", 8.0, 1.0, 100, 100, true, false, false}});
  PlatformConfig config;
  core::DesignInput input = make_design_input(schedule, config);
  const core::DesignResult design = core::design_interconnect(input);
  EXPECT_FALSE(design.uses_noc());
  ASSERT_EQ(design.shared_pairs.size(), 1U);
  const RunResult proposed = run_designed(schedule, design, config);
  const RunResult baseline = run_baseline(schedule, config);
  // The 50 KB pair transfer vanished: proposed strictly faster.
  EXPECT_LT(proposed.total_seconds, baseline.total_seconds);
}

TEST(RunDesigned, DuplicationShortensKernelSpan) {
  prof::CommGraph graph;
  const auto h = graph.add_function("host");
  const auto big = graph.add_function("big");
  const auto post = graph.add_function("post");
  graph.function_mutable(big).work_units = 400'000;
  graph.function_mutable(post).work_units = 10'000;
  graph.add_transfer(h, big, Bytes{10'000}, 10'000);
  graph.add_transfer(big, post, Bytes{10'000}, 10'000);
  graph.add_transfer(post, h, Bytes{1'000}, 1'000);
  const AppSchedule schedule = build_schedule(
      "dup", graph,
      {{"big", 8.0, 1.0, 1000, 1000, true, true, false},
       {"post", 8.0, 1.0, 1000, 1000, true, false, false}});
  PlatformConfig config;
  core::DesignInput with = make_design_input(schedule, config);
  const core::DesignResult dup_design = core::design_interconnect(with);
  ASSERT_FALSE(dup_design.parallel.duplicated_specs.empty());

  core::DesignInput without = with;
  without.enable_duplication = false;
  const core::DesignResult plain_design =
      core::design_interconnect(without);

  const RunResult dup = run_designed(schedule, dup_design, config);
  const RunResult plain = run_designed(schedule, plain_design, config);
  // 400k kernel cycles = 4 ms; halving saves ~2 ms minus overhead.
  EXPECT_LT(dup.total_seconds, plain.total_seconds - 1e-3);
}

TEST(RunDesigned, TimesAreInternallyConsistent) {
  Chain chain;
  PlatformConfig config;
  core::DesignInput input = make_design_input(chain.schedule, config);
  const core::DesignResult design = core::design_interconnect(input);
  const RunResult r = run_designed(chain.schedule, design, config);
  double sum = r.host_seconds + r.kernel_compute_seconds;
  EXPECT_LE(sum, r.total_seconds + 1e-9);
  for (const StepTiming& step : r.steps) {
    EXPECT_GE(step.done_seconds, step.start_seconds);
    EXPECT_GE(step.compute_seconds, 0.0);
    EXPECT_GE(step.comm_seconds, 0.0);
  }
}

/// Property: on synthetic apps of many shapes, the proposed system is
/// never slower than the baseline (modulo rounding), and all runs finish.
class ExecutorProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorProperties, ProposedDominatesBaseline) {
  apps::SyntheticConfig sc;
  sc.seed = GetParam();
  sc.kernel_count = 5;
  const apps::ProfiledApp app = apps::make_synthetic_app(sc);
  const AppSchedule schedule = app.schedule();
  PlatformConfig config;
  core::DesignInput input = make_design_input(schedule, config);
  const core::DesignResult design = core::design_interconnect(input);
  const RunResult baseline = run_baseline(schedule, config);
  const RunResult proposed = run_designed(schedule, design, config);
  EXPECT_GT(baseline.total_seconds, 0.0);
  EXPECT_GT(proposed.total_seconds, 0.0);
  EXPECT_LE(proposed.total_seconds, baseline.total_seconds * 1.02)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorProperties,
                         ::testing::Values(3, 9, 17, 23, 31, 57));

}  // namespace
}  // namespace hybridic::sys
