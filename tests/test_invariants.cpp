// Cross-cutting invariants over the whole pipeline, checked on every
// paper application and a set of synthetic shapes.
#include <gtest/gtest.h>

#include <set>

#include "apps/app.hpp"
#include "apps/synthetic.hpp"
#include "core/interconnect_design.hpp"
#include "sys/experiment.hpp"

namespace hybridic {
namespace {

/// Profile the app set once for the whole suite (runs are deterministic
/// and read-only afterwards).
class Invariants : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    apps_ = new std::vector<apps::ProfiledApp>();
    for (const auto& name : apps::paper_app_names()) {
      apps_->push_back(apps::run_paper_app(name));
    }
    for (const std::uint64_t seed : {111ULL, 222ULL}) {
      apps::SyntheticConfig config;
      config.seed = seed;
      apps_->push_back(apps::make_synthetic_app(config));
    }
  }
  static void TearDownTestSuite() {
    delete apps_;
    apps_ = nullptr;
  }
  [[nodiscard]] static const std::vector<apps::ProfiledApp>& all_apps() {
    return *apps_;
  }

private:
  static std::vector<apps::ProfiledApp>* apps_;
};

std::vector<apps::ProfiledApp>* Invariants::apps_ = nullptr;

TEST_F(Invariants, UmaNeverExceedsRawBytes) {
  for (const apps::ProfiledApp& app : all_apps()) {
    for (const prof::CommEdge& edge : app.graph().edges()) {
      EXPECT_LE(edge.unique_addresses, edge.bytes.count())
          << app.name << ": "
          << app.graph().function(edge.producer).name << "->"
          << app.graph().function(edge.consumer).name;
    }
  }
}

TEST_F(Invariants, KernelInOutVolumesBalance) {
  // Σ D^K_out over kernels == Σ D^K_in over kernels: every kernel-to-
  // kernel byte is produced exactly once and consumed exactly once at
  // the Eq-1 level.
  for (const apps::ProfiledApp& app : all_apps()) {
    const sys::AppSchedule schedule = app.schedule();
    std::set<prof::FunctionId> hw;
    for (const auto& spec : schedule.specs) {
      hw.insert(spec.function);
    }
    std::uint64_t out_total = 0;
    std::uint64_t in_total = 0;
    for (const auto& spec : schedule.specs) {
      const core::KernelQuantities q =
          core::derive_quantities(*schedule.graph, spec.function, hw);
      out_total += q.kernel_out.count();
      in_total += q.kernel_in.count();
    }
    EXPECT_EQ(out_total, in_total) << app.name;
  }
}

TEST_F(Invariants, SharedPairExclusivityHoldsInEveryDesign) {
  for (const apps::ProfiledApp& app : all_apps()) {
    const sys::AppSchedule schedule = app.schedule();
    const core::DesignResult design = core::design_interconnect(
        sys::make_design_input(schedule, sys::PlatformConfig{}));
    std::set<prof::FunctionId> hw;
    for (const auto& spec : schedule.specs) {
      hw.insert(spec.function);
    }
    for (const core::SharedMemoryPairing& pair : design.shared_pairs) {
      const prof::FunctionId p =
          design.instances[pair.producer_instance].function;
      const prof::FunctionId c =
          design.instances[pair.consumer_instance].function;
      const core::KernelQuantities qp =
          core::derive_quantities(*schedule.graph, p, hw);
      const core::KernelQuantities qc =
          core::derive_quantities(*schedule.graph, c, hw);
      // §IV-A1 line 9: the pair covers ALL of the producer's kernel
      // output and ALL of the consumer's kernel input.
      EXPECT_EQ(qp.kernel_out, pair.bytes) << app.name;
      EXPECT_EQ(qc.kernel_in, pair.bytes) << app.name;
    }
  }
}

TEST_F(Invariants, SystemOrderingHoldsEverywhere) {
  for (const apps::ProfiledApp& app : all_apps()) {
    const sys::AppSchedule schedule = app.schedule();
    const sys::AppExperiment exp = sys::run_experiment(
        schedule, sys::PlatformConfig{}, app.environment);
    // Proposed never slower than baseline; NoC-only within a whisker of
    // proposed; resource ordering baseline <= proposed <= NoC-only.
    EXPECT_LE(exp.proposed.total_seconds,
              exp.baseline.total_seconds * 1.02)
        << app.name;
    EXPECT_LE(exp.proposed_resources.luts, exp.noc_only_resources.luts)
        << app.name;
    EXPECT_LE(exp.baseline_resources.luts, exp.proposed_resources.luts)
        << app.name;
    // Energy consistency: ratio = (P_ours * T_ours) / (P_base * T_base).
    const double expected_ratio =
        (exp.proposed_power_watts * exp.proposed.total_seconds) /
        (exp.baseline_power_watts * exp.baseline.total_seconds);
    EXPECT_NEAR(exp.energy_ratio_vs_baseline(), expected_ratio, 1e-12)
        << app.name;
  }
}

TEST_F(Invariants, StepTimingsAreConsistent) {
  for (const apps::ProfiledApp& app : all_apps()) {
    const sys::AppSchedule schedule = app.schedule();
    const sys::PlatformConfig config;
    const core::DesignResult design = core::design_interconnect(
        sys::make_design_input(schedule, config));
    for (const sys::RunResult& run :
         {sys::run_baseline(schedule, config),
          sys::run_designed(schedule, design, config)}) {
      double last_done = 0.0;
      for (const sys::StepTiming& step : run.steps) {
        EXPECT_GE(step.done_seconds, step.start_seconds) << app.name;
        EXPECT_GE(step.compute_seconds, 0.0);
        EXPECT_GE(step.comm_seconds, 0.0);
        last_done = std::max(last_done, step.done_seconds);
      }
      EXPECT_NEAR(run.total_seconds, std::max(last_done,
                                              run.total_seconds),
                  1e-12);
      EXPECT_GE(run.total_seconds, last_done - 1e-12) << app.name;
    }
  }
}

}  // namespace
}  // namespace hybridic
