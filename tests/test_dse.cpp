// Property-based DSE engine tests: config-space sampling, the invariant
// oracle library over generated designs, the failure shrinker, the JSON
// reproducer round trip, and campaign determinism across thread counts.
//
// The MutationShrink tests drive the whole failure pipeline end to end
// against the deliberately broken mutation oracle: fail -> shrink ->
// serialize -> replay to the same failure.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "dse/campaign.hpp"
#include "dse/case_runner.hpp"
#include "dse/oracles.hpp"
#include "dse/reproducer.hpp"
#include "dse/shrinker.hpp"
#include "util/error.hpp"

namespace hybridic::dse {
namespace {

// ---------------------------------------------------------------------------
// Config-space sampling.
// ---------------------------------------------------------------------------

TEST(DseSampling, SamplesStayInsideTheSpace) {
  const SweepSpace space;
  for (std::uint64_t index = 0; index < 64; ++index) {
    const apps::SyntheticConfig config = sample_config(space, 1, index);
    EXPECT_GE(config.kernel_count, space.min_kernels);
    EXPECT_LE(config.kernel_count, space.max_kernels);
    EXPECT_GE(config.kernel_edge_probability, space.min_edge_probability);
    EXPECT_LE(config.kernel_edge_probability, space.max_edge_probability);
    EXPECT_LE(config.min_edge_bytes, config.max_edge_bytes);
    EXPECT_LE(config.min_work_units, config.max_work_units);
    EXPECT_NO_THROW(apps::validate_synthetic_config(config));
  }
}

TEST(DseSampling, DeterministicAndSeedSensitive) {
  const SweepSpace space;
  const apps::SyntheticConfig a = sample_config(space, 1, 5);
  const apps::SyntheticConfig b = sample_config(space, 1, 5);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.kernel_count, b.kernel_count);
  EXPECT_EQ(a.kernel_edge_probability, b.kernel_edge_probability);
  const apps::SyntheticConfig c = sample_config(space, 2, 5);
  const apps::SyntheticConfig d = sample_config(space, 1, 6);
  EXPECT_NE(a.seed, c.seed);
  EXPECT_NE(a.seed, d.seed);
}

// ---------------------------------------------------------------------------
// Oracle library over generated designs.
// ---------------------------------------------------------------------------

TEST(DseOracles, LibraryPassesOnGeneratedDesigns) {
  for (const std::uint64_t index : {0ULL, 3ULL, 7ULL}) {
    const apps::SyntheticConfig config =
        sample_config(SweepSpace{}, 17, index);
    const DesignCase c = run_design_case(config);
    for (const OracleResult& result : run_all_oracles(c)) {
      EXPECT_TRUE(result.pass)
          << "case " << index << " oracle " << result.oracle << ": "
          << result.message;
    }
  }
}

TEST(DseOracles, FindOracleKnowsTheWholeLibraryAndRejectsUnknown) {
  for (const Oracle& oracle : oracle_library()) {
    EXPECT_EQ(find_oracle(oracle.name).name, oracle.name);
  }
  EXPECT_EQ(find_oracle("mutation-nonzero-traffic").name,
            "mutation-nonzero-traffic");
  EXPECT_THROW((void)find_oracle("no-such-oracle"), ConfigError);
}

TEST(DseOracles, MutationOracleFailsOnAnyRealDesign) {
  const DesignCase c = run_design_case(apps::SyntheticConfig{});
  const OracleResult result = mutation_oracle().check(c);
  EXPECT_FALSE(result.pass);
  EXPECT_NE(result.message.find("unique bytes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shrinker.
// ---------------------------------------------------------------------------

TEST(DseShrinker, RefusesAPassingConfig) {
  // The real library passes on this config, so shrinking against a passing
  // oracle must be rejected as caller error.
  EXPECT_THROW((void)shrink(apps::SyntheticConfig{}, oracle_library()[0]),
               ConfigError);
}

TEST(DseShrinker, MinimizesTheMutationFailure) {
  apps::SyntheticConfig start;
  start.seed = 7;
  const ShrinkResult result = shrink(start, mutation_oracle());

  // The failure still reproduces on the shrunk config...
  EXPECT_FALSE(result.failure.pass);
  EXPECT_GT(result.attempts, 0U);
  EXPECT_GT(result.accepted, 0U);
  // ...and the config reached the strategy's floor in every dimension.
  EXPECT_EQ(result.config.kernel_count, 1U);
  EXPECT_EQ(result.config.kernel_edge_probability, 0.0);
  EXPECT_EQ(result.config.max_edge_bytes, 64U);
  EXPECT_EQ(result.config.max_work_units, 64U);
  EXPECT_EQ(result.config.duplicable_probability, 0.0);
  EXPECT_EQ(result.config.streaming_probability, 0.0);
  EXPECT_EQ(result.config.seed, 7U);  // The seed is never shrunk.
}

// ---------------------------------------------------------------------------
// Reproducer JSON round trip and replay.
// ---------------------------------------------------------------------------

TEST(DseReproducer, JsonRoundTripPreservesEveryField) {
  Reproducer r;
  r.oracle = "speedup-direction";
  r.expect = Expectation::kFail;
  r.message = "designed slower, with \"quotes\" and\nnewline";
  r.config.kernel_count = 3;
  r.config.kernel_edge_probability = 0.125;
  r.config.min_edge_bytes = 100;
  r.config.max_edge_bytes = 5000;
  r.config.min_work_units = 10;
  r.config.max_work_units = 999;
  r.config.duplicable_probability = 0.75;
  r.config.streaming_probability = 0.0625;
  r.config.seed = 1234567890123ULL;

  const Reproducer back = parse_reproducer(to_json(r));
  EXPECT_EQ(back.schema, 1);
  EXPECT_EQ(back.oracle, r.oracle);
  EXPECT_EQ(back.expect, r.expect);
  EXPECT_EQ(back.message, r.message);
  EXPECT_EQ(back.config.kernel_count, r.config.kernel_count);
  EXPECT_EQ(back.config.kernel_edge_probability,
            r.config.kernel_edge_probability);
  EXPECT_EQ(back.config.min_edge_bytes, r.config.min_edge_bytes);
  EXPECT_EQ(back.config.max_edge_bytes, r.config.max_edge_bytes);
  EXPECT_EQ(back.config.min_work_units, r.config.min_work_units);
  EXPECT_EQ(back.config.max_work_units, r.config.max_work_units);
  EXPECT_EQ(back.config.duplicable_probability,
            r.config.duplicable_probability);
  EXPECT_EQ(back.config.streaming_probability,
            r.config.streaming_probability);
  EXPECT_EQ(back.config.seed, r.config.seed);
}

TEST(DseReproducer, ParserNamesTheProblem) {
  EXPECT_THROW((void)parse_reproducer("{}"), ConfigError);
  EXPECT_THROW((void)parse_reproducer("not json at all"), ConfigError);
  // Unknown config field (typo) is rejected, not ignored.
  Reproducer r;
  r.oracle = "determinism";
  std::string json = to_json(r);
  const std::string needle = "\"seed\"";
  json.replace(json.rfind(needle), needle.size(), "\"sede\"");
  EXPECT_THROW((void)parse_reproducer(json), ConfigError);
  // Bad expect value.
  Reproducer bad;
  bad.oracle = "determinism";
  std::string json2 = to_json(bad);
  const std::string pass = "\"pass\"";
  json2.replace(json2.find(pass), pass.size(), "\"maybe\"");
  EXPECT_THROW((void)parse_reproducer(json2), ConfigError);
}

TEST(DseReproducer, ShrunkMutationFailureReplaysToTheSameFailure) {
  apps::SyntheticConfig start;
  start.seed = 7;
  const ShrinkResult shrunk = shrink(start, mutation_oracle());

  Reproducer r;
  r.oracle = "mutation-nonzero-traffic";
  r.expect = Expectation::kFail;
  r.message = shrunk.failure.message;
  r.config = shrunk.config;

  // Serialize, parse back, replay: the identical failure must reproduce.
  const Reproducer back = parse_reproducer(to_json(r));
  const OracleResult replayed = replay(back);
  EXPECT_FALSE(replayed.pass);
  EXPECT_EQ(replayed.message, shrunk.failure.message);
}

// ---------------------------------------------------------------------------
// Campaign.
// ---------------------------------------------------------------------------

TEST(DseCampaign, SmallCampaignPassesAndIsThreadCountInvariant) {
  CampaignOptions options;
  options.count = 6;
  options.campaign_seed = 3;
  options.space.max_kernels = 5;

  options.threads = 1;
  const CampaignResult serial = run_campaign(options);
  options.threads = 4;
  const CampaignResult parallel = run_campaign(options);

  ASSERT_EQ(serial.cases.size(), 6U);
  EXPECT_EQ(serial.error_count(), 0U);
  for (const CaseOutcome& outcome : serial.cases) {
    EXPECT_TRUE(outcome.all_pass()) << "case " << outcome.index;
  }
  // Byte-identical outcome regardless of thread count.
  EXPECT_EQ(campaign_csv(serial), campaign_csv(parallel));
  EXPECT_EQ(campaign_markdown(serial, options),
            campaign_markdown(parallel, options));
  EXPECT_TRUE(serial.reproducers.empty());
}

TEST(DseCampaign, CsvCarriesOneColumnPerOracle) {
  CampaignOptions options;
  options.count = 1;
  options.space.max_kernels = 3;
  const CampaignResult result = run_campaign(options);
  const std::string csv = campaign_csv(result);
  const std::string header = csv.substr(0, csv.find('\n'));
  for (const Oracle& oracle : oracle_library()) {
    EXPECT_NE(header.find(oracle.name), std::string::npos)
        << "missing column: " << oracle.name;
  }
  EXPECT_EQ(header.find("mutation"), std::string::npos);
}

TEST(DseCampaign, SaveReproducersWritesReplayableFiles) {
  CampaignResult result;
  Reproducer r;
  r.oracle = "mutation-nonzero-traffic";
  r.expect = Expectation::kFail;
  r.message = "pinned";
  r.config.kernel_count = 1;
  r.config.kernel_edge_probability = 0.0;
  result.reproducers.push_back(r);

  const std::string dir = ::testing::TempDir() + "dse_repro";
  const std::vector<std::string> paths = save_reproducers(result, dir);
  ASSERT_EQ(paths.size(), 1U);
  const Reproducer loaded = load_reproducer(paths[0]);
  EXPECT_EQ(loaded.oracle, r.oracle);
  EXPECT_EQ(loaded.config.kernel_count, 1U);
}

}  // namespace
}  // namespace hybridic::dse
