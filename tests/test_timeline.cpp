#include "sys/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hybridic::sys {
namespace {

RunResult sample_run() {
  RunResult result;
  result.system_name = "demo";
  result.total_seconds = 10e-3;
  StepTiming host;
  host.name = "host_prep";
  host.is_kernel = false;
  host.start_seconds = 0.0;
  host.done_seconds = 2e-3;
  host.compute_seconds = 2e-3;
  StepTiming kernel;
  kernel.name = "kernel_a";
  kernel.is_kernel = true;
  kernel.start_seconds = 2e-3;
  kernel.done_seconds = 10e-3;
  kernel.compute_seconds = 5e-3;
  kernel.comm_seconds = 3e-3;
  result.steps = {host, kernel};
  result.host_seconds = 2e-3;
  result.kernel_compute_seconds = 5e-3;
  result.kernel_comm_seconds = 3e-3;
  return result;
}

TEST(Timeline, RendersAllSteps) {
  const std::string out = render_timeline(sample_run());
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("host_prep"), std::string::npos);
  EXPECT_NE(out.find("kernel_a"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);  // kernel compute
  EXPECT_NE(out.find('='), std::string::npos);  // host work
  EXPECT_NE(out.find('.'), std::string::npos);  // exposed communication
}

TEST(Timeline, HostStepsCanBeHidden) {
  TimelineOptions options;
  options.show_host_steps = false;
  const std::string out = render_timeline(sample_run(), options);
  EXPECT_EQ(out.find("host_prep"), std::string::npos);
  EXPECT_NE(out.find("kernel_a"), std::string::npos);
}

TEST(Timeline, EmptyRunDoesNotCrash) {
  RunResult empty;
  empty.system_name = "empty";
  const std::string out = render_timeline(empty);
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(Timeline, BarsReflectDurations) {
  TimelineOptions options;
  options.width_chars = 50;
  const std::string out = render_timeline(sample_run(), options);
  // The kernel occupies 80% of the run: its bar must be much longer than
  // the host's 20% bar.
  std::istringstream lines{out};
  std::string line;
  std::size_t host_marks = 0;
  std::size_t kernel_marks = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("host_prep", 0) == 0) {
      host_marks = static_cast<std::size_t>(
          std::count(line.begin(), line.end(), '='));
    }
    if (line.rfind("kernel_a", 0) == 0) {
      kernel_marks = static_cast<std::size_t>(
          std::count(line.begin(), line.end(), '#') +
          std::count(line.begin(), line.end(), '.'));
    }
  }
  EXPECT_GT(kernel_marks, 3 * host_marks);
}

TEST(TimelineCsv, OneRowPerStepWithHeader) {
  const std::string csv = timeline_csv(sample_run());
  EXPECT_EQ(csv.find("step,name,kind"), 0U);
  EXPECT_NE(csv.find("host_prep,host"), std::string::npos);
  EXPECT_NE(csv.find("kernel_a,kernel"), std::string::npos);
  // Two data rows + header = 3 newlines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Timeline, WorksOnRealRun) {
  // Smoke test on a real baseline run.
  prof::CommGraph graph;
  const auto host = graph.add_function("host");
  const auto kernel = graph.add_function("k");
  graph.function_mutable(kernel).work_units = 10'000;
  graph.add_transfer(host, kernel, Bytes{10'000}, 10'000);
  const AppSchedule schedule = build_schedule(
      "t", graph, {{"k", 8.0, 1.0, 100, 100, true, false, false}});
  const RunResult run = run_baseline(schedule, PlatformConfig{});
  const std::string out = render_timeline(run);
  EXPECT_NE(out.find("k "), std::string::npos);
  const std::string csv = timeline_csv(run);
  EXPECT_NE(csv.find("k,kernel"), std::string::npos);
}

}  // namespace
}  // namespace hybridic::sys
