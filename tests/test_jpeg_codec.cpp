#include "apps/jpeg_codec.hpp"

#include <gtest/gtest.h>

#include <set>

#include "apps/jpeg_bitstream.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hybridic::apps::jpegc {
namespace {

TEST(BitIo, WriterReaderRoundTrip) {
  BitWriter writer;
  writer.put(0b101, 3);
  writer.put(0b0011, 4);
  writer.put(0xABCD, 16);
  const std::vector<std::uint8_t> bytes = writer.finish();
  BitReader reader{[&bytes](std::uint64_t i) { return bytes[i]; },
                   bytes.size()};
  EXPECT_EQ(reader.get(3), 0b101U);
  EXPECT_EQ(reader.get(4), 0b0011U);
  EXPECT_EQ(reader.get(16), 0xABCDU);
}

TEST(BitIo, PositionAndSeek) {
  BitWriter writer;
  writer.put(0xFF, 8);
  writer.put(0x00, 8);
  const auto bytes = writer.finish();
  BitReader reader{[&bytes](std::uint64_t i) { return bytes[i]; },
                   bytes.size()};
  EXPECT_EQ(reader.position(), 0U);
  (void)reader.get(5);
  EXPECT_EQ(reader.position(), 5U);
  reader.seek(8);
  EXPECT_EQ(reader.get(8), 0U);
}

TEST(BitIo, PastEndReadsPadBits) {
  BitWriter writer;
  writer.put(0, 1);
  const auto bytes = writer.finish();
  BitReader reader{[&bytes](std::uint64_t i) { return bytes[i]; },
                   bytes.size()};
  reader.seek(bytes.size() * 8);
  EXPECT_EQ(reader.bit(), 1U);  // pad
}

TEST(BitIo, FinishPadsWithOnes) {
  BitWriter writer;
  writer.put(0, 3);
  const auto bytes = writer.finish();
  ASSERT_EQ(bytes.size(), 1U);
  EXPECT_EQ(bytes[0], 0b00011111);
}

TEST(Huffman, SingleSymbolGetsOneBitCode) {
  std::vector<std::uint64_t> freq(4, 0);
  freq[2] = 10;
  const HuffmanCode code = build_huffman(freq);
  EXPECT_EQ(code.lengths[2], 1U);
  EXPECT_FALSE(code.has_symbol(0));
  EXPECT_TRUE(code.has_symbol(2));
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freq{1000, 10, 10, 10};
  const HuffmanCode code = build_huffman(freq);
  EXPECT_LE(code.lengths[0], code.lengths[1]);
  EXPECT_LE(code.lengths[0], code.lengths[3]);
}

TEST(Huffman, KraftInequalityHolds) {
  Rng rng{5};
  std::vector<std::uint64_t> freq(256);
  for (auto& f : freq) {
    f = rng.below(1000);
  }
  const HuffmanCode code = build_huffman(freq);
  std::uint64_t kraft = 0;
  for (const std::uint8_t len : code.lengths) {
    if (len != 0) {
      ASSERT_LE(len, kMaxCodeLength);
      kraft += 1ULL << (kMaxCodeLength - len);
    }
  }
  EXPECT_LE(kraft, 1ULL << kMaxCodeLength);
}

TEST(Huffman, CodesArePrefixFree) {
  std::vector<std::uint64_t> freq{50, 30, 10, 5, 3, 2};
  const HuffmanCode code = build_huffman(freq);
  for (std::uint32_t a = 0; a < 6; ++a) {
    for (std::uint32_t b = 0; b < 6; ++b) {
      if (a == b || code.lengths[a] == 0 || code.lengths[b] == 0 ||
          code.lengths[a] > code.lengths[b]) {
        continue;
      }
      const std::uint32_t shifted =
          code.codes[b] >> (code.lengths[b] - code.lengths[a]);
      EXPECT_NE(shifted, code.codes[a])
          << "code " << a << " prefixes " << b;
    }
  }
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  Rng rng{17};
  std::vector<std::uint64_t> freq(32);
  for (auto& f : freq) {
    f = 1 + rng.below(100);
  }
  const HuffmanCode code = build_huffman(freq);
  const HuffmanCode decoder = huffman_from_lengths(code.lengths);

  std::vector<std::uint32_t> symbols;
  BitWriter writer;
  for (int i = 0; i < 500; ++i) {
    const auto symbol = static_cast<std::uint32_t>(rng.below(32));
    symbols.push_back(symbol);
    writer.put(code.codes[symbol], code.lengths[symbol]);
  }
  const auto bytes = writer.finish();
  BitReader reader{[&bytes](std::uint64_t i) { return bytes[i]; },
                   bytes.size()};
  for (const std::uint32_t expected : symbols) {
    const std::uint32_t got =
        decode_symbol(decoder, [&reader] { return reader.bit(); });
    ASSERT_EQ(got, expected);
  }
}

TEST(Huffman, EmptyFrequenciesRejected) {
  EXPECT_THROW((void)build_huffman({}), ConfigError);
  EXPECT_THROW((void)build_huffman({0, 0, 0}), ConfigError);
}

TEST(ValueCoding, CategoryMatchesJpegDefinition) {
  EXPECT_EQ(value_category(0), 0U);
  EXPECT_EQ(value_category(1), 1U);
  EXPECT_EQ(value_category(-1), 1U);
  EXPECT_EQ(value_category(2), 2U);
  EXPECT_EQ(value_category(3), 2U);
  EXPECT_EQ(value_category(-3), 2U);
  EXPECT_EQ(value_category(255), 8U);
  EXPECT_EQ(value_category(-1024), 11U);
}

TEST(ValueCoding, RoundTripAllSmallValues) {
  for (std::int32_t v = -300; v <= 300; ++v) {
    const std::uint32_t category = value_category(v);
    const std::uint32_t bits = value_bits(v, category);
    EXPECT_EQ(value_from_bits(bits, category), v) << v;
  }
}

TEST(Zigzag, IsAPermutationStartingAtDc) {
  const auto& zz = zigzag_order();
  std::set<std::uint8_t> seen(zz.begin(), zz.end());
  EXPECT_EQ(seen.size(), kBlockSize);
  EXPECT_EQ(zz[0], 0U);   // DC first
  EXPECT_EQ(zz[1], 1U);   // then (0,1)
  EXPECT_EQ(zz[2], 8U);   // then (1,0)
  EXPECT_EQ(zz[63], 63U); // ends at (7,7)
}

TEST(QuantTable, IsTheStandardLuminanceTable) {
  const auto& qt = quant_table();
  EXPECT_EQ(qt[0], 16U);
  EXPECT_EQ(qt[1], 11U);
  EXPECT_EQ(qt[63], 99U);
}

TEST(Dct, RoundTripIsNearIdentity) {
  Rng rng{3};
  float pixels[kBlockSize];
  float coeffs[kBlockSize];
  float back[kBlockSize];
  for (auto& p : pixels) {
    p = static_cast<float>(rng.below(256));
  }
  fdct8x8(pixels, coeffs);
  idct8x8(coeffs, back);
  for (std::uint32_t i = 0; i < kBlockSize; ++i) {
    EXPECT_NEAR(back[i], pixels[i], 0.51F) << i;  // clamped rounding
  }
}

TEST(Dct, FlatBlockIsPureDc) {
  float pixels[kBlockSize];
  float coeffs[kBlockSize];
  for (auto& p : pixels) {
    p = 200.0F;
  }
  fdct8x8(pixels, coeffs);
  EXPECT_NEAR(coeffs[0], (200.0F - 128.0F) * 8.0F, 1e-3F);
  for (std::uint32_t i = 1; i < kBlockSize; ++i) {
    EXPECT_NEAR(coeffs[i], 0.0F, 1e-3F);
  }
}

TEST(Encoder, ProducesDecodableStreams) {
  const EncodedImage enc = encode_test_image(32, 32, 99);
  EXPECT_EQ(enc.blocks, 16U);
  EXPECT_EQ(enc.ac_block_bit_offset.size(), 16U);
  EXPECT_FALSE(enc.dc_stream.empty());
  EXPECT_FALSE(enc.ac_stream.empty());
  const std::vector<std::uint8_t> decoded = reference_decode(enc);
  EXPECT_EQ(decoded.size(), enc.original.size());
  EXPECT_GT(psnr(decoded, enc.original), 28.0);
}

TEST(Encoder, OffsetsAreMonotonic) {
  const EncodedImage enc = encode_test_image(48, 48, 2);
  for (std::size_t b = 1; b < enc.ac_block_bit_offset.size(); ++b) {
    EXPECT_GE(enc.ac_block_bit_offset[b], enc.ac_block_bit_offset[b - 1]);
  }
}

TEST(Encoder, NonMultipleOf8Rejected) {
  EXPECT_THROW((void)encode_test_image(30, 32, 1), ConfigError);
}

TEST(Encoder, DeterministicForSeed) {
  const EncodedImage a = encode_test_image(32, 32, 7);
  const EncodedImage b = encode_test_image(32, 32, 7);
  EXPECT_EQ(a.ac_stream, b.ac_stream);
  EXPECT_EQ(a.dc_stream, b.dc_stream);
  const EncodedImage c = encode_test_image(32, 32, 8);
  EXPECT_NE(a.original, c.original);
}

TEST(Psnr, IdenticalImagesAreNearLossless) {
  const std::vector<std::uint8_t> img{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(psnr(img, img), 99.0);
  EXPECT_THROW((void)psnr(img, {1, 2}), ConfigError);
}

/// Property: encode->reference-decode holds reasonable PSNR across sizes
/// and seeds.
class CodecQuality
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(CodecQuality, PsnrAboveFloor) {
  const auto& [dim, seed] = GetParam();
  const EncodedImage enc = encode_test_image(dim, dim, seed);
  const std::vector<std::uint8_t> decoded = reference_decode(enc);
  EXPECT_GT(psnr(decoded, enc.original), 28.0)
      << dim << "x" << dim << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecQuality,
    ::testing::Combine(::testing::Values(16U, 32U, 64U),
                       ::testing::Values(1ULL, 2ULL, 3ULL)));

// Corrupt input must surface as a typed ConfigError naming the damaged
// stream and block — not an internal-invariant SimulationError or a crash.

TEST(BitIo, OverlongPutRejectedWithCount) {
  BitWriter writer;
  try {
    writer.put(0, 40);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string{error.what()}.find("40"), std::string::npos);
  }
}

TEST(Decoder, CorruptDcStreamReportsBlock) {
  EncodedImage enc = encode_test_image(32, 32, 99);
  // A one-symbol table only assigns the code '0'; an all-ones stream hits
  // an invalid prefix on the very first DC read.
  enc.dc_code_lengths = {1};
  for (auto& byte : enc.dc_stream) {
    byte = 0xFF;
  }
  try {
    (void)reference_decode(enc);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string{error.what()}.find("corrupt JPEG"),
              std::string::npos)
        << error.what();
  }
}

TEST(Decoder, CorruptAcStreamReportsBlockAndCoefficient) {
  EncodedImage enc = encode_test_image(32, 32, 99);
  for (auto& byte : enc.ac_stream) {
    byte = 0xFF;
  }
  try {
    (void)reference_decode(enc);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string{error.what()}.find("corrupt JPEG AC stream"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace hybridic::apps::jpegc
