#include "util/table.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace hybridic {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void Table::add_row(std::vector<std::string> row) {
  require(header_.empty() || row.size() == header_.size(),
          "Table row width does not match header width");
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

namespace {

void render_line(std::ostream& os, const std::vector<std::size_t>& widths,
                 char fill, char junction) {
  os << junction;
  for (const std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) {
      os << fill;
    }
    os << junction;
  }
  os << '\n';
}

void render_cells(std::ostream& os, const std::vector<std::string>& cells,
                  const std::vector<std::size_t>& widths,
                  const std::vector<Align>& alignment) {
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string& text = c < cells.size() ? cells[c] : std::string{};
    const Align align = c < alignment.size()
                            ? alignment[c]
                            : (c == 0 ? Align::kLeft : Align::kRight);
    const std::size_t pad = widths[c] - text.size();
    os << ' ';
    if (align == Align::kRight) {
      os << std::string(pad, ' ') << text;
    } else {
      os << text << std::string(pad, ' ');
    }
    os << " |";
  }
  os << '\n';
}

}  // namespace

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    widths.resize(std::max(widths.size(), row.cells.size()), 0);
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  if (!title_.empty()) {
    os << "== " << title_ << " ==\n";
  }
  render_line(os, widths, '-', '+');
  if (!header_.empty()) {
    render_cells(os, header_, widths, alignment_);
    render_line(os, widths, '=', '+');
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      render_line(os, widths, '-', '+');
    } else {
      render_cells(os, row.cells, widths, alignment_);
    }
  }
  render_line(os, widths, '-', '+');
}

std::string Table::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

std::string format_ratio(double value) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.2fx", value);
  return std::string{buf.data()};
}

std::string format_percent(double fraction) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.1f%%", fraction * 100.0);
  return std::string{buf.data()};
}

std::string format_fixed(double value, int decimals) {
  std::array<char, 48> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
  return std::string{buf.data()};
}

}  // namespace hybridic
