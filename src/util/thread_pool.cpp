#include "util/thread_pool.hpp"

#include <exception>
#include <limits>

namespace hybridic {

namespace {
thread_local std::size_t tls_worker_index = ThreadPool::kNotAWorker;
thread_local ThreadPool* tls_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) {
      threads = 1;
    }
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock{idle_mutex_};
    // Drain before stopping so a destructed pool never drops work.
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t home = 0;
  {
    std::unique_lock<std::mutex> lock{idle_mutex_};
    home = next_home_++ % queues_.size();
    ++pending_;
    ++queued_;
  }
  {
    std::unique_lock<std::mutex> lock{queues_[home]->mutex};
    queues_[home]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

std::uint64_t ThreadPool::steal_count() const {
  return steals_.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::executed_count() const {
  return executed_.load(std::memory_order_relaxed);
}

std::size_t ThreadPool::current_worker() { return tls_worker_index; }

ThreadPool* ThreadPool::current() { return tls_worker_pool; }

std::function<void()> ThreadPool::take_from(std::size_t victim) {
  std::unique_lock<std::mutex> lock{queues_[victim]->mutex};
  if (queues_[victim]->tasks.empty()) {
    return {};
  }
  std::function<void()> task = std::move(queues_[victim]->tasks.front());
  queues_[victim]->tasks.pop_front();
  return task;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker_index = self;
  tls_worker_pool = this;
  const std::size_t n = queues_.size();
  for (;;) {
    // Own queue first (FIFO), then round-robin over the other workers'
    // queues — the steal path.
    std::function<void()> task;
    bool stolen = false;
    for (std::size_t probe = 0; probe < n && !task; ++probe) {
      const std::size_t victim = (self + probe) % n;
      task = take_from(victim);
      stolen = task && victim != self;
    }
    if (task) {
      {
        std::unique_lock<std::mutex> lock{idle_mutex_};
        --queued_;
      }
      task();
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (stolen) {
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
      bool drained = false;
      {
        std::unique_lock<std::mutex> lock{idle_mutex_};
        drained = --pending_ == 0;
      }
      if (drained) {
        // Wake anything blocked on "all work done" (the destructor).
        done_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock{idle_mutex_};
    if (stop_) {
      return;
    }
    // queued_ counts submitted-but-not-yet-taken tasks, so workers sleep
    // here (instead of spinning) while other workers run long tasks.
    work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
  }
}

void TaskGroup::run_and_wait() {
  const std::size_t n = tasks_.size();
  if (n == 0) {
    return;
  }
  if (pool_ == nullptr || pool_->thread_count() <= 1 || n == 1) {
    // Serial fast path: run inline, first throw wins (it is also the
    // lowest index, since we run in order).
    std::vector<std::function<void()>> tasks = std::move(tasks_);
    tasks_.clear();
    for (auto& task : tasks) {
      task();
    }
    return;
  }

  struct State {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t completed = 0;  ///< Guarded by mutex.
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;  ///< From the lowest-index throwing task.
  };
  auto state = std::make_shared<State>();
  state->tasks = std::move(tasks_);
  tasks_.clear();

  auto drain = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->tasks.size()) {
        return;
      }
      std::exception_ptr error;
      try {
        s->tasks[i]();
      } catch (...) {
        error = std::current_exception();
      }
      std::unique_lock<std::mutex> lock{s->mutex};
      if (error && i < s->error_index) {
        s->error_index = i;
        s->error = error;
      }
      if (++s->completed == s->tasks.size()) {
        s->done_cv.notify_all();
      }
    }
  };

  // One helper per extra worker; the caller claims tasks too, so a group
  // launched from a pool job makes progress even if no helper ever runs.
  const std::size_t helpers = std::min(pool_->thread_count() - 1, n - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool_->submit([state, drain] { drain(state); });
  }
  drain(state);

  std::unique_lock<std::mutex> lock{state->mutex};
  state->done_cv.wait(lock,
                      [&] { return state->completed == state->tasks.size(); });
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

}  // namespace hybridic
