// Fixed-size work-stealing thread pool.
//
// Every task is submitted to a "home" queue (round-robin across workers);
// a worker drains its own queue in FIFO order and, when empty, steals the
// oldest task from another worker's queue. Stealing keeps all cores busy
// when job durations are uneven (profiling an app takes ~100x longer than
// re-simulating one sweep point) without any shared run queue becoming a
// bottleneck.
//
// The pool itself imposes no ordering between tasks — callers that need
// deterministic results must make every task independent (own engine, own
// RNG stream) and aggregate by submission index, which is exactly what
// sys::BatchRunner does on top of this class.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hybridic {

class ThreadPool {
public:
  /// Sentinel returned by current_worker() on threads not owned by a pool.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining every submitted task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw — wrap user code and capture
  /// exceptions before they reach the pool (BatchRunner does).
  void submit(std::function<void()> task);

  [[nodiscard]] std::size_t thread_count() const { return queues_.size(); }

  /// Tasks executed by a worker other than the task's home worker.
  [[nodiscard]] std::uint64_t steal_count() const;

  /// Total tasks executed so far.
  [[nodiscard]] std::uint64_t executed_count() const;

  /// Index of the calling pool worker, or kNotAWorker outside the pool.
  [[nodiscard]] static std::size_t current_worker();

  /// The pool owning the calling thread, or nullptr outside any pool.
  /// Lets library code (e.g. QuadProfiler::finalize) discover an
  /// ambient pool and fan out without threading a pointer through
  /// every call site.
  [[nodiscard]] static ThreadPool* current();

private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);

  /// Pop the oldest task from queue `victim`; empty function if none.
  std::function<void()> take_from(std::size_t victim);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex idle_mutex_;
  std::condition_variable work_cv_;  ///< Signals workers: task queued / stop.
  std::condition_variable done_cv_;  ///< Signals drain waiters: pending_ == 0.
  std::uint64_t pending_ = 0;  ///< Submitted, not yet finished (idle_mutex_).
  std::uint64_t queued_ = 0;   ///< Submitted, not yet taken (idle_mutex_).
  bool stop_ = false;          ///< Guarded by idle_mutex_.

  std::uint64_t next_home_ = 0;  ///< Guarded by idle_mutex_ (round-robin).

  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> executed_{0};
};

/// Caller-participating scatter/gather over an (optional) ThreadPool.
///
/// Collect tasks with add(), then run_and_wait(). Tasks are claimed from a
/// shared atomic cursor by pool workers *and* by the calling thread, so a
/// group launched from inside a pool job can never deadlock the pool: the
/// caller always makes progress on its own tasks even when every worker is
/// busy. With a null pool (or a 1-thread pool) everything simply runs
/// inline on the caller, in add() order.
///
/// If tasks throw, the exception from the lowest-index throwing task is
/// rethrown from run_and_wait() — deterministic regardless of which
/// thread ran which task.
class TaskGroup {
public:
  /// `pool` may be null (pure serial execution).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Collect a task; must be called before run_and_wait().
  void add(std::function<void()> task) { tasks_.push_back(std::move(task)); }

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }

  /// Run every added task, blocking until all complete. One-shot: the
  /// group is empty afterwards and can be reused with fresh add() calls.
  void run_and_wait();

private:
  ThreadPool* pool_ = nullptr;
  std::vector<std::function<void()>> tasks_;
};

}  // namespace hybridic
