// Deterministic seeded random number generation.
//
// Everything in HybridIC that needs randomness (workload generators,
// synthetic traffic, annealing placement) takes an explicit Rng so runs
// are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace hybridic {

/// xoshiro256** — small, fast, high-quality PRNG with splitmix64 seeding.
class Rng {
public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      word = splitmix64(x);
    }
  }

  using result_type = std::uint64_t;
  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) with Lemire rejection (unbiased enough
  /// for workload generation; bound must be non-zero).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool chance(double p) { return uniform() < p; }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4] = {};
};

}  // namespace hybridic
