// Minimal leveled logging. Off by default; benches and examples raise the
// level for narrative output, tests keep it silent.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace hybridic {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Process-wide log level (simulation is single-threaded per run).
LogLevel& log_level();

namespace detail {
void emit(LogLevel level, std::string_view message);
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() >= LogLevel::kInfo) {
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::kInfo, oss.str());
  }
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() >= LogLevel::kDebug) {
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::kDebug, oss.str());
  }
}

template <typename... Args>
void log_trace(Args&&... args) {
  if (log_level() >= LogLevel::kTrace) {
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::kTrace, oss.str());
  }
}

}  // namespace hybridic
