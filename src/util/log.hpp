// Minimal leveled logging. Off by default; benches and examples raise the
// level for narrative output, tests keep it silent.
//
// Safe for concurrent use: the level is atomic and emit() writes each fully
// composed line under a mutex with a single stream insertion, so messages
// from batch-runner workers never interleave mid-line.
#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace hybridic {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Process-wide log level. Atomic so workers may read it while a main
/// thread adjusts it (benches set it once before spawning, but nothing
/// breaks if they don't).
std::atomic<LogLevel>& log_level();

namespace detail {
void emit(LogLevel level, std::string_view message);
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level().load(std::memory_order_relaxed) >= LogLevel::kInfo) {
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::kInfo, oss.str());
  }
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level().load(std::memory_order_relaxed) >= LogLevel::kDebug) {
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::kDebug, oss.str());
  }
}

template <typename... Args>
void log_trace(Args&&... args) {
  if (log_level().load(std::memory_order_relaxed) >= LogLevel::kTrace) {
    std::ostringstream oss;
    (oss << ... << args);
    detail::emit(LogLevel::kTrace, oss.str());
  }
}

}  // namespace hybridic
