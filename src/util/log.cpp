#include "util/log.hpp"

#include <iostream>
#include <mutex>
#include <string>

namespace hybridic {

std::atomic<LogLevel>& log_level() {
  static std::atomic<LogLevel> level{LogLevel::kSilent};
  return level;
}

namespace detail {

namespace {
std::mutex& emit_mutex() {
  static std::mutex mutex;
  return mutex;
}
}  // namespace

void emit(LogLevel level, std::string_view message) {
  const char* prefix = "";
  switch (level) {
    case LogLevel::kInfo:
      prefix = "[info ] ";
      break;
    case LogLevel::kDebug:
      prefix = "[debug] ";
      break;
    case LogLevel::kTrace:
      prefix = "[trace] ";
      break;
    case LogLevel::kSilent:
      return;
  }
  // Compose the whole line first and write it with one insertion under the
  // mutex: concurrent emitters produce whole lines, never fragments.
  std::string line;
  line.reserve(message.size() + 9);
  line += prefix;
  line += message;
  line += '\n';
  std::unique_lock<std::mutex> lock{emit_mutex()};
  std::clog << line;
}

}  // namespace detail
}  // namespace hybridic
