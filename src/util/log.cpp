#include "util/log.hpp"

namespace hybridic {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kSilent;
  return level;
}

namespace detail {

void emit(LogLevel level, std::string_view message) {
  const char* prefix = "";
  switch (level) {
    case LogLevel::kInfo:
      prefix = "[info ] ";
      break;
    case LogLevel::kDebug:
      prefix = "[debug] ";
      break;
    case LogLevel::kTrace:
      prefix = "[trace] ";
      break;
    case LogLevel::kSilent:
      return;
  }
  std::clog << prefix << message << '\n';
}

}  // namespace detail
}  // namespace hybridic
