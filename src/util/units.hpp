// Strong unit types used throughout HybridIC.
//
// The simulator mixes several clock domains (host @400MHz, kernels @100MHz,
// NoC @150MHz, bus @100MHz); all global time is kept in integer picoseconds
// so cross-domain arithmetic is exact for every frequency used in the paper.
#pragma once

#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hybridic {

/// Global simulation time in picoseconds.
class Picoseconds {
public:
  constexpr Picoseconds() = default;
  constexpr explicit Picoseconds(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t count() const { return value_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(value_) * 1e-12;
  }
  [[nodiscard]] constexpr double microseconds() const {
    return static_cast<double>(value_) * 1e-6;
  }
  [[nodiscard]] constexpr double milliseconds() const {
    return static_cast<double>(value_) * 1e-9;
  }

  constexpr auto operator<=>(const Picoseconds&) const = default;

  constexpr Picoseconds& operator+=(Picoseconds other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Picoseconds& operator-=(Picoseconds other) {
    value_ -= other.value_;
    return *this;
  }

  friend constexpr Picoseconds operator+(Picoseconds a, Picoseconds b) {
    return Picoseconds{a.value_ + b.value_};
  }
  friend constexpr Picoseconds operator-(Picoseconds a, Picoseconds b) {
    return Picoseconds{a.value_ - b.value_};
  }
  friend constexpr Picoseconds operator*(Picoseconds a, std::uint64_t k) {
    return Picoseconds{a.value_ * k};
  }
  friend constexpr Picoseconds operator*(std::uint64_t k, Picoseconds a) {
    return Picoseconds{a.value_ * k};
  }

private:
  std::uint64_t value_ = 0;
};

/// Clock frequency in hertz; converts to an exact integral period where
/// possible and validates that the frequency divides one second in ps.
class Frequency {
public:
  constexpr Frequency() = default;
  constexpr explicit Frequency(std::uint64_t hz) : hz_(hz) {
    if (hz == 0) {
      throw std::invalid_argument("Frequency must be non-zero");
    }
  }

  [[nodiscard]] static constexpr Frequency megahertz(std::uint64_t mhz) {
    return Frequency{mhz * 1'000'000ULL};
  }

  [[nodiscard]] constexpr std::uint64_t hertz() const { return hz_; }
  [[nodiscard]] constexpr double megahertz_value() const {
    return static_cast<double>(hz_) / 1e6;
  }

  /// Clock period, rounded to the nearest picosecond.
  [[nodiscard]] constexpr Picoseconds period() const {
    constexpr std::uint64_t kPsPerSecond = 1'000'000'000'000ULL;
    return Picoseconds{(kPsPerSecond + hz_ / 2) / hz_};
  }

  constexpr auto operator<=>(const Frequency&) const = default;

private:
  std::uint64_t hz_ = 1;
};

/// Byte count for data transfers (explicit to avoid mixing with cycle counts).
class Bytes {
public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t count() const { return value_; }
  [[nodiscard]] constexpr double kib() const {
    return static_cast<double>(value_) / 1024.0;
  }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes other) {
    value_ += other.value_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.value_ + b.value_};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.value_ - b.value_};
  }

private:
  std::uint64_t value_ = 0;
};

/// Cycle count within a single clock domain.
class Cycles {
public:
  constexpr Cycles() = default;
  constexpr explicit Cycles(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t count() const { return value_; }

  constexpr auto operator<=>(const Cycles&) const = default;

  constexpr Cycles& operator+=(Cycles other) {
    value_ += other.value_;
    return *this;
  }
  friend constexpr Cycles operator+(Cycles a, Cycles b) {
    return Cycles{a.value_ + b.value_};
  }
  friend constexpr Cycles operator*(Cycles a, std::uint64_t k) {
    return Cycles{a.value_ * k};
  }

private:
  std::uint64_t value_ = 0;
};

/// Convert a cycle count in a clock domain to global picosecond duration.
[[nodiscard]] constexpr Picoseconds cycles_to_time(Cycles cycles,
                                                   Frequency clock) {
  return Picoseconds{cycles.count() * clock.period().count()};
}

/// Cycles (rounded up) a duration spans in a clock domain.
[[nodiscard]] constexpr Cycles time_to_cycles(Picoseconds time,
                                              Frequency clock) {
  const std::uint64_t period = clock.period().count();
  return Cycles{(time.count() + period - 1) / period};
}

[[nodiscard]] std::string format_time(Picoseconds t);
[[nodiscard]] std::string format_bytes(Bytes b);

}  // namespace hybridic
