// Error types for HybridIC. Construction/configuration errors throw;
// simulation-hot paths use assertions and never throw.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hybridic {

/// Invalid configuration supplied by the user (bad topology size, unknown
/// component name, inconsistent application description, ...).
class ConfigError : public std::runtime_error {
public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Internal invariant violated during simulation; indicates a bug in the
/// library rather than in user input.
class SimulationError : public std::logic_error {
public:
  explicit SimulationError(const std::string& what) : std::logic_error(what) {}
};

/// A simulation that did not run to completion: either the watchdog limit
/// expired with fabric operations still outstanding, or the event queue
/// drained while operations were pending (a deadlock). Carries the stuck-op
/// diagnostics so callers (CLI, batch jobs) can report them without string
/// parsing, and so one hung job fails structurally instead of wedging the
/// whole batch.
class SimTimeoutError : public std::runtime_error {
public:
  SimTimeoutError(const std::string& what, std::vector<std::string> stuck_ops,
                  double sim_time_seconds, bool watchdog_expired)
      : std::runtime_error(what),
        stuck_ops_(std::move(stuck_ops)),
        sim_time_seconds_(sim_time_seconds),
        watchdog_expired_(watchdog_expired) {}

  /// Labels of the operations that never completed.
  [[nodiscard]] const std::vector<std::string>& stuck_ops() const {
    return stuck_ops_;
  }
  /// Simulated time at which the run gave up.
  [[nodiscard]] double sim_time_seconds() const { return sim_time_seconds_; }
  /// True when the watchdog limit expired with events still queued; false
  /// when the event queue drained with operations pending (deadlock).
  [[nodiscard]] bool watchdog_expired() const { return watchdog_expired_; }

private:
  std::vector<std::string> stuck_ops_;
  double sim_time_seconds_ = 0.0;
  bool watchdog_expired_ = false;
};

/// Throw a ConfigError unless `condition` holds.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw ConfigError{message};
  }
}

/// Throw a SimulationError unless `condition` holds.
inline void sim_assert(bool condition, const std::string& message) {
  if (!condition) {
    throw SimulationError{message};
  }
}

}  // namespace hybridic
