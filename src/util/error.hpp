// Error types for HybridIC. Construction/configuration errors throw;
// simulation-hot paths use assertions and never throw.
#pragma once

#include <stdexcept>
#include <string>

namespace hybridic {

/// Invalid configuration supplied by the user (bad topology size, unknown
/// component name, inconsistent application description, ...).
class ConfigError : public std::runtime_error {
public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Internal invariant violated during simulation; indicates a bug in the
/// library rather than in user input.
class SimulationError : public std::logic_error {
public:
  explicit SimulationError(const std::string& what) : std::logic_error(what) {}
};

/// Throw a ConfigError unless `condition` holds.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw ConfigError{message};
  }
}

/// Throw a SimulationError unless `condition` holds.
inline void sim_assert(bool condition, const std::string& message) {
  if (!condition) {
    throw SimulationError{message};
  }
}

}  // namespace hybridic
