// ASCII table rendering for benchmark/report output.
//
// The paper's evaluation is a set of tables and figures; every bench binary
// renders its results through this printer so the output format is uniform.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hybridic {

/// Column alignment for table cells.
enum class Align { kLeft, kRight };

/// A simple monospace table with a title, a header row and data rows.
class Table {
public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row; defines the column count.
  void set_header(std::vector<std::string> header);

  /// Set per-column alignment (defaults to left for col 0, right otherwise).
  void set_alignment(std::vector<Align> alignment);

  /// Append a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator between row groups.
  void add_separator();

  /// Render to a stream with box-drawing rules.
  void render(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
};

/// Format helpers used by the bench reports.
[[nodiscard]] std::string format_ratio(double value);        // "3.72x"
[[nodiscard]] std::string format_percent(double fraction);   // "66.5%"
[[nodiscard]] std::string format_fixed(double value, int decimals);

}  // namespace hybridic
