#include "util/csv.hpp"

namespace hybridic {

namespace {

std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string quoted = "\"";
  for (const char ch : field) {
    if (ch == '"') {
      quoted += "\"\"";
    } else {
      quoted += ch;
    }
  }
  quoted += '"';
  return quoted;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (out_) {
    write_row(header);
  }
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  write_row(row);
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << escape(row[i]);
  }
  out_ << '\n';
}

}  // namespace hybridic
