// CSV writer for machine-readable benchmark output (one file per figure so
// external plotting can regenerate the paper's charts).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hybridic {

/// Streams rows to a CSV file; quotes fields containing separators.
class CsvWriter {
public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

private:
  void write_row(const std::vector<std::string>& row);

  std::ofstream out_;
};

}  // namespace hybridic
