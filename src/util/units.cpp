#include "util/units.hpp"

#include <array>
#include <cstdio>

namespace hybridic {

std::string format_time(Picoseconds t) {
  std::array<char, 64> buf{};
  const std::uint64_t ps = t.count();
  if (ps < 1'000ULL) {
    std::snprintf(buf.data(), buf.size(), "%llu ps",
                  static_cast<unsigned long long>(ps));
  } else if (ps < 1'000'000ULL) {
    std::snprintf(buf.data(), buf.size(), "%.2f ns",
                  static_cast<double>(ps) / 1e3);
  } else if (ps < 1'000'000'000ULL) {
    std::snprintf(buf.data(), buf.size(), "%.2f us",
                  static_cast<double>(ps) / 1e6);
  } else if (ps < 1'000'000'000'000ULL) {
    std::snprintf(buf.data(), buf.size(), "%.3f ms",
                  static_cast<double>(ps) / 1e9);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.4f s",
                  static_cast<double>(ps) / 1e12);
  }
  return std::string{buf.data()};
}

std::string format_bytes(Bytes b) {
  std::array<char, 64> buf{};
  const std::uint64_t n = b.count();
  if (n < 1024ULL) {
    std::snprintf(buf.data(), buf.size(), "%llu B",
                  static_cast<unsigned long long>(n));
  } else if (n < 1024ULL * 1024ULL) {
    std::snprintf(buf.data(), buf.size(), "%.1f KiB",
                  static_cast<double>(n) / 1024.0);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.2f MiB",
                  static_cast<double>(n) / (1024.0 * 1024.0));
  }
  return std::string{buf.data()};
}

}  // namespace hybridic
