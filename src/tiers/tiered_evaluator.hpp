// TieredEvaluator — the front door of the two-tier evaluation engine.
//
// Tier 1 (analytic, ~25x cheaper): profile the app, run Algorithm 1, and
// price the design with analytic_estimate() — no event queue. Tier 2
// (cycle-accurate): the existing engine-driven pipeline. The evaluator
// owns the escalation policy: a design climbs to tier 2 only when the
// calibrated band of a ranked contender overlaps the provable winner's
// band (interval pruning), when an oracle demands exact traces, or when
// the caller asked for --tier=cycle outright. docs/MODEL.md §14 states
// the model; the DSE campaign wires the policy across BatchRunner phases.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/app.hpp"
#include "apps/profile_cache.hpp"
#include "apps/synthetic.hpp"
#include "sys/platform.hpp"
#include "tiers/analytic.hpp"
#include "tiers/congruence.hpp"

namespace hybridic::tiers {

/// Which tier(s) the caller wants.
enum class TierMode : std::uint8_t {
  kAuto,      ///< Analytic everywhere, escalate where ranking demands.
  kAnalytic,  ///< Analytic only — never touch the cycle engine.
  kCycle,     ///< Cycle-accurate everywhere (the pre-tier behaviour).
};

/// Parse "auto" / "analytic" / "cycle"; nullopt for anything else.
[[nodiscard]] std::optional<TierMode> parse_tier_mode(std::string_view text);
[[nodiscard]] const char* to_string(TierMode mode);

/// Why one design point escalated to the cycle-accurate tier.
enum class EscalationReason : std::uint8_t {
  kNone,         ///< Stayed analytic.
  kRequested,    ///< Caller passed --tier=cycle.
  kRankOverlap,  ///< Band overlaps the ranked winner's band.
  kOracle,       ///< An oracle needs exact traces (sim-free check failed).
};
[[nodiscard]] const char* to_string(EscalationReason reason);

/// The analytic tier's product for one design point: everything the
/// cycle-free half of the pipeline produces.
struct AnalyticCase {
  /// Shares the graph the schedule points into (with the profile cache,
  /// when one was supplied).
  std::shared_ptr<const apps::ProfiledApp> app;
  sys::AppSchedule schedule;
  core::DesignResult proposed;
  core::DesignResult noc_only;
  double theta_seconds_per_byte = 0.0;
  TierEstimate estimate;  ///< For `proposed`, congruence-cached.
};

class TieredEvaluator {
public:
  explicit TieredEvaluator(sys::PlatformConfig platform = {},
                           TierCalibration calibration = {});

  /// Tier-1 evaluation of one synthetic config: profile, Algorithm 1
  /// (proposed + NoC-only designs), analytic estimate. Thread-safe;
  /// throws ConfigError on invalid configs like the cycle pipeline.
  /// With a cache the profiling phase is memoized (and may come from the
  /// cache's persistent L2 tier).
  [[nodiscard]] AnalyticCase analyze(const apps::SyntheticConfig& config,
                                     apps::ProfileCache* cache = nullptr);

  /// Estimate an already-designed schedule (congruence-cached). Used by
  /// the cycle tier to attach disagreement stats without re-profiling.
  [[nodiscard]] TierEstimate estimate(const sys::AppSchedule& schedule,
                                      const core::DesignResult& design);

  /// Theta the analytic tier feeds Algorithm 1. Measured once per
  /// evaluator: the simulated bus probe depends only on the platform.
  [[nodiscard]] double theta_seconds_per_byte() const { return theta_; }

  [[nodiscard]] const sys::PlatformConfig& platform() const {
    return platform_;
  }
  [[nodiscard]] const TierCalibration& calibration() const {
    return calibration_;
  }
  [[nodiscard]] const CongruenceCache& cache() const { return cache_; }

  /// Attach a persistent L2 tier behind the congruence cache: misses
  /// consult it before computing, computed estimates are written back.
  void set_estimate_l2(std::shared_ptr<EstimateL2> l2) {
    cache_.set_l2(std::move(l2));
  }

private:
  sys::PlatformConfig platform_;
  TierCalibration calibration_;
  double theta_ = 0.0;
  CongruenceCache cache_;
};

/// Deterministic interval-pruning escalation over a ranked batch.
/// `estimates[i]` is null when design i errored before estimation (it
/// cannot be ranked, so it never escalates here); `oracle_demands[i]`
/// marks designs whose sim-free oracles already failed — they escalate
/// with kOracle so the full library and the shrinker see exact traces.
/// Everything else escalates with kRankOverlap iff its band reaches below
/// the lowest guaranteed ceiling (min upper bound) of the batch — the
/// candidates among which the true winner may hide. `max_rank_escalations`
/// caps the rank-overlap set (0 = uncapped), keeping the cheapest lower
/// bounds first; the cap is reported, never silent.
[[nodiscard]] std::vector<EscalationReason> select_escalations(
    const std::vector<const TierEstimate*>& estimates,
    const std::vector<bool>& oracle_demands,
    std::uint64_t max_rank_escalations = 0);

}  // namespace hybridic::tiers
