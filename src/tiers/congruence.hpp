// Congruence cache for the analytic tier — congruence-profiling-style
// pruning of equivalent design points (after Boston et al.,
// arXiv:2509.18295): two sampled designs whose canonicalized
// (mapping, fabric, per-edge bytes) signatures collide are guaranteed the
// same analytic estimate, so the tier computes it once and reuses it.
//
// The signature serializes everything analytic_estimate() reads —
// per-instance mapping/class/volumes/compute cycles, shared pairs,
// parallel plan, mesh placement, per-edge unique bytes, theta — after
// relabeling instances into a canonical order, so two structurally
// identical designs collide even when Algorithm 1 discovered their
// instances in different orders.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/design_result.hpp"
#include "sys/schedule.hpp"
#include "tiers/analytic.hpp"

namespace hybridic::tiers {

/// Canonical text form of (mapping, fabric, per-edge bytes) for a design.
[[nodiscard]] std::string congruence_signature(
    const sys::AppSchedule& schedule, const core::DesignResult& design,
    double theta_seconds_per_byte);

/// 64-bit key of a signature (FNV-1a finalized with splitmix64).
[[nodiscard]] std::uint64_t congruence_key_of(const std::string& signature);

/// Second-level estimate backend under CongruenceCache (implemented by
/// the persistent store in src/store/). Implementations must be
/// thread-safe; any load failure must surface as nullopt — never as an
/// exception — so a damaged store degrades to re-estimating.
class EstimateL2 {
public:
  virtual ~EstimateL2() = default;

  /// The estimate stored under `key`, or nullopt on miss.
  [[nodiscard]] virtual std::optional<TierEstimate> load(
      std::uint64_t key) = 0;

  /// Persist `estimate` under `key` (best effort).
  virtual void store(std::uint64_t key, const TierEstimate& estimate) = 0;
};

/// Thread-safe estimate memoizer keyed by congruence key. Values for one
/// key are identical whichever thread computes first (the estimator is a
/// pure function of the signature content), so the cache never affects
/// results — only how often the estimator runs. An optional EstimateL2
/// backend (the persistent store) is consulted on memory misses and fed
/// on fresh computes, so analytic rows survive process restarts.
class CongruenceCache {
public:
  /// The cached estimate for `key`, computing it via `make` on miss.
  [[nodiscard]] TierEstimate get(std::uint64_t key,
                                 const std::function<TierEstimate()>& make);

  /// Attach (or detach, with nullptr) the persistent L2 backend.
  void set_l2(std::shared_ptr<EstimateL2> l2);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// Memory misses served by the L2 backend without re-estimating.
  [[nodiscard]] std::uint64_t l2_hits() const;
  /// Freshly computed estimates published to the L2 backend.
  [[nodiscard]] std::uint64_t l2_stores() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, TierEstimate> entries_;
  std::shared_ptr<EstimateL2> l2_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t l2_stores_ = 0;
};

}  // namespace hybridic::tiers
