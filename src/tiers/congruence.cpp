#include "tiers/congruence.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "core/kernel_model.hpp"

namespace hybridic::tiers {
namespace {

/// Exact, locale-free rendering of a double (hex float).
std::string hexf(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

/// The order-free part of one instance's record: everything about it
/// except references to other instances.
std::string instance_record(const core::KernelInstance& inst,
                            const sys::AppSchedule& schedule,
                            const core::DesignResult& design) {
  std::ostringstream out;
  out << 'i' << static_cast<int>(inst.mapping.kernel) << ':'
      << static_cast<int>(inst.mapping.memory) << ':'
      << static_cast<int>(inst.comm_class.recv) << ':'
      << static_cast<int>(inst.comm_class.send) << ':' << hexf(inst.work_share)
      << ':' << inst.quantities.host_in.count() << ':'
      << inst.quantities.kernel_in.count() << ':'
      << inst.quantities.host_out.count() << ':'
      << inst.quantities.kernel_out.count() << ':'
      << inst.residual.host_in.count() << ':'
      << inst.residual.kernel_in.count() << ':'
      << inst.residual.host_out.count() << ':'
      << inst.residual.kernel_out.count() << ':'
      << schedule.specs[inst.spec_index].hw_compute_cycles.count();
  // Mesh placement is part of the fabric: same structure on different
  // nodes routes differently, so the nodes are part of the record.
  if (design.noc.has_value()) {
    const char* sep = ":n";
    for (const core::NocAttachment& a : design.noc->attachments) {
      if (design.instances[a.instance].function == inst.function) {
        out << sep << (a.kind == core::NocNodeKind::kKernel ? 'k' : 'm')
            << a.node;
        sep = ",";
      }
    }
  }
  return out.str();
}

}  // namespace

std::string congruence_signature(const sys::AppSchedule& schedule,
                                 const core::DesignResult& design,
                                 double theta_seconds_per_byte) {
  // Canonical instance order: sort by the order-free record, original
  // index breaking ties (Algorithm 1's discovery order is deterministic,
  // so ties never make the signature ambiguous — two instances with equal
  // records are interchangeable by construction).
  std::vector<std::string> records;
  records.reserve(design.instances.size());
  for (const core::KernelInstance& inst : design.instances) {
    records.push_back(instance_record(inst, schedule, design));
  }
  std::vector<std::size_t> order(design.instances.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&records](std::size_t a, std::size_t b) {
              return records[a] != records[b] ? records[a] < records[b]
                                              : a < b;
            });
  std::vector<std::size_t> canonical(design.instances.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    canonical[order[rank]] = rank;
  }
  // Function ids relabel to the canonical rank of the function's first
  // instance (duplication maps several instances to one function).
  std::map<prof::FunctionId, std::size_t> fn_rank;
  for (std::size_t i = 0; i < design.instances.size(); ++i) {
    const prof::FunctionId fn = design.instances[i].function;
    const auto it = fn_rank.find(fn);
    if (it == fn_rank.end() || canonical[i] < it->second) {
      fn_rank[fn] = canonical[i];
    }
  }

  std::ostringstream out;
  out << "theta=" << hexf(theta_seconds_per_byte) << ';';
  if (design.noc.has_value()) {
    out << "mesh=" << design.noc->mesh_width << 'x'
        << design.noc->mesh_height << ';';
  } else {
    out << "mesh=none;";
  }
  for (const std::size_t index : order) {
    out << records[index] << ';';
  }

  // Shared pairs and the parallel plan, renumbered and sorted.
  std::set<std::string> lines;
  for (const core::SharedMemoryPairing& pair : design.shared_pairs) {
    std::ostringstream line;
    line << "s" << canonical[pair.producer_instance] << '>'
         << canonical[pair.consumer_instance] << ':' << pair.bytes.count()
         << ':' << (pair.style == mem::SharingStyle::kDirect ? 'd' : 'x');
    lines.insert(line.str());
  }
  for (const std::size_t inst : design.parallel.host_pipelined) {
    lines.insert("p1:" + std::to_string(canonical[inst]));
  }
  for (const core::StreamedEdge& edge : design.parallel.streamed) {
    lines.insert("p2:" + std::to_string(canonical[edge.producer_instance]) +
                 '>' + std::to_string(canonical[edge.consumer_instance]));
  }
  for (const std::size_t spec : design.parallel.duplicated_specs) {
    // Specs renumber through their function's canonical rank.
    lines.insert("p3:" +
                 std::to_string(fn_rank[schedule.specs[spec].function]));
  }
  for (const std::string& line : lines) {
    out << line << ';';
  }

  // Per-edge unique bytes between profiled functions, renumbered where a
  // function is instantiated (host functions keep a stable h<id> label:
  // they are never relabeled by Algorithm 1).
  if (schedule.graph != nullptr) {
    std::set<std::string> edges;
    for (const prof::CommEdge& edge : schedule.graph->edges()) {
      const auto producer = fn_rank.find(edge.producer);
      const auto consumer = fn_rank.find(edge.consumer);
      std::ostringstream line;
      line << 'e';
      if (producer != fn_rank.end()) {
        line << 'k' << producer->second;
      } else {
        line << 'h' << edge.producer;
      }
      line << '>';
      if (consumer != fn_rank.end()) {
        line << 'k' << consumer->second;
      } else {
        line << 'h' << edge.consumer;
      }
      line << ':' << core::edge_volume(edge).count();
      edges.insert(line.str());
    }
    for (const std::string& edge : edges) {
      out << edge << ';';
    }
  }
  return out.str();
}

std::uint64_t congruence_key_of(const std::string& signature) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a 64.
  for (const char ch : signature) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001B3ULL;
  }
  // splitmix64 finalizer spreads the FNV bits.
  hash += 0x9E3779B97F4A7C15ULL;
  hash = (hash ^ (hash >> 30)) * 0xBF58476D1CE4E5B9ULL;
  hash = (hash ^ (hash >> 27)) * 0x94D049BB133111EBULL;
  return hash ^ (hash >> 31);
}

TierEstimate CongruenceCache::get(
    std::uint64_t key, const std::function<TierEstimate()>& make) {
  std::shared_ptr<EstimateL2> l2;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    l2 = l2_;
  }
  // Compute outside the lock: estimates for one key are identical
  // whichever thread wins, so concurrent duplicate work is waste, not a
  // correctness problem — and analytic estimates are cheap enough that a
  // per-key future would cost more than the occasional double compute.
  // The persistent tier is consulted first for the same reason: whatever
  // it returns is the value a fresh compute would produce.
  bool from_l2 = false;
  TierEstimate estimate;
  if (l2 != nullptr) {
    if (std::optional<TierEstimate> stored = l2->load(key)) {
      estimate = std::move(*stored);
      from_l2 = true;
    }
  }
  if (!from_l2) {
    estimate = make();
    estimate.congruence_key = key;
    if (l2 != nullptr) {
      l2->store(key, estimate);
    }
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  ++misses_;
  if (from_l2) {
    ++l2_hits_;
  } else if (l2 != nullptr) {
    ++l2_stores_;
  }
  return entries_.emplace(key, std::move(estimate)).first->second;
}

void CongruenceCache::set_l2(std::shared_ptr<EstimateL2> l2) {
  const std::lock_guard<std::mutex> lock{mutex_};
  l2_ = std::move(l2);
}

std::uint64_t CongruenceCache::l2_hits() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return l2_hits_;
}

std::uint64_t CongruenceCache::l2_stores() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return l2_stores_;
}

std::uint64_t CongruenceCache::hits() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return hits_;
}

std::uint64_t CongruenceCache::misses() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return misses_;
}

std::size_t CongruenceCache::size() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return entries_.size();
}

void CongruenceCache::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  l2_hits_ = 0;
  l2_stores_ = 0;
}

}  // namespace hybridic::tiers
