#include "tiers/analytic.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "core/kernel_model.hpp"
#include "noc/flit.hpp"
#include "sys/board_net.hpp"
#include "sys/multi_board.hpp"

namespace hybridic::tiers {
namespace {

/// ESWN direction of one mesh step (matching the router port order).
enum : std::uint64_t { kEast = 0, kSouth = 1, kWest = 2, kNorth = 3 };

HopAccount::LinkId link_id(std::uint32_t node, std::uint64_t dir) {
  return static_cast<std::uint64_t>(node) * 4 + dir;
}

}  // namespace

HopAccount& HopAccount::operator+=(const HopAccount& other) {
  for (const auto& [link, bytes] : other.link_bytes_) {
    link_bytes_[link] += bytes;
  }
  total_ += other.total_;
  return *this;
}

HopAccount& HopAccount::operator*=(std::uint64_t batch) {
  for (auto& [link, bytes] : link_bytes_) {
    bytes *= batch;
  }
  total_ *= batch;
  return *this;
}

void HopAccount::add_route(const noc::Mesh2D& mesh, std::uint32_t src,
                           std::uint32_t dst, std::uint64_t bytes) {
  // XY routing: resolve the X offset first, then the Y offset — the same
  // dimension order the flit-level router uses, so link loads line up
  // with what the simulator would congest.
  noc::Coord at = mesh.coord_of(src);
  const noc::Coord to = mesh.coord_of(dst);
  while (at.x != to.x) {
    const std::uint64_t dir = at.x < to.x ? kEast : kWest;
    link_bytes_[link_id(mesh.id_of(at), dir)] += bytes;
    at.x = at.x < to.x ? at.x + 1 : at.x - 1;
    total_ += bytes;
  }
  while (at.y != to.y) {
    const std::uint64_t dir = at.y < to.y ? kNorth : kSouth;
    link_bytes_[link_id(mesh.id_of(at), dir)] += bytes;
    at.y = at.y < to.y ? at.y + 1 : at.y - 1;
    total_ += bytes;
  }
}

void HopAccount::clear() {
  link_bytes_.clear();
  total_ = 0;
}

std::uint64_t HopAccount::max_link_bytes() const {
  std::uint64_t best = 0;
  for (const auto& [link, bytes] : link_bytes_) {
    best = std::max(best, bytes);
  }
  return best;
}

HopAccount& HopAccount::scratch() {
  static thread_local HopAccount account;
  account.clear();
  return account;
}

TierEstimate analytic_estimate(const sys::AppSchedule& schedule,
                               const core::DesignResult& design,
                               const sys::PlatformConfig& platform,
                               double theta_seconds_per_byte,
                               const TierCalibration& calibration) {
  TierEstimate est;
  est.solution_tag = design.solution_tag();
  est.theta_seconds_per_byte = theta_seconds_per_byte;

  const core::DesignEstimate& model = design.estimate;
  est.baseline_kernel_seconds = model.baseline_seconds;
  est.baseline_lower_seconds =
      model.baseline_seconds / calibration.baseline_band;
  est.baseline_upper_seconds =
      model.baseline_seconds * calibration.baseline_band;
  est.designed_lower_seconds =
      model.proposed_seconds() / calibration.designed_band;
  est.designed_upper_seconds =
      model.baseline_seconds * calibration.designed_band;

  // Per-edge hop x volume accounting over the mesh placement. The Delta-n
  // term of Eq. 2 assumes the NoC hides kernel<->kernel traffic entirely;
  // the route walk recovers what that hiding actually costs the fabric,
  // giving a serialization floor for the mid-point estimate.
  if (design.noc.has_value() && schedule.graph != nullptr) {
    const core::NocPlan& plan = *design.noc;
    const noc::Mesh2D mesh{plan.mesh_width, plan.mesh_height};

    // Function -> mesh node, first attachment wins (duplicates of one
    // function share its profiled edges, like the EdgeRouter).
    std::map<prof::FunctionId, std::uint32_t> kernel_node;
    std::map<prof::FunctionId, std::uint32_t> memory_node;
    for (const core::NocAttachment& a : plan.attachments) {
      const prof::FunctionId fn = design.instances[a.instance].function;
      auto& slot = a.kind == core::NocNodeKind::kKernel ? kernel_node
                                                        : memory_node;
      slot.emplace(fn, a.node);
    }
    std::set<std::pair<prof::FunctionId, prof::FunctionId>> shared;
    for (const core::SharedMemoryPairing& pair : design.shared_pairs) {
      shared.insert({design.instances[pair.producer_instance].function,
                     design.instances[pair.consumer_instance].function});
    }

    HopAccount& account = HopAccount::scratch();
    const double noc_hz =
        static_cast<double>(platform.noc_clock.hertz());
    for (const prof::CommEdge& edge : schedule.graph->edges()) {
      if (edge.producer == edge.consumer ||
          shared.count({edge.producer, edge.consumer}) != 0) {
        continue;
      }
      const auto src = kernel_node.find(edge.producer);
      const auto dst = memory_node.find(edge.consumer);
      if (src == kernel_node.end() || dst == memory_node.end()) {
        continue;  // Not a NoC edge (host traffic stays on the bus).
      }
      const std::uint64_t volume = core::edge_volume(edge).count();
      account.add_route(mesh, src->second, dst->second, volume);
      est.noc_edges += 1;
      est.noc_volume_bytes += volume;
      const std::uint32_t hops = mesh.distance(src->second, dst->second);
      est.noc_transfer_seconds +=
          static_cast<double>(noc::idle_latency_cycles(
              volume, hops, platform.noc.max_packet_payload_bytes,
              platform.noc.router.pipeline_cycles)) /
          noc_hz;
    }
    est.noc_hop_bytes = account.total_hop_bytes();
    est.noc_max_link_bytes = account.max_link_bytes();
  }

  // Mid-point: the Delta-reduced estimate, floored by the exposed NoC
  // serialization, clamped into the calibrated band so the mid never
  // contradicts the bracket it is reported against.
  const double mid =
      std::max(model.proposed_seconds(), est.noc_transfer_seconds);
  est.designed_kernel_seconds =
      std::clamp(mid, est.designed_lower_seconds, est.designed_upper_seconds);
  return est;
}

TierEstimate analytic_estimate_multi(const sys::AppSchedule& schedule,
                                     const core::MultiBoardDesign& design,
                                     const sys::MultiBoardConfig& config,
                                     double theta_seconds_per_byte,
                                     const TierCalibration& calibration) {
  if (design.board_count() == 1) {
    // Degenerate path: identical to the single-board estimate.
    return analytic_estimate(schedule, design.boards.at(0), config.board(0),
                             theta_seconds_per_byte, calibration);
  }

  const std::uint32_t boards = design.board_count();
  const sys::BoardNetwork net(boards, config.topology, config.link,
                              config.dead_board_links());
  const std::vector<sys::AppSchedule> subs =
      sys::board_schedules(schedule, design);

  TierEstimate est;
  est.theta_seconds_per_byte = theta_seconds_per_byte;

  // Per-board estimates on the projected sub-schedules. Baselines add (a
  // conventional single-bus baseline runs all kernels back to back);
  // designed mids take the slowest board (boards overlap).
  double max_mid = 0.0;
  double max_lower = 0.0;
  double sum_upper = 0.0;
  std::string tags;
  for (std::uint32_t b = 0; b < boards; ++b) {
    const TierEstimate per = analytic_estimate(
        subs[b], design.boards.at(b), config.board(b),
        theta_seconds_per_byte, calibration);
    est.baseline_kernel_seconds += per.baseline_kernel_seconds;
    max_mid = std::max(max_mid, per.designed_kernel_seconds);
    max_lower = std::max(max_lower, per.designed_lower_seconds);
    sum_upper += per.designed_upper_seconds;
    est.noc_edges += per.noc_edges;
    est.noc_volume_bytes += per.noc_volume_bytes;
    est.noc_hop_bytes += per.noc_hop_bytes;
    est.noc_max_link_bytes =
        std::max(est.noc_max_link_bytes, per.noc_max_link_bytes);
    est.noc_transfer_seconds += per.noc_transfer_seconds;
    if (b != 0) {
      tags += "|";
    }
    tags += per.solution_tag;
  }
  est.solution_tag = "boards=" + std::to_string(boards) + ":" +
                     to_string(config.topology) + ":" + tags;
  est.baseline_lower_seconds =
      est.baseline_kernel_seconds / calibration.baseline_band;
  est.baseline_upper_seconds =
      est.baseline_kernel_seconds * calibration.baseline_band;

  // Serialized inter-board term: every cut edge rides its shortest path
  // store-and-forward, priced end to end as if the links were otherwise
  // idle and the transfers fully serialized.
  for (const core::InterBoardEdge& edge : design.cut_edges) {
    const std::uint32_t hops =
        net.hop_count(edge.producer_board, edge.consumer_board);
    est.inter_board_edges += 1;
    est.inter_board_bytes += edge.bytes.count();
    est.inter_board_hop_bytes += edge.bytes.count() * hops;
    est.inter_board_seconds += net.transfer_seconds(edge.bytes, hops);
  }

  // The inter-board term carries its own calibrated band: the bracket's
  // floor assumes maximal link overlap, its ceiling assumes every
  // transfer queues behind every other.
  est.designed_lower_seconds =
      max_lower + est.inter_board_seconds / calibration.inter_board_band;
  est.designed_upper_seconds =
      sum_upper + est.inter_board_seconds * calibration.inter_board_band;
  est.designed_kernel_seconds =
      std::clamp(max_mid + est.inter_board_seconds,
                 est.designed_lower_seconds, est.designed_upper_seconds);
  return est;
}

}  // namespace hybridic::tiers
