#include "tiers/tiered_evaluator.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/interconnect_design.hpp"
#include "sys/engine/context.hpp"

namespace hybridic::tiers {

std::optional<TierMode> parse_tier_mode(std::string_view text) {
  if (text == "auto") {
    return TierMode::kAuto;
  }
  if (text == "analytic") {
    return TierMode::kAnalytic;
  }
  if (text == "cycle") {
    return TierMode::kCycle;
  }
  return std::nullopt;
}

const char* to_string(TierMode mode) {
  switch (mode) {
    case TierMode::kAuto:
      return "auto";
    case TierMode::kAnalytic:
      return "analytic";
    case TierMode::kCycle:
      return "cycle";
  }
  return "?";
}

const char* to_string(EscalationReason reason) {
  switch (reason) {
    case EscalationReason::kNone:
      return "none";
    case EscalationReason::kRequested:
      return "requested";
    case EscalationReason::kRankOverlap:
      return "rank-overlap";
    case EscalationReason::kOracle:
      return "oracle";
  }
  return "?";
}

TieredEvaluator::TieredEvaluator(sys::PlatformConfig platform,
                                 TierCalibration calibration)
    : platform_(std::move(platform)), calibration_(calibration) {
  // One bus probe per evaluator instead of one per design point: theta
  // depends only on the platform, and the probe is the sole simulation
  // the analytic tier would otherwise touch.
  theta_ = sys::engine::measured_theta(platform_);
}

AnalyticCase TieredEvaluator::analyze(const apps::SyntheticConfig& config,
                                      apps::ProfileCache* cache) {
  AnalyticCase out;
  out.app = cache != nullptr
                ? cache->synthetic_app(config)
                : std::make_shared<const apps::ProfiledApp>(
                      apps::make_synthetic_app(config));
  out.schedule = out.app->schedule();
  out.theta_seconds_per_byte = theta_;

  core::DesignInput input;
  input.graph = out.schedule.graph;
  input.kernels = out.schedule.specs;
  input.kernel_clock = platform_.kernel_clock;
  input.theta.seconds_per_byte = theta_;
  input.stream_overhead_seconds = platform_.stream_overhead_seconds;
  input.duplication_overhead_seconds =
      platform_.duplication_overhead_seconds;
  out.proposed = core::design_interconnect(input);

  core::DesignInput noc_only_input = input;
  noc_only_input.enable_shared_memory = false;
  noc_only_input.enable_adaptive_mapping = false;
  out.noc_only = core::design_interconnect(noc_only_input);

  out.estimate = estimate(out.schedule, out.proposed);
  return out;
}

TierEstimate TieredEvaluator::estimate(const sys::AppSchedule& schedule,
                                       const core::DesignResult& design) {
  const std::uint64_t key = congruence_key_of(
      congruence_signature(schedule, design, theta_));
  return cache_.get(key, [&] {
    return analytic_estimate(schedule, design, platform_, theta_,
                             calibration_);
  });
}

std::vector<EscalationReason> select_escalations(
    const std::vector<const TierEstimate*>& estimates,
    const std::vector<bool>& oracle_demands,
    std::uint64_t max_rank_escalations) {
  std::vector<EscalationReason> reasons(estimates.size(),
                                        EscalationReason::kNone);
  // The lowest guaranteed ceiling: some design provably finishes within
  // it, so any candidate whose lower bound clears it cannot win.
  double best_upper = std::numeric_limits<double>::infinity();
  for (const TierEstimate* estimate : estimates) {
    if (estimate != nullptr) {
      best_upper = std::min(best_upper, estimate->designed_upper_seconds);
    }
  }
  std::vector<std::size_t> contenders;
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    if (i < oracle_demands.size() && oracle_demands[i]) {
      reasons[i] = EscalationReason::kOracle;
      continue;
    }
    if (estimates[i] != nullptr &&
        estimates[i]->designed_lower_seconds <= best_upper) {
      contenders.push_back(i);
    }
  }
  // Cap by keeping the most promising (lowest lower-bound) contenders;
  // ties resolve by index so the set is thread-count independent.
  if (max_rank_escalations != 0 &&
      contenders.size() > max_rank_escalations) {
    std::sort(contenders.begin(), contenders.end(),
              [&estimates](std::size_t a, std::size_t b) {
                const double la = estimates[a]->designed_lower_seconds;
                const double lb = estimates[b]->designed_lower_seconds;
                return la != lb ? la < lb : a < b;
              });
    contenders.resize(max_rank_escalations);
  }
  for (const std::size_t i : contenders) {
    reasons[i] = EscalationReason::kRankOverlap;
  }
  return reasons;
}

}  // namespace hybridic::tiers
