// Analytic evaluation tier — the fast half of the tiered evaluator.
//
// Where the cycle-accurate engine replays every transfer through the
// event-driven bus/NoC simulators (~225K events/sec), this tier prices a
// design point purely from the mapped multigraph: per-edge hop-count x
// volume accumulation over the design's mesh placement (an XY route walk
// per edge, no event queue at all) layered on the Eq. 2 / Delta estimate
// Algorithm 1 already attaches to the design. The result is a
// TierEstimate whose lower/upper band comes from the PR 5 bracket
// calibration (dse::OracleBounds), so "measured falls inside the band" is
// exactly the property the perf-model-agreement oracle has been proving
// over the 1000-design calibration sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/design_result.hpp"
#include "core/multi_board_design.hpp"
#include "noc/topology.hpp"
#include "sys/platform.hpp"
#include "sys/schedule.hpp"

namespace hybridic::tiers {

/// Composable per-link traffic accumulator (the HopCount idiom): bytes
/// crossing each directed mesh link, built by XY route walks. Accounts
/// compose with += (merge two traffic patterns) and scale with *= (batch
/// N identical frames), so callers can price a multi-frame schedule
/// without re-walking any route.
class HopAccount {
public:
  /// Directed link leaving `node` towards `dir` (ESWN = 0..3).
  using LinkId = std::uint64_t;

  HopAccount& operator+=(const HopAccount& other);
  HopAccount& operator*=(std::uint64_t batch);

  /// Walk the XY route src -> dst on `mesh`, adding `bytes` to every link
  /// crossed. A self-route (src == dst) crosses no links.
  void add_route(const noc::Mesh2D& mesh, std::uint32_t src,
                 std::uint32_t dst, std::uint64_t bytes);

  void clear();

  /// Sum over links of bytes crossing it (== sum over edges of
  /// bytes x hops).
  [[nodiscard]] std::uint64_t total_hop_bytes() const { return total_; }
  /// Bytes on the single busiest link (the serialization floor).
  [[nodiscard]] std::uint64_t max_link_bytes() const;
  [[nodiscard]] std::size_t links_used() const { return link_bytes_.size(); }

  /// Per-thread scratch account, cleared on every acquire. Lets hot loops
  /// (the DSE campaign runs one analytic eval per BatchRunner job) reuse
  /// one hash map per worker instead of allocating per design point.
  [[nodiscard]] static HopAccount& scratch();

private:
  std::unordered_map<LinkId, std::uint64_t> link_bytes_;
  std::uint64_t total_ = 0;
};

/// Band widths applied around the analytic estimate. Sourced from the
/// PR 5 bracket calibration: dse::OracleBounds proves measured baseline
/// kernel time within [est/2, est*2] and measured designed kernel time
/// within [est_proposed/6, est_baseline*6] over every calibration sweep.
struct TierCalibration {
  double baseline_band = 2.0;  ///< == OracleBounds::baseline_perf_band.
  double designed_band = 6.0;  ///< == OracleBounds::proposed_perf_band.
  /// Band on the inter-board serialization term of a multi-board
  /// estimate. The link model is store-and-forward with per-link busy
  /// cursors, so the analytic sum-of-transfers can over-state (transfers
  /// overlap on disjoint links) or under-state (queueing on a shared
  /// link) the simulated cost by a bounded factor.
  double inter_board_band = 3.0;
};

/// What the analytic tier knows about one design point.
struct TierEstimate {
  std::string solution_tag;
  double theta_seconds_per_byte = 0.0;

  /// Eq. 2 over the profiled kernels (analytic baseline kernel time).
  double baseline_kernel_seconds = 0.0;
  /// Mid-point analytic designed kernel time: the Delta-reduced Eq. 2
  /// estimate, floored by the NoC serialization the hop accounting
  /// exposes, clamped into the calibrated band.
  double designed_kernel_seconds = 0.0;

  /// Calibrated bracket on the cycle-accurate *designed* kernel seconds.
  double designed_lower_seconds = 0.0;
  double designed_upper_seconds = 0.0;
  /// Calibrated bracket on the cycle-accurate *baseline* kernel seconds.
  double baseline_lower_seconds = 0.0;
  double baseline_upper_seconds = 0.0;

  /// Per-edge hop x volume accounting over the NoC placement (all zero
  /// for designs without a NoC).
  std::uint64_t noc_edges = 0;
  std::uint64_t noc_volume_bytes = 0;    ///< Unique bytes routed.
  std::uint64_t noc_hop_bytes = 0;       ///< Sum bytes x hops.
  std::uint64_t noc_max_link_bytes = 0;  ///< Busiest link.
  double noc_transfer_seconds = 0.0;     ///< Idle-network serialization.

  /// Inter-board link accounting (all zero for single-board estimates).
  std::uint64_t inter_board_edges = 0;
  std::uint64_t inter_board_bytes = 0;      ///< Unique bytes crossing boards.
  std::uint64_t inter_board_hop_bytes = 0;  ///< Sum bytes x link hops.
  double inter_board_seconds = 0.0;  ///< Serialized link-transfer term.

  /// Canonical design signature (0 until the congruence cache fills it).
  std::uint64_t congruence_key = 0;

  [[nodiscard]] bool contains_designed(double measured_seconds) const {
    return measured_seconds >= designed_lower_seconds &&
           measured_seconds <= designed_upper_seconds;
  }
  [[nodiscard]] bool contains_baseline(double measured_seconds) const {
    return measured_seconds >= baseline_lower_seconds &&
           measured_seconds <= baseline_upper_seconds;
  }
  /// Do the designed-time brackets of two ranked candidates intersect?
  [[nodiscard]] bool overlaps(const TierEstimate& other) const {
    return designed_lower_seconds <= other.designed_upper_seconds &&
           other.designed_lower_seconds <= designed_upper_seconds;
  }
};

/// Price `design` for `schedule` analytically. `theta_seconds_per_byte`
/// is the bus theta the designer consumed (sys::make_design_input);
/// platform supplies the NoC clock and packet format for the idle-network
/// serialization term. Pure and deterministic — never touches a
/// simulation engine.
[[nodiscard]] TierEstimate analytic_estimate(
    const sys::AppSchedule& schedule, const core::DesignResult& design,
    const sys::PlatformConfig& platform, double theta_seconds_per_byte,
    const TierCalibration& calibration = {});

/// Price a two-level multi-board design analytically: per-board
/// analytic_estimate over each board's projected sub-schedule, combined
/// with a serialized inter-board link term (sum over cut edges of
/// store-and-forward transfer time along the topology's shortest path)
/// carrying its own calibrated band. With board_count == 1 this returns
/// exactly analytic_estimate on board 0 — multi-board pricing never
/// perturbs single-board results.
[[nodiscard]] TierEstimate analytic_estimate_multi(
    const sys::AppSchedule& schedule, const core::MultiBoardDesign& design,
    const sys::MultiBoardConfig& config, double theta_seconds_per_byte,
    const TierCalibration& calibration = {});

}  // namespace hybridic::tiers
