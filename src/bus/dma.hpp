// DMA engine: moves a block between main memory (SDRAM) and a kernel's
// local BRAM over the shared bus, splitting the block into bus-sized chunks.
//
// In the baseline system (paper §III-A) the host programs a DMA descriptor
// per kernel invocation: D_in from SDRAM to the kernel BRAM before compute,
// D_out back after compute. Descriptor setup costs host cycles; the data
// movement occupies the bus, the SDRAM channel and one BRAM port.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "bus/bus.hpp"
#include "mem/bram.hpp"
#include "mem/sdram.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace hybridic::bus {

/// DMA configuration.
struct DmaConfig {
  Cycles setup_cycles{30};       ///< Host cycles to program a descriptor.
  std::uint32_t chunk_bytes = 4096;  ///< Max bytes per bus transaction.
};

/// Direction of a DMA block transfer.
enum class DmaDirection : std::uint8_t {
  kMemToLocal,  ///< SDRAM -> kernel BRAM (input fetch).
  kLocalToMem,  ///< kernel BRAM -> SDRAM (result write-back).
};

/// A DMA engine bound to one bus master id.
class Dma {
public:
  /// `setup_clock` is the clock of the processor programming descriptors
  /// (the host), which prices DmaConfig::setup_cycles.
  Dma(std::string name, sim::Engine& engine, Bus& bus, mem::Sdram& sdram,
      const sim::ClockDomain& setup_clock, DmaConfig config,
      std::uint32_t bus_master);

  /// Start a block transfer touching `local` (port A, the host-facing port,
  /// or through the provided access functor when the BRAM port is muxed).
  /// `on_complete` fires when the last chunk has fully landed.
  void transfer(DmaDirection direction, Bytes bytes, mem::Bram& local,
                std::function<void(Picoseconds)> on_complete);

  /// As `transfer`, but the local-memory side is reserved through a caller
  /// supplied functor (earliest, bytes) -> completion, so muxed ports work.
  void transfer_via(
      DmaDirection direction, Bytes bytes,
      const std::function<Picoseconds(Picoseconds, Bytes)>& local_access,
      std::function<void(Picoseconds)> on_complete);

  [[nodiscard]] std::uint64_t transfers_started() const { return started_; }

  /// Enable chunk-error fault injection with the injector's retry budget
  /// (null disables).
  void set_faults(faults::FaultInjector* injector) { faults_ = injector; }

private:
  struct Plan;  // chunking state shared by the per-chunk continuations

  /// Issue the next chunk of `plan`, or fire its completion callback.
  void issue_chunk(const std::shared_ptr<Plan>& plan);

  std::string name_;
  sim::Engine* engine_;
  Bus* bus_;
  mem::Sdram* sdram_;
  const sim::ClockDomain* setup_clock_;
  DmaConfig config_;
  std::uint32_t bus_master_;
  std::uint64_t started_ = 0;
  faults::FaultInjector* faults_ = nullptr;
};

}  // namespace hybridic::bus
