#include "bus/dma.hpp"

#include <memory>
#include <utility>

#include "faults/injector.hpp"
#include "util/error.hpp"

namespace hybridic::bus {

Dma::Dma(std::string name, sim::Engine& engine, Bus& bus, mem::Sdram& sdram,
         const sim::ClockDomain& setup_clock, DmaConfig config,
         std::uint32_t bus_master)
    : name_(std::move(name)),
      engine_(&engine),
      bus_(&bus),
      sdram_(&sdram),
      setup_clock_(&setup_clock),
      config_(config),
      bus_master_(bus_master) {
  require(config.chunk_bytes > 0, "DMA chunk size must be non-zero");
}

void Dma::transfer(DmaDirection direction, Bytes bytes, mem::Bram& local,
                   std::function<void(Picoseconds)> on_complete) {
  transfer_via(
      direction, bytes,
      [&local](Picoseconds earliest, Bytes chunk) {
        return local.access(mem::BramPort::kA, earliest, chunk);
      },
      std::move(on_complete));
}

// Chunk plan: split `bytes` into bus transactions of at most chunk_bytes.
// Owned by whichever continuation currently drives the transfer (the setup
// event, then each in-flight bus callback) — never by itself, so abandoned
// simulations free it with the pending event.
struct Dma::Plan {
  DmaDirection direction;
  std::function<Picoseconds(Picoseconds, Bytes)> local_access;
  std::function<void(Picoseconds)> on_complete;
  std::uint64_t remaining;
  Picoseconds last_done{0};
  std::uint32_t retries_left = 0;
};

void Dma::transfer_via(
    DmaDirection direction, Bytes bytes,
    const std::function<Picoseconds(Picoseconds, Bytes)>& local_access,
    std::function<void(Picoseconds)> on_complete) {
  ++started_;

  auto plan = std::make_shared<Plan>(
      Plan{direction, local_access, std::move(on_complete), bytes.count(),
           Picoseconds{0},
           faults_ != nullptr ? faults_->resilience().bus_retry_budget : 0});

  // Descriptor setup happens before the first chunk hits the bus.
  const Picoseconds setup = setup_clock_->span(config_.setup_cycles);
  engine_->schedule_after(setup, [this, plan] { issue_chunk(plan); });
}

void Dma::issue_chunk(const std::shared_ptr<Plan>& plan) {
  if (plan->remaining == 0) {
    if (plan->on_complete) {
      plan->on_complete(plan->last_done);
    }
    return;
  }
  const Bytes chunk{std::min<std::uint64_t>(plan->remaining,
                                            config_.chunk_bytes)};
  plan->remaining -= chunk.count();

  // Serialize the chunk on both memory legs (SDRAM channel, BRAM port).
  // Whatever those legs need beyond the bus occupancy itself is exposed to
  // the requester as slave-side latency on the bus transaction.
  const Picoseconds now = engine_->now();
  const Picoseconds mem_done = sdram_->access(now, chunk);
  const Picoseconds local_done = plan->local_access(now, chunk);
  const Picoseconds legs_done = std::max(mem_done, local_done);
  const Picoseconds ideal_done = now + bus_->uncontended_time(chunk);
  const Picoseconds slave_latency =
      legs_done > ideal_done ? legs_done - ideal_done : Picoseconds{0};

  bus_->submit(BusRequest{
      bus_master_, chunk, slave_latency,
      [this, plan, chunk](Picoseconds done) {
        plan->last_done = done;
        if (faults_ != nullptr &&
            faults_->draw(faults::SiteKind::kDma, bus_master_,
                          faults_->spec().bus_error_rate)) {
          ++faults_->stats().bus_errors;
          if (plan->retries_left > 0) {
            --plan->retries_left;
            ++faults_->stats().bus_retries;
            faults_->record(faults::FaultKind::kBusRetry, done.seconds(),
                            chunk.count(),
                            name_ + ": bus chunk error, re-issuing " +
                                std::to_string(chunk.count()) + " B");
            plan->remaining += chunk.count();  // re-issue this chunk
          } else {
            faults_->stats().corrupted_bytes += chunk.count();
            faults_->record(faults::FaultKind::kBusError, done.seconds(),
                            chunk.count(),
                            name_ + ": bus chunk error past retry "
                                    "budget, delivered corrupted");
          }
        }
        issue_chunk(plan);
      }});
}

}  // namespace hybridic::bus
