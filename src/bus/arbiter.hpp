// Bus arbitration policies.
//
// The baseline platform uses a Xilinx-PLB-style shared bus: one transaction
// at a time, masters arbitrated by fixed priority or round-robin. The
// arbiter is a pure selection policy over the set of pending masters so it
// can be unit-tested exhaustively in isolation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace hybridic::bus {

/// Arbitration policy over master indices [0, master_count).
class Arbiter {
public:
  virtual ~Arbiter() = default;

  /// Pick the next master among `pending` (non-empty, strictly increasing
  /// master indices). Must return one of the given values.
  [[nodiscard]] virtual std::uint32_t select(
      const std::vector<std::uint32_t>& pending) = 0;
};

/// Fixed priority: lowest master index wins (PLB-style static priority).
class PriorityArbiter final : public Arbiter {
public:
  [[nodiscard]] std::uint32_t select(
      const std::vector<std::uint32_t>& pending) override;
};

/// Round-robin: the winner is the first pending master strictly after the
/// previous winner (wrapping), so every master gets fair service.
class RoundRobinArbiter final : public Arbiter {
public:
  explicit RoundRobinArbiter(std::uint32_t master_count);

  [[nodiscard]] std::uint32_t select(
      const std::vector<std::uint32_t>& pending) override;

  [[nodiscard]] std::uint32_t last_grant() const { return last_grant_; }

private:
  std::uint32_t master_count_;
  std::uint32_t last_grant_;
};

/// Weighted round-robin: masters with larger weights may win several
/// consecutive grants before yielding (used by QoS-style configurations;
/// the NoC routers use the same discipline at link level).
class WeightedRoundRobinArbiter final : public Arbiter {
public:
  explicit WeightedRoundRobinArbiter(std::vector<std::uint32_t> weights);

  [[nodiscard]] std::uint32_t select(
      const std::vector<std::uint32_t>& pending) override;

private:
  std::vector<std::uint32_t> weights_;
  std::vector<std::uint32_t> credit_;
  std::uint32_t last_grant_;
};

}  // namespace hybridic::bus
