// Shared system bus (Xilinx-PLB-like) at transaction granularity.
//
// One transaction owns the bus at a time: arbitration cycles, an address
// phase, then data beats at the bus width, split into maximum-length bursts.
// Masters submit requests with completion callbacks; the engine drives
// grant/completion events so bus traffic overlaps correctly with kernel
// computation and NoC transfers in the proposed system.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bus/arbiter.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "util/units.hpp"

namespace hybridic::faults {
class FaultInjector;
}  // namespace hybridic::faults

namespace hybridic::bus {

/// Timing parameters of the shared bus.
struct BusConfig {
  std::uint32_t width_bytes = 8;        ///< 64-bit PLB data width.
  std::uint32_t max_burst_beats = 16;   ///< PLB max burst length.
  Cycles arbitration_cycles{2};         ///< Request → grant.
  Cycles address_cycles{1};             ///< Address phase per burst.
  std::uint32_t master_count = 2;
};

/// A queued bus transfer request.
struct BusRequest {
  std::uint32_t master = 0;
  Bytes bytes{0};
  Picoseconds extra_latency{0};  ///< Slave-side latency (e.g. SDRAM access).
  std::function<void(Picoseconds)> on_complete;
};

/// The shared bus. All timing is in the bus clock domain.
class Bus {
public:
  Bus(std::string name, sim::Engine& engine, const sim::ClockDomain& clock,
      BusConfig config, std::unique_ptr<Arbiter> arbiter);

  /// Submit a transfer; `on_complete` fires at the delivery time of the
  /// last beat. Requests from the same master stay FIFO.
  void submit(BusRequest request);

  /// Duration of an uncontended transfer of `bytes` (arb + per-burst
  /// address phases + data beats), excluding slave latency.
  [[nodiscard]] Picoseconds uncontended_time(Bytes bytes) const;

  /// Average seconds/byte on an idle bus for a transfer of `bytes` —
  /// the paper's θ for a representative transfer size.
  [[nodiscard]] double theta_seconds_per_byte(Bytes bytes) const;

  [[nodiscard]] Bytes bytes_transferred() const { return bytes_transferred_; }
  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }
  [[nodiscard]] Picoseconds busy_time() const { return busy_time_; }
  [[nodiscard]] const sim::Summary& wait_summary() const {
    return wait_summary_;
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const BusConfig& config() const { return config_; }

  /// Enable arbiter-stall fault injection (null disables).
  void set_faults(faults::FaultInjector* injector) { faults_ = injector; }

private:
  void try_grant();
  [[nodiscard]] std::uint64_t data_beats(Bytes bytes) const;
  [[nodiscard]] std::uint64_t burst_count(Bytes bytes) const;

  std::string name_;
  sim::Engine* engine_;
  const sim::ClockDomain* clock_;
  BusConfig config_;
  std::unique_ptr<Arbiter> arbiter_;

  /// Per-master FIFO of pending requests (front = oldest), plus arrival time.
  struct Pending {
    BusRequest request;
    Picoseconds arrived;
  };
  std::vector<std::deque<Pending>> queues_;
  bool busy_ = false;

  Bytes bytes_transferred_{0};
  std::uint64_t transactions_ = 0;
  Picoseconds busy_time_{0};
  sim::Summary wait_summary_;
  faults::FaultInjector* faults_ = nullptr;
};

}  // namespace hybridic::bus
