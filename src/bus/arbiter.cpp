#include "bus/arbiter.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hybridic::bus {

std::uint32_t PriorityArbiter::select(
    const std::vector<std::uint32_t>& pending) {
  sim_assert(!pending.empty(), "arbiter called with no pending masters");
  return pending.front();
}

RoundRobinArbiter::RoundRobinArbiter(std::uint32_t master_count)
    : master_count_(master_count), last_grant_(master_count - 1) {
  require(master_count > 0, "RoundRobinArbiter needs at least one master");
}

std::uint32_t RoundRobinArbiter::select(
    const std::vector<std::uint32_t>& pending) {
  sim_assert(!pending.empty(), "arbiter called with no pending masters");
  // First pending master strictly after last_grant_, wrapping around.
  for (std::uint32_t offset = 1; offset <= master_count_; ++offset) {
    const std::uint32_t candidate = (last_grant_ + offset) % master_count_;
    if (std::binary_search(pending.begin(), pending.end(), candidate)) {
      last_grant_ = candidate;
      return candidate;
    }
  }
  sim_assert(false, "round-robin arbiter found no candidate");
  return pending.front();
}

WeightedRoundRobinArbiter::WeightedRoundRobinArbiter(
    std::vector<std::uint32_t> weights)
    : weights_(std::move(weights)),
      credit_(weights_.size(), 0),
      last_grant_(static_cast<std::uint32_t>(weights_.size()) - 1) {
  require(!weights_.empty(), "WRR arbiter needs at least one master");
  for (const std::uint32_t w : weights_) {
    require(w > 0, "WRR weights must be positive");
  }
}

std::uint32_t WeightedRoundRobinArbiter::select(
    const std::vector<std::uint32_t>& pending) {
  sim_assert(!pending.empty(), "arbiter called with no pending masters");
  const auto n = static_cast<std::uint32_t>(weights_.size());
  // Keep granting the current master while it has credit; otherwise rotate
  // to the next pending master and refill its credit.
  if (std::binary_search(pending.begin(), pending.end(), last_grant_) &&
      credit_[last_grant_] > 0) {
    --credit_[last_grant_];
    return last_grant_;
  }
  for (std::uint32_t offset = 1; offset <= n; ++offset) {
    const std::uint32_t candidate = (last_grant_ + offset) % n;
    if (std::binary_search(pending.begin(), pending.end(), candidate)) {
      last_grant_ = candidate;
      credit_[candidate] = weights_[candidate] - 1;
      return candidate;
    }
  }
  sim_assert(false, "WRR arbiter found no candidate");
  return pending.front();
}

}  // namespace hybridic::bus
