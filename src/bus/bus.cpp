#include "bus/bus.hpp"

#include <utility>

#include "faults/injector.hpp"
#include "util/error.hpp"

namespace hybridic::bus {

Bus::Bus(std::string name, sim::Engine& engine, const sim::ClockDomain& clock,
         BusConfig config, std::unique_ptr<Arbiter> arbiter)
    : name_(std::move(name)),
      engine_(&engine),
      clock_(&clock),
      config_(config),
      arbiter_(std::move(arbiter)),
      queues_(config.master_count) {
  require(config.width_bytes > 0, "bus width must be non-zero");
  require(config.max_burst_beats > 0, "bus burst length must be non-zero");
  require(config.master_count > 0, "bus needs at least one master");
  require(arbiter_ != nullptr, "bus needs an arbiter");
}

std::uint64_t Bus::data_beats(Bytes bytes) const {
  return (bytes.count() + config_.width_bytes - 1) / config_.width_bytes;
}

std::uint64_t Bus::burst_count(Bytes bytes) const {
  const std::uint64_t beats = data_beats(bytes);
  if (beats == 0) {
    return 1;  // A zero-byte transaction still runs an address phase.
  }
  return (beats + config_.max_burst_beats - 1) / config_.max_burst_beats;
}

Picoseconds Bus::uncontended_time(Bytes bytes) const {
  const std::uint64_t cycles =
      config_.arbitration_cycles.count() +
      burst_count(bytes) * config_.address_cycles.count() + data_beats(bytes);
  return clock_->span(Cycles{cycles});
}

double Bus::theta_seconds_per_byte(Bytes bytes) const {
  require(bytes.count() > 0, "theta needs a non-zero reference size");
  return uncontended_time(bytes).seconds() /
         static_cast<double>(bytes.count());
}

void Bus::submit(BusRequest request) {
  require(request.master < config_.master_count, "bus master out of range");
  queues_[request.master].push_back(
      Pending{std::move(request), engine_->now()});
  if (!busy_) {
    try_grant();
  }
}

void Bus::try_grant() {
  std::vector<std::uint32_t> pending;
  for (std::uint32_t m = 0; m < config_.master_count; ++m) {
    if (!queues_[m].empty()) {
      pending.push_back(m);
    }
  }
  if (pending.empty()) {
    return;
  }
  const std::uint32_t winner = arbiter_->select(pending);
  Pending grant = std::move(queues_[winner].front());
  queues_[winner].pop_front();

  Picoseconds start = clock_->align_up(engine_->now());
  if (faults_ != nullptr &&
      faults_->draw(faults::SiteKind::kBus, winner,
                    faults_->spec().bus_stall_rate)) {
    const Cycles stall{faults_->spec().bus_stall_cycles};
    start += clock_->span(stall);
    ++faults_->stats().bus_stalls;
    faults_->record(faults::FaultKind::kBusStall, start.seconds(),
                    grant.request.bytes.count(),
                    name_ + ": arbiter stalled master " +
                        std::to_string(winner) + " for " +
                        std::to_string(stall.count()) + " cycles");
  }
  const Picoseconds occupied = uncontended_time(grant.request.bytes);
  const Picoseconds release = start + occupied;
  const Picoseconds done = release + grant.request.extra_latency;

  busy_ = true;
  busy_time_ += occupied;
  bytes_transferred_ += grant.request.bytes;
  ++transactions_;
  wait_summary_.add((start - grant.arrived).seconds());

  // The bus frees at `release`; the requester learns of completion once the
  // slave-side latency has also elapsed.
  engine_->schedule_at(release, [this] {
    busy_ = false;
    try_grant();
  });
  if (grant.request.on_complete) {
    engine_->schedule_at(
        done, [cb = std::move(grant.request.on_complete), done] { cb(done); });
  }
}

}  // namespace hybridic::bus
