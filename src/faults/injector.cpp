#include "faults/injector.hpp"

namespace hybridic::faults {

namespace {

// One splitmix64-style finalizer round; a pure function so site streams do
// not depend on the order sites first draw.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFlitCorruption:
      return "flit-corruption";
    case FaultKind::kMessageLost:
      return "message-lost";
    case FaultKind::kBusError:
      return "bus-error";
    case FaultKind::kBusStall:
      return "bus-stall";
    case FaultKind::kSdramBitFlip:
      return "sdram-bitflip";
    case FaultKind::kBramBitFlip:
      return "bram-bitflip";
    case FaultKind::kRetransmit:
      return "retransmit";
    case FaultKind::kBusRetry:
      return "bus-retry";
  }
  return "?";
}

Rng& FaultInjector::stream(SiteKind kind, std::uint64_t site) {
  const auto key =
      std::make_pair(static_cast<std::uint8_t>(kind), site);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    const std::uint64_t seed =
        mix(mix(spec_.seed ^ (static_cast<std::uint64_t>(kind) << 56)) + site);
    it = streams_.emplace(key, Rng{seed}).first;
  }
  return it->second;
}

void FaultInjector::record(FaultKind kind, double at_seconds,
                           std::uint64_t bytes, std::string label) {
  std::uint32_t& stored = events_per_kind_[static_cast<std::size_t>(kind)];
  if (stored >= kMaxEventsPerKind) {
    ++events_dropped_;
    return;
  }
  ++stored;
  events_.push_back(FaultEvent{kind, at_seconds, bytes, std::move(label)});
}

}  // namespace hybridic::faults
