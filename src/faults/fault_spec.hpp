// Fault-injection campaign description and run statistics.
//
// A FaultSpec travels inside PlatformConfig; when it describes no faults the
// platform builds no injector and every fault hook stays a null pointer, so
// fault-free runs remain byte-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <vector>

namespace hybridic::faults {

/// A permanently failed bidirectional mesh link, named by the two adjacent
/// node ids it connects (direction-free so the spec does not depend on the
/// NoC port enumeration).
struct LinkDown {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Recovery mechanisms the run may enable. All default off/harmless; they
/// only change behaviour when the matching fault class is injected.
struct ResilienceSpec {
  /// CRC-check NoC packets at the destination adapter and request bounded
  /// retransmission of corrupted ones.
  bool noc_crc = false;
  /// Retransmission budget per packet before it is delivered as-corrupted.
  std::uint32_t noc_max_retransmits = 8;
  /// Exponential backoff base: attempt k waits base << (k-1) NoC cycles
  /// before re-injecting the packet.
  std::uint32_t noc_backoff_base_cycles = 4;
  /// Re-issued bus chunks per DMA transfer before a failed chunk is
  /// accepted as corrupted.
  std::uint32_t bus_retry_budget = 4;
  /// When dead links disconnect a kernel pair on the mesh, degrade that
  /// edge to a bus-DMA round trip instead of black-holing the transfer.
  bool noc_degrade_to_bus = true;
};

/// One campaign point: which faults to inject, at what rates, with which
/// recovery mechanisms enabled. Rates are per-event Bernoulli probabilities
/// (per injected flit, per bus chunk, per memory access).
struct FaultSpec {
  /// Root seed; every injection site derives an independent stream from it.
  std::uint64_t seed = 0;
  /// Probability that an injected NoC flit is corrupted in transit.
  double flit_corruption_rate = 0.0;
  /// Permanently failed mesh links (must name adjacent nodes).
  std::vector<LinkDown> dead_links;
  /// Probability that a DMA bus chunk completes corrupted.
  double bus_error_rate = 0.0;
  /// Probability that a granted bus master is stalled by the arbiter.
  double bus_stall_rate = 0.0;
  /// Length of one injected arbiter stall, in bus cycles.
  std::uint32_t bus_stall_cycles = 16;
  /// Probability that an SDRAM access suffers a bit flip.
  double sdram_bitflip_rate = 0.0;
  /// Probability that a BRAM access suffers a bit flip.
  double bram_bitflip_rate = 0.0;
  /// Permanently failed inter-board serial links, named by the two board
  /// ids they connect (multi-board runs only; single-board platforms
  /// ignore them, so they do not force a FaultInjector into existence).
  /// On ring/mesh board topologies traffic reroutes around a dead link;
  /// a disconnected topology (any dead chain link) is a ConfigError.
  std::vector<LinkDown> dead_board_links;
  ResilienceSpec resilience;

  /// True when any fault class is actually configured; the platform only
  /// builds a FaultInjector (and wires any hook) when this holds.
  [[nodiscard]] bool any_faults() const {
    return flit_corruption_rate > 0.0 || !dead_links.empty() ||
           bus_error_rate > 0.0 || bus_stall_rate > 0.0 ||
           sdram_bitflip_rate > 0.0 || bram_bitflip_rate > 0.0;
  }
};

/// Aggregate counters of everything injected and every recovery taken.
/// Copied onto RunResult so campaigns can plot degradation curves.
struct FaultStats {
  std::uint64_t flits_corrupted = 0;
  std::uint64_t packets_retransmitted = 0;
  std::uint64_t retransmit_give_ups = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t bus_errors = 0;
  std::uint64_t bus_retries = 0;
  std::uint64_t bus_stalls = 0;
  std::uint64_t mem_bitflips = 0;
  /// Payload bytes delivered corrupted (NoC packets past their retransmit
  /// budget or with CRC off, plus bus chunks past their retry budget).
  std::uint64_t corrupted_bytes = 0;
  /// Kernel edges degraded from NoC to a bus-DMA round trip.
  std::uint64_t degraded_edges = 0;
  /// NoC source/destination pairs whose route detours around dead links.
  std::uint64_t noc_reroutes = 0;
  /// Inter-board transfers whose board route detours around a dead
  /// serial link (multi-board runs only).
  std::uint64_t board_link_reroutes = 0;
};

}  // namespace hybridic::faults
