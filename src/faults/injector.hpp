// The fault injector: per-site deterministic RNG streams plus the event and
// counter record of one run.
//
// Determinism contract: each injection site (kind, site-id) owns an Rng
// seeded by a pure mix of the campaign seed and the site identity, created
// lazily but independent of creation order. Draw order within one site is
// fixed by simulation order, which is itself deterministic, so campaign
// results are bit-identical across reruns and across --threads values
// (BatchRunner gives every job its own platform and injector).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_spec.hpp"
#include "util/rng.hpp"

namespace hybridic::faults {

/// What a recorded fault/recovery event was.
enum class FaultKind : std::uint8_t {
  kFlitCorruption = 0,
  kMessageLost,
  kBusError,
  kBusStall,
  kSdramBitFlip,
  kBramBitFlip,
  kRetransmit,
  kBusRetry,
};
inline constexpr std::size_t kFaultKindCount = 8;

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One recorded injection or recovery, timestamped in simulated seconds.
struct FaultEvent {
  FaultKind kind = FaultKind::kFlitCorruption;
  double at_seconds = 0.0;
  std::uint64_t bytes = 0;
  std::string label;
};

/// Classes of injection sites; combined with a site id they name one
/// independent RNG stream.
enum class SiteKind : std::uint8_t {
  kNocFlit = 1,  ///< site = injecting mesh node
  kBus = 2,      ///< site = granted bus master
  kDma = 3,      ///< site = DMA bus master
  kSdram = 4,    ///< site = 0 (single controller)
  kBram = 5,     ///< site = kernel-instance index
};

class FaultInjector {
public:
  explicit FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] const ResilienceSpec& resilience() const {
    return spec_.resilience;
  }

  [[nodiscard]] FaultStats& stats() { return stats_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  /// The independent RNG stream of one injection site.
  Rng& stream(SiteKind kind, std::uint64_t site);

  /// Bernoulli draw on the site's stream. Zero/negative rates burn no
  /// draws, so sites with an unconfigured fault class stay untouched.
  bool draw(SiteKind kind, std::uint64_t site, double rate) {
    return rate > 0.0 && stream(kind, site).chance(rate);
  }

  /// Record an event for the run trace. Counters (stats()) are maintained
  /// by the callers and always exact; the event log is capped per kind so
  /// high-rate campaigns cannot blow up trace memory.
  void record(FaultKind kind, double at_seconds, std::uint64_t bytes,
              std::string label);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  /// Events not stored because their kind hit the per-kind cap.
  [[nodiscard]] std::uint64_t events_dropped() const {
    return events_dropped_;
  }

private:
  static constexpr std::uint32_t kMaxEventsPerKind = 256;

  FaultSpec spec_;
  FaultStats stats_;
  std::map<std::pair<std::uint8_t, std::uint64_t>, Rng> streams_;
  std::vector<FaultEvent> events_;
  std::uint32_t events_per_kind_[kFaultKindCount] = {};
  std::uint64_t events_dropped_ = 0;
};

}  // namespace hybridic::faults
