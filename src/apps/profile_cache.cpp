#include "apps/profile_cache.hpp"

#include <sstream>

namespace hybridic::apps {

std::shared_ptr<const ProfiledApp> ProfileCache::get(const std::string& key,
                                                     const Factory& make) {
  std::promise<std::shared_ptr<const ProfiledApp>> promise;
  Entry entry;
  {
    std::unique_lock<std::mutex> lock{mutex_};
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      entry = it->second;
      lock.unlock();
      if (entry.wait_for(std::chrono::seconds{0}) !=
          std::future_status::ready) {
        // This hit convoys on an in-flight computation instead of doing
        // useful work — the counter is what cold-batch benches watch.
        convoy_waits_.fetch_add(1, std::memory_order_relaxed);
      }
      return entry.get();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    entry = promise.get_future().share();
    entries_.emplace(key, entry);
  }
  // Compute outside the lock so other keys proceed concurrently.
  try {
    promise.set_value(std::make_shared<const ProfiledApp>(make()));
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
  return entry.get();
}

std::shared_ptr<const ProfiledApp> ProfileCache::paper_app(
    const std::string& name) {
  return get(paper_key(name), [&name] { return run_paper_app(name); });
}

std::shared_ptr<const ProfiledApp> ProfileCache::synthetic_app(
    const SyntheticConfig& config) {
  return get(synthetic_key(config),
             [&config] { return make_synthetic_app(config); });
}

std::string ProfileCache::paper_key(const std::string& name) {
  // Paper apps are only ever profiled at their default workload size; the
  // key still spells that out so future size knobs cannot alias.
  return "paper/" + name + "/default";
}

std::string ProfileCache::synthetic_key(const SyntheticConfig& config) {
  std::ostringstream key;
  key << "synthetic/k=" << config.kernel_count
      << "/h=" << config.host_function_count
      << "/p=" << config.kernel_edge_probability
      << "/bytes=" << config.min_edge_bytes << '-' << config.max_edge_bytes
      << "/work=" << config.min_work_units << '-' << config.max_work_units
      << "/dup=" << config.duplicable_probability
      << "/stream=" << config.streaming_probability
      << "/seed=" << config.seed;
  return key.str();
}

std::size_t ProfileCache::size() const {
  std::unique_lock<std::mutex> lock{mutex_};
  return entries_.size();
}

void ProfileCache::clear() {
  std::unique_lock<std::mutex> lock{mutex_};
  entries_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  convoy_waits_.store(0, std::memory_order_relaxed);
}

}  // namespace hybridic::apps
