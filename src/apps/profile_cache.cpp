#include "apps/profile_cache.hpp"

#include <sstream>

namespace hybridic::apps {

std::shared_ptr<const ProfiledApp> ProfileCache::get(const std::string& key,
                                                     const Factory& make) {
  std::promise<std::shared_ptr<const ProfiledApp>> promise;
  Entry entry;
  std::shared_ptr<ProfileL2> l2;
  {
    std::unique_lock<std::mutex> lock{mutex_};
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      entry = it->second.future;
      lock.unlock();
      if (entry.wait_for(std::chrono::seconds{0}) !=
          std::future_status::ready) {
        // This hit convoys on an in-flight computation instead of doing
        // useful work — the counter is what cold-batch benches watch.
        convoy_waits_.fetch_add(1, std::memory_order_relaxed);
      }
      return entry.get();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    entry = promise.get_future().share();
    lru_.push_front(key);
    entries_.emplace(key, Record{entry, 0, false, lru_.begin()});
    l2 = l2_;
  }
  // Fulfill outside the lock so other keys proceed concurrently. L2 is
  // consulted here — inside the single-flight — so concurrent requesters
  // of one key trigger at most one disk read.
  std::shared_ptr<const ProfiledApp> app;
  if (l2 != nullptr) {
    app = l2->load(key);
    if (app != nullptr) {
      l2_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  try {
    if (app == nullptr) {
      app = std::make_shared<const ProfiledApp>(make());
      if (l2 != nullptr) {
        l2->store(key, *app);
        l2_stores_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    promise.set_value(app);
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
  {
    std::unique_lock<std::mutex> lock{mutex_};
    const std::uint64_t bytes =
        app != nullptr && app->profiler != nullptr
            ? app->profiler->approx_memory_bytes()
            : 0;
    publish_locked(key, bytes);
  }
  return entry.get();
}

void ProfileCache::publish_locked(const std::string& key,
                                  std::uint64_t bytes) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;  // Evicted (or cleared) while computing — nothing to publish.
  }
  it->second.ready = true;
  it->second.bytes = bytes;
  resident_bytes_ += bytes;
  evict_over_caps_locked();
}

void ProfileCache::evict_over_caps_locked() {
  auto over = [this] {
    return (max_entries_ != 0 && entries_.size() > max_entries_) ||
           (max_bytes_ != 0 && resident_bytes_ > max_bytes_);
  };
  // Walk LRU from the cold end; skip in-flight entries (their owner still
  // needs to publish through the map).
  auto pos = lru_.end();
  while (over() && pos != lru_.begin()) {
    --pos;
    const auto it = entries_.find(*pos);
    if (it == entries_.end() || !it->second.ready) {
      continue;
    }
    resident_bytes_ -= it->second.bytes;
    entries_.erase(it);
    pos = lru_.erase(pos);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const ProfiledApp> ProfileCache::paper_app(
    const std::string& name) {
  return get(paper_key(name), [&name] { return run_paper_app(name); });
}

std::shared_ptr<const ProfiledApp> ProfileCache::synthetic_app(
    const SyntheticConfig& config) {
  return get(synthetic_key(config),
             [&config] { return make_synthetic_app(config); });
}

std::string ProfileCache::paper_key(const std::string& name) {
  // Paper apps are only ever profiled at their default workload size; the
  // key still spells that out so future size knobs cannot alias.
  return "paper/" + name + "/default";
}

std::string ProfileCache::synthetic_key(const SyntheticConfig& config) {
  std::ostringstream key;
  key << "synthetic/k=" << config.kernel_count
      << "/h=" << config.host_function_count
      << "/p=" << config.kernel_edge_probability
      << "/bytes=" << config.min_edge_bytes << '-' << config.max_edge_bytes
      << "/work=" << config.min_work_units << '-' << config.max_work_units
      << "/dup=" << config.duplicable_probability
      << "/stream=" << config.streaming_probability
      << "/seed=" << config.seed;
  return key.str();
}

void ProfileCache::set_l2(std::shared_ptr<ProfileL2> l2) {
  std::unique_lock<std::mutex> lock{mutex_};
  l2_ = std::move(l2);
}

void ProfileCache::set_capacity(std::size_t max_entries,
                                std::uint64_t max_bytes) {
  std::unique_lock<std::mutex> lock{mutex_};
  max_entries_ = max_entries;
  max_bytes_ = max_bytes;
  evict_over_caps_locked();
}

std::uint64_t ProfileCache::resident_bytes() const {
  std::unique_lock<std::mutex> lock{mutex_};
  return resident_bytes_;
}

ProfileCacheStats ProfileCache::stats() const {
  ProfileCacheStats s;
  s.hits = hits();
  s.misses = misses();
  s.convoy_waits = convoy_waits();
  s.l2_hits = l2_hits();
  s.l2_stores = l2_stores();
  s.evictions = evictions();
  std::unique_lock<std::mutex> lock{mutex_};
  s.resident_bytes = resident_bytes_;
  s.entries = entries_.size();
  return s;
}

std::size_t ProfileCache::size() const {
  std::unique_lock<std::mutex> lock{mutex_};
  return entries_.size();
}

void ProfileCache::clear() {
  std::unique_lock<std::mutex> lock{mutex_};
  entries_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  convoy_waits_.store(0, std::memory_order_relaxed);
  l2_hits_.store(0, std::memory_order_relaxed);
  l2_stores_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace hybridic::apps
