#include "apps/jpeg_codec.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hybridic::apps::jpegc {

const std::array<std::uint16_t, kBlockSize>& quant_table() {
  static const std::array<std::uint16_t, kBlockSize> kTable = {
      16, 11, 10, 16, 24,  40,  51,  61,   //
      12, 12, 14, 19, 26,  58,  60,  55,   //
      14, 13, 16, 24, 40,  57,  69,  56,   //
      14, 17, 22, 29, 51,  87,  80,  62,   //
      18, 22, 37, 56, 68,  109, 103, 77,   //
      24, 35, 55, 64, 81,  104, 113, 92,   //
      49, 64, 78, 87, 103, 121, 120, 101,  //
      72, 92, 95, 98, 112, 100, 103, 99};
  return kTable;
}

const std::array<std::uint8_t, kBlockSize>& zigzag_order() {
  static const std::array<std::uint8_t, kBlockSize> kOrder = [] {
    std::array<std::uint8_t, kBlockSize> order{};
    std::uint32_t i = 0;
    for (std::uint32_t s = 0; s < 15; ++s) {  // anti-diagonals
      if (s % 2 == 0) {  // up-right
        for (std::int32_t y = static_cast<std::int32_t>(std::min(s, 7U));
             y >= 0 && static_cast<std::int32_t>(s) - y <= 7; --y) {
          const std::int32_t x = static_cast<std::int32_t>(s) - y;
          order[i++] = static_cast<std::uint8_t>(y * 8 + x);
        }
      } else {  // down-left
        for (std::int32_t x = static_cast<std::int32_t>(std::min(s, 7U));
             x >= 0 && static_cast<std::int32_t>(s) - x <= 7; --x) {
          const std::int32_t y = static_cast<std::int32_t>(s) - x;
          order[i++] = static_cast<std::uint8_t>(y * 8 + x);
        }
      }
    }
    return order;
  }();
  return kOrder;
}

namespace {

constexpr double kPi = 3.14159265358979323846;

/// DCT basis, precomputed once.
const std::array<double, kBlockSize>& dct_basis() {
  static const std::array<double, kBlockSize> kBasis = [] {
    std::array<double, kBlockSize> basis{};
    for (std::uint32_t k = 0; k < kBlockDim; ++k) {
      for (std::uint32_t n = 0; n < kBlockDim; ++n) {
        const double ck = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
        basis[k * kBlockDim + n] =
            ck * std::cos((2.0 * n + 1.0) * k * kPi / 16.0);
      }
    }
    return basis;
  }();
  return kBasis;
}

}  // namespace

void fdct8x8(const float* pixels, float* coefficients) {
  const auto& basis = dct_basis();
  double tmp[kBlockSize];
  // Rows.
  for (std::uint32_t y = 0; y < kBlockDim; ++y) {
    for (std::uint32_t k = 0; k < kBlockDim; ++k) {
      double acc = 0.0;
      for (std::uint32_t n = 0; n < kBlockDim; ++n) {
        acc += basis[k * kBlockDim + n] *
               (static_cast<double>(pixels[y * kBlockDim + n]) - 128.0);
      }
      tmp[y * kBlockDim + k] = acc;
    }
  }
  // Columns.
  for (std::uint32_t x = 0; x < kBlockDim; ++x) {
    for (std::uint32_t k = 0; k < kBlockDim; ++k) {
      double acc = 0.0;
      for (std::uint32_t n = 0; n < kBlockDim; ++n) {
        acc += basis[k * kBlockDim + n] * tmp[n * kBlockDim + x];
      }
      coefficients[k * kBlockDim + x] = static_cast<float>(acc);
    }
  }
}

void idct8x8(const float* coefficients, float* pixels) {
  const auto& basis = dct_basis();
  double tmp[kBlockSize];
  // Columns.
  for (std::uint32_t x = 0; x < kBlockDim; ++x) {
    for (std::uint32_t n = 0; n < kBlockDim; ++n) {
      double acc = 0.0;
      for (std::uint32_t k = 0; k < kBlockDim; ++k) {
        acc += basis[k * kBlockDim + n] *
               static_cast<double>(coefficients[k * kBlockDim + x]);
      }
      tmp[n * kBlockDim + x] = acc;
    }
  }
  // Rows, with level un-shift and clamping.
  for (std::uint32_t y = 0; y < kBlockDim; ++y) {
    for (std::uint32_t n = 0; n < kBlockDim; ++n) {
      double acc = 0.0;
      for (std::uint32_t k = 0; k < kBlockDim; ++k) {
        acc += basis[k * kBlockDim + n] * tmp[y * kBlockDim + k];
      }
      acc += 128.0;
      pixels[y * kBlockDim + n] =
          static_cast<float>(acc < 0.0 ? 0.0 : (acc > 255.0 ? 255.0 : acc));
    }
  }
}

std::uint32_t value_category(std::int32_t v) {
  std::uint32_t magnitude = static_cast<std::uint32_t>(v < 0 ? -v : v);
  std::uint32_t category = 0;
  while (magnitude != 0) {
    ++category;
    magnitude >>= 1;
  }
  return category;
}

std::uint32_t value_bits(std::int32_t v, std::uint32_t category) {
  if (category == 0) {
    return 0;
  }
  if (v >= 0) {
    return static_cast<std::uint32_t>(v);
  }
  return static_cast<std::uint32_t>(v + (1 << category) - 1);
}

std::int32_t value_from_bits(std::uint32_t bits, std::uint32_t category) {
  if (category == 0) {
    return 0;
  }
  // If the leading bit is 0, the value is negative (JPEG convention).
  if ((bits >> (category - 1)) == 0) {
    return static_cast<std::int32_t>(bits) - (1 << category) + 1;
  }
  return static_cast<std::int32_t>(bits);
}

namespace {

/// Quantized zigzag coefficients of every block.
std::vector<std::int32_t> quantize_image(
    const std::vector<std::uint8_t>& pixels, std::uint32_t width,
    std::uint32_t height) {
  const std::uint32_t blocks_x = width / kBlockDim;
  const std::uint32_t blocks_y = height / kBlockDim;
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(blocks_x) * blocks_y * kBlockSize);
  const auto& zz = zigzag_order();
  const auto& qt = quant_table();

  float block[kBlockSize];
  float coeffs[kBlockSize];
  for (std::uint32_t by = 0; by < blocks_y; ++by) {
    for (std::uint32_t bx = 0; bx < blocks_x; ++bx) {
      for (std::uint32_t y = 0; y < kBlockDim; ++y) {
        for (std::uint32_t x = 0; x < kBlockDim; ++x) {
          block[y * kBlockDim + x] = static_cast<float>(
              pixels[(by * kBlockDim + y) * width + bx * kBlockDim + x]);
        }
      }
      fdct8x8(block, coeffs);
      const std::size_t base =
          (static_cast<std::size_t>(by) * blocks_x + bx) * kBlockSize;
      for (std::uint32_t i = 0; i < kBlockSize; ++i) {
        const float c = coeffs[zz[i]];
        const float q = static_cast<float>(qt[zz[i]]);
        out[base + i] = static_cast<std::int32_t>(std::lround(c / q));
      }
    }
  }
  return out;
}

/// AC (run,size) symbol sequence of one block (without value bits).
template <typename Emit>
void for_each_ac_symbol(const std::int32_t* zigzag_block, Emit&& emit) {
  std::uint32_t run = 0;
  std::int32_t last_nonzero = 0;
  for (std::int32_t i = 63; i >= 1; --i) {
    if (zigzag_block[i] != 0) {
      last_nonzero = i;
      break;
    }
  }
  for (std::int32_t i = 1; i <= last_nonzero; ++i) {
    const std::int32_t v = zigzag_block[i];
    if (v == 0) {
      if (++run == 16) {
        emit(kZrl, 0);
        run = 0;
      }
      continue;
    }
    const std::uint32_t size = value_category(v);
    emit((run << 4) | size, v);
    run = 0;
  }
  if (last_nonzero != 63) {
    emit(kEob, 0);
  }
}

}  // namespace

EncodedImage encode_test_image(std::uint32_t width, std::uint32_t height,
                               std::uint64_t seed) {
  require(width % kBlockDim == 0 && height % kBlockDim == 0,
          "jpeg image dimensions must be multiples of 8");

  // Synthetic photographic-ish content: low-frequency gradients, texture
  // and a few hard edges.
  std::vector<std::uint8_t> pixels(static_cast<std::size_t>(width) * height);
  Rng rng{seed};
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      double v = 128.0 + 60.0 * std::sin(x * 0.043) * std::cos(y * 0.031) +
                 25.0 * std::sin((x + 2.0 * y) * 0.011);
      if ((x / 16 + y / 16) % 5 == 0) {
        v += 45.0;
      }
      v += rng.uniform() * 8.0 - 4.0;
      pixels[y * width + x] = static_cast<std::uint8_t>(
          v < 0.0 ? 0.0 : (v > 255.0 ? 255.0 : v));
    }
  }

  const std::vector<std::int32_t> zz = quantize_image(pixels, width, height);
  const std::uint32_t blocks =
      (width / kBlockDim) * (height / kBlockDim);

  // Pass 1: symbol frequencies.
  std::vector<std::uint64_t> dc_freq(kDcCategories, 0);
  std::vector<std::uint64_t> ac_freq(kAcSymbols, 0);
  std::int32_t prev_dc = 0;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const std::int32_t* block = &zz[static_cast<std::size_t>(b) * kBlockSize];
    const std::int32_t diff = block[0] - prev_dc;
    prev_dc = block[0];
    ++dc_freq[value_category(diff)];
    for_each_ac_symbol(block, [&ac_freq](std::uint32_t symbol,
                                         std::int32_t /*value*/) {
      ++ac_freq[symbol];
    });
  }

  const HuffmanCode dc_code = build_huffman(dc_freq);
  const HuffmanCode ac_code = build_huffman(ac_freq);

  // Pass 2: emit bitstreams.
  EncodedImage enc;
  enc.width = width;
  enc.height = height;
  enc.blocks = blocks;
  enc.dc_code_lengths = dc_code.lengths;
  enc.ac_code_lengths = ac_code.lengths;
  enc.original = pixels;

  BitWriter dc_writer;
  BitWriter ac_writer;
  prev_dc = 0;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const std::int32_t* block = &zz[static_cast<std::size_t>(b) * kBlockSize];
    const std::int32_t diff = block[0] - prev_dc;
    prev_dc = block[0];
    const std::uint32_t category = value_category(diff);
    dc_writer.put(dc_code.codes[category], dc_code.lengths[category]);
    dc_writer.put(value_bits(diff, category), category);

    enc.ac_block_bit_offset.push_back(
        static_cast<std::uint32_t>(ac_writer.bit_position()));
    for_each_ac_symbol(block, [&ac_writer, &ac_code](std::uint32_t symbol,
                                                     std::int32_t value) {
      ac_writer.put(ac_code.codes[symbol], ac_code.lengths[symbol]);
      const std::uint32_t size = symbol & 0x0F;
      if (size != 0) {
        ac_writer.put(value_bits(value, size), size);
      }
    });
  }
  enc.dc_stream = dc_writer.finish();
  enc.ac_stream = ac_writer.finish();
  return enc;
}

std::vector<std::uint8_t> reference_decode(const EncodedImage& enc) {
  const HuffmanCode dc_code = huffman_from_lengths(enc.dc_code_lengths);
  const HuffmanCode ac_code = huffman_from_lengths(enc.ac_code_lengths);
  const auto& zz = zigzag_order();
  const auto& qt = quant_table();
  const std::uint32_t blocks_x = enc.width / kBlockDim;

  std::vector<std::uint8_t> pixels(
      static_cast<std::size_t>(enc.width) * enc.height);

  BitReader dc_reader{[&enc](std::uint64_t i) { return enc.dc_stream[i]; },
                      enc.dc_stream.size()};
  BitReader ac_reader{[&enc](std::uint64_t i) { return enc.ac_stream[i]; },
                      enc.ac_stream.size()};

  std::int32_t prev_dc = 0;
  float coeffs[kBlockSize];
  float block[kBlockSize];
  for (std::uint32_t b = 0; b < enc.blocks; ++b) {
    std::int32_t zigzag[kBlockSize] = {};
    // DC.
    const std::uint32_t category =
        decode_symbol(dc_code, [&dc_reader] { return dc_reader.bit(); });
    if (category == UINT32_MAX) {
      throw ConfigError{"corrupt JPEG DC stream: no Huffman code matches at "
                        "block " +
                        std::to_string(b) + " of " + std::to_string(enc.blocks) +
                        " (truncated or bit-flipped input?)"};
    }
    const std::int32_t diff =
        value_from_bits(dc_reader.get(category), category);
    prev_dc += diff;
    zigzag[0] = prev_dc;
    // AC.
    ac_reader.seek(enc.ac_block_bit_offset[b]);
    std::uint32_t position = 1;
    while (position < kBlockSize) {
      const std::uint32_t symbol =
          decode_symbol(ac_code, [&ac_reader] { return ac_reader.bit(); });
      if (symbol == UINT32_MAX) {
        throw ConfigError{"corrupt JPEG AC stream: no Huffman code matches at "
                          "block " +
                          std::to_string(b) + ", coefficient " +
                          std::to_string(position) +
                          " (truncated or bit-flipped input?)"};
      }
      if (symbol == kEob) {
        break;
      }
      if (symbol == kZrl) {
        position += 16;
        continue;
      }
      position += symbol >> 4;
      const std::uint32_t size = symbol & 0x0F;
      if (position >= kBlockSize) {
        throw ConfigError{"corrupt JPEG AC stream: run-length at block " +
                          std::to_string(b) + " advances to coefficient " +
                          std::to_string(position) + " past the " +
                          std::to_string(kBlockSize) + "-entry block"};
      }
      zigzag[position] =
          value_from_bits(ac_reader.get(size), size);
      ++position;
    }
    // Dequantize + un-zigzag + IDCT.
    for (std::uint32_t i = 0; i < kBlockSize; ++i) {
      coeffs[zz[i]] = static_cast<float>(zigzag[i]) *
                      static_cast<float>(qt[zz[i]]);
    }
    idct8x8(coeffs, block);
    const std::uint32_t bx = b % blocks_x;
    const std::uint32_t by = b / blocks_x;
    for (std::uint32_t y = 0; y < kBlockDim; ++y) {
      for (std::uint32_t x = 0; x < kBlockDim; ++x) {
        pixels[(by * kBlockDim + y) * enc.width + bx * kBlockDim + x] =
            static_cast<std::uint8_t>(
                std::lround(block[y * kBlockDim + x]));
      }
    }
  }
  return pixels;
}

double psnr(const std::vector<std::uint8_t>& a,
            const std::vector<std::uint8_t>& b) {
  require(a.size() == b.size() && !a.empty(), "psnr needs equal-size images");
  double mse = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.size());
  if (mse <= 0.0) {
    return 99.0;
  }
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace hybridic::apps::jpegc
