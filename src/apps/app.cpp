#include "apps/app.hpp"

#include "apps/canny.hpp"
#include "apps/fluid.hpp"
#include "apps/jpeg.hpp"
#include "apps/klt.hpp"
#include "util/error.hpp"

namespace hybridic::apps {

std::vector<std::string> paper_app_names() {
  return {"canny", "jpeg", "klt", "fluid"};
}

ProfiledApp run_paper_app(const std::string& name) {
  if (name == "canny") {
    return run_canny(CannyConfig{});
  }
  if (name == "jpeg") {
    return run_jpeg(JpegConfig{});
  }
  if (name == "klt") {
    return run_klt(KltConfig{});
  }
  if (name == "fluid") {
    return run_fluid(FluidConfig{});
  }
  throw ConfigError{"unknown paper application: " + name};
}

}  // namespace hybridic::apps
