// Real-time fluid simulation (paper application 4 — Stam, GDC 2003).
//
// Function split (one function per solver stage, iterated over time steps):
//   init_fields (host) — density/velocity sources
//   diffuse (kernel)   — Gauss-Seidel diffusion of density and velocity
//   advect (kernel)    — semi-Lagrangian advection
//   project (kernel)   — pressure projection (divergence-free velocity)
//   read_state (host)  — consume the final fields
//
// The three kernels exchange fields with *each other* across stages
// (diffuse→advect, diffuse→project, advect→project, project→advect,
// advect→diffuse on the next step), so no producer/consumer pair is
// exclusive: the design algorithm cannot apply shared local memories and
// resolves the application with a NoC alone — the paper's "NoC" row.
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace hybridic::apps {

struct FluidConfig {
  std::uint32_t grid = 64;       ///< N x N interior cells.
  std::uint32_t steps = 3;       ///< Time steps.
  std::uint32_t gs_iterations = 4;  ///< Gauss-Seidel sweeps.
  float dt = 0.1F;
  float diffusion = 0.0002F;
  std::uint64_t seed = 23;
};

[[nodiscard]] ProfiledApp run_fluid(const FluidConfig& config);

}  // namespace hybridic::apps
