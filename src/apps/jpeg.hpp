// JPEG decoder (paper application 2 — the detailed case study of §V-B).
//
// Function split mirrors the PowerStone jpeg the paper profiles (Fig. 5):
//   read_bitstream (host) — encode a synthetic frame, expose streams,
//                           Huffman tables, the AC block index and the
//                           output layout table
//   huff_dc_dec (kernel)  — sequential DC-difference entropy decode
//   huff_ac_dec (kernel)  — per-block AC entropy decode (duplicable:
//                           blocks are independent via the offset index)
//   dquantz_lum (kernel)  — dequantization + un-zigzag (quant ROM in-core)
//   j_rev_dct (kernel)    — 8x8 inverse DCT + level shift/clamp
//   write_output (host)   — consume pixels, verify PSNR vs the original
//
// The resulting profile reproduces the paper's communication classes:
// huff_dc {R2,S1}, huff_ac {R3,S1}, dquantz {R1,S1} (paired with j_rev_dct
// through the shared local memory), j_rev_dct residually {R2,S2}.
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace hybridic::apps {

struct JpegConfig {
  std::uint32_t width = 96;   ///< Multiple of 8.
  std::uint32_t height = 96;  ///< Multiple of 8.
  std::uint64_t seed = 7;
  double min_psnr_db = 28.0;  ///< Verification threshold.
};

[[nodiscard]] ProfiledApp run_jpeg(const JpegConfig& config);

}  // namespace hybridic::apps
