// Mini-JPEG codec core: 8x8 DCT, standard luminance quantization, zigzag,
// and the block-parallel encoder that generates the decoder's input
// bitstreams (the workload-generator replacement for the PowerStone jpeg
// input, see DESIGN.md substitution ledger).
//
// Stream layout produced by the encoder:
//  - a DC bitstream: per block, Huffman(category) + category value bits of
//    the DC difference (sequential, blocks depend on the previous DC);
//  - an AC bitstream: per block, JPEG-style (run,size) symbols with EOB and
//    ZRL, independently decodable thanks to a per-block bit-offset index —
//    which is exactly what makes huff_ac_dec duplicable (case 3).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/jpeg_bitstream.hpp"

namespace hybridic::apps::jpegc {

inline constexpr std::uint32_t kBlockDim = 8;
inline constexpr std::uint32_t kBlockSize = 64;
inline constexpr std::uint32_t kAcSymbols = 256;
inline constexpr std::uint32_t kDcCategories = 12;
inline constexpr std::uint32_t kEob = 0x00;
inline constexpr std::uint32_t kZrl = 0xF0;

/// Standard JPEG luminance quantization table (Annex K), row-major.
[[nodiscard]] const std::array<std::uint16_t, kBlockSize>& quant_table();

/// Zigzag scan order: zigzag_order()[i] = row-major index of coefficient i.
[[nodiscard]] const std::array<std::uint8_t, kBlockSize>& zigzag_order();

/// Forward 8x8 DCT-II with level shift (input 0..255, output coefficients).
void fdct8x8(const float* pixels, float* coefficients);

/// Inverse 8x8 DCT with level un-shift (output clamped 0..255).
void idct8x8(const float* coefficients, float* pixels);

/// Bits needed to represent |v| (JPEG "category"/"size"), 0 for v == 0.
[[nodiscard]] std::uint32_t value_category(std::int32_t v);

/// JPEG-style value bits for v in its category.
[[nodiscard]] std::uint32_t value_bits(std::int32_t v, std::uint32_t category);

/// Inverse of value_bits.
[[nodiscard]] std::int32_t value_from_bits(std::uint32_t bits,
                                           std::uint32_t category);

/// The encoder output, i.e. the decoder's complete input.
struct EncodedImage {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::uint32_t blocks = 0;

  std::vector<std::uint8_t> dc_stream;
  std::vector<std::uint8_t> ac_stream;
  std::vector<std::uint32_t> ac_block_bit_offset;  ///< Per-block AC start.

  std::vector<std::uint8_t> dc_code_lengths;  ///< Serialized Huffman table.
  std::vector<std::uint8_t> ac_code_lengths;

  std::vector<std::uint8_t> original;  ///< For PSNR verification only.
};

/// Synthesize a test image and encode it. Width/height must be multiples
/// of 8.
[[nodiscard]] EncodedImage encode_test_image(std::uint32_t width,
                                             std::uint32_t height,
                                             std::uint64_t seed);

/// Reference (untracked) decode used by tests to validate the tracked
/// kernel pipeline produces identical output.
[[nodiscard]] std::vector<std::uint8_t> reference_decode(
    const EncodedImage& enc);

/// Peak signal-to-noise ratio between two equal-size images, in dB.
[[nodiscard]] double psnr(const std::vector<std::uint8_t>& a,
                          const std::vector<std::uint8_t>& b);

}  // namespace hybridic::apps::jpegc
