#include "apps/canny.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include "prof/tracked.hpp"
#include "util/rng.hpp"

namespace hybridic::apps {

namespace {

using prof::QuadProfiler;
using prof::ScopedFunction;
using prof::TrackedBuffer;

constexpr float kPi = 3.14159265358979F;

/// Synthetic test frame: smooth background + high-contrast shapes so the
/// detector has real edges to find.
void load_image(QuadProfiler& q, prof::FunctionId fn,
                TrackedBuffer<float>& image, const CannyConfig& cfg) {
  ScopedFunction scope{q, fn};
  Rng rng{cfg.seed};
  const auto w = cfg.width;
  const auto h = cfg.height;
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      float value = 40.0F + 30.0F * std::sin(static_cast<float>(x) * 0.05F) +
                    20.0F * std::cos(static_cast<float>(y) * 0.07F);
      // A bright rectangle and a disc create strong step edges.
      if (x > w / 4 && x < w / 2 && y > h / 4 && y < h / 2) {
        value = 220.0F;
      }
      const float dx = static_cast<float>(x) - 0.75F * static_cast<float>(w);
      const float dy = static_cast<float>(y) - 0.6F * static_cast<float>(h);
      if (dx * dx + dy * dy < static_cast<float>(h * h) / 16.0F) {
        value = 15.0F;
      }
      value += static_cast<float>(rng.uniform()) * 2.0F;  // sensor noise
      image.set(y * w + x, value);
      q.add_work(2);
    }
  }
}

/// 5x5 Gaussian via two separable 1D passes (σ≈1.4).
void gaussian_blur(QuadProfiler& q, prof::FunctionId fn,
                   const TrackedBuffer<float>& in, TrackedBuffer<float>& tmp,
                   TrackedBuffer<float>& out, std::uint32_t w,
                   std::uint32_t h) {
  ScopedFunction scope{q, fn};
  constexpr float kKernel[5] = {0.0545F, 0.2442F, 0.4026F, 0.2442F, 0.0545F};
  const auto clamp = [](std::int64_t v, std::int64_t lo, std::int64_t hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      float acc = 0.0F;
      for (int k = -2; k <= 2; ++k) {
        const auto xx = static_cast<std::uint32_t>(
            clamp(static_cast<std::int64_t>(x) + k, 0, w - 1));
        acc += kKernel[k + 2] * in.get(y * w + xx);
      }
      tmp.set(y * w + x, acc);
      q.add_work(5);
    }
  }
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      float acc = 0.0F;
      for (int k = -2; k <= 2; ++k) {
        const auto yy = static_cast<std::uint32_t>(
            clamp(static_cast<std::int64_t>(y) + k, 0, h - 1));
        acc += kKernel[k + 2] * tmp.get(yy * w + x);
      }
      out.set(y * w + x, acc);
      q.add_work(5);
    }
  }
}

/// 3x3 Sobel; emits magnitude and quantized direction (0/45/90/135).
void sobel_gradient(QuadProfiler& q, prof::FunctionId fn,
                    const TrackedBuffer<float>& in,
                    TrackedBuffer<float>& magnitude,
                    TrackedBuffer<std::uint8_t>& direction, std::uint32_t w,
                    std::uint32_t h) {
  ScopedFunction scope{q, fn};
  for (std::uint32_t y = 1; y + 1 < h; ++y) {
    for (std::uint32_t x = 1; x + 1 < w; ++x) {
      const float p00 = in.get((y - 1) * w + (x - 1));
      const float p01 = in.get((y - 1) * w + x);
      const float p02 = in.get((y - 1) * w + (x + 1));
      const float p10 = in.get(y * w + (x - 1));
      const float p12 = in.get(y * w + (x + 1));
      const float p20 = in.get((y + 1) * w + (x - 1));
      const float p21 = in.get((y + 1) * w + x);
      const float p22 = in.get((y + 1) * w + (x + 1));
      const float gx = (p02 + 2.0F * p12 + p22) - (p00 + 2.0F * p10 + p20);
      const float gy = (p20 + 2.0F * p21 + p22) - (p00 + 2.0F * p01 + p02);
      magnitude.set(y * w + x, std::sqrt(gx * gx + gy * gy));
      float angle = std::atan2(gy, gx) * 180.0F / kPi;
      if (angle < 0.0F) {
        angle += 180.0F;
      }
      std::uint8_t bucket = 0;
      if (angle >= 22.5F && angle < 67.5F) {
        bucket = 1;
      } else if (angle >= 67.5F && angle < 112.5F) {
        bucket = 2;
      } else if (angle >= 112.5F && angle < 157.5F) {
        bucket = 3;
      }
      direction.set(y * w + x, bucket);
      q.add_work(14);
    }
  }
}

/// Suppress non-maxima along the quantized gradient direction.
void non_max_suppression(QuadProfiler& q, prof::FunctionId fn,
                         const TrackedBuffer<float>& magnitude,
                         const TrackedBuffer<std::uint8_t>& direction,
                         TrackedBuffer<float>& thin, std::uint32_t w,
                         std::uint32_t h) {
  ScopedFunction scope{q, fn};
  for (std::uint32_t y = 1; y + 1 < h; ++y) {
    for (std::uint32_t x = 1; x + 1 < w; ++x) {
      const float m = magnitude.get(y * w + x);
      const std::uint8_t d = direction.get(y * w + x);
      float a = 0.0F;
      float b = 0.0F;
      switch (d) {
        case 0:  // horizontal gradient -> compare left/right
          a = magnitude.get(y * w + (x - 1));
          b = magnitude.get(y * w + (x + 1));
          break;
        case 1:  // 45 degrees
          a = magnitude.get((y - 1) * w + (x + 1));
          b = magnitude.get((y + 1) * w + (x - 1));
          break;
        case 2:  // vertical
          a = magnitude.get((y - 1) * w + x);
          b = magnitude.get((y + 1) * w + x);
          break;
        default:  // 135 degrees
          a = magnitude.get((y - 1) * w + (x - 1));
          b = magnitude.get((y + 1) * w + (x + 1));
          break;
      }
      thin.set(y * w + x, (m >= a && m >= b) ? m : 0.0F);
      q.add_work(6);
    }
  }
}

/// Double threshold + edge tracking by flood fill from strong pixels.
void hysteresis(QuadProfiler& q, prof::FunctionId fn,
                const TrackedBuffer<float>& thin,
                TrackedBuffer<std::uint8_t>& edges, const CannyConfig& cfg) {
  ScopedFunction scope{q, fn};
  const auto w = cfg.width;
  const auto h = cfg.height;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 0; i < w * h; ++i) {
    const float m = thin.get(i);
    std::uint8_t label = 0;
    if (m >= cfg.high_threshold) {
      label = 2;  // strong
      stack.push_back(i);
    } else if (m >= cfg.low_threshold) {
      label = 1;  // weak
    }
    edges.set(i, label);
    q.add_work(3);
  }
  // Promote weak pixels connected to strong ones.
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    const std::uint32_t x = i % w;
    const std::uint32_t y = i / w;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) {
          continue;
        }
        const std::int64_t nx = static_cast<std::int64_t>(x) + dx;
        const std::int64_t ny = static_cast<std::int64_t>(y) + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<std::int64_t>(w) ||
            ny >= static_cast<std::int64_t>(h)) {
          continue;
        }
        const std::uint32_t ni =
            static_cast<std::uint32_t>(ny) * w + static_cast<std::uint32_t>(nx);
        if (edges.get(ni) == 1) {
          edges.set(ni, 2);
          stack.push_back(ni);
        }
        q.add_work(1);
      }
    }
  }
  // Demote unconnected weak pixels.
  for (std::uint32_t i = 0; i < w * h; ++i) {
    if (edges.get(i) == 1) {
      edges.set(i, 0);
    }
    q.add_work(1);
  }
}

/// Host-side consumer: compact the edge map into a run-length summary.
std::uint64_t store_edges(QuadProfiler& q, prof::FunctionId fn,
                          const TrackedBuffer<std::uint8_t>& edges,
                          std::uint32_t count) {
  ScopedFunction scope{q, fn};
  std::uint64_t edge_pixels = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (edges.get(i) == 2) {
      ++edge_pixels;
    }
    q.add_work(1);
  }
  return edge_pixels;
}

}  // namespace

ProfiledApp run_canny(const CannyConfig& cfg) {
  ProfiledApp app;
  app.name = "canny";
  app.profiler = std::make_unique<QuadProfiler>(prof::ProfileMode::kDeferred);
  QuadProfiler& q = *app.profiler;

  // Declaration order == program order (build_schedule relies on it).
  const auto fn_load = q.declare("load_image");
  const auto fn_blur = q.declare("gaussian_blur");
  const auto fn_sobel = q.declare("sobel_gradient");
  const auto fn_nms = q.declare("non_max_suppression");
  const auto fn_hyst = q.declare("hysteresis");
  const auto fn_store = q.declare("store_edges");

  const std::uint32_t w = cfg.width;
  const std::uint32_t h = cfg.height;
  const std::size_t n = static_cast<std::size_t>(w) * h;

  TrackedBuffer<float> image{q, "image", n};
  TrackedBuffer<float> blur_tmp{q, "blur_tmp", n};
  TrackedBuffer<float> blurred{q, "blurred", n};
  TrackedBuffer<float> magnitude{q, "magnitude", n};
  TrackedBuffer<std::uint8_t> direction{q, "direction", n};
  TrackedBuffer<float> thin{q, "thin", n};
  TrackedBuffer<std::uint8_t> edges{q, "edges", n};

  load_image(q, fn_load, image, cfg);
  gaussian_blur(q, fn_blur, image, blur_tmp, blurred, w, h);
  sobel_gradient(q, fn_sobel, blurred, magnitude, direction, w, h);
  non_max_suppression(q, fn_nms, magnitude, direction, thin, w, h);
  hysteresis(q, fn_hyst, thin, edges, cfg);
  const std::uint64_t edge_pixels =
      store_edges(q, fn_store, edges, w * h);

  // Functional self-check: the synthetic shapes must produce a plausible
  // number of edge pixels, and every surviving pixel must be 'strong'.
  bool all_strong = true;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t v = edges.peek(i);
    if (v != 0 && v != 2) {
      all_strong = false;
    }
  }
  const double edge_fraction =
      static_cast<double>(edge_pixels) / static_cast<double>(n);
  app.verified =
      all_strong && edge_fraction > 0.005 && edge_fraction < 0.25;
  app.verification_note =
      "edge pixels: " + std::to_string(edge_pixels) + " (" +
      std::to_string(edge_fraction * 100.0) + "% of frame)";

  // Calibration: cycles-per-work-unit constants (see EXPERIMENTS.md,
  // "Calibration"). Kernel areas approximate DWARV-generated cores on the
  // xc5vfx130t at the paper's scale.
  app.calibration = {
      {"load_image", 6.14, 0.0, 0, 0, false, false, false},
      {"gaussian_blur", 5.66, 0.330, 1900, 2900, true, false, true},
      {"sobel_gradient", 6.47, 0.347, 2100, 3200, true, false, true},
      {"non_max_suppression", 5.26, 0.315, 1300, 1900, true, false, true},
      {"hysteresis", 4.85, 0.363, 1578, 2500, true, false, false},
      {"store_edges", 4.06, 0.0, 0, 0, false, false, false},
  };
  app.environment.base_infrastructure = core::Resources{2000, 2019};
  q.finalize();
  return app;
}

}  // namespace hybridic::apps
