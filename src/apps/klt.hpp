// KLT feature tracker (paper application 3 — "Good Features to Track").
//
// Function split:
//   load_frames (host)       — two synthetic frames, frame2 = shifted frame1
//   compute_gradients (kernel) — Ix/Iy of frame 1
//   corner_response (kernel) — min-eigenvalue response over 3x3 windows
//   select_features (host)   — greedy top-N with minimum separation
//   track_features (kernel)  — iterative Lucas-Kanade per feature
//   report_tracks (host)     — consume tracked positions
//
// compute_gradients communicates exclusively with corner_response, so the
// design algorithm resolves this application with a single shared-local-
// memory pairing and no NoC — the paper's "SM" row in Table IV.
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace hybridic::apps {

struct KltConfig {
  std::uint32_t width = 128;
  std::uint32_t height = 96;
  std::uint32_t feature_count = 48;
  std::uint32_t window_radius = 4;
  std::uint32_t iterations = 10;
  float shift_x = 2.0F;  ///< Ground-truth translation of frame 2.
  float shift_y = 1.5F;
  std::uint64_t seed = 11;
};

[[nodiscard]] ProfiledApp run_klt(const KltConfig& config);

}  // namespace hybridic::apps
