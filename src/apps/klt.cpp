#include "apps/klt.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "prof/tracked.hpp"
#include "util/rng.hpp"

namespace hybridic::apps {

namespace {

using prof::QuadProfiler;
using prof::ScopedFunction;
using prof::TrackedBuffer;

/// Smooth random texture with enough corners to track, sampled at
/// arbitrary (sub-pixel) positions so frame 2 can be an exact shift.
class Texture {
public:
  explicit Texture(std::uint64_t seed) : rng_(seed) {
    for (auto& k : waves_) {
      k = {rng_.uniform() * 0.35 + 0.02, rng_.uniform() * 0.35 + 0.02,
           rng_.uniform() * 6.28, rng_.uniform() * 70.0 + 10.0};
    }
  }

  [[nodiscard]] float sample(float x, float y) const {
    double v = 120.0;
    for (const auto& k : waves_) {
      v += k.amplitude * std::sin(k.fx * x + k.fy * y + k.phase);
    }
    return static_cast<float>(v < 0.0 ? 0.0 : (v > 255.0 ? 255.0 : v));
  }

private:
  struct Wave {
    double fx, fy, phase, amplitude;
  };
  Rng rng_;
  Wave waves_[9] = {};
};

void load_frames(QuadProfiler& q, prof::FunctionId fn,
                 TrackedBuffer<float>& frame1, TrackedBuffer<float>& frame2,
                 const KltConfig& cfg) {
  ScopedFunction scope{q, fn};
  Texture texture{cfg.seed};
  for (std::uint32_t y = 0; y < cfg.height; ++y) {
    for (std::uint32_t x = 0; x < cfg.width; ++x) {
      frame1.set(y * cfg.width + x,
                 texture.sample(static_cast<float>(x),
                                static_cast<float>(y)));
      frame2.set(y * cfg.width + x,
                 texture.sample(static_cast<float>(x) + cfg.shift_x,
                                static_cast<float>(y) + cfg.shift_y));
      q.add_work(6);
    }
  }
}

void compute_gradients(QuadProfiler& q, prof::FunctionId fn,
                       const TrackedBuffer<float>& frame,
                       TrackedBuffer<float>& ix, TrackedBuffer<float>& iy,
                       std::uint32_t w, std::uint32_t h) {
  ScopedFunction scope{q, fn};
  for (std::uint32_t y = 1; y + 1 < h; ++y) {
    for (std::uint32_t x = 1; x + 1 < w; ++x) {
      ix.set(y * w + x,
             0.5F * (frame.get(y * w + x + 1) - frame.get(y * w + x - 1)));
      iy.set(y * w + x,
             0.5F * (frame.get((y + 1) * w + x) - frame.get((y - 1) * w + x)));
      q.add_work(4);
    }
  }
}

/// Shi-Tomasi min-eigenvalue response over 3x3 windows.
void corner_response(QuadProfiler& q, prof::FunctionId fn,
                     const TrackedBuffer<float>& ix,
                     const TrackedBuffer<float>& iy,
                     TrackedBuffer<float>& response, std::uint32_t w,
                     std::uint32_t h) {
  ScopedFunction scope{q, fn};
  for (std::uint32_t y = 2; y + 2 < h; ++y) {
    for (std::uint32_t x = 2; x + 2 < w; ++x) {
      float sxx = 0.0F;
      float syy = 0.0F;
      float sxy = 0.0F;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const std::uint32_t i =
              (y + static_cast<std::uint32_t>(dy)) * w +
              (x + static_cast<std::uint32_t>(dx));
          const float gx = ix.get(i);
          const float gy = iy.get(i);
          sxx += gx * gx;
          syy += gy * gy;
          sxy += gx * gy;
        }
      }
      const float trace = sxx + syy;
      const float det = sxx * syy - sxy * sxy;
      const float disc =
          std::sqrt(std::max(0.0F, trace * trace / 4.0F - det));
      response.set(y * w + x, trace / 2.0F - disc);  // min eigenvalue
      q.add_work(18);
    }
  }
}

void select_features(QuadProfiler& q, prof::FunctionId fn,
                     const TrackedBuffer<float>& response,
                     TrackedBuffer<float>& features, const KltConfig& cfg) {
  ScopedFunction scope{q, fn};
  const std::uint32_t w = cfg.width;
  const std::uint32_t h = cfg.height;
  struct Candidate {
    float score;
    std::uint32_t x, y;
  };
  std::vector<Candidate> candidates;
  const std::uint32_t margin = cfg.window_radius + 4;
  for (std::uint32_t y = margin; y + margin < h; ++y) {
    for (std::uint32_t x = margin; x + margin < w; ++x) {
      candidates.push_back(Candidate{response.get(y * w + x), x, y});
      q.add_work(1);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });
  std::uint32_t selected = 0;
  std::vector<Candidate> chosen;
  for (const Candidate& c : candidates) {
    if (selected == cfg.feature_count) {
      break;
    }
    bool too_close = false;
    for (const Candidate& other : chosen) {
      const float dx = static_cast<float>(c.x) - static_cast<float>(other.x);
      const float dy = static_cast<float>(c.y) - static_cast<float>(other.y);
      if (dx * dx + dy * dy < 64.0F) {
        too_close = true;
        break;
      }
    }
    q.add_work(2);
    if (too_close) {
      continue;
    }
    features.set(2 * selected, static_cast<float>(c.x));
    features.set(2 * selected + 1, static_cast<float>(c.y));
    chosen.push_back(c);
    ++selected;
  }
  // Pad with repeats of the best corner if the frame is corner-poor.
  for (; selected < cfg.feature_count; ++selected) {
    features.set(2 * selected, static_cast<float>(chosen.front().x));
    features.set(2 * selected + 1, static_cast<float>(chosen.front().y));
  }
}

/// Iterative Lucas-Kanade with bilinear sampling and in-window gradients.
void track_features(QuadProfiler& q, prof::FunctionId fn,
                    const TrackedBuffer<float>& frame1,
                    const TrackedBuffer<float>& frame2,
                    const TrackedBuffer<float>& features,
                    TrackedBuffer<float>& tracked, const KltConfig& cfg) {
  ScopedFunction scope{q, fn};
  const std::uint32_t w = cfg.width;
  const std::uint32_t h = cfg.height;
  const int r = static_cast<int>(cfg.window_radius);

  const auto bilinear = [&](const TrackedBuffer<float>& img, float x,
                            float y) {
    const int x0 = static_cast<int>(std::floor(x));
    const int y0 = static_cast<int>(std::floor(y));
    const float ax = x - static_cast<float>(x0);
    const float ay = y - static_cast<float>(y0);
    const auto clampi = [&](int v, int hi) {
      return v < 0 ? 0 : (v >= hi ? hi - 1 : v);
    };
    const auto at = [&](int xx, int yy) {
      return img.get(static_cast<std::uint32_t>(clampi(yy, static_cast<int>(h))) * w +
                     static_cast<std::uint32_t>(clampi(xx, static_cast<int>(w))));
    };
    return (1 - ax) * (1 - ay) * at(x0, y0) + ax * (1 - ay) * at(x0 + 1, y0) +
           (1 - ax) * ay * at(x0, y0 + 1) + ax * ay * at(x0 + 1, y0 + 1);
  };

  for (std::uint32_t f = 0; f < cfg.feature_count; ++f) {
    const float px = features.get(2 * f);
    const float py = features.get(2 * f + 1);
    float dx = 0.0F;
    float dy = 0.0F;
    for (std::uint32_t iter = 0; iter < cfg.iterations; ++iter) {
      float sxx = 0.0F;
      float syy = 0.0F;
      float sxy = 0.0F;
      float bx = 0.0F;
      float by = 0.0F;
      for (int wy = -r; wy <= r; ++wy) {
        for (int wx = -r; wx <= r; ++wx) {
          const float x1 = px + static_cast<float>(wx);
          const float y1 = py + static_cast<float>(wy);
          const float gx =
              0.5F * (bilinear(frame1, x1 + 1, y1) -
                      bilinear(frame1, x1 - 1, y1));
          const float gy =
              0.5F * (bilinear(frame1, x1, y1 + 1) -
                      bilinear(frame1, x1, y1 - 1));
          const float dt = bilinear(frame2, x1 + dx, y1 + dy) -
                           bilinear(frame1, x1, y1);
          sxx += gx * gx;
          syy += gy * gy;
          sxy += gx * gy;
          bx -= gx * dt;
          by -= gy * dt;
          q.add_work(22);
        }
      }
      const float det = sxx * syy - sxy * sxy;
      if (std::fabs(det) < 1e-6F) {
        break;
      }
      dx += (syy * bx - sxy * by) / det;
      dy += (sxx * by - sxy * bx) / det;
    }
    tracked.set(2 * f, px + dx);
    tracked.set(2 * f + 1, py + dy);
  }
}

}  // namespace

ProfiledApp run_klt(const KltConfig& cfg) {
  ProfiledApp app;
  app.name = "klt";
  app.profiler = std::make_unique<QuadProfiler>(prof::ProfileMode::kDeferred);
  QuadProfiler& q = *app.profiler;

  const auto fn_load = q.declare("load_frames");
  const auto fn_grad = q.declare("compute_gradients");
  const auto fn_corner = q.declare("corner_response");
  const auto fn_select = q.declare("select_features");
  const auto fn_track = q.declare("track_features");
  const auto fn_report = q.declare("report_tracks");

  const std::uint32_t w = cfg.width;
  const std::uint32_t h = cfg.height;
  const std::size_t n = static_cast<std::size_t>(w) * h;

  TrackedBuffer<float> frame1{q, "frame1", n};
  TrackedBuffer<float> frame2{q, "frame2", n};
  TrackedBuffer<float> ix{q, "ix", n};
  TrackedBuffer<float> iy{q, "iy", n};
  TrackedBuffer<float> response{q, "response", n};
  TrackedBuffer<float> features{q, "features", 2 * cfg.feature_count};
  TrackedBuffer<float> tracked{q, "tracked", 2 * cfg.feature_count};

  load_frames(q, fn_load, frame1, frame2, cfg);
  compute_gradients(q, fn_grad, frame1, ix, iy, w, h);
  corner_response(q, fn_corner, ix, iy, response, w, h);
  select_features(q, fn_select, response, features, cfg);
  track_features(q, fn_track, frame1, frame2, features, tracked, cfg);

  // report_tracks (host): consume results and measure the recovered shift.
  double median_dx = 0.0;
  double median_dy = 0.0;
  {
    ScopedFunction scope{q, fn_report};
    std::vector<double> dxs;
    std::vector<double> dys;
    for (std::uint32_t f = 0; f < cfg.feature_count; ++f) {
      dxs.push_back(tracked.get(2 * f) - features.peek(2 * f));
      dys.push_back(tracked.get(2 * f + 1) - features.peek(2 * f + 1));
      q.add_work(2);
    }
    const auto mid = static_cast<std::ptrdiff_t>(dxs.size() / 2);
    std::nth_element(dxs.begin(), dxs.begin() + mid, dxs.end());
    std::nth_element(dys.begin(), dys.begin() + mid, dys.end());
    median_dx = dxs[dxs.size() / 2];
    median_dy = dys[dys.size() / 2];
  }

  // The ground-truth displacement is frame2(x) = texture(x + shift), i.e.
  // features move by -shift in image coordinates... actually the feature
  // content at (x, y) in frame1 appears at (x - shift) in frame2.
  const double err_x = std::fabs(median_dx + cfg.shift_x);
  const double err_y = std::fabs(median_dy + cfg.shift_y);
  app.verified = err_x < 0.5 && err_y < 0.5;
  app.verification_note = "median track (" + std::to_string(median_dx) +
                          ", " + std::to_string(median_dy) +
                          "), expected (-" + std::to_string(cfg.shift_x) +
                          ", -" + std::to_string(cfg.shift_y) + ")";

  app.calibration = {
      {"load_frames", 8.8, 0.0, 0, 0, false, false, false},
      {"compute_gradients", 3.08, 0.080, 880, 1020, true, false, false},
      {"corner_response", 3.85, 0.090, 1450, 1700, true, false, false},
      {"select_features", 10.5, 0.0, 0, 0, false, false, false},
      {"track_features", 4.62, 0.120, 1120, 1290, true, false, false},
      {"report_tracks", 7.0, 0.0, 0, 0, false, false, false},
  };
  app.environment.base_infrastructure = core::Resources{223, 1232};
  q.finalize();
  return app;
}

}  // namespace hybridic::apps
