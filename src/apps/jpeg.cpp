#include "apps/jpeg.hpp"

#include <cmath>
#include <vector>

#include "apps/jpeg_codec.hpp"
#include "prof/tracked.hpp"

namespace hybridic::apps {

namespace {

using jpegc::kBlockDim;
using jpegc::kBlockSize;
using prof::QuadProfiler;
using prof::ScopedFunction;
using prof::TrackedBuffer;

/// Memoizing byte source: a bit reader touches the same stream byte up to
/// eight times, but the hardware fetches it once into a shift register —
/// caching the last byte keeps the profiled volume physical.
template <typename T>
class CachedByteAt {
public:
  explicit CachedByteAt(const TrackedBuffer<T>& buffer) : buffer_(&buffer) {}
  std::uint8_t operator()(std::uint64_t index) {
    if (index != last_index_) {
      last_index_ = index;
      last_value_ = static_cast<std::uint8_t>(buffer_->get(index));
    }
    return last_value_;
  }

private:
  const TrackedBuffer<T>* buffer_;
  std::uint64_t last_index_ = UINT64_MAX;
  std::uint8_t last_value_ = 0;
};

/// Rebuild a Huffman code from a tracked lengths buffer.
jpegc::HuffmanCode read_code(const TrackedBuffer<std::uint8_t>& lengths) {
  std::vector<std::uint8_t> raw(lengths.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = lengths.get(i);
  }
  return jpegc::huffman_from_lengths(raw);
}

}  // namespace

ProfiledApp run_jpeg(const JpegConfig& cfg) {
  ProfiledApp app;
  app.name = "jpeg";
  app.profiler = std::make_unique<QuadProfiler>(prof::ProfileMode::kDeferred);
  QuadProfiler& q = *app.profiler;

  const auto fn_read = q.declare("read_bitstream");
  const auto fn_dc = q.declare("huff_dc_dec");
  const auto fn_ac = q.declare("huff_ac_dec");
  const auto fn_dq = q.declare("dquantz_lum");
  const auto fn_idct = q.declare("j_rev_dct");
  const auto fn_out = q.declare("write_output");

  // Encode outside any tracked function: the compressed input "arrives"
  // from storage; the host then publishes it through tracked writes.
  const jpegc::EncodedImage enc =
      jpegc::encode_test_image(cfg.width, cfg.height, cfg.seed);
  const std::uint32_t blocks = enc.blocks;
  const std::uint32_t blocks_x = enc.width / kBlockDim;

  TrackedBuffer<std::uint8_t> dc_stream{q, "dc_stream", enc.dc_stream.size()};
  TrackedBuffer<std::uint8_t> ac_stream{q, "ac_stream", enc.ac_stream.size()};
  TrackedBuffer<std::uint32_t> ac_index{q, "ac_index", blocks};
  TrackedBuffer<std::uint8_t> dc_lengths{q, "dc_lengths",
                                         enc.dc_code_lengths.size()};
  TrackedBuffer<std::uint8_t> ac_lengths{q, "ac_lengths",
                                         enc.ac_code_lengths.size()};
  TrackedBuffer<std::uint32_t> layout{q, "layout", blocks};
  TrackedBuffer<std::int32_t> dc_values{q, "dc_values", blocks};
  TrackedBuffer<std::int32_t> coeff{q, "coeff",
                                    static_cast<std::size_t>(blocks) *
                                        kBlockSize};
  TrackedBuffer<float> dequant{q, "dequant",
                               static_cast<std::size_t>(blocks) * kBlockSize};
  TrackedBuffer<std::uint8_t> pixels{
      q, "pixels", static_cast<std::size_t>(enc.width) * enc.height};

  // ---- read_bitstream (host). ----
  {
    ScopedFunction scope{q, fn_read};
    for (std::size_t i = 0; i < enc.dc_stream.size(); ++i) {
      dc_stream.set(i, enc.dc_stream[i]);
    }
    for (std::size_t i = 0; i < enc.ac_stream.size(); ++i) {
      ac_stream.set(i, enc.ac_stream[i]);
    }
    for (std::uint32_t b = 0; b < blocks; ++b) {
      ac_index.set(b, enc.ac_block_bit_offset[b]);
      // Output layout: pixel base offset of block b.
      const std::uint32_t bx = b % blocks_x;
      const std::uint32_t by = b / blocks_x;
      layout.set(b, by * kBlockDim * enc.width + bx * kBlockDim);
    }
    for (std::size_t i = 0; i < enc.dc_code_lengths.size(); ++i) {
      dc_lengths.set(i, enc.dc_code_lengths[i]);
    }
    for (std::size_t i = 0; i < enc.ac_code_lengths.size(); ++i) {
      ac_lengths.set(i, enc.ac_code_lengths[i]);
    }
    q.add_work(enc.dc_stream.size() + enc.ac_stream.size() + 4 * blocks);
  }

  // ---- huff_dc_dec (kernel): sequential DC entropy decode. ----
  {
    ScopedFunction scope{q, fn_dc};
    const jpegc::HuffmanCode code = read_code(dc_lengths);
    CachedByteAt byte_at{dc_stream};
    jpegc::BitReader reader{byte_at, dc_stream.size()};
    std::int32_t prev = 0;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::uint32_t category =
          jpegc::decode_symbol(code, [&reader] { return reader.bit(); });
      if (category == UINT32_MAX) {
        throw ConfigError{"corrupt JPEG DC stream: no Huffman code matches "
                          "at block " +
                          std::to_string(b) + " of " + std::to_string(blocks) +
                          " (truncated or bit-flipped input?)"};
      }
      const std::int32_t diff =
          jpegc::value_from_bits(reader.get(category), category);
      prev += diff;
      dc_values.set(b, prev);
      q.add_work(6 + category);
    }
  }

  // ---- huff_ac_dec (kernel): per-block AC decode via the offset index,
  // merging the DC values into zigzag position 0. ----
  {
    ScopedFunction scope{q, fn_ac};
    const jpegc::HuffmanCode code = read_code(ac_lengths);
    CachedByteAt byte_at{ac_stream};
    jpegc::BitReader reader{byte_at, ac_stream.size()};
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::size_t base = static_cast<std::size_t>(b) * kBlockSize;
      coeff.set(base, dc_values.get(b));
      for (std::uint32_t i = 1; i < kBlockSize; ++i) {
        coeff.set(base + i, 0);
      }
      reader.seek(ac_index.get(b));
      std::uint32_t position = 1;
      while (position < kBlockSize) {
        const std::uint32_t symbol =
            jpegc::decode_symbol(code, [&reader] { return reader.bit(); });
        if (symbol == UINT32_MAX) {
          throw ConfigError{"corrupt JPEG AC stream: no Huffman code matches "
                            "at block " +
                            std::to_string(b) + ", coefficient " +
                            std::to_string(position) +
                            " (truncated or bit-flipped input?)"};
        }
        q.add_work(8);
        if (symbol == jpegc::kEob) {
          break;
        }
        if (symbol == jpegc::kZrl) {
          position += 16;
          continue;
        }
        position += symbol >> 4;
        const std::uint32_t size = symbol & 0x0F;
        if (position >= kBlockSize) {
          throw ConfigError{"corrupt JPEG AC stream: run-length at block " +
                            std::to_string(b) + " advances to coefficient " +
                            std::to_string(position) + " past the " +
                            std::to_string(kBlockSize) + "-entry block"};
        }
        coeff.set(base + position,
                  jpegc::value_from_bits(reader.get(size), size));
        ++position;
      }
    }
  }

  // ---- dquantz_lum (kernel): dequantize + un-zigzag. The quantization
  // table is core-resident ROM (untracked), so the profile shows R1. ----
  {
    ScopedFunction scope{q, fn_dq};
    const auto& zz = jpegc::zigzag_order();
    const auto& qt = jpegc::quant_table();
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::size_t base = static_cast<std::size_t>(b) * kBlockSize;
      for (std::uint32_t i = 0; i < kBlockSize; ++i) {
        const std::int32_t v = coeff.get(base + i);
        dequant.set(base + zz[i],
                    static_cast<float>(v) * static_cast<float>(qt[zz[i]]));
        q.add_work(2);
      }
    }
  }

  // ---- j_rev_dct (kernel): inverse DCT per block, placed via the
  // host-provided layout table. ----
  {
    ScopedFunction scope{q, fn_idct};
    float coeffs[kBlockSize];
    float block[kBlockSize];
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::size_t base = static_cast<std::size_t>(b) * kBlockSize;
      for (std::uint32_t i = 0; i < kBlockSize; ++i) {
        coeffs[i] = dequant.get(base + i);
      }
      jpegc::idct8x8(coeffs, block);
      const std::uint32_t pixel_base = layout.get(b);
      for (std::uint32_t y = 0; y < kBlockDim; ++y) {
        for (std::uint32_t x = 0; x < kBlockDim; ++x) {
          pixels.set(pixel_base + y * enc.width + x,
                     static_cast<std::uint8_t>(
                         std::lround(block[y * kBlockDim + x])));
        }
      }
      q.add_work(kBlockSize * 18);  // two 8-point transforms per row/col
    }
  }

  // ---- write_output (host): consume and verify. ----
  std::vector<std::uint8_t> decoded(pixels.size());
  {
    ScopedFunction scope{q, fn_out};
    for (std::size_t i = 0; i < pixels.size(); ++i) {
      decoded[i] = pixels.get(i);
    }
    q.add_work(pixels.size());
  }

  // Verification: tracked pipeline must match the untracked reference
  // decoder bit-exactly, and reconstruction must be close to the original.
  const std::vector<std::uint8_t> reference = jpegc::reference_decode(enc);
  const bool matches_reference = decoded == reference;
  const double quality = jpegc::psnr(decoded, enc.original);
  app.verified = matches_reference && quality >= cfg.min_psnr_db;
  app.verification_note =
      std::string("matches reference decoder: ") +
      (matches_reference ? "yes" : "NO") +
      ", PSNR vs original: " + std::to_string(quality) + " dB";

  app.calibration = {
      {"read_bitstream", 2.5, 0.0, 0, 0, false, false, false},
      {"huff_dc_dec", 1.91, 1.25, 980, 1020, true, false, true},
      {"huff_ac_dec", 40.0, 4.17, 5560, 5590, true, true, true},
      {"dquantz_lum", 1.50, 0.136, 760, 780, true, false, true},
      {"j_rev_dct", 1.064, 0.0301, 1400, 1450, true, false, true},
      {"write_output", 2.0, 0.0, 0, 0, false, false, false},
  };
  app.environment.base_infrastructure = core::Resources{2007, 2882};
  q.finalize();
  return app;
}

}  // namespace hybridic::apps
