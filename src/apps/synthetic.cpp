#include "apps/synthetic.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "prof/tracked.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hybridic::apps {

void validate_synthetic_config(const SyntheticConfig& cfg) {
  const auto probability = [](double p, const char* field) {
    require(p >= 0.0 && p <= 1.0,
            std::string{"SyntheticConfig."} + field +
                " must be in [0, 1], got " + std::to_string(p));
  };
  require(cfg.kernel_count >= 1,
          "SyntheticConfig.kernel_count must be >= 1, got 0");
  require(cfg.min_edge_bytes >= 1,
          "SyntheticConfig.min_edge_bytes must be >= 1, got 0");
  require(cfg.min_edge_bytes <= cfg.max_edge_bytes,
          "SyntheticConfig.min_edge_bytes (" +
              std::to_string(cfg.min_edge_bytes) +
              ") must not exceed max_edge_bytes (" +
              std::to_string(cfg.max_edge_bytes) + ")");
  require(cfg.min_work_units <= cfg.max_work_units,
          "SyntheticConfig.min_work_units (" +
              std::to_string(cfg.min_work_units) +
              ") must not exceed max_work_units (" +
              std::to_string(cfg.max_work_units) + ")");
  probability(cfg.kernel_edge_probability, "kernel_edge_probability");
  probability(cfg.duplicable_probability, "duplicable_probability");
  probability(cfg.streaming_probability, "streaming_probability");
  require(cfg.board_count >= 1,
          "SyntheticConfig.board_count must be >= 1, got 0");
  require(cfg.board_topology == "chain" || cfg.board_topology == "ring" ||
              cfg.board_topology == "mesh",
          "SyntheticConfig.board_topology must be chain, ring or mesh, "
          "got '" +
              cfg.board_topology + "'");
}

ProfiledApp make_synthetic_app(const SyntheticConfig& cfg) {
  validate_synthetic_config(cfg);
  ProfiledApp app;
  app.name = "synthetic-" + std::to_string(cfg.seed);
  app.profiler =
      std::make_unique<prof::QuadProfiler>(prof::ProfileMode::kDeferred);
  prof::QuadProfiler& q = *app.profiler;
  Rng rng{cfg.seed};

  const std::uint32_t k = cfg.kernel_count;

  // Function ids in program order: source, kernels, sink.
  const auto fn_source = q.declare("source");
  std::vector<prof::FunctionId> kernel_fn(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    kernel_fn[i] = q.declare("kernel" + std::to_string(i));
  }
  const auto fn_sink = q.declare("sink");

  // Random DAG over kernels: edge i -> j for i < j.
  std::vector<std::vector<std::uint64_t>> edge_bytes(
      k, std::vector<std::uint64_t>(k, 0));
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = i + 1; j < k; ++j) {
      if (rng.chance(cfg.kernel_edge_probability)) {
        edge_bytes[i][j] =
            rng.between(cfg.min_edge_bytes, cfg.max_edge_bytes);
      }
    }
  }

  // Host input bytes: kernels without kernel predecessors always get host
  // input; others get some with probability 1/2.
  std::vector<std::uint64_t> host_in(k, 0);
  for (std::uint32_t j = 0; j < k; ++j) {
    bool has_kernel_input = false;
    for (std::uint32_t i = 0; i < j; ++i) {
      has_kernel_input |= edge_bytes[i][j] != 0;
    }
    if (!has_kernel_input || rng.chance(0.5)) {
      host_in[j] = rng.between(cfg.min_edge_bytes, cfg.max_edge_bytes);
    }
  }

  // Output buffer of each kernel must cover its largest outgoing edge plus
  // the sink read for terminal kernels.
  std::vector<std::uint64_t> out_size(k, 0);
  std::vector<bool> terminal(k, true);
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = i + 1; j < k; ++j) {
      out_size[i] = std::max(out_size[i], edge_bytes[i][j]);
      if (edge_bytes[i][j] != 0) {
        terminal[i] = false;
      }
    }
    if (terminal[i] || rng.chance(0.3)) {
      out_size[i] = std::max(
          out_size[i], rng.between(cfg.min_edge_bytes, cfg.max_edge_bytes));
      terminal[i] = true;  // Sink will read this kernel's output.
    }
    out_size[i] = std::max<std::uint64_t>(out_size[i], 64);
  }

  const std::uint64_t source_size =
      *std::max_element(host_in.begin(), host_in.end()) + 64;

  prof::TrackedBuffer<std::uint8_t> source_buf{q, "source_buf", source_size};
  std::vector<std::unique_ptr<prof::TrackedBuffer<std::uint8_t>>> out_bufs;
  for (std::uint32_t i = 0; i < k; ++i) {
    out_bufs.push_back(std::make_unique<prof::TrackedBuffer<std::uint8_t>>(
        q, "out" + std::to_string(i), out_size[i]));
  }

  std::vector<std::uint8_t> scratch(
      std::max(source_size, *std::max_element(out_size.begin(),
                                              out_size.end())));

  // ---- source (host): publish input data. ----
  {
    prof::ScopedFunction scope{q, fn_source};
    for (std::size_t i = 0; i < scratch.size() && i < source_size; ++i) {
      scratch[i] = static_cast<std::uint8_t>(rng.next());
    }
    source_buf.write_range(0, source_size, scratch.data());
    q.add_work(source_size / 8);
  }

  // ---- kernels in topological (index) order. ----
  std::vector<std::uint64_t> work(k);
  for (std::uint32_t j = 0; j < k; ++j) {
    prof::ScopedFunction scope{q, kernel_fn[j]};
    if (host_in[j] != 0) {
      source_buf.read_range(0, host_in[j], scratch.data());
    }
    for (std::uint32_t i = 0; i < j; ++i) {
      if (edge_bytes[i][j] != 0) {
        out_bufs[i]->read_range(0, edge_bytes[i][j], scratch.data());
      }
    }
    for (std::size_t b = 0; b < out_size[j]; ++b) {
      scratch[b] = static_cast<std::uint8_t>(rng.next());
    }
    out_bufs[j]->write_range(0, out_size[j], scratch.data());
    work[j] = rng.between(cfg.min_work_units, cfg.max_work_units);
    q.add_work(work[j]);
  }

  // ---- sink (host): consume terminal outputs. ----
  {
    prof::ScopedFunction scope{q, fn_sink};
    for (std::uint32_t i = 0; i < k; ++i) {
      if (terminal[i]) {
        out_bufs[i]->read_range(0, out_size[i], scratch.data());
      }
    }
    q.add_work(256);
  }

  // Calibration.
  app.calibration.push_back(
      sys::CalibrationEntry{"source", 4.0, 0.0, 0, 0, false, false, false});
  for (std::uint32_t i = 0; i < k; ++i) {
    sys::CalibrationEntry entry;
    entry.function = "kernel" + std::to_string(i);
    entry.host_cycles_per_work_unit = 8.0 + rng.uniform() * 10.0;
    entry.kernel_cycles_per_work_unit = 0.5 + rng.uniform() * 2.0;
    entry.area_luts = static_cast<std::uint32_t>(rng.between(800, 6000));
    entry.area_regs = static_cast<std::uint32_t>(rng.between(800, 8000));
    entry.is_kernel = true;
    entry.duplicable = rng.chance(cfg.duplicable_probability);
    entry.streaming = rng.chance(cfg.streaming_probability);
    app.calibration.push_back(entry);
  }
  app.calibration.push_back(
      sys::CalibrationEntry{"sink", 4.0, 0.0, 0, 0, false, false, false});

  app.verified = true;
  app.verification_note = "synthetic dataflow (no functional semantics)";
  q.finalize();
  return app;
}

}  // namespace hybridic::apps
