// Synthetic application generator: random communication graphs + kernel
// specs for property tests and ablation sweeps that need many application
// shapes beyond the paper's four.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "apps/app.hpp"

namespace hybridic::apps {

struct SyntheticConfig {
  std::uint32_t kernel_count = 6;
  std::uint32_t host_function_count = 2;
  double kernel_edge_probability = 0.35;  ///< Kernel->kernel edges.
  std::uint64_t min_edge_bytes = 1024;
  std::uint64_t max_edge_bytes = 64 * 1024;
  std::uint64_t min_work_units = 5'000;
  std::uint64_t max_work_units = 200'000;
  double duplicable_probability = 0.25;
  double streaming_probability = 0.5;
  std::uint64_t seed = 1;

  // ---- Evaluation platform, not profile identity. Profiling is
  // platform-independent, so these never enter ProfileCache::synthetic_key:
  // designs over 1 or 4 boards share one profiled app.
  std::uint32_t board_count = 1;
  std::string board_topology = "chain";  ///< chain | ring | mesh.
};

/// Validate `config` bounds: kernel_count >= 1, min <= max for edge bytes
/// and work units, all probabilities in [0, 1], and non-zero edge bytes
/// (kernels must be able to communicate). Throws ConfigError naming the
/// offending field.
void validate_synthetic_config(const SyntheticConfig& config);

/// Generate a synthetic profiled application. The profile is produced by
/// an actual tracked run of a generated dataflow (so every invariant the
/// real profiler guarantees also holds here). Acyclic by construction:
/// function i only feeds functions j > i. Throws ConfigError (via
/// validate_synthetic_config) on out-of-bounds configs.
[[nodiscard]] ProfiledApp make_synthetic_app(const SyntheticConfig& config);

}  // namespace hybridic::apps
