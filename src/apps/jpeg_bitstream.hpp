// Bit-level I/O and canonical Huffman coding for the mini-JPEG codec.
//
// The encoder measures symbol frequencies, builds a canonical
// length-limited Huffman code, and serializes the code lengths into the
// stream header; the decoder rebuilds the same code. This gives the
// huff_dc_dec / huff_ac_dec kernels genuine bit-serial entropy-decoding
// work, like the PowerStone jpeg the paper profiles.
#pragma once

#include <cstdint>
#include <vector>

namespace hybridic::apps::jpegc {

inline constexpr std::uint32_t kMaxCodeLength = 16;

/// MSB-first bit writer.
class BitWriter {
public:
  void put(std::uint32_t bits, std::uint32_t count);
  /// Pad to a byte boundary with 1-bits and return the stream.
  [[nodiscard]] std::vector<std::uint8_t> finish();
  [[nodiscard]] std::uint64_t bit_position() const {
    return bytes_.size() * 8 + fill_;
  }

private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  std::uint32_t fill_ = 0;
};

/// MSB-first bit reader over caller-owned bytes (reads through a functor so
/// tracked buffers can observe every byte touch).
template <typename ByteAt>
class BitReader {
public:
  BitReader(ByteAt byte_at, std::uint64_t size_bytes)
      : byte_at_(byte_at), size_bits_(size_bytes * 8) {}

  /// Position in bits from stream start.
  [[nodiscard]] std::uint64_t position() const { return pos_; }
  void seek(std::uint64_t bit) { pos_ = bit; }

  std::uint32_t get(std::uint32_t count) {
    std::uint32_t value = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      value = (value << 1) | bit();
    }
    return value;
  }

  std::uint32_t bit() {
    if (pos_ >= size_bits_) {
      return 1;  // Past-the-end reads see pad bits.
    }
    const std::uint8_t byte = byte_at_(pos_ / 8);
    const std::uint32_t b = (byte >> (7 - (pos_ % 8))) & 1U;
    ++pos_;
    return b;
  }

private:
  ByteAt byte_at_;
  std::uint64_t size_bits_;
  std::uint64_t pos_ = 0;
};

/// A canonical Huffman code over byte symbols, with O(max-length) decode
/// tables (first_code / first_index per length, JPEG-style).
struct HuffmanCode {
  /// Per-symbol code length (0 = symbol unused) — the serialized form.
  std::vector<std::uint8_t> lengths;
  /// Encoder view: per-symbol canonical code value.
  std::vector<std::uint32_t> codes;
  /// Decoder view.
  std::vector<std::uint32_t> sorted_symbols;       ///< By (length, symbol).
  std::uint32_t first_code[kMaxCodeLength + 1] = {};
  std::uint32_t first_index[kMaxCodeLength + 1] = {};
  std::uint32_t count[kMaxCodeLength + 1] = {};

  [[nodiscard]] bool has_symbol(std::uint32_t symbol) const {
    return symbol < lengths.size() && lengths[symbol] != 0;
  }
};

/// Build a length-limited (<= 16 bit) canonical code from frequencies.
/// Symbols with zero frequency get no code. At least one symbol must have
/// non-zero frequency.
[[nodiscard]] HuffmanCode build_huffman(
    const std::vector<std::uint64_t>& frequencies);

/// Rebuild a code from serialized lengths (the decoder side).
[[nodiscard]] HuffmanCode huffman_from_lengths(
    const std::vector<std::uint8_t>& lengths);

/// Decode one symbol canonically; `read_bit` returns 0/1.
/// Returns UINT32_MAX on an invalid prefix.
template <typename ReadBit>
[[nodiscard]] std::uint32_t decode_symbol(const HuffmanCode& code,
                                          ReadBit&& read_bit) {
  std::uint32_t value = 0;
  for (std::uint32_t length = 1; length <= kMaxCodeLength; ++length) {
    value = (value << 1) | read_bit();
    if (code.count[length] != 0 && value >= code.first_code[length] &&
        value - code.first_code[length] < code.count[length]) {
      return code.sorted_symbols[code.first_index[length] + value -
                                 code.first_code[length]];
    }
  }
  return UINT32_MAX;
}

}  // namespace hybridic::apps::jpegc
