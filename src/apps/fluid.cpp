#include "apps/fluid.hpp"

#include <cmath>
#include <vector>

#include "prof/tracked.hpp"
#include "util/rng.hpp"

namespace hybridic::apps {

namespace {

using prof::QuadProfiler;
using prof::ScopedFunction;
using prof::TrackedBuffer;

/// Index into an (N+2)x(N+2) grid.
class Grid {
public:
  explicit Grid(std::uint32_t n) : n_(n), stride_(n + 2) {}
  [[nodiscard]] std::size_t at(std::uint32_t x, std::uint32_t y) const {
    return static_cast<std::size_t>(y) * stride_ + x;
  }
  [[nodiscard]] std::uint32_t n() const { return n_; }
  [[nodiscard]] std::size_t cells() const {
    return static_cast<std::size_t>(stride_) * stride_;
  }

private:
  std::uint32_t n_;
  std::uint32_t stride_;
};

using Field = TrackedBuffer<float>;

/// Reflecting/continuity boundary conditions (Stam's set_bnd).
void set_bnd(const Grid& g, int b, Field& x) {
  const std::uint32_t n = g.n();
  for (std::uint32_t i = 1; i <= n; ++i) {
    x.set(g.at(0, i), b == 1 ? -x.get(g.at(1, i)) : x.get(g.at(1, i)));
    x.set(g.at(n + 1, i),
          b == 1 ? -x.get(g.at(n, i)) : x.get(g.at(n, i)));
    x.set(g.at(i, 0), b == 2 ? -x.get(g.at(i, 1)) : x.get(g.at(i, 1)));
    x.set(g.at(i, n + 1),
          b == 2 ? -x.get(g.at(i, n)) : x.get(g.at(i, n)));
  }
  x.set(g.at(0, 0), 0.5F * (x.get(g.at(1, 0)) + x.get(g.at(0, 1))));
  x.set(g.at(0, n + 1),
        0.5F * (x.get(g.at(1, n + 1)) + x.get(g.at(0, n))));
  x.set(g.at(n + 1, 0),
        0.5F * (x.get(g.at(n, 0)) + x.get(g.at(n + 1, 1))));
  x.set(g.at(n + 1, n + 1),
        0.5F * (x.get(g.at(n, n + 1)) + x.get(g.at(n + 1, n))));
}

/// Gauss-Seidel diffusion: out <- diffuse(in).
void diffuse_field(QuadProfiler& q, const Grid& g, int b, Field& out,
                   const Field& in, const FluidConfig& cfg) {
  const std::uint32_t n = g.n();
  const float a = cfg.dt * cfg.diffusion * static_cast<float>(n) *
                  static_cast<float>(n);
  // Initialize with the previous state, then relax.
  for (std::uint32_t y = 0; y <= n + 1; ++y) {
    for (std::uint32_t x = 0; x <= n + 1; ++x) {
      out.set(g.at(x, y), in.get(g.at(x, y)));
    }
  }
  for (std::uint32_t k = 0; k < cfg.gs_iterations; ++k) {
    for (std::uint32_t y = 1; y <= n; ++y) {
      for (std::uint32_t x = 1; x <= n; ++x) {
        const float value =
            (in.get(g.at(x, y)) +
             a * (out.get(g.at(x - 1, y)) + out.get(g.at(x + 1, y)) +
                  out.get(g.at(x, y - 1)) + out.get(g.at(x, y + 1)))) /
            (1.0F + 4.0F * a);
        out.set(g.at(x, y), value);
        q.add_work(7);
      }
    }
    set_bnd(g, b, out);
  }
}

/// Semi-Lagrangian advection: out <- advect(in) by velocity (u, v).
void advect_field(QuadProfiler& q, const Grid& g, int b, Field& out,
                  const Field& in, const Field& u, const Field& v,
                  const FluidConfig& cfg) {
  const std::uint32_t n = g.n();
  const float dt0 = cfg.dt * static_cast<float>(n);
  for (std::uint32_t y = 1; y <= n; ++y) {
    for (std::uint32_t x = 1; x <= n; ++x) {
      float px = static_cast<float>(x) - dt0 * u.get(g.at(x, y));
      float py = static_cast<float>(y) - dt0 * v.get(g.at(x, y));
      px = std::min(std::max(px, 0.5F), static_cast<float>(n) + 0.5F);
      py = std::min(std::max(py, 0.5F), static_cast<float>(n) + 0.5F);
      const auto x0 = static_cast<std::uint32_t>(px);
      const auto y0 = static_cast<std::uint32_t>(py);
      const float s1 = px - static_cast<float>(x0);
      const float t1 = py - static_cast<float>(y0);
      const float s0 = 1.0F - s1;
      const float t0 = 1.0F - t1;
      out.set(g.at(x, y),
              s0 * (t0 * in.get(g.at(x0, y0)) +
                    t1 * in.get(g.at(x0, y0 + 1))) +
                  s1 * (t0 * in.get(g.at(x0 + 1, y0)) +
                        t1 * in.get(g.at(x0 + 1, y0 + 1))));
      q.add_work(14);
    }
  }
  set_bnd(g, b, out);
}

/// Pressure projection: make (u, v) divergence-free.
void project_field(QuadProfiler& q, const Grid& g, Field& u, Field& v,
                   Field& p, Field& div, const FluidConfig& cfg) {
  const std::uint32_t n = g.n();
  const float h = 1.0F / static_cast<float>(n);
  for (std::uint32_t y = 1; y <= n; ++y) {
    for (std::uint32_t x = 1; x <= n; ++x) {
      div.set(g.at(x, y),
              -0.5F * h *
                  (u.get(g.at(x + 1, y)) - u.get(g.at(x - 1, y)) +
                   v.get(g.at(x, y + 1)) - v.get(g.at(x, y - 1))));
      p.set(g.at(x, y), 0.0F);
      q.add_work(6);
    }
  }
  set_bnd(g, 0, div);
  set_bnd(g, 0, p);
  for (std::uint32_t k = 0; k < cfg.gs_iterations * 2; ++k) {
    for (std::uint32_t y = 1; y <= n; ++y) {
      for (std::uint32_t x = 1; x <= n; ++x) {
        p.set(g.at(x, y),
              (div.get(g.at(x, y)) + p.get(g.at(x - 1, y)) +
               p.get(g.at(x + 1, y)) + p.get(g.at(x, y - 1)) +
               p.get(g.at(x, y + 1))) /
                  4.0F);
        q.add_work(6);
      }
    }
    set_bnd(g, 0, p);
  }
  for (std::uint32_t y = 1; y <= n; ++y) {
    for (std::uint32_t x = 1; x <= n; ++x) {
      u.set(g.at(x, y),
            u.get(g.at(x, y)) - 0.5F *
                                    (p.get(g.at(x + 1, y)) -
                                     p.get(g.at(x - 1, y))) /
                                    h);
      v.set(g.at(x, y),
            v.get(g.at(x, y)) - 0.5F *
                                    (p.get(g.at(x, y + 1)) -
                                     p.get(g.at(x, y - 1))) /
                                    h);
      q.add_work(8);
    }
  }
  set_bnd(g, 1, u);
  set_bnd(g, 2, v);
}

/// Interior divergence magnitude, untracked (verification only).
double divergence_norm(const Grid& g, const Field& u, const Field& v) {
  const std::uint32_t n = g.n();
  double sum = 0.0;
  for (std::uint32_t y = 2; y < n; ++y) {
    for (std::uint32_t x = 2; x < n; ++x) {
      const double d = 0.5 * (u.peek(g.at(x + 1, y)) - u.peek(g.at(x - 1, y)) +
                              v.peek(g.at(x, y + 1)) - v.peek(g.at(x, y - 1)));
      sum += d * d;
    }
  }
  return std::sqrt(sum / static_cast<double>((n - 2) * (n - 2)));
}

}  // namespace

ProfiledApp run_fluid(const FluidConfig& cfg) {
  ProfiledApp app;
  app.name = "fluid";
  app.profiler = std::make_unique<QuadProfiler>(prof::ProfileMode::kDeferred);
  QuadProfiler& q = *app.profiler;

  const auto fn_init = q.declare("init_fields");
  const auto fn_diffuse = q.declare("diffuse");
  const auto fn_advect = q.declare("advect");
  const auto fn_project = q.declare("project");
  const auto fn_read = q.declare("read_state");

  const Grid g{cfg.grid};
  Field d{q, "density", g.cells()};
  Field d0{q, "density0", g.cells()};
  Field u{q, "vel_u", g.cells()};
  Field v{q, "vel_v", g.cells()};
  Field u0{q, "vel_u0", g.cells()};
  Field v0{q, "vel_v0", g.cells()};
  Field p{q, "pressure", g.cells()};
  Field div{q, "divergence", g.cells()};

  // ---- init_fields (host). ----
  {
    ScopedFunction scope{q, fn_init};
    Rng rng{cfg.seed};
    const std::uint32_t n = g.n();
    for (std::uint32_t y = 0; y <= n + 1; ++y) {
      for (std::uint32_t x = 0; x <= n + 1; ++x) {
        d.set(g.at(x, y), 0.0F);
        // Deliberately non-solenoidal so the projection step has real
        // divergence to remove (checked by the self-verification below).
        u.set(g.at(x, y), 0.08F * std::sin(static_cast<float>(x) * 0.21F +
                                           static_cast<float>(y) * 0.13F));
        v.set(g.at(x, y), 0.08F * std::cos(static_cast<float>(x) * 0.17F -
                                           static_cast<float>(y) * 0.11F));
        q.add_work(4);
      }
    }
    // Dense smoke puffs.
    for (std::uint32_t puff = 0; puff < 4; ++puff) {
      const std::uint32_t cx =
          static_cast<std::uint32_t>(rng.between(n / 4, 3 * n / 4));
      const std::uint32_t cy =
          static_cast<std::uint32_t>(rng.between(n / 4, 3 * n / 4));
      for (std::int32_t dy = -3; dy <= 3; ++dy) {
        for (std::int32_t dx = -3; dx <= 3; ++dx) {
          d.set(g.at(cx + static_cast<std::uint32_t>(dx + 3) - 3,
                     cy + static_cast<std::uint32_t>(dy + 3) - 3),
                1.0F);
          q.add_work(1);
        }
      }
    }
  }

  double initial_divergence = divergence_norm(g, u, v);
  double final_divergence = initial_divergence;

  // ---- Time stepping. ----
  for (std::uint32_t step = 0; step < cfg.steps; ++step) {
    // Velocity step.
    {
      ScopedFunction scope{q, fn_diffuse};
      diffuse_field(q, g, 1, u0, u, cfg);
      diffuse_field(q, g, 2, v0, v, cfg);
    }
    {
      ScopedFunction scope{q, fn_project};
      project_field(q, g, u0, v0, p, div, cfg);
    }
    {
      ScopedFunction scope{q, fn_advect};
      advect_field(q, g, 1, u, u0, u0, v0, cfg);
      advect_field(q, g, 2, v, v0, u0, v0, cfg);
    }
    {
      ScopedFunction scope{q, fn_project};
      project_field(q, g, u, v, p, div, cfg);
    }
    // Density step.
    {
      ScopedFunction scope{q, fn_diffuse};
      diffuse_field(q, g, 0, d0, d, cfg);
    }
    {
      ScopedFunction scope{q, fn_advect};
      advect_field(q, g, 0, d, d0, u, v, cfg);
    }
    final_divergence = divergence_norm(g, u, v);
  }

  // ---- read_state (host). ----
  double total_density = 0.0;
  bool non_negative = true;
  {
    ScopedFunction scope{q, fn_read};
    for (std::size_t i = 0; i < g.cells(); ++i) {
      const float dv = d.get(i);
      total_density += dv;
      if (dv < -1e-4F) {
        non_negative = false;
      }
      q.add_work(1);
    }
    for (std::size_t i = 0; i < g.cells(); ++i) {
      (void)u.get(i);
      (void)v.get(i);
      q.add_work(2);
    }
  }

  app.verified = non_negative && total_density > 1.0 &&
                 final_divergence < 0.5 * initial_divergence;
  app.verification_note =
      "total density " + std::to_string(total_density) +
      ", divergence " + std::to_string(initial_divergence) + " -> " +
      std::to_string(final_divergence);

  app.calibration = {
      {"init_fields", 14.7, 0.0, 0, 0, false, false, false},
      {"diffuse", 0.529, 0.0488, 5230, 8580, true, false, false},
      {"advect", 0.652, 0.0592, 6120, 9950, true, false, false},
      {"project", 0.570, 0.0523, 5630, 9200, true, false, false},
      {"read_state", 11.7, 0.0, 0, 0, false, false, false},
  };
  app.environment.base_infrastructure = core::Resources{1097, 875};
  q.finalize();
  return app;
}

}  // namespace hybridic::apps
