// Profile memoization cache: QUAD profiling is a deterministic function of
// (application, input, profiling-relevant knobs) — it does not depend on
// the platform/design configuration at all — so a sweep over N design
// points needs exactly one profiling pass per distinct application input.
//
// The cache keys completed ProfiledApp runs (CommGraph + footprint/UMA
// numbers + calibration) by a caller-chosen string encoding exactly those
// knobs (see paper_key/synthetic_key). Entries are shared read-only:
// ProfiledApp only exposes const accessors, and schedule() builds a fresh
// AppSchedule per call, so any number of concurrent design points can hang
// off one entry. A hit re-runs nothing — in particular, zero shadow-memory
// passes (ShadowMemory::scan_count() is asserted unchanged in tests).
//
// Concurrency: the first requester of a key computes; every concurrent or
// later requester blocks on a shared_future and counts as a hit. Distinct
// keys never serialize — the factory runs outside the cache lock — but a
// batch submitted app-major can still convoy cold: the first N jobs all
// want key A, one thread computes it, and N-1 block on the future instead
// of starting key B. convoy_waits() counts exactly those blocked hits so
// benches can see the convoy; bench::prewarm_profiles() removes it.
// A factory that throws caches the exception (profiling is deterministic,
// retrying cannot help) and every requester of that key sees the same
// error.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "apps/app.hpp"
#include "apps/synthetic.hpp"

namespace hybridic::apps {

class ProfileCache {
public:
  using Factory = std::function<ProfiledApp()>;

  /// The profiled run for `key`, computing it with `make` on first request.
  std::shared_ptr<const ProfiledApp> get(const std::string& key,
                                         const Factory& make);

  /// One of the paper's four applications at its default workload size.
  std::shared_ptr<const ProfiledApp> paper_app(const std::string& name);

  /// A synthetic application; the key encodes every SyntheticConfig knob.
  std::shared_ptr<const ProfiledApp> synthetic_app(
      const SyntheticConfig& config);

  /// Cache key helpers (exposed so tests and tools can pre-warm).
  [[nodiscard]] static std::string paper_key(const std::string& name);
  [[nodiscard]] static std::string synthetic_key(
      const SyntheticConfig& config);

  /// Requests served from an existing entry (including waits on an
  /// in-flight computation) / requests that had to compute.
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Hits that had to block on another thread's in-flight computation —
  /// the cold-batch convoy. Zero once the cache is warm (or prewarmed).
  [[nodiscard]] std::uint64_t convoy_waits() const {
    return convoy_waits_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const;

  void clear();

private:
  using Entry = std::shared_future<std::shared_ptr<const ProfiledApp>>;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> convoy_waits_{0};
};

}  // namespace hybridic::apps
