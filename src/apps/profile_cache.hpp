// Profile memoization cache: QUAD profiling is a deterministic function of
// (application, input, profiling-relevant knobs) — it does not depend on
// the platform/design configuration at all — so a sweep over N design
// points needs exactly one profiling pass per distinct application input.
//
// The cache keys completed ProfiledApp runs (CommGraph + footprint/UMA
// numbers + calibration) by a caller-chosen string encoding exactly those
// knobs (see paper_key/synthetic_key). Entries are shared read-only:
// ProfiledApp only exposes const accessors, and schedule() builds a fresh
// AppSchedule per call, so any number of concurrent design points can hang
// off one entry. A hit re-runs nothing — in particular, zero shadow-memory
// passes (ShadowMemory::scan_count() is asserted unchanged in tests).
//
// Tiering (docs/MODEL.md §15): this class is the in-memory L1. An optional
// ProfileL2 backend (the persistent store in src/store/) sits underneath:
// an L1 miss consults L2 before profiling, and freshly profiled entries are
// published to L2, so warm-path performance survives process restarts and
// is shared across campaign shards. L1 is bounded: set_capacity() installs
// entry-count/byte caps enforced by LRU eviction of ready entries —
// evicted profiles fall back to L2 (or recompute when no L2 is attached).
//
// Concurrency: the first requester of a key computes (or loads from L2);
// every concurrent or later requester blocks on a shared_future and counts
// as a hit. Distinct keys never serialize — the factory runs outside the
// cache lock — but a batch submitted app-major can still convoy cold: the
// first N jobs all want key A, one thread computes it, and N-1 block on
// the future instead of starting key B. convoy_waits() counts exactly
// those blocked hits so benches can see the convoy;
// bench::prewarm_profiles() removes it. A factory that throws caches the
// exception (profiling is deterministic, retrying cannot help) and every
// requester of that key sees the same error.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "apps/app.hpp"
#include "apps/synthetic.hpp"

namespace hybridic::apps {

/// Second-level profile backend under ProfileCache (implemented by the
/// persistent store). Implementations must be thread-safe; load failures
/// of any kind (missing, truncated, corrupt, stale version) must surface
/// as nullptr — never as an exception — so a damaged store degrades to
/// re-profiling.
class ProfileL2 {
public:
  virtual ~ProfileL2() = default;

  /// The profile stored under `key`, or nullptr on miss.
  [[nodiscard]] virtual std::shared_ptr<const ProfiledApp> load(
      const std::string& key) = 0;

  /// Persist `app` under `key` (best effort).
  virtual void store(const std::string& key, const ProfiledApp& app) = 0;
};

/// Point-in-time cache counters (see the accessors for semantics).
struct ProfileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t convoy_waits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_stores = 0;
  std::uint64_t evictions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t entries = 0;
};

class ProfileCache {
public:
  using Factory = std::function<ProfiledApp()>;

  /// The profiled run for `key`, computing it with `make` on first request
  /// (after consulting the L2 backend, when attached).
  std::shared_ptr<const ProfiledApp> get(const std::string& key,
                                         const Factory& make);

  /// One of the paper's four applications at its default workload size.
  std::shared_ptr<const ProfiledApp> paper_app(const std::string& name);

  /// A synthetic application; the key encodes every SyntheticConfig knob.
  std::shared_ptr<const ProfiledApp> synthetic_app(
      const SyntheticConfig& config);

  /// Cache key helpers (exposed so tests and tools can pre-warm).
  [[nodiscard]] static std::string paper_key(const std::string& name);
  [[nodiscard]] static std::string synthetic_key(
      const SyntheticConfig& config);

  /// Attach (or detach, with nullptr) the persistent L2 backend.
  void set_l2(std::shared_ptr<ProfileL2> l2);

  /// Bound the in-memory tier: at most `max_entries` cached profiles and
  /// `max_bytes` of approximate resident profile memory; 0 = unbounded
  /// (the default). Over-cap ready entries are evicted least-recently-used
  /// first; in-flight computations are never evicted.
  void set_capacity(std::size_t max_entries, std::uint64_t max_bytes);

  /// Requests served from an existing entry (including waits on an
  /// in-flight computation) / requests that had to compute or hit L2.
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Hits that had to block on another thread's in-flight computation —
  /// the cold-batch convoy. Zero once the cache is warm (or prewarmed).
  [[nodiscard]] std::uint64_t convoy_waits() const {
    return convoy_waits_.load(std::memory_order_relaxed);
  }
  /// L1 misses served by the L2 backend without re-profiling.
  [[nodiscard]] std::uint64_t l2_hits() const {
    return l2_hits_.load(std::memory_order_relaxed);
  }
  /// Freshly profiled entries published to the L2 backend.
  [[nodiscard]] std::uint64_t l2_stores() const {
    return l2_stores_.load(std::memory_order_relaxed);
  }
  /// Ready entries dropped from L1 by the capacity caps.
  [[nodiscard]] std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Approximate bytes held by ready L1 entries.
  [[nodiscard]] std::uint64_t resident_bytes() const;

  [[nodiscard]] ProfileCacheStats stats() const;

  [[nodiscard]] std::size_t size() const;

  void clear();

private:
  using Entry = std::shared_future<std::shared_ptr<const ProfiledApp>>;

  struct Record {
    Entry future;
    std::uint64_t bytes = 0;  ///< Approximate, 0 until ready.
    bool ready = false;       ///< set_value/set_exception has run.
    std::list<std::string>::iterator lru;  ///< Position in lru_.
  };

  /// Mark `key` ready with `bytes` resident, then enforce the caps.
  /// Called (locked) after the future is fulfilled.
  void publish_locked(const std::string& key, std::uint64_t bytes);
  void evict_over_caps_locked();

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Record> entries_;
  std::list<std::string> lru_;  ///< Front = most recently used.
  std::shared_ptr<ProfileL2> l2_;
  std::size_t max_entries_ = 0;   ///< 0 = unbounded.
  std::uint64_t max_bytes_ = 0;   ///< 0 = unbounded.
  std::uint64_t resident_bytes_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> convoy_waits_{0};
  std::atomic<std::uint64_t> l2_hits_{0};
  std::atomic<std::uint64_t> l2_stores_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace hybridic::apps
