// Application framework: each of the paper's four applications runs its
// real algorithm against tracked buffers under the QuadProfiler, producing
// (a) a verified functional result and (b) the communication profile +
// calibration the system pipeline consumes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "prof/quad.hpp"
#include "sys/experiment.hpp"
#include "sys/schedule.hpp"

namespace hybridic::apps {

/// A completed profiled application run.
struct ProfiledApp {
  std::string name;
  std::unique_ptr<prof::QuadProfiler> profiler;  ///< Owns the graph.
  std::vector<sys::CalibrationEntry> calibration;
  sys::AppEnvironment environment;

  /// Functional self-check outcome (each app verifies its own output).
  bool verified = false;
  std::string verification_note;

  [[nodiscard]] const prof::CommGraph& graph() const {
    return profiler->graph();
  }

  [[nodiscard]] sys::AppSchedule schedule() const {
    // Steps follow the observed first-invocation order, so the schedule
    // reflects the program's real control flow, not declaration order.
    return sys::build_schedule(name, profiler->graph(), calibration,
                               profiler->call_order());
  }
};

/// Registry of the paper's four applications at their default (paper-shaped)
/// workload sizes.
[[nodiscard]] std::vector<std::string> paper_app_names();

/// Run one of the paper's applications by name ("canny", "jpeg", "klt",
/// "fluid") at its default size. Throws ConfigError for unknown names.
[[nodiscard]] ProfiledApp run_paper_app(const std::string& name);

}  // namespace hybridic::apps
