// Canny edge detection (paper application 1).
//
// Pipeline (one function per stage, the paper's kernel granularity):
//   load_image (host)        — synthesize/load the input frame
//   gaussian_blur (kernel)   — 5x5 separable Gaussian smoothing
//   sobel_gradient (kernel)  — 3x3 Sobel; gradient magnitude + direction
//   non_max_suppression (k)  — thin edges along the gradient direction
//   hysteresis (kernel)      — double threshold + connectivity tracking
//   store_edges (host)       — consume the edge map
//
// The chain communicates kernel→kernel exclusively, so the design
// algorithm pairs (gaussian_blur, sobel_gradient) and (non_max_suppression,
// hysteresis) through shared local memories and routes the remaining
// sobel→nonmax traffic over a small NoC — the paper's "NoC, SM, P" row.
#pragma once

#include <cstdint>

#include "apps/app.hpp"

namespace hybridic::apps {

struct CannyConfig {
  std::uint32_t width = 160;
  std::uint32_t height = 120;
  float low_threshold = 20.0F;
  float high_threshold = 60.0F;
  std::uint64_t seed = 42;
};

/// Run the full Canny pipeline under the profiler and self-verify the
/// result (edge pixels exist, all edges survive hysteresis thresholds).
[[nodiscard]] ProfiledApp run_canny(const CannyConfig& config);

}  // namespace hybridic::apps
