#include "apps/jpeg_bitstream.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace hybridic::apps::jpegc {

void BitWriter::put(std::uint32_t bits, std::uint32_t count) {
  if (count > 32) {
    throw ConfigError{"BitWriter::put asked to emit " + std::to_string(count) +
                      " bits, but at most 32 fit the accumulator (corrupt "
                      "Huffman code length?)"};
  }
  for (std::uint32_t i = count; i > 0; --i) {
    const std::uint32_t b = (bits >> (i - 1)) & 1U;
    current_ = static_cast<std::uint8_t>((current_ << 1) | b);
    if (++fill_ == 8) {
      bytes_.push_back(current_);
      current_ = 0;
      fill_ = 0;
    }
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (fill_ != 0) {
    current_ = static_cast<std::uint8_t>(
        (current_ << (8 - fill_)) | ((1U << (8 - fill_)) - 1));
    bytes_.push_back(current_);
    current_ = 0;
    fill_ = 0;
  }
  return std::move(bytes_);
}

namespace {

/// Assign canonical codes and decode tables from per-symbol lengths.
void finalize(HuffmanCode& code) {
  const auto n = static_cast<std::uint32_t>(code.lengths.size());
  code.codes.assign(n, 0);
  code.sorted_symbols.clear();

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&code](std::uint32_t a, std::uint32_t b) {
                     if (code.lengths[a] != code.lengths[b]) {
                       return code.lengths[a] < code.lengths[b];
                     }
                     return a < b;
                   });

  std::uint32_t next_code = 0;
  std::uint32_t previous_length = 0;
  for (const std::uint32_t symbol : order) {
    const std::uint8_t length = code.lengths[symbol];
    if (length == 0) {
      continue;
    }
    next_code <<= (length - previous_length);
    if (code.count[length] == 0) {
      code.first_code[length] = next_code;
      code.first_index[length] =
          static_cast<std::uint32_t>(code.sorted_symbols.size());
    }
    code.codes[symbol] = next_code;
    code.sorted_symbols.push_back(symbol);
    ++code.count[length];
    ++next_code;
    previous_length = length;
  }
}

}  // namespace

HuffmanCode build_huffman(const std::vector<std::uint64_t>& frequencies) {
  require(!frequencies.empty(), "Huffman needs a symbol alphabet");
  const auto n = static_cast<std::uint32_t>(frequencies.size());

  // Package-merge would be exact; for our alphabet sizes a plain Huffman
  // tree followed by length clamping (then canonical re-normalization via
  // the Kraft sum) is sufficient and much simpler.
  struct Node {
    std::uint64_t weight;
    std::uint32_t tie;
    std::int32_t symbol;  // -1 for internal
    std::int32_t left, right;
  };
  std::vector<Node> nodes;
  using Entry = std::pair<std::pair<std::uint64_t, std::uint32_t>,
                          std::int32_t>;  // ((weight, tie), node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  std::uint32_t used = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (frequencies[s] == 0) {
      continue;
    }
    nodes.push_back(Node{frequencies[s], s, static_cast<std::int32_t>(s),
                         -1, -1});
    heap.push({{frequencies[s], s},
               static_cast<std::int32_t>(nodes.size() - 1)});
    ++used;
  }
  require(used > 0, "Huffman needs at least one used symbol");

  HuffmanCode code;
  code.lengths.assign(n, 0);

  if (used == 1) {
    code.lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    finalize(code);
    return code;
  }

  std::uint32_t tie = n;
  while (heap.size() > 1) {
    const Entry a = heap.top();
    heap.pop();
    const Entry b = heap.top();
    heap.pop();
    nodes.push_back(Node{a.first.first + b.first.first, tie, -1, a.second,
                         b.second});
    heap.push({{a.first.first + b.first.first, tie},
               static_cast<std::int32_t>(nodes.size() - 1)});
    ++tie;
  }

  // Depth-first length assignment.
  struct Frame {
    std::int32_t node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(f.node)];
    if (node.symbol >= 0) {
      code.lengths[static_cast<std::size_t>(node.symbol)] =
          std::max<std::uint8_t>(f.depth, 1);
      continue;
    }
    stack.push_back({node.left, static_cast<std::uint8_t>(f.depth + 1)});
    stack.push_back({node.right, static_cast<std::uint8_t>(f.depth + 1)});
  }

  // Clamp to kMaxCodeLength, then repair the Kraft inequality by
  // lengthening the shallowest over-budget leaves.
  for (auto& length : code.lengths) {
    if (length > kMaxCodeLength) {
      length = kMaxCodeLength;
    }
  }
  const auto kraft = [&code]() {
    std::uint64_t sum = 0;
    for (const std::uint8_t length : code.lengths) {
      if (length != 0) {
        sum += 1ULL << (kMaxCodeLength - length);
      }
    }
    return sum;
  };
  while (kraft() > (1ULL << kMaxCodeLength)) {
    // Lengthen the longest code shorter than the cap.
    std::uint32_t victim = UINT32_MAX;
    std::uint8_t best = 0;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (code.lengths[s] != 0 && code.lengths[s] < kMaxCodeLength &&
          code.lengths[s] > best) {
        best = code.lengths[s];
        victim = s;
      }
    }
    require(victim != UINT32_MAX, "cannot repair Huffman code lengths");
    ++code.lengths[victim];
  }

  finalize(code);
  return code;
}

HuffmanCode huffman_from_lengths(const std::vector<std::uint8_t>& lengths) {
  HuffmanCode code;
  code.lengths = lengths;
  finalize(code);
  return code;
}

}  // namespace hybridic::apps::jpegc
