#include "noc/routing.hpp"

#include "util/error.hpp"

namespace hybridic::noc {

PortDir XyRouting::route(const Mesh2D& mesh, std::uint32_t current,
                         std::uint32_t destination) const {
  const Coord c = mesh.coord_of(current);
  const Coord d = mesh.coord_of(destination);
  if (c.x < d.x) {
    return PortDir::kEast;
  }
  if (c.x > d.x) {
    return PortDir::kWest;
  }
  if (c.y < d.y) {
    return PortDir::kNorth;
  }
  if (c.y > d.y) {
    return PortDir::kSouth;
  }
  return PortDir::kLocal;
}

PortDir YxRouting::route(const Mesh2D& mesh, std::uint32_t current,
                         std::uint32_t destination) const {
  const Coord c = mesh.coord_of(current);
  const Coord d = mesh.coord_of(destination);
  if (c.y < d.y) {
    return PortDir::kNorth;
  }
  if (c.y > d.y) {
    return PortDir::kSouth;
  }
  if (c.x < d.x) {
    return PortDir::kEast;
  }
  if (c.x > d.x) {
    return PortDir::kWest;
  }
  return PortDir::kLocal;
}

PortDir WestFirstRouting::route(const Mesh2D& mesh, std::uint32_t current,
                                std::uint32_t destination) const {
  const Coord c = mesh.coord_of(current);
  const Coord d = mesh.coord_of(destination);
  if (c.x > d.x) {
    return PortDir::kWest;  // All westward movement happens first.
  }
  if (c.y < d.y) {
    return PortDir::kNorth;
  }
  if (c.y > d.y) {
    return PortDir::kSouth;
  }
  if (c.x < d.x) {
    return PortDir::kEast;
  }
  return PortDir::kLocal;
}

std::unique_ptr<Routing> make_routing(const std::string& name) {
  if (name == "XY" || name == "xy") {
    return std::make_unique<XyRouting>();
  }
  if (name == "YX" || name == "yx") {
    return std::make_unique<YxRouting>();
  }
  if (name == "WestFirst" || name == "westfirst" || name == "WF") {
    return std::make_unique<WestFirstRouting>();
  }
  throw ConfigError{"unknown routing algorithm: " + name};
}

}  // namespace hybridic::noc
