#include "noc/routing.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/error.hpp"

namespace hybridic::noc {

namespace {
constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();
constexpr PortDir kMeshDirs[] = {PortDir::kNorth, PortDir::kEast,
                                 PortDir::kSouth, PortDir::kWest};
}  // namespace

PortDir XyRouting::route(const Mesh2D& mesh, std::uint32_t current,
                         std::uint32_t destination) const {
  const Coord c = mesh.coord_of(current);
  const Coord d = mesh.coord_of(destination);
  if (c.x < d.x) {
    return PortDir::kEast;
  }
  if (c.x > d.x) {
    return PortDir::kWest;
  }
  if (c.y < d.y) {
    return PortDir::kNorth;
  }
  if (c.y > d.y) {
    return PortDir::kSouth;
  }
  return PortDir::kLocal;
}

PortDir YxRouting::route(const Mesh2D& mesh, std::uint32_t current,
                         std::uint32_t destination) const {
  const Coord c = mesh.coord_of(current);
  const Coord d = mesh.coord_of(destination);
  if (c.y < d.y) {
    return PortDir::kNorth;
  }
  if (c.y > d.y) {
    return PortDir::kSouth;
  }
  if (c.x < d.x) {
    return PortDir::kEast;
  }
  if (c.x > d.x) {
    return PortDir::kWest;
  }
  return PortDir::kLocal;
}

PortDir WestFirstRouting::route(const Mesh2D& mesh, std::uint32_t current,
                                std::uint32_t destination) const {
  const Coord c = mesh.coord_of(current);
  const Coord d = mesh.coord_of(destination);
  if (c.x > d.x) {
    return PortDir::kWest;  // All westward movement happens first.
  }
  if (c.y < d.y) {
    return PortDir::kNorth;
  }
  if (c.y > d.y) {
    return PortDir::kSouth;
  }
  if (c.x < d.x) {
    return PortDir::kEast;
  }
  return PortDir::kLocal;
}

std::unique_ptr<Routing> make_routing(const std::string& name) {
  if (name == "XY" || name == "xy") {
    return std::make_unique<XyRouting>();
  }
  if (name == "YX" || name == "yx") {
    return std::make_unique<YxRouting>();
  }
  if (name == "WestFirst" || name == "westfirst" || name == "WF") {
    return std::make_unique<WestFirstRouting>();
  }
  throw ConfigError{"unknown routing algorithm: " + name};
}

LinkState::LinkState(
    const Mesh2D& mesh,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& dead_links)
    : mesh_(mesh) {
  for (const auto& [a, b] : dead_links) {
    // Build messages with += into a named string: gcc 12 raises spurious
    // -Wrestrict warnings on long operator+ chains.
    if (a >= mesh_.node_count() || b >= mesh_.node_count()) {
      std::string message = "dead link (";
      message += std::to_string(a);
      message += ", ";
      message += std::to_string(b);
      message += ") names a node outside the ";
      message += std::to_string(mesh_.width());
      message += "x";
      message += std::to_string(mesh_.height());
      message += " mesh (valid ids: 0..";
      message += std::to_string(mesh_.node_count() - 1);
      message += ")";
      throw ConfigError{message};
    }
    const Coord ca = mesh_.coord_of(a);
    const Coord cb = mesh_.coord_of(b);
    const std::uint32_t dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
    const std::uint32_t dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
    if (dx + dy != 1) {
      std::string message = "dead link (";
      message += std::to_string(a);
      message += ", ";
      message += std::to_string(b);
      message += ") does not name adjacent mesh nodes; links exist only "
                 "between horizontal/vertical neighbors";
      throw ConfigError{message};
    }
    dead_.insert({std::min(a, b), std::max(a, b)});
  }
}

bool LinkState::link_up(std::uint32_t node, PortDir dir) const {
  const std::optional<std::uint32_t> neighbor = mesh_.neighbor(node, dir);
  if (!neighbor.has_value()) {
    return false;
  }
  return dead_.find({std::min(node, *neighbor), std::max(node, *neighbor)}) ==
         dead_.end();
}

const std::vector<std::uint32_t>& LinkState::distances_to(
    std::uint32_t destination) const {
  auto it = dist_cache_.find(destination);
  if (it != dist_cache_.end()) {
    return it->second;
  }
  std::vector<std::uint32_t> dist(mesh_.node_count(), kUnreachable);
  dist[destination] = 0;
  std::deque<std::uint32_t> frontier{destination};
  while (!frontier.empty()) {
    const std::uint32_t node = frontier.front();
    frontier.pop_front();
    for (const PortDir dir : kMeshDirs) {
      if (!link_up(node, dir)) {
        continue;
      }
      const std::uint32_t next = *mesh_.neighbor(node, dir);
      if (dist[next] == kUnreachable) {
        dist[next] = dist[node] + 1;
        frontier.push_back(next);
      }
    }
  }
  return dist_cache_.emplace(destination, std::move(dist)).first->second;
}

bool LinkState::reachable(std::uint32_t src, std::uint32_t dst) const {
  return distances_to(dst)[src] != kUnreachable;
}

std::optional<PortDir> LinkState::next_hop(std::uint32_t current,
                                           std::uint32_t destination) const {
  if (current == destination) {
    return PortDir::kLocal;
  }
  const std::vector<std::uint32_t>& dist = distances_to(destination);
  if (dist[current] == kUnreachable) {
    return std::nullopt;
  }
  for (const PortDir dir : kMeshDirs) {
    if (!link_up(current, dir)) {
      continue;
    }
    const std::uint32_t next = *mesh_.neighbor(current, dir);
    if (dist[next] + 1 == dist[current]) {
      return dir;
    }
  }
  return std::nullopt;  // unreachable: dist[current] finite implies a hop
}

bool LinkState::detours(const Routing& base, std::uint32_t src,
                        std::uint32_t dst) const {
  std::uint32_t current = src;
  // Base algorithms are minimal, so the walk ends within node_count hops.
  for (std::uint32_t steps = 0; steps < mesh_.node_count(); ++steps) {
    const PortDir dir = base.route(mesh_, current, dst);
    if (dir == PortDir::kLocal) {
      return false;
    }
    if (!link_up(current, dir)) {
      return true;
    }
    current = *mesh_.neighbor(current, dir);
  }
  return true;
}

}  // namespace hybridic::noc
