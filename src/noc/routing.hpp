// Deterministic routing algorithms for the 2-D mesh.
//
// XY dimension-order routing is deadlock-free on a mesh and is what FPGA
// mesh NoCs (including the router family the paper adapts) ship by default.
// YX is provided as an alternative for tests and ablations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "noc/topology.hpp"

namespace hybridic::noc {

/// Routing decision: which output port a flit at `current` takes to reach
/// `destination`.
class Routing {
public:
  virtual ~Routing() = default;

  [[nodiscard]] virtual PortDir route(const Mesh2D& mesh,
                                      std::uint32_t current,
                                      std::uint32_t destination) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Dimension-order XY: correct X first, then Y, then eject.
class XyRouting final : public Routing {
public:
  [[nodiscard]] PortDir route(const Mesh2D& mesh, std::uint32_t current,
                              std::uint32_t destination) const override;
  [[nodiscard]] std::string name() const override { return "XY"; }
};

/// Dimension-order YX: correct Y first, then X, then eject.
class YxRouting final : public Routing {
public:
  [[nodiscard]] PortDir route(const Mesh2D& mesh, std::uint32_t current,
                              std::uint32_t destination) const override;
  [[nodiscard]] std::string name() const override { return "YX"; }
};

/// West-first turn model (deterministic variant): all westward hops are
/// taken first; afterwards the packet corrects Y, then moves east. Since
/// no turn ever enters the west direction after leaving it, the routing
/// is deadlock-free, and every path is still minimal.
class WestFirstRouting final : public Routing {
public:
  [[nodiscard]] PortDir route(const Mesh2D& mesh, std::uint32_t current,
                              std::uint32_t destination) const override;
  [[nodiscard]] std::string name() const override { return "WestFirst"; }
};

[[nodiscard]] std::unique_ptr<Routing> make_routing(const std::string& name);

}  // namespace hybridic::noc
