// Deterministic routing algorithms for the 2-D mesh.
//
// XY dimension-order routing is deadlock-free on a mesh and is what FPGA
// mesh NoCs (including the router family the paper adapts) ship by default.
// YX is provided as an alternative for tests and ablations.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "noc/topology.hpp"

namespace hybridic::noc {

/// Routing decision: which output port a flit at `current` takes to reach
/// `destination`.
class Routing {
public:
  virtual ~Routing() = default;

  [[nodiscard]] virtual PortDir route(const Mesh2D& mesh,
                                      std::uint32_t current,
                                      std::uint32_t destination) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Dimension-order XY: correct X first, then Y, then eject.
class XyRouting final : public Routing {
public:
  [[nodiscard]] PortDir route(const Mesh2D& mesh, std::uint32_t current,
                              std::uint32_t destination) const override;
  [[nodiscard]] std::string name() const override { return "XY"; }
};

/// Dimension-order YX: correct Y first, then X, then eject.
class YxRouting final : public Routing {
public:
  [[nodiscard]] PortDir route(const Mesh2D& mesh, std::uint32_t current,
                              std::uint32_t destination) const override;
  [[nodiscard]] std::string name() const override { return "YX"; }
};

/// West-first turn model (deterministic variant): all westward hops are
/// taken first; afterwards the packet corrects Y, then moves east. Since
/// no turn ever enters the west direction after leaving it, the routing
/// is deadlock-free, and every path is still minimal.
class WestFirstRouting final : public Routing {
public:
  [[nodiscard]] PortDir route(const Mesh2D& mesh, std::uint32_t current,
                              std::uint32_t destination) const override;
  [[nodiscard]] std::string name() const override { return "WestFirst"; }
};

[[nodiscard]] std::unique_ptr<Routing> make_routing(const std::string& name);

/// The surviving-link view of a mesh with permanently dead links, plus
/// fault-aware next-hop computation.
///
/// When any link is dead, *every* routing decision comes from a BFS
/// shortest-path table on the surviving graph (cached per destination,
/// neighbors visited in fixed port order for determinism). Distance to the
/// destination strictly decreases along every hop, so routes are loop-free
/// and always deliver when a path exists. Partial detours off a
/// dimension-order route could loop, which is why the base algorithm is
/// bypassed entirely rather than patched around each dead link. The BFS
/// routes are not covered by the dimension-order deadlock-freedom argument;
/// the wait_all watchdog backstops the (rare) adversarial configurations.
class LinkState {
public:
  /// `dead_links` name pairs of adjacent mesh nodes; throws ConfigError
  /// with the offending pair otherwise.
  LinkState(const Mesh2D& mesh,
            const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                dead_links);

  /// Is the link from `node` towards `dir` present and alive?
  [[nodiscard]] bool link_up(std::uint32_t node, PortDir dir) const;

  /// Can `src` still reach `dst` over surviving links?
  [[nodiscard]] bool reachable(std::uint32_t src, std::uint32_t dst) const;

  /// Next hop from `current` towards `destination` over surviving links;
  /// kLocal at the destination, nullopt when disconnected.
  [[nodiscard]] std::optional<PortDir> next_hop(
      std::uint32_t current, std::uint32_t destination) const;

  /// Would the base algorithm's path from `src` to `dst` cross a dead
  /// link (i.e. does the fault-aware route detour)?
  [[nodiscard]] bool detours(const Routing& base, std::uint32_t src,
                             std::uint32_t dst) const;

  [[nodiscard]] std::size_t dead_link_count() const { return dead_.size(); }

private:
  /// Hop distances of every node to `destination` (BFS, cached).
  const std::vector<std::uint32_t>& distances_to(
      std::uint32_t destination) const;

  Mesh2D mesh_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> dead_;  // (lo, hi)
  mutable std::map<std::uint32_t, std::vector<std::uint32_t>> dist_cache_;
};

}  // namespace hybridic::noc
