#include "noc/network.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <utility>

#include "faults/injector.hpp"
#include "util/error.hpp"

namespace hybridic::noc {

Network::Network(std::string name, sim::Engine& engine,
                 const sim::ClockDomain& clock, Mesh2D mesh,
                 NetworkConfig config)
    : name_(std::move(name)),
      engine_(&engine),
      clock_(&clock),
      mesh_(mesh),
      config_(config),
      routing_(make_routing(config.routing)),
      adapters_(mesh.node_count()),
      in_route_(mesh.node_count()) {
  routers_.reserve(mesh_.node_count());
  for (std::uint32_t id = 0; id < mesh_.node_count(); ++id) {
    routers_.emplace_back(id, config_.router);
  }
  ticking_handle_ = engine_->add_ticking(*this, clock);
}

Adapter& Network::attach_adapter(std::uint32_t node, std::string name,
                                 AdapterKind kind) {
  require(node < mesh_.node_count(), "adapter node outside mesh");
  require(adapters_[node] == nullptr, "node already has an adapter");
  adapters_[node] = std::make_unique<Adapter>(
      std::move(name), node, kind, config_.max_packet_payload_bytes);
  adapter_nodes_.insert(
      std::lower_bound(adapter_nodes_.begin(), adapter_nodes_.end(), node),
      node);
  if (faults_ != nullptr) {
    wire_adapter_faults(*adapters_[node]);
  }
  return *adapters_[node];
}

void Network::set_faults(faults::FaultInjector* injector) {
  faults_ = injector;
  link_state_.reset();
  if (faults_ == nullptr) {
    for (const std::uint32_t node : adapter_nodes_) {
      adapters_[node]->set_fault_hooks(nullptr, nullptr, nullptr);
    }
    return;
  }
  const auto& dead = faults_->spec().dead_links;
  if (!dead.empty()) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    pairs.reserve(dead.size());
    for (const faults::LinkDown& link : dead) {
      pairs.emplace_back(link.a, link.b);
    }
    link_state_ = std::make_unique<LinkState>(mesh_, pairs);
  }
  for (const std::uint32_t node : adapter_nodes_) {
    wire_adapter_faults(*adapters_[node]);
  }
}

void Network::wire_adapter_faults(Adapter& adapter_ref) {
  if (!faults_->resilience().noc_crc) {
    adapter_ref.set_fault_hooks(faults_, nullptr, nullptr);
    return;
  }
  const std::uint32_t dest_node = adapter_ref.node();
  adapter_ref.set_fault_hooks(
      faults_,
      [this, dest_node](const Flit& tail, std::uint64_t payload) {
        return handle_corrupt_packet(dest_node, tail, payload);
      },
      [this](const Flit& tail) {
        retransmit_attempts_.erase({tail.source, tail.packet_id});
      });
}

bool Network::route_exists(std::uint32_t src, std::uint32_t dst) const {
  return link_state_ == nullptr || link_state_->reachable(src, dst);
}

bool Network::route_detoured(std::uint32_t src, std::uint32_t dst) const {
  if (link_state_ == nullptr || src == dst) {
    return false;
  }
  return link_state_->reachable(src, dst) &&
         link_state_->detours(*routing_, src, dst);
}

PortDir Network::route_from(std::uint32_t node, const Flit& flit) const {
  if (link_state_ != nullptr) {
    const std::optional<PortDir> hop =
        link_state_->next_hop(node, flit.destination);
    sim_assert(hop.has_value(),
               "flit in flight towards a node unreachable over surviving "
               "links (send-side reachability check missed it)");
    return *hop;
  }
  return routing_->route(mesh_, node, flit.destination);
}

void Network::maybe_corrupt(Flit& flit, std::uint32_t node,
                            Picoseconds now) {
  const double rate = faults_->spec().flit_corruption_rate;
  if (!faults_->draw(faults::SiteKind::kNocFlit, node, rate)) {
    return;
  }
  flit.corrupted = true;
  ++faults_->stats().flits_corrupted;
  faults_->record(faults::FaultKind::kFlitCorruption, now.seconds(),
                  kFlitPayloadBytes,
                  name_ + ": flit corrupted at node " + std::to_string(node) +
                      " (msg " + std::to_string(flit.message_id) + " pkt " +
                      std::to_string(flit.packet_id) + ")");
}

bool Network::handle_corrupt_packet(std::uint32_t dest_node,
                                    const Flit& tail,
                                    std::uint64_t payload_flits) {
  const auto key = std::make_pair(tail.source, tail.packet_id);
  std::uint32_t& attempts = retransmit_attempts_[key];
  const faults::ResilienceSpec& res = faults_->resilience();
  if (attempts >= res.noc_max_retransmits) {
    retransmit_attempts_.erase(key);
    ++faults_->stats().retransmit_give_ups;
    return false;  // budget exhausted: accept the packet as-corrupted
  }
  ++attempts;
  ++faults_->stats().packets_retransmitted;
  const std::uint32_t shift = std::min(attempts - 1, 10u);
  const Cycles backoff{static_cast<std::uint64_t>(res.noc_backoff_base_cycles)
                       << shift};
  faults_->record(
      faults::FaultKind::kRetransmit, engine_->now().seconds(),
      payload_flits * kFlitPayloadBytes,
      name_ + ": retransmit pkt " + std::to_string(tail.packet_id) +
          " (node " + std::to_string(tail.source) + " -> " +
          std::to_string(dest_node) + ", attempt " +
          std::to_string(attempts) + ")");
  Adapter* source = adapters_[tail.source].get();
  const std::uint64_t message_id = tail.message_id;
  const std::uint64_t packet_id = tail.packet_id;
  engine_->schedule_after(
      clock_->span(backoff),
      [this, source, dest_node, message_id, packet_id, payload_flits] {
        source->resend_packet(dest_node, message_id, packet_id,
                              payload_flits);
        engine_->activate(ticking_handle_);
      });
  return true;
}

Router& Network::router(std::uint32_t node) {
  require(node < routers_.size(), "router node outside mesh");
  return routers_[node];
}

Adapter* Network::adapter(std::uint32_t node) {
  require(node < adapters_.size(), "adapter node outside mesh");
  return adapters_[node].get();
}

std::uint64_t Network::send(std::uint32_t source, std::uint32_t destination,
                            Bytes bytes, DeliveryCallback on_delivered) {
  require(source < mesh_.node_count() && destination < mesh_.node_count(),
          "NoC send outside mesh");
  require(adapters_[source] != nullptr, "NoC send from node with no adapter");
  require(adapters_[destination] != nullptr,
          "NoC send to node with no adapter");
  const std::uint64_t id = next_message_id_++;

  if (link_state_ != nullptr && source != destination &&
      !link_state_->reachable(source, destination)) {
    // Dead links disconnect this pair: the message is black-holed. Nothing
    // is enqueued, so the delivery callback never fires and the wait_all
    // watchdog reports the stuck op (unless the edge router degraded the
    // edge to the bus before reaching this point).
    ++faults_->stats().messages_lost;
    faults_->record(faults::FaultKind::kMessageLost,
                    engine_->now().seconds(), bytes.count(),
                    name_ + ": message lost, node " +
                        std::to_string(source) + " cannot reach node " +
                        std::to_string(destination) +
                        " over surviving links");
    return id;
  }

  if (source == destination) {
    // Degenerate loopback: delivered on the next NoC edge without touching
    // the fabric.
    const Picoseconds when = clock_->align_up(engine_->now());
    engine_->schedule_at(
        when, [cb = std::move(on_delivered), id, bytes, when] {
          if (cb) {
            cb(id, bytes, when);
          }
        });
    return id;
  }

  const Picoseconds sent_at = engine_->now();
  ++inflight_;
  adapters_[destination]->expect_message(
      id, bytes,
      [this, cb = std::move(on_delivered), sent_at](
          std::uint64_t message_id, Bytes message_bytes, Picoseconds now) {
        --inflight_;
        ++stats_.messages_delivered;
        stats_.message_latency_seconds.add((now - sent_at).seconds());
        if (cb) {
          cb(message_id, message_bytes, now);
        }
      });
  adapters_[source]->enqueue_message(destination, id, bytes);
  engine_->activate(ticking_handle_);
  return id;
}

bool Network::tick(Picoseconds now) {
  // Batched advancement: only routers holding flits do any per-tick work;
  // idle routers cost one counter load. Iteration stays in node-id order so
  // arbitration outcomes are identical to the full sweep.
  for (Router& router_ref : routers_) {
    if (router_ref.busy()) {
      move_router_flits(router_ref, now);
    }
  }
  for (const std::uint32_t node : adapter_nodes_) {
    Adapter& adapter_ref = *adapters_[node];
    if (adapter_ref.pending_flit() == nullptr) {
      continue;
    }
    Router& local_router = routers_[node];
    if (local_router.can_accept(PortDir::kLocal)) {
      Flit flit = adapter_ref.consume_pending(now);
      if (faults_ != nullptr) {
        maybe_corrupt(flit, node, now);
      }
      local_router.accept(
          PortDir::kLocal, flit,
          now + clock_->span(Cycles{config_.router.pipeline_cycles}),
          flit.is_head() ? route_from(node, flit) : PortDir::kLocal);
    }
  }
  if (tick_observer_) {
    tick_observer_(now);
  }
  return inflight_ > 0;
}

std::string Network::stats_report() const {
  std::ostringstream out;
  out << "NoC " << mesh_.width() << "x" << mesh_.height() << " ("
      << routing_->name() << "): " << stats_.messages_delivered
      << " messages, " << stats_.flits_ejected << " flits ejected\n";
  if (stats_.flit_latency_seconds.count() > 0) {
    out << "flit latency: mean "
        << stats_.flit_latency_seconds.mean() * 1e9 << " ns, max "
        << stats_.flit_latency_seconds.max() * 1e9 << " ns\n";
  }
  if (stats_.message_latency_seconds.count() > 0) {
    out << "message latency: mean "
        << stats_.message_latency_seconds.mean() * 1e6 << " us, max "
        << stats_.message_latency_seconds.max() * 1e6 << " us\n";
  }
  for (const Router& r : routers_) {
    if (r.flits_forwarded() == 0 && r.occupancy() == 0) {
      continue;
    }
    const Coord c = mesh_.coord_of(r.id());
    out << "  router (" << c.x << "," << c.y << "): "
        << r.flits_forwarded() << " flits forwarded, occupancy "
        << r.occupancy() << "\n";
  }
  return out.str();
}

void Network::move_router_flits(Router& router_ref, Picoseconds now) {
  std::array<bool, kPortCount> input_moved{};
  auto& routes = in_route_[router_ref.id()];

  // One readiness/routing probe per input per tick; every output considered
  // this tick shares the probes instead of re-walking the input buffers.
  std::array<const Flit*, kPortCount> fronts{};
  std::array<PortDir, kPortCount> head_route{};
  for (std::uint32_t in_idx = 0; in_idx < kPortCount; ++in_idx) {
    const auto in = static_cast<PortDir>(in_idx);
    fronts[in_idx] = router_ref.ready_front(in, now);
    if (fronts[in_idx] != nullptr && fronts[in_idx]->is_head()) {
      head_route[in_idx] = router_ref.front_route(in);
    }
  }

  for (std::uint32_t out_idx = 0; out_idx < kPortCount; ++out_idx) {
    const auto out = static_cast<PortDir>(out_idx);

    if (router_ref.output_locked(out)) {
      // Wormhole continuation: only the owning input may use this output.
      const PortDir in = router_ref.lock_owner(out);
      const auto in_idx = static_cast<std::size_t>(in);
      if (input_moved[in_idx] || fronts[in_idx] == nullptr) {
        continue;
      }
      sim_assert(routes[in_idx] == out,
                 "locked output does not match input route state");
      if (try_forward(router_ref, out, in, now)) {
        input_moved[in_idx] = true;
      }
      continue;
    }

    // Free output: arbitrate among input ports whose ready HEAD flit routes
    // here and whose downstream can take a flit right now.
    std::array<bool, kPortCount> candidates{};
    bool any = false;
    for (std::uint32_t in_idx = 0; in_idx < kPortCount; ++in_idx) {
      if (input_moved[in_idx]) {
        continue;
      }
      const Flit* front = fronts[in_idx];
      if (front == nullptr || !front->is_head() ||
          head_route[in_idx] != out) {
        continue;
      }
      candidates[in_idx] = true;
      any = true;
    }
    if (!any) {
      continue;
    }
    // Filter candidates by downstream space before arbitration so a blocked
    // winner does not burn the grant.
    if (out != PortDir::kLocal) {
      const auto neighbor_id = mesh_.neighbor(router_ref.id(), out);
      if (!neighbor_id.has_value() ||
          !routers_[*neighbor_id].can_accept(opposite(out))) {
        continue;
      }
    }
    const std::optional<PortDir> winner =
        router_ref.arbitrate(out, candidates);
    if (!winner.has_value()) {
      continue;
    }
    const auto win_idx = static_cast<std::size_t>(*winner);
    const Flit* head = fronts[win_idx];
    sim_assert(head != nullptr && head->is_head(), "arbitration state skew");
    routes[win_idx] = out;
    if (!head->is_tail()) {
      router_ref.lock_output(out, *winner);
    }
    if (try_forward(router_ref, out, *winner, now)) {
      input_moved[win_idx] = true;
    }
  }
}

bool Network::try_forward(Router& router_ref, PortDir out, PortDir in,
                          Picoseconds now) {
  const Flit* front = router_ref.ready_front(in, now);
  if (front == nullptr) {
    return false;
  }
  if (out == PortDir::kLocal) {
    const Flit flit = router_ref.pop(in);
    router_ref.count_forward();
    if (flit.is_tail()) {
      if (router_ref.output_locked(out) &&
          router_ref.lock_owner(out) == in) {
        router_ref.unlock_output(out);
      }
      in_route_[router_ref.id()][static_cast<std::size_t>(in)].reset();
    }
    eject_flit_stats(flit, now);
    Adapter* sink = adapters_[router_ref.id()].get();
    sim_assert(sink != nullptr, "flit ejected at node without adapter");
    sink->deliver(flit, now);
    return true;
  }

  const auto neighbor_id = mesh_.neighbor(router_ref.id(), out);
  sim_assert(neighbor_id.has_value(), "route points off the mesh edge");
  Router& next = routers_[*neighbor_id];
  const PortDir next_in = opposite(out);
  if (!next.can_accept(next_in)) {
    return false;
  }
  const Flit flit = router_ref.pop(in);
  router_ref.count_forward();
  if (flit.is_tail()) {
    if (router_ref.output_locked(out) && router_ref.lock_owner(out) == in) {
      router_ref.unlock_output(out);
    }
    in_route_[router_ref.id()][static_cast<std::size_t>(in)].reset();
  }
  next.accept(next_in, flit,
              now + clock_->span(Cycles{config_.router.pipeline_cycles}),
              flit.is_head() ? route_from(*neighbor_id, flit)
                             : PortDir::kLocal);
  return true;
}

void Network::eject_flit_stats(const Flit& flit, Picoseconds now) {
  ++stats_.flits_ejected;
  stats_.flit_latency_seconds.add(
      (now - Picoseconds{flit.injected_at_ps}).seconds());
}

Picoseconds Network::ideal_latency(Bytes bytes, std::uint32_t hops) const {
  return clock_->span(Cycles{
      idle_latency_cycles(bytes.count(), hops,
                          config_.max_packet_payload_bytes,
                          config_.router.pipeline_cycles)});
}

}  // namespace hybridic::noc
