// 2-D mesh topology: node ids, coordinates, ports and neighbor arithmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace hybridic::noc {

/// Router ports. kLocal attaches the network adapter.
enum class PortDir : std::uint8_t {
  kNorth = 0,
  kEast = 1,
  kSouth = 2,
  kWest = 3,
  kLocal = 4,
};
inline constexpr std::uint32_t kPortCount = 5;

[[nodiscard]] constexpr PortDir opposite(PortDir d) {
  switch (d) {
    case PortDir::kNorth:
      return PortDir::kSouth;
    case PortDir::kEast:
      return PortDir::kWest;
    case PortDir::kSouth:
      return PortDir::kNorth;
    case PortDir::kWest:
      return PortDir::kEast;
    case PortDir::kLocal:
      return PortDir::kLocal;
  }
  return PortDir::kLocal;
}

[[nodiscard]] std::string to_string(PortDir d);

/// Coordinates on the mesh; (0,0) is the south-west corner.
struct Coord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;

  friend constexpr bool operator==(Coord, Coord) = default;
};

/// A W x H mesh of routers addressed row-major: id = y * W + x.
class Mesh2D {
public:
  Mesh2D(std::uint32_t width, std::uint32_t height)
      : width_(width), height_(height) {
    require(width > 0 && height > 0,
            "mesh dimensions must be non-zero, got " + std::to_string(width) +
                "x" + std::to_string(height));
  }

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }
  [[nodiscard]] std::uint32_t node_count() const { return width_ * height_; }

  [[nodiscard]] Coord coord_of(std::uint32_t id) const {
    if (id >= node_count()) {
      throw_bad_node(id);
    }
    return Coord{id % width_, id / width_};
  }

  [[nodiscard]] std::uint32_t id_of(Coord c) const {
    if (c.x >= width_ || c.y >= height_) {
      throw_bad_coord(c);
    }
    return c.y * width_ + c.x;
  }

  /// Neighbor in direction `d`, if it exists on the mesh boundary.
  [[nodiscard]] std::optional<std::uint32_t> neighbor(std::uint32_t id,
                                                      PortDir d) const {
    const Coord c = coord_of(id);
    switch (d) {
      case PortDir::kNorth:
        return c.y + 1 < height_ ? std::optional{id_of({c.x, c.y + 1})}
                                 : std::nullopt;
      case PortDir::kEast:
        return c.x + 1 < width_ ? std::optional{id_of({c.x + 1, c.y})}
                                : std::nullopt;
      case PortDir::kSouth:
        return c.y > 0 ? std::optional{id_of({c.x, c.y - 1})} : std::nullopt;
      case PortDir::kWest:
        return c.x > 0 ? std::optional{id_of({c.x - 1, c.y})} : std::nullopt;
      case PortDir::kLocal:
        return std::nullopt;
    }
    return std::nullopt;
  }

  /// Manhattan distance in hops between two nodes.
  [[nodiscard]] std::uint32_t distance(std::uint32_t a, std::uint32_t b) const {
    const Coord ca = coord_of(a);
    const Coord cb = coord_of(b);
    const std::uint32_t dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
    const std::uint32_t dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
    return dx + dy;
  }

  /// Smallest mesh (squarish) with at least `nodes` routers.
  [[nodiscard]] static Mesh2D fitting(std::uint32_t nodes);

private:
  // Out-of-line so the error-message formatting stays off the inlined
  // hot paths.
  [[noreturn]] void throw_bad_node(std::uint32_t id) const;
  [[noreturn]] void throw_bad_coord(Coord c) const;

  std::uint32_t width_;
  std::uint32_t height_;
};

}  // namespace hybridic::noc
