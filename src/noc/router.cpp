#include "noc/router.hpp"

#include "util/error.hpp"

namespace hybridic::noc {

Router::Router(std::uint32_t id, RouterConfig config)
    : id_(id), config_(config) {
  require(config.buffer_flits > 0, "router buffer depth must be non-zero");
  require(config.pipeline_cycles > 0, "router pipeline must be >= 1 cycle");
  for (const std::uint32_t w : config.wrr_weights) {
    require(w > 0, "router WRR weights must be positive");
  }
  for (InputBuffer& buffer : inputs_) {
    buffer.slots.resize(config.buffer_flits);
  }
}

bool Router::can_accept(PortDir port) const {
  return inputs_[static_cast<std::size_t>(port)].count <
         config_.buffer_flits;
}

void Router::accept(PortDir port, const Flit& flit, Picoseconds ready_at,
                    PortDir route) {
  auto& buffer = inputs_[static_cast<std::size_t>(port)];
  sim_assert(buffer.count < config_.buffer_flits,
             "router input buffer overflow (backpressure violated)");
  buffer.push(BufferedFlit{flit, ready_at, route});
  ++buffered_;
}

const Flit* Router::ready_front(PortDir port, Picoseconds now) const {
  const auto& buffer = inputs_[static_cast<std::size_t>(port)];
  if (buffer.count == 0 || buffer.front().ready_at > now) {
    return nullptr;
  }
  return &buffer.front().flit;
}

PortDir Router::front_route(PortDir port) const {
  const auto& buffer = inputs_[static_cast<std::size_t>(port)];
  sim_assert(buffer.count != 0, "front_route on empty router input buffer");
  return buffer.front().route;
}

Flit Router::pop(PortDir port) {
  auto& buffer = inputs_[static_cast<std::size_t>(port)];
  sim_assert(buffer.count != 0, "pop from empty router input buffer");
  Flit flit = buffer.front().flit;
  buffer.pop();
  --buffered_;
  return flit;
}

bool Router::output_locked(PortDir out) const {
  return outputs_[static_cast<std::size_t>(out)].locked;
}

PortDir Router::lock_owner(PortDir out) const {
  return outputs_[static_cast<std::size_t>(out)].owner;
}

void Router::lock_output(PortDir out, PortDir owner_input) {
  auto& state = outputs_[static_cast<std::size_t>(out)];
  sim_assert(!state.locked, "double lock on router output");
  state.locked = true;
  state.owner = owner_input;
}

void Router::unlock_output(PortDir out) {
  outputs_[static_cast<std::size_t>(out)].locked = false;
}

std::optional<PortDir> Router::arbitrate(
    PortDir out, const std::array<bool, kPortCount>& candidates) {
  auto& state = outputs_[static_cast<std::size_t>(out)];
  // Continue granting the same input while it has WRR credit.
  if (state.credit > 0 && candidates[state.last_winner]) {
    --state.credit;
    return static_cast<PortDir>(state.last_winner);
  }
  for (std::uint32_t offset = 1; offset <= kPortCount; ++offset) {
    const std::uint32_t idx = (state.last_winner + offset) % kPortCount;
    if (candidates[idx]) {
      state.last_winner = idx;
      state.credit = config_.wrr_weights[idx] - 1;
      return static_cast<PortDir>(idx);
    }
  }
  return std::nullopt;
}

}  // namespace hybridic::noc
