#include "noc/vcd_trace.hpp"

namespace hybridic::noc {

VcdTracer::VcdTracer(Network& network) : network_(&network) {
  const std::uint32_t nodes = network.mesh().node_count();
  last_occupancy_.assign(nodes, UINT32_MAX);  // Force first dump.
  last_forwarded_.assign(nodes, UINT64_MAX);
  network_->set_tick_observer(
      [this](Picoseconds now) { sample(now); });
}

VcdTracer::~VcdTracer() {
  if (network_ != nullptr) {
    network_->set_tick_observer({});
  }
}

std::string VcdTracer::identifier(std::size_t index) {
  // VCD identifiers: printable ASCII 33..126, little-endian base-94.
  std::string id;
  do {
    id += static_cast<char>(33 + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdTracer::sample(Picoseconds now) {
  ++samples_;
  bool time_emitted = false;
  const auto emit_time = [this, now, &time_emitted] {
    if (!time_emitted) {
      body_ << '#' << now.count() << '\n';
      time_emitted = true;
    }
  };
  const std::uint32_t nodes = network_->mesh().node_count();
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const Router& router = network_->router(n);
    const std::uint32_t occupancy = router.occupancy();
    if (occupancy != last_occupancy_[n]) {
      emit_time();
      body_ << 'b';
      for (int bit = 7; bit >= 0; --bit) {
        body_ << ((occupancy >> bit) & 1U);
      }
      body_ << ' ' << identifier(2 * n) << '\n';
      last_occupancy_[n] = occupancy;
    }
    const std::uint64_t forwarded = router.flits_forwarded();
    if (forwarded != last_forwarded_[n]) {
      emit_time();
      body_ << 'b';
      for (int bit = 31; bit >= 0; --bit) {
        body_ << ((forwarded >> bit) & 1U);
      }
      body_ << ' ' << identifier(2 * n + 1) << '\n';
      last_forwarded_[n] = forwarded;
    }
  }
  first_sample_ = false;
}

std::string VcdTracer::finish() {
  std::ostringstream header;
  header << "$timescale 1ps $end\n";
  header << "$scope module noc $end\n";
  const std::uint32_t nodes = network_->mesh().node_count();
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const Coord c = network_->mesh().coord_of(n);
    header << "$var wire 8 " << identifier(2 * n) << " r" << c.x << "_"
           << c.y << "_occupancy $end\n";
    header << "$var wire 32 " << identifier(2 * n + 1) << " r" << c.x
           << "_" << c.y << "_forwarded $end\n";
  }
  header << "$upscope $end\n$enddefinitions $end\n";
  network_->set_tick_observer({});
  network_ = nullptr;
  return header.str() + body_.str();
}

}  // namespace hybridic::noc
