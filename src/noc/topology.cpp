#include "noc/topology.hpp"

#include <cmath>

namespace hybridic::noc {

std::string to_string(PortDir d) {
  switch (d) {
    case PortDir::kNorth:
      return "N";
    case PortDir::kEast:
      return "E";
    case PortDir::kSouth:
      return "S";
    case PortDir::kWest:
      return "W";
    case PortDir::kLocal:
      return "L";
  }
  return "?";
}

void Mesh2D::throw_bad_node(std::uint32_t id) const {
  throw ConfigError{"mesh node id " + std::to_string(id) +
                    " out of range for a " + std::to_string(width_) + "x" +
                    std::to_string(height_) + " mesh (valid ids: 0.." +
                    std::to_string(node_count() - 1) + ")"};
}

void Mesh2D::throw_bad_coord(Coord c) const {
  throw ConfigError{"mesh coord (" + std::to_string(c.x) + ", " +
                    std::to_string(c.y) + ") out of range for a " +
                    std::to_string(width_) + "x" + std::to_string(height_) +
                    " mesh"};
}

Mesh2D Mesh2D::fitting(std::uint32_t nodes) {
  require(nodes > 0, "mesh must host at least one node");
  std::uint32_t width = 1;
  while (width * width < nodes) {
    ++width;
  }
  std::uint32_t height = (nodes + width - 1) / width;
  return Mesh2D{width, height};
}

}  // namespace hybridic::noc
