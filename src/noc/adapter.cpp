#include "noc/adapter.hpp"

#include <algorithm>

#include "faults/injector.hpp"
#include "util/error.hpp"

namespace hybridic::noc {

Adapter::Adapter(std::string name, std::uint32_t node, AdapterKind kind,
                 std::uint32_t max_packet_payload_bytes)
    : name_(std::move(name)),
      node_(node),
      kind_(kind),
      max_packet_payload_bytes_(max_packet_payload_bytes) {
  require(max_packet_payload_bytes >= kFlitPayloadBytes,
          "packet payload must hold at least one flit");
}

void Adapter::enqueue_message(std::uint32_t destination,
                              std::uint64_t message_id, Bytes bytes) {
  std::uint64_t remaining = bytes.count();
  do {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(remaining, max_packet_payload_bytes_);
    enqueue_packet(destination, message_id, next_packet_id_++,
                   payload_flits(chunk));
    remaining -= chunk;
  } while (remaining > 0);
  ++messages_sent_;
}

void Adapter::expect_message(std::uint64_t message_id, Bytes bytes,
                             DeliveryCallback on_delivered) {
  Reassembly reassembly;
  reassembly.expected_payload_flits = payload_flits(bytes.count());
  reassembly.on_delivered = std::move(on_delivered);
  reassembly.bytes = bytes;
  const bool inserted =
      rx_.emplace(message_id, std::move(reassembly)).second;
  sim_assert(inserted, "duplicate message id in adapter reassembly");
}

void Adapter::enqueue_packet(std::uint32_t destination,
                             std::uint64_t message_id,
                             std::uint64_t packet_id,
                             std::uint64_t payload_flit_count) {
  Flit head;
  head.packet_id = packet_id;
  head.message_id = message_id;
  head.source = node_;
  head.destination = destination;
  head.kind =
      payload_flit_count == 0 ? FlitKind::kHeadTail : FlitKind::kHead;
  head.sequence = 0;
  tx_queue_.push_back(head);

  for (std::uint64_t i = 0; i < payload_flit_count; ++i) {
    Flit body = head;
    body.sequence = static_cast<std::uint32_t>(i + 1);
    body.kind =
        i + 1 == payload_flit_count ? FlitKind::kTail : FlitKind::kBody;
    tx_queue_.push_back(body);
  }
}

const Flit* Adapter::pending_flit() const {
  return tx_queue_.empty() ? nullptr : &tx_queue_.front();
}

Flit Adapter::consume_pending(Picoseconds now) {
  sim_assert(!tx_queue_.empty(), "consume_pending with empty tx queue");
  Flit flit = tx_queue_.front();
  tx_queue_.pop_front();
  flit.injected_at_ps = now.count();
  ++flits_injected_;
  return flit;
}

void Adapter::deliver(const Flit& flit, Picoseconds now) {
  auto it = rx_.find(flit.message_id);
  sim_assert(it != rx_.end(),
             "flit delivered for unknown message (network wiring bug)");
  Reassembly& reassembly = it->second;
  if (flit.is_head()) {
    reassembly.packet_payload_flits = 0;
    reassembly.packet_corrupted = false;
  }
  reassembly.packet_corrupted =
      reassembly.packet_corrupted || flit.corrupted;
  if (flit.kind == FlitKind::kBody || flit.kind == FlitKind::kTail) {
    ++reassembly.packet_payload_flits;
  }
  if (!flit.is_tail()) {
    return;  // payload commits at packet boundaries (CRC granularity)
  }
  if (reassembly.packet_corrupted) {
    if (on_corrupt_packet_ &&
        on_corrupt_packet_(flit, reassembly.packet_payload_flits)) {
      return;  // discarded; a clean copy is being retransmitted
    }
    if (faults_ != nullptr) {
      faults_->stats().corrupted_bytes +=
          reassembly.packet_payload_flits * kFlitPayloadBytes;
    }
  } else if (on_clean_packet_) {
    on_clean_packet_(flit);
  }
  if (flit.kind == FlitKind::kHeadTail) {
    reassembly.head_tail_seen = true;
  } else {
    reassembly.received_payload_flits += reassembly.packet_payload_flits;
  }
  const bool complete =
      reassembly.received_payload_flits >= reassembly.expected_payload_flits &&
      (reassembly.expected_payload_flits > 0 || reassembly.head_tail_seen);
  if (complete) {
    ++messages_received_;
    Reassembly done = std::move(reassembly);
    rx_.erase(it);
    if (done.on_delivered) {
      done.on_delivered(flit.message_id, done.bytes, now);
    }
  }
}

void Adapter::set_fault_hooks(faults::FaultInjector* injector,
                              CorruptPacketHandler on_corrupt,
                              CleanPacketHandler on_clean) {
  faults_ = injector;
  on_corrupt_packet_ = std::move(on_corrupt);
  on_clean_packet_ = std::move(on_clean);
}

void Adapter::resend_packet(std::uint32_t destination,
                            std::uint64_t message_id,
                            std::uint64_t packet_id,
                            std::uint64_t payload_flit_count) {
  enqueue_packet(destination, message_id, packet_id, payload_flit_count);
}

bool Adapter::busy() const { return !tx_queue_.empty() || !rx_.empty(); }

}  // namespace hybridic::noc
