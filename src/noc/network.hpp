// The assembled NoC: a 2-D mesh of wormhole routers plus per-node network
// adapters, driven cycle-by-cycle at the NoC clock (150 MHz in the paper).
//
// The Network implements sim::Ticking and suspends itself whenever no flit
// is in flight, so an idle NoC adds no simulation cost.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "noc/adapter.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "util/units.hpp"

namespace hybridic::faults {
class FaultInjector;
}  // namespace hybridic::faults

namespace hybridic::noc {

/// Network-level configuration.
struct NetworkConfig {
  RouterConfig router;
  std::uint32_t max_packet_payload_bytes = 256;
  std::string routing = "XY";
};

/// Aggregate NoC statistics.
struct NetworkStats {
  std::uint64_t flits_ejected = 0;
  std::uint64_t messages_delivered = 0;
  sim::Summary flit_latency_seconds;
  sim::Summary message_latency_seconds;
};

/// A mesh NoC instance bound to a simulation engine and clock domain.
class Network : public sim::Ticking {
public:
  Network(std::string name, sim::Engine& engine,
          const sim::ClockDomain& clock, Mesh2D mesh, NetworkConfig config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attach an adapter at mesh node `node`. Each node hosts at most one.
  Adapter& attach_adapter(std::uint32_t node, std::string name,
                          AdapterKind kind);

  /// Send `bytes` from the adapter at `source` to the adapter at
  /// `destination`; `on_delivered` fires when the last flit lands. Returns
  /// the message id. Both nodes must have adapters attached.
  std::uint64_t send(std::uint32_t source, std::uint32_t destination,
                     Bytes bytes, DeliveryCallback on_delivered);

  /// One NoC clock edge: move flits through routers, then inject from
  /// adapters. Returns true while traffic remains.
  bool tick(Picoseconds now) override;

  /// Lower-bound latency for a `bytes` message over `hops` hops on an idle
  /// network (serialization + per-hop pipeline), for analytical estimates.
  [[nodiscard]] Picoseconds ideal_latency(Bytes bytes,
                                          std::uint32_t hops) const;

  [[nodiscard]] const Mesh2D& mesh() const { return mesh_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] Router& router(std::uint32_t node);
  [[nodiscard]] Adapter* adapter(std::uint32_t node);
  [[nodiscard]] const sim::ClockDomain& clock() const { return *clock_; }
  [[nodiscard]] std::uint64_t inflight_messages() const { return inflight_; }

  /// Called after every NoC tick with the tick time — used by tracers.
  using TickObserver = std::function<void(Picoseconds)>;
  void set_tick_observer(TickObserver observer) {
    tick_observer_ = std::move(observer);
  }

  /// Human-readable per-router statistics (forwarded flits, occupancy)
  /// plus network-level latency summaries.
  [[nodiscard]] std::string stats_report() const;

  /// Enable fault injection: builds the surviving-link state from the
  /// injector's dead-link spec (switching all routing to fault-aware BFS
  /// next hops), and wires the CRC/retransmission hooks into every adapter
  /// when the resilience spec enables them. Null disables everything.
  void set_faults(faults::FaultInjector* injector);

  /// True when `src` can still reach `dst` (always true without dead
  /// links). A send over an unreachable pair is recorded as lost and never
  /// delivered — the wait_all watchdog then names the stuck op.
  [[nodiscard]] bool route_exists(std::uint32_t src,
                                  std::uint32_t dst) const;

  /// True when the fault-aware route from `src` to `dst` deviates from the
  /// configured base algorithm's path (i.e. detours around a dead link).
  [[nodiscard]] bool route_detoured(std::uint32_t src,
                                    std::uint32_t dst) const;

  [[nodiscard]] const LinkState* link_state() const {
    return link_state_.get();
  }

private:
  void move_router_flits(Router& router, Picoseconds now);
  bool try_forward(Router& router, PortDir out, PortDir in, Picoseconds now);
  void eject_flit_stats(const Flit& flit, Picoseconds now);

  /// Routing decision for `flit` as seen from router `node`, computed once
  /// when a flit is accepted into a buffer (cached in BufferedFlit::route).
  /// With dead links present the decision comes from the fault-aware BFS
  /// table instead of the base algorithm.
  [[nodiscard]] PortDir route_from(std::uint32_t node,
                                   const Flit& flit) const;

  void wire_adapter_faults(Adapter& adapter_ref);
  void maybe_corrupt(Flit& flit, std::uint32_t node, Picoseconds now);
  /// CRC-failure decision for a packet ending in `tail` at `dest_node`.
  bool handle_corrupt_packet(std::uint32_t dest_node, const Flit& tail,
                             std::uint64_t payload_flits);

  std::string name_;
  sim::Engine* engine_;
  const sim::ClockDomain* clock_;
  Mesh2D mesh_;
  NetworkConfig config_;
  std::unique_ptr<Routing> routing_;

  std::vector<Router> routers_;
  std::vector<std::unique_ptr<Adapter>> adapters_;  // indexed by node id
  /// Node ids with adapters attached, ascending — the per-tick injection
  /// sweep walks only these instead of every mesh node.
  std::vector<std::uint32_t> adapter_nodes_;
  /// Per-input current output assignment for in-flight packets.
  std::vector<std::array<std::optional<PortDir>, kPortCount>> in_route_;

  std::size_t ticking_handle_ = 0;
  std::uint64_t next_message_id_ = 1;
  std::uint64_t inflight_ = 0;
  NetworkStats stats_;
  TickObserver tick_observer_;

  faults::FaultInjector* faults_ = nullptr;
  std::unique_ptr<LinkState> link_state_;
  /// Retransmission attempts per (source node, packet id); entries retire
  /// when the packet finally completes clean or exhausts its budget.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>
      retransmit_attempts_;
};

}  // namespace hybridic::noc
