// Network adapters (NAs).
//
// Paper Table II distinguishes the "NA HW Accelerator" (396/426 LUT/reg),
// which packetizes a kernel's output stream, from the lighter "NA local
// memory" (60/114), which only sinks packets into a BRAM port. Functionally
// an adapter:
//  - splits an outgoing message into packets of bounded payload,
//  - injects one flit per NoC cycle into the local router port,
//  - reassembles incoming packets and fires a delivery callback when the
//    whole message has arrived.
//
// Message ids are allocated by the Network, which pairs the sender's
// enqueue_message() with expect_message() on the destination adapter.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>

#include "noc/flit.hpp"
#include "noc/topology.hpp"
#include "util/units.hpp"

namespace hybridic::faults {
class FaultInjector;
}  // namespace hybridic::faults

namespace hybridic::noc {

/// Adapter flavor — affects the resource model, not the protocol.
enum class AdapterKind : std::uint8_t { kAccelerator, kLocalMemory };

/// Completed message notification: (message_id, bytes, delivery_time).
using DeliveryCallback =
    std::function<void(std::uint64_t, Bytes, Picoseconds)>;

/// CRC-failure decision hook: given the tail flit of a corrupted packet and
/// its payload flit count, return true to discard the packet (a clean copy
/// will be retransmitted) or false to accept it as-corrupted.
using CorruptPacketHandler =
    std::function<bool(const Flit&, std::uint64_t)>;

/// Notification that a packet completed uncorrupted (used by the Network to
/// retire retransmission bookkeeping).
using CleanPacketHandler = std::function<void(const Flit&)>;

/// Per-node network adapter.
class Adapter {
public:
  Adapter(std::string name, std::uint32_t node, AdapterKind kind,
          std::uint32_t max_packet_payload_bytes);

  /// Packetize `bytes` for `message_id` towards `destination` into the
  /// transmit queue. Called by the Network.
  void enqueue_message(std::uint32_t destination, std::uint64_t message_id,
                       Bytes bytes);

  /// Register reassembly state for an incoming message. Called by the
  /// Network on the destination adapter when the sender enqueues.
  void expect_message(std::uint64_t message_id, Bytes bytes,
                      DeliveryCallback on_delivered);

  /// Next flit to inject this cycle, if any (does not consume).
  [[nodiscard]] const Flit* pending_flit() const;

  /// Consume the flit returned by pending_flit(), stamping injection time.
  Flit consume_pending(Picoseconds now);

  /// Sink a flit ejected at this node. Fires the registered delivery
  /// callback when the final payload flit of a message lands.
  void deliver(const Flit& flit, Picoseconds now);

  /// True while the adapter still has flits to inject or partial messages
  /// in reassembly.
  [[nodiscard]] bool busy() const;

  /// Wire the fault-injection hooks (Network-owned). `on_corrupt` is only
  /// set when CRC/retransmission is enabled; null hooks keep the fault-free
  /// delivery path unchanged.
  void set_fault_hooks(faults::FaultInjector* injector,
                       CorruptPacketHandler on_corrupt,
                       CleanPacketHandler on_clean);

  /// Re-inject one packet of `payload_flit_count` flits with its original
  /// packet id (retransmission of a corrupted packet).
  void resend_packet(std::uint32_t destination, std::uint64_t message_id,
                     std::uint64_t packet_id,
                     std::uint64_t payload_flit_count);

  [[nodiscard]] std::uint32_t node() const { return node_; }
  [[nodiscard]] AdapterKind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_received() const {
    return messages_received_;
  }
  [[nodiscard]] std::uint64_t flits_injected() const {
    return flits_injected_;
  }
  [[nodiscard]] std::size_t tx_backlog() const { return tx_queue_.size(); }

private:
  struct Reassembly {
    std::uint64_t expected_payload_flits = 0;
    std::uint64_t received_payload_flits = 0;
    bool head_tail_seen = false;
    DeliveryCallback on_delivered;
    Bytes bytes{0};
    // Packets of one message arrive flit-contiguous (serial injection, one
    // deterministic path), so per-packet CRC state is two scalars reset at
    // each head flit.
    std::uint64_t packet_payload_flits = 0;
    bool packet_corrupted = false;
  };

  void enqueue_packet(std::uint32_t destination, std::uint64_t message_id,
                      std::uint64_t packet_id,
                      std::uint64_t payload_flit_count);

  std::string name_;
  std::uint32_t node_;
  AdapterKind kind_;
  std::uint32_t max_packet_payload_bytes_;

  std::deque<Flit> tx_queue_;
  std::unordered_map<std::uint64_t, Reassembly> rx_;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t flits_injected_ = 0;
  std::uint64_t next_packet_id_ = 1;

  faults::FaultInjector* faults_ = nullptr;
  CorruptPacketHandler on_corrupt_packet_;
  CleanPacketHandler on_clean_packet_;
};

}  // namespace hybridic::noc
