// Input-buffered wormhole router with weighted-round-robin output
// arbitration, modelled after the scalable QoS router of Heisswolf et al.
// that the paper adapts (Table II: 309 LUTs / 353 registers, 150 MHz).
//
// Switching discipline:
//  - 5 ports (N/E/S/W/Local), one flit per port per cycle in each direction;
//  - wormhole: a HEAD flit that wins an output locks that output for its
//    packet until the TAIL passes, so packets never interleave on a link;
//  - arbitration: weighted round-robin over the input ports competing for
//    a free output;
//  - credit-style backpressure: a flit only advances when the downstream
//    input buffer has a free slot;
//  - per-hop pipeline latency of `pipeline_cycles` before a buffered flit
//    becomes eligible to advance.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "noc/flit.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "util/units.hpp"

namespace hybridic::noc {

/// Router micro-architecture parameters.
struct RouterConfig {
  std::uint32_t buffer_flits = 8;     ///< Input FIFO depth per port.
  std::uint32_t pipeline_cycles = 2;  ///< Per-hop latency (route + traverse).
  std::array<std::uint32_t, kPortCount> wrr_weights{1, 1, 1, 1, 1};
};

/// A flit with its in-buffer readiness timestamp and its routing decision,
/// computed once on acceptance instead of once per tick while the flit
/// waits at the head of its buffer. Only head flits carry a meaningful
/// route; body/tail flits follow their packet's wormhole lock.
struct BufferedFlit {
  Flit flit;
  Picoseconds ready_at{0};
  PortDir route = PortDir::kLocal;
};

/// One mesh router. The Network drives `tick` and performs inter-router
/// flit movement through `accept`/`take_front`.
class Router {
public:
  Router(std::uint32_t id, RouterConfig config);

  /// True when input `port` has a free buffer slot.
  [[nodiscard]] bool can_accept(PortDir port) const;

  /// Push a flit into input `port`; it becomes eligible to advance at
  /// `ready_at` (arrival time + pipeline latency, set by the Network).
  /// `route` is the Network's precomputed output port for the flit.
  void accept(PortDir port, const Flit& flit, Picoseconds ready_at,
              PortDir route = PortDir::kLocal);

  /// Front flit of input `port` if present and ready at `now`.
  [[nodiscard]] const Flit* ready_front(PortDir port, Picoseconds now) const;

  /// Cached routing decision of the front flit of input `port`; the buffer
  /// must not be empty.
  [[nodiscard]] PortDir front_route(PortDir port) const;

  /// Pop the front flit of input `port`.
  Flit pop(PortDir port);

  /// Output-lock bookkeeping for wormhole switching.
  [[nodiscard]] bool output_locked(PortDir out) const;
  [[nodiscard]] PortDir lock_owner(PortDir out) const;
  void lock_output(PortDir out, PortDir owner_input);
  void unlock_output(PortDir out);

  /// Weighted-round-robin winner among `candidates` (input ports bitmask
  /// encoded as bool array) for output `out`. Updates WRR state.
  [[nodiscard]] std::optional<PortDir> arbitrate(
      PortDir out, const std::array<bool, kPortCount>& candidates);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const RouterConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t flits_forwarded() const { return forwarded_; }
  void count_forward() { ++forwarded_; }

  /// Total flits currently buffered across all inputs (O(1)).
  [[nodiscard]] std::uint32_t occupancy() const { return buffered_; }

  /// True when any input holds a flit — the Network's cheap skip test for
  /// idle routers on the per-tick sweep.
  [[nodiscard]] bool busy() const { return buffered_ != 0; }

private:
  struct OutputState {
    bool locked = false;
    PortDir owner = PortDir::kLocal;
    std::uint32_t last_winner = kPortCount - 1;  ///< WRR pointer.
    std::uint32_t credit = 0;
  };

  /// Fixed-capacity ring FIFO sized to the configured buffer depth — the
  /// input buffers never reallocate or chase deque block pointers on the
  /// per-tick hot path.
  struct InputBuffer {
    std::vector<BufferedFlit> slots;
    std::uint32_t head = 0;
    std::uint32_t count = 0;

    [[nodiscard]] BufferedFlit& front() { return slots[head]; }
    [[nodiscard]] const BufferedFlit& front() const { return slots[head]; }
    void push(const BufferedFlit& flit) {
      slots[(head + count) % slots.size()] = flit;
      ++count;
    }
    void pop() {
      head = static_cast<std::uint32_t>((head + 1) % slots.size());
      --count;
    }
  };

  std::uint32_t id_;
  RouterConfig config_;
  std::array<InputBuffer, kPortCount> inputs_;
  std::array<OutputState, kPortCount> outputs_;
  std::uint64_t forwarded_ = 0;
  std::uint32_t buffered_ = 0;
};

}  // namespace hybridic::noc
