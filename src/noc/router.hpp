// Input-buffered wormhole router with weighted-round-robin output
// arbitration, modelled after the scalable QoS router of Heisswolf et al.
// that the paper adapts (Table II: 309 LUTs / 353 registers, 150 MHz).
//
// Switching discipline:
//  - 5 ports (N/E/S/W/Local), one flit per port per cycle in each direction;
//  - wormhole: a HEAD flit that wins an output locks that output for its
//    packet until the TAIL passes, so packets never interleave on a link;
//  - arbitration: weighted round-robin over the input ports competing for
//    a free output;
//  - credit-style backpressure: a flit only advances when the downstream
//    input buffer has a free slot;
//  - per-hop pipeline latency of `pipeline_cycles` before a buffered flit
//    becomes eligible to advance.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>

#include "noc/flit.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "util/units.hpp"

namespace hybridic::noc {

/// Router micro-architecture parameters.
struct RouterConfig {
  std::uint32_t buffer_flits = 8;     ///< Input FIFO depth per port.
  std::uint32_t pipeline_cycles = 2;  ///< Per-hop latency (route + traverse).
  std::array<std::uint32_t, kPortCount> wrr_weights{1, 1, 1, 1, 1};
};

/// A flit with its in-buffer readiness timestamp.
struct BufferedFlit {
  Flit flit;
  Picoseconds ready_at{0};
};

/// One mesh router. The Network drives `tick` and performs inter-router
/// flit movement through `accept`/`take_front`.
class Router {
public:
  Router(std::uint32_t id, RouterConfig config);

  /// True when input `port` has a free buffer slot.
  [[nodiscard]] bool can_accept(PortDir port) const;

  /// Push a flit into input `port`; it becomes eligible to advance at
  /// `ready_at` (arrival time + pipeline latency, set by the Network).
  void accept(PortDir port, const Flit& flit, Picoseconds ready_at);

  /// Front flit of input `port` if present and ready at `now`.
  [[nodiscard]] const Flit* ready_front(PortDir port, Picoseconds now) const;

  /// Pop the front flit of input `port`.
  Flit pop(PortDir port);

  /// Output-lock bookkeeping for wormhole switching.
  [[nodiscard]] bool output_locked(PortDir out) const;
  [[nodiscard]] PortDir lock_owner(PortDir out) const;
  void lock_output(PortDir out, PortDir owner_input);
  void unlock_output(PortDir out);

  /// Weighted-round-robin winner among `candidates` (input ports bitmask
  /// encoded as bool array) for output `out`. Updates WRR state.
  [[nodiscard]] std::optional<PortDir> arbitrate(
      PortDir out, const std::array<bool, kPortCount>& candidates);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const RouterConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t flits_forwarded() const { return forwarded_; }
  void count_forward() { ++forwarded_; }

  /// Total flits currently buffered across all inputs.
  [[nodiscard]] std::uint32_t occupancy() const;

private:
  struct OutputState {
    bool locked = false;
    PortDir owner = PortDir::kLocal;
    std::uint32_t last_winner = kPortCount - 1;  ///< WRR pointer.
    std::uint32_t credit = 0;
  };

  std::uint32_t id_;
  RouterConfig config_;
  std::array<std::deque<BufferedFlit>, kPortCount> inputs_;
  std::array<OutputState, kPortCount> outputs_;
  std::uint64_t forwarded_ = 0;
};

}  // namespace hybridic::noc
