// Flit-level data units for the wormhole NoC.
//
// The NoC follows the architecture of Heisswolf et al. (the router the paper
// adapts, Table II: 309 LUTs / 353 registers @150 MHz): wormhole switching
// with 32-bit flits and weighted-round-robin output arbitration. A message
// is split into packets; a packet is HEAD + payload flits, the last marked
// TAIL (or a single HEAD_TAIL for header-only packets).
#pragma once

#include <cstdint>

namespace hybridic::noc {

/// Position of a flit inside its packet.
enum class FlitKind : std::uint8_t { kHead, kBody, kTail, kHeadTail };

/// One 32-bit flit. The simulator does not carry payload bits — only the
/// bookkeeping needed for routing, reassembly and statistics.
struct Flit {
  std::uint64_t packet_id = 0;   ///< Unique per packet.
  std::uint64_t message_id = 0;  ///< Messages may span several packets.
  std::uint32_t source = 0;      ///< Source node id.
  std::uint32_t destination = 0; ///< Destination node id.
  FlitKind kind = FlitKind::kHead;
  std::uint32_t sequence = 0;    ///< Flit index within the packet.
  std::uint64_t injected_at_ps = 0;  ///< For latency statistics.
  bool corrupted = false;        ///< Set by fault injection in transit.

  [[nodiscard]] bool is_head() const {
    return kind == FlitKind::kHead || kind == FlitKind::kHeadTail;
  }
  [[nodiscard]] bool is_tail() const {
    return kind == FlitKind::kTail || kind == FlitKind::kHeadTail;
  }
};

/// Bytes of application payload carried per body flit (32-bit phits).
inline constexpr std::uint32_t kFlitPayloadBytes = 4;

/// Payload flits needed for `bytes` of application data.
[[nodiscard]] constexpr std::uint64_t payload_flits(std::uint64_t bytes) {
  return (bytes + kFlitPayloadBytes - 1) / kFlitPayloadBytes;
}

/// Idle-network latency oracle, in NoC cycles: the time for a `bytes`
/// message to fully arrive `hops` hops away on an otherwise idle network.
/// Serialization (payload flits plus one head flit per packet) plus the
/// router pipeline at every hop and the final ejection stage. This is the
/// single source of truth shared by the flit-level simulator
/// (`Network::ideal_latency`) and the analytic executors — keep them in
/// sync by construction, not by copy.
[[nodiscard]] constexpr std::uint64_t idle_latency_cycles(
    std::uint64_t bytes, std::uint32_t hops,
    std::uint32_t max_packet_payload_bytes, std::uint32_t pipeline_cycles) {
  const std::uint64_t packets =
      bytes == 0
          ? 1
          : (bytes + max_packet_payload_bytes - 1) / max_packet_payload_bytes;
  return payload_flits(bytes) + packets +
         static_cast<std::uint64_t>(pipeline_cycles) * (hops + 1);
}

}  // namespace hybridic::noc
