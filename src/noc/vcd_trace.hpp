// VCD (Value Change Dump) tracing of NoC activity: per-router input-buffer
// occupancy and cumulative forwarded-flit counts sampled every NoC cycle,
// viewable in GTKWave or any VCD viewer.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "noc/network.hpp"

namespace hybridic::noc {

/// Collects a VCD trace from a Network. Attach before traffic starts; the
/// tracer samples on every NoC tick via the network's tick observer.
class VcdTracer {
public:
  /// Attaches to `network` (replaces any previous observer).
  explicit VcdTracer(Network& network);

  VcdTracer(const VcdTracer&) = delete;
  VcdTracer& operator=(const VcdTracer&) = delete;
  ~VcdTracer();

  /// Finish the trace and return the VCD document.
  [[nodiscard]] std::string finish();

  [[nodiscard]] std::uint64_t samples() const { return samples_; }

private:
  void sample(Picoseconds now);
  [[nodiscard]] static std::string identifier(std::size_t index);

  Network* network_;
  std::ostringstream body_;
  std::vector<std::uint32_t> last_occupancy_;
  std::vector<std::uint64_t> last_forwarded_;
  std::uint64_t samples_ = 0;
  bool first_sample_ = true;
};

}  // namespace hybridic::noc
