#include "core/noc_placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace hybridic::core {

namespace {

/// Symmetric traffic lookup built once for the solvers.
class TrafficMatrix {
public:
  explicit TrafficMatrix(const PlacementProblem& problem)
      : n_(problem.attachment_count), data_(n_ * n_, 0) {
    for (const auto& [a, b, bytes] : problem.traffic) {
      require(a < n_ && b < n_, "placement traffic index out of range");
      data_[a * n_ + b] += bytes;
      data_[b * n_ + a] += bytes;
    }
  }

  [[nodiscard]] std::uint64_t at(std::uint32_t a, std::uint32_t b) const {
    return data_[a * n_ + b];
  }
  [[nodiscard]] std::uint64_t total_for(std::uint32_t a) const {
    std::uint64_t sum = 0;
    for (std::uint32_t b = 0; b < n_; ++b) {
      sum += at(a, b);
    }
    return sum;
  }
  [[nodiscard]] std::uint32_t size() const { return n_; }

private:
  std::uint32_t n_;
  std::vector<std::uint64_t> data_;
};

std::uint64_t cost_of(const TrafficMatrix& traffic, const noc::Mesh2D& mesh,
                      const std::vector<std::uint32_t>& node_of) {
  std::uint64_t cost = 0;
  for (std::uint32_t a = 0; a < traffic.size(); ++a) {
    for (std::uint32_t b = a + 1; b < traffic.size(); ++b) {
      const std::uint64_t bytes = traffic.at(a, b);
      if (bytes > 0) {
        cost += bytes * mesh.distance(node_of[a], node_of[b]);
      }
    }
  }
  return cost;
}

/// One pass of best-improvement pairwise swaps; returns true if improved.
bool improve_once(const TrafficMatrix& traffic, const noc::Mesh2D& mesh,
                  std::vector<std::uint32_t>& node_of, std::uint64_t& cost) {
  const std::uint32_t n = traffic.size();
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      std::swap(node_of[a], node_of[b]);
      const std::uint64_t candidate = cost_of(traffic, mesh, node_of);
      if (candidate < cost) {
        cost = candidate;
        return true;
      }
      std::swap(node_of[a], node_of[b]);
    }
  }
  return false;
}

}  // namespace

std::uint64_t placement_cost(const PlacementProblem& problem,
                             const noc::Mesh2D& mesh,
                             const std::vector<std::uint32_t>& node_of) {
  require(node_of.size() == problem.attachment_count,
          "placement assignment size mismatch");
  return cost_of(TrafficMatrix{problem}, mesh, node_of);
}

PlacementResult place_attachments(const PlacementProblem& problem) {
  require(problem.attachment_count > 0,
          "placement requires at least one attachment");
  const TrafficMatrix traffic{problem};
  const noc::Mesh2D mesh = noc::Mesh2D::fitting(problem.attachment_count);
  const std::uint32_t n = problem.attachment_count;

  // Greedy: seed with the most-communicating attachment at the mesh center;
  // place each subsequent attachment (by descending total traffic) at the
  // free node minimizing incremental cost to already-placed peers.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&traffic](std::uint32_t a, std::uint32_t b) {
                     return traffic.total_for(a) > traffic.total_for(b);
                   });

  std::vector<bool> node_used(mesh.node_count(), false);
  std::vector<std::uint32_t> node_of(n, 0);
  std::vector<bool> placed(n, false);

  const std::uint32_t center =
      mesh.id_of({mesh.width() / 2, mesh.height() / 2});
  node_of[order[0]] = center;
  node_used[center] = true;
  placed[order[0]] = true;

  for (std::uint32_t k = 1; k < n; ++k) {
    const std::uint32_t item = order[k];
    std::uint64_t best_cost = UINT64_MAX;
    std::uint32_t best_node = 0;
    for (std::uint32_t node = 0; node < mesh.node_count(); ++node) {
      if (node_used[node]) {
        continue;
      }
      std::uint64_t incremental = 0;
      for (std::uint32_t other = 0; other < n; ++other) {
        if (placed[other] && traffic.at(item, other) > 0) {
          incremental +=
              traffic.at(item, other) * mesh.distance(node, node_of[other]);
        }
      }
      if (incremental < best_cost) {
        best_cost = incremental;
        best_node = node;
      }
    }
    node_of[item] = best_node;
    node_used[best_node] = true;
    placed[item] = true;
  }

  std::uint64_t cost = cost_of(traffic, mesh, node_of);
  while (improve_once(traffic, mesh, node_of, cost)) {
  }
  return PlacementResult{mesh, std::move(node_of), cost};
}

PlacementResult place_attachments_annealed(const PlacementProblem& problem,
                                           std::uint64_t seed,
                                           std::uint32_t iterations) {
  PlacementResult best = place_attachments(problem);
  if (problem.attachment_count < 3) {
    return best;
  }
  const TrafficMatrix traffic{problem};
  Rng rng{seed};
  std::vector<std::uint32_t> current = best.node_of;
  std::uint64_t current_cost = best.cost;
  double temperature =
      static_cast<double>(std::max<std::uint64_t>(best.cost, 1));

  for (std::uint32_t i = 0; i < iterations; ++i) {
    const auto a =
        static_cast<std::uint32_t>(rng.below(problem.attachment_count));
    auto b = static_cast<std::uint32_t>(rng.below(problem.attachment_count));
    if (a == b) {
      b = (b + 1) % problem.attachment_count;
    }
    std::swap(current[a], current[b]);
    const std::uint64_t candidate = cost_of(traffic, best.mesh, current);
    const double delta = static_cast<double>(candidate) -
                         static_cast<double>(current_cost);
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9))) {
      current_cost = candidate;
      if (current_cost < best.cost) {
        best.cost = current_cost;
        best.node_of = current;
      }
    } else {
      std::swap(current[a], current[b]);
    }
    temperature *= 0.9995;
  }
  return best;
}

}  // namespace hybridic::core
