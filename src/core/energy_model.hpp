// Activity-based power/energy model (the XPower-Analyzer substitute).
//
// The paper observes that power is "almost identical" between the baseline
// and the proposed system (the interconnect adds a few percent of logic),
// so energy savings track execution-time savings. This model reproduces
// that mechanism: static power dominates, dynamic power scales with
// occupied LUTs/registers, and energy = power × simulated execution time.
#pragma once

#include "core/resource_model.hpp"

namespace hybridic::core {

/// Power-model coefficients (Virtex-5 class device).
struct PowerModel {
  double static_watts = 1.6;         ///< Device static + PowerPC + DDR I/O.
  double watts_per_kilo_lut = 0.021; ///< Dynamic, at design activity.
  double watts_per_kilo_reg = 0.012;
};

/// Total power of a system occupying `resources`.
[[nodiscard]] double system_power_watts(Resources resources,
                                        const PowerModel& model);

/// Energy for a run of `seconds` at `watts`.
[[nodiscard]] double energy_joules(double watts, double seconds);

}  // namespace hybridic::core
