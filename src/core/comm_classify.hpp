// Communication-topology classification — Equation 4 of the paper.
//
// Each kernel is classified by where its input comes from and where its
// output goes:
//   receive: R1 = kernels only, R2 = host only, R3 = both;
//   send:    S1 = kernels only, S2 = host only, S3 = both.
// The cross product {R1,R2,R3}×{S1,S2,S3} is the domain of the adaptive
// mapping function (Table I).
#pragma once

#include <cstdint>
#include <string>

#include "core/kernel_model.hpp"

namespace hybridic::core {

enum class RecvClass : std::uint8_t { kR1 = 1, kR2 = 2, kR3 = 3 };
enum class SendClass : std::uint8_t { kS1 = 1, kS2 = 2, kS3 = 3 };

/// A kernel's communication topology case.
struct CommClass {
  RecvClass recv = RecvClass::kR2;
  SendClass send = SendClass::kS2;

  friend constexpr bool operator==(CommClass, CommClass) = default;
};

/// Classify from Eq-1 quantities. A kernel with no input at all (or no
/// output at all) degrades to the host-only class: its data movement, if
/// any ever appears, flows through the system infrastructure by default,
/// which Table I maps to the cheapest interconnect.
[[nodiscard]] CommClass classify(const KernelQuantities& q);

[[nodiscard]] std::string to_string(RecvClass r);
[[nodiscard]] std::string to_string(SendClass s);
[[nodiscard]] std::string to_string(CommClass c);

}  // namespace hybridic::core
