#include "core/json_export.hpp"

#include <sstream>

#include "util/error.hpp"

namespace hybridic::core {

namespace {

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
    }
    out += ch;
  }
  out += '"';
  return out;
}

template <typename T, typename Render>
void render_array(std::ostringstream& out, const std::vector<T>& items,
                  const char* indent, Render&& render) {
  out << "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << indent;
    render(items[i]);
  }
  if (!items.empty()) {
    out << "\n" << indent + 2;
  }
  out << "]";
}

}  // namespace

std::string to_json(const DesignResult& design,
                    const std::vector<KernelSpec>& specs) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"solution\": " << quoted(design.solution_tag()) << ",\n";

  out << "  \"instances\": ";
  render_array(out, design.instances, "    ",
               [&out, &specs](const KernelInstance& inst) {
                 require(inst.spec_index < specs.size(),
                         "to_json: instance references missing spec");
                 out << "{\"name\": " << quoted(inst.name)
                     << ", \"spec\": " << quoted(specs[inst.spec_index].name)
                     << ", \"function\": " << inst.function
                     << ", \"work_share\": " << inst.work_share
                     << ", \"comm_class\": "
                     << quoted(to_string(inst.comm_class))
                     << ", \"mapping\": {\"kernel\": "
                     << quoted(to_string(inst.mapping.kernel))
                     << ", \"memory\": "
                     << quoted(to_string(inst.mapping.memory)) << "}}";
               });
  out << ",\n";

  out << "  \"shared_memory_pairs\": ";
  render_array(out, design.shared_pairs, "    ",
               [&out, &design](const SharedMemoryPairing& pair) {
                 out << "{\"producer\": "
                     << quoted(design.instances[pair.producer_instance]
                                   .name)
                     << ", \"consumer\": "
                     << quoted(design.instances[pair.consumer_instance]
                                   .name)
                     << ", \"bytes\": " << pair.bytes.count()
                     << ", \"style\": "
                     << quoted(pair.style == mem::SharingStyle::kCrossbar
                                   ? "crossbar"
                                   : "direct")
                     << "}";
               });
  out << ",\n";

  out << "  \"noc\": ";
  if (design.noc.has_value()) {
    out << "{\"mesh\": {\"width\": " << design.noc->mesh_width
        << ", \"height\": " << design.noc->mesh_height
        << "}, \"attachments\": ";
    render_array(out, design.noc->attachments, "    ",
                 [&out, &design](const NocAttachment& a) {
                   out << "{\"instance\": "
                       << quoted(design.instances[a.instance].name)
                       << ", \"kind\": "
                       << quoted(a.kind == NocNodeKind::kKernel
                                     ? "kernel"
                                     : "local_memory")
                       << ", \"node\": " << a.node << "}";
                 });
    out << "}";
  } else {
    out << "null";
  }
  out << ",\n";

  out << "  \"parallel\": {\"host_pipelined\": ";
  render_array(out, design.parallel.host_pipelined, "    ",
               [&out, &design](std::size_t i) {
                 out << quoted(design.instances[i].name);
               });
  out << ", \"streamed\": ";
  render_array(out, design.parallel.streamed, "    ",
               [&out, &design](const StreamedEdge& e) {
                 out << "{\"producer\": "
                     << quoted(
                            design.instances[e.producer_instance].name)
                     << ", \"consumer\": "
                     << quoted(
                            design.instances[e.consumer_instance].name)
                     << "}";
               });
  out << ", \"duplicated_specs\": ";
  render_array(out, design.parallel.duplicated_specs, "    ",
               [&out, &specs](std::size_t s) {
                 out << quoted(specs[s].name);
               });
  out << "},\n";

  out << "  \"estimate\": {\"baseline_s\": "
      << design.estimate.baseline_seconds
      << ", \"proposed_s\": " << design.estimate.proposed_seconds()
      << ", \"deltas\": {\"shared_memory_s\": "
      << design.estimate.delta_shared_memory_seconds
      << ", \"noc_s\": " << design.estimate.delta_noc_seconds
      << ", \"parallel_s\": " << design.estimate.delta_parallel_seconds
      << ", \"duplication_s\": "
      << design.estimate.delta_duplication_seconds << "}}\n";
  out << "}\n";
  return out.str();
}

}  // namespace hybridic::core
