// The output of the interconnect design algorithm: a complete, buildable
// description of the hybrid custom interconnect for one application.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/adaptive_mapping.hpp"
#include "core/comm_classify.hpp"
#include "core/kernel_model.hpp"
#include "mem/crossbar.hpp"
#include "noc/topology.hpp"
#include "util/units.hpp"

namespace hybridic::core {

/// A physical kernel instance (duplication may create several instances of
/// one spec; each instance owns a local memory).
struct KernelInstance {
  std::string name;           ///< e.g. "huff_ac_dec#1" for a duplicate.
  std::size_t spec_index = 0; ///< Index into the design input's specs.
  prof::FunctionId function = 0;
  double work_share = 1.0;    ///< Fraction of the function's work/data.
  KernelQuantities quantities;      ///< Eq-1 terms (full function volumes).
  KernelQuantities residual;        ///< After shared-memory exclusions.
  CommClass comm_class;             ///< Classified on the residual.
  InterconnectClass mapping;        ///< Table-I result.
};

/// A shared-local-memory pairing (§IV-A1).
struct SharedMemoryPairing {
  std::size_t producer_instance = 0;
  std::size_t consumer_instance = 0;
  Bytes bytes{0};              ///< D_ij moved through the shared memory.
  mem::SharingStyle style = mem::SharingStyle::kCrossbar;
};

/// What sits behind one NoC router.
enum class NocNodeKind : std::uint8_t { kKernel, kLocalMemory };

/// One attachment to the NoC.
struct NocAttachment {
  std::size_t instance = 0;
  NocNodeKind kind = NocNodeKind::kKernel;
  std::uint32_t node = 0;  ///< Mesh node id after placement.
};

/// The NoC part of the design, if any.
struct NocPlan {
  std::uint32_t mesh_width = 0;
  std::uint32_t mesh_height = 0;
  std::vector<NocAttachment> attachments;

  [[nodiscard]] std::uint32_t router_count() const {
    return static_cast<std::uint32_t>(attachments.size());
  }
  /// Mesh node hosting instance `i`'s kernel (or memory); throws if absent.
  [[nodiscard]] std::uint32_t node_of(std::size_t instance,
                                      NocNodeKind kind) const;
  [[nodiscard]] bool has_node(std::size_t instance, NocNodeKind kind) const;
};

/// Case-2 streaming between a producer and consumer instance.
struct StreamedEdge {
  std::size_t producer_instance = 0;
  std::size_t consumer_instance = 0;
};

/// Parallel-processing decisions (§IV-A3).
struct ParallelPlan {
  std::vector<std::size_t> host_pipelined;       ///< Case 1, instance ids.
  std::vector<StreamedEdge> streamed;            ///< Case 2.
  std::vector<std::size_t> duplicated_specs;     ///< Case 3, spec indices.
};

/// Analytical timing estimate attached to the design (Eq. 2 and Δ terms).
struct DesignEstimate {
  double baseline_seconds = 0.0;
  double delta_shared_memory_seconds = 0.0;
  double delta_noc_seconds = 0.0;
  double delta_parallel_seconds = 0.0;
  double delta_duplication_seconds = 0.0;

  [[nodiscard]] double proposed_seconds() const {
    const double t = baseline_seconds - delta_shared_memory_seconds -
                     delta_noc_seconds - delta_parallel_seconds -
                     delta_duplication_seconds;
    return t > 0.0 ? t : 0.0;
  }
};

/// The complete design.
struct DesignResult {
  std::vector<KernelInstance> instances;
  std::vector<SharedMemoryPairing> shared_pairs;
  std::optional<NocPlan> noc;
  ParallelPlan parallel;
  DesignEstimate estimate;

  [[nodiscard]] bool uses_noc() const { return noc.has_value(); }
  [[nodiscard]] bool uses_shared_memory() const {
    return !shared_pairs.empty();
  }
  [[nodiscard]] bool uses_parallel() const {
    return !parallel.host_pipelined.empty() || !parallel.streamed.empty() ||
           !parallel.duplicated_specs.empty();
  }

  /// Table-IV style solution tag, e.g. "NoC, SM, P".
  [[nodiscard]] std::string solution_tag() const;

  /// Human-readable description of the whole design (the Fig. 6 analogue).
  [[nodiscard]] std::string describe(const prof::CommGraph& graph) const;
};

}  // namespace hybridic::core
