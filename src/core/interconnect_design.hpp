// Algorithm 1 — the automated custom-interconnect design strategy.
//
// Input: the application's kernel candidates (L_hw) plus its quantitative
// data-communication profile (the QUAD graph, G). Output: the hybrid custom
// interconnect — duplication decisions, shared-local-memory pairings, NoC
// attachments with adaptive mapping (Table I) and mesh placement, and the
// parallel-processing decisions — together with the analytical time
// estimate from the §IV-A models.
#pragma once

#include <cstdint>
#include <vector>

#include "core/design_result.hpp"
#include "core/kernel_model.hpp"
#include "core/perf_model.hpp"
#include "prof/comm_graph.hpp"
#include "util/units.hpp"

namespace hybridic::core {

/// Everything Algorithm 1 needs.
struct DesignInput {
  const prof::CommGraph* graph = nullptr;
  std::vector<KernelSpec> kernels;  ///< L_hw (line 1 already performed).
  Frequency kernel_clock = Frequency::megahertz(100);
  Theta theta;  ///< Measured average sec/byte of the system infrastructure.

  double stream_overhead_seconds = 15e-6;       ///< O for cases 1 & 2.
  double duplication_overhead_seconds = 30e-6;  ///< O for case 3.

  /// LUT budget available for duplicated kernels ("resource is available",
  /// line 3). Zero disables duplication by exhaustion.
  std::uint32_t duplication_area_budget_luts = 20000;

  // Ablation switches (all true reproduces the paper's algorithm; the
  // NoC-only comparison system of Table IV disables the first two).
  bool enable_shared_memory = true;
  bool enable_adaptive_mapping = true;
  bool enable_parallel = true;
  bool enable_duplication = true;

  /// Refine the deterministic greedy/hill-climb NoC placement with
  /// simulated annealing (useful above ~10 attachments). Deterministic
  /// for a fixed seed.
  bool anneal_placement = false;
  std::uint64_t placement_seed = 1;
};

/// Run Algorithm 1. Throws ConfigError on inconsistent input.
[[nodiscard]] DesignResult design_interconnect(const DesignInput& input);

}  // namespace hybridic::core
