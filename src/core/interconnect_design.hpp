// Algorithm 1 — the automated custom-interconnect design strategy.
//
// Input: the application's kernel candidates (L_hw) plus its quantitative
// data-communication profile (the QUAD graph, G). Output: the hybrid custom
// interconnect — duplication decisions, shared-local-memory pairings, NoC
// attachments with adaptive mapping (Table I) and mesh placement, and the
// parallel-processing decisions — together with the analytical time
// estimate from the §IV-A models.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/design_result.hpp"
#include "core/kernel_model.hpp"
#include "core/perf_model.hpp"
#include "prof/comm_graph.hpp"
#include "util/units.hpp"

namespace hybridic::core {

/// Everything Algorithm 1 needs.
struct DesignInput {
  const prof::CommGraph* graph = nullptr;
  std::vector<KernelSpec> kernels;  ///< L_hw (line 1 already performed).
  Frequency kernel_clock = Frequency::megahertz(100);
  Theta theta;  ///< Measured average sec/byte of the system infrastructure.

  double stream_overhead_seconds = 15e-6;       ///< O for cases 1 & 2.
  double duplication_overhead_seconds = 30e-6;  ///< O for case 3.

  /// LUT budget available for duplicated kernels ("resource is available",
  /// line 3). Zero disables duplication by exhaustion.
  std::uint32_t duplication_area_budget_luts = 20000;

  // Ablation switches (all true reproduces the paper's algorithm; the
  // NoC-only comparison system of Table IV disables the first two).
  bool enable_shared_memory = true;
  bool enable_adaptive_mapping = true;
  bool enable_parallel = true;
  bool enable_duplication = true;

  /// Refine the deterministic greedy/hill-climb NoC placement with
  /// simulated annealing (useful above ~10 attachments). Deterministic
  /// for a fixed seed.
  bool anneal_placement = false;
  std::uint64_t placement_seed = 1;
};

/// One shared-local-memory pairing decision, stated over spec indices
/// (instances are a build artifact, so decisions stay instance-free).
struct SharedPairDecision {
  std::size_t producer_spec = 0;
  std::size_t consumer_spec = 0;
  Bytes bytes{0};  ///< D_ij moved through the shared memory.
  mem::SharingStyle style = mem::SharingStyle::kCrossbar;
};

/// The free choices of the interconnect design space, separated from the
/// deterministic machinery that realizes them. Algorithm 1 is one policy
/// for filling this in (greedy_decisions); the search optimizer
/// (src/search/) explores the same space move by move. build_design()
/// realizes any decision vector without judging it — legality is the
/// caller's gate (core::validate_design, the DSE oracles).
struct DesignDecisions {
  /// Spec indices to duplicate, in decision order (greedy records them in
  /// descending-τ order; the order is preserved into
  /// ParallelPlan::duplicated_specs and the Δdp summation).
  std::vector<std::size_t> duplicated_specs;
  /// Shared-local-memory pairings, in decision order.
  std::vector<SharedPairDecision> shared_pairs;
  /// Per-spec mapping override; empty vector or nullopt entries defer to
  /// the adaptive map (Table I) / naive map as before. Any present
  /// override forces the NoC to exist (the override asked for fabric the
  /// residual-traffic shortcut would otherwise drop).
  std::vector<std::optional<InterconnectClass>> mapping_override;

  [[nodiscard]] bool any_mapping_override() const {
    for (const auto& entry : mapping_override) {
      if (entry.has_value()) {
        return true;
      }
    }
    return false;
  }
};

/// Lines 2-13 of Algorithm 1: the greedy duplication and shared-memory
/// decisions (mapping stays adaptive — no overrides).
[[nodiscard]] DesignDecisions greedy_decisions(const DesignInput& input);

/// Realize `decisions` into a complete design: instances, residual
/// quantities, classification + (adaptive or overridden) mapping, NoC
/// placement, parallel plan, and the Eq. 2 / Δ estimate. Deterministic;
/// does not validate the decisions (an infeasible override builds and is
/// left for the caller's legality gate to reject).
[[nodiscard]] DesignResult build_design(const DesignInput& input,
                                        const DesignDecisions& decisions);

/// Run Algorithm 1. Throws ConfigError on inconsistent input. Exactly
/// build_design(input, greedy_decisions(input)).
[[nodiscard]] DesignResult design_interconnect(const DesignInput& input);

}  // namespace hybridic::core
