// Placement of NoC attachments onto mesh routers.
//
// §IV-B: "a kernel and its communicating local memories should be mapped to
// the NoC routers in such a way that the distance of these routers is
// shortest" — ideally adjacent. We minimize Σ traffic(a,b) · hops(a,b) with
// a deterministic greedy construction followed by pairwise-swap hill
// climbing (optimal for the small attachment counts real designs produce;
// an optional annealing refinement handles large synthetic instances).
#pragma once

#include <cstdint>
#include <optional>
#include <tuple>
#include <vector>

#include "noc/topology.hpp"
#include "util/rng.hpp"

namespace hybridic::core {

/// Traffic between attachment indices (bytes; direction-agnostic cost).
struct PlacementProblem {
  std::uint32_t attachment_count = 0;
  /// (a, b, bytes) with a < b; absent pairs carry no traffic.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>>
      traffic;
};

/// Result: attachment index -> mesh node id on the fitted mesh.
struct PlacementResult {
  noc::Mesh2D mesh{1, 1};
  std::vector<std::uint32_t> node_of;
  std::uint64_t cost = 0;  ///< Σ bytes · hops.
};

/// Cost of a candidate assignment.
[[nodiscard]] std::uint64_t placement_cost(
    const PlacementProblem& problem, const noc::Mesh2D& mesh,
    const std::vector<std::uint32_t>& node_of);

/// Greedy + hill-climb placement (deterministic).
[[nodiscard]] PlacementResult place_attachments(
    const PlacementProblem& problem);

/// Annealing refinement on top of the deterministic placement; useful for
/// attachment counts above ~10. Deterministic given the seed.
[[nodiscard]] PlacementResult place_attachments_annealed(
    const PlacementProblem& problem, std::uint64_t seed,
    std::uint32_t iterations = 20000);

}  // namespace hybridic::core
