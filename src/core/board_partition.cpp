#include "core/board_partition.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace hybridic::core {

namespace {

/// splitmix64 — the repo's standard deterministic hash/stream seeder.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(BoardTopology topology) {
  switch (topology) {
    case BoardTopology::kChain:
      return "chain";
    case BoardTopology::kRing:
      return "ring";
    case BoardTopology::kMesh:
      return "mesh";
  }
  return "?";
}

BoardTopology parse_board_topology(const std::string& name) {
  if (name == "chain") {
    return BoardTopology::kChain;
  }
  if (name == "ring") {
    return BoardTopology::kRing;
  }
  if (name == "mesh") {
    return BoardTopology::kMesh;
  }
  throw ConfigError("unknown board topology '" + name +
                    "' (expected chain, ring or mesh)");
}

BoardPartition partition_boards(const BoardPartitionInput& input) {
  require(input.graph != nullptr, "partition input has no profile graph");
  require(input.board_count >= 1, "board_count must be >= 1");
  const prof::CommGraph& graph = *input.graph;
  const std::uint32_t boards = input.board_count;
  const std::size_t n = input.kernels.size();

  BoardPartition result;
  result.board_count = boards;
  result.board_of_kernel.assign(n, 0);
  result.intra_board_bytes.assign(boards, Bytes{0});

  // Kernel function set + index lookup. Kernel specs must name profiled
  // functions (same contract as Algorithm 1).
  std::map<prof::FunctionId, std::size_t> kernel_index;
  for (std::size_t k = 0; k < n; ++k) {
    const KernelSpec& spec = input.kernels[k];
    require(spec.function < graph.function_count(),
            "kernel spec '" + spec.name + "' names an unprofiled function");
    kernel_index[spec.function] = k;
  }
  require(kernel_index.size() == n, "duplicate kernel functions in L_hw");

  // Symmetric kernel<->kernel affinity in unique bytes, plus each
  // kernel's host affinity (host functions are pinned to board 0, so
  // host traffic pulls a kernel towards board 0 exactly like a kernel
  // pinned there would).
  std::vector<std::vector<std::uint64_t>> affinity(
      n, std::vector<std::uint64_t>(n, 0));
  std::vector<std::uint64_t> host_affinity(n, 0);
  std::vector<std::uint64_t> traffic(n, 0);  // Total per-kernel volume.
  for (const prof::CommEdge& edge : graph.edges()) {
    if (edge.producer == edge.consumer) {
      continue;  // Self-edges are local, never cross anything.
    }
    const std::uint64_t volume = edge_volume(edge).count();
    const auto p = kernel_index.find(edge.producer);
    const auto c = kernel_index.find(edge.consumer);
    if (p != kernel_index.end() && c != kernel_index.end()) {
      affinity[p->second][c->second] += volume;
      affinity[c->second][p->second] += volume;
      traffic[p->second] += volume;
      traffic[c->second] += volume;
    } else if (p != kernel_index.end()) {
      host_affinity[p->second] += volume;
      traffic[p->second] += volume;
    } else if (c != kernel_index.end()) {
      host_affinity[c->second] += volume;
      traffic[c->second] += volume;
    }
  }

  const std::size_t cap =
      boards == 0 ? n : (n + boards - 1) / boards;  // ceil(n / boards).
  std::vector<std::size_t> load(boards, 0);
  std::vector<std::uint32_t>& board_of = result.board_of_kernel;

  if (boards > 1 && n > 0) {
    // ---- Greedy seeding: place kernels in traffic-descending order on
    // the board maximizing already-placed affinity (cut-minimizing),
    // under the balance cap. Ties break by a seeded hash, then by board
    // id, so distinct seeds explore distinct initial placements while
    // every run of one seed is identical.
    std::vector<std::size_t> order(n);
    for (std::size_t k = 0; k < n; ++k) {
      order[k] = k;
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (traffic[a] != traffic[b]) {
                  return traffic[a] > traffic[b];
                }
                const std::uint64_t ha = splitmix64(input.seed ^ a);
                const std::uint64_t hb = splitmix64(input.seed ^ b);
                if (ha != hb) {
                  return ha < hb;
                }
                return a < b;
              });
    std::vector<bool> placed(n, false);
    for (const std::size_t k : order) {
      std::uint32_t best = 0;
      std::int64_t best_gain = -1;
      for (std::uint32_t b = 0; b < boards; ++b) {
        if (load[b] >= cap) {
          continue;
        }
        std::int64_t gain =
            b == 0 ? static_cast<std::int64_t>(host_affinity[k]) : 0;
        for (std::size_t other = 0; other < n; ++other) {
          if (placed[other] && board_of[other] == b) {
            gain += static_cast<std::int64_t>(affinity[k][other]);
          }
        }
        if (gain > best_gain) {
          best_gain = gain;
          best = b;
        }
      }
      board_of[k] = best;
      load[best] += 1;
      placed[k] = true;
    }

    // ---- KL/FM-style refinement: repeatedly apply the best
    // positive-gain single-kernel move (gain = cut bytes saved by moving
    // kernel k to board b) that respects the balance cap. Scanning in
    // (kernel, board) order with strict improvement keeps it
    // deterministic; passes are capped so it always terminates.
    for (std::uint32_t pass = 0; pass < input.max_refinement_passes; ++pass) {
      bool moved = false;
      for (std::size_t k = 0; k < n; ++k) {
        // External affinity of k towards each board.
        std::vector<std::int64_t> pull(boards, 0);
        pull[0] += static_cast<std::int64_t>(host_affinity[k]);
        for (std::size_t other = 0; other < n; ++other) {
          if (other != k) {
            pull[board_of[other]] +=
                static_cast<std::int64_t>(affinity[k][other]);
          }
        }
        const std::uint32_t from = board_of[k];
        std::uint32_t best = from;
        std::int64_t best_gain = 0;
        for (std::uint32_t b = 0; b < boards; ++b) {
          if (b == from || load[b] >= cap) {
            continue;
          }
          const std::int64_t gain = pull[b] - pull[from];
          if (gain > best_gain) {
            best_gain = gain;
            best = b;
          }
        }
        if (best != from) {
          load[from] -= 1;
          load[best] += 1;
          board_of[k] = best;
          result.refinement_moves += 1;
          moved = true;
        }
      }
      if (!moved) {
        break;
      }
    }
  }

  for (std::size_t k = 0; k < n; ++k) {
    result.board_of_function[input.kernels[k].function] = board_of[k];
  }

  // ---- Byte accounting over every profiled non-self edge: host
  // endpoints resolve to board 0, so host<->off-board-kernel traffic is
  // cut traffic too (it rides the serial links).
  for (const prof::CommEdge& edge : graph.edges()) {
    if (edge.producer == edge.consumer) {
      continue;
    }
    const Bytes volume = edge_volume(edge);
    const std::uint32_t pb = result.board_of(edge.producer);
    const std::uint32_t cb = result.board_of(edge.consumer);
    result.total_bytes += volume;
    if (pb == cb) {
      result.intra_board_bytes[pb] += volume;
    } else {
      result.cut_bytes += volume;
    }
  }
  return result;
}

}  // namespace hybridic::core
