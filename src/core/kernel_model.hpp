// Kernel model — Equation 1 of the paper:
//
//   HW_i(τ_i, D^H_in, D^K_in, D^H_out, D^K_out)
//
// τ_i is the kernel's computation time; the four D terms split the kernel's
// input/output volume by whether the other endpoint is the host (a software
// function) or another HW kernel. The terms are derived mechanically from
// the profiled communication graph once the HW set is fixed.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "prof/comm_graph.hpp"
#include "util/units.hpp"

namespace hybridic::core {

/// Static description of one kernel candidate (the entries of L_hw).
struct KernelSpec {
  std::string name;
  prof::FunctionId function = 0;
  Cycles hw_compute_cycles{0};  ///< τ_i at the kernel clock (100 MHz).
  Cycles sw_compute_cycles{0};  ///< Same work on the host (400 MHz).
  std::uint32_t area_luts = 0;  ///< Synthesized kernel area.
  std::uint32_t area_regs = 0;
  bool duplicable = false;      ///< Case-3 candidate (data-parallel).
  bool streaming = false;       ///< Case-1/2 candidate (stream processing).
};

/// Equation-1 quantities for one kernel, derived from the profile.
struct KernelQuantities {
  Bytes host_in{0};     ///< D^H_in  — input produced by host functions.
  Bytes kernel_in{0};   ///< D^K_in  — input produced by other kernels.
  Bytes host_out{0};    ///< D^H_out — output consumed by host functions.
  Bytes kernel_out{0};  ///< D^K_out — output consumed by other kernels.

  [[nodiscard]] Bytes total_in() const { return host_in + kernel_in; }
  [[nodiscard]] Bytes total_out() const { return host_out + kernel_out; }
  [[nodiscard]] Bytes total() const { return total_in() + total_out(); }
};

/// Design-facing volume of a profiled edge: the unique bytes (UMA count at
/// byte granularity). A datum is fetched into a kernel's local memory once,
/// however many times the consumer then touches it, so unique bytes — not
/// raw access bytes — is what moves across the interconnect.
[[nodiscard]] inline Bytes edge_volume(const prof::CommEdge& edge) {
  return Bytes{edge.unique_addresses};
}

/// Compute Eq-1 D terms for `kernel` given the set of functions mapped to
/// hardware. Self-edges are local and excluded. Edges listed in
/// `excluded_edges` (producer, consumer) are skipped — used after the
/// shared-local-memory step removes pair traffic from the NoC problem.
[[nodiscard]] KernelQuantities derive_quantities(
    const prof::CommGraph& graph, prof::FunctionId kernel,
    const std::set<prof::FunctionId>& hw_set,
    const std::set<std::pair<prof::FunctionId, prof::FunctionId>>&
        excluded_edges = {});

}  // namespace hybridic::core
