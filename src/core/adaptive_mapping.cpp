#include "core/adaptive_mapping.hpp"

namespace hybridic::core {

InterconnectClass adaptive_map(CommClass c) {
  // Table I, row by row.
  //   {R1,S1}                      -> {K2,M2}
  //   {R1,S2}, {R3,S2}             -> {K1,M3}
  //   {R1,S3}, {R3,S1}, {R3,S3}    -> {K2,M3}
  //   {R2,S1}, {R2,S3}             -> {K2,M1}
  //   {R2,S2}                      -> {K1,M1}
  using enum RecvClass;
  using enum SendClass;

  if (c.recv == kR1 && c.send == kS1) {
    return {KernelConn::kK2, MemConn::kM2};
  }
  if ((c.recv == kR1 || c.recv == kR3) && c.send == kS2) {
    return {KernelConn::kK1, MemConn::kM3};
  }
  if ((c.recv == kR1 && c.send == kS3) ||
      (c.recv == kR3 && (c.send == kS1 || c.send == kS3))) {
    return {KernelConn::kK2, MemConn::kM3};
  }
  if (c.recv == kR2 && (c.send == kS1 || c.send == kS3)) {
    return {KernelConn::kK2, MemConn::kM1};
  }
  // {R2,S2}
  return {KernelConn::kK1, MemConn::kM1};
}

bool is_feasible(InterconnectClass ic) {
  return !(ic.kernel == KernelConn::kK1 && ic.memory == MemConn::kM2);
}

std::string to_string(KernelConn k) {
  return k == KernelConn::kK1 ? "K1" : "K2";
}

std::string to_string(MemConn m) {
  switch (m) {
    case MemConn::kM1:
      return "M1";
    case MemConn::kM2:
      return "M2";
    case MemConn::kM3:
      return "M3";
  }
  return "M?";
}

std::string to_string(InterconnectClass ic) {
  return "{" + to_string(ic.kernel) + "," + to_string(ic.memory) + "}";
}

}  // namespace hybridic::core
