#include "core/perf_model.hpp"

#include <algorithm>

namespace hybridic::core {

KernelTimes baseline_kernel_times(const KernelQuantities& q,
                                  double tau_seconds, Theta theta) {
  KernelTimes times;
  times.compute_seconds = tau_seconds;
  times.communication_seconds =
      theta.transfer_seconds(q.total_in() + q.total_out());
  return times;
}

double baseline_total_seconds(const std::vector<KernelTimes>& kernels) {
  double total = 0.0;
  for (const KernelTimes& k : kernels) {
    total += k.total();
  }
  return total;
}

double delta_shared_memory(Bytes d_ij, Theta theta) {
  return 2.0 * theta.transfer_seconds(d_ij);
}

double delta_noc(const std::vector<KernelQuantities>& kernels, Theta theta) {
  double total = 0.0;
  for (const KernelQuantities& q : kernels) {
    total += theta.transfer_seconds(q.kernel_in + q.kernel_out);
  }
  return total;
}

double delta_pipeline_host(const KernelQuantities& q, double tau_seconds,
                           Theta theta, double overhead_seconds) {
  const double in_half = theta.transfer_seconds(q.host_in) / 2.0;
  const double out_half = theta.transfer_seconds(q.host_out) / 2.0;
  const double tau_half = tau_seconds / 2.0;
  return std::min(in_half, tau_half) + std::min(out_half, tau_half) -
         overhead_seconds;
}

double delta_pipeline_kernels(double tau_i_seconds, double tau_j_seconds,
                              double overhead_seconds) {
  return std::min(tau_i_seconds / 2.0, tau_j_seconds / 2.0) -
         overhead_seconds;
}

double delta_duplication(double tau_seconds, double overhead_seconds) {
  return tau_seconds / 2.0 - overhead_seconds;
}

}  // namespace hybridic::core
