// FPGA resource model — Table II of the paper, plus system-level totals
// (Table IV / Fig. 8).
//
// Component costs are the paper's measured LUT/register counts on the
// xc5vfx130t. System totals combine the per-application base infrastructure
// and kernel areas (calibration constants, src/apps) with the interconnect
// components the design instantiates.
#pragma once

#include <cstdint>
#include <string>

#include "core/design_result.hpp"

namespace hybridic::core {

/// Interconnect building blocks (Table II rows + the port multiplexer).
enum class Component : std::uint8_t {
  kBus,
  kCrossbar,
  kRouter,
  kNaAccelerator,
  kNaLocalMemory,
  kPortMux,
};

/// LUT/register/frequency cost of one component instance.
struct ComponentCost {
  std::uint32_t luts = 0;
  std::uint32_t regs = 0;
  double fmax_mhz = 0.0;  ///< 0 = not applicable (pure combinational).
};

/// Table II.
[[nodiscard]] ComponentCost component_cost(Component c);
[[nodiscard]] std::string to_string(Component c);

/// Aggregate LUT/register totals.
struct Resources {
  std::uint64_t luts = 0;
  std::uint64_t regs = 0;

  Resources& operator+=(Resources other) {
    luts += other.luts;
    regs += other.regs;
    return *this;
  }
  friend Resources operator+(Resources a, Resources b) {
    return Resources{a.luts + b.luts, a.regs + b.regs};
  }
};

/// Resources of the custom interconnect a design instantiates: crossbars
/// for shared pairs, one router + NA per NoC attachment, and port muxes
/// where a BRAM ends up with three clients.
[[nodiscard]] Resources interconnect_resources(const DesignResult& design);

/// Resources of the kernels themselves (instance areas; duplication counts
/// twice). `specs` must be the design input's kernel list.
[[nodiscard]] Resources kernel_resources(
    const DesignResult& design, const std::vector<KernelSpec>& specs);

/// Number of port multiplexers the design needs (three-client BRAMs).
[[nodiscard]] std::uint32_t mux_count(const DesignResult& design);

}  // namespace hybridic::core
