#include "core/design_result.hpp"

#include <sstream>

#include "util/error.hpp"

namespace hybridic::core {

std::uint32_t NocPlan::node_of(std::size_t instance, NocNodeKind kind) const {
  for (const NocAttachment& a : attachments) {
    if (a.instance == instance && a.kind == kind) {
      return a.node;
    }
  }
  throw ConfigError{"NocPlan: no attachment for requested instance"};
}

bool NocPlan::has_node(std::size_t instance, NocNodeKind kind) const {
  for (const NocAttachment& a : attachments) {
    if (a.instance == instance && a.kind == kind) {
      return true;
    }
  }
  return false;
}

std::string DesignResult::solution_tag() const {
  std::string tag;
  const auto append = [&tag](const char* part) {
    if (!tag.empty()) {
      tag += ", ";
    }
    tag += part;
  };
  if (uses_noc()) {
    append("NoC");
  }
  if (uses_shared_memory()) {
    append("SM");
  }
  if (uses_parallel()) {
    append("P");
  }
  if (tag.empty()) {
    tag = "Bus";
  }
  return tag;
}

std::string DesignResult::describe(const prof::CommGraph& graph) const {
  std::ostringstream out;
  out << "Custom interconnect design (" << solution_tag() << ")\n";
  out << "Kernel instances:\n";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const KernelInstance& inst = instances[i];
    out << "  [" << i << "] " << inst.name << "  comm="
        << to_string(inst.comm_class) << " -> map="
        << to_string(inst.mapping) << "  (share=" << inst.work_share
        << ")\n";
  }
  if (!shared_pairs.empty()) {
    out << "Shared local memory pairs:\n";
    for (const SharedMemoryPairing& pair : shared_pairs) {
      out << "  " << instances[pair.producer_instance].name << " -> "
          << instances[pair.consumer_instance].name << " : "
          << format_bytes(pair.bytes) << " via "
          << (pair.style == mem::SharingStyle::kCrossbar ? "2x2 crossbar"
                                                         : "direct sharing")
          << "\n";
    }
  }
  if (noc.has_value()) {
    out << "NoC: " << noc->mesh_width << "x" << noc->mesh_height
        << " mesh, " << noc->router_count() << " router(s)\n";
    for (const NocAttachment& a : noc->attachments) {
      out << "  node " << a.node << ": " << instances[a.instance].name
          << (a.kind == NocNodeKind::kKernel ? " (kernel)"
                                             : " (local memory)")
          << "\n";
    }
  } else {
    out << "NoC: not instantiated\n";
  }
  if (!parallel.duplicated_specs.empty()) {
    out << "Duplicated kernels (case 3): ";
    for (std::size_t i = 0; i < parallel.duplicated_specs.size(); ++i) {
      out << (i == 0 ? "" : ", ") << parallel.duplicated_specs[i];
    }
    out << "\n";
  }
  if (!parallel.host_pipelined.empty()) {
    out << "Host-transfer pipelining (case 1): ";
    for (std::size_t i = 0; i < parallel.host_pipelined.size(); ++i) {
      out << (i == 0 ? "" : ", ")
          << instances[parallel.host_pipelined[i]].name;
    }
    out << "\n";
  }
  if (!parallel.streamed.empty()) {
    out << "Streamed kernel pairs (case 2): ";
    for (std::size_t i = 0; i < parallel.streamed.size(); ++i) {
      const StreamedEdge& e = parallel.streamed[i];
      out << (i == 0 ? "" : ", ") << instances[e.producer_instance].name
          << "->" << instances[e.consumer_instance].name;
    }
    out << "\n";
  }
  (void)graph;
  return out.str();
}

}  // namespace hybridic::core
