#include "core/resource_model.hpp"

#include "util/error.hpp"

namespace hybridic::core {

ComponentCost component_cost(Component c) {
  // Paper Table II (xc5vfx130t, ISE 13.2).
  switch (c) {
    case Component::kBus:
      return ComponentCost{1048, 188, 345.8};
    case Component::kCrossbar:
      return ComponentCost{201, 200, 0.0};
    case Component::kRouter:
      return ComponentCost{309, 353, 150.0};
    case Component::kNaAccelerator:
      return ComponentCost{396, 426, 422.5};
    case Component::kNaLocalMemory:
      return ComponentCost{60, 114, 874.2};
    case Component::kPortMux:
      // Not listed in Table II; estimated as a fraction of the crossbar
      // (a 3:1 beat-level selector), documented in EXPERIMENTS.md.
      return ComponentCost{48, 20, 0.0};
  }
  throw ConfigError{"unknown component"};
}

std::string to_string(Component c) {
  switch (c) {
    case Component::kBus:
      return "Bus";
    case Component::kCrossbar:
      return "Crossbar";
    case Component::kRouter:
      return "NoC Router";
    case Component::kNaAccelerator:
      return "NA HW Accelerator";
    case Component::kNaLocalMemory:
      return "NA local memory";
    case Component::kPortMux:
      return "Port mux";
  }
  return "?";
}

namespace {

Resources cost_of(Component c, std::uint64_t count) {
  const ComponentCost unit = component_cost(c);
  return Resources{unit.luts * count, unit.regs * count};
}

}  // namespace

std::uint32_t mux_count(const DesignResult& design) {
  // A BRAM needs a mux when three clients contend for its two ports:
  // the kernel core (always), the host bus (memory in M1/M3) and the NoC
  // adapter (memory in M2/M3). M3 therefore implies three clients.
  std::uint32_t count = 0;
  for (const KernelInstance& inst : design.instances) {
    if (inst.mapping.memory == MemConn::kM3) {
      ++count;
    }
  }
  return count;
}

Resources interconnect_resources(const DesignResult& design) {
  Resources total;
  std::uint64_t crossbars = 0;
  for (const SharedMemoryPairing& pair : design.shared_pairs) {
    if (pair.style == mem::SharingStyle::kCrossbar) {
      ++crossbars;
    }
  }
  total += cost_of(Component::kCrossbar, crossbars);

  if (design.noc.has_value()) {
    std::uint64_t kernel_nas = 0;
    std::uint64_t memory_nas = 0;
    for (const NocAttachment& a : design.noc->attachments) {
      if (a.kind == NocNodeKind::kKernel) {
        ++kernel_nas;
      } else {
        ++memory_nas;
      }
    }
    total += cost_of(Component::kRouter, design.noc->router_count());
    total += cost_of(Component::kNaAccelerator, kernel_nas);
    total += cost_of(Component::kNaLocalMemory, memory_nas);
  }
  total += cost_of(Component::kPortMux, mux_count(design));
  return total;
}

Resources kernel_resources(const DesignResult& design,
                           const std::vector<KernelSpec>& specs) {
  Resources total;
  for (const KernelInstance& inst : design.instances) {
    require(inst.spec_index < specs.size(),
            "design instance references missing spec");
    total += Resources{specs[inst.spec_index].area_luts,
                       specs[inst.spec_index].area_regs};
  }
  return total;
}

}  // namespace hybridic::core
