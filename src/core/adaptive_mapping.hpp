// The adaptive mapping function — Equation 3/5 and Table I of the paper.
//
//   f : Communication → Interconnect
//   Communication = {R1,R2,R3} × {S1,S2,S3}
//   Interconnect  = {K1,K2} × {M1,M2,M3}
//
// K1/K2: kernel not/connected to the NoC.
// M1/M2/M3: local memory connected to the system communication
// infrastructure only / the NoC only / both.
//
// {K1,M2} is infeasible (the kernel's result would be unreachable); Table I
// never produces it, and `is_feasible` rejects it for completeness.
#pragma once

#include <cstdint>
#include <string>

#include "core/comm_classify.hpp"

namespace hybridic::core {

/// Kernel-side NoC connection.
enum class KernelConn : std::uint8_t { kK1 = 1, kK2 = 2 };

/// Local-memory-side connection.
enum class MemConn : std::uint8_t { kM1 = 1, kM2 = 2, kM3 = 3 };

/// One kernel's interconnect topology case.
struct InterconnectClass {
  KernelConn kernel = KernelConn::kK1;
  MemConn memory = MemConn::kM1;

  friend constexpr bool operator==(InterconnectClass,
                                   InterconnectClass) = default;
};

/// Table I.
[[nodiscard]] InterconnectClass adaptive_map(CommClass communication);

/// {K1,M2} is the single infeasible interconnect value.
[[nodiscard]] bool is_feasible(InterconnectClass ic);

[[nodiscard]] std::string to_string(KernelConn k);
[[nodiscard]] std::string to_string(MemConn m);
[[nodiscard]] std::string to_string(InterconnectClass ic);

}  // namespace hybridic::core
