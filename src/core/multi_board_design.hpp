// Two-level multi-board interconnect design.
//
// Level one partitions the profiled kernel communication multigraph
// across boards by min-cut on bytes (board_partition.hpp); level two runs
// the *unchanged* single-board Algorithm 1 per board on a projected graph
// that keeps only that board's intra-board edges. Edges crossing boards
// are returned separately: the execution engine moves them over the
// inter-board serial links (the InterBoardLink fabric policy), never over
// any on-board fabric, so their bytes are neither lost nor double
// counted. board_count == 1 degenerates to exactly one call of
// design_interconnect on the original input.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/board_partition.hpp"
#include "core/design_result.hpp"
#include "core/interconnect_design.hpp"
#include "prof/comm_graph.hpp"

namespace hybridic::core {

/// A profiled edge whose endpoints live on different boards.
struct InterBoardEdge {
  prof::FunctionId producer = 0;
  prof::FunctionId consumer = 0;
  std::uint32_t producer_board = 0;
  std::uint32_t consumer_board = 0;
  Bytes bytes{0};  ///< Design volume (unique bytes, edge_volume()).
};

/// Everything the two-level designer needs: the single-board DesignInput
/// (graph, L_hw, theta, overheads, ablations) plus the board dimension.
struct MultiBoardDesignInput {
  DesignInput base;
  std::uint32_t board_count = 1;
  std::uint64_t partition_seed = 1;
};

/// The two-level design: the partition, one per-board DesignResult (from
/// the unchanged Algorithm 1 over that board's projected graph and
/// kernels), and the inter-board edge list.
struct MultiBoardDesign {
  BoardPartition partition;
  /// Board-local projections of the profiled graph (same function ids;
  /// only intra-board edges). unique_ptr keeps addresses stable: the
  /// per-board schedules and designs point into them.
  std::vector<std::unique_ptr<prof::CommGraph>> board_graphs;
  /// Per-board L_hw subsets, in the original kernel order.
  std::vector<std::vector<KernelSpec>> board_kernels;
  /// Per-board Algorithm 1 output (default-constructed for boards that
  /// own no kernels).
  std::vector<DesignResult> boards;
  /// Profiled edges crossing boards, ordered by (producer, consumer).
  std::vector<InterBoardEdge> cut_edges;

  [[nodiscard]] std::uint32_t board_count() const {
    return partition.board_count;
  }
};

/// Project `graph` onto one board: every function is kept (ids are
/// stable), but only edges whose endpoints both resolve to `board` keep
/// their transfers (host endpoints resolve to board 0).
[[nodiscard]] prof::CommGraph project_board_graph(
    const prof::CommGraph& graph, const BoardPartition& partition,
    std::uint32_t board);

/// Run the two-level design. With board_count == 1 the result holds the
/// trivial partition and boards[0] == design_interconnect(input.base),
/// bit for bit — the single-board path is provably preserved.
[[nodiscard]] MultiBoardDesign design_multi_board(
    const MultiBoardDesignInput& input);

}  // namespace hybridic::core
