// Board partitioning — level one of the two-level multi-board design.
//
// The single-board Algorithm 1 assumes every kernel shares one bus, one
// BRAM pool and one mesh. On a multi-FPGA platform the first decision is
// which board each kernel lives on: inter-board serial links are orders of
// magnitude slower than any on-board fabric, so the partition minimizes
// the profiled bytes crossing boards (min-cut on the QUAD multigraph)
// under a balance cap, with a deterministic seeded KL/FM-style refinement.
// Host functions always live on board 0 (the host CPU's board).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/kernel_model.hpp"
#include "prof/comm_graph.hpp"
#include "util/units.hpp"

namespace hybridic::core {

/// Inter-board network shapes (the circuit-switched serial-link
/// topologies of the Multi-FPGA HPCC / b_eff platforms).
enum class BoardTopology : std::uint8_t {
  kChain = 0,  ///< Board i <-> i+1.
  kRing,       ///< Chain plus the wrap-around link.
  kMesh,       ///< Near-square 2-D grid, row-major board ids.
};

[[nodiscard]] const char* to_string(BoardTopology topology);

/// Parse "chain" | "ring" | "mesh"; throws ConfigError otherwise.
[[nodiscard]] BoardTopology parse_board_topology(const std::string& name);

/// Everything the partitioner needs.
struct BoardPartitionInput {
  const prof::CommGraph* graph = nullptr;
  std::vector<KernelSpec> kernels;  ///< L_hw, as handed to Algorithm 1.
  std::uint32_t board_count = 1;
  /// Seeds the greedy placement order and every tie-break; the partition
  /// is a pure function of (graph, kernels, board_count, seed).
  std::uint64_t seed = 1;
  /// Cap on full FM refinement passes (each pass applies at most one
  /// positive-gain move per kernel).
  std::uint32_t max_refinement_passes = 8;
};

/// The level-one decision: which board owns each kernel, plus the byte
/// accounting the conservation oracle checks. All volumes are design
/// volumes (unique bytes, edge_volume()), matching Algorithm 1 and the
/// byte-conservation oracle.
struct BoardPartition {
  std::uint32_t board_count = 1;
  /// Parallel to BoardPartitionInput::kernels.
  std::vector<std::uint32_t> board_of_kernel;
  /// Kernel function id -> owning board (host functions are implicitly
  /// board 0 and not listed).
  std::map<prof::FunctionId, std::uint32_t> board_of_function;
  /// Unique bytes of profiled edges whose endpoints both resolve to board
  /// b (host endpoints resolve to board 0). Indexed by board.
  std::vector<Bytes> intra_board_bytes;
  /// Unique bytes of profiled edges crossing boards.
  Bytes cut_bytes{0};
  /// Unique bytes over all profiled non-self edges; always equals
  /// sum(intra_board_bytes) + cut_bytes.
  Bytes total_bytes{0};
  /// Positive-gain FM moves the refinement applied.
  std::uint32_t refinement_moves = 0;

  /// Owning board of any profiled function (kernels per the partition,
  /// everything else board 0).
  [[nodiscard]] std::uint32_t board_of(prof::FunctionId function) const {
    const auto it = board_of_function.find(function);
    return it == board_of_function.end() ? 0U : it->second;
  }
};

/// Partition the kernels across boards by min-cut on profiled unique
/// bytes: traffic-descending greedy seeding followed by KL/FM-style
/// single-move refinement, both under the balance cap
/// ceil(kernels / boards) per board. Deterministic for fixed input.
/// Throws ConfigError on board_count == 0 or kernels missing from the
/// graph. board_count == 1 returns the trivial all-on-board-0 partition.
[[nodiscard]] BoardPartition partition_boards(const BoardPartitionInput& input);

}  // namespace hybridic::core
