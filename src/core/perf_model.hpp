// Analytical performance model — Equation 2 and the Δ reductions of §IV-A.
//
//   T_b = Σ τ_i + Σ (D_in(i) + D_out(i)) · θ                        (Eq. 2)
//   Δc   = 2 · D_ij · θ                      (shared local memory)
//   Δn   = Σ (D^K_in(i) + D^K_out(i)) · θ    (NoC hides kernel↔kernel)
//   Δp1  = min(D^H_in/2·θ, τ/2) + min(D^H_out/2·θ, τ/2) − O   (case 1)
//   Δp2  = min(τ_i/2, τ_j/2) − O                               (case 2)
//   Δdp  = τ_i/2 − O                                           (case 3)
//
// θ is the average time to move one byte over the system communication
// infrastructure; the executor measures it from the simulated bus, and the
// designer uses it to rank solutions before committing to one.
#pragma once

#include <vector>

#include "core/kernel_model.hpp"
#include "util/units.hpp"

namespace hybridic::core {

/// Seconds per byte over the baseline communication infrastructure.
struct Theta {
  double seconds_per_byte = 0.0;

  [[nodiscard]] double transfer_seconds(Bytes bytes) const {
    return seconds_per_byte * static_cast<double>(bytes.count());
  }
};

/// One kernel's contribution to Eq. 2 (times in seconds).
struct KernelTimes {
  double compute_seconds = 0.0;
  double communication_seconds = 0.0;

  [[nodiscard]] double total() const {
    return compute_seconds + communication_seconds;
  }
};

/// Baseline execution time of `kernel` (compute + both bus trips).
[[nodiscard]] KernelTimes baseline_kernel_times(const KernelQuantities& q,
                                                double tau_seconds,
                                                Theta theta);

/// Eq. 2 over all kernels.
[[nodiscard]] double baseline_total_seconds(
    const std::vector<KernelTimes>& kernels);

/// Δc — time saved by sharing local memories for an exclusive pair moving
/// D_ij bytes (one trip kernel→host plus one trip host→kernel avoided).
[[nodiscard]] double delta_shared_memory(Bytes d_ij, Theta theta);

/// Δn — time saved by delivering all kernel↔kernel traffic over the NoC.
[[nodiscard]] double delta_noc(const std::vector<KernelQuantities>& kernels,
                               Theta theta);

/// Δp1 — case-1 host-transfer pipelining for one kernel.
[[nodiscard]] double delta_pipeline_host(const KernelQuantities& q,
                                         double tau_seconds, Theta theta,
                                         double overhead_seconds);

/// Δp2 — case-2 producer/consumer streaming between two kernels.
[[nodiscard]] double delta_pipeline_kernels(double tau_i_seconds,
                                            double tau_j_seconds,
                                            double overhead_seconds);

/// Δdp — case-3 duplication of a data-parallel kernel.
[[nodiscard]] double delta_duplication(double tau_seconds,
                                       double overhead_seconds);

}  // namespace hybridic::core
