#include "core/multi_board_design.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace hybridic::core {

prof::CommGraph project_board_graph(const prof::CommGraph& graph,
                                    const BoardPartition& partition,
                                    std::uint32_t board) {
  prof::CommGraph projected;
  for (prof::FunctionId f = 0; f < graph.function_count(); ++f) {
    const prof::FunctionProfile& profile = graph.function(f);
    const prof::FunctionId id = projected.add_function(profile.name);
    prof::FunctionProfile& copy = projected.function_mutable(id);
    copy.work_units = profile.work_units;
    copy.reads = profile.reads;
    copy.writes = profile.writes;
    copy.calls = profile.calls;
  }
  for (const prof::CommEdge& edge : graph.edges()) {
    const bool self = edge.producer == edge.consumer;
    if (self || (partition.board_of(edge.producer) == board &&
                 partition.board_of(edge.consumer) == board)) {
      projected.add_transfer(edge.producer, edge.consumer, edge.bytes,
                             edge.unique_addresses);
    }
  }
  return projected;
}

MultiBoardDesign design_multi_board(const MultiBoardDesignInput& input) {
  require(input.base.graph != nullptr, "design input has no profile graph");
  require(input.board_count >= 1, "board_count must be >= 1");

  MultiBoardDesign design;

  BoardPartitionInput part;
  part.graph = input.base.graph;
  part.kernels = input.base.kernels;
  part.board_count = input.board_count;
  part.seed = input.partition_seed;
  design.partition = partition_boards(part);

  if (input.board_count == 1) {
    // Degenerate case: the single-board path, bit for bit.
    design.board_graphs.push_back(
        std::make_unique<prof::CommGraph>(*input.base.graph));
    design.board_kernels.push_back(input.base.kernels);
    design.boards.push_back(design_interconnect(input.base));
    return design;
  }

  for (std::uint32_t b = 0; b < input.board_count; ++b) {
    design.board_graphs.push_back(std::make_unique<prof::CommGraph>(
        project_board_graph(*input.base.graph, design.partition, b)));
    std::vector<KernelSpec> kernels;
    for (std::size_t k = 0; k < input.base.kernels.size(); ++k) {
      if (design.partition.board_of_kernel[k] == b) {
        kernels.push_back(input.base.kernels[k]);
      }
    }
    design.board_kernels.push_back(kernels);
    if (kernels.empty()) {
      design.boards.emplace_back();  // Idle board: nothing to design.
      continue;
    }
    DesignInput board_input = input.base;
    board_input.graph = design.board_graphs.back().get();
    board_input.kernels = std::move(kernels);
    design.boards.push_back(design_interconnect(board_input));
  }

  // Cut edges, in the graph's canonical (producer, consumer) order.
  for (const prof::CommEdge& edge : input.base.graph->edges()) {
    if (edge.producer == edge.consumer) {
      continue;
    }
    const std::uint32_t pb = design.partition.board_of(edge.producer);
    const std::uint32_t cb = design.partition.board_of(edge.consumer);
    if (pb != cb) {
      design.cut_edges.push_back(
          {edge.producer, edge.consumer, pb, cb, edge_volume(edge)});
    }
  }
  return design;
}

}  // namespace hybridic::core
