// JSON serialization of a DesignResult — the machine-readable form a
// downstream RTL-generation or floorplanning toolchain would consume.
#pragma once

#include <string>
#include <vector>

#include "core/design_result.hpp"
#include "core/kernel_model.hpp"

namespace hybridic::core {

/// Serialize `design` (built from `specs`) to pretty-printed JSON.
/// Schema (stable):
/// {
///   "solution": "NoC, SM, P",
///   "instances": [{name, spec, function, work_share, comm_class,
///                  mapping:{kernel, memory}}...],
///   "shared_memory_pairs": [{producer, consumer, bytes, style}...],
///   "noc": {mesh:{width,height}, attachments:[{instance,kind,node}...]}
///          | null,
///   "parallel": {host_pipelined:[...], streamed:[{producer,consumer}...],
///                duplicated_specs:[...]},
///   "estimate": {baseline_s, proposed_s, deltas:{...}}
/// }
[[nodiscard]] std::string to_json(const DesignResult& design,
                                  const std::vector<KernelSpec>& specs);

}  // namespace hybridic::core
