#include "core/interconnect_design.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "core/noc_placement.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace hybridic::core {

namespace {

double cycles_to_seconds(Cycles c, Frequency clock) {
  return static_cast<double>(c.count()) / static_cast<double>(clock.hertz());
}

/// The HW function set plus the function->spec map (shared by the greedy
/// pass and the builder; both must agree on it exactly).
struct SpecIndex {
  std::set<prof::FunctionId> hw_set;
  std::map<prof::FunctionId, std::size_t> spec_of_function;
};

SpecIndex index_specs(const DesignInput& input) {
  SpecIndex index;
  for (std::size_t s = 0; s < input.kernels.size(); ++s) {
    index.hw_set.insert(input.kernels[s].function);
    require(
        index.spec_of_function.emplace(input.kernels[s].function, s).second,
        "two kernel specs share one function: " + input.kernels[s].name);
  }
  return index;
}

std::vector<KernelQuantities> full_quantities(const DesignInput& input,
                                              const SpecIndex& index) {
  std::vector<KernelQuantities> quantities(input.kernels.size());
  for (std::size_t s = 0; s < input.kernels.size(); ++s) {
    quantities[s] = derive_quantities(*input.graph, input.kernels[s].function,
                                      index.hw_set);
  }
  return quantities;
}

}  // namespace

DesignDecisions greedy_decisions(const DesignInput& input) {
  require(input.graph != nullptr, "design input needs a profile graph");
  require(!input.kernels.empty(), "design input needs at least one kernel");
  const prof::CommGraph& graph = *input.graph;
  const SpecIndex index = index_specs(input);

  DesignDecisions decisions;

  // ---- Lines 2-6: duplication of the most computationally intensive
  // kernels (case 3), budget permitting. ----
  std::vector<bool> duplicated(input.kernels.size(), false);
  if (input.enable_duplication) {
    std::vector<std::size_t> by_tau(input.kernels.size());
    std::iota(by_tau.begin(), by_tau.end(), 0);
    std::stable_sort(by_tau.begin(), by_tau.end(),
                     [&input](std::size_t a, std::size_t b) {
                       return input.kernels[a].hw_compute_cycles >
                              input.kernels[b].hw_compute_cycles;
                     });
    std::uint32_t budget = input.duplication_area_budget_luts;
    for (const std::size_t s : by_tau) {
      const KernelSpec& spec = input.kernels[s];
      if (!spec.duplicable) {
        continue;
      }
      const double tau =
          cycles_to_seconds(spec.hw_compute_cycles, input.kernel_clock);
      if (delta_duplication(tau, input.duplication_overhead_seconds) <= 0.0) {
        continue;
      }
      if (spec.area_luts > budget) {
        continue;  // "resource is available" fails.
      }
      budget -= spec.area_luts;
      duplicated[s] = true;
      decisions.duplicated_specs.push_back(s);
    }
  }

  // ---- Lines 8-13: shared-local-memory pairings. ----
  if (input.enable_shared_memory) {
    const std::vector<KernelQuantities> spec_quantities =
        full_quantities(input, index);
    // Consider larger transfers first so the greedy pairing removes the
    // most bus traffic.
    std::vector<prof::CommEdge> candidates;
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.producer == edge.consumer) {
        continue;
      }
      if (index.hw_set.count(edge.producer) == 0 ||
          index.hw_set.count(edge.consumer) == 0) {
        continue;
      }
      candidates.push_back(edge);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const prof::CommEdge& a, const prof::CommEdge& b) {
                       return a.bytes > b.bytes;
                     });
    std::set<std::size_t> paired_specs;
    for (const prof::CommEdge& edge : candidates) {
      const std::size_t ps = index.spec_of_function.at(edge.producer);
      const std::size_t cs = index.spec_of_function.at(edge.consumer);
      if (duplicated[ps] || duplicated[cs]) {
        continue;  // A shared BRAM cannot serve two producer copies.
      }
      if (paired_specs.count(ps) > 0 || paired_specs.count(cs) > 0) {
        continue;  // One sharing per kernel (BRAM port budget).
      }
      // Exclusivity (line 9): D^K_out(i) = D^K_in(j) = D_ij.
      if (spec_quantities[ps].kernel_out != edge_volume(edge) ||
          spec_quantities[cs].kernel_in != edge_volume(edge)) {
        continue;
      }
      SharedPairDecision pairing;
      pairing.producer_spec = ps;
      pairing.consumer_spec = cs;
      pairing.bytes = edge_volume(edge);
      // §IV-A1: no crossbar when the consumer never talks to the host.
      const bool consumer_host_free =
          spec_quantities[cs].host_in.count() == 0 &&
          spec_quantities[cs].host_out.count() == 0;
      pairing.style = consumer_host_free ? mem::SharingStyle::kDirect
                                         : mem::SharingStyle::kCrossbar;
      decisions.shared_pairs.push_back(pairing);
      paired_specs.insert(ps);
      paired_specs.insert(cs);
    }
  }

  return decisions;
}

DesignResult build_design(const DesignInput& input,
                          const DesignDecisions& decisions) {
  require(input.graph != nullptr, "design input needs a profile graph");
  require(!input.kernels.empty(), "design input needs at least one kernel");
  const prof::CommGraph& graph = *input.graph;
  const SpecIndex index = index_specs(input);

  DesignResult result;

  std::vector<bool> duplicated(input.kernels.size(), false);
  for (const std::size_t s : decisions.duplicated_specs) {
    require(s < input.kernels.size(),
            "duplication decision names a missing spec");
    duplicated[s] = true;
    result.parallel.duplicated_specs.push_back(s);
  }

  // ---- Instances (after duplication). ----
  std::map<std::size_t, std::vector<std::size_t>> instances_of_spec;
  for (std::size_t s = 0; s < input.kernels.size(); ++s) {
    const std::uint32_t copies = duplicated[s] ? 2 : 1;
    for (std::uint32_t c = 0; c < copies; ++c) {
      KernelInstance inst;
      inst.spec_index = s;
      inst.function = input.kernels[s].function;
      inst.work_share = 1.0 / copies;
      inst.name = input.kernels[s].name +
                  (copies > 1 ? "#" + std::to_string(c) : "");
      instances_of_spec[s].push_back(result.instances.size());
      result.instances.push_back(std::move(inst));
    }
  }

  // ---- Line 7: the quantitative communication profile (G). ----
  const std::vector<KernelQuantities> spec_quantities =
      full_quantities(input, index);

  // ---- Realize the shared-local-memory decisions. ----
  std::set<std::pair<prof::FunctionId, prof::FunctionId>> excluded_edges;
  for (const SharedPairDecision& decision : decisions.shared_pairs) {
    require(decision.producer_spec < input.kernels.size() &&
                decision.consumer_spec < input.kernels.size(),
            "shared-pair decision names a missing spec");
    SharedMemoryPairing pairing;
    pairing.producer_instance =
        instances_of_spec.at(decision.producer_spec).front();
    pairing.consumer_instance =
        instances_of_spec.at(decision.consumer_spec).front();
    pairing.bytes = decision.bytes;
    pairing.style = decision.style;
    result.shared_pairs.push_back(pairing);
    excluded_edges.insert({input.kernels[decision.producer_spec].function,
                           input.kernels[decision.consumer_spec].function});
  }

  // ---- Residual quantities, classification, adaptive mapping. ----
  std::vector<KernelQuantities> residual(input.kernels.size());
  for (std::size_t s = 0; s < input.kernels.size(); ++s) {
    residual[s] = derive_quantities(graph, input.kernels[s].function,
                                    index.hw_set, excluded_edges);
  }
  for (KernelInstance& inst : result.instances) {
    inst.quantities = spec_quantities[inst.spec_index];
    inst.residual = residual[inst.spec_index];
    inst.comm_class = classify(inst.residual);
    const std::optional<InterconnectClass> forced =
        inst.spec_index < decisions.mapping_override.size()
            ? decisions.mapping_override[inst.spec_index]
            : std::nullopt;
    if (forced.has_value()) {
      // A decision, not a derivation: build it even when infeasible so the
      // caller's legality gate (validate_design, the DSE oracles) is what
      // rejects it — the search harness depends on that separation.
      inst.mapping = *forced;
    } else if (input.enable_adaptive_mapping) {
      inst.mapping = adaptive_map(inst.comm_class);
      sim_assert(is_feasible(inst.mapping),
                 "adaptive mapping produced the infeasible {K1,M2} case");
    } else {
      // Naive "map everything" used by the NoC-only comparison system:
      // every kernel and every local memory joins the NoC as well as the
      // system infrastructure.
      inst.mapping = InterconnectClass{KernelConn::kK2, MemConn::kM3};
    }
  }

  // ---- Line 14: map the remaining kernels/memories to the NoC. ----
  std::vector<NocAttachment> attachments;
  for (std::size_t i = 0; i < result.instances.size(); ++i) {
    const KernelInstance& inst = result.instances[i];
    if (inst.mapping.kernel == KernelConn::kK2) {
      attachments.push_back(NocAttachment{i, NocNodeKind::kKernel, 0});
    }
    if (inst.mapping.memory == MemConn::kM2 ||
        inst.mapping.memory == MemConn::kM3) {
      attachments.push_back(NocAttachment{i, NocNodeKind::kLocalMemory, 0});
    }
  }

  // Residual kernel->kernel traffic decides whether a NoC exists at all —
  // unless a mapping override explicitly asked for NoC fabric.
  std::uint64_t residual_kernel_bytes = 0;
  for (const KernelQuantities& q : residual) {
    residual_kernel_bytes += q.kernel_out.count();
  }

  if (!attachments.empty() &&
      (residual_kernel_bytes > 0 || !input.enable_adaptive_mapping ||
       decisions.any_mapping_override())) {
    // Build the placement problem: producer-kernel -> consumer-memory
    // traffic, with duplicated instances splitting their function's bytes.
    std::map<std::pair<std::size_t, NocNodeKind>, std::uint32_t>
        attachment_index;
    for (std::uint32_t a = 0; a < attachments.size(); ++a) {
      attachment_index[{attachments[a].instance, attachments[a].kind}] = a;
    }
    PlacementProblem problem;
    problem.attachment_count =
        static_cast<std::uint32_t>(attachments.size());
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.producer == edge.consumer ||
          index.hw_set.count(edge.producer) == 0 ||
          index.hw_set.count(edge.consumer) == 0 ||
          excluded_edges.count({edge.producer, edge.consumer}) > 0) {
        continue;
      }
      for (const std::size_t pi : instances_of_spec.at(
               index.spec_of_function.at(edge.producer))) {
        for (const std::size_t ci : instances_of_spec.at(
                 index.spec_of_function.at(edge.consumer))) {
          const auto pk = attachment_index.find({pi, NocNodeKind::kKernel});
          const auto cm =
              attachment_index.find({ci, NocNodeKind::kLocalMemory});
          if (pk == attachment_index.end() ||
              cm == attachment_index.end()) {
            continue;
          }
          const double share = result.instances[pi].work_share *
                               result.instances[ci].work_share;
          const auto split_bytes = static_cast<std::uint64_t>(
              static_cast<double>(edge_volume(edge).count()) * share);
          const std::uint32_t a = std::min(pk->second, cm->second);
          const std::uint32_t b = std::max(pk->second, cm->second);
          if (a != b && split_bytes > 0) {
            problem.traffic.emplace_back(a, b, split_bytes);
          }
        }
      }
    }
    const PlacementResult placement =
        input.anneal_placement
            ? place_attachments_annealed(problem, input.placement_seed)
            : place_attachments(problem);
    NocPlan plan;
    plan.mesh_width = placement.mesh.width();
    plan.mesh_height = placement.mesh.height();
    for (std::uint32_t a = 0; a < attachments.size(); ++a) {
      attachments[a].node = placement.node_of[a];
    }
    plan.attachments = std::move(attachments);
    result.noc = std::move(plan);
  }

  // ---- Line 15: parallel solutions (cases 1 & 2). ----
  if (input.enable_parallel) {
    for (std::size_t i = 0; i < result.instances.size(); ++i) {
      const KernelInstance& inst = result.instances[i];
      const KernelSpec& spec = input.kernels[inst.spec_index];
      if (!spec.streaming) {
        continue;
      }
      const double tau =
          cycles_to_seconds(spec.hw_compute_cycles, input.kernel_clock) *
          inst.work_share;
      KernelQuantities scaled = inst.residual;
      scaled.host_in = Bytes{static_cast<std::uint64_t>(
          static_cast<double>(scaled.host_in.count()) * inst.work_share)};
      scaled.host_out = Bytes{static_cast<std::uint64_t>(
          static_cast<double>(scaled.host_out.count()) * inst.work_share)};
      if (delta_pipeline_host(scaled, tau, input.theta,
                              input.stream_overhead_seconds) > 0.0) {
        result.parallel.host_pipelined.push_back(i);
      }
    }
    for (const prof::CommEdge& edge : graph.edges()) {
      if (edge.producer == edge.consumer ||
          index.hw_set.count(edge.producer) == 0 ||
          index.hw_set.count(edge.consumer) == 0) {
        continue;
      }
      const std::size_t ps = index.spec_of_function.at(edge.producer);
      const std::size_t cs = index.spec_of_function.at(edge.consumer);
      if (!input.kernels[ps].streaming || !input.kernels[cs].streaming) {
        continue;
      }
      const double tau_p =
          cycles_to_seconds(input.kernels[ps].hw_compute_cycles,
                            input.kernel_clock);
      const double tau_c =
          cycles_to_seconds(input.kernels[cs].hw_compute_cycles,
                            input.kernel_clock);
      if (delta_pipeline_kernels(tau_p, tau_c,
                                 input.stream_overhead_seconds) <= 0.0) {
        continue;
      }
      for (const std::size_t pi : instances_of_spec.at(ps)) {
        for (const std::size_t ci : instances_of_spec.at(cs)) {
          result.parallel.streamed.push_back(StreamedEdge{pi, ci});
        }
      }
    }
  }

  // ---- Analytical estimate (Eq. 2 + Δ terms). ----
  DesignEstimate& est = result.estimate;
  for (std::size_t s = 0; s < input.kernels.size(); ++s) {
    const double tau = cycles_to_seconds(input.kernels[s].hw_compute_cycles,
                                         input.kernel_clock);
    est.baseline_seconds +=
        baseline_kernel_times(spec_quantities[s], tau, input.theta).total();
  }
  for (const SharedMemoryPairing& pair : result.shared_pairs) {
    est.delta_shared_memory_seconds +=
        delta_shared_memory(pair.bytes, input.theta);
  }
  if (result.noc.has_value()) {
    est.delta_noc_seconds = delta_noc(residual, input.theta);
  }
  for (const std::size_t i : result.parallel.host_pipelined) {
    const KernelInstance& inst = result.instances[i];
    const double tau =
        cycles_to_seconds(input.kernels[inst.spec_index].hw_compute_cycles,
                          input.kernel_clock) *
        inst.work_share;
    est.delta_parallel_seconds += std::max(
        0.0, delta_pipeline_host(inst.residual, tau, input.theta,
                                 input.stream_overhead_seconds));
  }
  for (const StreamedEdge& edge : result.parallel.streamed) {
    const double tau_p = cycles_to_seconds(
        input.kernels[result.instances[edge.producer_instance].spec_index]
            .hw_compute_cycles,
        input.kernel_clock);
    const double tau_c = cycles_to_seconds(
        input.kernels[result.instances[edge.consumer_instance].spec_index]
            .hw_compute_cycles,
        input.kernel_clock);
    est.delta_parallel_seconds += std::max(
        0.0, delta_pipeline_kernels(tau_p, tau_c,
                                    input.stream_overhead_seconds));
  }
  for (const std::size_t s : result.parallel.duplicated_specs) {
    const double tau = cycles_to_seconds(input.kernels[s].hw_compute_cycles,
                                         input.kernel_clock);
    est.delta_duplication_seconds += std::max(
        0.0,
        delta_duplication(tau, input.duplication_overhead_seconds));
  }

  return result;
}

DesignResult design_interconnect(const DesignInput& input) {
  return build_design(input, greedy_decisions(input));
}

}  // namespace hybridic::core
