#include "core/energy_model.hpp"

namespace hybridic::core {

double system_power_watts(Resources resources, const PowerModel& model) {
  return model.static_watts +
         model.watts_per_kilo_lut * static_cast<double>(resources.luts) /
             1000.0 +
         model.watts_per_kilo_reg * static_cast<double>(resources.regs) /
             1000.0;
}

double energy_joules(double watts, double seconds) {
  return watts * seconds;
}

}  // namespace hybridic::core
