// Design validation: sanity-checks a DesignResult against the platform's
// physical constraints before it is built/simulated. Catches issues the
// constructive algorithm cannot produce on its own but hand-edited or
// deserialized designs might carry.
#pragma once

#include <string>
#include <vector>

#include "core/design_result.hpp"
#include "core/kernel_model.hpp"
#include "util/units.hpp"

namespace hybridic::core {

enum class Severity : std::uint8_t { kWarning, kError };

struct ValidationIssue {
  Severity severity = Severity::kWarning;
  std::string message;
};

/// Physical constraints the validator checks against.
struct ValidationContext {
  Bytes bram_capacity{64 * 1024};
  std::uint32_t max_mesh_nodes = 64;
};

/// Validate `design` (built from `specs`). Returns all issues found;
/// an empty vector means the design is clean.
///
/// Errors:
///  - instance referencing a missing spec,
///  - infeasible {K1,M2} mapping,
///  - duplicated-instance work shares not summing to 1 per spec,
///  - NoC attachments off the mesh or sharing a router,
///  - a shared pair whose endpoints are also NoC-paired for the same edge,
///  - direct (crossbar-less) sharing although the consumer has host
///    traffic.
/// Warnings:
///  - kernel input volume exceeding the BRAM capacity (needs chunking),
///  - a NoC bigger than the configured maximum,
///  - kernels with zero compute cycles.
[[nodiscard]] std::vector<ValidationIssue> validate_design(
    const DesignResult& design, const std::vector<KernelSpec>& specs,
    const ValidationContext& context = {});

/// True when no issue of severity kError exists.
[[nodiscard]] bool is_valid(const std::vector<ValidationIssue>& issues);

/// Render issues one per line ("error: ..." / "warning: ...").
[[nodiscard]] std::string format_issues(
    const std::vector<ValidationIssue>& issues);

}  // namespace hybridic::core
