#include "core/comm_classify.hpp"

namespace hybridic::core {

CommClass classify(const KernelQuantities& q) {
  CommClass c;
  const bool in_host = q.host_in.count() > 0;
  const bool in_kernel = q.kernel_in.count() > 0;
  const bool out_host = q.host_out.count() > 0;
  const bool out_kernel = q.kernel_out.count() > 0;

  if (in_kernel && in_host) {
    c.recv = RecvClass::kR3;
  } else if (in_kernel) {
    c.recv = RecvClass::kR1;
  } else {
    c.recv = RecvClass::kR2;
  }

  if (out_kernel && out_host) {
    c.send = SendClass::kS3;
  } else if (out_kernel) {
    c.send = SendClass::kS1;
  } else {
    c.send = SendClass::kS2;
  }
  return c;
}

std::string to_string(RecvClass r) {
  switch (r) {
    case RecvClass::kR1:
      return "R1";
    case RecvClass::kR2:
      return "R2";
    case RecvClass::kR3:
      return "R3";
  }
  return "R?";
}

std::string to_string(SendClass s) {
  switch (s) {
    case SendClass::kS1:
      return "S1";
    case SendClass::kS2:
      return "S2";
    case SendClass::kS3:
      return "S3";
  }
  return "S?";
}

std::string to_string(CommClass c) {
  return "{" + to_string(c.recv) + "," + to_string(c.send) + "}";
}

}  // namespace hybridic::core
