#include "core/design_validate.hpp"

#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace hybridic::core {

namespace {

void error(std::vector<ValidationIssue>& issues, std::string message) {
  issues.push_back(ValidationIssue{Severity::kError, std::move(message)});
}

void warning(std::vector<ValidationIssue>& issues, std::string message) {
  issues.push_back(
      ValidationIssue{Severity::kWarning, std::move(message)});
}

}  // namespace

std::vector<ValidationIssue> validate_design(
    const DesignResult& design, const std::vector<KernelSpec>& specs,
    const ValidationContext& context) {
  std::vector<ValidationIssue> issues;

  // Instances reference real specs; shares sum to one per spec.
  std::map<std::size_t, double> share_sum;
  for (std::size_t i = 0; i < design.instances.size(); ++i) {
    const KernelInstance& inst = design.instances[i];
    if (inst.spec_index >= specs.size()) {
      error(issues, "instance '" + inst.name +
                        "' references spec " +
                        std::to_string(inst.spec_index) +
                        " but only " + std::to_string(specs.size()) +
                        " specs exist");
      continue;
    }
    share_sum[inst.spec_index] += inst.work_share;
    if (!is_feasible(inst.mapping)) {
      error(issues, "instance '" + inst.name +
                        "' carries the infeasible {K1,M2} mapping");
    }
    if (specs[inst.spec_index].hw_compute_cycles.count() == 0) {
      warning(issues, "kernel '" + inst.name +
                          "' has zero compute cycles (calibration?)");
    }
    if (inst.quantities.total_in() > context.bram_capacity) {
      warning(issues,
              "kernel '" + inst.name + "' input volume (" +
                  format_bytes(inst.quantities.total_in()) +
                  ") exceeds its BRAM capacity (" +
                  format_bytes(context.bram_capacity) +
                  "): execution will need input chunking");
    }
  }
  for (const auto& [spec, sum] : share_sum) {
    if (std::fabs(sum - 1.0) > 1e-9) {
      error(issues, "work shares of spec " + std::to_string(spec) +
                        " sum to " + std::to_string(sum) +
                        " instead of 1");
    }
  }

  // Shared pairs.
  for (const SharedMemoryPairing& pair : design.shared_pairs) {
    if (pair.producer_instance >= design.instances.size() ||
        pair.consumer_instance >= design.instances.size()) {
      error(issues, "shared pair references a missing instance");
      continue;
    }
    const KernelInstance& consumer =
        design.instances[pair.consumer_instance];
    const bool consumer_host_traffic =
        consumer.quantities.host_in.count() > 0 ||
        consumer.quantities.host_out.count() > 0;
    if (pair.style == mem::SharingStyle::kDirect &&
        consumer_host_traffic) {
      error(issues,
            "pair (" + design.instances[pair.producer_instance].name +
                " -> " + consumer.name +
                ") shares directly although the consumer has host "
                "traffic; a crossbar is required (paper §IV-A1)");
    }
  }

  // NoC plan.
  if (design.noc.has_value()) {
    const NocPlan& plan = *design.noc;
    const std::uint32_t nodes = plan.mesh_width * plan.mesh_height;
    if (nodes > context.max_mesh_nodes) {
      warning(issues, "NoC mesh has " + std::to_string(nodes) +
                          " nodes, above the configured maximum of " +
                          std::to_string(context.max_mesh_nodes));
    }
    std::set<std::uint32_t> used;
    for (const NocAttachment& a : plan.attachments) {
      if (a.instance >= design.instances.size()) {
        error(issues, "NoC attachment references a missing instance");
        continue;
      }
      if (a.node >= nodes) {
        error(issues, "NoC attachment of '" +
                          design.instances[a.instance].name +
                          "' is placed off the mesh (node " +
                          std::to_string(a.node) + ")");
      }
      if (!used.insert(a.node).second) {
        error(issues, "two NoC attachments share router " +
                          std::to_string(a.node) +
                          " (one component per router)");
      }
    }
  }

  return issues;
}

bool is_valid(const std::vector<ValidationIssue>& issues) {
  for (const ValidationIssue& issue : issues) {
    if (issue.severity == Severity::kError) {
      return false;
    }
  }
  return true;
}

std::string format_issues(const std::vector<ValidationIssue>& issues) {
  std::ostringstream out;
  for (const ValidationIssue& issue : issues) {
    out << (issue.severity == Severity::kError ? "error: " : "warning: ")
        << issue.message << "\n";
  }
  return out.str();
}

}  // namespace hybridic::core
