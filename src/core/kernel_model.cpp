#include "core/kernel_model.hpp"

namespace hybridic::core {

KernelQuantities derive_quantities(
    const prof::CommGraph& graph, prof::FunctionId kernel,
    const std::set<prof::FunctionId>& hw_set,
    const std::set<std::pair<prof::FunctionId, prof::FunctionId>>&
        excluded_edges) {
  KernelQuantities q;
  for (const prof::CommEdge& edge : graph.edges()) {
    if (edge.producer == edge.consumer) {
      continue;  // In-place/self communication never leaves the kernel.
    }
    if (excluded_edges.count({edge.producer, edge.consumer}) > 0) {
      continue;
    }
    if (edge.consumer == kernel) {
      if (hw_set.count(edge.producer) > 0) {
        q.kernel_in += edge_volume(edge);
      } else {
        q.host_in += edge_volume(edge);
      }
    }
    if (edge.producer == kernel) {
      if (hw_set.count(edge.consumer) > 0) {
        q.kernel_out += edge_volume(edge);
      } else {
        q.host_out += edge_volume(edge);
      }
    }
  }
  return q;
}

}  // namespace hybridic::core
