// HybridIC — umbrella header.
//
// Pulls in the full public API: the QUAD-style profiler, the hybrid
// interconnect design algorithm (Algorithm 1 of Pham-Quoc et al., 2014),
// the platform simulation substrates and the experiment pipeline.
//
// Typical flow:
//   prof::QuadProfiler     — profile your application (prof/tracked.hpp)
//   sys::build_schedule    — attach kernel calibration (sys/schedule.hpp)
//   core::design_interconnect — run Algorithm 1
//   sys::run_baseline / run_designed — simulate and compare
//   sys::run_experiment    — all of the above for every system variant
#pragma once

// Utilities.
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

// Simulation engine.
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/stats.hpp"

// Platform substrates.
#include "bus/arbiter.hpp"
#include "bus/bus.hpp"
#include "bus/dma.hpp"
#include "mem/bram.hpp"
#include "mem/crossbar.hpp"
#include "mem/full_crossbar.hpp"
#include "mem/mux.hpp"
#include "mem/port.hpp"
#include "mem/sdram.hpp"
#include "noc/adapter.hpp"
#include "noc/network.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"

// Data-communication profiling (QUAD equivalent).
#include "prof/comm_graph.hpp"
#include "prof/dot_export.hpp"
#include "prof/quad.hpp"
#include "prof/shadow_memory.hpp"
#include "prof/tracked.hpp"

// The paper's contribution.
#include "core/adaptive_mapping.hpp"
#include "core/comm_classify.hpp"
#include "core/design_result.hpp"
#include "core/design_validate.hpp"
#include "core/energy_model.hpp"
#include "core/interconnect_design.hpp"
#include "core/json_export.hpp"
#include "core/kernel_model.hpp"
#include "core/noc_placement.hpp"
#include "core/perf_model.hpp"
#include "core/resource_model.hpp"

// System assembly and execution.
#include "sys/crossbar_system.hpp"
#include "sys/executor.hpp"
#include "sys/experiment.hpp"
#include "sys/pipeline_executor.hpp"
#include "sys/platform.hpp"
#include "sys/schedule.hpp"
#include "sys/timeline.hpp"

// Extensions: runtime reconfigurability (the paper's future work) and
// NoC observability.
#include "noc/vcd_trace.hpp"
#include "reconfig/bitstream_model.hpp"
#include "reconfig/multi_app.hpp"

// The paper's applications.
#include "apps/app.hpp"
#include "apps/canny.hpp"
#include "apps/fluid.hpp"
#include "apps/jpeg.hpp"
#include "apps/klt.hpp"
#include "apps/synthetic.hpp"
