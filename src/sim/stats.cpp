#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hybridic::sim {

void Summary::add(double sample) {
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
}

double Summary::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::reset() { *this = Summary{}; }

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : width_(bucket_width), counts_(bucket_count, 0) {
  require(bucket_width > 0.0, "Histogram bucket width must be positive");
  require(bucket_count > 0, "Histogram needs at least one bucket");
}

void Histogram::add(double sample) {
  ++total_;
  if (sample < 0.0) {
    ++counts_[0];
    return;
  }
  const auto index = static_cast<std::size_t>(sample / width_);
  if (index >= counts_.size()) {
    ++overflow_;
  } else {
    ++counts_[index];
  }
}

std::uint64_t Histogram::bucket(std::size_t index) const {
  sim_assert(index < counts_.size(), "Histogram bucket out of range");
  return counts_[index];
}

double Histogram::quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += static_cast<double>(counts_[i]);
    if (cumulative >= target) {
      return (static_cast<double>(i) + 0.5) * width_;
    }
  }
  return static_cast<double>(counts_.size()) * width_;
}

}  // namespace hybridic::sim
