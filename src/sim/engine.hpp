// The simulation engine: owns the event queue and the global clock, and
// drives registered ticking components.
//
// Periodic work (clocked components) and aperiodic work (one-shot events)
// are kept in separate structures: one-shots live in the binary-heap
// EventQueue, while ticks live in per-clock-domain "tick wheels" holding
// plain {edge, sequence, handle} records — no callable storage at all.
// Both share one global sequence counter, so the merged execution order is
// exactly the documented (time, scheduling-order) FIFO determinism of the
// single-queue design.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event.hpp"
#include "util/units.hpp"

namespace hybridic::sim {

/// Periodically-ticked behaviour attached to a clock domain. The engine only
/// schedules ticks for components that have asked to be active, so idle
/// fabrics cost nothing (important when simulating multi-millisecond runs).
class Ticking {
public:
  virtual ~Ticking() = default;

  /// One rising clock edge in the component's domain. Return true while the
  /// component still has work; returning false suspends ticking until
  /// `Engine::activate` is called for it again.
  virtual bool tick(Picoseconds now) = 0;
};

/// Discrete-event simulation engine with support for clocked components.
class Engine {
public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time.
  [[nodiscard]] Picoseconds now() const { return now_; }

  /// Schedule a one-shot action at absolute time `when` (>= now).
  void schedule_at(Picoseconds when, InlineAction action);

  /// Schedule a one-shot action `delay` after now.
  void schedule_after(Picoseconds delay, InlineAction action);

  /// Register a clocked component; returns a handle used with `activate`.
  std::size_t add_ticking(Ticking& component, const ClockDomain& domain);

  /// Wake a suspended clocked component; its next tick lands on the next
  /// clock edge of its domain. Safe to call redundantly.
  void activate(std::size_t handle);

  /// Run until no events remain or `limit` is reached.
  /// Returns the final simulation time.
  Picoseconds run(Picoseconds limit = Picoseconds{UINT64_MAX});

  /// Run until `predicate` returns true (checked after every event) or the
  /// queue drains. Returns true if the predicate fired.
  bool run_until(const std::function<bool()>& predicate,
                 Picoseconds limit = Picoseconds{UINT64_MAX});

  /// True while any one-shot event or component tick is still queued. After
  /// `run_until` returns false this distinguishes "watchdog limit reached"
  /// (still pending work) from "event queue drained" (deadlock).
  [[nodiscard]] bool has_pending() const { return peek_next().any; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Pending tick-wheel entries across all clock domains (for tests and
  /// introspection; one per scheduled component tick).
  [[nodiscard]] std::size_t pending_ticks() const;

  /// Number of distinct tick wheels (one per distinct clock period among
  /// registered components).
  [[nodiscard]] std::size_t tick_wheel_count() const {
    return wheels_.size();
  }

  /// Drop all state so the engine can host a fresh simulation.
  void reset();

private:
  struct TickingSlot {
    Ticking* component = nullptr;
    const ClockDomain* domain = nullptr;
    std::size_t wheel = 0;
    bool scheduled = false;
  };

  /// One scheduled tick: which component fires at which clock edge. The
  /// sequence number comes from the shared EventQueue counter, so ticks
  /// interleave with one-shot events in exact scheduling order.
  struct TickEntry {
    std::uint64_t edge_index;
    std::uint64_t sequence;
    std::uint32_t handle;
  };

  /// Min-heap of tick entries for all components sharing one clock period.
  struct TickWheel {
    std::uint64_t period_ps = 0;
    std::vector<TickEntry> heap;
  };

  /// Earliest pending work across the event heap and every tick wheel.
  struct NextSource {
    bool any = false;
    bool from_wheel = false;
    std::size_t wheel = 0;
    Picoseconds time{0};
    std::uint64_t sequence = 0;
  };

  void schedule_tick(std::size_t handle);
  void run_tick(std::size_t handle);
  [[nodiscard]] NextSource peek_next() const;
  TickEntry pop_wheel(std::size_t wheel);

  static bool tick_earlier(const TickEntry& a, const TickEntry& b) {
    if (a.edge_index != b.edge_index) {
      return a.edge_index < b.edge_index;
    }
    return a.sequence < b.sequence;
  }

  EventQueue queue_;
  std::vector<TickingSlot> ticking_;
  std::vector<TickWheel> wheels_;
  Picoseconds now_{0};
  std::uint64_t events_executed_ = 0;
};

}  // namespace hybridic::sim
