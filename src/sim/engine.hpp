// The simulation engine: owns the event queue and the global clock, and
// drives registered ticking components.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event.hpp"
#include "util/units.hpp"

namespace hybridic::sim {

/// Periodically-ticked behaviour attached to a clock domain. The engine only
/// schedules ticks for components that have asked to be active, so idle
/// fabrics cost nothing (important when simulating multi-millisecond runs).
class Ticking {
public:
  virtual ~Ticking() = default;

  /// One rising clock edge in the component's domain. Return true while the
  /// component still has work; returning false suspends ticking until
  /// `Engine::activate` is called for it again.
  virtual bool tick(Picoseconds now) = 0;
};

/// Discrete-event simulation engine with support for clocked components.
class Engine {
public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time.
  [[nodiscard]] Picoseconds now() const { return now_; }

  /// Schedule a one-shot action at absolute time `when` (>= now).
  void schedule_at(Picoseconds when, std::function<void()> action);

  /// Schedule a one-shot action `delay` after now.
  void schedule_after(Picoseconds delay, std::function<void()> action);

  /// Register a clocked component; returns a handle used with `activate`.
  std::size_t add_ticking(Ticking& component, const ClockDomain& domain);

  /// Wake a suspended clocked component; its next tick lands on the next
  /// clock edge of its domain. Safe to call redundantly.
  void activate(std::size_t handle);

  /// Run until no events remain or `limit` is reached.
  /// Returns the final simulation time.
  Picoseconds run(Picoseconds limit = Picoseconds{UINT64_MAX});

  /// Run until `predicate` returns true (checked after every event) or the
  /// queue drains. Returns true if the predicate fired.
  bool run_until(const std::function<bool()>& predicate,
                 Picoseconds limit = Picoseconds{UINT64_MAX});

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Drop all state so the engine can host a fresh simulation.
  void reset();

private:
  struct TickingSlot {
    Ticking* component = nullptr;
    const ClockDomain* domain = nullptr;
    bool scheduled = false;
  };

  void schedule_tick(std::size_t handle);

  EventQueue queue_;
  std::vector<TickingSlot> ticking_;
  Picoseconds now_{0};
  std::uint64_t events_executed_ = 0;
};

}  // namespace hybridic::sim
