// Lightweight statistics collection: counters and streaming summaries
// used by the fabrics (bus, NoC) and by benchmark harnesses.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hybridic::sim {

/// Streaming min/max/mean/stddev via Welford's algorithm.
class Summary {
public:
  void add(double sample);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double min() const {
    return count_ > 0 ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return count_ > 0 ? max_ : 0.0;
  }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  void reset();

private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram for latency distributions.
class Histogram {
public:
  /// Buckets: [0,width), [width,2*width), ..., plus an overflow bucket.
  Histogram(double bucket_width, std::size_t bucket_count);

  void add(double sample);

  [[nodiscard]] std::uint64_t bucket(std::size_t index) const;
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_width() const { return width_; }

  /// Approximate p-quantile (q in [0,1]) from bucket midpoints.
  [[nodiscard]] double quantile(double q) const;

private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace hybridic::sim
