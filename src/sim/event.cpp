#include "sim/event.hpp"

#include "util/error.hpp"

namespace hybridic::sim {

void EventQueue::schedule(Picoseconds when, std::function<void()> action) {
  heap_.push(Event{when, next_sequence_++, std::move(action)});
}

Picoseconds EventQueue::next_time() const {
  sim_assert(!heap_.empty(), "next_time() on empty EventQueue");
  return heap_.top().time;
}

Event EventQueue::pop() {
  sim_assert(!heap_.empty(), "pop() on empty EventQueue");
  // priority_queue::top() returns const&; moving requires a copy-pop.
  Event event = heap_.top();
  heap_.pop();
  return event;
}

void EventQueue::clear() {
  while (!heap_.empty()) {
    heap_.pop();
  }
}

}  // namespace hybridic::sim
