#include "sim/event.hpp"

#include "util/error.hpp"

namespace hybridic::sim {

void EventQueue::schedule(Picoseconds when, InlineAction action) {
  heap_.push_back(Event{when, next_sequence_++, std::move(action)});
  sift_up(heap_.size() - 1);
}

Picoseconds EventQueue::next_time() const {
  sim_assert(!heap_.empty(), "next_time() on empty EventQueue");
  return heap_.front().time;
}

std::uint64_t EventQueue::next_sequence() const {
  sim_assert(!heap_.empty(), "next_sequence() on empty EventQueue");
  return heap_.front().sequence;
}

Event EventQueue::pop() {
  sim_assert(!heap_.empty(), "pop() on empty EventQueue");
  Event event = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return event;
}

void EventQueue::clear() { heap_.clear(); }

void EventQueue::sift_up(std::size_t index) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!earlier(heap_[index], heap_[parent])) {
      break;
    }
    std::swap(heap_[index], heap_[parent]);
    index = parent;
  }
}

void EventQueue::sift_down(std::size_t index) {
  const std::size_t count = heap_.size();
  while (true) {
    const std::size_t left = 2 * index + 1;
    if (left >= count) {
      break;
    }
    const std::size_t right = left + 1;
    std::size_t smallest = index;
    if (earlier(heap_[left], heap_[smallest])) {
      smallest = left;
    }
    if (right < count && earlier(heap_[right], heap_[smallest])) {
      smallest = right;
    }
    if (smallest == index) {
      break;
    }
    std::swap(heap_[index], heap_[smallest]);
    index = smallest;
  }
}

}  // namespace hybridic::sim
