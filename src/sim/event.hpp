// Event and event-queue primitives for the discrete-event simulation core.
//
// Events store their callback in an InlineAction — a small-buffer-only
// callable wrapper — so scheduling never touches the heap for the capture
// sizes the simulator actually uses (bus grants, DMA chunk continuations,
// NoC delivery notifications, executor send closures). Oversized captures
// fail to compile instead of silently allocating.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace hybridic::sim {

/// Move-only callable with fixed inline storage and no heap fallback.
///
/// Any callable up to `kInlineBytes` (and `alignof(std::max_align_t)`
/// alignment) is stored in place; larger captures are rejected at compile
/// time with a static_assert, which keeps every schedule() allocation-free
/// by construction. Trivially copyable callables (the common case: a few
/// pointers and plain values) move via memcpy with no manager call.
class InlineAction {
public:
  /// Sized for the largest capture in the hot paths: the NoC loopback
  /// delivery closure (a 32-byte std::function callback plus id, bytes and
  /// timestamp) at 56 bytes.
  static constexpr std::size_t kInlineBytes = 64;

  InlineAction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineAction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineAction(F&& fn) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= kInlineBytes,
                  "callable capture exceeds InlineAction inline storage; "
                  "shrink the capture (e.g. capture a pointer to shared "
                  "state) or raise kInlineBytes");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callable is over-aligned for InlineAction storage");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "InlineAction requires nothrow-movable callables");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
    invoke_ = [](void* self) { (*static_cast<D*>(self))(); };
    if constexpr (!(std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>)) {
      // dst == nullptr → destroy; otherwise relocate (move + destroy src).
      manage_ = [](void* self, void* dst) {
        D* source = static_cast<D*>(self);
        if (dst != nullptr) {
          ::new (dst) D(std::move(*source));
        }
        source->~D();
      };
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

private:
  void reset() noexcept {
    if (manage_ != nullptr) {
      manage_(storage_, nullptr);
      manage_ = nullptr;
    }
    invoke_ = nullptr;
  }

  void move_from(InlineAction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (other.manage_ != nullptr) {
      other.manage_(other.storage_, storage_);
    } else if (other.invoke_ != nullptr) {
      std::memcpy(storage_, other.storage_, kInlineBytes);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(void*, void*) = nullptr;
};

/// Scheduled callback. Events at equal times run in scheduling order
/// (FIFO tie-break via a monotonically increasing sequence number), which
/// keeps the simulation fully deterministic.
struct Event {
  Picoseconds time;
  std::uint64_t sequence;
  InlineAction action;
};

/// Min-heap of events ordered by (time, sequence).
///
/// Hand-rolled over std::priority_queue so pop() can move the event out
/// (priority_queue::top() is const and forces a copy) and so sequence
/// numbers can be shared with the engine's per-domain tick wheels.
class EventQueue {
public:
  /// Schedule `action` at absolute time `when`.
  void schedule(Picoseconds when, InlineAction action);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; queue must not be empty.
  [[nodiscard]] Picoseconds next_time() const;

  /// Sequence number of the earliest pending event; queue must not be
  /// empty. Used to interleave deterministically with tick-wheel entries.
  [[nodiscard]] std::uint64_t next_sequence() const;

  /// Pop and return the earliest event (moved out, never copied); queue
  /// must not be empty.
  Event pop();

  /// Drop all pending events.
  void clear();

  /// Hand out the next global sequence number. The engine uses this for
  /// tick-wheel entries so ticks and one-shots share one FIFO ordering.
  std::uint64_t allocate_sequence() { return next_sequence_++; }

  [[nodiscard]] std::uint64_t total_scheduled() const {
    return next_sequence_;
  }

private:
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.sequence < b.sequence;
  }

  void sift_up(std::size_t index);
  void sift_down(std::size_t index);

  std::vector<Event> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace hybridic::sim
