// Event and event-queue primitives for the discrete-event simulation core.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace hybridic::sim {

/// Scheduled callback. Events at equal times run in scheduling order
/// (FIFO tie-break via a monotonically increasing sequence number), which
/// keeps the simulation fully deterministic.
struct Event {
  Picoseconds time;
  std::uint64_t sequence;
  std::function<void()> action;
};

/// Min-heap of events ordered by (time, sequence).
class EventQueue {
public:
  /// Schedule `action` at absolute time `when`.
  void schedule(Picoseconds when, std::function<void()> action);

  /// True when no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; queue must not be empty.
  [[nodiscard]] Picoseconds next_time() const;

  /// Pop and return the earliest event; queue must not be empty.
  Event pop();

  /// Drop all pending events.
  void clear();

  [[nodiscard]] std::uint64_t total_scheduled() const {
    return next_sequence_;
  }

private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace hybridic::sim
