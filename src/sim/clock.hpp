// Clock domains. The platform mixes a 400 MHz host, 100 MHz kernels/bus and
// a 150 MHz NoC (paper Table II); each domain converts between its local
// cycle count and the global picosecond timeline.
#pragma once

#include <string>

#include "util/units.hpp"

namespace hybridic::sim {

/// A named clock domain with a fixed frequency.
class ClockDomain {
public:
  ClockDomain(std::string name, Frequency frequency)
      : name_(std::move(name)), frequency_(frequency) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Frequency frequency() const { return frequency_; }
  [[nodiscard]] Picoseconds period() const { return frequency_.period(); }

  /// Absolute time of cycle edge `n` (edge 0 at t=0).
  [[nodiscard]] Picoseconds edge(std::uint64_t n) const {
    return Picoseconds{n * period().count()};
  }

  /// Index of the first cycle edge at or after `t`.
  [[nodiscard]] std::uint64_t next_edge_index(Picoseconds t) const {
    const std::uint64_t p = period().count();
    return (t.count() + p - 1) / p;
  }

  /// Absolute time of the first cycle edge at or after `t`.
  [[nodiscard]] Picoseconds align_up(Picoseconds t) const {
    return edge(next_edge_index(t));
  }

  /// Duration of `n` cycles in this domain.
  [[nodiscard]] Picoseconds span(Cycles n) const {
    return Picoseconds{n.count() * period().count()};
  }

private:
  std::string name_;
  Frequency frequency_;
};

}  // namespace hybridic::sim
