#include "sim/engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hybridic::sim {

void Engine::schedule_at(Picoseconds when, InlineAction action) {
  sim_assert(when >= now_, "cannot schedule an event in the past");
  queue_.schedule(when, std::move(action));
}

void Engine::schedule_after(Picoseconds delay, InlineAction action) {
  sim_assert(delay.count() <= UINT64_MAX - now_.count(),
             "schedule_after overflows the picosecond timeline");
  queue_.schedule(now_ + delay, std::move(action));
}

std::size_t Engine::add_ticking(Ticking& component, const ClockDomain& domain) {
  // Components whose domains share a clock period share a wheel; their
  // entries still order globally by (time, sequence), so sharing changes
  // nothing observable.
  const std::uint64_t period_ps = domain.period().count();
  sim_assert(period_ps > 0, "ticking clock domain has a zero period");
  std::size_t wheel = wheels_.size();
  for (std::size_t w = 0; w < wheels_.size(); ++w) {
    if (wheels_[w].period_ps == period_ps) {
      wheel = w;
      break;
    }
  }
  if (wheel == wheels_.size()) {
    wheels_.push_back(TickWheel{period_ps, {}});
  }
  ticking_.push_back(TickingSlot{&component, &domain, wheel, false});
  return ticking_.size() - 1;
}

void Engine::activate(std::size_t handle) {
  sim_assert(handle < ticking_.size(), "invalid ticking handle");
  if (!ticking_[handle].scheduled) {
    schedule_tick(handle);
  }
}

void Engine::schedule_tick(std::size_t handle) {
  TickingSlot& slot = ticking_[handle];
  slot.scheduled = true;
  // Ticks land strictly after `now` so a component activated at its own edge
  // time still sees causally-ordered inputs.
  const std::uint64_t edge =
      slot.domain->next_edge_index(now_ + Picoseconds{1});
  TickWheel& wheel = wheels_[slot.wheel];
  wheel.heap.push_back(TickEntry{edge, queue_.allocate_sequence(),
                                 static_cast<std::uint32_t>(handle)});
  std::push_heap(wheel.heap.begin(), wheel.heap.end(),
                 [](const TickEntry& a, const TickEntry& b) {
                   return tick_earlier(b, a);
                 });
}

void Engine::run_tick(std::size_t handle) {
  TickingSlot& slot = ticking_[handle];
  slot.scheduled = false;
  if (slot.component->tick(now_)) {
    if (!slot.scheduled) {
      schedule_tick(handle);
    }
  }
}

Engine::NextSource Engine::peek_next() const {
  NextSource next;
  if (!queue_.empty()) {
    next.any = true;
    next.time = queue_.next_time();
    next.sequence = queue_.next_sequence();
  }
  for (std::size_t w = 0; w < wheels_.size(); ++w) {
    if (wheels_[w].heap.empty()) {
      continue;
    }
    const TickEntry& top = wheels_[w].heap.front();
    const Picoseconds time{top.edge_index * wheels_[w].period_ps};
    if (!next.any || time < next.time ||
        (time == next.time && top.sequence < next.sequence)) {
      next.any = true;
      next.from_wheel = true;
      next.wheel = w;
      next.time = time;
      next.sequence = top.sequence;
    }
  }
  return next;
}

Engine::TickEntry Engine::pop_wheel(std::size_t wheel) {
  auto& heap = wheels_[wheel].heap;
  std::pop_heap(heap.begin(), heap.end(),
                [](const TickEntry& a, const TickEntry& b) {
                  return tick_earlier(b, a);
                });
  const TickEntry entry = heap.back();
  heap.pop_back();
  return entry;
}

Picoseconds Engine::run(Picoseconds limit) {
  while (true) {
    const NextSource next = peek_next();
    if (!next.any || next.time > limit) {
      break;
    }
    now_ = next.time;
    if (next.from_wheel) {
      const TickEntry entry = pop_wheel(next.wheel);
      run_tick(entry.handle);
    } else {
      Event event = queue_.pop();
      event.action();
    }
    ++events_executed_;
  }
  return now_;
}

bool Engine::run_until(const std::function<bool()>& predicate,
                       Picoseconds limit) {
  if (predicate()) {
    return true;
  }
  while (true) {
    const NextSource next = peek_next();
    if (!next.any || next.time > limit) {
      break;
    }
    now_ = next.time;
    if (next.from_wheel) {
      const TickEntry entry = pop_wheel(next.wheel);
      run_tick(entry.handle);
    } else {
      Event event = queue_.pop();
      event.action();
    }
    ++events_executed_;
    if (predicate()) {
      return true;
    }
  }
  return predicate();
}

std::size_t Engine::pending_ticks() const {
  std::size_t total = 0;
  for (const TickWheel& wheel : wheels_) {
    total += wheel.heap.size();
  }
  return total;
}

void Engine::reset() {
  queue_.clear();
  ticking_.clear();
  wheels_.clear();
  now_ = Picoseconds{0};
  events_executed_ = 0;
}

}  // namespace hybridic::sim
