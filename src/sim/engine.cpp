#include "sim/engine.hpp"

#include "util/error.hpp"

namespace hybridic::sim {

void Engine::schedule_at(Picoseconds when, std::function<void()> action) {
  sim_assert(when >= now_, "cannot schedule an event in the past");
  queue_.schedule(when, std::move(action));
}

void Engine::schedule_after(Picoseconds delay, std::function<void()> action) {
  queue_.schedule(now_ + delay, std::move(action));
}

std::size_t Engine::add_ticking(Ticking& component, const ClockDomain& domain) {
  ticking_.push_back(TickingSlot{&component, &domain, false});
  return ticking_.size() - 1;
}

void Engine::activate(std::size_t handle) {
  sim_assert(handle < ticking_.size(), "invalid ticking handle");
  if (!ticking_[handle].scheduled) {
    schedule_tick(handle);
  }
}

void Engine::schedule_tick(std::size_t handle) {
  TickingSlot& slot = ticking_[handle];
  slot.scheduled = true;
  // Ticks land strictly after `now` so a component activated at its own edge
  // time still sees causally-ordered inputs.
  const Picoseconds edge =
      slot.domain->edge(slot.domain->next_edge_index(now_ + Picoseconds{1}));
  queue_.schedule(edge, [this, handle] {
    TickingSlot& s = ticking_[handle];
    s.scheduled = false;
    if (s.component->tick(now_)) {
      if (!s.scheduled) {
        schedule_tick(handle);
      }
    }
  });
}

Picoseconds Engine::run(Picoseconds limit) {
  while (!queue_.empty() && queue_.next_time() <= limit) {
    Event event = queue_.pop();
    now_ = event.time;
    event.action();
    ++events_executed_;
  }
  return now_;
}

bool Engine::run_until(const std::function<bool()>& predicate,
                       Picoseconds limit) {
  if (predicate()) {
    return true;
  }
  while (!queue_.empty() && queue_.next_time() <= limit) {
    Event event = queue_.pop();
    now_ = event.time;
    event.action();
    ++events_executed_;
    if (predicate()) {
      return true;
    }
  }
  return predicate();
}

void Engine::reset() {
  queue_.clear();
  ticking_.clear();
  now_ = Picoseconds{0};
  events_executed_ = 0;
}

}  // namespace hybridic::sim
