#include "prof/comm_graph.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace hybridic::prof {

FunctionId CommGraph::add_function(std::string name) {
  require(by_name_.find(name) == by_name_.end(),
          "duplicate function name in CommGraph: " + name);
  const auto id = static_cast<FunctionId>(functions_.size());
  by_name_.emplace(name, id);
  functions_.push_back(FunctionProfile{std::move(name), 0, 0, 0, 0});
  return id;
}

FunctionId CommGraph::id_of(const std::string& name) const {
  const auto it = by_name_.find(name);
  require(it != by_name_.end(), "unknown function in CommGraph: " + name);
  return it->second;
}

bool CommGraph::has_function(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

const FunctionProfile& CommGraph::function(FunctionId id) const {
  require(id < functions_.size(), "CommGraph function id out of range");
  return functions_[id];
}

FunctionProfile& CommGraph::function_mutable(FunctionId id) {
  require(id < functions_.size(), "CommGraph function id out of range");
  return functions_[id];
}

void CommGraph::add_transfer(FunctionId producer, FunctionId consumer,
                             Bytes bytes,
                             std::uint64_t new_unique_addresses) {
  require(producer < functions_.size() && consumer < functions_.size(),
          "CommGraph transfer endpoints out of range");
  EdgeData& edge = edges_[{producer, consumer}];
  edge.bytes += bytes.count();
  edge.unique_addresses += new_unique_addresses;
}

std::vector<CommEdge> CommGraph::edges() const {
  std::vector<CommEdge> result;
  result.reserve(edges_.size());
  for (const auto& [key, data] : edges_) {
    if (data.bytes == 0) {
      continue;
    }
    result.push_back(CommEdge{key.first, key.second, Bytes{data.bytes},
                              data.unique_addresses});
  }
  return result;
}

Bytes CommGraph::bytes_between(FunctionId producer,
                               FunctionId consumer) const {
  const auto it = edges_.find({producer, consumer});
  return it == edges_.end() ? Bytes{0} : Bytes{it->second.bytes};
}

Bytes CommGraph::total_out(FunctionId f) const {
  std::uint64_t total = 0;
  for (const auto& [key, data] : edges_) {
    if (key.first == f) {
      total += data.bytes;
    }
  }
  return Bytes{total};
}

Bytes CommGraph::total_in(FunctionId f) const {
  std::uint64_t total = 0;
  for (const auto& [key, data] : edges_) {
    if (key.second == f) {
      total += data.bytes;
    }
  }
  return Bytes{total};
}

std::string CommGraph::summary() const {
  Table table{"Data communication profile"};
  table.set_header({"producer", "consumer", "bytes", "UMAs"});
  for (const CommEdge& edge : edges()) {
    table.add_row({functions_[edge.producer].name,
                   functions_[edge.consumer].name,
                   std::to_string(edge.bytes.count()),
                   std::to_string(edge.unique_addresses)});
  }
  return table.to_string();
}

}  // namespace hybridic::prof
