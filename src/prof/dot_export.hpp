// Graphviz DOT export of the communication graph — the machine-readable
// equivalent of the paper's Fig. 5.
#pragma once

#include <set>
#include <string>

#include "prof/comm_graph.hpp"

namespace hybridic::prof {

/// Render the graph in DOT format. Functions in `hw_functions` (the kernel
/// candidates) are drawn as boxes; edge labels carry bytes and UMA counts.
[[nodiscard]] std::string to_dot(const CommGraph& graph,
                                 const std::set<FunctionId>& hw_functions);

}  // namespace hybridic::prof
