// Quantitative data-communication graph — the output of the profiler.
//
// Matches what the QUAD toolset reports (paper §III-B): for every ordered
// (producer function, consumer function) pair, the exact number of bytes
// transferred and the number of Unique Memory Addresses (UMAs) involved.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace hybridic::prof {

/// Dense function identifier assigned by the profiler.
using FunctionId = std::uint32_t;

/// One directed communication edge.
struct CommEdge {
  FunctionId producer = 0;
  FunctionId consumer = 0;
  Bytes bytes{0};
  std::uint64_t unique_addresses = 0;
};

/// Per-function profile record.
struct FunctionProfile {
  std::string name;
  std::uint64_t work_units = 0;  ///< Explicit op count from instrumentation.
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t calls = 0;
};

/// The communication graph: functions + weighted directed edges.
class CommGraph {
public:
  /// Register a function; names must be unique.
  FunctionId add_function(std::string name);

  /// Look up a function id by name; throws ConfigError if unknown.
  [[nodiscard]] FunctionId id_of(const std::string& name) const;
  [[nodiscard]] bool has_function(const std::string& name) const;

  [[nodiscard]] const FunctionProfile& function(FunctionId id) const;
  [[nodiscard]] FunctionProfile& function_mutable(FunctionId id);
  [[nodiscard]] std::uint32_t function_count() const {
    return static_cast<std::uint32_t>(functions_.size());
  }

  /// Accumulate `bytes`/`umas` onto edge producer->consumer.
  void add_transfer(FunctionId producer, FunctionId consumer, Bytes bytes,
                    std::uint64_t new_unique_addresses);

  /// All edges with non-zero byte counts, ordered by (producer, consumer).
  [[nodiscard]] std::vector<CommEdge> edges() const;

  /// Bytes flowing producer->consumer (zero if no edge).
  [[nodiscard]] Bytes bytes_between(FunctionId producer,
                                    FunctionId consumer) const;

  /// Total bytes produced by `f` for consumers in `consumers` set semantics:
  /// convenience reducers used by the kernel model.
  [[nodiscard]] Bytes total_out(FunctionId f) const;
  [[nodiscard]] Bytes total_in(FunctionId f) const;

  /// Human-readable summary table.
  [[nodiscard]] std::string summary() const;

private:
  struct EdgeData {
    std::uint64_t bytes = 0;
    std::uint64_t unique_addresses = 0;
  };

  std::vector<FunctionProfile> functions_;
  std::map<std::string, FunctionId> by_name_;
  std::map<std::pair<FunctionId, FunctionId>, EdgeData> edges_;
};

}  // namespace hybridic::prof
