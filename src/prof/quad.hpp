// QuadProfiler — the in-process equivalent of the QUAD toolset the paper
// uses (§III-B). Applications run their real algorithms against tracked
// buffers; the profiler attributes every read to the function that last
// wrote each byte, producing the quantitative communication graph
// (bytes + unique memory addresses per producer→consumer pair) that drives
// the interconnect design algorithm.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "prof/byte_set.hpp"
#include "prof/comm_graph.hpp"
#include "prof/shadow_memory.hpp"
#include "util/units.hpp"

namespace hybridic::prof {

/// The profiling runtime. Single-threaded by design — a profiled run is a
/// deterministic re-execution of the application.
class QuadProfiler {
public:
  QuadProfiler() = default;
  QuadProfiler(const QuadProfiler&) = delete;
  QuadProfiler& operator=(const QuadProfiler&) = delete;

  /// Declare a function; returns its id. Names must be unique.
  FunctionId declare(std::string name);

  /// Enter/leave the dynamic scope of a function. Nested calls allowed.
  void enter(FunctionId function);
  void leave();

  /// Currently executing function; throws if no scope is open.
  [[nodiscard]] FunctionId current() const;

  /// Reserve `bytes` of tracked virtual address space.
  [[nodiscard]] std::uint64_t allocate(std::uint64_t bytes,
                                       std::uint64_t alignment = 64);

  /// Record a write of [addr, addr+size) by the current function.
  void record_write(std::uint64_t addr, std::uint64_t size);

  /// Record a read of [addr, addr+size) by the current function; attributes
  /// each byte to its last writer.
  void record_read(std::uint64_t addr, std::uint64_t size);

  /// Add explicit computational work units to the current function (the
  /// op count used to calibrate kernel compute times).
  void add_work(std::uint64_t units);

  [[nodiscard]] const CommGraph& graph() const { return graph_; }
  [[nodiscard]] const ShadowMemory& shadow() const { return shadow_; }

  /// Depth of the current call stack (0 outside any function).
  [[nodiscard]] std::size_t call_depth() const { return stack_.size(); }

  // ---- Memory-footprint analysis (QUAD's flat memory profile). ----

  /// Unique bytes ever written by `function` (its produced footprint).
  [[nodiscard]] std::uint64_t unique_bytes_written(
      FunctionId function) const;

  /// Unique bytes ever read by `function` (its consumed footprint).
  [[nodiscard]] std::uint64_t unique_bytes_read(FunctionId function) const;

  /// Flat per-function memory profile: calls, work, raw and unique bytes.
  [[nodiscard]] std::string memory_report() const;

  /// Functions in first-invocation order — the observed program order the
  /// schedule builder uses (functions never entered are absent).
  [[nodiscard]] const std::vector<FunctionId>& call_order() const {
    return first_call_order_;
  }

private:
  CommGraph graph_;
  ShadowMemory shadow_;
  std::vector<FunctionId> stack_;
  std::vector<PagedByteSet> write_footprint_;
  std::vector<PagedByteSet> read_footprint_;
  std::vector<FunctionId> first_call_order_;
  std::uint64_t next_addr_ = 0x1000;

  /// Per-edge sets for UMA counting.
  std::map<std::pair<FunctionId, FunctionId>, PagedByteSet> uma_;
};

/// RAII scope for QuadProfiler::enter/leave.
class ScopedFunction {
public:
  ScopedFunction(QuadProfiler& profiler, FunctionId function)
      : profiler_(&profiler) {
    profiler_->enter(function);
  }
  ~ScopedFunction() { profiler_->leave(); }

  ScopedFunction(const ScopedFunction&) = delete;
  ScopedFunction& operator=(const ScopedFunction&) = delete;

private:
  QuadProfiler* profiler_;
};

}  // namespace hybridic::prof
