// QuadProfiler — the in-process equivalent of the QUAD toolset the paper
// uses (§III-B). Applications run their real algorithms against tracked
// buffers; the profiler attributes every read to the function that last
// wrote each byte, producing the quantitative communication graph
// (bytes + unique memory addresses per producer→consumer pair) that drives
// the interconnect design algorithm.
//
// Two attribution modes (docs/MODEL.md §15):
//  - kEager: every record_read scans shadow memory immediately — the
//    original behaviour, still the default for direct profiler use.
//  - kDeferred: record_write/record_read append to a coalesced event trace
//    and attribution runs in finalize(), which can shard the replay by
//    shadow page across a ThreadPool. Because the shards partition the
//    byte address space, per-edge byte and UMA totals are exact integer
//    sums over shards — the CommGraph is byte-identical to an eager run at
//    any shard or thread count.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "prof/byte_set.hpp"
#include "prof/comm_graph.hpp"
#include "prof/shadow_memory.hpp"
#include "util/units.hpp"

namespace hybridic {
class ThreadPool;
}  // namespace hybridic

namespace hybridic::prof {

/// When read→last-writer attribution happens (see file comment).
enum class ProfileMode { kEager, kDeferred };

/// Value snapshot of a finished profile: everything the design pipeline
/// consumes downstream of profiling (graph, per-function counters, unique
/// footprints, observed call order) — and nothing it does not (no shadow
/// pages, no event trace). This is the unit the persistent store
/// serializes; QuadProfiler::from_snapshot rebuilds an equivalent profiler.
struct ProfileSnapshot {
  struct Function {
    std::string name;
    std::uint64_t work_units = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t calls = 0;
    std::uint64_t unique_bytes_read = 0;
    std::uint64_t unique_bytes_written = 0;
  };
  struct Edge {
    FunctionId producer = 0;
    FunctionId consumer = 0;
    std::uint64_t bytes = 0;
    std::uint64_t unique_addresses = 0;
  };
  std::vector<Function> functions;
  std::vector<Edge> edges;  ///< (producer, consumer) order, non-zero bytes.
  std::vector<FunctionId> call_order;
};

/// The profiling runtime. Single-threaded by design — a profiled run is a
/// deterministic re-execution of the application. (finalize() may fan the
/// replay out over a pool, but the recording API stays single-threaded.)
class QuadProfiler {
public:
  explicit QuadProfiler(ProfileMode mode = ProfileMode::kEager)
      : mode_(mode) {}
  QuadProfiler(const QuadProfiler&) = delete;
  QuadProfiler& operator=(const QuadProfiler&) = delete;

  /// Declare a function; returns its id. Names must be unique.
  FunctionId declare(std::string name);

  /// Enter/leave the dynamic scope of a function. Nested calls allowed.
  void enter(FunctionId function);
  void leave();

  /// Currently executing function; throws if no scope is open.
  [[nodiscard]] FunctionId current() const;

  /// Reserve `bytes` of tracked virtual address space.
  [[nodiscard]] std::uint64_t allocate(std::uint64_t bytes,
                                       std::uint64_t alignment = 64);

  /// Record a write of [addr, addr+size) by the current function.
  void record_write(std::uint64_t addr, std::uint64_t size);

  /// Record a read of [addr, addr+size) by the current function; attributes
  /// each byte to its last writer (in finalize() when deferred).
  void record_read(std::uint64_t addr, std::uint64_t size);

  /// Add explicit computational work units to the current function (the
  /// op count used to calibrate kernel compute times).
  void add_work(std::uint64_t units);

  /// Replay the deferred event trace into shadow memory and the comm
  /// graph. No-op in eager mode or when already finalized (idempotent).
  /// With a pool (defaults to the ambient ThreadPool::current()) the
  /// replay is sharded by shadow page and runs in parallel; the resulting
  /// graph is byte-identical either way. After finalize() the profiler
  /// behaves exactly like an eager one (further record_* calls allowed).
  void finalize(ThreadPool* pool = nullptr);

  /// Deferred events currently buffered (0 in eager mode / after
  /// finalize) — exposed for tests and memory accounting.
  [[nodiscard]] std::size_t pending_events() const { return trace_.size(); }

  [[nodiscard]] ProfileMode mode() const { return mode_; }

  [[nodiscard]] const CommGraph& graph() const { return graph_; }
  [[nodiscard]] const ShadowMemory& shadow() const { return shadow_; }

  /// Depth of the current call stack (0 outside any function).
  [[nodiscard]] std::size_t call_depth() const { return stack_.size(); }

  // ---- Memory-footprint analysis (QUAD's flat memory profile). ----

  /// Unique bytes ever written by `function` (its produced footprint).
  [[nodiscard]] std::uint64_t unique_bytes_written(
      FunctionId function) const;

  /// Unique bytes ever read by `function` (its consumed footprint).
  [[nodiscard]] std::uint64_t unique_bytes_read(FunctionId function) const;

  /// Flat per-function memory profile: calls, work, raw and unique bytes.
  [[nodiscard]] std::string memory_report() const;

  /// Functions in first-invocation order — the observed program order the
  /// schedule builder uses (functions never entered are absent).
  [[nodiscard]] const std::vector<FunctionId>& call_order() const {
    return first_call_order_;
  }

  // ---- Persistence (src/store/ profile codec). ----

  /// Capture the downstream-visible profile. Requires a finalized (or
  /// eager) profiler with no open scopes.
  [[nodiscard]] ProfileSnapshot snapshot() const;

  /// Rebuild a profiler from a snapshot. The result serves every read-side
  /// query (graph, footprint counts, call order, memory_report) with the
  /// snapshotted values, but owns no shadow pages: further record_* calls
  /// throw — a restored profile is a finished artifact, not a session.
  [[nodiscard]] static std::unique_ptr<QuadProfiler> from_snapshot(
      const ProfileSnapshot& snap);

  /// True when this profiler was rebuilt via from_snapshot().
  [[nodiscard]] bool restored() const { return restored_; }

  /// Rough resident footprint in bytes (shadow pages, footprint bitmaps,
  /// UMA bitmaps, buffered trace) — the L1 cache's eviction accounting.
  [[nodiscard]] std::uint64_t approx_memory_bytes() const;

private:
  /// One deferred access: [addr, addr+size) by function `fn_op >> 1`;
  /// low bit set = write. Coalescing in record_* merges strictly adjacent
  /// same-function same-op accesses, which never changes attribution:
  /// between two consecutive trace entries no other event exists, so
  /// processing [a,a+s1) then [a+s1,a+s1+s2) equals one [a,a+s1+s2) pass.
  struct TraceEvent {
    std::uint64_t addr = 0;
    std::uint32_t size = 0;
    std::uint32_t fn_op = 0;
  };

  void attribute_read_eager(FunctionId consumer, std::uint64_t addr,
                            std::uint64_t size);
  void replay_serial();
  void replay_sharded(ThreadPool& pool);

  ProfileMode mode_ = ProfileMode::kEager;
  bool finalized_ = false;
  bool restored_ = false;
  CommGraph graph_;
  ShadowMemory shadow_;
  std::vector<TraceEvent> trace_;
  std::vector<FunctionId> stack_;
  std::vector<PagedByteSet> write_footprint_;
  std::vector<PagedByteSet> read_footprint_;
  /// Unique-footprint counts carried over by from_snapshot (the bitmaps
  /// themselves are not serialized).
  std::vector<std::uint64_t> restored_unique_read_;
  std::vector<std::uint64_t> restored_unique_written_;
  std::vector<FunctionId> first_call_order_;
  std::uint64_t next_addr_ = 0x1000;

  /// Per-edge sets for UMA counting.
  std::map<std::pair<FunctionId, FunctionId>, PagedByteSet> uma_;
};

/// RAII scope for QuadProfiler::enter/leave.
class ScopedFunction {
public:
  ScopedFunction(QuadProfiler& profiler, FunctionId function)
      : profiler_(&profiler) {
    profiler_->enter(function);
  }
  ~ScopedFunction() { profiler_->leave(); }

  ScopedFunction(const ScopedFunction&) = delete;
  ScopedFunction& operator=(const ScopedFunction&) = delete;

private:
  QuadProfiler* profiler_;
};

}  // namespace hybridic::prof
