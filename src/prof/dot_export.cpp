#include "prof/dot_export.hpp"

#include <sstream>

#include "util/units.hpp"

namespace hybridic::prof {

std::string to_dot(const CommGraph& graph,
                   const std::set<FunctionId>& hw_functions) {
  std::ostringstream out;
  out << "digraph comm {\n";
  out << "  rankdir=LR;\n";
  for (FunctionId id = 0; id < graph.function_count(); ++id) {
    const FunctionProfile& fn = graph.function(id);
    const bool is_hw = hw_functions.count(id) > 0;
    out << "  f" << id << " [label=\"" << fn.name << "\" shape="
        << (is_hw ? "box" : "ellipse")
        << (is_hw ? " style=filled fillcolor=lightblue" : "") << "];\n";
  }
  for (const CommEdge& edge : graph.edges()) {
    if (edge.producer == edge.consumer) {
      continue;  // Self-communication is local to the function.
    }
    out << "  f" << edge.producer << " -> f" << edge.consumer << " [label=\""
        << format_bytes(edge.bytes) << " / " << edge.unique_addresses
        << " UMA\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace hybridic::prof
