#include "prof/quad.hpp"

#include <limits>

#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace hybridic::prof {

namespace {

/// Shards in the parallel replay partition. Fixed — NOT derived from the
/// thread count — so the shard structure (and therefore every integer sum)
/// is the same no matter how many workers execute it. Sixteen shards keep
/// all cores busy up to 16-way parallelism while the per-shard trace walk
/// stays cheap.
constexpr std::size_t kReplayShards = 16;

/// Below this many events the sharded replay's per-shard trace walks cost
/// more than they save; replay serially instead.
constexpr std::size_t kSerialReplayThreshold = 4096;

constexpr std::uint64_t kShadowPage = ShadowMemory::kPageBytes;

std::size_t shard_of_page(std::uint64_t page) { return page % kReplayShards; }

}  // namespace

FunctionId QuadProfiler::declare(std::string name) {
  const FunctionId id = graph_.add_function(std::move(name));
  write_footprint_.emplace_back();
  read_footprint_.emplace_back();
  return id;
}

void QuadProfiler::enter(FunctionId function) {
  require(function < graph_.function_count(),
          "enter() with undeclared function");
  stack_.push_back(function);
  if (graph_.function_mutable(function).calls == 0) {
    first_call_order_.push_back(function);
  }
  ++graph_.function_mutable(function).calls;
}

void QuadProfiler::leave() {
  require(!stack_.empty(), "leave() without matching enter()");
  stack_.pop_back();
}

FunctionId QuadProfiler::current() const {
  require(!stack_.empty(), "profiled memory access outside any function");
  return stack_.back();
}

std::uint64_t QuadProfiler::allocate(std::uint64_t bytes,
                                     std::uint64_t alignment) {
  require(alignment > 0, "allocation alignment must be non-zero");
  next_addr_ = (next_addr_ + alignment - 1) / alignment * alignment;
  const std::uint64_t base = next_addr_;
  next_addr_ += bytes == 0 ? alignment : bytes;
  return base;
}

void QuadProfiler::record_write(std::uint64_t addr, std::uint64_t size) {
  require(!restored_, "record_write on a profiler restored from a snapshot");
  const FunctionId writer = current();
  graph_.function_mutable(writer).writes += size;
  write_footprint_[writer].insert_range(addr, size);
  if (mode_ == ProfileMode::kDeferred && !finalized_) {
    const std::uint32_t fn_op = (writer << 1) | 1U;
    if (!trace_.empty() && trace_.back().fn_op == fn_op &&
        trace_.back().addr + trace_.back().size == addr &&
        trace_.back().size + size <=
            std::numeric_limits<std::uint32_t>::max()) {
      trace_.back().size += static_cast<std::uint32_t>(size);
      return;
    }
    while (size > std::numeric_limits<std::uint32_t>::max()) {
      trace_.push_back(TraceEvent{
          addr, std::numeric_limits<std::uint32_t>::max(), fn_op});
      addr += std::numeric_limits<std::uint32_t>::max();
      size -= std::numeric_limits<std::uint32_t>::max();
    }
    trace_.push_back(TraceEvent{addr, static_cast<std::uint32_t>(size),
                                fn_op});
    return;
  }
  shadow_.write(addr, size, writer);
}

void QuadProfiler::record_read(std::uint64_t addr, std::uint64_t size) {
  require(!restored_, "record_read on a profiler restored from a snapshot");
  const FunctionId consumer = current();
  graph_.function_mutable(consumer).reads += size;
  read_footprint_[consumer].insert_range(addr, size);
  if (mode_ == ProfileMode::kDeferred && !finalized_) {
    const std::uint32_t fn_op = consumer << 1;
    if (!trace_.empty() && trace_.back().fn_op == fn_op &&
        trace_.back().addr + trace_.back().size == addr &&
        trace_.back().size + size <=
            std::numeric_limits<std::uint32_t>::max()) {
      trace_.back().size += static_cast<std::uint32_t>(size);
      return;
    }
    while (size > std::numeric_limits<std::uint32_t>::max()) {
      trace_.push_back(TraceEvent{
          addr, std::numeric_limits<std::uint32_t>::max(), fn_op});
      addr += std::numeric_limits<std::uint32_t>::max();
      size -= std::numeric_limits<std::uint32_t>::max();
    }
    trace_.push_back(TraceEvent{addr, static_cast<std::uint32_t>(size),
                                fn_op});
    return;
  }
  attribute_read_eager(consumer, addr, size);
}

void QuadProfiler::attribute_read_eager(FunctionId consumer,
                                        std::uint64_t addr,
                                        std::uint64_t size) {
  shadow_.scan(addr, size,
               [this, consumer](std::uint64_t run_start, std::uint64_t length,
                                FunctionId producer) {
                 if (producer == kNoWriter) {
                   return;  // Uninitialized data: no communication edge.
                 }
                 const std::uint64_t fresh =
                     uma_[{producer, consumer}].insert_range(run_start,
                                                             length);
                 graph_.add_transfer(producer, consumer, Bytes{length},
                                     fresh);
               });
}

void QuadProfiler::add_work(std::uint64_t units) {
  graph_.function_mutable(current()).work_units += units;
}

void QuadProfiler::finalize(ThreadPool* pool) {
  if (mode_ != ProfileMode::kDeferred || finalized_) {
    finalized_ = true;
    return;
  }
  finalized_ = true;
  if (trace_.empty()) {
    return;
  }
  if (pool == nullptr) {
    pool = ThreadPool::current();
  }
  if (pool == nullptr || pool->thread_count() <= 1 ||
      trace_.size() < kSerialReplayThreshold) {
    replay_serial();
  } else {
    replay_sharded(*pool);
  }
  trace_.clear();
  trace_.shrink_to_fit();
}

void QuadProfiler::replay_serial() {
  for (const TraceEvent& event : trace_) {
    const auto fn = static_cast<FunctionId>(event.fn_op >> 1);
    if ((event.fn_op & 1U) != 0) {
      shadow_.write(event.addr, event.size, fn);
    } else {
      attribute_read_eager(fn, event.addr, event.size);
    }
  }
}

void QuadProfiler::replay_sharded(ThreadPool& pool) {
  // Each shard owns the pages with page_index % kReplayShards == shard and
  // replays the full trace restricted to those pages into private state.
  // Byte-disjoint shards mean per-edge byte/UMA counts partition exactly,
  // so the serial merge below reproduces the eager totals bit for bit.
  struct Shard {
    ShadowMemory shadow;
    std::map<std::pair<FunctionId, FunctionId>, PagedByteSet> uma;
    struct EdgeAccum {
      std::uint64_t bytes = 0;
      std::uint64_t unique_addresses = 0;
    };
    std::map<std::pair<FunctionId, FunctionId>, EdgeAccum> edges;
  };
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(kReplayShards);
  for (std::size_t i = 0; i < kReplayShards; ++i) {
    shards.push_back(std::make_unique<Shard>());
  }

  TaskGroup group{&pool};
  for (std::size_t index = 0; index < kReplayShards; ++index) {
    group.add([this, index, shard = shards[index].get()] {
      for (const TraceEvent& event : trace_) {
        const auto fn = static_cast<FunctionId>(event.fn_op >> 1);
        const bool is_write = (event.fn_op & 1U) != 0;
        std::uint64_t pos = event.addr;
        const std::uint64_t end = event.addr + event.size;
        while (pos < end) {
          const std::uint64_t in_page =
              std::min(end - pos, kShadowPage - pos % kShadowPage);
          if (shard_of_page(pos / kShadowPage) == index) {
            if (is_write) {
              shard->shadow.write(pos, in_page, fn);
            } else {
              shard->shadow.scan(
                  pos, in_page,
                  [shard, fn](std::uint64_t run_start, std::uint64_t length,
                              FunctionId producer) {
                    if (producer == kNoWriter) {
                      return;
                    }
                    const std::uint64_t fresh =
                        shard->uma[{producer, fn}].insert_range(run_start,
                                                                length);
                    auto& edge = shard->edges[{producer, fn}];
                    edge.bytes += length;
                    edge.unique_addresses += fresh;
                  });
            }
          }
          pos += in_page;
        }
      }
    });
  }
  group.run_and_wait();

  // Serial merge, shard order. Edge sums are order-independent integers;
  // shadow pages and UMA bitmaps are page-disjoint across shards.
  for (auto& shard : shards) {
    for (const auto& [key, edge] : shard->edges) {
      graph_.add_transfer(key.first, key.second, Bytes{edge.bytes},
                          edge.unique_addresses);
    }
    shadow_.absorb(shard->shadow);
    for (auto& [key, set] : shard->uma) {
      // Page-disjoint across shards; the merged sets keep post-finalize
      // eager reads counting fresh addresses correctly.
      uma_[key].absorb(set);
    }
  }
}

std::uint64_t QuadProfiler::unique_bytes_written(FunctionId function) const {
  require(function < write_footprint_.size(),
          "footprint query for undeclared function");
  if (restored_) {
    return restored_unique_written_[function];
  }
  return write_footprint_[function].size();
}

std::uint64_t QuadProfiler::unique_bytes_read(FunctionId function) const {
  require(function < read_footprint_.size(),
          "footprint query for undeclared function");
  if (restored_) {
    return restored_unique_read_[function];
  }
  return read_footprint_[function].size();
}

std::string QuadProfiler::memory_report() const {
  Table table{"Memory profile"};
  table.set_header({"function", "calls", "work", "bytes read",
                    "unique read", "bytes written", "unique written"});
  for (FunctionId id = 0; id < graph_.function_count(); ++id) {
    const FunctionProfile& fn = graph_.function(id);
    table.add_row({fn.name, std::to_string(fn.calls),
                   std::to_string(fn.work_units),
                   std::to_string(fn.reads),
                   std::to_string(unique_bytes_read(id)),
                   std::to_string(fn.writes),
                   std::to_string(unique_bytes_written(id))});
  }
  return table.to_string();
}

ProfileSnapshot QuadProfiler::snapshot() const {
  require(stack_.empty(), "snapshot() with open function scopes");
  require(mode_ != ProfileMode::kDeferred || finalized_ || trace_.empty(),
          "snapshot() before finalize() on a deferred profiler");
  ProfileSnapshot snap;
  snap.functions.reserve(graph_.function_count());
  for (FunctionId id = 0; id < graph_.function_count(); ++id) {
    const FunctionProfile& fn = graph_.function(id);
    snap.functions.push_back(ProfileSnapshot::Function{
        fn.name, fn.work_units, fn.reads, fn.writes, fn.calls,
        unique_bytes_read(id), unique_bytes_written(id)});
  }
  for (const CommEdge& edge : graph_.edges()) {
    snap.edges.push_back(ProfileSnapshot::Edge{
        edge.producer, edge.consumer, edge.bytes.count(),
        edge.unique_addresses});
  }
  snap.call_order = first_call_order_;
  return snap;
}

std::unique_ptr<QuadProfiler> QuadProfiler::from_snapshot(
    const ProfileSnapshot& snap) {
  auto profiler = std::make_unique<QuadProfiler>(ProfileMode::kEager);
  profiler->finalized_ = true;
  for (const ProfileSnapshot::Function& fn : snap.functions) {
    const FunctionId id = profiler->declare(fn.name);
    FunctionProfile& record = profiler->graph_.function_mutable(id);
    record.work_units = fn.work_units;
    record.reads = fn.reads;
    record.writes = fn.writes;
    record.calls = fn.calls;
    profiler->restored_unique_read_.push_back(fn.unique_bytes_read);
    profiler->restored_unique_written_.push_back(fn.unique_bytes_written);
  }
  for (const ProfileSnapshot::Edge& edge : snap.edges) {
    require(edge.producer < profiler->graph_.function_count() &&
                edge.consumer < profiler->graph_.function_count(),
            "snapshot edge references undeclared function");
    profiler->graph_.add_transfer(edge.producer, edge.consumer,
                                  Bytes{edge.bytes}, edge.unique_addresses);
  }
  for (const FunctionId id : snap.call_order) {
    require(id < profiler->graph_.function_count(),
            "snapshot call order references undeclared function");
  }
  profiler->first_call_order_ = snap.call_order;
  // Flag restored *after* rebuild so the loop above could use declare().
  profiler->restored_ = true;
  return profiler;
}

std::uint64_t QuadProfiler::approx_memory_bytes() const {
  std::uint64_t total = sizeof(QuadProfiler);
  total += shadow_.page_count() *
           (ShadowMemory::kPageBytes * sizeof(FunctionId) + 64);
  total += trace_.capacity() * sizeof(TraceEvent);
  constexpr std::uint64_t kBitmapPageBytes = PagedByteSet::kPageBytes / 8 + 64;
  for (const PagedByteSet& set : write_footprint_) {
    total += set.page_count() * kBitmapPageBytes;
  }
  for (const PagedByteSet& set : read_footprint_) {
    total += set.page_count() * kBitmapPageBytes;
  }
  for (const auto& [key, set] : uma_) {
    (void)key;
    total += set.page_count() * kBitmapPageBytes + 64;
  }
  for (FunctionId id = 0; id < graph_.function_count(); ++id) {
    total += graph_.function(id).name.size() + 128;
  }
  return total;
}

}  // namespace hybridic::prof
