#include "prof/quad.hpp"

#include "util/error.hpp"
#include "util/table.hpp"

namespace hybridic::prof {

FunctionId QuadProfiler::declare(std::string name) {
  const FunctionId id = graph_.add_function(std::move(name));
  write_footprint_.emplace_back();
  read_footprint_.emplace_back();
  return id;
}

void QuadProfiler::enter(FunctionId function) {
  require(function < graph_.function_count(),
          "enter() with undeclared function");
  stack_.push_back(function);
  if (graph_.function_mutable(function).calls == 0) {
    first_call_order_.push_back(function);
  }
  ++graph_.function_mutable(function).calls;
}

void QuadProfiler::leave() {
  require(!stack_.empty(), "leave() without matching enter()");
  stack_.pop_back();
}

FunctionId QuadProfiler::current() const {
  require(!stack_.empty(), "profiled memory access outside any function");
  return stack_.back();
}

std::uint64_t QuadProfiler::allocate(std::uint64_t bytes,
                                     std::uint64_t alignment) {
  require(alignment > 0, "allocation alignment must be non-zero");
  next_addr_ = (next_addr_ + alignment - 1) / alignment * alignment;
  const std::uint64_t base = next_addr_;
  next_addr_ += bytes == 0 ? alignment : bytes;
  return base;
}

void QuadProfiler::record_write(std::uint64_t addr, std::uint64_t size) {
  const FunctionId writer = current();
  shadow_.write(addr, size, writer);
  graph_.function_mutable(writer).writes += size;
  write_footprint_[writer].insert_range(addr, size);
}

void QuadProfiler::record_read(std::uint64_t addr, std::uint64_t size) {
  const FunctionId consumer = current();
  graph_.function_mutable(consumer).reads += size;
  read_footprint_[consumer].insert_range(addr, size);
  shadow_.scan(addr, size,
               [this, consumer](std::uint64_t run_start, std::uint64_t length,
                                FunctionId producer) {
                 if (producer == kNoWriter) {
                   return;  // Uninitialized data: no communication edge.
                 }
                 const std::uint64_t fresh =
                     uma_[{producer, consumer}].insert_range(run_start,
                                                             length);
                 graph_.add_transfer(producer, consumer, Bytes{length},
                                     fresh);
               });
}

void QuadProfiler::add_work(std::uint64_t units) {
  graph_.function_mutable(current()).work_units += units;
}

std::uint64_t QuadProfiler::unique_bytes_written(FunctionId function) const {
  require(function < write_footprint_.size(),
          "footprint query for undeclared function");
  return write_footprint_[function].size();
}

std::uint64_t QuadProfiler::unique_bytes_read(FunctionId function) const {
  require(function < read_footprint_.size(),
          "footprint query for undeclared function");
  return read_footprint_[function].size();
}

std::string QuadProfiler::memory_report() const {
  Table table{"Memory profile"};
  table.set_header({"function", "calls", "work", "bytes read",
                    "unique read", "bytes written", "unique written"});
  for (FunctionId id = 0; id < graph_.function_count(); ++id) {
    const FunctionProfile& fn = graph_.function(id);
    table.add_row({fn.name, std::to_string(fn.calls),
                   std::to_string(fn.work_units),
                   std::to_string(fn.reads),
                   std::to_string(unique_bytes_read(id)),
                   std::to_string(fn.writes),
                   std::to_string(unique_bytes_written(id))});
  }
  return table.to_string();
}

}  // namespace hybridic::prof
