#include "prof/shadow_memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace hybridic::prof {

ShadowMemory::Page& ShadowMemory::page_for(std::uint64_t addr) {
  const std::uint64_t key = addr / kPageBytes;
  if (cached_page_ != nullptr && key == cached_key_) {
    return *cached_page_;
  }
  auto& slot = pages_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Page>();
    slot->fill(kNoWriter);
  }
  cached_key_ = key;
  cached_page_ = slot.get();
  return *slot;
}

const ShadowMemory::Page* ShadowMemory::page_of(std::uint64_t addr) const {
  return lookup_page(addr / kPageBytes);
}

void ShadowMemory::write(std::uint64_t addr, std::uint64_t size,
                         FunctionId writer) {
  std::uint64_t pos = addr;
  const std::uint64_t end = addr + size;
  while (pos < end) {
    Page& page = page_for(pos);
    const std::uint64_t offset = pos % kPageBytes;
    const std::uint64_t in_page = std::min(end - pos, kPageBytes - offset);
    std::fill_n(page.begin() + static_cast<std::ptrdiff_t>(offset),
                in_page, writer);
    pos += in_page;
  }
}

void ShadowMemory::absorb(ShadowMemory& other) {
  for (auto& [key, page] : other.pages_) {
    auto [it, inserted] = pages_.emplace(key, std::move(page));
    (void)it;
    if (!inserted) {
      // Disjointness is a caller invariant; colliding pages would mean two
      // shards claimed the same page and the merge would be order-dependent.
      throw std::logic_error{"ShadowMemory::absorb: overlapping pages"};
    }
  }
  other.pages_.clear();
  other.cached_key_ = UINT64_MAX;
  other.cached_page_ = nullptr;
  scans_.fetch_add(other.scans_.exchange(0, std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

FunctionId ShadowMemory::last_writer(std::uint64_t addr) const {
  const Page* page = page_of(addr);
  if (page == nullptr) {
    return kNoWriter;
  }
  return (*page)[addr % kPageBytes];
}

}  // namespace hybridic::prof
