// Tracked containers: the instrumentation boundary applications code
// against. Every element access is reported to the QuadProfiler, exactly
// like QUAD's binary instrumentation observes loads/stores — but here the
// application runs natively and stays fully debuggable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "prof/quad.hpp"
#include "util/error.hpp"

namespace hybridic::prof {

/// A contiguous tracked array of trivially copyable `T`.
template <typename T>
class TrackedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "TrackedBuffer requires trivially copyable elements");

public:
  TrackedBuffer(QuadProfiler& profiler, std::string name, std::size_t count)
      : profiler_(&profiler),
        name_(std::move(name)),
        data_(count),
        base_(profiler.allocate(count * sizeof(T), alignof(T) > 8
                                                       ? alignof(T)
                                                       : 8)) {}

  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;
  TrackedBuffer(TrackedBuffer&&) noexcept = default;
  TrackedBuffer& operator=(TrackedBuffer&&) noexcept = default;

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t base_address() const { return base_; }

  /// Tracked element read.
  [[nodiscard]] T get(std::size_t index) const {
    bounds(index);
    profiler_->record_read(address(index), sizeof(T));
    return data_[index];
  }

  /// Tracked element write.
  void set(std::size_t index, T value) {
    bounds(index);
    profiler_->record_write(address(index), sizeof(T));
    data_[index] = value;
  }

  /// Tracked bulk read of [first, first+count).
  void read_range(std::size_t first, std::size_t count,
                  T* destination) const {
    bounds_range(first, count);
    profiler_->record_read(address(first), count * sizeof(T));
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(first), count,
                destination);
  }

  /// Tracked bulk write of [first, first+count).
  void write_range(std::size_t first, std::size_t count, const T* source) {
    bounds_range(first, count);
    profiler_->record_write(address(first), count * sizeof(T));
    std::copy_n(source, count,
                data_.begin() + static_cast<std::ptrdiff_t>(first));
  }

  /// Untracked peek for verification code (does not create edges).
  [[nodiscard]] T peek(std::size_t index) const {
    bounds(index);
    return data_[index];
  }

  /// Untracked poke for test setup (does not mark a producer).
  void poke(std::size_t index, T value) {
    bounds(index);
    data_[index] = value;
  }

  /// Proxy enabling natural `buf[i]` syntax with tracking.
  class Ref {
  public:
    Ref(TrackedBuffer& buffer, std::size_t index)
        : buffer_(&buffer), index_(index) {}

    operator T() const { return buffer_->get(index_); }  // NOLINT(google-explicit-constructor)
    Ref& operator=(T value) {
      buffer_->set(index_, value);
      return *this;
    }
    Ref& operator=(const Ref& other) {
      buffer_->set(index_, static_cast<T>(other));
      return *this;
    }
    Ref& operator+=(T value) { return *this = static_cast<T>(*this) + value; }
    Ref& operator-=(T value) { return *this = static_cast<T>(*this) - value; }

  private:
    TrackedBuffer* buffer_;
    std::size_t index_;
  };

  Ref operator[](std::size_t index) { return Ref{*this, index}; }
  T operator[](std::size_t index) const { return get(index); }

private:
  [[nodiscard]] std::uint64_t address(std::size_t index) const {
    return base_ + index * sizeof(T);
  }
  void bounds(std::size_t index) const {
    require(index < data_.size(),
            "TrackedBuffer '" + name_ + "' index out of range");
  }
  void bounds_range(std::size_t first, std::size_t count) const {
    require(first + count <= data_.size(),
            "TrackedBuffer '" + name_ + "' range out of bounds");
  }

  QuadProfiler* profiler_;
  std::string name_;
  std::vector<T> data_;
  std::uint64_t base_;
};

}  // namespace hybridic::prof
