// PagedByteSet: a sparse set of 64-bit byte addresses stored as paged
// bitmaps, used for the profiler's unique-footprint and UMA (unique memory
// address) accounting. Replaces per-byte unordered_set inserts with
// word-granular bitmap updates: an N-byte range costs O(N/64) word ops and
// one hash lookup per 4 KiB page, and popcount gives the exact number of
// freshly inserted addresses — so counts match a byte-by-byte insert loop
// bit for bit.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <unordered_map>

namespace hybridic::prof {

/// Sparse address set with O(1) size() and bulk range insertion.
class PagedByteSet {
public:
  static constexpr std::uint64_t kPageBytes = 4096;

  /// Insert every address in [addr, addr+size); returns how many were not
  /// yet present (the "fresh" count UMA accounting needs).
  std::uint64_t insert_range(std::uint64_t addr, std::uint64_t size) {
    std::uint64_t fresh = 0;
    std::uint64_t pos = addr;
    const std::uint64_t end = addr + size;
    while (pos < end) {
      Page& page = page_for(pos / kPageBytes);
      const std::uint64_t offset = pos % kPageBytes;
      const std::uint64_t in_page = std::min(end - pos, kPageBytes - offset);
      fresh += set_bits(page, offset, in_page);
      pos += in_page;
    }
    count_ += fresh;
    return fresh;
  }

  /// Insert a single address; returns true if it was fresh.
  bool insert(std::uint64_t addr) { return insert_range(addr, 1) != 0; }

  [[nodiscard]] bool contains(std::uint64_t addr) const {
    const auto it = pages_.find(addr / kPageBytes);
    if (it == pages_.end()) {
      return false;
    }
    const std::uint64_t offset = addr % kPageBytes;
    return ((*it->second)[offset / 64] >> (offset % 64) & 1U) != 0;
  }

  /// Number of distinct addresses inserted.
  [[nodiscard]] std::uint64_t size() const { return count_; }

  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Allocated bitmap pages (memory accounting; kPageBytes/8 bytes each).
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// Move every page of `other` into this set and add its count. Page sets
  /// must be disjoint (the parallel-replay shards partition addresses by
  /// page); `other` is left empty.
  void absorb(PagedByteSet& other) {
    for (auto& [key, page] : other.pages_) {
      auto [it, inserted] = pages_.emplace(key, std::move(page));
      (void)it;
      if (!inserted) {
        throw std::logic_error{"PagedByteSet::absorb: overlapping pages"};
      }
    }
    count_ += other.count_;
    other.pages_.clear();
    other.cached_page_ = nullptr;
    other.cached_key_ = 0;
    other.count_ = 0;
  }

private:
  using Page = std::array<std::uint64_t, kPageBytes / 64>;

  Page& page_for(std::uint64_t key) {
    if (cached_page_ != nullptr && key == cached_key_) {
      return *cached_page_;
    }
    auto& slot = pages_[key];
    if (slot == nullptr) {
      slot = std::make_unique<Page>();
      slot->fill(0);
    }
    cached_key_ = key;
    cached_page_ = slot.get();
    return *slot;
  }

  /// Set `count` bits starting at bit `offset`; returns how many flipped
  /// from 0 to 1.
  static std::uint64_t set_bits(Page& page, std::uint64_t offset,
                                std::uint64_t count) {
    std::uint64_t fresh = 0;
    std::uint64_t bit = offset;
    const std::uint64_t end = offset + count;
    while (bit < end) {
      const std::uint64_t word = bit / 64;
      const std::uint64_t low = bit % 64;
      const std::uint64_t span = std::min<std::uint64_t>(64 - low, end - bit);
      const std::uint64_t mask =
          span == 64 ? ~0ULL : ((1ULL << span) - 1) << low;
      const std::uint64_t added = mask & ~page[word];
      fresh += static_cast<std::uint64_t>(std::popcount(added));
      page[word] |= mask;
      bit += span;
    }
    return fresh;
  }

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  std::uint64_t cached_key_ = 0;
  Page* cached_page_ = nullptr;
  std::uint64_t count_ = 0;
};

}  // namespace hybridic::prof
