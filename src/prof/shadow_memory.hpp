// Byte-granular shadow memory: remembers, for every tracked address, which
// function wrote it last. This is the core mechanism behind QUAD-style
// producer→consumer attribution: a read observes the last writer of each
// byte it touches.
//
// Storage is paged (4 KiB of FunctionId cells per page) and all hot
// operations work a page at a time: one hash lookup per page instead of
// one per byte, run detection directly over the raw cell array, and a
// single-entry last-page cache that short-circuits the hash lookup for the
// sequential access patterns the profiled applications generate.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "prof/comm_graph.hpp"

namespace hybridic::prof {

/// Sentinel: byte has never been written by a tracked function.
inline constexpr FunctionId kNoWriter = 0xFFFFFFFFu;

/// Paged sparse map from 64-bit address to last-writer function id.
class ShadowMemory {
public:
  static constexpr std::uint64_t kPageBytes = 4096;

  /// Record that `writer` wrote [addr, addr+size).
  void write(std::uint64_t addr, std::uint64_t size, FunctionId writer);

  /// Last writer of a single byte (kNoWriter if untouched).
  [[nodiscard]] FunctionId last_writer(std::uint64_t addr) const;

  /// Visit [addr, addr+size) as maximal runs of a single producer:
  /// callback(run_start, run_length, producer). Runs with kNoWriter are
  /// reported too so the caller can decide how to treat untouched bytes.
  /// Runs spanning page boundaries (and untouched pages) are merged, so the
  /// emitted run sequence is identical to a byte-by-byte walk.
  ///
  /// Thread-safe against concurrent scans on a read-only (no longer
  /// written) ShadowMemory: the scan path never touches the mutable
  /// single-entry page cache (each page is visited exactly once per scan,
  /// so the cache could not help here anyway), and the scan counter is
  /// atomic. Profiling itself (write/record paths) stays single-threaded.
  template <typename Callback>
  void scan(std::uint64_t addr, std::uint64_t size, Callback&& callback) const {
    scans_.fetch_add(1, std::memory_order_relaxed);
    if (size == 0) {
      return;
    }
    const std::uint64_t end = addr + size;
    std::uint64_t run_start = addr;
    FunctionId run_producer = kNoWriter;
    bool have_run = false;
    std::uint64_t pos = addr;
    while (pos < end) {
      const std::uint64_t offset = pos % kPageBytes;
      const std::uint64_t chunk = std::min(end - pos, kPageBytes - offset);
      const Page* page = lookup_page(pos / kPageBytes);
      if (page == nullptr) {
        // Whole in-page span is untouched: one kNoWriter run segment.
        if (!have_run) {
          run_start = pos;
          run_producer = kNoWriter;
          have_run = true;
        } else if (run_producer != kNoWriter) {
          callback(run_start, pos - run_start, run_producer);
          run_start = pos;
          run_producer = kNoWriter;
        }
      } else {
        const FunctionId* cells = page->data() + offset;
        std::uint64_t i = 0;
        while (i < chunk) {
          const FunctionId producer = cells[i];
          std::uint64_t j = i + 1;
          while (j < chunk && cells[j] == producer) {
            ++j;
          }
          if (!have_run) {
            run_start = pos + i;
            run_producer = producer;
            have_run = true;
          } else if (producer != run_producer) {
            callback(run_start, pos + i - run_start, run_producer);
            run_start = pos + i;
            run_producer = producer;
          }
          i = j;
        }
      }
      pos += chunk;
    }
    callback(run_start, end - run_start, run_producer);
  }

  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// Move every page of `other` into this shadow. The two page sets must be
  /// disjoint (the parallel-finalize shards partition pages by page index,
  /// so they are by construction); `other` is left empty. Scan counters are
  /// summed so instrumentation sees the shard scans too.
  void absorb(ShadowMemory& other);

  /// Number of scan() calls ever made against this shadow. The profile
  /// memoization cache's hit path must leave this untouched (tested), which
  /// is what "a hit does zero shadow-memory passes" means operationally.
  [[nodiscard]] std::uint64_t scan_count() const {
    return scans_.load(std::memory_order_relaxed);
  }

private:
  using Page = std::array<FunctionId, kPageBytes>;

  Page& page_for(std::uint64_t addr);
  [[nodiscard]] const Page* page_of(std::uint64_t addr) const;

  /// Plain hash lookup with no side effects — safe from const/concurrent
  /// readers. The write path (page_for) keeps the mutable one-entry cache,
  /// where repeated same-page writes make it pay.
  [[nodiscard]] const Page* lookup_page(std::uint64_t key) const {
    const auto it = pages_.find(key);
    return it == pages_.end() ? nullptr : it->second.get();
  }

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  mutable std::atomic<std::uint64_t> scans_{0};
  std::uint64_t cached_key_ = UINT64_MAX;
  Page* cached_page_ = nullptr;
};

}  // namespace hybridic::prof
