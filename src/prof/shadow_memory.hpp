// Byte-granular shadow memory: remembers, for every tracked address, which
// function wrote it last. This is the core mechanism behind QUAD-style
// producer→consumer attribution: a read observes the last writer of each
// byte it touches.
//
// Storage is paged (4 KiB of FunctionId cells per page) and all hot
// operations work a page at a time: one hash lookup per page instead of
// one per byte, run detection directly over the raw cell array, and a
// single-entry last-page cache that short-circuits the hash lookup for the
// sequential access patterns the profiled applications generate.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "prof/comm_graph.hpp"

namespace hybridic::prof {

/// Sentinel: byte has never been written by a tracked function.
inline constexpr FunctionId kNoWriter = 0xFFFFFFFFu;

/// Paged sparse map from 64-bit address to last-writer function id.
class ShadowMemory {
public:
  static constexpr std::uint64_t kPageBytes = 4096;

  /// Record that `writer` wrote [addr, addr+size).
  void write(std::uint64_t addr, std::uint64_t size, FunctionId writer);

  /// Last writer of a single byte (kNoWriter if untouched).
  [[nodiscard]] FunctionId last_writer(std::uint64_t addr) const;

  /// Visit [addr, addr+size) as maximal runs of a single producer:
  /// callback(run_start, run_length, producer). Runs with kNoWriter are
  /// reported too so the caller can decide how to treat untouched bytes.
  /// Runs spanning page boundaries (and untouched pages) are merged, so the
  /// emitted run sequence is identical to a byte-by-byte walk.
  template <typename Callback>
  void scan(std::uint64_t addr, std::uint64_t size, Callback&& callback) const {
    if (size == 0) {
      return;
    }
    const std::uint64_t end = addr + size;
    std::uint64_t run_start = addr;
    FunctionId run_producer = kNoWriter;
    bool have_run = false;
    std::uint64_t pos = addr;
    while (pos < end) {
      const std::uint64_t offset = pos % kPageBytes;
      const std::uint64_t chunk = std::min(end - pos, kPageBytes - offset);
      const Page* page = find_page(pos / kPageBytes);
      if (page == nullptr) {
        // Whole in-page span is untouched: one kNoWriter run segment.
        if (!have_run) {
          run_start = pos;
          run_producer = kNoWriter;
          have_run = true;
        } else if (run_producer != kNoWriter) {
          callback(run_start, pos - run_start, run_producer);
          run_start = pos;
          run_producer = kNoWriter;
        }
      } else {
        const FunctionId* cells = page->data() + offset;
        std::uint64_t i = 0;
        while (i < chunk) {
          const FunctionId producer = cells[i];
          std::uint64_t j = i + 1;
          while (j < chunk && cells[j] == producer) {
            ++j;
          }
          if (!have_run) {
            run_start = pos + i;
            run_producer = producer;
            have_run = true;
          } else if (producer != run_producer) {
            callback(run_start, pos + i - run_start, run_producer);
            run_start = pos + i;
            run_producer = producer;
          }
          i = j;
        }
      }
      pos += chunk;
    }
    callback(run_start, end - run_start, run_producer);
  }

  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

private:
  using Page = std::array<FunctionId, kPageBytes>;

  Page& page_for(std::uint64_t addr);
  [[nodiscard]] const Page* page_of(std::uint64_t addr) const;

  /// Hash lookup of a page by key, memoized in a one-entry cache so
  /// consecutive hits on the same page (the overwhelmingly common case for
  /// sequential scans) skip the hash entirely. Pages are never deleted and
  /// unique_ptr targets are stable, so the cached pointer cannot dangle.
  [[nodiscard]] Page* find_page(std::uint64_t key) const {
    if (cached_page_ != nullptr && key == cached_key_) {
      return cached_page_;
    }
    const auto it = pages_.find(key);
    Page* page = it == pages_.end() ? nullptr : it->second.get();
    if (page != nullptr) {
      cached_key_ = key;
      cached_page_ = page;
    }
    return page;
  }

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  mutable std::uint64_t cached_key_ = UINT64_MAX;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace hybridic::prof
