// Byte-granular shadow memory: remembers, for every tracked address, which
// function wrote it last. This is the core mechanism behind QUAD-style
// producer→consumer attribution: a read observes the last writer of each
// byte it touches.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "prof/comm_graph.hpp"

namespace hybridic::prof {

/// Sentinel: byte has never been written by a tracked function.
inline constexpr FunctionId kNoWriter = 0xFFFFFFFFu;

/// Paged sparse map from 64-bit address to last-writer function id.
class ShadowMemory {
public:
  static constexpr std::uint64_t kPageBytes = 4096;

  /// Record that `writer` wrote [addr, addr+size).
  void write(std::uint64_t addr, std::uint64_t size, FunctionId writer);

  /// Last writer of a single byte (kNoWriter if untouched).
  [[nodiscard]] FunctionId last_writer(std::uint64_t addr) const;

  /// Visit [addr, addr+size) as maximal runs of a single producer:
  /// callback(run_start, run_length, producer). Runs with kNoWriter are
  /// reported too so the caller can decide how to treat untouched bytes.
  template <typename Callback>
  void scan(std::uint64_t addr, std::uint64_t size, Callback&& callback) const {
    std::uint64_t pos = addr;
    const std::uint64_t end = addr + size;
    while (pos < end) {
      const FunctionId producer = last_writer(pos);
      std::uint64_t run_end = pos + 1;
      while (run_end < end && last_writer(run_end) == producer) {
        ++run_end;
      }
      callback(pos, run_end - pos, producer);
      pos = run_end;
    }
  }

  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

private:
  using Page = std::array<FunctionId, kPageBytes>;

  Page& page_for(std::uint64_t addr);
  [[nodiscard]] const Page* page_of(std::uint64_t addr) const;

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace hybridic::prof
