#include "search/moves.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace hybridic::search {

namespace {

/// Function->spec map mirroring core's indexing (unique function per spec).
std::map<prof::FunctionId, std::size_t> spec_index(
    const core::DesignInput& input) {
  std::map<prof::FunctionId, std::size_t> index;
  for (std::size_t s = 0; s < input.kernels.size(); ++s) {
    require(index.emplace(input.kernels[s].function, s).second,
            "two kernel specs share one function: " + input.kernels[s].name);
  }
  return index;
}

/// The LUT area the currently duplicated specs consume.
std::uint64_t duplicated_luts(const SearchProblem& problem,
                              const SearchVars& vars) {
  std::uint64_t luts = 0;
  for (std::size_t s = 0; s < problem.input.kernels.size(); ++s) {
    if (vars.duplicated[s]) {
      luts += problem.input.kernels[s].area_luts;
    }
  }
  return luts;
}

/// Whether spec `s` is an endpoint of any active pairing.
bool spec_in_active_pair(const SearchProblem& problem, const SearchVars& vars,
                         std::size_t s) {
  for (std::size_t p = 0; p < problem.pairs.size(); ++p) {
    if (vars.pair_state[p] == kPairOff) {
      continue;
    }
    if (problem.pairs[p].producer_spec == s ||
        problem.pairs[p].consumer_spec == s) {
      return true;
    }
  }
  return false;
}

}  // namespace

SearchProblem make_search_problem(const core::DesignInput& input) {
  require(input.graph != nullptr, "search problem needs a profile graph");
  require(!input.kernels.empty(), "search problem needs at least one kernel");
  SearchProblem problem;
  problem.input = input;

  const std::map<prof::FunctionId, std::size_t> index = spec_index(input);
  std::set<prof::FunctionId> hw_set;
  for (const core::KernelSpec& spec : input.kernels) {
    hw_set.insert(spec.function);
  }

  // Duplication scan order: descending τ, ties by spec index (the same
  // stable sort Algorithm 1 performs over hw_compute_cycles).
  problem.tau_order.resize(input.kernels.size());
  std::iota(problem.tau_order.begin(), problem.tau_order.end(), 0);
  std::stable_sort(problem.tau_order.begin(), problem.tau_order.end(),
                   [&input](std::size_t a, std::size_t b) {
                     return input.kernels[a].hw_compute_cycles >
                            input.kernels[b].hw_compute_cycles;
                   });

  // Eligible pairs: Algorithm 1's candidate scan (bytes-descending,
  // stable), kept only where the line-9 exclusivity precondition holds —
  // activating such a pairing can never break Eq.-1 byte conservation.
  std::vector<core::KernelQuantities> quantities(input.kernels.size());
  for (std::size_t s = 0; s < input.kernels.size(); ++s) {
    quantities[s] =
        core::derive_quantities(*input.graph, input.kernels[s].function,
                                hw_set);
  }
  std::vector<prof::CommEdge> candidates;
  for (const prof::CommEdge& edge : input.graph->edges()) {
    if (edge.producer == edge.consumer) {
      continue;
    }
    if (hw_set.count(edge.producer) == 0 || hw_set.count(edge.consumer) == 0) {
      continue;
    }
    candidates.push_back(edge);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const prof::CommEdge& a, const prof::CommEdge& b) {
                     return a.bytes > b.bytes;
                   });
  for (const prof::CommEdge& edge : candidates) {
    const std::size_t ps = index.at(edge.producer);
    const std::size_t cs = index.at(edge.consumer);
    if (quantities[ps].kernel_out != core::edge_volume(edge) ||
        quantities[cs].kernel_in != core::edge_volume(edge)) {
      continue;
    }
    EligiblePair pair;
    pair.producer_spec = ps;
    pair.consumer_spec = cs;
    pair.bytes = core::edge_volume(edge);
    pair.consumer_host_free = quantities[cs].host_in.count() == 0 &&
                              quantities[cs].host_out.count() == 0;
    problem.pairs.push_back(pair);
  }

  return problem;
}

core::InterconnectClass palette_class(std::uint8_t value) {
  using core::InterconnectClass;
  using core::KernelConn;
  using core::MemConn;
  switch (value) {
    case 1:
      return InterconnectClass{KernelConn::kK1, MemConn::kM1};
    case 2:
      return InterconnectClass{KernelConn::kK1, MemConn::kM3};
    case 3:
      return InterconnectClass{KernelConn::kK2, MemConn::kM2};
    case 4:
      return InterconnectClass{KernelConn::kK2, MemConn::kM3};
    case kMappingInfeasible:
      return InterconnectClass{KernelConn::kK1, MemConn::kM2};
    default:
      throw ConfigError("mapping palette value " + std::to_string(value) +
                        " names no interconnect class");
  }
}

SearchVars vars_of_greedy(const SearchProblem& problem) {
  const core::DesignDecisions greedy =
      core::greedy_decisions(problem.input);
  SearchVars vars;
  vars.duplicated.assign(problem.input.kernels.size(), false);
  vars.pair_state.assign(problem.pairs.size(), kPairOff);
  vars.mapping.assign(problem.input.kernels.size(), kMappingAdaptive);
  for (const std::size_t s : greedy.duplicated_specs) {
    vars.duplicated[s] = true;
  }
  for (const core::SharedPairDecision& decision : greedy.shared_pairs) {
    bool found = false;
    for (std::size_t p = 0; p < problem.pairs.size(); ++p) {
      if (problem.pairs[p].producer_spec == decision.producer_spec &&
          problem.pairs[p].consumer_spec == decision.consumer_spec) {
        vars.pair_state[p] = decision.style == mem::SharingStyle::kDirect
                                 ? kPairDirect
                                 : kPairCrossbar;
        found = true;
        break;
      }
    }
    require(found, "greedy pairing missing from the eligible-pair list");
  }
  return vars;
}

core::DesignDecisions to_decisions(const SearchProblem& problem,
                                   const SearchVars& vars) {
  require(vars.duplicated.size() == problem.input.kernels.size() &&
              vars.mapping.size() == problem.input.kernels.size() &&
              vars.pair_state.size() == problem.pairs.size(),
          "search vars do not match the problem's dimensions");
  core::DesignDecisions decisions;
  // Replay duplications in the τ scan order so ParallelPlan ordering and
  // the Δdp summation order match Algorithm 1 exactly.
  for (const std::size_t s : problem.tau_order) {
    if (vars.duplicated[s]) {
      decisions.duplicated_specs.push_back(s);
    }
  }
  // Replay pairings in the bytes-descending scan order for the same reason.
  for (std::size_t p = 0; p < problem.pairs.size(); ++p) {
    if (vars.pair_state[p] == kPairOff) {
      continue;
    }
    core::SharedPairDecision decision;
    decision.producer_spec = problem.pairs[p].producer_spec;
    decision.consumer_spec = problem.pairs[p].consumer_spec;
    decision.bytes = problem.pairs[p].bytes;
    decision.style = vars.pair_state[p] == kPairDirect
                         ? mem::SharingStyle::kDirect
                         : mem::SharingStyle::kCrossbar;
    decisions.shared_pairs.push_back(decision);
  }
  bool any_override = false;
  for (const std::uint8_t value : vars.mapping) {
    if (value != kMappingAdaptive) {
      any_override = true;
      break;
    }
  }
  if (any_override) {
    decisions.mapping_override.resize(problem.input.kernels.size());
    for (std::size_t s = 0; s < vars.mapping.size(); ++s) {
      if (vars.mapping[s] != kMappingAdaptive) {
        decisions.mapping_override[s] = palette_class(vars.mapping[s]);
      }
    }
  }
  return decisions;
}

Move inverse(const Move& move) {
  Move undo = move;
  std::swap(undo.from, undo.to);
  return undo;
}

void apply_move(SearchVars& vars, const Move& move) {
  switch (move.kind) {
    case MoveKind::kToggleDuplication:
      require(move.target < vars.duplicated.size(),
              "duplication move targets a missing spec");
      require(vars.duplicated[move.target] == (move.from != 0),
              "duplication move is stale");
      vars.duplicated[move.target] = move.to != 0;
      return;
    case MoveKind::kSetPair:
      require(move.target < vars.pair_state.size(),
              "pair move targets a missing pair");
      require(vars.pair_state[move.target] == move.from,
              "pair move is stale");
      vars.pair_state[move.target] = move.to;
      return;
    case MoveKind::kSetMapping:
      require(move.target < vars.mapping.size(),
              "mapping move targets a missing spec");
      require(vars.mapping[move.target] == move.from,
              "mapping move is stale");
      vars.mapping[move.target] = move.to;
      return;
  }
  throw ConfigError("unknown move kind");
}

std::vector<Move> legal_moves(const SearchProblem& problem,
                              const SearchVars& vars) {
  const core::DesignInput& input = problem.input;
  std::vector<Move> moves;

  // Duplication toggles (spec ascending).
  const std::uint64_t used_luts = duplicated_luts(problem, vars);
  for (std::size_t s = 0; s < input.kernels.size(); ++s) {
    const core::KernelSpec& spec = input.kernels[s];
    if (vars.duplicated[s]) {
      moves.push_back(Move{MoveKind::kToggleDuplication, s, 1, 0});
      continue;
    }
    if (!input.enable_duplication || !spec.duplicable) {
      continue;
    }
    if (spec_in_active_pair(problem, vars, s)) {
      continue;  // A shared BRAM cannot serve two producer copies.
    }
    if (used_luts + spec.area_luts > input.duplication_area_budget_luts) {
      continue;  // "resource is available" fails.
    }
    moves.push_back(Move{MoveKind::kToggleDuplication, s, 0, 1});
  }

  // Pair-state edits (pair × target state ascending).
  for (std::size_t p = 0; p < problem.pairs.size(); ++p) {
    const EligiblePair& pair = problem.pairs[p];
    const std::uint8_t cur = vars.pair_state[p];
    for (std::uint8_t to = kPairOff; to <= kPairDirect; ++to) {
      if (to == cur) {
        continue;
      }
      if (to != kPairOff) {
        if (!input.enable_shared_memory) {
          continue;
        }
        if (vars.duplicated[pair.producer_spec] ||
            vars.duplicated[pair.consumer_spec]) {
          continue;
        }
        if (to == kPairDirect && !pair.consumer_host_free) {
          continue;  // §IV-A1 forbids the wide direct port here.
        }
        if (cur == kPairOff) {
          // Activation also needs both endpoints free of other pairings
          // (one sharing per kernel — BRAM port budget).
          bool endpoint_busy = false;
          for (std::size_t q = 0; q < problem.pairs.size(); ++q) {
            if (q == p || vars.pair_state[q] == kPairOff) {
              continue;
            }
            if (problem.pairs[q].producer_spec == pair.producer_spec ||
                problem.pairs[q].producer_spec == pair.consumer_spec ||
                problem.pairs[q].consumer_spec == pair.producer_spec ||
                problem.pairs[q].consumer_spec == pair.consumer_spec) {
              endpoint_busy = true;
              break;
            }
          }
          if (endpoint_busy) {
            continue;
          }
        }
      }
      moves.push_back(Move{MoveKind::kSetPair, p, cur, to});
    }
  }

  // Mapping edits (spec × palette ascending; never the infeasible 5).
  for (std::size_t s = 0; s < input.kernels.size(); ++s) {
    const std::uint8_t cur = vars.mapping[s];
    for (std::uint8_t to = 0; to < kMappingPaletteSize; ++to) {
      if (to != cur) {
        moves.push_back(Move{MoveKind::kSetMapping, s, cur, to});
      }
    }
  }

  return moves;
}

std::string to_string(const Move& move) {
  std::ostringstream out;
  switch (move.kind) {
    case MoveKind::kToggleDuplication:
      out << "dup";
      break;
    case MoveKind::kSetPair:
      out << "pair";
      break;
    case MoveKind::kSetMapping:
      out << "map";
      break;
  }
  out << '[' << move.target << "] " << static_cast<int>(move.from) << "->"
      << static_cast<int>(move.to);
  return out.str();
}

}  // namespace hybridic::search
