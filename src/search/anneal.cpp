#include "search/anneal.hpp"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "core/design_validate.hpp"
#include "core/resource_model.hpp"
#include "sys/batch_runner.hpp"
#include "sys/executor.hpp"
#include "tiers/congruence.hpp"
#include "util/error.hpp"

namespace hybridic::search {

namespace {

/// One fully priced candidate.
struct Scored {
  core::DesignResult design;
  tiers::TierEstimate estimate;
  std::uint64_t luts = 0;
  double fitness = 0.0;
};

std::uint64_t total_luts(const core::DesignResult& design,
                         const std::vector<core::KernelSpec>& specs) {
  return (core::interconnect_resources(design) +
          core::kernel_resources(design, specs))
      .luts;
}

/// Per-restart evaluator: realizes a decision vector, gates it, prices it
/// through the congruence memo. Returns nullopt (and counts the
/// rejection) for illegal candidates.
class Evaluator {
 public:
  Evaluator(const SearchProblem& problem, const sys::AppSchedule& schedule,
            const sys::PlatformConfig& platform, const AnnealOptions& options,
            std::uint64_t lut_cap, SearchStats& stats)
      : problem_(problem),
        schedule_(schedule),
        platform_(platform),
        options_(options),
        lut_cap_(lut_cap),
        stats_(stats) {}

  std::optional<Scored> operator()(const SearchVars& vars) {
    Scored scored;
    scored.design =
        core::build_design(problem_.input, to_decisions(problem_, vars));
    const std::optional<std::string> rejection =
        options_.gate ? options_.gate(schedule_, scored.design)
                      : default_gate(schedule_, scored.design);
    if (rejection.has_value()) {
      ++stats_.rejected_illegal;
      return std::nullopt;
    }
    scored.luts = total_luts(scored.design, problem_.input.kernels);
    if (scored.luts > lut_cap_) {
      ++stats_.rejected_illegal;
      return std::nullopt;
    }
    const double theta = problem_.input.theta.seconds_per_byte;
    const std::uint64_t key = tiers::congruence_key_of(
        tiers::congruence_signature(schedule_, scored.design, theta));
    const auto hit = memo_.find(key);
    if (hit != memo_.end()) {
      ++stats_.cache_hits;
      scored.estimate = hit->second;
    } else {
      scored.estimate = tiers::analytic_estimate(
          schedule_, scored.design, platform_, theta, options_.calibration);
      memo_.emplace(key, scored.estimate);
    }
    scored.fitness = scored.estimate.designed_kernel_seconds;
    return scored;
  }

 private:
  const SearchProblem& problem_;
  const sys::AppSchedule& schedule_;
  const sys::PlatformConfig& platform_;
  const AnnealOptions& options_;
  std::uint64_t lut_cap_;
  SearchStats& stats_;
  std::unordered_map<std::uint64_t, tiers::TierEstimate> memo_;
};

/// What one restart reports back: vars only — the winner's design is
/// rebuilt once after the reduction (build_design is pure, so this loses
/// nothing and keeps the per-restart payload small).
struct RestartOutcome {
  SearchVars vars;
  double fitness = 0.0;
  std::uint64_t luts = 0;
  std::vector<double> trace;
  SearchStats stats;
};

RestartOutcome run_restart(const SearchProblem& problem,
                           const sys::AppSchedule& schedule,
                           const sys::PlatformConfig& platform,
                           const AnnealOptions& options,
                           std::uint64_t lut_cap, const SearchVars& seed_vars,
                           std::uint32_t restart) {
  RestartOutcome outcome;
  // Independent stream per (seed, restart): the golden-ratio stride keeps
  // neighboring restarts' splitmix-initialized states uncorrelated.
  Rng rng{options.seed * 0x9E3779B97F4A7C15ULL + restart + 1};
  Evaluator evaluate{problem, schedule,           platform,
                     options, lut_cap,            outcome.stats};

  const std::optional<Scored> seed = evaluate(seed_vars);
  require(seed.has_value(),
          "the greedy seed design was rejected by the legality gate");
  SearchVars current_vars = seed_vars;
  double current_fitness = seed->fitness;
  std::uint64_t current_luts = seed->luts;

  // Incumbent starts at the seed even for perturbed restarts, so every
  // restart's answer is <= Algorithm 1 by construction.
  outcome.vars = seed_vars;
  outcome.fitness = seed->fitness;
  outcome.luts = seed->luts;

  // Restart r kicks off r random accepted moves away from the seed.
  for (std::uint32_t kick = 0; kick < restart; ++kick) {
    const std::vector<Move> moves = legal_moves(problem, current_vars);
    if (moves.empty()) {
      break;
    }
    ++outcome.stats.proposed;
    SearchVars kicked = current_vars;
    apply_move(kicked, moves[rng.below(moves.size())]);
    const std::optional<Scored> scored = evaluate(kicked);
    if (!scored.has_value()) {
      continue;  // Rejection already counted; the kick is simply lost.
    }
    ++outcome.stats.accepted;
    current_vars = std::move(kicked);
    current_fitness = scored->fitness;
    current_luts = scored->luts;
    if (scored->fitness < outcome.fitness ||
        (scored->fitness == outcome.fitness && scored->luts < outcome.luts)) {
      outcome.vars = current_vars;
      outcome.fitness = scored->fitness;
      outcome.luts = scored->luts;
    }
  }

  const double t0 = options.initial_temperature * seed->fitness;
  outcome.trace.push_back(outcome.fitness);
  for (std::uint32_t iter = 0; iter < options.iterations; ++iter) {
    Move move;
    if (options.move_hook) {
      move = options.move_hook(problem, current_vars, rng);
    } else {
      const std::vector<Move> moves = legal_moves(problem, current_vars);
      if (moves.empty()) {
        outcome.trace.push_back(outcome.fitness);
        continue;
      }
      move = moves[rng.below(moves.size())];
    }
    ++outcome.stats.proposed;
    SearchVars candidate_vars = current_vars;
    apply_move(candidate_vars, move);
    const std::optional<Scored> candidate = evaluate(candidate_vars);
    if (!candidate.has_value()) {
      outcome.trace.push_back(outcome.fitness);
      continue;
    }
    const double delta = candidate->fitness - current_fitness;
    const double temperature =
        t0 * std::pow(options.cooling, static_cast<double>(iter));
    const bool accept =
        delta <= 0.0 ||
        (temperature > 0.0 && rng.chance(std::exp(-delta / temperature)));
    if (accept) {
      ++outcome.stats.accepted;
      current_vars = std::move(candidate_vars);
      current_fitness = candidate->fitness;
      current_luts = candidate->luts;
      if (current_fitness < outcome.fitness ||
          (current_fitness == outcome.fitness &&
           current_luts < outcome.luts)) {
        outcome.vars = current_vars;
        outcome.fitness = current_fitness;
        outcome.luts = current_luts;
      }
    }
    outcome.trace.push_back(outcome.fitness);
  }

  return outcome;
}

}  // namespace

std::optional<std::string> default_gate(const sys::AppSchedule& schedule,
                                        const core::DesignResult& design) {
  const std::vector<core::ValidationIssue> issues =
      core::validate_design(design, schedule.specs);
  if (core::is_valid(issues)) {
    return std::nullopt;
  }
  return core::format_issues(issues);
}

SearchRecord SearchResult::record() const {
  SearchRecord record;
  record.solution_tag = best.solution_tag();
  record.analytic_seconds = best_estimate.designed_kernel_seconds;
  record.algorithm1_analytic_seconds =
      algorithm1_estimate.designed_kernel_seconds;
  record.luts = best_luts;
  record.algorithm1_luts = algorithm1_luts;
  record.gain = (record.analytic_seconds > 0.0 &&
                 record.algorithm1_analytic_seconds > 0.0)
                    ? record.algorithm1_analytic_seconds /
                          record.analytic_seconds
                    : 1.0;
  record.best_restart = best_restart;
  record.proposed = stats.proposed;
  record.accepted = stats.accepted;
  record.rejected_illegal = stats.rejected_illegal;
  record.cache_hits = stats.cache_hits;
  return record;
}

SearchResult anneal_interconnect(const sys::AppSchedule& schedule,
                                 const core::DesignInput& input,
                                 const sys::PlatformConfig& platform,
                                 const AnnealOptions& options) {
  require(options.restarts >= 1, "the annealer needs at least one restart");
  require(options.cooling > 0.0 && options.cooling <= 1.0,
          "cooling factor must be in (0, 1]");
  require(options.lut_budget_factor >= 1.0,
          "lut_budget_factor below 1 would reject the greedy seed itself");

  const SearchProblem problem = make_search_problem(input);
  const SearchVars seed_vars = vars_of_greedy(problem);
  const double theta = input.theta.seconds_per_byte;

  SearchResult result;
  result.algorithm1 = core::design_interconnect(input);
  result.algorithm1_estimate = tiers::analytic_estimate(
      schedule, result.algorithm1, platform, theta, options.calibration);
  result.algorithm1_luts = total_luts(result.algorithm1, input.kernels);
  const auto lut_cap = static_cast<std::uint64_t>(
      options.lut_budget_factor *
      static_cast<double>(result.algorithm1_luts));

  std::vector<RestartOutcome> outcomes;
  if (options.threads <= 1) {
    for (std::uint32_t r = 0; r < options.restarts; ++r) {
      outcomes.push_back(run_restart(problem, schedule, platform, options,
                                     lut_cap, seed_vars, r));
    }
  } else {
    sys::BatchRunner runner{options.threads};
    std::vector<sys::BatchRunner::Job<RestartOutcome>> jobs;
    for (std::uint32_t r = 0; r < options.restarts; ++r) {
      sys::BatchRunner::Job<RestartOutcome> job;
      job.key = "anneal/" + std::to_string(options.seed) + "/" +
                std::to_string(r);
      job.run = [&problem, &schedule, &platform, &options, lut_cap,
                 &seed_vars, r](sys::JobContext&) {
        return run_restart(problem, schedule, platform, options, lut_cap,
                           seed_vars, r);
      };
      jobs.push_back(std::move(job));
    }
    outcomes = runner.run(std::move(jobs));
  }

  // Submission-order reduction: earliest restart wins ties, so the answer
  // never depends on completion order (and therefore on thread count).
  std::size_t best = 0;
  for (std::size_t r = 1; r < outcomes.size(); ++r) {
    if (outcomes[r].fitness < outcomes[best].fitness ||
        (outcomes[r].fitness == outcomes[best].fitness &&
         outcomes[r].luts < outcomes[best].luts)) {
      best = r;
    }
  }
  for (const RestartOutcome& outcome : outcomes) {
    result.stats.proposed += outcome.stats.proposed;
    result.stats.accepted += outcome.stats.accepted;
    result.stats.rejected_illegal += outcome.stats.rejected_illegal;
    result.stats.cache_hits += outcome.stats.cache_hits;
  }

  result.best_vars = outcomes[best].vars;
  result.best_restart = static_cast<std::uint32_t>(best);
  result.incumbent_trace = std::move(outcomes[best].trace);
  result.best =
      core::build_design(input, to_decisions(problem, result.best_vars));
  result.best_estimate = tiers::analytic_estimate(
      schedule, result.best, platform, theta, options.calibration);
  result.best_luts = total_luts(result.best, input.kernels);

  if (options.cycle_validate) {
    CycleCheck check;
    const sys::RunResult run =
        sys::run_designed(schedule, result.best, platform, "searched");
    check.measured_kernel_seconds = run.kernel_seconds();
    check.within_band =
        result.best_estimate.contains_designed(check.measured_kernel_seconds);
    result.cycle = check;
  }

  return result;
}

}  // namespace hybridic::search
