// Neighbor-move library over the interconnect design space.
//
// The annealer (search/anneal.hpp) does not mutate DesignResult objects —
// it walks a compact decision vector (SearchVars) whose realization is
// core::build_design(). Every move is an invertible "set field from A to
// B" edit, so the harness can prove closure: applying a move and then its
// inverse restores the exact decision vector, and therefore the exact
// canonical congruence signature of the built design.
//
// The move space covers the paper's trichotomy and beyond it:
//  - kToggleDuplication: case-3 duplication on/off per spec (budgeted);
//  - kSetPair: a shared-local-memory pairing off / crossbar-attached /
//    direct (the §IV-A1 port-widening choice);
//  - kSetMapping: pin a spec's Table-I interconnect class to any feasible
//    {K1,K2}×{M1,M2,M3} point, or release it back to the adaptive map —
//    this is the "remap kernel↔fabric / swap crossbar-NoC class" axis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/interconnect_design.hpp"

namespace hybridic::search {

/// One candidate shared-local-memory pairing: a kernel->kernel edge that
/// satisfies Algorithm 1's exclusivity precondition (D^K_out(producer) ==
/// D^K_in(consumer) == D_ij). Whether the pairing is active — and in which
/// style — is the search variable; eligibility is static.
struct EligiblePair {
  std::size_t producer_spec = 0;
  std::size_t consumer_spec = 0;
  Bytes bytes{0};
  /// §IV-A1: direct (crossbar-less) sharing is legal only when the
  /// consumer never talks to the host.
  bool consumer_host_free = false;
};

/// The static search space for one design input: everything legal_moves()
/// needs that never changes between neighbors.
struct SearchProblem {
  core::DesignInput input;  ///< Graph pointer stays owned by the caller.
  /// Eligible pairs in Algorithm 1's greedy scan order (bytes-descending,
  /// stable) — emitting active pairs in this order makes the greedy seed
  /// bit-identical to design_interconnect().
  std::vector<EligiblePair> pairs;
  /// Spec indices in descending-τ order (Algorithm 1's duplication scan
  /// order); flagged specs are emitted in this order for the same reason.
  std::vector<std::size_t> tau_order;
};

[[nodiscard]] SearchProblem make_search_problem(
    const core::DesignInput& input);

// ---- Mapping palette. ----
// 0 releases the spec to the adaptive map (Table I); 1..4 pin the four
// feasible interconnect classes. Value 5 is the infeasible {K1,M2} point:
// legal_moves() never proposes it, but apply_move() accepts it so a
// deliberately broken generator can be proven to die at the oracle gate.
inline constexpr std::uint8_t kMappingAdaptive = 0;
inline constexpr std::uint8_t kMappingPaletteSize = 5;  ///< Legal 0..4.
inline constexpr std::uint8_t kMappingInfeasible = 5;   ///< {K1,M2}.

/// The InterconnectClass behind palette value 1..5; throws on 0.
[[nodiscard]] core::InterconnectClass palette_class(std::uint8_t value);

// ---- Pair states. ----
inline constexpr std::uint8_t kPairOff = 0;
inline constexpr std::uint8_t kPairCrossbar = 1;  ///< Narrow shared port.
inline constexpr std::uint8_t kPairDirect = 2;    ///< Wide (direct) port.

/// The decision vector the annealer walks.
struct SearchVars {
  std::vector<bool> duplicated;          ///< Per spec.
  std::vector<std::uint8_t> pair_state;  ///< Per eligible pair.
  std::vector<std::uint8_t> mapping;     ///< Per spec, palette value.

  friend bool operator==(const SearchVars&, const SearchVars&) = default;
};

/// Algorithm 1's greedy decisions expressed as search variables. By
/// construction to_decisions(problem, vars_of_greedy(problem)) realizes
/// the exact design design_interconnect(input) produces.
[[nodiscard]] SearchVars vars_of_greedy(const SearchProblem& problem);

/// Realize a decision vector (duplication order and pair order follow the
/// problem's canonical scan orders).
[[nodiscard]] core::DesignDecisions to_decisions(const SearchProblem& problem,
                                                 const SearchVars& vars);

enum class MoveKind : std::uint8_t {
  kToggleDuplication,  ///< target = spec; from/to ∈ {0,1}.
  kSetPair,            ///< target = pair index; from/to ∈ {0,1,2}.
  kSetMapping,         ///< target = spec; from/to = palette value.
};

/// An invertible edit: "set field `target` from `from` to `to`".
struct Move {
  MoveKind kind = MoveKind::kToggleDuplication;
  std::size_t target = 0;
  std::uint8_t from = 0;
  std::uint8_t to = 0;

  friend bool operator==(const Move&, const Move&) = default;
};

/// The move undoing `move` (swap from/to).
[[nodiscard]] Move inverse(const Move& move);

/// Apply `move` to `vars`. Requires move.from to match the current value
/// (ConfigError otherwise) so a stale move can never silently corrupt the
/// walk. Accepts any target value — including the infeasible mapping 5 —
/// because legality is the annealer's gate, not the encoder's.
void apply_move(SearchVars& vars, const Move& move);

/// Every legal neighbor move from `vars`, in deterministic order:
/// duplication toggles (spec ascending), pair edits (pair × state
/// ascending), mapping edits (spec × palette ascending). Enforces the
/// structural invariants Algorithm 1 maintains: the duplication LUT
/// budget, no duplicated endpoint on an active pair, one active pairing
/// per kernel, direct style only for host-free consumers, and the
/// enable_* ablation switches.
[[nodiscard]] std::vector<Move> legal_moves(const SearchProblem& problem,
                                            const SearchVars& vars);

[[nodiscard]] std::string to_string(const Move& move);

}  // namespace hybridic::search
