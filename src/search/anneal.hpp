// Deterministic simulated annealing over the interconnect design space
// (ROADMAP item 5): seeded at Algorithm 1's greedy decisions, walking the
// search/moves.hpp neighborhood with tiers::analytic_estimate as fitness,
// a legality gate as a hard constraint on every candidate, and the
// congruence signature as a per-restart memo so equivalent neighbors are
// never re-priced.
//
// Determinism contract: each (seed, restart) pair owns an independent
// xoshiro256** stream, restarts are reduced in submission order, and the
// incumbent tie-break is total order (fitness, LUTs, restart index) — so
// the result is bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/interconnect_design.hpp"
#include "search/moves.hpp"
#include "sys/platform.hpp"
#include "sys/schedule.hpp"
#include "tiers/analytic.hpp"
#include "util/rng.hpp"

namespace hybridic::search {

/// Hard constraint on every candidate: nullopt = legal, otherwise the
/// reason the design was rejected. The default gate runs
/// core::validate_design; the DSE campaign injects its simulation-free
/// oracle subset instead.
using LegalityGate = std::function<std::optional<std::string>(
    const sys::AppSchedule&, const core::DesignResult&)>;

/// Test hook: replace legal-move sampling with an arbitrary generator (the
/// harness uses it to prove a broken generator dies at the gate).
using MoveHook =
    std::function<Move(const SearchProblem&, const SearchVars&, Rng&)>;

struct AnnealOptions {
  std::uint64_t seed = 1;
  /// Total independent restarts (>= 1). Restart 0 starts at the greedy
  /// seed; restart r starts after r random accepted kicks away from it.
  std::uint32_t restarts = 2;
  std::uint32_t iterations = 200;
  /// Worker threads for the restart batch; 1 runs inline (no pool). The
  /// result is bit-identical either way.
  std::size_t threads = 1;
  /// T0 as a fraction of the seed fitness; T(i) = T0 * cooling^i.
  double initial_temperature = 0.1;
  double cooling = 0.97;
  /// Hard resource cap: candidates above lut_budget_factor * (Algorithm 1
  /// total LUTs) are rejected as illegal, so the searched design always
  /// dominates-or-matches greedy on the (time, LUTs) front.
  double lut_budget_factor = 1.0;
  /// Cycle-accurately simulate the final incumbent and check it against
  /// its own analytic band (the end-of-run validation).
  bool cycle_validate = false;
  tiers::TierCalibration calibration;
  LegalityGate gate;    ///< Empty = validate_design default.
  MoveHook move_hook;   ///< Empty = sample legal_moves() uniformly.
};

struct SearchStats {
  std::uint64_t proposed = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_illegal = 0;  ///< Gate or LUT-cap rejections.
  std::uint64_t cache_hits = 0;        ///< Congruence-memo fitness reuses.
};

/// End-of-run cycle-accurate validation of the incumbent.
struct CycleCheck {
  double measured_kernel_seconds = 0.0;
  bool within_band = false;  ///< Inside the incumbent's analytic band.
};

/// Flat summary row (what the campaign CSV and the JSON front ends emit).
struct SearchRecord {
  std::string solution_tag;
  double analytic_seconds = 0.0;
  double algorithm1_analytic_seconds = 0.0;
  std::uint64_t luts = 0;
  std::uint64_t algorithm1_luts = 0;
  /// algorithm1 / searched analytic time (>= 1 by construction when both
  /// are positive; 1.0 when degenerate).
  double gain = 1.0;
  std::uint32_t best_restart = 0;
  std::uint64_t proposed = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_illegal = 0;
  std::uint64_t cache_hits = 0;
};

struct SearchResult {
  /// Algorithm 1's design and pricing (the seed — also the comparison
  /// baseline everywhere "searched vs greedy" is reported).
  core::DesignResult algorithm1;
  tiers::TierEstimate algorithm1_estimate;
  std::uint64_t algorithm1_luts = 0;

  /// The incumbent after all restarts.
  core::DesignResult best;
  tiers::TierEstimate best_estimate;
  std::uint64_t best_luts = 0;
  SearchVars best_vars;
  std::uint32_t best_restart = 0;

  /// Incumbent fitness after each iteration of the winning restart
  /// (monotone non-increasing by construction; index 0 = seed fitness).
  std::vector<double> incumbent_trace;

  SearchStats stats;  ///< Summed over all restarts.
  std::optional<CycleCheck> cycle;

  [[nodiscard]] SearchRecord record() const;
};

/// The default legality gate: core::validate_design must report no errors.
[[nodiscard]] std::optional<std::string> default_gate(
    const sys::AppSchedule& schedule, const core::DesignResult& design);

/// Run the annealer. Throws ConfigError on inconsistent input (zero
/// restarts/iterations, broken design input). Deterministic for a fixed
/// (options.seed, options.restarts, options.iterations) regardless of
/// options.threads.
[[nodiscard]] SearchResult anneal_interconnect(
    const sys::AppSchedule& schedule, const core::DesignInput& input,
    const sys::PlatformConfig& platform, const AnnealOptions& options);

}  // namespace hybridic::search
