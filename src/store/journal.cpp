#include "store/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hybridic::store {

namespace fs = std::filesystem;

namespace {

// Line format (one record per line, space-separated):
//   J1 <fingerprint 16 hex> <sum 16 hex> <key> <escaped payload>
// where sum = fnv1a64(fingerprint + '\0' + key + '\0' + raw payload)
// and the payload escapes '\\' -> "\\\\", '\n' -> "\\n", '\r' -> "\\r".
constexpr const char* kMagic = "J1";

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string{buf};
}

bool parse_hex64(const std::string& text, std::uint64_t& value) {
  if (text.size() != 16) {
    return false;
  }
  value = 0;
  for (const char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  return true;
}

std::string escape_payload(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool unescape_payload(const std::string& escaped, std::string& raw) {
  raw.clear();
  raw.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\') {
      raw += c;
      continue;
    }
    if (i + 1 >= escaped.size()) {
      return false;  // Trailing backslash: torn escape sequence.
    }
    switch (escaped[++i]) {
      case '\\':
        raw += '\\';
        break;
      case 'n':
        raw += '\n';
        break;
      case 'r':
        raw += '\r';
        break;
      default:
        return false;
    }
  }
  return true;
}

std::uint64_t record_sum(const std::string& fingerprint,
                         const std::string& key,
                         const std::string& payload) {
  std::string material;
  material.reserve(fingerprint.size() + key.size() + payload.size() + 2);
  material += fingerprint;
  material += '\0';
  material += key;
  material += '\0';
  material += payload;
  return fnv1a64(material);
}

bool line_safe(const std::string& text) {
  for (const char c : text) {
    if (c == ' ' || c == '\n' || c == '\r') {
      return false;
    }
  }
  return !text.empty();
}

}  // namespace

Journal::Journal(std::string path) : path_(std::move(path)) {
  const fs::path parent = fs::path{path_}.parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    fs::create_directories(parent, ec);
    if (ec) {
      throw StoreError{"cannot create journal directory '" +
                       parent.string() + "': " + ec.message()};
    }
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw StoreError{"cannot open journal '" + path_ + "' for appending"};
  }
}

Journal::~Journal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Journal::append(const std::string& fingerprint, const std::string& key,
                     const std::string& payload) {
  if (!line_safe(fingerprint) || !line_safe(key)) {
    throw StoreError{"journal fingerprint/key must be non-empty and free of "
                     "spaces and newlines: '" +
                     fingerprint + "' / '" + key + "'"};
  }
  std::string line;
  line.reserve(payload.size() + key.size() + 64);
  line += kMagic;
  line += ' ';
  line += fingerprint;
  line += ' ';
  line += hex64(record_sum(fingerprint, key, payload));
  line += ' ';
  line += key;
  line += ' ';
  line += escape_payload(payload);
  line += '\n';

  // One write(2) on an O_APPEND fd: the kernel serializes the offset, so
  // a crash tears at most this line, and concurrent appenders (other
  // threads or a sharded sibling process) never interleave mid-line.
  std::lock_guard<std::mutex> lock{write_mutex_};
  const ssize_t written =
      ::write(fd_, line.data(), line.size());
  if (written != static_cast<ssize_t>(line.size())) {
    throw StoreError{"journal append to '" + path_ + "' failed"};
  }
  appended_.fetch_add(1, std::memory_order_relaxed);
}

Journal::ReadResult Journal::read(const std::string& path) {
  ReadResult result;
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open()) {
    return result;  // Missing ledger == empty ledger.
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    // "J1 <fp> <sum> <key> <payload>" — 4 spaces minimum; anything that
    // fails shape, escaping, or checksum is damage, counted and skipped.
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos || line.compare(0, sp1, kMagic) != 0) {
      ++result.skipped_lines;
      continue;
    }
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    const std::size_t sp3 =
        sp2 == std::string::npos ? std::string::npos : line.find(' ', sp2 + 1);
    const std::size_t sp4 =
        sp3 == std::string::npos ? std::string::npos : line.find(' ', sp3 + 1);
    if (sp4 == std::string::npos) {
      ++result.skipped_lines;
      continue;
    }
    Entry entry;
    entry.fingerprint = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string sum_text = line.substr(sp2 + 1, sp3 - sp2 - 1);
    entry.key = line.substr(sp3 + 1, sp4 - sp3 - 1);
    std::uint64_t sum = 0;
    if (entry.fingerprint.empty() || entry.key.empty() ||
        !parse_hex64(sum_text, sum) ||
        !unescape_payload(line.substr(sp4 + 1), entry.payload)) {
      ++result.skipped_lines;
      continue;
    }
    if (sum != record_sum(entry.fingerprint, entry.key, entry.payload)) {
      ++result.skipped_lines;
      continue;
    }
    result.entries.push_back(std::move(entry));
  }
  // A torn final line (no trailing newline) still reaches the loop via
  // getline's EOF path; a truncated payload fails its checksum there,
  // while a tear that lost only the newline left a complete record.
  return result;
}

}  // namespace hybridic::store
