#include "store/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hybridic::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "hybridic-store 1";

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string{buf};
}

/// Read one '\n'-terminated line starting at `pos`; false when no newline
/// remains. `pos` advances past the newline.
bool take_line(const std::string& blob, std::size_t& pos,
               std::string& line) {
  const std::size_t nl = blob.find('\n', pos);
  if (nl == std::string::npos) {
    return false;
  }
  line.assign(blob, pos, nl - pos);
  pos = nl + 1;
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t& value) {
  if (text.empty()) {
    return false;
  }
  value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    if (value > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& data, std::uint64_t basis) {
  std::uint64_t hash = basis;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Store::Store(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(fs::path{root_} / "objects", ec);
  if (!ec) {
    fs::create_directories(fs::path{root_} / "tmp", ec);
  }
  if (ec) {
    throw StoreError{"cannot create store directories under '" + root_ +
                     "': " + ec.message()};
  }
}

std::string Store::object_name(const std::string& key) {
  // Two independent FNV passes finalized with splitmix64 give a 128-bit
  // address; the embedded-key check on read makes even a collision safe.
  const std::uint64_t h1 = splitmix64(fnv1a64(key));
  const std::uint64_t h2 =
      splitmix64(fnv1a64(key, 0x84222325cbf29ce4ULL));
  return hex64(h1) + hex64(h2);
}

std::string Store::object_path(const std::string& key) const {
  const std::string name = object_name(key);
  return (fs::path{root_} / "objects" / name.substr(0, 2) / name).string();
}

void Store::put(const std::string& key, const std::string& payload) {
  // Entry layout (all line-oriented except the raw payload bytes):
  //   hybridic-store 1
  //   rev <engine revision>
  //   key <key length>
  //   <key bytes>
  //   len <payload length>
  //   <payload bytes>
  //   sum <16-hex FNV-1a of payload>
  std::ostringstream blob;
  blob << kMagic << '\n'
       << "rev " << kEngineRevision << '\n'
       << "key " << key.size() << '\n'
       << key << '\n'
       << "len " << payload.size() << '\n'
       << payload << '\n'
       << "sum " << hex64(fnv1a64(payload)) << '\n';
  const std::string bytes = blob.str();

  const std::string name = object_name(key);
  const fs::path tmp =
      fs::path{root_} / "tmp" /
      (name + "." + std::to_string(::getpid()) + "." +
       std::to_string(tmp_seq_.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::error_code ignore;
      fs::remove(tmp, ignore);
      throw StoreError{"cannot write store entry '" + tmp.string() + "'"};
    }
  }
  const fs::path final_path = fs::path{object_path(key)};
  std::error_code ec;
  fs::create_directories(final_path.parent_path(), ec);
  if (!ec) {
    // rename(2): atomic publication; a concurrent same-key writer wrote
    // identical bytes, so whichever rename lands last is equivalent.
    fs::rename(tmp, final_path, ec);
  }
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    throw StoreError{"cannot publish store entry for key '" + key +
                     "': " + ec.message()};
  }
  puts_.fetch_add(1, std::memory_order_relaxed);

  // Index append: one write(2) on an O_APPEND descriptor, so lines from
  // concurrent processes interleave whole, never torn mid-line (for the
  // short lines we write). Best effort — the index is a convenience
  // listing, not the source of truth.
  const std::string line = name + " " + std::to_string(key.size()) + " " +
                           key + "\n";
  const std::string index_path = (fs::path{root_} / "index.log").string();
  const int fd = ::open(index_path.c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd >= 0) {
    const ssize_t written [[maybe_unused]] =
        ::write(fd, line.data(), line.size());
    ::close(fd);
  }
}

std::optional<std::string> Store::get(const std::string& key) const {
  std::string blob;
  {
    std::ifstream in{object_path(key), std::ios::binary};
    if (!in.is_open()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      corrupt_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    blob = buffer.str();
  }

  const auto damaged = [this]() -> std::optional<std::string> {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };

  std::size_t pos = 0;
  std::string line;
  if (!take_line(blob, pos, line) || line != kMagic) {
    return damaged();
  }
  std::uint64_t rev = 0;
  if (!take_line(blob, pos, line) || line.rfind("rev ", 0) != 0 ||
      !parse_u64(line.substr(4), rev)) {
    return damaged();
  }
  if (rev != kEngineRevision) {
    // A valid entry from another engine revision: stale, not corrupt.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::uint64_t key_len = 0;
  if (!take_line(blob, pos, line) || line.rfind("key ", 0) != 0 ||
      !parse_u64(line.substr(4), key_len)) {
    return damaged();
  }
  if (pos + key_len + 1 > blob.size() ||
      blob.compare(pos, key_len, key) != 0 || blob[pos + key_len] != '\n') {
    return damaged();  // Truncated, or a different key hashed here.
  }
  pos += key_len + 1;
  std::uint64_t payload_len = 0;
  if (!take_line(blob, pos, line) || line.rfind("len ", 0) != 0 ||
      !parse_u64(line.substr(4), payload_len)) {
    return damaged();
  }
  if (pos + payload_len + 1 > blob.size() ||
      blob[pos + payload_len] != '\n') {
    return damaged();
  }
  std::string payload = blob.substr(pos, payload_len);
  pos += payload_len + 1;
  if (!take_line(blob, pos, line) || line.rfind("sum ", 0) != 0 ||
      line.substr(4) != hex64(fnv1a64(payload)) || pos != blob.size()) {
    return damaged();
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return payload;
}

std::vector<std::pair<std::string, std::string>> Store::read_index() const {
  std::vector<std::pair<std::string, std::string>> result;
  std::ifstream in{(fs::path{root_} / "index.log").string(),
                   std::ios::binary};
  if (!in.is_open()) {
    return result;
  }
  std::string line;
  while (std::getline(in, line)) {
    // "<32 hex> <keylen> <key>" — validate shape, skip damage.
    const std::size_t sp1 = line.find(' ');
    if (sp1 != 32) {
      continue;
    }
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
      continue;
    }
    std::uint64_t key_len = 0;
    if (!parse_u64(line.substr(sp1 + 1, sp2 - sp1 - 1), key_len)) {
      continue;
    }
    if (line.size() - sp2 - 1 != key_len) {
      continue;  // Torn or concatenated line.
    }
    result.emplace_back(line.substr(0, 32), line.substr(sp2 + 1));
  }
  return result;
}

StoreStats Store::stats() const {
  StoreStats s;
  s.puts = puts_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.corrupt_entries = corrupt_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hybridic::store
