// L2 adapters: plug the persistent Store underneath the in-memory caches.
//
//  - ProfileStoreL2 backs apps::ProfileCache. Profiling is platform-
//    independent, so the store key is just the L1 cache key (which
//    canonically encodes the app / every SyntheticConfig knob) plus the
//    engine revision.
//  - EstimateStoreL2 backs tiers::CongruenceCache. Analytic estimates
//    depend on the design signature (the congruence key, which already
//    folds in theta) AND on the platform/calibration parameters the
//    analytic model reads — those travel in a scope fingerprint computed
//    by estimate_scope(), so estimates from a differently configured
//    platform can never alias.
//
// Load failures of any kind surface as miss (nullptr/nullopt), per the
// L2 interface contracts; store failures are swallowed after counting —
// a read-only or full disk degrades to a smaller cache, not an error.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "apps/profile_cache.hpp"
#include "store/store.hpp"
#include "sys/platform.hpp"
#include "tiers/congruence.hpp"

namespace hybridic::store {

class ProfileStoreL2 final : public apps::ProfileL2 {
public:
  explicit ProfileStoreL2(std::shared_ptr<Store> backing);

  [[nodiscard]] std::shared_ptr<const apps::ProfiledApp> load(
      const std::string& key) override;
  void store(const std::string& key, const apps::ProfiledApp& app) override;

  /// Full store key for an L1 profile-cache key.
  [[nodiscard]] static std::string store_key(const std::string& l1_key);

  /// store() calls that failed (disk errors); loads never fail, they miss.
  [[nodiscard]] std::uint64_t store_failures() const;

private:
  std::shared_ptr<Store> backing_;
  std::atomic<std::uint64_t> store_failures_{0};
};

/// Fingerprint of every platform/calibration parameter the analytic tier
/// reads (clocks, bus/DMA/SDRAM/NoC shape, overheads, band widths). Two
/// platforms with equal fingerprints produce identical estimates for
/// equal congruence keys.
[[nodiscard]] std::string estimate_scope(
    const sys::PlatformConfig& platform,
    const tiers::TierCalibration& calibration);

/// Multi-board scope: folds every per-board platform fingerprint plus the
/// board count, inter-board topology, link parameters, partition seed and
/// inter-board band. A 1-board config intentionally does NOT collapse to
/// the single-board scope string — multi-board estimates carry the
/// inter-board fields and must never alias single-board entries.
[[nodiscard]] std::string estimate_scope(
    const sys::MultiBoardConfig& config,
    const tiers::TierCalibration& calibration);

class EstimateStoreL2 final : public tiers::EstimateL2 {
public:
  EstimateStoreL2(std::shared_ptr<Store> backing, std::string scope);

  [[nodiscard]] std::optional<tiers::TierEstimate> load(
      std::uint64_t key) override;
  void store(std::uint64_t key, const tiers::TierEstimate& estimate) override;

  [[nodiscard]] static std::string store_key(const std::string& scope,
                                             std::uint64_t key);

  [[nodiscard]] std::uint64_t store_failures() const;

private:
  std::shared_ptr<Store> backing_;
  std::string scope_;
  std::atomic<std::uint64_t> store_failures_{0};
};

}  // namespace hybridic::store
