// Append-only run journal for crash-safe campaigns (docs/MODEL.md §17).
//
// A long campaign records one journal line per completed job, keyed by
// the job's BatchRunner key plus a campaign fingerprint (sweep space +
// engine revision + tier + shard spec). A restarted process replays the
// ledger and skips every job whose record survives — so a SIGKILL'd
// campaign resumes from its last append and still reproduces the
// byte-identical CSV an uninterrupted run would have written.
//
// The ledger follows the same damage discipline as the store's
// index.log (docs/MODEL.md §15):
//
//  - Each append is one write(2) on an O_APPEND descriptor: a crash —
//    even SIGKILL — can tear at most the final line, never an earlier
//    record.
//  - Every line carries an FNV-1a checksum over (fingerprint, key,
//    payload). A torn, tampered, or otherwise malformed line fails the
//    checksum and is skipped on read: corruption degrades to
//    re-execution of that job, never to a wrong row.
//  - Payloads are newline-escaped so one record is always exactly one
//    line; keys must be line-safe identifiers (no spaces or newlines).
//
// Only setup fails loudly (StoreError, like Store); per-line damage is
// tolerated and counted.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "store/store.hpp"

namespace hybridic::store {

class Journal {
public:
  /// Open `path` for appending, creating it (and missing parent
  /// directories) if needed. Throws StoreError when the path is
  /// unusable.
  explicit Journal(std::string path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append one completion record as a single checksummed line. `key`
  /// must be line-safe (no spaces, newlines, or carriage returns —
  /// enforced); `payload` may contain anything. Throws StoreError when
  /// the write fails (a flaky filesystem — callers may retry).
  void append(const std::string& fingerprint, const std::string& key,
              const std::string& payload);

  struct Entry {
    std::string fingerprint;
    std::string key;
    std::string payload;
  };

  struct ReadResult {
    std::vector<Entry> entries;  ///< Valid records, in append order.
    /// Lines that failed parsing or their checksum (torn final line
    /// after a crash, tampering, unrelated garbage).
    std::uint64_t skipped_lines = 0;
  };

  /// Replay the ledger at `path`. A missing file is an empty ledger,
  /// not an error; damaged lines are skipped and counted. Never throws
  /// for content damage.
  [[nodiscard]] static ReadResult read(const std::string& path);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t appended() const {
    return appended_.load(std::memory_order_relaxed);
  }

private:
  std::string path_;
  int fd_ = -1;
  /// Serializes appends from this process so a retried partial write
  /// can never interleave with another thread's record.
  std::mutex write_mutex_;
  std::atomic<std::uint64_t> appended_{0};
};

}  // namespace hybridic::store
