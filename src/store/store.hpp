// Persistent content-addressed artifact store (docs/MODEL.md §15).
//
// Expensive artifacts — communication profiles, analytic tier estimates —
// are deterministic functions of their canonical key (application or
// SyntheticConfig knobs, platform fingerprint, engine revision). The store
// maps such keys to payload blobs on disk so warm-path performance
// survives process restarts and is shared across concurrently running
// campaign shards:
//
//  - Content addressing: the object file name is a 128-bit hash of the
//    full key; the key itself is embedded in the entry and verified on
//    read, so a hash collision degrades to a miss, never to wrong data.
//  - Versioning: every entry records kEngineRevision; entries written by
//    a different revision read as misses (and keys embed the revision
//    too, so stale objects are simply never addressed).
//  - Atomic publication: put() writes to a unique temp file and renames
//    into place — readers see either nothing or a complete entry, and
//    concurrent writers of the same key race benignly (last rename wins;
//    both wrote identical bytes).
//  - Corruption tolerance: a truncated, tampered, or wrong-format entry
//    fails its structural checks or payload checksum and reads as a miss.
//    get() never throws for bad entries.
//  - Shared index: puts append one line to index.log with a single
//    O_APPEND write, which multiple processes may do concurrently; the
//    reader skips malformed lines (e.g. a torn final line).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hybridic::store {

/// Bump whenever profiling, the analytic tier, or a codec changes in a
/// way that invalidates previously stored artifacts.
inline constexpr std::uint32_t kEngineRevision = 2;

/// The store root is unusable (cannot create directories, not writable).
/// Only setup fails loudly; per-entry damage degrades to misses.
class StoreError : public std::runtime_error {
public:
  explicit StoreError(const std::string& what) : std::runtime_error(what) {}
};

struct StoreStats {
  std::uint64_t puts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t corrupt_entries = 0;  ///< Present but failed validation.
};

/// FNV-1a 64-bit over `data`, starting from `basis`.
[[nodiscard]] std::uint64_t fnv1a64(
    const std::string& data, std::uint64_t basis = 0xcbf29ce484222325ULL);

class Store {
public:
  /// Open (creating if needed) a store rooted at `root`. Layout:
  ///   root/objects/<2 hex>/<32 hex>   entries
  ///   root/tmp/                       in-flight writes
  ///   root/index.log                  append-only key log
  explicit Store(std::string root);

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Publish `payload` under `key` (atomic write + rename; appends to the
  /// index). Throws StoreError when the filesystem rejects the write.
  void put(const std::string& key, const std::string& payload);

  /// The payload stored under `key`, or nullopt on miss — where "miss"
  /// includes absent, truncated, corrupt, wrong-key (hash collision), and
  /// wrong-engine-revision entries.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] const std::string& root() const { return root_; }

  /// 32-hex-char content address of `key`.
  [[nodiscard]] static std::string object_name(const std::string& key);

  /// Absolute path the entry for `key` lives at.
  [[nodiscard]] std::string object_path(const std::string& key) const;

  /// All (object_name, key) pairs ever appended to the index, in append
  /// order, skipping malformed lines. Multiple writers may have
  /// interleaved appends; duplicates are possible and harmless.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> read_index()
      const;

  [[nodiscard]] StoreStats stats() const;

private:
  std::string root_;
  std::atomic<std::uint64_t> tmp_seq_{0};
  mutable std::atomic<std::uint64_t> puts_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> corrupt_{0};
};

}  // namespace hybridic::store
