#include "store/adapters.hpp"

#include <sstream>

#include "store/codec.hpp"

namespace hybridic::store {

ProfileStoreL2::ProfileStoreL2(std::shared_ptr<Store> backing)
    : backing_(std::move(backing)) {}

std::string ProfileStoreL2::store_key(const std::string& l1_key) {
  return "profile/rev=" + std::to_string(kEngineRevision) + "/" + l1_key;
}

std::shared_ptr<const apps::ProfiledApp> ProfileStoreL2::load(
    const std::string& key) {
  const std::optional<std::string> payload = backing_->get(store_key(key));
  if (!payload.has_value()) {
    return nullptr;
  }
  return decode_profile(*payload);  // nullptr on damage — a miss.
}

void ProfileStoreL2::store(const std::string& key,
                           const apps::ProfiledApp& app) {
  try {
    backing_->put(store_key(key), encode_profile(app));
  } catch (...) {
    store_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t ProfileStoreL2::store_failures() const {
  return store_failures_.load(std::memory_order_relaxed);
}

std::string estimate_scope(const sys::PlatformConfig& platform,
                           const tiers::TierCalibration& calibration) {
  // Everything analytic_estimate() and the band calibration read. Order
  // and formatting are part of the persistent format: change them (or add
  // a field) only together with a kEngineRevision bump.
  std::ostringstream text;
  text << "host=" << platform.host_clock.hertz()
       << ";kernel=" << platform.kernel_clock.hertz()
       << ";bus=" << platform.bus_clock.hertz()
       << ";noc=" << platform.noc_clock.hertz()
       << ";busw=" << platform.bus.width_bytes
       << ";burst=" << platform.bus.max_burst_beats
       << ";arb=" << platform.bus.arbitration_cycles.count()
       << ";addr=" << platform.bus.address_cycles.count()
       << ";masters=" << platform.bus.master_count
       << ";dmasetup=" << platform.dma.setup_cycles.count()
       << ";dmachunk=" << platform.dma.chunk_bytes
       << ";sdramw=" << platform.sdram.width_bytes
       << ";sdramlat=" << platform.sdram.access_latency.count()
       << ";payload=" << platform.noc.max_packet_payload_bytes
       << ";routing=" << platform.noc.routing
       << ";rbuf=" << platform.noc.router.buffer_flits
       << ";rpipe=" << platform.noc.router.pipeline_cycles
       << ";bram=" << platform.bram_capacity.count()
       << ";bramw=" << platform.bram_port_width_bytes
       << ";ostream=" << hexf(platform.stream_overhead_seconds)
       << ";odup=" << hexf(platform.duplication_overhead_seconds)
       << ";bband=" << hexf(calibration.baseline_band)
       << ";dband=" << hexf(calibration.designed_band);
  // Hash down to a short stable token — the full text stays debuggable in
  // this function, the key stays short on disk.
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(text.str())));
  return std::string{buf};
}

std::string estimate_scope(const sys::MultiBoardConfig& config,
                           const tiers::TierCalibration& calibration) {
  // Chain the per-board scopes, then append the inter-board dimensions.
  // The "mb;" prefix keeps even a 1-board multi scope distinct from the
  // single-board scope of the same platform.
  std::ostringstream text;
  text << "mb;boards=" << config.board_count()
       << ";topo=" << core::to_string(config.topology)
       << ";lat=" << hexf(config.link.latency_seconds)
       << ";bw=" << hexf(config.link.bandwidth_bytes_per_second)
       << ";pseed=" << config.partition_seed
       << ";iband=" << hexf(calibration.inter_board_band);
  for (const sys::PlatformConfig& board : config.boards) {
    text << ";b=" << estimate_scope(board, calibration);
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(text.str())));
  return std::string{buf};
}

EstimateStoreL2::EstimateStoreL2(std::shared_ptr<Store> backing,
                                 std::string scope)
    : backing_(std::move(backing)), scope_(std::move(scope)) {}

std::string EstimateStoreL2::store_key(const std::string& scope,
                                       std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return "estimate/rev=" + std::to_string(kEngineRevision) +
         "/scope=" + scope + "/sig=" + std::string{buf};
}

std::optional<tiers::TierEstimate> EstimateStoreL2::load(std::uint64_t key) {
  const std::optional<std::string> payload =
      backing_->get(store_key(scope_, key));
  if (!payload.has_value()) {
    return std::nullopt;
  }
  return decode_estimate(*payload);  // nullopt on damage — a miss.
}

void EstimateStoreL2::store(std::uint64_t key,
                            const tiers::TierEstimate& estimate) {
  try {
    backing_->put(store_key(scope_, key), encode_estimate(estimate));
  } catch (...) {
    store_failures_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t EstimateStoreL2::store_failures() const {
  return store_failures_.load(std::memory_order_relaxed);
}

}  // namespace hybridic::store
